//! Round-trip and validity tests for the trace exporter (`trace.rs`):
//! the Chrome-trace JSON must parse back, every warp track must be
//! overlap-free, and event durations must stay within their phase's
//! cycle budget. The same checks are applied to the merged device-level
//! trace the scheduler emits (one track per SM).

use kami::core::{Algo, KamiConfig};
use kami::sched::{BlockWork, PlanCache, Scheduler};
use kami::sim::{device, Engine, GlobalMemory, Matrix, Precision, Trace};
use serde_json::Value;

/// Shared validity checks for any trace.
fn check_trace(trace: &Trace, total_cycles: f64) {
    assert!(!trace.events.is_empty());
    assert!((trace.total_cycles() - total_cycles).abs() < 1e-6);

    // --- Chrome JSON round-trips ---
    let json = trace.to_chrome_json();
    let parsed: Value = serde_json::from_str(&json).expect("chrome trace parses back");
    let arr = parsed.as_array().expect("chrome trace is a JSON array");
    assert_eq!(arr.len(), trace.events.len());
    for (ev, val) in trace.events.iter().zip(arr) {
        assert_eq!(val["name"], ev.kind.label());
        assert_eq!(val["ph"], "X");
        assert_eq!(val["tid"], ev.warp as u64);
        // ts/dur are serialized with 3 decimals (1 cycle = 1 µs).
        assert!((val["ts"].as_f64().unwrap() - ev.start).abs() < 0.0011);
        assert!((val["dur"].as_f64().unwrap() - ev.duration.max(0.001)).abs() < 0.0011);
        assert_eq!(val["args"]["amount"], ev.amount);
        assert_eq!(val["args"]["phase"], ev.phase as u64);
    }

    // --- per-track validity ---
    let tracks: std::collections::BTreeSet<usize> = trace.events.iter().map(|e| e.warp).collect();
    for w in tracks {
        let mut evs: Vec<_> = trace.warp_events(w).collect();
        evs.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite"));
        let mut cursor = f64::NEG_INFINITY;
        for e in &evs {
            assert!(
                e.start + 1e-6 >= cursor,
                "track {w}: event at {} overlaps previous ending at {cursor}",
                e.start
            );
            cursor = e.start + e.duration;
            assert!(e.duration >= 0.0 && e.start >= -1e-9);
            assert!(cursor <= total_cycles + 1e-6);
            // The event sits inside its phase.
            assert!(e.start + 1e-6 >= trace.phase_starts[e.phase]);
        }
        // Per phase, attributed durations never exceed the phase's
        // cycle extent (latency gaps make them ≤, not =).
        for p in 0..trace.phase_starts.len() - 1 {
            let extent = trace.phase_starts[p + 1] - trace.phase_starts[p];
            let sum: f64 = evs
                .iter()
                .filter(|e| e.phase == p)
                .map(|e| e.duration)
                .sum();
            assert!(
                sum <= extent + 1e-6,
                "track {w} phase {p}: {sum} cycles attributed in a {extent}-cycle phase"
            );
        }
    }
}

/// Hostile characters in event details (quotes, backslashes, control
/// bytes — fragment names are arbitrary strings) must survive the
/// Chrome-JSON encoding: the parsed-back detail equals the original,
/// not a sanitized lookalike, and the document stays valid JSON.
#[test]
fn hostile_event_details_round_trip_exactly() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let cfg = KamiConfig::new(Algo::OneD, prec);
    let n = 16;
    let a = Matrix::seeded_uniform(n, n, 1);
    let b = Matrix::seeded_uniform(n, n, 2);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", &a, prec);
    let bb = gmem.upload("B", &b, prec);
    let cb = gmem.alloc_zeroed("C", n, n, prec);
    let kernel = kami::core::algo1d::build_kernel(&cfg, n, n, n, ab, bb, cb, prec);
    let (_, mut trace) = Engine::new(&dev).run_traced(&kernel, &mut gmem).unwrap();

    let hostile = "Bi[\"0\"] \\ path\nnext\tcol \u{1b}[31mred\u{1b}[0m";
    trace.events[0].detail = hostile.to_string();
    let json = trace.to_chrome_json();
    let parsed: Value = serde_json::from_str(&json).expect("hostile details still parse");
    assert_eq!(
        parsed[0]["args"]["detail"].as_str().unwrap(),
        hostile,
        "detail must round-trip byte-for-byte"
    );
}

#[test]
fn block_trace_round_trips_and_is_valid() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let cfg = KamiConfig::new(Algo::OneD, prec);
    let n = 64;
    let a = Matrix::seeded_uniform(n, n, 1);
    let b = Matrix::seeded_uniform(n, n, 2);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", &a, prec);
    let bb = gmem.upload("B", &b, prec);
    let cb = gmem.alloc_zeroed("C", n, n, prec);
    let kernel = kami::core::algo1d::build_kernel(&cfg, n, n, n, ab, bb, cb, prec);
    let (report, trace) = Engine::new(&dev).run_traced(&kernel, &mut gmem).unwrap();

    assert_eq!(trace.phase_starts.len(), report.phase_costs.len() + 1);
    check_trace(&trace, report.cycles);
}

#[test]
fn device_trace_round_trips_and_is_valid() {
    let dev = device::gh200();
    let plans = PlanCache::new();
    // Tail-heavy count with a multi-stage k-loop → Stream-K with
    // fixup events in the merged trace.
    let work = BlockWork::uniform(64, 64, 256, Precision::Fp64, dev.num_sms as usize * 2 + 1);
    let (report, trace) = Scheduler::new(&dev).run_traced(&work, &plans).unwrap();

    check_trace(&trace, report.makespan_cycles);
    assert_eq!(trace.device, report.device_name);

    // One track per busy SM, and each track's durations sum exactly to
    // that SM's busy cycles (the device trace has no latency gaps).
    for sm in &report.per_sm {
        let sum: f64 = trace.warp_events(sm.sm).map(|e| e.duration).sum();
        assert!(
            (sum - sm.busy_cycles).abs() < 1e-6,
            "sm {}: trace {} vs busy {}",
            sm.sm,
            sum,
            sm.busy_cycles
        );
    }
    // Stream-K fixups appear as global-memory traffic events.
    use kami::sim::TraceKind;
    assert!(trace.cycles_by_kind(TraceKind::GlobalStore) > 0.0);
    assert!(trace.cycles_by_kind(TraceKind::GlobalLoad) > 0.0);
}
