//! Integration tests for the sparse extensions: SpMM and SpGEMM across
//! algorithms, densities, and block orders, against dense oracles.

use kami::core::{reference_gemm_f64, Algo, KamiConfig};
use kami::prelude::*;
use kami::sparse::{gen::random_block_sparse, spgemm::spgemm, spmm::spmm, BlockSparseMatrix};

fn order_for(algo: Algo) -> BlockOrder {
    if algo == Algo::OneD {
        BlockOrder::RowMajor
    } else {
        BlockOrder::ZMorton
    }
}

#[test]
fn spmm_matches_dense_oracle_across_densities() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    for density in [0.1, 0.3, 0.5, 0.8, 1.0] {
        for (algo, warps, n) in [
            (Algo::OneD, 4, 64),
            (Algo::TwoD, 4, 64),
            (Algo::ThreeD, 8, 128),
        ] {
            let a = random_block_sparse(n, n, 16, density, order_for(algo), 77);
            let b = Matrix::seeded_uniform(n, n, 78);
            let cfg = KamiConfig::new(algo, prec).with_warps(warps);
            let res = spmm(&dev, &cfg, &a, &b)
                .unwrap_or_else(|e| panic!("{} d={density}: {e}", algo.label()));
            let want = reference_gemm_f64(&a.to_dense(), &b);
            let err = res.c.rel_frobenius_error(&want);
            assert!(err < 1e-2, "{} d={density}: err {err}", algo.label());
        }
    }
}

#[test]
fn spgemm_matches_dense_oracle() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    for (algo, warps, n) in [
        (Algo::OneD, 4, 64),
        (Algo::TwoD, 4, 64),
        (Algo::ThreeD, 8, 128),
    ] {
        let a = random_block_sparse(n, n, 16, 0.5, order_for(algo), 81);
        let b = random_block_sparse(n, n, 16, 0.5, order_for(algo), 82);
        let cfg = KamiConfig::new(algo, prec).with_warps(warps);
        let res = spgemm(&dev, &cfg, &a, &b).unwrap_or_else(|e| panic!("{}: {e}", algo.label()));
        let want = reference_gemm_f64(&a.to_dense(), &b.to_dense());
        let err = res.c.to_dense().rel_frobenius_error(&want);
        assert!(err < 1e-2, "{}: err {err}", algo.label());
    }
}

#[test]
fn spgemm_structure_is_superset_of_values() {
    // Every nonzero of the value product appears within the symbolic
    // structure — and the structure never misses a block. Checked
    // across the density range: sparse (0.05, likely empty output
    // rows), the original 0.4 case, and fully dense (1.0, every SPA
    // insertion is a collision).
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
    for density in [0.05, 0.4, 1.0] {
        let a = random_block_sparse(64, 64, 16, density, BlockOrder::RowMajor, 91);
        let b = random_block_sparse(64, 64, 16, density, BlockOrder::RowMajor, 92);
        let res = spgemm(&dev, &cfg, &a, &b).unwrap_or_else(|e| panic!("d={density}: {e}"));
        let dense = reference_gemm_f64(&a.to_dense(), &b.to_dense());
        for br in 0..4 {
            for bc in 0..4 {
                let block = dense.submatrix(br * 16, bc * 16, 16, 16);
                let has_values = block.frobenius_norm() > 1e-9;
                let in_structure = res.c.block_at(br, bc).is_some();
                assert!(
                    !has_values || in_structure,
                    "d={density}: block ({br},{bc}) has values but no structure"
                );
            }
        }
        if density == 1.0 {
            // Dense collisions: the structure must be exactly full,
            // not over-allocated with duplicate column entries.
            assert_eq!(res.c.nnz_blocks(), 16, "dense product over-allocated");
        }
    }
}

#[test]
fn spgemm_with_empty_output_rows_stays_consistent() {
    // A stores nothing in block rows 1 and 3: those C rows must come
    // back empty (no structure, no values) and the populated rows must
    // still match the dense oracle.
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
    let mut entries = Vec::new();
    let src = random_block_sparse(64, 64, 16, 1.0, BlockOrder::RowMajor, 93);
    for (r, c, m) in src.iter_blocks() {
        if r != 1 && r != 3 {
            entries.push(((r, c), m.clone()));
        }
    }
    let a = BlockSparseMatrix::from_blocks(64, 64, 16, BlockOrder::RowMajor, entries);
    let b = random_block_sparse(64, 64, 16, 0.5, BlockOrder::RowMajor, 94);
    let res = spgemm(&dev, &cfg, &a, &b).unwrap();
    for bc in 0..4 {
        assert!(res.c.block_at(1, bc).is_none(), "row 1 must be empty");
        assert!(res.c.block_at(3, bc).is_none(), "row 3 must be empty");
    }
    let want = reference_gemm_f64(&a.to_dense(), &b.to_dense());
    assert!(res.c.to_dense().rel_frobenius_error(&want) < 1e-2);
}

#[test]
fn spmm_beats_equivalent_dense_gemm_in_cycles_at_half_density() {
    // Skipping half the blocks must save real simulated time.
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let n = 128;
    let half = random_block_sparse(n, n, 16, 0.5, BlockOrder::RowMajor, 93);
    let full = random_block_sparse(n, n, 16, 1.0, BlockOrder::RowMajor, 93);
    let b = Matrix::seeded_uniform(n, n, 94);
    let cfg = KamiConfig::new(Algo::OneD, prec).with_warps(8);
    let rh = spmm(&dev, &cfg, &half, &b).unwrap();
    let rf = spmm(&dev, &cfg, &full, &b).unwrap();
    assert!(
        rh.report.cycles < rf.report.cycles,
        "sparse {} !< dense {}",
        rh.report.cycles,
        rf.report.cycles
    );
}

#[test]
fn morton_and_rowmajor_agree_numerically() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let n = 64;
    let dense_src = random_block_sparse(n, n, 16, 0.5, BlockOrder::RowMajor, 95).to_dense();
    let am = BlockSparseMatrix::from_dense(&dense_src, 16, BlockOrder::ZMorton, 0.0);
    let ar = BlockSparseMatrix::from_dense(&dense_src, 16, BlockOrder::RowMajor, 0.0);
    let b = Matrix::seeded_uniform(n, n, 96);
    let cfg = KamiConfig::new(Algo::TwoD, prec).with_warps(4);
    let rm = spmm(&dev, &cfg, &am, &b).unwrap();
    let rr = spmm(&dev, &cfg, &ar, &b).unwrap();
    assert_eq!(rm.c.max_abs_diff(&rr.c), 0.0);
}

#[test]
fn empty_and_diagonal_edge_cases() {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
    // Empty A -> zero C, zero useful flops.
    let empty = random_block_sparse(64, 64, 16, 0.0, BlockOrder::RowMajor, 1);
    let b = Matrix::seeded_uniform(64, 64, 2);
    let res = spmm(&dev, &cfg, &empty, &b).unwrap();
    assert_eq!(res.c.frobenius_norm(), 0.0);
    assert_eq!(res.useful_flops, 0);
    // Block-diagonal identity -> C == B.
    let entries = (0..4).map(|i| ((i, i), Matrix::identity(16))).collect();
    let eye = BlockSparseMatrix::from_blocks(64, 64, 16, BlockOrder::RowMajor, entries);
    let res = spmm(&dev, &cfg, &eye, &b).unwrap();
    let want = b.quantized(Precision::Fp16);
    assert!(res.c.rel_frobenius_error(&want) < 1e-3);
}

#[test]
fn nondefault_block_sizes_work() {
    // The paper's block size is "user-configurable, default 16x16"
    // (§4.6): exercise 8 and 32.
    let dev = device::gh200();
    let prec = Precision::Fp16;
    for bs in [8usize, 32] {
        let n = bs * 4;
        let a = random_block_sparse(n, n, bs, 0.5, BlockOrder::ZMorton, 500 + bs as u64);
        let b = Matrix::seeded_uniform(n, n, 600 + bs as u64);
        let cfg = KamiConfig::new(Algo::TwoD, prec).with_warps(4);
        let res = spmm(&dev, &cfg, &a, &b).unwrap_or_else(|e| panic!("bs={bs}: {e}"));
        let want = reference_gemm_f64(&a.to_dense(), &b);
        let err = res.c.rel_frobenius_error(&want);
        assert!(err < 1e-2, "bs={bs}: err {err}");
        // bs=8 pads the FP16 m16n8k16 instruction; bs=32 tiles it exactly.
        if bs == 32 {
            assert_eq!(res.report.flops_charged, res.useful_flops);
        } else {
            assert!(res.report.flops_charged > res.useful_flops);
        }
    }
}

#[test]
fn spgemm_nondefault_block_size() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let bs = 32;
    let n = bs * 4;
    let a = random_block_sparse(n, n, bs, 0.5, BlockOrder::RowMajor, 700);
    let b = random_block_sparse(n, n, bs, 0.5, BlockOrder::RowMajor, 701);
    let cfg = KamiConfig::new(Algo::OneD, prec).with_warps(4);
    let res = spgemm(&dev, &cfg, &a, &b).unwrap();
    let want = reference_gemm_f64(&a.to_dense(), &b.to_dense());
    assert!(res.c.to_dense().rel_frobenius_error(&want) < 1e-2);
}
