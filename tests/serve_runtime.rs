//! End-to-end checks of the kami-serve runtime: multi-producer
//! submission, coalesced dispatch, backpressure, fault-injected
//! timeout → retry → degraded-serial fallback, graceful shutdown, and
//! the observability surface (metrics, Prometheus text, merged trace).
//!
//! The invariant stressed throughout: the service may reshape *when*
//! and *with whom* a request runs, never *what* it computes — every
//! served output is compared bit-for-bit against the direct engine
//! call.

use kami::core::{gemm, Algo, GemmRequest, KamiConfig, Op};
use kami::prelude::*;
use kami::serve::ServerConfig;
use kami::sim::CostConfig;
use kami::verify::{AlgoKind, Case, DeviceId, Harness, ServedCase};
use proptest::prelude::*;
use std::sync::Arc;

fn pair(seed: u64) -> (Matrix, Matrix) {
    (
        Matrix::seeded_uniform(64, 64, seed),
        Matrix::seeded_uniform(64, 64, seed + 1),
    )
}

/// A cost override that inflates every modelled cycle count without
/// touching numerics: heavy bank conflicts, 5% MMA efficiency.
fn inflated_cost() -> CostConfig {
    CostConfig {
        theta_r: 0.01,
        theta_w: 0.01,
        mma_efficiency: 0.05,
        ..CostConfig::default()
    }
}

#[test]
fn multi_producer_threads_all_resolve_bit_identical() {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    );

    let completions: Vec<(u64, Completed)> = std::thread::scope(|s| {
        let dispatcher = s.spawn(|| server.run_dispatcher());
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let server = &server;
                s.spawn(move || {
                    (0..6u64)
                        .map(|i| {
                            let seed = p * 31 + i;
                            let (a, b) = pair(seed);
                            let t = server
                                .submit(ServeRequest::gemm(a, b, Precision::Fp16))
                                .expect("well under capacity");
                            (seed, t.wait().expect("feasible request"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let done: Vec<_> = producers
            .into_iter()
            .flat_map(|p| p.join().expect("producer panicked"))
            .collect();
        server.shutdown();
        dispatcher.join().expect("dispatcher panicked");
        done
    });

    assert_eq!(completions.len(), 24);
    for (seed, done) in completions {
        let (a, b) = pair(seed);
        let direct = gemm(&dev, &cfg, &a, &b).unwrap();
        let served = done.output.into_dense().unwrap().into_single().unwrap();
        assert_eq!(
            direct.c.as_slice(),
            served.c.as_slice(),
            "seed {seed} diverged through the service"
        );
    }

    let m = server.metrics();
    assert_eq!(m.submitted, 24);
    assert_eq!(m.completed, 24);
    assert_eq!(m.failed, 0);
    // Same shape class everywhere: concurrent producers must have
    // coalesced at least once.
    assert!(
        m.coalesce_factor() > 1.0,
        "coalesce factor {:.2} — no pooling happened",
        m.coalesce_factor()
    );
}

#[test]
fn queue_full_backpressure_then_drain_frees_capacity() {
    let dev = device::gh200();
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    );

    let (a, b) = pair(1);
    let t1 = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16))
        .unwrap();
    let (a, b) = pair(2);
    let t2 = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16))
        .unwrap();
    let (a, b) = pair(3);
    let rejected = server.submit(ServeRequest::gemm(a, b, Precision::Fp16));
    assert_eq!(rejected.unwrap_err(), ServeError::QueueFull { capacity: 2 });

    // One tick drains the pool; capacity is back.
    server.tick();
    assert!(t1.is_done() && t2.is_done());
    let (a, b) = pair(3);
    let t3 = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16))
        .unwrap();
    server.shutdown_and_drain();
    t3.wait().unwrap();

    let m = server.metrics();
    assert_eq!(m.rejected_queue_full, 1);
    assert_eq!(m.completed, 3);
    assert_eq!(m.max_queue_depth, 2);
}

#[test]
fn timeout_retries_then_degraded_serial_with_identical_numerics() {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
    let copies = 4usize;
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: copies,
            max_retries: 2,
            backoff_cycles: 128.0,
            // Fault injection: the server schedules against a cost
            // model whose cycles are wildly inflated, so every attempt
            // blows the deadline. Numerics never see this config.
            cost: Some(inflated_cost()),
            ..ServerConfig::default()
        },
    );

    let (a, b) = pair(7);
    let direct = gemm(&dev, &cfg, &a, &b).unwrap();
    let tickets: Vec<_> = (0..copies)
        .map(|_| {
            let req = ServeRequest::dense(GemmRequest::from_config(
                Op::Gemm {
                    a: a.clone(),
                    b: b.clone(),
                },
                &cfg,
            ))
            .with_deadline(10.0);
            server.submit(req).unwrap()
        })
        .collect();
    server.shutdown_and_drain();

    for t in tickets {
        let done = t.wait().expect("fallback must still deliver");
        // Attempts: 1 initial + max_retries, then the serial fallback.
        assert_eq!(done.via, CompletionPath::DegradedSerial);
        assert_eq!(done.attempts, 3);
        let served = done.output.into_dense().unwrap().into_single().unwrap();
        assert_eq!(
            direct.c.as_slice(),
            served.c.as_slice(),
            "degraded-serial fallback changed the numbers"
        );
        assert_eq!(direct.useful_flops, served.useful_flops);
    }

    let m = server.metrics();
    assert_eq!(m.completed, copies as u64);
    assert_eq!(m.retries, (copies * 2) as u64);
    assert_eq!(m.degraded_serial, copies as u64);
    assert_eq!(m.failed, 0);
}

#[test]
fn verify_served_seam_covers_the_fault_injected_path() {
    // The kami-verify ServedCase seam drives the same retry → fallback
    // machinery and holds it to bit-identity + flop conservation.
    let case = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 17);
    let harness = Harness::default();
    let served = ServedCase {
        copies: 3,
        deadline_cycles: Some(5.0),
        server_cost: Some(inflated_cost()),
        max_retries: 1,
        backoff_cycles: 32.0,
        ..ServedCase::default()
    };
    let replay = served
        .replay(&case, &harness)
        .expect("no mismatch")
        .expect("dense case is servable");
    replay
        .check(served.copies)
        .expect("bit-identity through the fault path");
    assert_eq!(replay.metrics.degraded_serial, served.copies as u64);
}

#[test]
fn shutdown_is_graceful_and_coalescing_beats_serial() {
    let run = |coalesce: bool| -> f64 {
        let dev = device::gh200();
        let server = Server::with_config(
            &dev,
            ServerConfig {
                queue_capacity: 24,
                coalesce,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = (0..24u64)
            .map(|i| {
                let (a, b) = pair(500 + i);
                server
                    .submit(ServeRequest::gemm(a, b, Precision::Fp16))
                    .unwrap()
            })
            .collect();
        server.shutdown();
        // Post-shutdown submissions are refused, queued work still runs.
        let (a, b) = pair(999);
        assert_eq!(
            server
                .submit(ServeRequest::gemm(a, b, Precision::Fp16))
                .unwrap_err(),
            ServeError::ShuttingDown
        );
        server.drain();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(server.metrics().rejected_shutting_down, 1);
        server.clock()
    };

    let serial = run(false);
    let coalesced = run(true);
    let speedup = serial / coalesced;
    assert!(
        speedup >= 1.5,
        "coalesced dispatch must beat serial by >= 1.5x on a same-shape burst, got {speedup:.2}x"
    );
}

/// Headline regression (PR 8): deadlines are **end-to-end**, charged
/// from admission across every retry — not reset per attempt.
///
/// Construction: on attempt 1 the victim's tick first dispatches a
/// heavy 512³ group (smaller admission id ⇒ earlier in the tick), so
/// the victim finishes at `heavy + solo` cycles > deadline → retry.
/// On attempt 2 the victim runs alone: its own makespan `solo` is
/// inside the deadline, so per-attempt enforcement — the old bug,
/// where the retry rewrote `ready_at` and elapsed was charged from it
/// — would complete it as `Solo` within budget. End-to-end enforcement
/// must see `heavy + solo + backoff + solo > deadline` and take the
/// degraded path.
#[test]
fn deadline_is_end_to_end_not_per_attempt() {
    let dev = device::gh200();
    // Measure both makespans on throwaway servers (the clock model is
    // deterministic, so these are exact).
    let measure = |req: ServeRequest| -> f64 {
        let server = Server::new(&dev);
        let t = server.submit(req).unwrap();
        server.tick();
        t.wait().unwrap();
        server.clock()
    };
    let heavy_req = || {
        let a = Matrix::seeded_uniform(256, 256, 31);
        let b = Matrix::seeded_uniform(256, 256, 32);
        ServeRequest::gemm(a, b, Precision::Fp16)
    };
    let (a, b) = pair(700);
    let solo = measure(ServeRequest::gemm(a, b, Precision::Fp16));
    let heavy_makespan = measure(heavy_req());
    let deadline = 2.0 * solo;
    assert!(
        heavy_makespan > deadline,
        "test geometry broke: heavy {heavy_makespan} vs deadline {deadline}"
    );

    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 64,
            max_retries: 1,
            backoff_cycles: 64.0,
            ..ServerConfig::default()
        },
    );
    // The heavy group admits first, so attempt 1's tick charges its
    // makespan (far above `solo`, hence above the deadline) to the
    // clock before the victim's own group runs.
    let heavy = server.submit(heavy_req()).unwrap();
    let (a, b) = pair(700);
    let victim = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16).with_deadline(deadline))
        .unwrap();
    server.shutdown_and_drain();
    heavy.wait().unwrap();

    let done = victim.wait().unwrap();
    assert_eq!(done.attempts, 2);
    assert!(
        solo < deadline,
        "attempt 2 finished inside the per-attempt window ({solo} < {deadline})"
    );
    assert!(
        done.finished_at - done.admitted_at > deadline,
        "but outside the end-to-end window"
    );
    assert_eq!(
        done.via,
        CompletionPath::DegradedSerial,
        "end-to-end accounting must degrade this request; completing it \
         as {:?} means the deadline was reset on retry",
        done.via
    );
    let m = server.metrics();
    assert_eq!(m.retries, 1);
    assert_eq!(m.degraded_serial, 1);
}

/// Bugfix regression (PR 8): parked-in-backoff retries are already
/// admitted — they must not occupy admission capacity (the old
/// `push_back` requeue did, starving fresh producers) and must be
/// accounted separately from the admitted depth.
#[test]
fn parked_retries_do_not_consume_admission_capacity() {
    let dev = device::gh200();
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 1,
            max_retries: 2,
            backoff_cycles: 128.0,
            cost: Some(inflated_cost()),
            ..ServerConfig::default()
        },
    );
    let (a, b) = pair(40);
    let t1 = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16).with_deadline(10.0))
        .unwrap();
    server.tick();
    assert_eq!(server.parked(), 1, "attempt 1 must park in backoff");
    assert_eq!(server.pending(), 1);

    // The old requeue would hold the only capacity slot here and bounce
    // this fresh submit with QueueFull.
    let (a, b) = pair(41);
    let t2 = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16))
        .expect("parked retries must not consume admission capacity");
    server.shutdown_and_drain();
    assert_eq!(t1.wait().unwrap().via, CompletionPath::DegradedSerial);
    t2.wait().unwrap();

    let m = server.metrics();
    assert_eq!(m.rejected_queue_full, 0);
    assert_eq!(m.completed, 2);
    // Admitted and parked depths are distinct accounts.
    assert_eq!(m.max_queue_depth, 1);
    assert!(m.max_parked_depth >= 1);
}

/// Zero-copy invariant (PR 8): the request payload is one `Arc`'d
/// allocation from admission through retries and the degraded replay —
/// the server never clones it.
#[test]
fn payload_allocation_is_shared_across_retries_and_degraded_replay() {
    let dev = device::gh200();
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 4,
            max_retries: 2,
            backoff_cycles: 64.0,
            cost: Some(inflated_cost()),
            ..ServerConfig::default()
        },
    );
    let (a, b) = pair(55);
    let req = Arc::new(ServeRequest::gemm(a, b, Precision::Fp16).with_deadline(5.0));
    let direct = req.execute(&dev).unwrap();

    let t = server.submit_shared(Arc::clone(&req)).unwrap();
    // Exactly two holders: this test and the server's Pending slot.
    assert_eq!(Arc::strong_count(&req), 2, "admission cloned the payload");
    server.tick();
    assert_eq!(server.parked(), 1);
    // The parked retry attempt still reads the same allocation.
    assert_eq!(
        Arc::strong_count(&req),
        2,
        "the retry path cloned the payload"
    );
    server.shutdown_and_drain();
    let done = t.wait().unwrap();
    assert_eq!(done.via, CompletionPath::DegradedSerial);
    // Completion dropped the server's only reference — at no point did
    // the retry or degraded replay hold a copy of the operands.
    assert_eq!(Arc::strong_count(&req), 1);

    let served = done.output.into_dense().unwrap().into_single().unwrap();
    let want = direct.into_dense().unwrap().into_single().unwrap();
    assert_eq!(served.c.as_slice(), want.c.as_slice());
}

/// Small, fast shapes for the sharded-admission proptests.
fn small_request(seed: u64) -> ServeRequest {
    let a = Matrix::seeded_uniform(16, 16, seed);
    let b = Matrix::seeded_uniform(16, 16, seed + 10_000);
    ServeRequest::gemm(a, b, Precision::Fp16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Sharded admission (a): a single producer's batch dispatches in
    /// submission order whatever the shard count — per-shard FIFO plus
    /// the id-ordered drain reconstruct global order, observable as
    /// monotone finish times across solo groups.
    #[test]
    fn sharded_admission_preserves_submission_order(
        n in 2usize..10,
        shards in 1usize..9,
        seed in 0u64..1000,
    ) {
        let dev = device::gh200();
        let server = Server::with_config(
            &dev,
            ServerConfig {
                queue_capacity: 64,
                admission_shards: shards,
                coalesce: false,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = (0..n)
            .map(|i| server.submit(small_request(seed + i as u64)).unwrap())
            .collect();
        server.tick();
        let mut finishes = Vec::new();
        for t in tickets {
            let done = t.wait().expect("dispatched in one tick");
            finishes.push((done.id, done.finished_at));
        }
        for w in finishes.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "ids must follow submission order");
            prop_assert!(
                w[0].1 <= w[1].1,
                "dispatch reordered submissions: {:?}",
                finishes
            );
        }
    }

    /// Sharded admission (b): when the home shard is at its soft cap,
    /// submissions fail over to sibling shards; QueueFull surfaces only
    /// once the *global* capacity is exhausted.
    #[test]
    fn shard_failover_fills_global_capacity_before_queue_full(
        shards in 2usize..9,
        capacity in 4usize..17,
    ) {
        let dev = device::gh200();
        let server = Server::with_config(
            &dev,
            ServerConfig {
                queue_capacity: capacity,
                admission_shards: shards,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = (0..capacity)
            .map(|i| {
                server
                    .submit(small_request(i as u64))
                    .expect("global capacity not yet exhausted")
            })
            .collect();
        prop_assert_eq!(
            server.submit(small_request(9_000)).unwrap_err(),
            ServeError::QueueFull { capacity }
        );
        let m = server.metrics();
        // One producer thread has one home shard, whose soft cap
        // (ceil(capacity / shards)) is below the global capacity — so
        // filling the bound forces at least one failover.
        prop_assert!(
            m.admission_failovers > 0,
            "filling {} slots over {} shards never failed over",
            capacity,
            shards
        );
        prop_assert_eq!(m.rejected_queue_full, 1);
        server.shutdown_and_drain();
        for t in tickets {
            t.wait().expect("admitted requests complete");
        }
    }

    /// Sharded admission (c): drain-exactly-once under concurrent
    /// producers and two dispatcher threads — every admitted ticket
    /// resolves once, ids never collide, nothing is lost or duplicated.
    #[test]
    fn concurrent_producers_and_dispatchers_complete_exactly_once(
        producers in 1usize..5,
        per_producer in 1usize..7,
        shards in 1usize..9,
        seed in 0u64..1000,
    ) {
        let dev = device::gh200();
        let server = Server::with_config(
            &dev,
            ServerConfig {
                queue_capacity: 64,
                admission_shards: shards,
                ..ServerConfig::default()
            },
        );
        let ids = std::thread::scope(|s| {
            let d1 = s.spawn(|| server.run_dispatcher());
            let d2 = s.spawn(|| server.run_dispatcher());
            let handles: Vec<_> = (0..producers)
                .map(|p| {
                    let server = &server;
                    s.spawn(move || {
                        (0..per_producer)
                            .map(|i| {
                                let t = server
                                    .submit(small_request(seed + (p * 100 + i) as u64))
                                    .expect("well under capacity");
                                t.wait().expect("must complete").id
                            })
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            let mut ids: Vec<u64> = handles
                .into_iter()
                .flat_map(|h| h.join().expect("producer panicked"))
                .collect();
            server.shutdown();
            d1.join().expect("dispatcher 1 panicked");
            d2.join().expect("dispatcher 2 panicked");
            ids.sort_unstable();
            ids
        });
        let n = producers * per_producer;
        prop_assert_eq!(ids.len(), n);
        let mut dedup = ids.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), n, "a ticket resolved twice or ids collided");
        let m = server.metrics();
        prop_assert_eq!(m.submitted, n as u64);
        prop_assert_eq!(m.completed, n as u64);
        prop_assert_eq!(m.failed, 0);
        prop_assert_eq!(server.pending(), 0);
    }
}

#[test]
fn observability_surface_is_consistent() {
    let dev = device::gh200();
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 8,
            capture_trace: true,
            ..ServerConfig::default()
        },
    );
    for i in 0..8u64 {
        let (a, b) = pair(300 + i);
        server
            .submit(ServeRequest::gemm(a, b, Precision::Fp16))
            .unwrap();
    }
    server.shutdown_and_drain();

    let m = server.metrics();
    assert_eq!(m.submitted, 8);
    assert_eq!(m.completed, 8);
    assert_eq!(m.ticks as usize, m.per_tick.len());
    let per_tick_requests: usize = m.per_tick.iter().map(|t| t.requests).sum();
    assert_eq!(per_tick_requests, 8);

    let prom = server.to_prometheus();
    for needle in [
        "# TYPE kami_serve_submitted_total counter",
        "kami_serve_submitted_total 8",
        "kami_serve_completed_total 8",
        "kami_serve_retries_total 0",
        "kami_serve_coalesce_factor",
    ] {
        assert!(
            prom.contains(needle),
            "Prometheus export missing {needle:?}"
        );
    }

    // The merged trace spans the server clock and serializes to
    // Chrome-trace JSON.
    let trace = server.merged_trace();
    assert!(!trace.events.is_empty());
    assert!(trace.total_cycles() <= server.clock());
    let json = trace.to_chrome_json();
    assert!(json.trim_start().starts_with('[') && json.contains("\"ph\": \"X\""));
}
