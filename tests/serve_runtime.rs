//! End-to-end checks of the kami-serve runtime: multi-producer
//! submission, coalesced dispatch, backpressure, fault-injected
//! timeout → retry → degraded-serial fallback, graceful shutdown, and
//! the observability surface (metrics, Prometheus text, merged trace).
//!
//! The invariant stressed throughout: the service may reshape *when*
//! and *with whom* a request runs, never *what* it computes — every
//! served output is compared bit-for-bit against the direct engine
//! call.

use kami::core::{gemm, Algo, GemmRequest, KamiConfig, Op};
use kami::prelude::*;
use kami::serve::ServerConfig;
use kami::sim::CostConfig;
use kami::verify::{AlgoKind, Case, DeviceId, Harness, ServedCase};

fn pair(seed: u64) -> (Matrix, Matrix) {
    (
        Matrix::seeded_uniform(64, 64, seed),
        Matrix::seeded_uniform(64, 64, seed + 1),
    )
}

/// A cost override that inflates every modelled cycle count without
/// touching numerics: heavy bank conflicts, 5% MMA efficiency.
fn inflated_cost() -> CostConfig {
    CostConfig {
        theta_r: 0.01,
        theta_w: 0.01,
        mma_efficiency: 0.05,
        ..CostConfig::default()
    }
}

#[test]
fn multi_producer_threads_all_resolve_bit_identical() {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 64,
            ..ServerConfig::default()
        },
    );

    let completions: Vec<(u64, Completed)> = std::thread::scope(|s| {
        let dispatcher = s.spawn(|| server.run_dispatcher());
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let server = &server;
                s.spawn(move || {
                    (0..6u64)
                        .map(|i| {
                            let seed = p * 31 + i;
                            let (a, b) = pair(seed);
                            let t = server
                                .submit(ServeRequest::gemm(a, b, Precision::Fp16))
                                .expect("well under capacity");
                            (seed, t.wait().expect("feasible request"))
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let done: Vec<_> = producers
            .into_iter()
            .flat_map(|p| p.join().expect("producer panicked"))
            .collect();
        server.shutdown();
        dispatcher.join().expect("dispatcher panicked");
        done
    });

    assert_eq!(completions.len(), 24);
    for (seed, done) in completions {
        let (a, b) = pair(seed);
        let direct = gemm(&dev, &cfg, &a, &b).unwrap();
        let served = done.output.into_dense().unwrap().into_single().unwrap();
        assert_eq!(
            direct.c.as_slice(),
            served.c.as_slice(),
            "seed {seed} diverged through the service"
        );
    }

    let m = server.metrics();
    assert_eq!(m.submitted, 24);
    assert_eq!(m.completed, 24);
    assert_eq!(m.failed, 0);
    // Same shape class everywhere: concurrent producers must have
    // coalesced at least once.
    assert!(
        m.coalesce_factor() > 1.0,
        "coalesce factor {:.2} — no pooling happened",
        m.coalesce_factor()
    );
}

#[test]
fn queue_full_backpressure_then_drain_frees_capacity() {
    let dev = device::gh200();
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 2,
            ..ServerConfig::default()
        },
    );

    let (a, b) = pair(1);
    let t1 = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16))
        .unwrap();
    let (a, b) = pair(2);
    let t2 = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16))
        .unwrap();
    let (a, b) = pair(3);
    let rejected = server.submit(ServeRequest::gemm(a, b, Precision::Fp16));
    assert_eq!(rejected.unwrap_err(), ServeError::QueueFull { capacity: 2 });

    // One tick drains the pool; capacity is back.
    server.tick();
    assert!(t1.is_done() && t2.is_done());
    let (a, b) = pair(3);
    let t3 = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16))
        .unwrap();
    server.shutdown_and_drain();
    t3.wait().unwrap();

    let m = server.metrics();
    assert_eq!(m.rejected_queue_full, 1);
    assert_eq!(m.completed, 3);
    assert_eq!(m.max_queue_depth, 2);
}

#[test]
fn timeout_retries_then_degraded_serial_with_identical_numerics() {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
    let copies = 4usize;
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: copies,
            max_retries: 2,
            backoff_cycles: 128.0,
            // Fault injection: the server schedules against a cost
            // model whose cycles are wildly inflated, so every attempt
            // blows the deadline. Numerics never see this config.
            cost: Some(inflated_cost()),
            ..ServerConfig::default()
        },
    );

    let (a, b) = pair(7);
    let direct = gemm(&dev, &cfg, &a, &b).unwrap();
    let tickets: Vec<_> = (0..copies)
        .map(|_| {
            let req = ServeRequest::dense(GemmRequest::from_config(
                Op::Gemm {
                    a: a.clone(),
                    b: b.clone(),
                },
                &cfg,
            ))
            .with_deadline(10.0);
            server.submit(req).unwrap()
        })
        .collect();
    server.shutdown_and_drain();

    for t in tickets {
        let done = t.wait().expect("fallback must still deliver");
        // Attempts: 1 initial + max_retries, then the serial fallback.
        assert_eq!(done.via, CompletionPath::DegradedSerial);
        assert_eq!(done.attempts, 3);
        let served = done.output.into_dense().unwrap().into_single().unwrap();
        assert_eq!(
            direct.c.as_slice(),
            served.c.as_slice(),
            "degraded-serial fallback changed the numbers"
        );
        assert_eq!(direct.useful_flops, served.useful_flops);
    }

    let m = server.metrics();
    assert_eq!(m.completed, copies as u64);
    assert_eq!(m.retries, (copies * 2) as u64);
    assert_eq!(m.degraded_serial, copies as u64);
    assert_eq!(m.failed, 0);
}

#[test]
fn verify_served_seam_covers_the_fault_injected_path() {
    // The kami-verify ServedCase seam drives the same retry → fallback
    // machinery and holds it to bit-identity + flop conservation.
    let case = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 17);
    let harness = Harness::default();
    let served = ServedCase {
        copies: 3,
        deadline_cycles: Some(5.0),
        server_cost: Some(inflated_cost()),
        max_retries: 1,
        backoff_cycles: 32.0,
    };
    let replay = served
        .replay(&case, &harness)
        .expect("no mismatch")
        .expect("dense case is servable");
    replay
        .check(served.copies)
        .expect("bit-identity through the fault path");
    assert_eq!(replay.metrics.degraded_serial, served.copies as u64);
}

#[test]
fn shutdown_is_graceful_and_coalescing_beats_serial() {
    let run = |coalesce: bool| -> f64 {
        let dev = device::gh200();
        let server = Server::with_config(
            &dev,
            ServerConfig {
                queue_capacity: 24,
                coalesce,
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = (0..24u64)
            .map(|i| {
                let (a, b) = pair(500 + i);
                server
                    .submit(ServeRequest::gemm(a, b, Precision::Fp16))
                    .unwrap()
            })
            .collect();
        server.shutdown();
        // Post-shutdown submissions are refused, queued work still runs.
        let (a, b) = pair(999);
        assert_eq!(
            server
                .submit(ServeRequest::gemm(a, b, Precision::Fp16))
                .unwrap_err(),
            ServeError::ShuttingDown
        );
        server.drain();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(server.metrics().rejected_shutting_down, 1);
        server.clock()
    };

    let serial = run(false);
    let coalesced = run(true);
    let speedup = serial / coalesced;
    assert!(
        speedup >= 1.5,
        "coalesced dispatch must beat serial by >= 1.5x on a same-shape burst, got {speedup:.2}x"
    );
}

#[test]
fn observability_surface_is_consistent() {
    let dev = device::gh200();
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 8,
            capture_trace: true,
            ..ServerConfig::default()
        },
    );
    for i in 0..8u64 {
        let (a, b) = pair(300 + i);
        server
            .submit(ServeRequest::gemm(a, b, Precision::Fp16))
            .unwrap();
    }
    server.shutdown_and_drain();

    let m = server.metrics();
    assert_eq!(m.submitted, 8);
    assert_eq!(m.completed, 8);
    assert_eq!(m.ticks as usize, m.per_tick.len());
    let per_tick_requests: usize = m.per_tick.iter().map(|t| t.requests).sum();
    assert_eq!(per_tick_requests, 8);

    let prom = server.to_prometheus();
    for needle in [
        "# TYPE kami_serve_submitted_total counter",
        "kami_serve_submitted_total 8",
        "kami_serve_completed_total 8",
        "kami_serve_retries_total 0",
        "kami_serve_coalesce_factor",
    ] {
        assert!(
            prom.contains(needle),
            "Prometheus export missing {needle:?}"
        );
    }

    // The merged trace spans the server clock and serializes to
    // Chrome-trace JSON.
    let trace = server.merged_trace();
    assert!(!trace.events.is_empty());
    assert!(trace.total_cycles() <= server.clock());
    let json = trace.to_chrome_json();
    assert!(json.trim_start().starts_with('[') && json.contains("\"ph\": \"X\""));
}
