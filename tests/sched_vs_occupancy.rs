//! Acceptance tests tying the device-level scheduler back to the
//! occupancy model (ISSUE: kami-sched tentpole).
//!
//! 1. On the paper's uniform 16 384-block workload, the scheduler's
//!    achieved TFLOPS must agree with `occupancy::analyze`'s
//!    steady-state throughput within 15%.
//! 2. On a tail-heavy workload (block count not divisible by the SM
//!    count), Stream-K's makespan must not exceed data-parallel's.
//! 3. A repeated shape must be served from the plan cache without
//!    re-tuning.

use kami::sched::{BlockWork, Decomposition, PlanCache, Scheduler, WorkItem, PAPER_BLOCK_COUNT};
use kami::sim::{device, Precision};

#[test]
fn device_tflops_agrees_with_occupancy_steady_state() {
    let dev = device::gh200();
    let plans = PlanCache::new();
    let item = WorkItem::new(64, 64, 64, Precision::Fp16);
    let work = BlockWork::synthetic(item.m, item.n, item.k, item.precision);
    assert_eq!(work.len(), PAPER_BLOCK_COUNT);

    let report = Scheduler::new(&dev)
        .with_decomposition(Decomposition::DataParallel)
        .run(&work, &plans)
        .unwrap();
    let (entry, _) = plans.plan_for(&dev, &item).unwrap();
    let steady = entry.cost.occupancy.steady_tflops;

    let ratio = report.achieved_tflops / steady;
    assert!(
        (ratio - 1.0).abs() < 0.15,
        "achieved {:.2} TFLOPS vs steady-state {:.2} TFLOPS (ratio {ratio:.4})",
        report.achieved_tflops,
        steady
    );
    // 16 384 blocks on 132 SMs: the quantization loss is tiny.
    assert!(
        report.utilization > 0.9,
        "utilization {}",
        report.utilization
    );
}

#[test]
fn streamk_beats_data_parallel_on_tail_heavy_workload() {
    let dev = device::gh200();
    let sms = dev.num_sms as usize;
    // One block past an even wave: data-parallel pays a whole extra
    // wave for it, Stream-K spreads the spill as k-loop iterations.
    let count = sms * 4 + 1;
    assert_ne!(count % sms, 0);
    let work = BlockWork::uniform(64, 64, 256, Precision::Fp64, count);

    let dp = Scheduler::new(&dev)
        .with_decomposition(Decomposition::DataParallel)
        .run(&work, &PlanCache::new())
        .unwrap();
    let sk = Scheduler::new(&dev)
        .with_decomposition(Decomposition::StreamK)
        .run(&work, &PlanCache::new())
        .unwrap();

    assert!(
        sk.makespan_cycles <= dp.makespan_cycles,
        "stream-k {} cycles vs data-parallel {} cycles",
        sk.makespan_cycles,
        dp.makespan_cycles
    );
    // The win is the tail wave, so it should be substantial, and Auto
    // should find it.
    assert!(sk.makespan_cycles < 0.95 * dp.makespan_cycles);
    let auto = Scheduler::new(&dev).run(&work, &PlanCache::new()).unwrap();
    assert_eq!(auto.decomposition, Decomposition::StreamK);
    assert_eq!(auto.makespan_cycles, sk.makespan_cycles);
    // Data-parallel shows the tail; Stream-K levels it.
    assert!(sk.tail_imbalance < dp.tail_imbalance);
}

#[test]
fn plan_cache_serves_repeated_shape_without_retuning() {
    let dev = device::gh200();
    let plans = PlanCache::new();
    let work = BlockWork::uniform(64, 64, 64, Precision::Fp16, 300);

    let first = Scheduler::new(&dev).run(&work, &plans).unwrap();
    assert_eq!((first.plans_reused, first.plans_tuned), (0, 1));
    assert_eq!(plans.tuner().misses(), 1);

    let second = Scheduler::new(&dev).run(&work, &plans).unwrap();
    assert_eq!((second.plans_reused, second.plans_tuned), (1, 0));
    // No new tuning sweep happened: still exactly one miss underneath,
    // and the cached winner evaluated a real candidate space.
    assert_eq!(plans.tuner().misses(), 1);
    assert_eq!(plans.len(), 1);
    let (entry, hit) = plans
        .plan_for(&dev, &WorkItem::new(64, 64, 64, Precision::Fp16))
        .unwrap();
    assert!(hit);
    assert!(entry.tuned.candidates_tried > 1);
    assert_eq!(second.makespan_cycles, first.makespan_cycles);
}
