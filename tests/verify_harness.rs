//! End-to-end tests of the kami-verify differential harness: a clean
//! build passes a seeded sweep slice across every device, algorithm,
//! and precision cell; an *injected* engine-vs-model discrepancy (a
//! perturbed `CostConfig`) is caught by the cross-check, shrunk to a
//! minimal case, and rendered as a paste-ready regression test.

use kami::sched::PlanCache;
use kami::sim::{CostConfig, Precision};
use kami::verify::{
    run_case, shrink, sweep, AlgoKind, Case, CaseAlgo, CaseOutcome, CheckKind, DeviceId,
    FleetServedCase, Harness, SweepConfig,
};

/// One seeded case per grid cell (44 cells) must run clean: engine,
/// model, scheduler, and sparse kernels all agree with their oracles.
#[test]
fn seeded_sweep_slice_is_clean() {
    let cfg = SweepConfig {
        seed: 11,
        cases_per_cell: 1,
        max_failures: 4,
    };
    let out = sweep::sweep(&cfg, &Harness::default());
    assert!(out.is_clean(), "{}", out.summary());
    assert!(
        out.cases_run >= 40,
        "expected nearly all 44 cells to run, got {} (+{} skipped)",
        out.cases_run,
        out.skipped
    );
}

/// The CI profile must cover at least the 200 cases the harness
/// advertises, across all four devices and at least two precisions per
/// device, without relying on this test actually running them all.
#[test]
fn quick_profile_dimensions() {
    let cfg = sweep::quick();
    let cells: usize = DeviceId::ALL
        .iter()
        .map(|&d| sweep::device_precisions(d).len() * AlgoKind::ALL.len())
        .sum();
    assert!(cells * cfg.cases_per_cell >= 200);
    for d in DeviceId::ALL {
        assert!(sweep::device_precisions(d).len() >= 2, "{}", d.label());
    }
}

/// Fault injection: perturb the engine's cost configuration (θ_r = 0.5
/// halves effective read bandwidth) and the EngineVsModel cross-check
/// must notice, the shrinker must reduce the case to the divisibility
/// minimum with every rider stripped, and the reproducer must name the
/// failing seam.
#[test]
fn injected_cost_discrepancy_is_caught_and_shrunk() {
    let plans = PlanCache::new();
    let perturbed = Harness {
        cost: Some(CostConfig {
            theta_r: 0.5,
            ..CostConfig::default()
        }),
        ..Harness::default()
    };
    let case = Case {
        id: 2024,
        device: DeviceId::Gh200,
        algo: CaseAlgo::Dense(kami::core::Algo::TwoD),
        precision: Precision::Fp16,
        m: 64,
        n: 64,
        k: 64,
        warps: 4,
        alpha: -1.5,
        beta: 0.5,
        sparsity: None,
        batch: 4,
        epilogue: None,
        data_seed: 77,
    };
    // Sanity: the same case is clean without the perturbation.
    assert!(matches!(
        run_case(&case, &Harness::default(), &plans),
        Ok(CaseOutcome::Pass)
    ));

    let mismatch = run_case(&case, &perturbed, &plans)
        .expect_err("perturbed engine must disagree with the closed forms");
    assert_eq!(mismatch.kind, CheckKind::EngineVsModel, "{mismatch}");

    let (min, min_mismatch) = shrink(&case, &perturbed, &plans, &mismatch);
    assert_eq!(min_mismatch.kind, CheckKind::EngineVsModel);
    assert!(
        min.m <= case.m && min.n <= case.n && min.k <= case.k,
        "shrinking must not grow the case: {}",
        min.describe()
    );
    assert_eq!((min.m, min.n, min.k), (16, 16, 16), "{}", min.describe());
    assert_eq!((min.alpha, min.beta, min.batch), (1.0, 0.0, 1));

    let repro = min.reproducer(&format!("{min_mismatch}"));
    assert!(repro.contains("#[test]"));
    assert!(repro.contains("assert_case"));
    assert!(repro.contains("EngineVsModel"));
    assert!(repro.contains("DeviceId::Gh200"));
}

/// A 2.5D case is equally protected: the injected discrepancy is caught
/// through the 2.5D comm closed form (`t_comm_25d`).
#[test]
fn injection_reaches_the_25d_path() {
    let plans = PlanCache::new();
    let perturbed = Harness {
        cost: Some(CostConfig {
            theta_w: 0.25,
            ..CostConfig::default()
        }),
        ..Harness::default()
    };
    let case = Case::generate(DeviceId::Gh200, AlgoKind::TwoHalfD, Precision::Fp16, 9);
    let mismatch = run_case(&case, &perturbed, &plans).expect_err("2.5D must also be checked");
    assert_eq!(mismatch.kind, CheckKind::EngineVsModel, "{mismatch}");
}

/// The fleet seam: a clean heterogeneous fleet replays a mixed trace
/// bit-identically against the direct engine and a single server, and
/// a fault-injected cost model on one replica is caught as a
/// `CheckKind::Fleet` cost-coherence mismatch while numerics stay
/// bit-identical (the probe runs after the numerics checks, so the
/// mismatch itself is evidence the injection never touched the bytes).
#[test]
fn fleet_replay_catches_injected_cost_divergence() {
    let clean = FleetServedCase {
        requests: 10,
        seed: 23,
        ..FleetServedCase::default()
    };
    let replay = clean.replay().expect("clean fleet must replay clean");
    assert_eq!(replay.fleet.completed(), 10);
    assert_eq!(
        replay.probe_cycles.0, replay.probe_cycles.1,
        "same-class twins must charge identical cycles on a clean fleet"
    );

    let injected = FleetServedCase {
        requests: 10,
        seed: 23,
        inject: Some(CostConfig {
            theta_r: 0.25,
            mma_efficiency: 0.05,
            ..CostConfig::default()
        }),
        ..FleetServedCase::default()
    };
    let mismatch = injected
        .replay()
        .expect_err("an injected cost model on one twin must be caught");
    assert_eq!(mismatch.kind, CheckKind::Fleet, "{mismatch}");
    assert!(
        mismatch.detail.contains("cost models diverge"),
        "the mismatch must name the cost plane: {mismatch}"
    );
}

/// `assert_case` (the entry point shrunk reproducers call) passes clean
/// cases silently and panics with the mismatch otherwise.
#[test]
fn assert_case_matches_run_case_verdicts() {
    let clean = Case::generate(DeviceId::Rtx5090, AlgoKind::OneD, Precision::Fp16, 3);
    kami::verify::assert_case(&clean, &Harness::default());

    let perturbed = Harness {
        cost: Some(CostConfig {
            theta_r: 0.5,
            ..CostConfig::default()
        }),
        ..Harness::default()
    };
    let result = std::panic::catch_unwind(|| kami::verify::assert_case(&clean, &perturbed));
    assert!(result.is_err(), "perturbed assert_case must panic");
}

/// Regression: sweep-found 2.5D case where the 16³ shape with q=c=2 on
/// Intel's m16n16k16 MMA pads each 8×8×4 warp fragment 16×, which the
/// old fixed `8·t_cp + 128` compute bracket rejected. The bracket is
/// now derived from the fragment shape padded to the native instruction.
#[test]
fn repro_intelmax1100_25d_subnative_fragment_padding() {
    use kami::verify::{assert_case, Case, CaseAlgo, DeviceId};
    let case = Case {
        id: 7298417240558648820,
        device: DeviceId::IntelMax1100,
        algo: CaseAlgo::TwoHalfD { q: 2, c: 2 },
        precision: Precision::Fp16,
        m: 16,
        n: 16,
        k: 16,
        warps: 8,
        alpha: 1.0,
        beta: 0.0,
        sparsity: None,
        epilogue: None,
        batch: 1,
        data_seed: 12188158517699191176,
    };
    assert_case(&case, &Harness::default());
}

/// Regression: sweep-found dense twin of the case above — a 16×48×16
/// KAMI-1D product with p=4 on AMD's m16n16k16 MMA has (4 × 48 × 4)
/// per-warp-stage fragments that pad 16×, so the dense compute bracket
/// scales its upper bound by the fragment's padding inflation.
#[test]
fn repro_amd7900xtx_1d_subnative_fragment_padding() {
    use kami::core::Algo;
    use kami::verify::{assert_case, Case, CaseAlgo, DeviceId};
    for data_seed in [603589650968577474u64, 1172480627808539947] {
        let case = Case {
            id: 15799213014198909268,
            device: DeviceId::Amd7900Xtx,
            algo: CaseAlgo::Dense(Algo::OneD),
            precision: Precision::Bf16,
            m: 16,
            n: 48,
            k: 16,
            warps: 4,
            alpha: 1.0,
            beta: 0.0,
            sparsity: None,
            epilogue: None,
            batch: 1,
            data_seed,
        };
        assert_case(&case, &Harness::default());
    }
}
