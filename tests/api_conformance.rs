//! API conformance: the classic free functions, the [`GemmRequest`]
//! builder, and the kami-serve front door are three routes into the
//! same engines and must agree bit-for-bit.
//!
//! Every test pins a configuration, runs it through two (or three) of
//! the routes, and compares output elements with `==` — no tolerance.
//! The unified error facade is checked at the end: each layer's typed
//! error converts into [`kami::Error`] and exposes a walkable
//! `source()` chain.

use kami::core::{
    batched_gemm, gemm, gemm_25d, gemm_auto, gemm_padded, gemm_scaled, lowrank_gemm, Algo,
    GemmRequest, Kami25dConfig, KamiConfig, Op,
};
use kami::prelude::*;
use kami::serve::ServerConfig;

fn pair(m: usize, n: usize, k: usize, seed: u64) -> (Matrix, Matrix) {
    (
        Matrix::seeded_uniform(m, k, seed),
        Matrix::seeded_uniform(k, n, seed + 1),
    )
}

#[test]
fn gemm_wrapper_equals_request_builder() {
    let dev = device::gh200();
    let (a, b) = pair(64, 64, 64, 21);
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);

    let direct = gemm(&dev, &cfg, &a, &b).unwrap();
    let built = GemmRequest::gemm(a, b)
        .precision(Precision::Fp16)
        .algo(Algo::TwoD)
        .execute(&dev)
        .unwrap()
        .into_single()
        .unwrap();

    assert_eq!(direct.c.as_slice(), built.c.as_slice());
    assert_eq!(direct.report.cycles, built.report.cycles);
    assert_eq!(direct.useful_flops, built.useful_flops);
}

#[test]
fn auto_and_padded_wrappers_equal_request_builder() {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);

    let (a, b) = pair(64, 64, 64, 33);
    let direct = gemm_auto(&dev, &cfg, &a, &b).unwrap();
    let built = GemmRequest::from_config(Op::GemmAuto { a, b }, &cfg)
        .execute_single(&dev)
        .unwrap();
    assert_eq!(direct.c.as_slice(), built.c.as_slice());

    // Ragged shape exercises the pad-and-crop path.
    let (a, b) = pair(50, 46, 70, 35);
    let direct = gemm_padded(&dev, &cfg, &a, &b).unwrap();
    let built = GemmRequest::from_config(Op::GemmPadded { a, b }, &cfg)
        .execute_single(&dev)
        .unwrap();
    assert_eq!(direct.c.as_slice(), built.c.as_slice());
}

#[test]
fn scaled_wrapper_equals_builder_epilogue() {
    let dev = device::gh200();
    let (a, b) = pair(32, 32, 32, 41);
    let c0 = Matrix::seeded_uniform(32, 32, 43);
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp64);

    let direct = gemm_scaled(&dev, &cfg, 2.0, &a, &b, -0.5, &c0).unwrap();
    let built = GemmRequest::from_config(Op::Gemm { a, b }, &cfg)
        .scaled(2.0, -0.5, c0)
        .execute_single(&dev)
        .unwrap();
    assert_eq!(direct.c.as_slice(), built.c.as_slice());
}

#[test]
fn batched_wrapper_equals_request_builder() {
    let dev = device::gh200();
    let pairs: Vec<_> = (0..4).map(|i| pair(32, 32, 64, 100 + 10 * i)).collect();
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);

    let direct = batched_gemm(&dev, &cfg, &pairs).unwrap();
    let built = GemmRequest::from_config(
        Op::Batched {
            pairs,
            varied: false,
        },
        &cfg,
    )
    .execute(&dev)
    .unwrap()
    .into_batched()
    .unwrap();

    assert_eq!(direct.outputs.len(), built.outputs.len());
    for (d, v) in direct.outputs.iter().zip(&built.outputs) {
        assert_eq!(d.as_slice(), v.as_slice());
    }
    assert_eq!(direct.total_cycles, built.total_cycles);
}

#[test]
fn lowrank_and_25d_wrappers_equal_request_builder() {
    let dev = device::gh200();

    let u = Matrix::seeded_uniform(96, 16, 51);
    let v = Matrix::seeded_uniform(16, 96, 52);
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(4);
    let direct = lowrank_gemm(&dev, &cfg, &u, &v).unwrap();
    let built = GemmRequest::from_config(Op::Lowrank { u, v }, &cfg)
        .execute_single(&dev)
        .unwrap();
    assert_eq!(direct.c.as_slice(), built.c.as_slice());

    let (a, b) = pair(64, 64, 64, 61);
    let direct = gemm_25d(&dev, &Kami25dConfig::new(2, 2, Precision::Fp16), &a, &b).unwrap();
    let built = GemmRequest::gemm_25d(a, b, 2, 2)
        .precision(Precision::Fp16)
        .execute_single(&dev)
        .unwrap();
    assert_eq!(direct.c.as_slice(), built.c.as_slice());
}

#[test]
fn served_route_equals_direct_route() {
    let dev = device::gh200();
    let (a, b) = pair(64, 64, 64, 71);
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
    let direct = gemm(&dev, &cfg, &a, &b).unwrap();

    let server = Server::with_config(&dev, ServerConfig::default());
    let req = ServeRequest::dense(GemmRequest::from_config(Op::Gemm { a, b }, &cfg));
    let ticket = server.submit(req).unwrap();
    server.shutdown_and_drain();
    let served = ticket
        .wait()
        .unwrap()
        .output
        .into_dense()
        .unwrap()
        .into_single()
        .unwrap();

    assert_eq!(direct.c.as_slice(), served.c.as_slice());
    assert_eq!(direct.useful_flops, served.useful_flops);
}

#[test]
fn error_facade_spans_every_layer() {
    use std::error::Error as StdError;

    // Sched: an infeasible Stream-K ask surfaces typed, not stringly.
    let dev = device::gh200();
    let sched_err = Scheduler::new(&dev)
        .with_decomposition(Decomposition::StreamK)
        .run(
            &BlockWork::uniform(16, 16, 16, Precision::Fp16, 1),
            &PlanCache::new(),
        )
        .unwrap_err();
    let facade: kami::Error = sched_err.into();
    assert!(facade.to_string().contains("sched"));

    // Sparse: structural misuse is a typed SparseError.
    let sparse_err =
        BlockSparseMatrix::try_from_blocks(17, 16, 16, BlockOrder::RowMajor, vec![]).unwrap_err();
    assert!(matches!(sparse_err, SparseError::Misaligned { .. }));
    let facade: kami::Error = sparse_err.into();
    assert!(facade.source().is_some());

    // Serve: backpressure is a typed rejection carrying the capacity.
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: 0,
            ..ServerConfig::default()
        },
    );
    let (a, b) = pair(32, 32, 64, 81);
    let serve_err = server
        .submit(ServeRequest::gemm(a, b, Precision::Fp16))
        .unwrap_err();
    assert_eq!(serve_err, ServeError::QueueFull { capacity: 0 });
    let facade: kami::Error = serve_err.into();
    assert!(facade.to_string().contains("serve"));

    // Core: and the `?` operator composes across layers in one chain.
    fn mixed(dev: &DeviceSpec) -> kami::Result<u64> {
        let (a, b) = (
            Matrix::seeded_uniform(64, 64, 91),
            Matrix::seeded_uniform(64, 64, 92),
        );
        let r = gemm(dev, &KamiConfig::new(Algo::TwoD, Precision::Fp16), &a, &b)?;
        Ok(r.useful_flops)
    }
    assert!(mixed(&dev).is_ok());
}
