//! Tall-skinny k-split path: property-based bit-identity against a
//! hand-recomposed `gemm_legacy` oracle, fused epilogues against the
//! unfused reference application, and a deep-k regression pin.
//!
//! The oracle re-implements the documented numerics contract from
//! scratch — chunk `i` covers A columns `[i·CK, (i+1)·CK)`, partials
//! merge pairwise `(0,1), (2,3), …` level by level with one rounding at
//! the output precision per add, the epilogue applies last — but runs
//! every chunk through the *legacy* interleaved engine, so the test is
//! differential across both the decomposition and the engine split.

use kami::core::gemm::c_precision;
use kami::core::{
    combine_partials, gemm_legacy, gemm_padded, gemm_skinny, is_tall_skinny, reference_gemm, Algo,
    Epilogue, KamiConfig, SKINNY_CHUNK_K, SKINNY_K_MIN,
};
use kami::prelude::*;
use proptest::prelude::*;

/// The chunk-shape config the request layer would resolve: 1D with a
/// warp count dividing every skinny m we draw (and 256 = CK).
fn skinny_cfg(prec: Precision) -> KamiConfig {
    let mut cfg = KamiConfig::new(Algo::OneD, prec);
    cfg.warps = 2;
    cfg
}

/// The contract oracle: chunked legacy GEMMs + pairwise-tree merge +
/// unfused reference epilogue. `k` must be a multiple of
/// [`SKINNY_CHUNK_K`] so the legacy engine sees full chunks (ragged
/// tails go through `gemm_padded`, covered by the pin test below).
fn recomposed_oracle(
    dev: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
    epilogue: Option<&Epilogue>,
) -> Matrix {
    let (m, n, k) = (a.rows(), b.cols(), a.cols());
    let chunks = k.div_ceil(SKINNY_CHUNK_K);
    let prec = c_precision(cfg.precision);
    let mut parts = Vec::with_capacity(chunks);
    for i in 0..chunks {
        let k0 = i * SKINNY_CHUNK_K;
        let ck = SKINNY_CHUNK_K.min(k - k0);
        let a_i = a.submatrix(0, k0, m, ck);
        let b_i = b.submatrix(k0, 0, ck, n);
        let part = if ck == SKINNY_CHUNK_K {
            gemm_legacy(dev, cfg, &a_i, &b_i).expect("full chunk runs legacy")
        } else {
            gemm_padded(dev, cfg, &a_i, &b_i).expect("ragged chunk runs padded")
        };
        parts.push(part.c);
    }
    let mut want = combine_partials(parts, prec);
    if let Some(epi) = epilogue {
        epi.apply_reference(&mut want, prec);
    }
    want
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Plain skinny products are bit-identical to the recomposed
    /// legacy-engine oracle, and numerically close to the CPU reference.
    #[test]
    fn skinny_matches_recomposed_legacy_oracle(
        mi in 1usize..=2,
        ni in 1usize..=2,
        kc in 16usize..=40,
        pi in 0usize..2,
        seed in 0u64..1_000_000,
    ) {
        let (m, n) = (16 * mi, 16 * ni);
        let k = kc * SKINNY_CHUNK_K; // 4096..=10240, all >= SKINNY_K_MIN
        prop_assert!(k >= SKINNY_K_MIN && is_tall_skinny(m, n, k));
        let prec = [Precision::Fp16, Precision::Bf16][pi];
        let dev = device::gh200();
        let cfg = skinny_cfg(prec);
        let a = Matrix::seeded_uniform(m, k, seed);
        let b = Matrix::seeded_uniform(k, n, seed.wrapping_add(1));
        let res = gemm_skinny(&dev, &cfg, &a, &b, None).expect("skinny path runs");
        let want = recomposed_oracle(&dev, &cfg, &a, &b, None);
        prop_assert_eq!(res.c.max_abs_diff(&want), 0.0, "bit-identity to the oracle");
        // Tolerance vs the exact-order reference scales with the chunk
        // accumulation depth plus the lg(chunks) tree adds.
        let reference = reference_gemm(&a, &b, prec);
        let u = prec.unit_roundoff();
        let tol = 8.0 * (SKINNY_CHUNK_K + kc.ilog2() as usize) as f64 * u;
        prop_assert!(res.c.rel_frobenius_error(&reference) < tol);
    }

    /// Fused epilogues on the skinny path: bias and ReLU bit-identical
    /// to the unfused reference application, GELU and softmax-scale
    /// within the precision tolerance of it.
    #[test]
    fn skinny_epilogues_match_unfused_reference(
        ei in 0usize..4,
        kc in 16usize..=32,
        seed in 0u64..1_000_000,
    ) {
        let (m, n) = (16, 32);
        let k = kc * SKINNY_CHUNK_K;
        let prec = Precision::Fp16;
        let dev = device::gh200();
        let cfg = skinny_cfg(prec);
        let a = Matrix::seeded_uniform(m, k, seed);
        let b = Matrix::seeded_uniform(k, n, seed.wrapping_add(1));
        let epi = match ei {
            0 => Epilogue::Bias(Matrix::seeded_uniform(1, n, seed.wrapping_add(2))),
            1 => Epilogue::Relu,
            2 => Epilogue::Gelu,
            _ => Epilogue::SoftmaxScale(0.125),
        };
        let fused = gemm_skinny(&dev, &cfg, &a, &b, Some(&epi)).expect("fused skinny runs");
        let want = recomposed_oracle(&dev, &cfg, &a, &b, Some(&epi));
        match epi {
            Epilogue::Bias(_) | Epilogue::Relu => {
                // The fused path applies exactly `apply_reference`.
                prop_assert_eq!(fused.c.max_abs_diff(&want), 0.0);
            }
            _ => {
                let tol = 64.0 * c_precision(prec).unit_roundoff();
                prop_assert!(fused.c.rel_frobenius_error(&want) < tol);
            }
        }
    }
}

/// Regression pin: the flagship deep-k shape from the issue. The exact
/// chunk/tree structure (256 chunks, 8 tree rounds) must never drift.
#[test]
fn deep_k_regression_pin() {
    let (m, n, k) = (16, 16, 65536);
    let dev = device::gh200();
    let cfg = skinny_cfg(Precision::Fp16);
    let a = Matrix::seeded_uniform(m, k, 0xDEE9);
    let b = Matrix::seeded_uniform(k, n, 0xDEEA);
    let res = gemm_skinny(&dev, &cfg, &a, &b, None).expect("deep-k skinny runs");
    let want = recomposed_oracle(&dev, &cfg, &a, &b, None);
    assert_eq!(res.c.max_abs_diff(&want), 0.0, "bit-identity at k = 65536");

    // Structure pin: 256 chunks of 256 merge in ceil(lg 256) = 8 rounds.
    let chunks = k / SKINNY_CHUNK_K;
    assert_eq!(chunks, 256);
    let rounds = kami::core::model::skinny::tree_depth(chunks);
    assert_eq!(rounds, 8);
    // The report appends exactly one synthesized phase per round and
    // stays internally consistent (cycles == sum of phase costs).
    let phase_sum: f64 = res
        .report
        .phase_costs
        .iter()
        .map(|p| p.cycles(res.report.mode))
        .sum();
    assert!((res.report.cycles - phase_sum).abs() <= 1e-6 * (1.0 + phase_sum));
    let fixup = kami::core::model::skinny::fixup_cycles(
        &dev,
        &cfg.cost,
        m,
        n,
        chunks,
        c_precision(cfg.precision),
        0,
        0,
    )
    .expect("closed form evaluates");
    let measured: f64 = res.report.phase_costs[res.report.phase_costs.len() - rounds..]
        .iter()
        .map(|p| p.cycles(res.report.mode))
        .sum();
    assert!(
        (measured - fixup).abs() <= 1e-6 * (1.0 + fixup),
        "tree-fixup suffix {measured:.3} != closed form {fixup:.3}"
    );

    // Numerics stay sane even 65536 deep: the tree keeps the error at
    // O(CK + lg chunks) roundings, far below the serial O(k) bound.
    let reference = reference_gemm(&a, &b, Precision::Fp16);
    let tol = 8.0 * (SKINNY_CHUNK_K + 8) as f64 * Precision::Fp16.unit_roundoff();
    assert!(res.c.rel_frobenius_error(&reference) < tol);
}

/// A ragged tail (k not a multiple of the chunk depth) pads its final
/// chunk and still matches the recomposed oracle bit for bit.
#[test]
fn ragged_tail_chunk_matches_oracle() {
    let (m, n, k) = (16, 16, SKINNY_K_MIN + 100);
    let dev = device::gh200();
    let cfg = skinny_cfg(Precision::Fp16);
    let a = Matrix::seeded_uniform(m, k, 77);
    let b = Matrix::seeded_uniform(k, n, 78);
    let res = gemm_skinny(&dev, &cfg, &a, &b, None).expect("ragged skinny runs");
    let want = recomposed_oracle(&dev, &cfg, &a, &b, None);
    assert_eq!(res.c.max_abs_diff(&want), 0.0);
}
