//! Integration tests for the beyond-the-paper extensions: the 2.5D
//! interpolation, the BLAS epilogue, transposed operands, variable-size
//! batches, and the execution tracer.

use kami::core::{
    batched_gemm_varied, gemm, gemm_25d, gemm_scaled, gemm_t, reference_gemm_f64, Algo,
    Kami25dConfig, KamiConfig, MatOp,
};
use kami::prelude::*;
use kami::sim::{Engine, GlobalMemory, TraceKind};

#[test]
fn two_point_five_d_interpolates_2d_and_3d() {
    let dev = device::gh200();
    let n = 32;
    let a = Matrix::seeded_uniform(n, n, 1);
    let b = Matrix::seeded_uniform(n, n, 2);
    let want = reference_gemm_f64(&a, &b);
    // Correctness at every (q, c) on the ladder.
    for (q, c) in [(2usize, 1usize), (2, 2), (4, 1), (4, 2)] {
        if n % q != 0 || n % (c * q) != 0 || c > q {
            continue;
        }
        let cfg = Kami25dConfig::new(q, c, Precision::Fp64);
        let res = gemm_25d(&dev, &cfg, &a, &b).unwrap();
        assert!(res.c.max_abs_diff(&want) < 1e-12, "q={q} c={c}");
    }
    // Stage count shrinks with replication at a fixed warp budget:
    // (q=4, c=1) has 4 stages of latency; (q=2, c=4 would be invalid),
    // but (q=2, c=2) at 8 warps has 2 stages — less comm latency per
    // the model and the simulator agrees.
    let r16 = gemm_25d(&dev, &Kami25dConfig::new(4, 1, Precision::Fp16), &a, &b).unwrap();
    let r8 = gemm_25d(&dev, &Kami25dConfig::new(2, 2, Precision::Fp16), &a, &b).unwrap();
    assert!(r8.report.totals.comm < r16.report.totals.comm);
}

#[test]
fn blas_epilogue_full_semantics() {
    let dev = device::gh200();
    let (m, n, k) = (24usize, 16usize, 32usize);
    let a = Matrix::seeded_uniform(m, k, 3);
    let b = Matrix::seeded_uniform(k, n, 4);
    let c0 = Matrix::seeded_uniform(m, n, 5);
    let ab = reference_gemm_f64(&a, &b);
    for (alpha, beta) in [(1.0, 1.0), (2.0, 0.0), (-1.5, 0.5), (0.0, 3.0)] {
        let want = Matrix::from_fn(m, n, |r, c| alpha * ab[(r, c)] + beta * c0[(r, c)]);
        for algo in [Algo::OneD, Algo::TwoD] {
            let cfg = KamiConfig::new(algo, Precision::Fp64);
            let res = gemm_scaled(&dev, &cfg, alpha, &a, &b, beta, &c0).unwrap();
            assert!(
                res.c.max_abs_diff(&want) < 1e-12,
                "{} alpha={alpha} beta={beta}",
                algo.label()
            );
        }
    }
}

#[test]
fn transposed_products_compose() {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp64);
    let a = Matrix::seeded_uniform(32, 16, 6);
    let b = Matrix::seeded_uniform(32, 16, 7);
    // AᵀB: (16x32)·(32x16).
    let got = gemm_t(&dev, &cfg, MatOp::Transpose, &a, MatOp::None, &b).unwrap();
    let want = reference_gemm_f64(&a.transposed(), &b);
    assert!(got.c.max_abs_diff(&want) < 1e-12);
    // ABᵀ: (32x16)·(16x32).
    let got = gemm_t(&dev, &cfg, MatOp::None, &a, MatOp::Transpose, &b).unwrap();
    let want = reference_gemm_f64(&a, &b.transposed());
    assert!(got.c.max_abs_diff(&want) < 1e-12);
}

#[test]
fn varied_batch_handles_mixed_shapes_and_schedules_lpt() {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
    let shapes: Vec<(usize, usize, usize)> =
        vec![(16, 16, 16), (48, 48, 48), (8, 24, 40), (33, 17, 5)];
    let pairs: Vec<_> = shapes
        .iter()
        .enumerate()
        .map(|(i, &(m, n, k))| {
            (
                Matrix::seeded_uniform(m, k, 900 + i as u64),
                Matrix::seeded_uniform(k, n, 950 + i as u64),
            )
        })
        .collect();
    let res = batched_gemm_varied(&dev, &cfg, &pairs).unwrap();
    for (i, (a, b)) in pairs.iter().enumerate() {
        let want = reference_gemm_f64(a, b);
        assert!(res.outputs[i].max_abs_diff(&want) < 1e-12, "entry {i}");
    }
    // With plenty of SMs, the makespan equals the largest block's cycles,
    // which must be at least the 48³ entry's standalone cost.
    let alone = kami::core::gemm_padded(&dev, &cfg, &pairs[1].0, &pairs[1].1).unwrap();
    assert!(res.total_cycles >= alone.report.cycles * 0.999);
}

#[test]
fn tracer_accounts_every_category_of_a_kami_kernel() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let cfg = KamiConfig::new(Algo::TwoD, prec);
    let n = 32;
    let a = Matrix::seeded_uniform(n, n, 8);
    let b = Matrix::seeded_uniform(n, n, 9);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", &a, prec);
    let bb = gmem.upload("B", &b, prec);
    let cb = gmem.alloc_zeroed("C", n, n, prec);
    let kernel = kami::core::algo2d::build_kernel(&cfg, n, n, n, ab, bb, cb, prec);
    let (report, trace) = Engine::new(&dev).run_traced(&kernel, &mut gmem).unwrap();
    assert!((trace.total_cycles() - report.cycles).abs() < 1e-9);
    for kind in [
        TraceKind::GlobalLoad,
        TraceKind::SharedStore,
        TraceKind::SharedLoad,
        TraceKind::Mma,
        TraceKind::GlobalStore,
    ] {
        assert!(
            trace.events.iter().any(|e| e.kind == kind),
            "missing {kind:?} events"
        );
    }
    // Every warp appears.
    for w in 0..cfg.warps {
        assert!(trace.warp_events(w).count() > 0, "warp {w} silent");
    }
    // Chrome export round-trips as JSON.
    let json = trace.to_chrome_json();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v.as_array().unwrap().len(), trace.events.len());
}

#[test]
fn scaled_gemm_preserves_cycle_structure() {
    // The alpha-only epilogue adds register ops but no communication.
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
    let a = Matrix::seeded_uniform(16, 16, 10);
    let b = Matrix::seeded_uniform(16, 16, 11);
    let zero = Matrix::zeros(16, 16);
    let plain = gemm(&dev, &cfg, &a, &b).unwrap();
    let scaled = gemm_scaled(&dev, &cfg, 2.0, &a, &b, 0.0, &zero).unwrap();
    assert_eq!(
        plain.report.comm_volume(),
        scaled.report.comm_volume(),
        "alpha scaling must not touch shared memory"
    );
    assert!(scaled.report.totals.reg > plain.report.totals.reg);
}
