//! Integration tests for the comparator strategies: correctness on the
//! shared simulator and the performance orderings the paper reports.

use kami::baselines::{cublas, cublasdx, cutlass, magma, syclbench};
use kami::core::{gemm_auto, reference_gemm_f64, Algo, KamiConfig};
use kami::prelude::*;

#[test]
fn every_baseline_computes_the_right_product() {
    let gh = device::gh200();
    let intel = device::intel_max1100();
    let n = 64;
    let a = Matrix::seeded_uniform(n, n, 10);
    let b = Matrix::seeded_uniform(n, n, 11);
    let want = reference_gemm_f64(&a, &b);

    let checks: Vec<(&str, Matrix)> = vec![
        (
            "cuBLASDx",
            cublasdx::gemm(&gh, Precision::Fp16, 4, &a, &b).unwrap().c,
        ),
        (
            "CUTLASS",
            cutlass::gemm(&gh, Precision::Fp16, &a, &b).unwrap().c,
        ),
        (
            "cuBLAS",
            cublas::gemm(&gh, Precision::Fp64, &a, &b).unwrap().c,
        ),
        (
            "MAGMA",
            magma::gemm(&gh, Precision::Fp64, &a, &b).unwrap().c,
        ),
        (
            "SYCL-Bench",
            syclbench::gemm(&intel, Precision::Fp16, 4, &a, &b)
                .unwrap()
                .c,
        ),
    ];
    for (name, c) in checks {
        let err = c.rel_frobenius_error(&want);
        assert!(err < 1e-2, "{name}: err {err}");
    }
}

#[test]
fn kami_wins_the_paper_headline_comparisons() {
    let gh = device::gh200();
    let n = 64;
    let a = Matrix::seeded_uniform(n, n, 20);
    let b = Matrix::seeded_uniform(n, n, 21);

    // Fig 8(b): FP16 block level, KAMI-1D > cuBLASDx > CUTLASS at 64³.
    let kami = gemm_auto(&gh, &KamiConfig::new(Algo::OneD, Precision::Fp16), &a, &b)
        .unwrap()
        .block_tflops(&gh);
    let dx = cublasdx::gemm(&gh, Precision::Fp16, 4, &a, &b)
        .unwrap()
        .block_tflops(&gh);
    let ct = cutlass::gemm(&gh, Precision::Fp16, &a, &b)
        .unwrap()
        .block_tflops(&gh);
    assert!(kami > dx, "KAMI {kami:.1} !> cuBLASDx {dx:.1}");
    assert!(dx > ct, "cuBLASDx {dx:.1} !> CUTLASS {ct:.1}");

    // §5.4 ordering at small batched sizes: KAMI > MAGMA > cuBLAS.
    let t_kami = {
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let est = kami::core::estimate_batched(&gh, &cfg, 16, 16, 16, 1000).unwrap();
        3e-6 + est.seconds(&gh)
    };
    let t_magma = magma::batched_seconds(&gh, Precision::Fp64, 16, 16, 16, 1000).unwrap();
    let t_cublas = cublas::batched_seconds(&gh, Precision::Fp64, 16, 16, 16, 1000).unwrap();
    assert!(t_kami < t_magma && t_magma < t_cublas);
    // Two orders of magnitude over cuBLAS at 16³ (paper: up to 713x).
    assert!(t_cublas / t_kami > 50.0, "ratio {}", t_cublas / t_kami);
}

#[test]
fn speedup_grows_as_matrices_shrink() {
    // The motivating observation (§3.1): fixed-tile libraries waste more
    // at smaller orders, so KAMI's advantage is largest there.
    let gh = device::gh200();
    let ratio_at = |n: usize| {
        let a = Matrix::seeded_uniform(n, n, 30);
        let b = Matrix::seeded_uniform(n, n, 31);
        let kami = gemm_auto(&gh, &KamiConfig::new(Algo::OneD, Precision::Fp16), &a, &b)
            .unwrap()
            .block_tflops(&gh);
        let ct = cutlass::gemm(&gh, Precision::Fp16, &a, &b)
            .unwrap()
            .block_tflops(&gh);
        kami / ct
    };
    let r16 = ratio_at(16);
    let r64 = ratio_at(64);
    let r128 = ratio_at(128);
    assert!(r16 > r64, "{r16} !> {r64}");
    assert!(r64 > r128, "{r64} !> {r128}");
}

#[test]
fn cublasdx_hits_the_shared_memory_cliff() {
    // The paper's Fig 3 note: cuBLASDx "could not be larger [than ~98]
    // due to the limitation of shared memory capacity" for FP64.
    let gh = device::gh200();
    let a96 = Matrix::seeded_uniform(96, 96, 40);
    let b96 = Matrix::seeded_uniform(96, 96, 41);
    assert!(cublasdx::gemm(&gh, Precision::Fp64, 6, &a96, &b96).is_ok());
    let a112 = Matrix::seeded_uniform(112, 112, 42);
    let b112 = Matrix::seeded_uniform(112, 112, 43);
    let failed = [2usize, 4, 7, 8]
        .iter()
        .all(|&p| cublasdx::gemm(&gh, Precision::Fp64, p, &a112, &b112).is_err());
    assert!(failed, "112³ FP64 should exceed cuBLASDx's shared memory");
}

#[test]
fn kami_uses_less_shared_memory_than_staged_baselines() {
    // §5.6.1: "only 2-8 KB of shared memory per block, significantly
    // less than cuBLASDx's 27 KB and CUTLASS's 65 KB".
    let gh = device::gh200();
    let n = 64;
    let a = Matrix::seeded_uniform(n, n, 50);
    let b = Matrix::seeded_uniform(n, n, 51);
    let kami = gemm_auto(&gh, &KamiConfig::new(Algo::OneD, Precision::Fp16), &a, &b).unwrap();
    let dx = cublasdx::gemm(&gh, Precision::Fp16, 4, &a, &b).unwrap();
    let ct = cutlass::gemm(&gh, Precision::Fp16, &a, &b).unwrap();
    assert!(kami.report.smem_extent < dx.report.smem_extent);
    assert!(dx.report.smem_extent < ct.report.smem_extent);
    assert!(
        kami.report.smem_extent <= 8 * 1024,
        "{}",
        kami.report.smem_extent
    );
}

#[test]
fn low_rank_gap_exceeds_square_gap() {
    // §5.3: "KAMI exhibits more pronounced advantages in low-rank GEMM
    // than in square matrix GEMM".
    let gh = device::gh200();
    let m = 96;
    let square = {
        let a = Matrix::seeded_uniform(m, m, 60);
        let b = Matrix::seeded_uniform(m, m, 61);
        let kami = gemm_auto(&gh, &KamiConfig::new(Algo::OneD, Precision::Fp16), &a, &b)
            .unwrap()
            .block_tflops(&gh);
        let dx = cublasdx::gemm(&gh, Precision::Fp16, 4, &a, &b)
            .unwrap()
            .block_tflops(&gh);
        kami / dx
    };
    let lowrank = {
        let u = Matrix::seeded_uniform(m, 16, 62);
        let v = Matrix::seeded_uniform(16, m, 63);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(4);
        let kami = kami::core::lowrank_gemm(&gh, &cfg, &u, &v)
            .unwrap()
            .block_tflops(&gh);
        let dx = cublasdx::gemm(&gh, Precision::Fp16, 4, &u, &v)
            .unwrap()
            .block_tflops(&gh);
        kami / dx
    };
    assert!(
        lowrank > square,
        "low-rank gap {lowrank:.2} !> square gap {square:.2}"
    );
}
