//! Differential tests for the nnz-weighted sparse scheduler: the
//! nnz-aware Stream-K split must beat quantized data-parallel placement
//! on skewed sparsity, scheduled kernels must return bit-identical
//! numerics to the unscheduled ones, and repeated sparsity structures
//! must be served from the plan cache without re-tuning.

use kami::core::{Algo, KamiConfig};
use kami::prelude::*;
use kami::sched::{SparseKind, SparseWork};
use kami::sparse::gen::{power_law_block_sparse, random_block_sparse};
use kami::sparse::{spgemm::spgemm, spmm::spmm};

/// The acceptance workload: power-law row-block skew (alpha = 1.2 over
/// a 64-row block grid — the first block row is dense, the tail thins
/// to one block per row).
fn skewed() -> BlockSparseMatrix {
    power_law_block_sparse(1024, 16, 1.2, BlockOrder::RowMajor, 2024)
}

#[test]
fn nnz_streamk_beats_data_parallel_on_power_law_skew() {
    let dev = device::gh200();
    let plans = PlanCache::new();
    let a = skewed();
    let work = SparseWork::from_spmm(&a, 64, Precision::Fp16);

    let dp = Scheduler::new(&dev)
        .with_decomposition(Decomposition::DataParallel)
        .run_sparse(&work, &plans)
        .unwrap();
    let sk = Scheduler::new(&dev)
        .with_decomposition(Decomposition::StreamK)
        .run_sparse(&work, &plans)
        .unwrap();

    assert!(
        sk.schedule.makespan_cycles <= dp.schedule.makespan_cycles,
        "stream-k ({:.0}) worse than data-parallel ({:.0})",
        sk.schedule.makespan_cycles,
        dp.schedule.makespan_cycles
    );
    // Acceptance bar: ≥ 1.2× lower predicted makespan. Data-parallel
    // eats the whole dense first block row on one SM; the nnz split
    // spreads those iterations across the device.
    let ratio = dp.schedule.makespan_cycles / sk.schedule.makespan_cycles;
    assert!(
        ratio >= 1.2,
        "nnz-weighted stream-k only {ratio:.3}x better than data-parallel"
    );
    // The split must also balance the tail, not just shrink the span.
    assert!(sk.schedule.tail_imbalance < dp.schedule.tail_imbalance);
    assert!(sk.nnz_skew > 10.0, "workload lost its skew");
}

#[test]
fn streamk_conserves_nonzero_iterations() {
    // Every nonzero k-iteration is placed exactly once, whatever the
    // decomposition — Σ per-SM iterations == Σ per-row nnz == stored
    // blocks of A.
    let dev = device::gh200();
    let plans = PlanCache::new();
    let a = skewed();
    let work = SparseWork::from_spmm(&a, 64, Precision::Fp16);
    for decomp in [
        Decomposition::DataParallel,
        Decomposition::WeightedLpt,
        Decomposition::StreamK,
        Decomposition::Auto,
    ] {
        let r = Scheduler::new(&dev)
            .with_decomposition(decomp)
            .run_sparse(&work, &plans)
            .unwrap();
        let placed: usize = r.schedule.per_sm.iter().map(|s| s.k_iters).sum();
        assert_eq!(placed, a.nnz_blocks(), "{}", decomp.label());
        assert_eq!(r.total_nnz_iters, a.nnz_blocks(), "{}", decomp.label());
        assert_eq!(r.schedule.total_blocks, work.len(), "{}", decomp.label());
    }
}

#[test]
fn auto_never_loses_to_any_forced_sparse_mode() {
    let dev = device::gh200();
    for (label, a) in [
        ("power-law", skewed()),
        (
            "uniform",
            random_block_sparse(512, 512, 16, 0.5, BlockOrder::RowMajor, 7),
        ),
    ] {
        let work = SparseWork::from_spmm(&a, 64, Precision::Fp16);
        let plans = PlanCache::new();
        let auto = Scheduler::new(&dev).run_sparse(&work, &plans).unwrap();
        for forced in [
            Decomposition::DataParallel,
            Decomposition::WeightedLpt,
            Decomposition::StreamK,
        ] {
            let r = Scheduler::new(&dev)
                .with_decomposition(forced)
                .run_sparse(&work, &plans)
                .unwrap();
            assert!(
                auto.schedule.makespan_cycles <= r.schedule.makespan_cycles * (1.0 + 1e-12),
                "{label}: auto ({}) lost to {}",
                auto.schedule.decomposition.label(),
                forced.label()
            );
        }
    }
}

#[test]
fn scheduled_spmm_is_bit_identical_to_unscheduled() {
    let dev = device::gh200();
    let plans = PlanCache::new();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(8);
    // Same power-law skew family as the acceptance workload, at a size
    // the single-block kernel runs directly.
    let a = power_law_block_sparse(128, 16, 1.2, BlockOrder::RowMajor, 2024);
    let b = Matrix::seeded_uniform(128, 64, 11);

    let scheduled = spmm_scheduled(&Scheduler::new(&dev), &cfg, &a, &b, &plans).unwrap();
    let plain = spmm(&dev, &cfg, &a, &b).unwrap();

    // Bit-identical: the scheduler is a placement model over the same
    // per-output-block products; per-block accumulation order is
    // untouched (Stream-K owners reduce partials in ascending k order).
    assert_eq!(scheduled.result.c.max_abs_diff(&plain.c), 0.0);
    assert_eq!(scheduled.result.useful_flops, plain.useful_flops);
    assert_eq!(scheduled.report.kind, SparseKind::Spmm);
    assert_eq!(scheduled.report.total_nnz_iters, a.nnz_blocks());
    assert!(!scheduled.trace.events.is_empty());
}

#[test]
fn scheduled_spgemm_is_bit_identical_to_unscheduled() {
    let dev = device::gh200();
    let plans = PlanCache::new();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
    let a = random_block_sparse(128, 128, 16, 0.5, BlockOrder::RowMajor, 21);
    let b = random_block_sparse(128, 128, 16, 0.5, BlockOrder::RowMajor, 22);

    let scheduled = spgemm_scheduled(&Scheduler::new(&dev), &cfg, &a, &b, &plans).unwrap();
    let plain = spgemm(&dev, &cfg, &a, &b).unwrap();

    assert_eq!(
        scheduled
            .result
            .c
            .to_dense()
            .max_abs_diff(&plain.c.to_dense()),
        0.0
    );
    assert_eq!(scheduled.result.nnz_blocks, plain.nnz_blocks);
    assert_eq!(scheduled.report.kind, SparseKind::Spgemm);
    // The work stream's iterations are the symbolic block pairs.
    let sym = kami::sparse::symbolic(&a, &b);
    assert_eq!(scheduled.report.total_nnz_iters, sym.block_pairs);
}

#[test]
fn repeated_sparsity_structure_hits_the_plan_cache() {
    let dev = device::gh200();
    let plans = PlanCache::new();
    let a = skewed();
    let work = SparseWork::from_spmm(&a, 64, Precision::Fp16);
    let sched = Scheduler::new(&dev);

    let first = sched.run_sparse(&work, &plans).unwrap();
    assert_eq!(
        (first.schedule.plans_reused, first.schedule.plans_tuned),
        (0, 1),
        "first launch must tune the unit shape"
    );
    let tuner_misses = plans.tuner().misses();

    // Same structure again (and a different matrix with the same unit
    // shape): both are pure cache hits, no new tuning sweep.
    let second = sched.run_sparse(&work, &plans).unwrap();
    assert_eq!(
        (second.schedule.plans_reused, second.schedule.plans_tuned),
        (1, 0)
    );
    let other = power_law_block_sparse(1024, 16, 0.8, BlockOrder::RowMajor, 99);
    let third = sched
        .run_sparse(&SparseWork::from_spmm(&other, 64, Precision::Fp16), &plans)
        .unwrap();
    assert_eq!(
        (third.schedule.plans_reused, third.schedule.plans_tuned),
        (1, 0)
    );
    assert_eq!(
        plans.tuner().misses(),
        tuner_misses,
        "repeat launches re-tuned the shape"
    );
    // Identical structure ⇒ identical predicted schedule.
    assert_eq!(
        first.schedule.makespan_cycles,
        second.schedule.makespan_cycles
    );
}

#[test]
fn sparse_trace_tracks_match_per_sm_accounting() {
    let dev = device::gh200();
    let plans = PlanCache::new();
    let a = skewed();
    let work = SparseWork::from_spmm(&a, 64, Precision::Fp16);
    let (report, trace) = Scheduler::new(&dev)
        .with_decomposition(Decomposition::StreamK)
        .run_sparse_traced(&work, &plans)
        .unwrap();
    assert_eq!(trace.total_cycles(), report.schedule.makespan_cycles);
    for sm in &report.schedule.per_sm {
        let mut cursor = 0.0f64;
        let mut sum = 0.0f64;
        for e in trace.warp_events(sm.sm) {
            assert!(
                e.start >= cursor - 1e-9,
                "overlapping events on sm {}",
                sm.sm
            );
            cursor = e.start + e.duration;
            sum += e.duration;
        }
        assert!(
            (sum - sm.busy_cycles).abs() < 1e-6,
            "sm {} trace/report mismatch",
            sm.sm
        );
    }
}
