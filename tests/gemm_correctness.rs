//! Cross-crate integration tests: every KAMI algorithm against the CPU
//! oracle across precisions, sizes, shapes, and slicing configurations.

use kami::core::{
    gemm, gemm_auto, gemm_padded, lowrank_gemm, reference_gemm, reference_gemm_f64, Algo,
    KamiConfig,
};
use kami::prelude::*;

fn devices() -> Vec<DeviceSpec> {
    DeviceSpec::all_evaluated().to_vec()
}

#[test]
fn all_algorithms_match_oracle_across_precisions() {
    let dev = device::gh200();
    for prec in [
        Precision::Fp64,
        Precision::Fp16,
        Precision::Tf32,
        Precision::Fp8E4M3,
    ] {
        let n = 32;
        let a = Matrix::seeded_uniform(n, n, 1000);
        let b = Matrix::seeded_uniform(n, n, 1001);
        let want = reference_gemm(&a, &b, prec);
        for algo in Algo::ALL {
            let cfg = KamiConfig::new(algo, prec);
            let res = gemm_auto(&dev, &cfg, &a, &b).unwrap_or_else(|e| {
                panic!("{} {prec:?}: {e}", algo.label());
            });
            let tol = match prec {
                Precision::Fp64 => 1e-13,
                Precision::Fp8E4M3 => 0.2,
                _ => 1e-2,
            };
            let err = res.c.rel_frobenius_error(&want);
            assert!(err < tol, "{} {prec:?}: err {err}", algo.label());
        }
    }
}

#[test]
fn every_device_computes_identical_fp16_results() {
    let a = Matrix::seeded_uniform(64, 64, 2000);
    let b = Matrix::seeded_uniform(64, 64, 2001);
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
    let mut first: Option<Matrix> = None;
    for dev in devices() {
        let res = gemm_auto(&dev, &cfg, &a, &b).unwrap();
        match &first {
            None => first = Some(res.c),
            Some(c) => assert_eq!(
                res.c.max_abs_diff(c),
                0.0,
                "{} diverges from the first device",
                dev.name
            ),
        }
    }
}

#[test]
fn rectangular_and_padded_shapes() {
    let dev = device::gh200();
    let cases = [
        (24usize, 56usize, 40usize),
        (17, 3, 29),
        (1, 1, 1),
        (65, 66, 33),
    ];
    for (m, n, k) in cases {
        let a = Matrix::seeded_uniform(m, k, (m * 1000 + n) as u64);
        let b = Matrix::seeded_uniform(k, n, (k * 1000 + m) as u64);
        let want = reference_gemm_f64(&a, &b);
        for algo in Algo::ALL {
            let cfg = KamiConfig::new(algo, Precision::Fp64);
            let res = gemm_padded(&dev, &cfg, &a, &b)
                .unwrap_or_else(|e| panic!("{} {m}x{n}x{k}: {e}", algo.label()));
            assert_eq!((res.c.rows(), res.c.cols()), (m, n));
            assert!(
                res.c.max_abs_diff(&want) < 1e-12,
                "{} {m}x{n}x{k}",
                algo.label()
            );
        }
    }
}

#[test]
fn slicing_ladder_is_numerically_invisible() {
    let dev = device::gh200();
    let a = Matrix::seeded_uniform(64, 64, 3000);
    let b = Matrix::seeded_uniform(64, 64, 3001);
    let base = gemm(&dev, &KamiConfig::new(Algo::OneD, Precision::Fp16), &a, &b).unwrap();
    for f in [0.25, 0.5, 0.75] {
        for algo in Algo::ALL {
            let cfg = KamiConfig::new(algo, Precision::Fp16).with_smem_fraction(f);
            let res = gemm(&dev, &cfg, &a, &b).unwrap();
            // 1D shares its accumulation order with the baseline run;
            // 2D/3D agree among themselves at any fraction.
            if algo == Algo::OneD {
                assert_eq!(res.c.max_abs_diff(&base.c), 0.0, "1D f={f}");
            } else {
                let res0 = gemm(&dev, &KamiConfig::new(algo, Precision::Fp16), &a, &b).unwrap();
                assert_eq!(res.c.max_abs_diff(&res0.c), 0.0, "{} f={f}", algo.label());
            }
        }
    }
}

#[test]
fn low_rank_entry_point_consistent_with_general_gemm() {
    let dev = device::gh200();
    let u = Matrix::seeded_uniform(96, 16, 4000);
    let v = Matrix::seeded_uniform(16, 96, 4001);
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(4);
    let lr = lowrank_gemm(&dev, &cfg, &u, &v).unwrap();
    let gen = gemm_auto(&dev, &cfg, &u, &v).unwrap();
    let err = lr.c.rel_frobenius_error(&gen.c);
    assert!(err < 1e-3, "column-split vs k-split disagree: {err}");
    // The specialization must not be slower.
    assert!(lr.report.cycles <= gen.report.cycles * 1.01);
}

#[test]
fn gemm_reports_are_self_consistent() {
    let dev = device::gh200();
    let a = Matrix::seeded_uniform(64, 64, 5000);
    let b = Matrix::seeded_uniform(64, 64, 5001);
    for algo in Algo::ALL {
        let cfg = KamiConfig::new(algo, Precision::Fp16);
        let res = gemm_auto(&dev, &cfg, &a, &b).unwrap();
        let r = &res.report;
        // Totals add up per phase.
        let sum: f64 = r
            .phase_costs
            .iter()
            .map(|p| p.comm + p.compute + p.global + p.reg)
            .sum();
        assert!(
            (sum - (r.totals.comm + r.totals.compute + r.totals.global + r.totals.reg)).abs()
                < 1e-6
        );
        // Serial-mode cycles equal the component sum.
        assert!((r.cycles - sum).abs() < 1e-6, "{}", algo.label());
        // Charged flops cover the useful work.
        assert!(r.flops_charged >= res.useful_flops);
        // Shared-memory footprint within device capacity.
        assert!(r.smem_extent <= dev.smem_capacity);
        // Register budget respected.
        assert!(r.max_registers().measured_regs <= dev.max_regs_per_thread);
    }
}

#[test]
fn identity_and_zero_special_cases() {
    let dev = device::gh200();
    let n = 32;
    let a = Matrix::seeded_uniform(n, n, 6000);
    let id = Matrix::identity(n);
    let zero = Matrix::zeros(n, n);
    for algo in Algo::ALL {
        let cfg = KamiConfig::new(algo, Precision::Fp64);
        let res = gemm_auto(&dev, &cfg, &a, &id).unwrap();
        assert!(res.c.max_abs_diff(&a) < 1e-14, "{} A·I != A", algo.label());
        let res = gemm_auto(&dev, &cfg, &a, &zero).unwrap();
        assert_eq!(res.c.frobenius_norm(), 0.0, "{} A·0 != 0", algo.label());
    }
}

#[test]
fn bf16_extension_runs_on_every_device() {
    // BF16 is a beyond-the-paper precision: FP32 range, 8-bit mantissa.
    let a = Matrix::seeded_uniform(32, 32, 7000);
    let b = Matrix::seeded_uniform(32, 32, 7001);
    let want = reference_gemm(&a, &b, Precision::Bf16);
    for dev in devices() {
        let cfg = KamiConfig::new(Algo::OneD, Precision::Bf16);
        let res = gemm_auto(&dev, &cfg, &a, &b).unwrap();
        let err = res.c.rel_frobenius_error(&want);
        assert!(err < 5e-2, "{}: err {err}", dev.name);
    }
    // Coarser mantissa than FP16 -> larger error against exact f64.
    let exact = reference_gemm_f64(&a, &b);
    let dev = device::gh200();
    let bf = gemm_auto(&dev, &KamiConfig::new(Algo::OneD, Precision::Bf16), &a, &b).unwrap();
    let fp = gemm_auto(&dev, &KamiConfig::new(Algo::OneD, Precision::Fp16), &a, &b).unwrap();
    assert!(bf.c.rel_frobenius_error(&exact) > fp.c.rel_frobenius_error(&exact));
}
