//! Fleet routing invariants (property-based) plus the heterogeneity
//! study assertions.
//!
//! The three routing invariants:
//!
//! * a request with `device_affinity` never lands on another class;
//! * the router's pick always minimizes predicted completion among
//!   eligible replicas at decision time;
//! * draining the fleet completes every admitted ticket exactly once.
//!
//! The heterogeneity tests lock in that routing actually consults the
//! cost oracle: on a mixed square/tall-skinny trace, the 4-preset
//! fleet beats the best single-class fleet of equal per-class replica
//! count on aggregate makespan (simulated seconds), and cost-oracle
//! placement beats round-robin on the very same fleet.

use kami::prelude::*;
use kami::serve::{FleetConfig, FleetServer, FleetSpec, RoutingPolicy, ServeError};
use proptest::prelude::*;

/// Shapes every Table 3 class can run at FP16 — the proptest pool.
const SHAPES: [(usize, usize, usize); 4] =
    [(32, 32, 32), (64, 64, 64), (16, 16, 256), (256, 16, 16)];

fn shaped_request(shape: (usize, usize, usize), seed: u64) -> ServeRequest {
    let (m, n, k) = shape;
    let a = Matrix::seeded_uniform(m, k, seed);
    let b = Matrix::seeded_uniform(k, n, seed + 1);
    ServeRequest::gemm(a, b, Precision::Fp16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// (a) Affinity is binding: the placed replica's device class is
    /// exactly the requested one, for every class and shape.
    #[test]
    fn affinity_never_violated(
        class in 0usize..4,
        si in 0usize..SHAPES.len(),
        seed in 0u64..1000,
    ) {
        let fleet = FleetServer::new(FleetSpec::table3(2));
        let want = fleet.spec().classes[class].device.name.clone();
        let req = shaped_request(SHAPES[si], seed).with_affinity(want.clone());
        let ticket = fleet.submit(req).expect("affinity class exists and is FP16-feasible");
        prop_assert_eq!(&ticket.device, &want);
        prop_assert_eq!(
            &fleet.replicas()[ticket.replica].device().name,
            &want
        );
        fleet.shutdown_and_drain();
        ticket.wait().expect("feasible");
    }

    /// (b) The router's pick minimizes predicted completion among the
    /// eligible candidates at decision time, even with prior load.
    #[test]
    fn router_minimizes_predicted_completion(
        warm in 0usize..6,
        si in 0usize..SHAPES.len(),
        seed in 0u64..1000,
    ) {
        let fleet = FleetServer::new(FleetSpec::table3(1));
        // Warm-up load skews replica horizons so argmin is non-trivial.
        for w in 0..warm {
            let wi = (seed as usize + w) % SHAPES.len();
            fleet.submit(shaped_request(SHAPES[wi], seed + w as u64)).unwrap();
        }
        let probe = shaped_request(SHAPES[si], seed + 100);
        let decision = fleet.plan_route(&probe).expect("FP16 runs somewhere");
        let best = decision
            .candidates
            .iter()
            .map(|c| c.predicted_completion_secs)
            .fold(f64::INFINITY, f64::min);
        let chosen = decision
            .candidates
            .iter()
            .find(|c| c.replica == decision.chosen)
            .expect("chosen must be a candidate");
        prop_assert!(
            chosen.predicted_completion_secs <= best + 1e-12,
            "chose {} at {:.3e}s, best candidate is {:.3e}s",
            chosen.replica, chosen.predicted_completion_secs, best
        );
        // The decision's numbers are re-derivable from the public
        // routing query (same cache, same horizons).
        for c in &decision.candidates {
            let again = fleet.predicted_completion_secs(c.replica, &probe).unwrap();
            prop_assert!(
                (again - c.predicted_completion_secs).abs() <= 1e-9 * (1.0 + again),
                "candidate {} not reproducible: {:.6e} vs {:.6e}",
                c.replica, c.predicted_completion_secs, again
            );
        }
        fleet.shutdown_and_drain();
    }

    /// (c) Draining completes every admitted ticket exactly once —
    /// conservation holds fleet-wide under mixed shapes and classes.
    #[test]
    fn drain_completes_every_ticket_exactly_once(
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let fleet = FleetServer::new(FleetSpec::table3(1));
        let tickets: Vec<_> = (0..n)
            .map(|i| {
                let si = (seed as usize + i) % SHAPES.len();
                fleet.submit(shaped_request(SHAPES[si], seed + i as u64)).unwrap()
            })
            .collect();
        fleet.shutdown_and_drain();
        let mut completed_ids = Vec::new();
        for t in tickets {
            let replica = t.replica;
            let done = t.wait().expect("admitted tickets must complete");
            completed_ids.push((replica, done.id));
        }
        // Exactly once: every (replica, request-id) pair is distinct.
        completed_ids.sort_unstable();
        let before = completed_ids.len();
        completed_ids.dedup();
        prop_assert_eq!(before, completed_ids.len(), "a ticket resolved twice");
        prop_assert_eq!(before, n);
        let m = fleet.metrics();
        prop_assert_eq!(m.completed(), n as u64);
        prop_assert_eq!(m.submitted(), n as u64);
        prop_assert_eq!(m.failed(), 0);
        prop_assert_eq!(m.completion_cycles.count(), n as u64);
        prop_assert_eq!(fleet.pending(), 0);
    }
}

/// The mixed trace the heterogeneity tests serve: square-ish tiles
/// (where the high-clock classes are competitive) interleaved with
/// tall-skinny panels (where GH200's SM count dominates).
///
/// The study fleets run with `coalesce: false`: same-shape pooling on
/// one device absorbs an identical-shape burst at roughly the cost of
/// a single request, which would make any multi-replica comparison
/// degenerate. Real fleet traffic mixes shapes across tenants; solo
/// dispatch models that while keeping the trace itself simple.
fn mixed_trace() -> Vec<ServeRequest> {
    (0..24u64)
        .map(|i| {
            if i % 2 == 0 {
                shaped_request((4096, 16, 16), i)
            } else {
                shaped_request((256, 256, 64), i)
            }
        })
        .collect()
}

fn serve_trace(fleet: &FleetServer, trace: &[ServeRequest]) -> Result<f64, ServeError> {
    let mut tickets = Vec::with_capacity(trace.len());
    for r in trace {
        tickets.push(fleet.submit(r.clone())?);
    }
    fleet.shutdown_and_drain();
    for t in tickets {
        t.wait()?;
    }
    Ok(fleet.metrics().makespan_secs())
}

fn fleet_with(spec: FleetSpec, policy: RoutingPolicy) -> FleetServer {
    FleetServer::with_config(
        spec,
        FleetConfig {
            server: ServerConfig {
                queue_capacity: 64,
                coalesce: false,
                ..ServerConfig::default()
            },
            policy,
        },
    )
}

/// The 4-preset heterogeneous fleet beats the best homogeneous fleet
/// of equal per-class replica count on aggregate makespan. (In
/// simulated seconds GH200 weakly dominates every single shape, so a
/// homogeneous GH200 fleet of equal *total* size cannot be beaten —
/// the win here is heterogeneity as capacity: four classes of one
/// replica each outwork any one class alone, because the oracle keeps
/// all of them busy with the shapes they are least bad at.)
#[test]
fn heterogeneous_fleet_beats_best_homogeneous_class() {
    let trace = mixed_trace();
    let het = serve_trace(
        &fleet_with(FleetSpec::table3(1), RoutingPolicy::EarliestCompletion),
        &trace,
    )
    .expect("mixed trace serves on the heterogeneous fleet");

    let mut best_homo = f64::INFINITY;
    let mut best_name = String::new();
    for dev in DeviceSpec::all_evaluated() {
        let fleet = fleet_with(
            FleetSpec::homogeneous(&dev, 1),
            RoutingPolicy::EarliestCompletion,
        );
        // A class that cannot run part of the trace simply doesn't
        // compete for "best homogeneous".
        match serve_trace(&fleet, &trace) {
            Ok(makespan) => {
                if makespan < best_homo {
                    best_homo = makespan;
                    best_name = dev.name.clone();
                }
            }
            Err(_) => continue,
        }
    }
    assert!(
        het < best_homo,
        "heterogeneous fleet ({het:.3e}s) must beat the best homogeneous class \
         ({best_name}: {best_homo:.3e}s) on the mixed trace"
    );
}

/// Cost-oracle placement beats round-robin on the same heterogeneous
/// fleet — the routing is genuinely consulting predicted makespans,
/// not just spraying work.
#[test]
fn cost_oracle_routing_beats_round_robin() {
    let trace = mixed_trace();
    let oracle = serve_trace(
        &fleet_with(FleetSpec::table3(1), RoutingPolicy::EarliestCompletion),
        &trace,
    )
    .expect("oracle fleet serves the trace");
    let rr = serve_trace(
        &fleet_with(FleetSpec::table3(1), RoutingPolicy::RoundRobin),
        &trace,
    )
    .expect("round-robin fleet serves the trace");
    assert!(
        oracle < rr,
        "cost-oracle makespan {oracle:.3e}s must beat round-robin {rr:.3e}s on the \
         mixed square/tall-skinny trace"
    );
}
