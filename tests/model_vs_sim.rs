//! The paper's central validation (§5.6, Fig 15): the analytical cycle
//! model (Formulas 1–12) against the simulator's measured cycles, plus
//! the register model against live-range allocation (Fig 14).

use kami::core::model::cycles::{self, ModelParams};
use kami::core::model::registers::theoretical_registers;
use kami::core::{gemm, Algo, KamiConfig};
use kami::prelude::*;
use kami::sim::CostConfig;

/// Without parking, the simulator's communication cycles must equal the
/// closed forms *exactly*: same latency-per-stage, same bandwidth terms.
#[test]
fn comm_cycles_match_formulas_exactly() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let prm = ModelParams::from_device(&dev, prec).unwrap();
    for (algo, p) in [(Algo::OneD, 4), (Algo::TwoD, 4), (Algo::ThreeD, 8)] {
        for n in [16usize, 32, 64] {
            let cfg = KamiConfig::new(algo, prec).with_warps(p);
            let (a, b) = (
                Matrix::seeded_uniform(n, n, 1),
                Matrix::seeded_uniform(n, n, 2),
            );
            let res = gemm(&dev, &cfg, &a, &b).unwrap();
            let theory = cycles::t_all_comm(algo, n, n, n, p, &prm);
            let measured = res.report.totals.comm;
            assert!(
                (measured - theory).abs() < 1e-6,
                "{} n={n}: measured {measured} vs theory {theory}",
                algo.label()
            );
        }
    }
}

/// Measured compute is bounded below by the theory (padding and
/// busiest-warp effects only ever add cycles) and within a small factor
/// at MMA-aligned sizes.
#[test]
fn compute_cycles_bracket_theory() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let prm = ModelParams::from_device(&dev, prec).unwrap();
    for (algo, p) in [(Algo::OneD, 4), (Algo::TwoD, 4), (Algo::ThreeD, 8)] {
        for n in [32usize, 64, 128] {
            let cfg = KamiConfig::new(algo, prec).with_warps(p);
            let (a, b) = (
                Matrix::seeded_uniform(n, n, 1),
                Matrix::seeded_uniform(n, n, 2),
            );
            let Ok(res) = gemm(&dev, &cfg, &a, &b) else {
                continue; // register-infeasible point
            };
            let theory = cycles::t_all_compute(n, n, n, &prm);
            let measured = res.report.totals.compute;
            assert!(
                measured >= theory - 1e-6,
                "{} n={n}: measured {measured} below theory {theory}",
                algo.label()
            );
            assert!(
                measured <= theory * 4.0 + 1.0,
                "{} n={n}: measured {measured} too far above theory {theory}",
                algo.label()
            );
        }
    }
}

/// Overlap-mode total is never worse than serial and never better than
/// max(comm, compute).
#[test]
fn overlap_mode_is_bounded() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let n = 64;
    let (a, b) = (
        Matrix::seeded_uniform(n, n, 1),
        Matrix::seeded_uniform(n, n, 2),
    );
    for algo in Algo::ALL {
        let serial = gemm(&dev, &KamiConfig::new(algo, prec), &a, &b).unwrap();
        let overlap = gemm(
            &dev,
            &KamiConfig::new(algo, prec).with_cost(CostConfig::overlap()),
            &a,
            &b,
        )
        .unwrap();
        let s = serial.report.on_chip_cycles();
        let o = overlap.report.on_chip_cycles();
        let lower = serial.report.totals.comm.max(serial.report.totals.compute);
        assert!(o <= s + 1e-9, "{}: overlap {o} > serial {s}", algo.label());
        assert!(
            o >= lower - 1e-9,
            "{}: overlap {o} < bound {lower}",
            algo.label()
        );
    }
}

/// The paper's communication-volume identities hold measured, per
/// algorithm: 1D moves p·kn·s_e, 2D moves √p·(mk+kn)·s_e, 3D moves
/// ∛p·(mk+kn)·s_e in total.
#[test]
fn total_comm_volume_identities() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let se = prec.size_bytes();
    let n = 64;
    let (a, b) = (
        Matrix::seeded_uniform(n, n, 1),
        Matrix::seeded_uniform(n, n, 2),
    );
    let cases = [
        (Algo::OneD, 4usize, 4.0),
        (Algo::TwoD, 4, 2.0),
        (Algo::ThreeD, 8, 2.0),
    ];
    for (algo, p, stages) in cases {
        let cfg = KamiConfig::new(algo, prec).with_warps(p);
        let res = gemm(&dev, &cfg, &a, &b).unwrap();
        let per_stage = cycles::v_cm_per_stage(algo, n, n, n, p, se as f64);
        let want = stages * per_stage;
        assert_eq!(
            res.report.comm_volume() as f64,
            want,
            "{}: V_cm mismatch",
            algo.label()
        );
    }
}

/// Theoretical registers dominate the conservative live-range measure,
/// which dominates the lazy (compiler-modelled) measure.
#[test]
fn register_model_ordering() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let (m, n) = (64, 32);
    for (algo, p) in [(Algo::OneD, 4), (Algo::TwoD, 4), (Algo::ThreeD, 8)] {
        for k in [32usize, 64, 128] {
            let cfg = KamiConfig::new(algo, prec).with_warps(p);
            if cfg.validate(&dev, m, n, k).is_err() {
                continue;
            }
            let theory = theoretical_registers(algo, m, n, k, p, prec, prec);
            let mut gmem = kami::sim::GlobalMemory::new();
            let ab = gmem.upload("A", &Matrix::zeros(m, k), prec);
            let bb = gmem.upload("B", &Matrix::zeros(k, n), prec);
            let cb = gmem.alloc_zeroed("C", m, n, prec);
            let kern = match algo {
                Algo::OneD => kami::core::algo1d::build_kernel(&cfg, m, n, k, ab, bb, cb, prec),
                Algo::TwoD => kami::core::algo2d::build_kernel(&cfg, m, n, k, ab, bb, cb, prec),
                Algo::ThreeD => kami::core::algo3d::build_kernel(&cfg, m, n, k, ab, bb, cb, prec),
            };
            let eng = kami::sim::Engine::new(&dev);
            let conservative = eng
                .analyze_registers(&kern)
                .iter()
                .map(|u| u.measured_regs)
                .max()
                .unwrap();
            let lazy = eng.analyze_registers_lazy(&kern).into_iter().max().unwrap();
            assert!(
                lazy <= conservative && conservative <= theory,
                "{} k={k}: lazy {lazy} <= conservative {conservative} <= theory {theory} violated",
                algo.label()
            );
            assert!(
                lazy < theory,
                "{} k={k}: no reuse found at all",
                algo.label()
            );
        }
    }
}

/// The worked examples of §4.3–4.5 reproduced end to end on a device
/// parameterized like the paper's example (O_tc = 32, n_tc = 4).
#[test]
fn paper_worked_examples_via_model() {
    let prm = ModelParams::paper_example();
    assert_eq!(cycles::t_all(Algo::OneD, 8, 8, 8, 2, &prm), 60.0);
    assert_eq!(cycles::t_all(Algo::TwoD, 8, 8, 8, 4, &prm), 68.0);
    assert_eq!(cycles::t_all(Algo::ThreeD, 8, 8, 8, 8, &prm), 68.0);
}
