//! Property suite for the Z-Morton codec and the Morton block ordering
//! (paper §4.6, Fig 7(b)): the codec must round-trip the full 32-bit
//! index domain, respect Z-order inside every aligned quadrant, and the
//! `BlockOrder` permutation must be a bijection over stored blocks.

use kami::prelude::*;
use kami::sparse::{morton, BlockSparseMatrix};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1200))]

    /// Encode/decode round-trips the codec's full index domain (32 bits
    /// per coordinate — `spread` masks to 32 bits, so this is the whole
    /// supported range, not a small corner of it).
    #[test]
    fn roundtrip_full_domain(r in 0usize..(1usize << 32), c in 0usize..(1usize << 32)) {
        prop_assert_eq!(morton::decode(morton::encode(r, c)), (r, c));
    }

    /// Row and column bits land in disjoint positions, so the code is
    /// monotone in each coordinate: growing either index strictly grows
    /// the code, growing both preserves order.
    #[test]
    fn componentwise_monotone(
        r in 0usize..(1usize << 31),
        c in 0usize..(1usize << 31),
        dr in 0usize..(1usize << 16),
        dc in 0usize..(1usize << 16),
    ) {
        let base = morton::encode(r, c);
        let moved = morton::encode(r + dr, c + dc);
        prop_assert!(base <= moved);
        if dr + dc > 0 {
            prop_assert!(base < moved, "strictly monotone when a coordinate grows");
        }
    }

    /// Z-order is self-similar: inside any aligned quadrant, the local
    /// offset's Morton code *is* the global code minus the quadrant
    /// base — so sorting blocks of a quadrant by global code equals
    /// sorting them by local code (monotone Z-order within a quadrant,
    /// the property the multi-level submatrix indexing rests on).
    #[test]
    fn quadrant_local_order_matches_global(
        exp in 0u32..16,
        qr in 0usize..512,
        qc in 0usize..512,
        lr_frac in 0usize..(1 << 15),
        lc_frac in 0usize..(1 << 15),
    ) {
        let extent = 1usize << exp;
        let (row0, col0) = (qr * extent, qc * extent);
        let (lr, lc) = (lr_frac % extent, lc_frac % extent);
        let (lo, hi) = morton::quadrant_range(row0, col0, extent);
        let code = morton::encode(row0 + lr, col0 + lc);
        prop_assert_eq!(code, lo + morton::encode(lr, lc));
        prop_assert!((lo..hi).contains(&code));
    }

    /// `sort_permutation` is a bijection on indices, and orders the
    /// coordinates by strictly increasing code when they are unique.
    #[test]
    fn sort_permutation_is_a_bijection(seed in 0u64..100_000, len in 0usize..64) {
        // Unique coordinates, deterministically derived from the seed.
        let mut coords = Vec::with_capacity(len);
        let mut seen = HashSet::new();
        let mut state = seed;
        while coords.len() < len {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let rc = ((state >> 20) as usize % 97, (state >> 40) as usize % 97);
            if seen.insert(rc) {
                coords.push(rc);
            }
        }
        let perm = morton::sort_permutation(&coords);
        prop_assert_eq!(perm.len(), coords.len());
        let distinct: HashSet<usize> = perm.iter().copied().collect();
        prop_assert_eq!(distinct.len(), perm.len(), "permutation repeats an index");
        prop_assert!(perm.iter().all(|&i| i < coords.len()));
        let codes: Vec<u64> = perm
            .iter()
            .map(|&i| morton::encode(coords[i].0, coords[i].1))
            .collect();
        prop_assert!(codes.windows(2).all(|w| w[0] < w[1]), "codes not strictly increasing");
    }

    /// The `BlockOrder` permutation applied by `from_blocks` is a
    /// bijection over the stored blocks: every input coordinate comes
    /// back exactly once from `iter_blocks`, carrying its own payload,
    /// and `block_at` resolves it — for both orders.
    #[test]
    fn block_order_permutation_is_a_bijection(
        seed in 0u64..50_000,
        density_pct in 0usize..=100,
        use_morton in any::<bool>(),
    ) {
        let order = if use_morton { BlockOrder::ZMorton } else { BlockOrder::RowMajor };
        let nb = 8usize;
        let bs = 8usize;
        // Deterministic pattern from the seed; payload value encodes
        // the coordinate so the bijection check also verifies payloads
        // travel with their block.
        let mut state = seed;
        let mut entries = Vec::new();
        let mut expect = HashSet::new();
        for r in 0..nb {
            for c in 0..nb {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if (state >> 33) as usize % 100 < density_pct {
                    let tag = (r * nb + c) as f64;
                    entries.push(((r, c), Matrix::from_fn(bs, bs, |_, _| tag)));
                    expect.insert((r, c));
                }
            }
        }
        let m = BlockSparseMatrix::from_blocks(nb * bs, nb * bs, bs, order, entries);
        prop_assert_eq!(m.nnz_blocks(), expect.len());
        let mut got = HashSet::new();
        for (r, c, tile) in m.iter_blocks() {
            prop_assert!(got.insert((r, c)), "coordinate ({}, {}) emitted twice", r, c);
            prop_assert_eq!(tile[(0, 0)], (r * nb + c) as f64, "payload detached from coordinate");
        }
        prop_assert_eq!(&got, &expect);
        for &(r, c) in &expect {
            prop_assert!(m.block_at(r, c).is_some());
        }
        // Morton storage must lay blocks out in increasing code order.
        if use_morton {
            let codes: Vec<u64> = m.iter_blocks().map(|(r, c, _)| morton::encode(r, c)).collect();
            prop_assert!(codes.windows(2).all(|w| w[0] < w[1]), "ZMorton storage unsorted");
        }
    }
}
