//! Golden conformance tests for the analytic cycle models: the dense
//! Formulas 1–12 (`kami_core::model::cycles`) and the §4.6 sparse
//! extension (`kami_sparse::model`).
//!
//! Every dense `(device, algorithm, n)` case snapshots the per-stage
//! communication volume `V_cm`, the per-warp per-stage computation
//! cycles `T_cp`, and the total communication cycles `t_all_comm` into
//! `tests/data/model_golden.json`. The same file also snapshots the
//! tall-skinny closed forms (`model::skinny`: tree vs serial fixup
//! cycles per deep-k shape) and the fused-epilogue deltas
//! (`model::epilogue`: bias/unary cycle deltas, bias read bytes, and
//! the unfused two-pass alternative) on all four Table 3 devices. The
//! sparse cases snapshot expected flops, volume, and cycles for SpMM
//! and SpGEMM at the paper's sparse evaluation setting (Fig 13: GH200,
//! FP16, 50% block sparsity, the five square orders) into
//! `tests/data/sparse_model_golden.json`. Any change to any model
//! shows up as an explicit diff of its file. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test model_golden
//! ```

use kami::core::model::{
    epilogue as epilogue_model, skinny, t_all_comm, t_cp_per_warp_stage, v_cm_per_stage,
    ModelParams,
};
use kami::core::Algo;
use kami::sim::{device, CostConfig, Precision};
use kami::sparse::model as sparse_model;
use serde_json::Value;
use std::path::{Path, PathBuf};

const SIZES: [usize; 3] = [16, 64, 256];
// Fig 13's sparse evaluation orders.
const SPARSE_SIZES: [usize; 5] = [32, 64, 96, 128, 192];
// One representative warp grid per algorithm: p warps for 1D, a 2×2
// grid for 2D, a 2×2×2 cube for 3D.
const GRIDS: [(Algo, usize); 3] = [(Algo::OneD, 4), (Algo::TwoD, 4), (Algo::ThreeD, 8)];
// The sparse evaluation setting: 50% block sparsity, 16×16 blocks.
const SPARSE_DENSITY: f64 = 0.5;
const SPARSE_BLOCK: usize = 16;
// Tall-skinny snapshot shapes: the regime's floor and the deep-k pin.
const SKINNY_SHAPES: [(usize, usize, usize); 3] =
    [(16, 16, 16384), (16, 16, 65536), (32, 64, 16384)];
// Epilogue snapshot grids: the two algorithms that can host one.
const EPILOGUE_GRIDS: [(Algo, usize); 2] = [(Algo::OneD, 4), (Algo::TwoD, 4)];

fn data_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join(file)
}

/// Compare computed cases against the golden file, or rewrite it when
/// `UPDATE_GOLDEN` is set. Each record is an object of numeric fields;
/// every field must match to relative 1e-12.
fn assert_matches_golden(path: &Path, cases: &[(String, Value)]) {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let doc = Value::Object(cases.to_vec());
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
        return;
    }

    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let golden: Value = serde_json::from_str(&raw).expect("golden file parses");
    let golden_obj = golden.as_object().expect("golden root is an object");
    assert_eq!(
        golden_obj.len(),
        cases.len(),
        "case list drifted; regenerate with UPDATE_GOLDEN=1"
    );

    for (key, record) in cases {
        let want = golden.get(key).unwrap_or_else(|| {
            panic!("case {key} missing from golden file; regenerate with UPDATE_GOLDEN=1")
        });
        for (field, got_v) in record.as_object().expect("record is an object") {
            let got = got_v.as_f64().expect("computed value is a number");
            let exp = want[field.as_str()]
                .as_f64()
                .unwrap_or_else(|| panic!("golden {key}.{field} is not a number"));
            let rel = (got - exp).abs() / exp.abs().max(1.0);
            assert!(
                rel < 1e-12,
                "{key}.{field}: computed {got}, golden {exp} \
                 (model changed? regenerate with UPDATE_GOLDEN=1 and review the diff)"
            );
        }
    }
}

/// Compute the dense snapshot for every case, in a deterministic order.
fn compute_cases() -> Vec<(String, Value)> {
    let mut out = Vec::new();
    // FP16 is the one precision with a tensor path on all four
    // evaluated devices (FP64 units exist only on GH200).
    let prec = Precision::Fp16;
    for dev in device::DeviceSpec::all_evaluated() {
        let prm = ModelParams::from_device(&dev, prec)
            .expect("all evaluated devices have an FP16 tensor path");
        for (algo, p) in GRIDS {
            for n in SIZES {
                let key = format!("{}/{}/p{}/n{}", dev.name, algo.label(), p, n);
                let record = Value::Object(vec![
                    (
                        "v_cm".into(),
                        Value::Number(v_cm_per_stage(algo, n, n, n, p, prm.s_e)),
                    ),
                    (
                        "t_cp".into(),
                        Value::Number(t_cp_per_warp_stage(algo, n, n, n, p, &prm)),
                    ),
                    (
                        "t_all_comm".into(),
                        Value::Number(t_all_comm(algo, n, n, n, p, &prm)),
                    ),
                ]);
                out.push((key, record));
            }
        }
        // Tall-skinny closed forms: the pairwise-tree fixup vs the
        // serial chain it replaces, per deep-k shape.
        let cost = CostConfig::default();
        for (m, n, k) in SKINNY_SHAPES {
            let chunks = skinny::chunk_count(k);
            let key = format!("{}/skinny/m{m}n{n}k{k}", dev.name);
            let record = Value::Object(vec![
                (
                    "tree_fixup".into(),
                    Value::Number(
                        skinny::fixup_cycles(&dev, &cost, m, n, chunks, prec, 0, 0)
                            .expect("tree closed form evaluates"),
                    ),
                ),
                (
                    "serial_fixup".into(),
                    Value::Number(
                        skinny::serial_fixup_cycles(&dev, &cost, m, n, chunks, prec)
                            .expect("serial closed form evaluates"),
                    ),
                ),
                (
                    "rounds".into(),
                    Value::Number(skinny::tree_depth(chunks) as f64),
                ),
            ]);
            out.push((key, record));
        }
        // Fused-epilogue deltas vs the unfused two-pass alternative.
        for (algo, p) in EPILOGUE_GRIDS {
            for n in SIZES {
                let key = format!("{}/epilogue/{}/p{p}/n{n}", dev.name, algo.label());
                let bias = epilogue_model::epilogue_delta_cycles(&dev, algo, n, p, prec, true)
                    .expect("square warp grids host a bias epilogue");
                let unary = epilogue_model::epilogue_delta_cycles(&dev, algo, n, p, prec, false)
                    .expect("square warp grids host a unary epilogue");
                let bias_bytes =
                    epilogue_model::epilogue_gmem_read_bytes(algo, n, p, prec, true).unwrap();
                let record = Value::Object(vec![
                    ("delta_bias".into(), Value::Number(bias)),
                    ("delta_unary".into(), Value::Number(unary)),
                    ("bias_read_bytes".into(), Value::Number(bias_bytes as f64)),
                    (
                        "unfused".into(),
                        Value::Number(epilogue_model::unfused_epilogue_cycles(
                            &dev, n, n, prec, true,
                        )),
                    ),
                ]);
                out.push((key, record));
            }
        }
    }
    out
}

/// Compute the sparse snapshot: Fig 13's configurations (GH200 FP16,
/// 50% block sparsity) × {SpMM, SpGEMM} × the three warp grids.
fn compute_sparse_cases() -> Vec<(String, Value)> {
    let mut out = Vec::new();
    let dev = device::gh200();
    let prm = ModelParams::from_device(&dev, Precision::Fp16).expect("GH200 has FP16 tensor cores");
    let (bs, d) = (SPARSE_BLOCK, SPARSE_DENSITY);
    for (algo, p) in GRIDS {
        for n in SPARSE_SIZES {
            let base = format!("{}/{}/p{}/n{}", dev.name, algo.label(), p, n);
            let spmm = Value::Object(vec![
                (
                    "flops".into(),
                    Value::Number(sparse_model::spmm_expected_flops(n, n, n, bs, d)),
                ),
                (
                    "v_cm".into(),
                    Value::Number(sparse_model::spmm_expected_volume(
                        algo, n, n, n, bs, d, p, prm.s_e,
                    )),
                ),
                (
                    "cycles".into(),
                    Value::Number(sparse_model::spmm_expected_cycles(
                        algo, n, n, n, bs, d, p, &prm,
                    )),
                ),
            ]);
            out.push((format!("{base}/spmm"), spmm));
            let spgemm = Value::Object(vec![
                (
                    "flops".into(),
                    Value::Number(sparse_model::spgemm_expected_flops(n, bs, d)),
                ),
                (
                    "v_cm".into(),
                    Value::Number(sparse_model::spgemm_expected_volume(
                        algo, n, bs, d, p, prm.s_e,
                    )),
                ),
                (
                    "cycles".into(),
                    Value::Number(sparse_model::spgemm_expected_cycles(
                        algo, n, bs, d, p, &prm,
                    )),
                ),
                (
                    "pairs".into(),
                    Value::Number(sparse_model::spgemm_expected_pairs(n, bs, d)),
                ),
                (
                    "out_blocks".into(),
                    Value::Number(sparse_model::spgemm_expected_output_blocks(n, bs, d)),
                ),
            ]);
            out.push((format!("{base}/spgemm"), spgemm));
        }
    }
    out
}

#[test]
fn formulas_match_golden_snapshot() {
    assert_matches_golden(&data_path("model_golden.json"), &compute_cases());
}

#[test]
fn sparse_model_matches_golden_snapshot() {
    assert_matches_golden(
        &data_path("sparse_model_golden.json"),
        &compute_sparse_cases(),
    );
}

/// Spot-check the snapshot encodes the formulas' scaling laws, so a
/// regenerated file that silently broke the model cannot pass.
#[test]
fn golden_snapshot_obeys_scaling_laws() {
    let raw = std::fs::read_to_string(data_path("model_golden.json")).expect("golden file present");
    let golden: Value = serde_json::from_str(&raw).unwrap();
    for dev in device::DeviceSpec::all_evaluated() {
        // Formula 1: 1D per-stage volume is k·n·s_e → 16× per 4× n.
        let v16 = golden[&*format!("{}/KAMI-1D/p4/n16", dev.name)]["v_cm"]
            .as_f64()
            .unwrap();
        let v64 = golden[&*format!("{}/KAMI-1D/p4/n64", dev.name)]["v_cm"]
            .as_f64()
            .unwrap();
        assert_eq!(v64, 16.0 * v16, "{}", dev.name);
        // Formulas 3/7/11: T_cp grows as n³ for fixed p.
        for (algo, p) in GRIDS {
            let t16 = golden[&*format!("{}/{}/p{}/n16", dev.name, algo.label(), p)]["t_cp"]
                .as_f64()
                .unwrap();
            let t64 = golden[&*format!("{}/{}/p{}/n64", dev.name, algo.label(), p)]["t_cp"]
                .as_f64()
                .unwrap();
            assert!(
                (t64 / t16 - 64.0).abs() < 1e-9,
                "{} {}",
                dev.name,
                algo.label()
            );
        }
        // 2D communicates more per stage than 1D (it moves A and B).
        let c1 = golden[&*format!("{}/KAMI-1D/p4/n64", dev.name)]["v_cm"]
            .as_f64()
            .unwrap();
        let c2 = golden[&*format!("{}/KAMI-2D/p4/n64", dev.name)]["v_cm"]
            .as_f64()
            .unwrap();
        assert!(c2 > c1, "{}", dev.name);
        // Tall-skinny: the pairwise tree must beat the serial chain at
        // every snapshotted depth (lg(chunks) vs chunks−1 rounds of
        // latency), and its advantage must grow with k.
        let mut ratios = Vec::new();
        for (m, n, k) in SKINNY_SHAPES {
            let rec = &golden[&*format!("{}/skinny/m{m}n{n}k{k}", dev.name)];
            let tree = rec["tree_fixup"].as_f64().unwrap();
            let serial = rec["serial_fixup"].as_f64().unwrap();
            assert!(
                tree < serial,
                "{}: tree {tree} >= serial {serial}",
                dev.name
            );
            if (m, n) == (16, 16) {
                ratios.push((k, serial / tree));
            }
        }
        ratios.sort_by_key(|&(k, _)| k);
        assert!(
            ratios.windows(2).all(|w| w[0].1 < w[1].1),
            "{}: serial/tree ratio must grow with k",
            dev.name
        );
        // Epilogues: the fused delta stays below the unfused round trip,
        // and unary epilogues cost less than bias ones (no global read).
        for (algo, p) in EPILOGUE_GRIDS {
            for n in SIZES {
                let rec = &golden[&*format!("{}/epilogue/{}/p{p}/n{n}", dev.name, algo.label())];
                let bias = rec["delta_bias"].as_f64().unwrap();
                let unary = rec["delta_unary"].as_f64().unwrap();
                let unfused = rec["unfused"].as_f64().unwrap();
                assert!(unary < bias, "{} {}", dev.name, algo.label());
                assert!(bias < unfused, "{} {}", dev.name, algo.label());
            }
        }
    }
}

/// Same guard for the sparse snapshot: the regenerated file must encode
/// the sparse model's own scaling laws.
#[test]
fn sparse_golden_snapshot_obeys_scaling_laws() {
    let raw = std::fs::read_to_string(data_path("sparse_model_golden.json"))
        .expect("sparse golden file present");
    let golden: Value = serde_json::from_str(&raw).unwrap();
    let dev = device::gh200();
    for (algo, p) in GRIDS {
        for n in SPARSE_SIZES {
            let base = format!("{}/{}/p{}/n{}", dev.name, algo.label(), p, n);
            let spmm = &golden[&*format!("{base}/spmm")];
            let spgemm = &golden[&*format!("{base}/spgemm")];
            // At d = 0.5 with m=n=k, SpGEMM's expected flops are d× the
            // SpMM flops (2n³d² vs 2n³d) — the collision-probability
            // scaling law of the Bernoulli sparsity model.
            let f_spmm = spmm["flops"].as_f64().unwrap();
            let f_spgemm = spgemm["flops"].as_f64().unwrap();
            assert!(
                (f_spgemm - SPARSE_DENSITY * f_spmm).abs() < 1e-6 * f_spmm,
                "{base}: spgemm flops must be d x spmm flops"
            );
            // Both kernels' cycle predictions are positive and monotone
            // checks below need finite values.
            assert!(spmm["cycles"].as_f64().unwrap() > 0.0, "{base}");
            assert!(spgemm["cycles"].as_f64().unwrap() > 0.0, "{base}");
        }
        // 1D SpMM volume is the dense-B traffic k·n·s_e·p: 4× per 2× n.
        if algo == Algo::OneD {
            let v32 = golden[&*format!("{}/KAMI-1D/p4/n32/spmm", dev.name)]["v_cm"]
                .as_f64()
                .unwrap();
            let v64 = golden[&*format!("{}/KAMI-1D/p4/n64/spmm", dev.name)]["v_cm"]
                .as_f64()
                .unwrap();
            assert_eq!(v64, 4.0 * v32);
        }
        // Cycles are strictly monotone in the order, for both kernels.
        for kernel in ["spmm", "spgemm"] {
            let cycles: Vec<f64> = SPARSE_SIZES
                .iter()
                .map(|n| {
                    golden[&*format!("{}/{}/p{}/n{}/{}", dev.name, algo.label(), p, n, kernel)]
                        ["cycles"]
                        .as_f64()
                        .unwrap()
                })
                .collect();
            assert!(
                cycles.windows(2).all(|w| w[0] < w[1]),
                "{} {kernel}: cycles not monotone in n",
                algo.label()
            );
        }
    }
}
