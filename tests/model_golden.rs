//! Golden conformance tests for the analytic cycle model (Formulas
//! 1–12, `kami_core::model::cycles`).
//!
//! Every `(device, algorithm, n)` case snapshots the per-stage
//! communication volume `V_cm`, the per-warp per-stage computation
//! cycles `T_cp`, and the total communication cycles `t_all_comm` into
//! `tests/data/model_golden.json`. Any change to the model shows up as
//! an explicit diff of that file. Regenerate with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test model_golden
//! ```

use kami::core::model::{t_all_comm, t_cp_per_warp_stage, v_cm_per_stage, ModelParams};
use kami::core::Algo;
use kami::sim::{device, Precision};
use serde_json::Value;
use std::path::PathBuf;

const SIZES: [usize; 3] = [16, 64, 256];
// One representative warp grid per algorithm: p warps for 1D, a 2×2
// grid for 2D, a 2×2×2 cube for 3D.
const GRIDS: [(Algo, usize); 3] = [(Algo::OneD, 4), (Algo::TwoD, 4), (Algo::ThreeD, 8)];

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("data")
        .join("model_golden.json")
}

/// Compute the snapshot for every case, in a deterministic order.
fn compute_cases() -> Vec<(String, Value)> {
    let mut out = Vec::new();
    // FP16 is the one precision with a tensor path on all four
    // evaluated devices (FP64 units exist only on GH200).
    let prec = Precision::Fp16;
    for dev in device::DeviceSpec::all_evaluated() {
        let prm = ModelParams::from_device(&dev, prec)
            .expect("all evaluated devices have an FP16 tensor path");
        for (algo, p) in GRIDS {
            for n in SIZES {
                let key = format!("{}/{}/p{}/n{}", dev.name, algo.label(), p, n);
                let record = Value::Object(vec![
                    (
                        "v_cm".into(),
                        Value::Number(v_cm_per_stage(algo, n, n, n, p, prm.s_e)),
                    ),
                    (
                        "t_cp".into(),
                        Value::Number(t_cp_per_warp_stage(algo, n, n, n, p, &prm)),
                    ),
                    (
                        "t_all_comm".into(),
                        Value::Number(t_all_comm(algo, n, n, n, p, &prm)),
                    ),
                ]);
                out.push((key, record));
            }
        }
    }
    out
}

#[test]
fn formulas_match_golden_snapshot() {
    let cases = compute_cases();
    let path = golden_path();

    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let doc = Value::Object(cases);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, serde_json::to_string_pretty(&doc).unwrap()).unwrap();
        return;
    }

    let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with UPDATE_GOLDEN=1",
            path.display()
        )
    });
    let golden: Value = serde_json::from_str(&raw).expect("golden file parses");
    let golden_obj = golden.as_object().expect("golden root is an object");
    assert_eq!(
        golden_obj.len(),
        cases.len(),
        "case list drifted; regenerate with UPDATE_GOLDEN=1"
    );

    for (key, record) in &cases {
        let want = golden.get(key).unwrap_or_else(|| {
            panic!("case {key} missing from golden file; regenerate with UPDATE_GOLDEN=1")
        });
        for field in ["v_cm", "t_cp", "t_all_comm"] {
            let got = record[field].as_f64().expect("computed value is a number");
            let exp = want[field]
                .as_f64()
                .unwrap_or_else(|| panic!("golden {key}.{field} is not a number"));
            let rel = (got - exp).abs() / exp.abs().max(1.0);
            assert!(
                rel < 1e-12,
                "{key}.{field}: computed {got}, golden {exp} \
                 (model changed? regenerate with UPDATE_GOLDEN=1 and review the diff)"
            );
        }
    }
}

/// Spot-check the snapshot encodes the formulas' scaling laws, so a
/// regenerated file that silently broke the model cannot pass.
#[test]
fn golden_snapshot_obeys_scaling_laws() {
    let raw = std::fs::read_to_string(golden_path()).expect("golden file present");
    let golden: Value = serde_json::from_str(&raw).unwrap();
    for dev in device::DeviceSpec::all_evaluated() {
        // Formula 1: 1D per-stage volume is k·n·s_e → 16× per 4× n.
        let v16 = golden[&*format!("{}/KAMI-1D/p4/n16", dev.name)]["v_cm"]
            .as_f64()
            .unwrap();
        let v64 = golden[&*format!("{}/KAMI-1D/p4/n64", dev.name)]["v_cm"]
            .as_f64()
            .unwrap();
        assert_eq!(v64, 16.0 * v16, "{}", dev.name);
        // Formulas 3/7/11: T_cp grows as n³ for fixed p.
        for (algo, p) in GRIDS {
            let t16 = golden[&*format!("{}/{}/p{}/n16", dev.name, algo.label(), p)]["t_cp"]
                .as_f64()
                .unwrap();
            let t64 = golden[&*format!("{}/{}/p{}/n64", dev.name, algo.label(), p)]["t_cp"]
                .as_f64()
                .unwrap();
            assert!(
                (t64 / t16 - 64.0).abs() < 1e-9,
                "{} {}",
                dev.name,
                algo.label()
            );
        }
        // 2D communicates more per stage than 1D (it moves A and B).
        let c1 = golden[&*format!("{}/KAMI-1D/p4/n64", dev.name)]["v_cm"]
            .as_f64()
            .unwrap();
        let c2 = golden[&*format!("{}/KAMI-2D/p4/n64", dev.name)]["v_cm"]
            .as_f64()
            .unwrap();
        assert!(c2 > c1, "{}", dev.name);
    }
}
