//! Property-based tests (proptest) on the core data structures and
//! algorithm invariants.

use kami::core::{
    gemm_25d, gemm_padded, gemm_scaled, gemm_t, lowrank_gemm_colsplit, reference_gemm,
    reference_gemm_f64, Algo, Kami25dConfig, KamiConfig, MatOp,
};
use kami::prelude::*;
use kami::sim::memory::shared::theta;
use kami::sim::precision::fma_acc;
use kami::sparse::{morton, BlockSparseMatrix};
use proptest::prelude::*;

proptest! {
    /// Quantization is idempotent and value-preserving for representable
    /// values, at every precision.
    #[test]
    fn quantization_idempotent(x in -1e4f64..1e4, pi in 0usize..4) {
        let prec = Precision::ALL_EVALUATED[pi];
        let once = prec.round(x);
        let twice = prec.round(once);
        prop_assert_eq!(once, twice);
    }

    /// Quantization is monotone: x <= y implies round(x) <= round(y).
    #[test]
    fn quantization_monotone(x in -1e3f64..1e3, d in 0.0f64..1e3, pi in 0usize..4) {
        let prec = Precision::ALL_EVALUATED[pi];
        prop_assert!(prec.round(x) <= prec.round(x + d));
    }

    /// fma_acc never exceeds the error of one rounding at the
    /// accumulator precision.
    #[test]
    fn fma_rounding_bounded(a in -100.0f64..100.0, b in -100.0f64..100.0, c in -100.0f64..100.0) {
        let exact = a.mul_add(b, c);
        let got = fma_acc(Precision::Fp32, a, b, c);
        let u = Precision::Fp32.unit_roundoff();
        prop_assert!((got - exact).abs() <= exact.abs() * u + 1e-30);
    }

    /// Morton encode/decode round-trips arbitrary coordinates.
    #[test]
    fn morton_roundtrip(r in 0usize..(1 << 20), c in 0usize..(1 << 20)) {
        prop_assert_eq!(morton::decode(morton::encode(r, c)), (r, c));
    }

    /// Morton order preserves quadrant containment: a coordinate is in
    /// an aligned quadrant iff its code is in the quadrant's range.
    #[test]
    fn morton_quadrant_membership(
        r in 0usize..256,
        c in 0usize..256,
        exp in 0u32..6,
        qr in 0usize..8,
        qc in 0usize..8,
    ) {
        let extent = 1usize << exp;
        let (row0, col0) = (qr * extent, qc * extent);
        let (lo, hi) = morton::quadrant_range(row0, col0, extent);
        let code = morton::encode(r, c);
        let inside = (row0..row0 + extent).contains(&r) && (col0..col0 + extent).contains(&c);
        prop_assert_eq!((lo..hi).contains(&code), inside);
    }

    /// θ is always in (0, 1] and 1 for contiguous access.
    #[test]
    fn theta_bounds(elem in prop::sample::select(vec![1usize, 2, 4, 8]),
                    stride_mult in 1usize..64) {
        let t = theta(32, 32, 4, elem, elem * stride_mult);
        prop_assert!(t > 0.0 && t <= 1.0);
        if stride_mult == 1 {
            prop_assert_eq!(t, 1.0);
        }
    }

    /// Matrix transpose is an involution and preserves the Frobenius
    /// norm.
    #[test]
    fn transpose_involution(rows in 1usize..20, cols in 1usize..20, seed in 0u64..1000) {
        let m = Matrix::seeded_uniform(rows, cols, seed);
        let t = m.transposed();
        prop_assert_eq!(t.transposed(), m.clone());
        prop_assert!((t.frobenius_norm() - m.frobenius_norm()).abs() < 1e-12);
    }

    /// Block-sparse dense round-trip is exact for any density/order.
    #[test]
    fn bsr_dense_roundtrip(seed in 0u64..500, density in 0.0f64..1.0, morton_order in any::<bool>()) {
        let order = if morton_order { BlockOrder::RowMajor } else { BlockOrder::ZMorton };
        let s = kami::sparse::gen::random_block_sparse(64, 64, 16, density, order, seed);
        let d = s.to_dense();
        let s2 = BlockSparseMatrix::from_dense(&d, 16, order, 0.0);
        prop_assert!(s2.to_dense().max_abs_diff(&d) == 0.0);
        prop_assert!(s2.nnz_blocks() <= s.nnz_blocks());
    }

    /// GEMM distributes over addition: A(B + C) = AB + AC (FP64 exact up
    /// to accumulation reordering tolerance).
    #[test]
    fn gemm_distributive(seed in 0u64..200) {
        let dev = device::gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let a = Matrix::seeded_uniform(16, 16, seed);
        let b = Matrix::seeded_uniform(16, 16, seed + 1);
        let c = Matrix::seeded_uniform(16, 16, seed + 2);
        let bc = Matrix::from_fn(16, 16, |r, cc| b[(r, cc)] + c[(r, cc)]);
        let ab = gemm_padded(&dev, &cfg, &a, &b).unwrap().c;
        let ac = gemm_padded(&dev, &cfg, &a, &c).unwrap().c;
        let abc = gemm_padded(&dev, &cfg, &a, &bc).unwrap().c;
        let sum = Matrix::from_fn(16, 16, |r, cc| ab[(r, cc)] + ac[(r, cc)]);
        prop_assert!(abc.max_abs_diff(&sum) < 1e-10);
    }

    /// All three algorithms agree with the oracle on random rectangular
    /// FP64 problems (padded entry point, so any shape is legal).
    #[test]
    fn algorithms_agree_on_random_shapes(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        seed in 0u64..100,
        ai in 0usize..3,
    ) {
        let algo = Algo::ALL[ai];
        let dev = device::gh200();
        let cfg = KamiConfig::new(algo, Precision::Fp64);
        let a = Matrix::seeded_uniform(m, k, seed);
        let b = Matrix::seeded_uniform(k, n, seed + 7);
        let res = gemm_padded(&dev, &cfg, &a, &b).unwrap();
        let want = reference_gemm_f64(&a, &b);
        prop_assert!(res.c.max_abs_diff(&want) < 1e-11);
    }

    /// Communication volume is invariant under the data (only shapes
    /// matter), and cycles are deterministic.
    #[test]
    fn cycles_deterministic_and_data_independent(seed in 0u64..100) {
        let dev = device::gh200();
        let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
        let a1 = Matrix::seeded_uniform(32, 32, seed);
        let b1 = Matrix::seeded_uniform(32, 32, seed + 1);
        let a2 = Matrix::seeded_uniform(32, 32, seed + 2);
        let b2 = Matrix::seeded_uniform(32, 32, seed + 3);
        let r1 = kami::core::gemm(&dev, &cfg, &a1, &b1).unwrap();
        let r2 = kami::core::gemm(&dev, &cfg, &a2, &b2).unwrap();
        prop_assert_eq!(r1.report.cycles, r2.report.cycles);
        prop_assert_eq!(r1.report.comm_volume(), r2.report.comm_volume());
    }

    /// `gemm_t` handles all four orientation combinations. At FP64 the
    /// 1D/2D kernels accumulate in the reference order, so the result
    /// is bit-for-bit identical to the reference on the transposed
    /// operands.
    #[test]
    fn gemm_t_orientations_match_reference_exactly(
        mi in 1usize..4,
        ni in 1usize..4,
        ki in 1usize..4,
        seed in 0u64..100,
        two_d in any::<bool>(),
        ta in any::<bool>(),
        tb in any::<bool>(),
    ) {
        let (m, n, k) = (mi * 16, ni * 16, ki * 16);
        let dev = device::gh200();
        let algo = if two_d { Algo::TwoD } else { Algo::OneD };
        let cfg = KamiConfig::new(algo, Precision::Fp64);
        // Store the operands so the *effective* product is m×k · k×n.
        let a = if ta {
            Matrix::seeded_uniform(k, m, seed)
        } else {
            Matrix::seeded_uniform(m, k, seed)
        };
        let b = if tb {
            Matrix::seeded_uniform(n, k, seed + 1)
        } else {
            Matrix::seeded_uniform(k, n, seed + 1)
        };
        let op = |t: bool| if t { MatOp::Transpose } else { MatOp::None };
        let res = gemm_t(&dev, &cfg, op(ta), &a, op(tb), &b).unwrap();
        let ea = if ta { a.transposed() } else { a };
        let eb = if tb { b.transposed() } else { b };
        prop_assert_eq!(res.c.max_abs_diff(&reference_gemm_f64(&ea, &eb)), 0.0);
    }

    /// `gemm_t` at FP16 stays within precision-appropriate tolerance of
    /// the quantized reference.
    #[test]
    fn gemm_t_fp16_within_tolerance(seed in 0u64..150, ta in any::<bool>(), tb in any::<bool>()) {
        let dev = device::gh200();
        let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
        let a = Matrix::seeded_uniform(32, 32, seed);
        let b = Matrix::seeded_uniform(32, 32, seed + 1);
        let op = |t: bool| if t { MatOp::Transpose } else { MatOp::None };
        let res = gemm_t(&dev, &cfg, op(ta), &a, op(tb), &b).unwrap();
        let ea = if ta { a.transposed() } else { a };
        let eb = if tb { b.transposed() } else { b };
        let want = reference_gemm(&ea, &eb, Precision::Fp16);
        prop_assert!(res.c.rel_frobenius_error(&want) < 1e-2);
    }

    /// `gemm_scaled`'s α/β epilogue matches `α·(A·B) + β·C₀` computed
    /// from the reference, bit-for-bit at FP64 (1D/2D).
    #[test]
    fn gemm_scaled_epilogue_matches_reference_exactly(
        s in 1usize..4,
        seed in 0u64..100,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        two_d in any::<bool>(),
    ) {
        let n = s * 16;
        let dev = device::gh200();
        let algo = if two_d { Algo::TwoD } else { Algo::OneD };
        let cfg = KamiConfig::new(algo, Precision::Fp64);
        let a = Matrix::seeded_uniform(n, n, seed);
        let b = Matrix::seeded_uniform(n, n, seed + 1);
        let c0 = Matrix::seeded_uniform(n, n, seed + 2);
        let res = gemm_scaled(&dev, &cfg, alpha, &a, &b, beta, &c0).unwrap();
        let base = reference_gemm_f64(&a, &b);
        let want = Matrix::from_fn(n, n, |r, c| alpha * base[(r, c)] + beta * c0[(r, c)]);
        prop_assert_eq!(res.c.max_abs_diff(&want), 0.0);
    }

    /// β = 0 must ignore C₀ entirely (cuBLAS semantics: C₀ may be
    /// garbage), and α = 1, β = 0 reduces to plain GEMM.
    #[test]
    fn gemm_scaled_beta_zero_ignores_c0(seed in 0u64..150) {
        let dev = device::gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let a = Matrix::seeded_uniform(32, 32, seed);
        let b = Matrix::seeded_uniform(32, 32, seed + 1);
        let c0 = Matrix::seeded_uniform(32, 32, seed + 2);
        let res = gemm_scaled(&dev, &cfg, 1.0, &a, &b, 0.0, &c0).unwrap();
        prop_assert_eq!(res.c.max_abs_diff(&reference_gemm_f64(&a, &b)), 0.0);
    }

    /// KAMI-2.5D agrees with the reference for every legal (q, c) — the
    /// c-layer split-k reduction reorders accumulation, so FP64 is
    /// tolerance-checked at the reordering scale, not bit-for-bit.
    #[test]
    fn gemm_25d_matches_reference(
        qi in 0usize..2,
        ci in 0usize..2,
        seed in 0u64..300,
    ) {
        let q = [2usize, 3][qi];
        let c = [1usize, 2][ci].min(q);
        // Each warp holds a (n/q)² C panel in registers, so the block
        // edge scales with the grid: 36·q for multi-layer runs, 36 for
        // the register-heavier single-layer (pure 2D) case.
        let n = if c == 1 { 36 } else { 36 * q };
        let dev = device::gh200();
        let cfg = Kami25dConfig::new(q, c, Precision::Fp64);
        let a = Matrix::seeded_uniform(n, n, seed);
        let b = Matrix::seeded_uniform(n, n, seed + 1);
        let res = gemm_25d(&dev, &cfg, &a, &b).unwrap();
        let want = reference_gemm_f64(&a, &b);
        prop_assert!(res.c.max_abs_diff(&want) < 1e-10);
    }

    /// Low-rank column-split matches the reference bit-for-bit at FP64
    /// (each output column is a single ordered dot product over the
    /// rank dimension).
    #[test]
    fn lowrank_colsplit_matches_reference_exactly(
        mi in 1usize..5,
        ni in 1usize..5,
        rank in 1usize..9,
        seed in 0u64..100,
    ) {
        let (m, n) = (mi * 16, ni * 16);
        let dev = device::gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64).with_warps(4);
        let u = Matrix::seeded_uniform(m, rank, seed);
        let v = Matrix::seeded_uniform(rank, n, seed + 1);
        let res = lowrank_gemm_colsplit(&dev, &cfg, &u, &v).unwrap();
        prop_assert_eq!(res.c.max_abs_diff(&reference_gemm_f64(&u, &v)), 0.0);
    }

    /// Low-rank column-split at TF32 stays within the precision's
    /// tolerance of the quantized reference.
    #[test]
    fn lowrank_colsplit_tf32_within_tolerance(rank in 1usize..9, seed in 0u64..150) {
        let dev = device::gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Tf32).with_warps(4);
        let u = Matrix::seeded_uniform(48, rank, seed);
        let v = Matrix::seeded_uniform(rank, 48, seed + 1);
        let res = lowrank_gemm_colsplit(&dev, &cfg, &u, &v).unwrap();
        let want = reference_gemm(&u, &v, Precision::Tf32);
        prop_assert!(res.c.rel_frobenius_error(&want) < 1e-2);
    }
}
