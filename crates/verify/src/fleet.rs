//! The `Fleet` seam: replay one mixed trace three ways — direct engine
//! calls, a single-device [`Server`], and a heterogeneous
//! [`FleetServer`] — and hold all three to byte-identical payloads.
//!
//! Three properties are checked, in order:
//!
//! * **Bit-identity** — every request's `GemmResponse` numerics must be
//!   byte-identical whether computed directly, served by one server, or
//!   routed across the fleet. The fleet pins numerics to its
//!   [`FleetSpec::numeric_device`], so placement can only ever move
//!   *cycles*, never bytes — this check is what enforces that contract.
//! * **Conservation** — every admitted ticket resolves exactly once and
//!   the fleet's served flop total equals the direct total: the router
//!   neither drops nor duplicates work across replicas.
//! * **Cost coherence** — twin probe: the same request placed
//!   explicitly on two replicas of the same device class must charge
//!   the same `service_cycles`, because both answer from the shared
//!   cost cache. A fault-injected [`CostConfig`] on one twin breaks
//!   exactly this property — and only this property, since injection is
//!   cost-plane-only by construction. The probe runs *after* the
//!   numerics checks, so a [`CheckKind::Fleet`] cost-coherence mismatch
//!   is itself evidence that numerics stayed bit-identical.

use crate::checks::{CheckKind, Mismatch};
use kami_gpu_sim::{device, CostConfig, Matrix, Precision};
use kami_serve::{
    DeviceClass, FleetMetrics, FleetServer, FleetSpec, Metrics, ServeRequest, Server, ServerConfig,
};

/// Shapes the deterministic mixed trace cycles through: squares the
/// small-square-friendly classes win, tall-skinny panels GH200 wins —
/// the mix that makes cost-oracle routing matter.
const TRACE_SHAPES: [(usize, usize, usize); 6] = [
    (64, 64, 64),
    (32, 32, 32),
    (16, 16, 256),
    (256, 16, 16),
    (128, 64, 32),
    // Deep tall-skinny: routes through the k-split path on every leg.
    (16, 16, 4096),
];

/// Request `idx` of the seeded trace: shape cycles through the trace
/// shapes above, data is seeded per index, and every third request
/// carries a fused epilogue so the fleet legs exercise the
/// epilogue-aware coalesce keys (`idx % 3`: none, ReLU, GELU).
pub fn trace_request(seed: u64, idx: usize) -> ServeRequest {
    let (m, n, k) = TRACE_SHAPES[idx % TRACE_SHAPES.len()];
    let s = seed.wrapping_mul(1_000_003).wrapping_add(idx as u64 * 2);
    let a = Matrix::seeded_uniform(m, k, s);
    let b = Matrix::seeded_uniform(k, n, s + 1);
    let req = kami_core::GemmRequest::gemm_auto(a, b).precision(Precision::Fp16);
    let req = match idx % 3 {
        1 => req.with_epilogue(kami_core::Epilogue::Relu),
        2 => req.with_epilogue(kami_core::Epilogue::Gelu),
        _ => req,
    };
    ServeRequest::dense(req)
}

/// How to replay a mixed trace through the fleet seam.
#[derive(Debug, Clone)]
pub struct FleetServedCase {
    /// Trace length (requests).
    pub requests: usize,
    pub seed: u64,
    /// Replicas per Table 3 device class (the fleet is always all
    /// four classes). Must be ≥ 2 so the twin probe has a pair.
    pub replicas_per_class: usize,
    /// Fault-injection hook: a perturbed cost model installed on
    /// exactly one GH200 replica. Cost-plane only — numerics must stay
    /// bit-identical while the twin probe catches the divergence.
    pub inject: Option<CostConfig>,
    /// Run the replay with the observation channel live: the shared
    /// cache gets feedback enabled and every class's execution
    /// secretly runs its MMAs at half the modeled rate
    /// (`true_cost`, uniform within each class so the twin probe
    /// stays coherent). Placement and schedules may shift; every
    /// bit-identity and conservation check must hold regardless.
    pub feedback: bool,
}

impl Default for FleetServedCase {
    fn default() -> Self {
        FleetServedCase {
            requests: 40,
            seed: 1,
            replicas_per_class: 2,
            inject: None,
            feedback: false,
        }
    }
}

/// Evidence of a clean fleet replay.
#[derive(Debug)]
pub struct FleetReplay {
    pub requests: usize,
    pub fleet: FleetMetrics,
    pub single: Metrics,
    /// The twin probe's `service_cycles` on each same-class replica.
    pub probe_cycles: (f64, f64),
}

impl FleetServedCase {
    /// The fleet under test: all four Table 3 classes. With injection,
    /// the first GH200 replica keeps the clean cost model and a twin
    /// GH200 replica (same device class, separate [`DeviceClass`]
    /// entry) runs the perturbed one — replica count is unchanged.
    fn spec(&self) -> FleetSpec {
        let mut spec = FleetSpec::table3(self.replicas_per_class);
        if let Some(cost) = &self.inject {
            spec.classes[0].replicas -= 1;
            let mut injected = DeviceClass::new(device::gh200(), 1);
            injected.cost = Some(cost.clone());
            spec.classes.insert(1, injected);
        }
        if self.feedback {
            spec.cache = kami_sched::CacheConfig::default().with_feedback();
            for class in &mut spec.classes {
                class.true_cost = Some(CostConfig {
                    mma_efficiency: 0.5,
                    ..CostConfig::default()
                });
            }
        }
        spec
    }

    fn fail(detail: String) -> Mismatch {
        Mismatch {
            kind: CheckKind::Fleet,
            detail,
        }
    }

    /// Run the three-way replay and all three checks (see module docs).
    pub fn replay(&self) -> Result<FleetReplay, Mismatch> {
        assert!(
            self.replicas_per_class >= 2,
            "twin probe needs at least two replicas per class"
        );
        let ndev = device::gh200();
        let requests: Vec<ServeRequest> = (0..self.requests)
            .map(|i| trace_request(self.seed, i))
            .collect();

        // Oracle: the direct engine call on the numeric device.
        let mut direct: Vec<Vec<f64>> = Vec::with_capacity(self.requests);
        let mut direct_flops = 0u64;
        for (i, r) in requests.iter().enumerate() {
            let out = r
                .execute(&ndev)
                .map_err(|e| Self::fail(format!("direct call rejected trace request {i}: {e}")))?;
            direct_flops += out.useful_flops();
            let single = out
                .into_dense()
                .and_then(|d| d.into_single().map_err(kami_serve::ServeError::Core))
                .map_err(|e| Self::fail(format!("trace request {i} is not plain dense: {e}")))?;
            direct.push(single.c.as_slice().to_vec());
        }

        // Leg 1: one single-device server (the PR 4 runtime, untouched).
        let single_server = Server::with_config(
            &ndev,
            ServerConfig {
                queue_capacity: self.requests.max(1),
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<_> = requests
            .iter()
            .map(|r| {
                single_server
                    .submit(r.clone())
                    .map_err(|e| Self::fail(format!("single server refused within capacity: {e}")))
            })
            .collect::<Result<_, _>>()?;
        single_server.shutdown_and_drain();
        for (i, t) in tickets.into_iter().enumerate() {
            let done = t
                .wait()
                .map_err(|e| Self::fail(format!("single-server request {i} failed: {e}")))?;
            let got = done
                .output
                .into_dense()
                .and_then(|d| d.into_single().map_err(kami_serve::ServeError::Core))
                .map_err(|e| Self::fail(format!("single-server payload {i}: {e}")))?;
            if got.c.as_slice() != direct[i].as_slice() {
                return Err(Self::fail(format!(
                    "single-server request {i} differs bit-wise from the direct call"
                )));
            }
        }
        let single_metrics = single_server.metrics();

        // Leg 2: the heterogeneous fleet, cost-oracle routed.
        let fleet = FleetServer::new(self.spec());
        let fleet_tickets: Vec<_> = requests
            .iter()
            .map(|r| {
                fleet
                    .submit(r.clone())
                    .map_err(|e| Self::fail(format!("fleet refused a servable request: {e}")))
            })
            .collect::<Result<_, _>>()?;
        fleet.drain();
        let mut fleet_flops = 0u64;
        for (i, t) in fleet_tickets.into_iter().enumerate() {
            let (replica, dev) = (t.replica, t.device.clone());
            let done = t.wait().map_err(|e| {
                Self::fail(format!(
                    "fleet request {i} (on {dev}#{replica}) failed: {e}"
                ))
            })?;
            fleet_flops += done.output.useful_flops();
            let got = done
                .output
                .into_dense()
                .and_then(|d| d.into_single().map_err(kami_serve::ServeError::Core))
                .map_err(|e| Self::fail(format!("fleet payload {i}: {e}")))?;
            if got.c.as_slice() != direct[i].as_slice() {
                return Err(Self::fail(format!(
                    "fleet request {i} placed on {dev}#{replica} differs bit-wise from the \
                     direct call — placement changed the bytes"
                )));
            }
        }

        // Conservation: every ticket resolved exactly once (waits above
        // would have failed otherwise), the rollup agrees, and the
        // served flop total matches the direct total.
        let fm = fleet.metrics();
        if fm.completed() != self.requests as u64 {
            return Err(Self::fail(format!(
                "fleet rollup counts {} completions for {} admitted tickets",
                fm.completed(),
                self.requests
            )));
        }
        if fleet_flops != direct_flops {
            return Err(Self::fail(format!(
                "fleet served {fleet_flops} useful flops, direct total is {direct_flops} — \
                 work dropped or duplicated across replicas"
            )));
        }

        // Cost coherence: identical probes on replicas 0 and 1 — both
        // GH200-class; with injection, replica 1 runs the perturbed
        // cost model. Numerics were already proven identical above, so
        // any divergence here is isolated to the cost plane.
        let probe = trace_request(self.seed.wrapping_add(0xF1EE7), 0);
        let t0 = fleet
            .submit_to(0, probe.clone())
            .map_err(|e| Self::fail(format!("probe refused on replica 0: {e}")))?;
        let t1 = fleet
            .submit_to(1, probe)
            .map_err(|e| Self::fail(format!("probe refused on replica 1: {e}")))?;
        fleet.replicas()[0].server().tick();
        fleet.replicas()[1].server().tick();
        let d0 = t0
            .wait()
            .map_err(|e| Self::fail(format!("probe on replica 0 failed: {e}")))?;
        let d1 = t1
            .wait()
            .map_err(|e| Self::fail(format!("probe on replica 1 failed: {e}")))?;
        let (g0, g1) = (
            d0.output
                .into_dense()
                .and_then(|d| d.into_single().map_err(kami_serve::ServeError::Core)),
            d1.output
                .into_dense()
                .and_then(|d| d.into_single().map_err(kami_serve::ServeError::Core)),
        );
        match (&g0, &g1) {
            (Ok(a), Ok(b)) if a.c.as_slice() == b.c.as_slice() => {}
            _ => {
                return Err(Self::fail(
                    "twin probes returned different bytes — injection leaked into the \
                     numerics plane"
                        .into(),
                ))
            }
        }
        let (c0, c1) = (d0.service_cycles, d1.service_cycles);
        if (c0 - c1).abs() > 1e-6 * (1.0 + c0.abs()) {
            return Err(Self::fail(format!(
                "same-class twin replicas charge different service cycles for one probe \
                 ({c0:.3} vs {c1:.3}) — cost models diverge while numerics stay bit-identical"
            )));
        }
        fleet.shutdown_and_drain();

        Ok(FleetReplay {
            requests: self.requests,
            fleet: fm,
            single: single_metrics,
            probe_cycles: (c0, c1),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_fleet_replay_passes() {
        let case = FleetServedCase {
            requests: 10,
            ..FleetServedCase::default()
        };
        let replay = case.replay().expect("clean fleet must replay clean");
        assert_eq!(replay.fleet.completed(), 10);
        assert_eq!(replay.single.completed, 10);
        assert_eq!(replay.probe_cycles.0, replay.probe_cycles.1);
    }

    #[test]
    fn feedback_enabled_fleet_replay_stays_bit_identical() {
        let case = FleetServedCase {
            requests: 10,
            feedback: true,
            ..FleetServedCase::default()
        };
        let replay = case
            .replay()
            .expect("feedback may move schedules, never bits");
        assert_eq!(replay.fleet.completed(), 10);
        assert!(
            replay.fleet.plan_cache.feedback_observations >= 1,
            "a mis-modeled fleet must record observations"
        );
    }

    #[test]
    fn injected_cost_caught_as_fleet_mismatch() {
        let case = FleetServedCase {
            requests: 10,
            inject: Some(CostConfig {
                theta_r: 0.25,
                mma_efficiency: 0.05,
                ..CostConfig::default()
            }),
            ..FleetServedCase::default()
        };
        let err = case.replay().expect_err("injected twin must diverge");
        assert_eq!(err.kind, CheckKind::Fleet, "{err}");
        assert!(err.detail.contains("cost models diverge"), "{err}");
    }
}
