//! Grid sweeps: the harness's batch mode.
//!
//! A sweep walks device × algorithm × precision cells, draws
//! `cases_per_cell` seeded cases per cell, runs [`run_case`] on each,
//! and shrinks any failure to a minimal reproducer. Everything derives
//! from the top-level seed: re-running with the same seed replays the
//! identical case list.

use crate::case::{AlgoKind, Case, DeviceId};
use crate::checks::{run_case, CaseOutcome, Harness, Mismatch};
use crate::shrink::shrink;
use kami_gpu_sim::{shape_for, Precision};
use kami_sched::PlanCache;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sweep dimensions and reproducibility seed.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub seed: u64,
    pub cases_per_cell: usize,
    /// Stop early after this many failures (each failure costs a
    /// shrink descent; a broken build does not need hundreds of them).
    pub max_failures: usize,
}

/// The CI profile (`verify_sweep --quick`): 5 cases in each of the 66
/// grid cells — 330 cases over all four Table-3 devices, all six
/// algorithm kinds (1D/2D/2.5D/3D plus the tall-skinny and skinny-wide
/// k-split classes), and 2–4 precisions per device.
pub fn quick() -> SweepConfig {
    SweepConfig {
        seed: 0x4b41_4d49, // "KAMI"
        cases_per_cell: 5,
        max_failures: 8,
    }
}

/// One sweep failure: the case as drawn, its shrunk minimal form, the
/// mismatch, and a paste-ready regression test.
#[derive(Debug, Clone)]
pub struct Failure {
    pub case: Case,
    pub shrunk: Case,
    pub mismatch: Mismatch,
    pub reproducer: String,
}

/// Aggregate sweep result.
#[derive(Debug, Clone, Default)]
pub struct SweepOutcome {
    /// Cases that ran to a verdict (pass or fail).
    pub cases_run: usize,
    /// Cases infeasible on their cell (register pressure, unsupported
    /// precision) — not bugs, but reported so silent shrinkage of the
    /// covered surface is visible.
    pub skipped: usize,
    /// `(cell label, skip reason)` per skipped case.
    pub skip_reasons: Vec<(String, String)>,
    pub failures: Vec<Failure>,
}

impl SweepOutcome {
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Multi-line human summary (the `verify_sweep` binary prints it).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "verify sweep: {} cases run, {} skipped, {} failed\n",
            self.cases_run,
            self.skipped,
            self.failures.len()
        );
        // Collapse skips into reason histograms — a sweep that silently
        // skipped a whole cell would otherwise read as full coverage.
        let mut counts: Vec<(String, usize)> = Vec::new();
        for (cell, reason) in &self.skip_reasons {
            let key = format!("{cell}: {reason}");
            match counts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => counts.push((key, 1)),
            }
        }
        for (key, n) in counts {
            let _ = writeln!(out, "  skip x{n} {key}");
        }
        for f in &self.failures {
            let _ = writeln!(
                out,
                "FAIL {} -> shrunk to {}\n  {}\n--- reproducer ---\n{}",
                f.case.describe(),
                f.shrunk.describe(),
                f.mismatch,
                f.reproducer
            );
        }
        out
    }
}

/// Precisions exercised on `device`: every menu entry the device has a
/// native MMA shape for ([`shape_for`] — the same predicate the engine
/// enforces, so none of these cells skip wholesale). FP16/BF16 run
/// everywhere, TF32 on NVIDIA parts, FP64 on GH200 only.
pub fn device_precisions(device: DeviceId) -> Vec<Precision> {
    let spec = device.spec();
    [
        Precision::Fp16,
        Precision::Bf16,
        Precision::Tf32,
        Precision::Fp64,
    ]
    .into_iter()
    .filter(|&p| shape_for(&spec, p).is_some())
    .collect()
}

/// Run the full grid. A shared [`PlanCache`] carries scheduler plans
/// across cases, so the sweep also exercises cache-hit paths.
pub fn sweep(cfg: &SweepConfig, harness: &Harness) -> SweepOutcome {
    let plans = PlanCache::new();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut out = SweepOutcome::default();
    'grid: for device in DeviceId::ALL {
        for kind in AlgoKind::ALL {
            for precision in device_precisions(device) {
                for _ in 0..cfg.cases_per_cell {
                    let case_seed = rng.gen_range(0..u64::MAX);
                    let case = Case::generate(device, kind, precision, case_seed);
                    match run_case(&case, harness, &plans) {
                        Ok(CaseOutcome::Pass) => out.cases_run += 1,
                        Ok(CaseOutcome::Skip(reason)) => {
                            out.skipped += 1;
                            out.skip_reasons.push((
                                format!(
                                    "{} {} {}",
                                    device.label(),
                                    kind.label(),
                                    precision.label()
                                ),
                                reason,
                            ));
                        }
                        Err(mismatch) => {
                            out.cases_run += 1;
                            let (shrunk, min_mismatch) = shrink(&case, harness, &plans, &mismatch);
                            let reproducer = shrunk.reproducer(&format!("{min_mismatch}"));
                            out.failures.push(Failure {
                                case,
                                shrunk,
                                mismatch: min_mismatch,
                                reproducer,
                            });
                            if out.failures.len() >= cfg.max_failures {
                                break 'grid;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_66_cells() {
        let cells: usize = DeviceId::ALL
            .iter()
            .map(|&d| device_precisions(d).len() * AlgoKind::ALL.len())
            .sum();
        assert_eq!(cells, 66, "4 devices x 6 algos x (2 to 4) precisions");
        for d in DeviceId::ALL {
            assert!(
                device_precisions(d).len() >= 2,
                "{} must sweep at least two precisions",
                d.label()
            );
        }
    }

    #[test]
    fn skip_histogram_collapses_repeat_reasons() {
        let out = SweepOutcome {
            cases_run: 1,
            skipped: 2,
            skip_reasons: vec![
                ("gh200 skinny fp16".into(), "regfile overflow".into()),
                ("gh200 skinny fp16".into(), "regfile overflow".into()),
            ],
            failures: Vec::new(),
        };
        let summary = out.summary();
        assert!(
            summary.contains("skip x2 gh200 skinny fp16: regfile overflow"),
            "{summary}"
        );
    }

    #[test]
    fn quick_profile_covers_at_least_200_cases() {
        let cfg = quick();
        let cells: usize = DeviceId::ALL
            .iter()
            .map(|&d| device_precisions(d).len() * AlgoKind::ALL.len())
            .sum();
        assert!(cells * cfg.cases_per_cell >= 200);
    }

    #[test]
    fn sweep_is_reproducible() {
        let cfg = SweepConfig {
            seed: 3,
            cases_per_cell: 1,
            max_failures: 1,
        };
        let harness = Harness::default();
        // Draw the same case list twice; identical verdict counts.
        let a = sweep(&cfg, &harness);
        let b = sweep(&cfg, &harness);
        assert_eq!(a.cases_run, b.cases_run);
        assert_eq!(a.skipped, b.skipped);
        assert_eq!(a.failures.len(), b.failures.len());
    }
}
