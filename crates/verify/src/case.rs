//! Case vocabulary and seeded generation.
//!
//! A [`Case`] is plain data: everything needed to re-run one
//! cross-check deterministically, including the seed the input matrices
//! are drawn from. [`Case::generate`] maps (grid cell, seed) → case, so
//! a sweep is reproducible from its top-level seed alone, and
//! [`Case::reproducer`] renders any case as a paste-ready regression
//! test.

use kami_core::{Algo, Epilogue, SKINNY_K_MIN};
use kami_gpu_sim::{device, DeviceSpec, Matrix, Precision};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four Table-3 devices, as a copyable identifier (a [`DeviceSpec`]
/// itself is not `Copy` and not comparable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceId {
    Gh200,
    Rtx5090,
    Amd7900Xtx,
    IntelMax1100,
}

impl DeviceId {
    pub const ALL: [DeviceId; 4] = [
        DeviceId::Gh200,
        DeviceId::Rtx5090,
        DeviceId::Amd7900Xtx,
        DeviceId::IntelMax1100,
    ];

    pub fn spec(self) -> DeviceSpec {
        match self {
            DeviceId::Gh200 => device::gh200(),
            DeviceId::Rtx5090 => device::rtx5090(),
            DeviceId::Amd7900Xtx => device::amd_7900xtx(),
            DeviceId::IntelMax1100 => device::intel_max1100(),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DeviceId::Gh200 => "gh200",
            DeviceId::Rtx5090 => "rtx5090",
            DeviceId::Amd7900Xtx => "amd7900xtx",
            DeviceId::IntelMax1100 => "intelmax1100",
        }
    }

    /// Rust expression reconstructing this value (for reproducers).
    fn render(self) -> &'static str {
        match self {
            DeviceId::Gh200 => "DeviceId::Gh200",
            DeviceId::Rtx5090 => "DeviceId::Rtx5090",
            DeviceId::Amd7900Xtx => "DeviceId::Amd7900Xtx",
            DeviceId::IntelMax1100 => "DeviceId::IntelMax1100",
        }
    }
}

/// Sweep axis: which algorithm family a grid cell draws cases from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    OneD,
    TwoD,
    ThreeD,
    TwoHalfD,
    /// Tall-skinny shapes (`m,n ≤ 64`, `k ≥ SKINNY_K_MIN`) through the
    /// k-split tree-fixup path.
    Skinny,
    /// The transposed wide case: the same logical product, but the
    /// operands arrive transposed and funnel through `gemm_t`.
    SkinnyWide,
}

impl AlgoKind {
    pub const ALL: [AlgoKind; 6] = [
        AlgoKind::OneD,
        AlgoKind::TwoD,
        AlgoKind::ThreeD,
        AlgoKind::TwoHalfD,
        AlgoKind::Skinny,
        AlgoKind::SkinnyWide,
    ];

    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::OneD => "1d",
            AlgoKind::TwoD => "2d",
            AlgoKind::ThreeD => "3d",
            AlgoKind::TwoHalfD => "2.5d",
            AlgoKind::Skinny => "skinny",
            AlgoKind::SkinnyWide => "skinny-wide",
        }
    }
}

/// Sweep axis: which fused epilogue (if any) a case asks the engine to
/// run inside the kernel's store phase. Carried as a kind (not a
/// [`kami_core::Epilogue`]) so a [`Case`] stays plain comparable data;
/// [`EpilogueKind::build`] materializes the real epilogue, deriving the
/// bias row from the case's data seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpilogueKind {
    Bias,
    Relu,
    Gelu,
    SoftmaxScale,
}

impl EpilogueKind {
    pub const ALL: [EpilogueKind; 4] = [
        EpilogueKind::Bias,
        EpilogueKind::Relu,
        EpilogueKind::Gelu,
        EpilogueKind::SoftmaxScale,
    ];

    pub fn label(self) -> &'static str {
        match self {
            EpilogueKind::Bias => "bias",
            EpilogueKind::Relu => "relu",
            EpilogueKind::Gelu => "gelu",
            EpilogueKind::SoftmaxScale => "softmax-scale",
        }
    }

    /// Rust expression reconstructing this value (for reproducers).
    fn render(self) -> &'static str {
        match self {
            EpilogueKind::Bias => "EpilogueKind::Bias",
            EpilogueKind::Relu => "EpilogueKind::Relu",
            EpilogueKind::Gelu => "EpilogueKind::Gelu",
            EpilogueKind::SoftmaxScale => "EpilogueKind::SoftmaxScale",
        }
    }

    /// Materialize the epilogue for an `n`-column product. The bias row
    /// is seeded off `data_seed`, so it is as reproducible as the
    /// operands; the softmax scale is a fixed exactly-representable
    /// constant.
    pub fn build(self, n: usize, data_seed: u64) -> Epilogue {
        match self {
            EpilogueKind::Bias => {
                Epilogue::Bias(Matrix::seeded_uniform(1, n, data_seed.wrapping_add(5)))
            }
            EpilogueKind::Relu => Epilogue::Relu,
            EpilogueKind::Gelu => Epilogue::Gelu,
            EpilogueKind::SoftmaxScale => Epilogue::SoftmaxScale(0.125),
        }
    }
}

/// The concrete algorithm a case runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseAlgo {
    Dense(Algo),
    TwoHalfD {
        q: usize,
        c: usize,
    },
    /// The tall-skinny k-split path; `algo` is the per-chunk block
    /// kernel, `wide` hands the operands over transposed (via
    /// `gemm_t`).
    Skinny {
        algo: Algo,
        wide: bool,
    },
}

impl CaseAlgo {
    pub fn label(self) -> String {
        match self {
            CaseAlgo::Dense(a) => a.label().to_string(),
            CaseAlgo::TwoHalfD { q, c } => format!("KAMI-2.5D(q={q},c={c})"),
            CaseAlgo::Skinny { algo, wide } => format!(
                "KAMI-skinny({}{})",
                algo.label(),
                if wide { ",wide" } else { "" }
            ),
        }
    }

    fn render(self) -> String {
        let algo_expr = |a: Algo| match a {
            Algo::OneD => "Algo::OneD",
            Algo::TwoD => "Algo::TwoD",
            Algo::ThreeD => "Algo::ThreeD",
        };
        match self {
            CaseAlgo::Dense(a) => format!("CaseAlgo::Dense({})", algo_expr(a)),
            CaseAlgo::TwoHalfD { q, c } => format!("CaseAlgo::TwoHalfD {{ q: {q}, c: {c} }}"),
            CaseAlgo::Skinny { algo, wide } => format!(
                "CaseAlgo::Skinny {{ algo: {}, wide: {wide} }}",
                algo_expr(algo)
            ),
        }
    }
}

fn render_precision(p: Precision) -> &'static str {
    match p {
        Precision::Fp64 => "Precision::Fp64",
        Precision::Fp32 => "Precision::Fp32",
        Precision::Tf32 => "Precision::Tf32",
        Precision::Fp16 => "Precision::Fp16",
        Precision::Bf16 => "Precision::Bf16",
        Precision::Fp8E4M3 => "Precision::Fp8E4M3",
    }
}

/// Block edge the sparse generator uses; sparse shapes are multiples of
/// this times the worst divisibility requirement below.
pub const SPARSE_BLOCK: usize = 16;

/// One fully-specified cross-check case.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Seed this case was generated from (identification only).
    pub id: u64,
    pub device: DeviceId,
    pub algo: CaseAlgo,
    pub precision: Precision,
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// Warps `p` (for 2.5D this must equal `c·q²`).
    pub warps: usize,
    pub alpha: f64,
    pub beta: f64,
    /// `Some(density)` adds the SpMM/SpGEMM-vs-dense check (dense
    /// algorithms only).
    pub sparsity: Option<f64>,
    /// `Some(kind)` fuses that epilogue into the kernel's store phase
    /// and adds the fused-vs-unfused checks (plain scalars only, so
    /// α/β are pinned to 1/0 whenever this is set).
    pub epilogue: Option<EpilogueKind>,
    /// Block count handed to the device scheduler check.
    pub batch: usize,
    /// Seed the input matrices are drawn from.
    pub data_seed: u64,
}

impl Case {
    /// Deterministically draw one case for a sweep-grid cell.
    ///
    /// Shapes are multiples of the cell's divisibility quantum
    /// ([`Case::quantum`]) so every generated case passes `validate`;
    /// rejection sampling is never needed.
    pub fn generate(device: DeviceId, kind: AlgoKind, precision: Precision, seed: u64) -> Case {
        let mut rng = StdRng::seed_from_u64(seed);
        let (algo, warps) = match kind {
            AlgoKind::OneD => {
                let p = [2usize, 4][rng.gen_range(0..2usize)];
                (CaseAlgo::Dense(Algo::OneD), p)
            }
            AlgoKind::TwoD => (CaseAlgo::Dense(Algo::TwoD), 4),
            AlgoKind::ThreeD => (CaseAlgo::Dense(Algo::ThreeD), 8),
            AlgoKind::TwoHalfD => {
                let c = [1usize, 2][rng.gen_range(0..2usize)];
                (CaseAlgo::TwoHalfD { q: 2, c }, c * 4)
            }
            AlgoKind::Skinny | AlgoKind::SkinnyWide => {
                let wide = kind == AlgoKind::SkinnyWide;
                // The per-chunk kernel: 1D or 2D (3D's accumulate
                // stores cannot host the fused epilogue plane).
                if rng.gen_range(0..2usize) == 0 {
                    let p = [2usize, 4][rng.gen_range(0..2usize)];
                    (
                        CaseAlgo::Skinny {
                            algo: Algo::OneD,
                            wide,
                        },
                        p,
                    )
                } else {
                    (
                        CaseAlgo::Skinny {
                            algo: Algo::TwoD,
                            wide,
                        },
                        4,
                    )
                }
            }
        };
        // 2.5D has no scaled epilogue or sparse kernel, and the skinny
        // path is a plain product: pin α/β there.
        let plain_only = !matches!(algo, CaseAlgo::Dense(_));
        let (alpha, beta) = if plain_only {
            (1.0, 0.0)
        } else {
            let alphas = [1.0, -1.0, 0.5, 2.0, 0.0, -0.75];
            let betas = [0.0, 1.0, -1.0, 0.25, 3.0];
            (
                alphas[rng.gen_range(0..alphas.len())],
                betas[rng.gen_range(0..betas.len())],
            )
        };
        // Roughly a quarter of dense cases also exercise the sparse
        // kernels; sparse shapes are larger so block-grid divisibility
        // holds for every dense algorithm at once.
        let sparse = matches!(algo, CaseAlgo::Dense(_)) && rng.gen_range(0..4usize) == 0;
        let (m, n, k, sparsity) = if let CaseAlgo::Skinny { .. } = algo {
            // Skinny regime: m,n ≤ 64, k ≥ SKINNY_K_MIN. The k menu is
            // a multiple of the shrink quantum (SKINNY_K_MIN) so every
            // shrink candidate stays on the k-split path, and 12288
            // keeps the paper's k ≥ 10^4 regime represented.
            (
                16 * rng.gen_range(1..=2usize),
                16 * rng.gen_range(1..=2usize),
                SKINNY_K_MIN * rng.gen_range(1..=3usize),
                None,
            )
        } else if sparse {
            let densities = [0.125, 0.25, 0.5];
            (
                [64usize, 128][rng.gen_range(0..2usize)],
                [32usize, 64][rng.gen_range(0..2usize)],
                [64usize, 128][rng.gen_range(0..2usize)],
                Some(densities[rng.gen_range(0..densities.len())]),
            )
        } else {
            // Multiples of 16 divide every dense grid in the menu
            // (p ∈ {2,4}, √p = 2, ∛p = 2 with ∛p² = 4, cq ∈ {2,4}).
            let dim = |rng: &mut StdRng| 16 * rng.gen_range(1..=4usize);
            (dim(&mut rng), dim(&mut rng), dim(&mut rng), None)
        };
        // The epilogue axis. Support matrix: 1D hosts all four, 2D
        // hosts bias/relu/gelu fused into per-warp tiles (softmax is
        // drawn too and must skip *visibly*, not silently), 3D's
        // accumulate stores host none, 2.5D has no epilogue plane, and
        // the wide transposed entry (`gemm_t`) carries no epilogue.
        // Epilogues demand a plain product, so drawing one pins α/β
        // back to 1/0.
        let epilogue_ok = match algo {
            CaseAlgo::Dense(Algo::OneD) | CaseAlgo::Dense(Algo::TwoD) => sparsity.is_none(),
            CaseAlgo::Skinny { wide, .. } => !wide,
            _ => false,
        };
        let epilogue = if epilogue_ok && rng.gen_range(0..2usize) == 0 {
            Some(EpilogueKind::ALL[rng.gen_range(0..EpilogueKind::ALL.len())])
        } else {
            None
        };
        let (alpha, beta) = if epilogue.is_some() {
            (1.0, 0.0)
        } else {
            (alpha, beta)
        };
        Case {
            id: seed,
            device,
            algo,
            precision,
            m,
            n,
            k,
            warps,
            alpha,
            beta,
            sparsity,
            epilogue,
            batch: rng.gen_range(1..=8usize),
            data_seed: rng.gen_range(0..u64::MAX),
        }
    }

    /// Divisibility quanta `(m, n, k)` shrink candidates must respect.
    pub fn quantum(&self) -> (usize, usize, usize) {
        if matches!(self.algo, CaseAlgo::Skinny { .. }) {
            // Shrinking k below SKINNY_K_MIN would leave the k-split
            // path entirely and reproduce a different bug (if any).
            (16, 16, SKINNY_K_MIN)
        } else if self.sparsity.is_some() {
            // Worst case over the dense algos in block units: 1D needs
            // p | m/16 and p | k/16 with p ≤ 4; 3D needs 4 | k/16.
            (64, 32, 64)
        } else {
            (16, 16, 16)
        }
    }

    /// One-line human identification.
    pub fn describe(&self) -> String {
        format!(
            "[{} {} {} {}x{}x{} p={} alpha={} beta={} sparsity={:?} epilogue={} batch={} seed={}]",
            self.device.label(),
            self.algo.label(),
            self.precision.label(),
            self.m,
            self.n,
            self.k,
            self.warps,
            self.alpha,
            self.beta,
            self.sparsity,
            self.epilogue.map_or("none", |e| e.label()),
            self.batch,
            self.id,
        )
    }

    /// Render this case as a ready-to-paste regression test for the
    /// repo's `tests/` directory. `note` is embedded as a comment (the
    /// mismatch the case reproduced when it was shrunk).
    pub fn reproducer(&self, note: &str) -> String {
        let sparsity = match self.sparsity {
            Some(d) => format!("Some({d:?})"),
            None => "None".to_string(),
        };
        let epilogue = match self.epilogue {
            Some(e) => format!("Some({})", e.render()),
            None => "None".to_string(),
        };
        format!(
            "#[test]\n\
             fn kami_verify_repro_{device}_{id}() {{\n    \
                 // {note}\n    \
                 use kami::core::Algo;\n    \
                 use kami::sim::Precision;\n    \
                 use kami::verify::{{assert_case, Case, CaseAlgo, DeviceId, EpilogueKind, \
                 Harness}};\n    \
                 let case = Case {{\n        \
                     id: {id},\n        \
                     device: {device_expr},\n        \
                     algo: {algo},\n        \
                     precision: {prec},\n        \
                     m: {m},\n        \
                     n: {n},\n        \
                     k: {k},\n        \
                     warps: {warps},\n        \
                     alpha: {alpha:?},\n        \
                     beta: {beta:?},\n        \
                     sparsity: {sparsity},\n        \
                     epilogue: {epilogue},\n        \
                     batch: {batch},\n        \
                     data_seed: {data_seed},\n    \
                 }};\n    \
                 assert_case(&case, &Harness::default());\n\
             }}\n",
            device = self.device.label(),
            id = self.id,
            device_expr = self.device.render(),
            algo = self.algo.render(),
            prec = render_precision(self.precision),
            m = self.m,
            n = self.n,
            k = self.k,
            warps = self.warps,
            alpha = self.alpha,
            beta = self.beta,
            sparsity = sparsity,
            epilogue = epilogue,
            batch = self.batch,
            data_seed = self.data_seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 42);
        let b = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 42);
        assert_eq!(a, b);
        let c = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 43);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn generated_shapes_respect_divisibility() {
        for kind in AlgoKind::ALL {
            for seed in 0..200 {
                let c = Case::generate(DeviceId::Gh200, kind, Precision::Fp16, seed);
                let (qm, qn, qk) = c.quantum();
                assert_eq!(c.m % qm, 0, "{}", c.describe());
                assert_eq!(c.n % qn, 0, "{}", c.describe());
                assert_eq!(c.k % qk, 0, "{}", c.describe());
                match c.algo {
                    CaseAlgo::Dense(Algo::OneD) => {
                        assert_eq!(c.m % c.warps, 0);
                        assert_eq!(c.k % c.warps, 0);
                    }
                    CaseAlgo::Dense(Algo::TwoD) => assert_eq!(c.warps, 4),
                    CaseAlgo::Dense(Algo::ThreeD) => assert_eq!(c.warps, 8),
                    CaseAlgo::TwoHalfD { q, c: layers } => {
                        assert_eq!(c.warps, layers * q * q);
                        assert!(layers <= q);
                    }
                    CaseAlgo::Skinny { algo, wide } => {
                        assert!(kami_core::is_tall_skinny(c.m, c.n, c.k), "{}", c.describe());
                        assert_eq!(c.k % SKINNY_K_MIN, 0, "{}", c.describe());
                        match algo {
                            Algo::OneD => assert_eq!(c.m % c.warps, 0),
                            Algo::TwoD => assert_eq!(c.warps, 4),
                            Algo::ThreeD => panic!("3D chunks cannot host the epilogue plane"),
                        }
                        assert_eq!((c.alpha, c.beta), (1.0, 0.0), "skinny is a plain product");
                        if wide {
                            assert_eq!(c.epilogue, None, "gemm_t carries no epilogue");
                        }
                    }
                }
                if c.sparsity.is_some() {
                    assert!(matches!(c.algo, CaseAlgo::Dense(_)));
                    assert_eq!(c.epilogue, None, "sparse riders never carry an epilogue");
                }
                if c.epilogue.is_some() {
                    assert_eq!((c.alpha, c.beta), (1.0, 0.0), "{}", c.describe());
                }
            }
        }
    }

    #[test]
    fn every_epilogue_kind_is_drawn_where_supported() {
        // The new grid axes must actually appear in generated cases —
        // a menu nobody draws from is silent coverage loss.
        for kind in [AlgoKind::OneD, AlgoKind::Skinny] {
            let mut seen = [false; 4];
            for seed in 0..400 {
                let c = Case::generate(DeviceId::Gh200, kind, Precision::Fp16, seed);
                if let Some(e) = c.epilogue {
                    let idx = EpilogueKind::ALL.iter().position(|&x| x == e).unwrap();
                    seen[idx] = true;
                }
            }
            assert_eq!(
                seen,
                [true; 4],
                "{:?}: all four epilogue kinds must be drawn",
                kind.label()
            );
        }
        for seed in 0..400 {
            let c = Case::generate(DeviceId::Gh200, AlgoKind::ThreeD, Precision::Fp16, seed);
            assert_eq!(c.epilogue, None, "3D accumulate stores host no epilogue");
        }
    }

    #[test]
    fn reproducer_mentions_every_field() {
        let c = Case::generate(DeviceId::Rtx5090, AlgoKind::ThreeD, Precision::Tf32, 7);
        let r = c.reproducer("EngineVsModel: demo");
        assert!(r.contains("DeviceId::Rtx5090"));
        assert!(r.contains("Algo::ThreeD"));
        assert!(r.contains("Precision::Tf32"));
        assert!(r.contains("assert_case"));
        assert!(r.contains("EngineVsModel: demo"));
        assert!(r.contains("epilogue:"));
        assert!(r.contains(&format!("data_seed: {}", c.data_seed)));
    }

    #[test]
    fn skinny_reproducer_renders_the_new_axes() {
        // Find a fused skinny case and check the template round-trips
        // both new fields as compilable expressions.
        let c = (0..400)
            .map(|s| Case::generate(DeviceId::Gh200, AlgoKind::Skinny, Precision::Fp16, s))
            .find(|c| c.epilogue == Some(EpilogueKind::SoftmaxScale))
            .expect("400 seeds must draw a softmax-scale skinny case");
        let r = c.reproducer("Numerics: demo");
        assert!(r.contains("CaseAlgo::Skinny {"));
        assert!(r.contains("wide: false"));
        assert!(r.contains("Some(EpilogueKind::SoftmaxScale)"));
    }
}
