//! Case vocabulary and seeded generation.
//!
//! A [`Case`] is plain data: everything needed to re-run one
//! cross-check deterministically, including the seed the input matrices
//! are drawn from. [`Case::generate`] maps (grid cell, seed) → case, so
//! a sweep is reproducible from its top-level seed alone, and
//! [`Case::reproducer`] renders any case as a paste-ready regression
//! test.

use kami_core::Algo;
use kami_gpu_sim::{device, DeviceSpec, Precision};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four Table-3 devices, as a copyable identifier (a [`DeviceSpec`]
/// itself is not `Copy` and not comparable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceId {
    Gh200,
    Rtx5090,
    Amd7900Xtx,
    IntelMax1100,
}

impl DeviceId {
    pub const ALL: [DeviceId; 4] = [
        DeviceId::Gh200,
        DeviceId::Rtx5090,
        DeviceId::Amd7900Xtx,
        DeviceId::IntelMax1100,
    ];

    pub fn spec(self) -> DeviceSpec {
        match self {
            DeviceId::Gh200 => device::gh200(),
            DeviceId::Rtx5090 => device::rtx5090(),
            DeviceId::Amd7900Xtx => device::amd_7900xtx(),
            DeviceId::IntelMax1100 => device::intel_max1100(),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DeviceId::Gh200 => "gh200",
            DeviceId::Rtx5090 => "rtx5090",
            DeviceId::Amd7900Xtx => "amd7900xtx",
            DeviceId::IntelMax1100 => "intelmax1100",
        }
    }

    /// Rust expression reconstructing this value (for reproducers).
    fn render(self) -> &'static str {
        match self {
            DeviceId::Gh200 => "DeviceId::Gh200",
            DeviceId::Rtx5090 => "DeviceId::Rtx5090",
            DeviceId::Amd7900Xtx => "DeviceId::Amd7900Xtx",
            DeviceId::IntelMax1100 => "DeviceId::IntelMax1100",
        }
    }
}

/// Sweep axis: which algorithm family a grid cell draws cases from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoKind {
    OneD,
    TwoD,
    ThreeD,
    TwoHalfD,
}

impl AlgoKind {
    pub const ALL: [AlgoKind; 4] = [
        AlgoKind::OneD,
        AlgoKind::TwoD,
        AlgoKind::ThreeD,
        AlgoKind::TwoHalfD,
    ];

    pub fn label(self) -> &'static str {
        match self {
            AlgoKind::OneD => "1d",
            AlgoKind::TwoD => "2d",
            AlgoKind::ThreeD => "3d",
            AlgoKind::TwoHalfD => "2.5d",
        }
    }
}

/// The concrete algorithm a case runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseAlgo {
    Dense(Algo),
    TwoHalfD { q: usize, c: usize },
}

impl CaseAlgo {
    pub fn label(self) -> String {
        match self {
            CaseAlgo::Dense(a) => a.label().to_string(),
            CaseAlgo::TwoHalfD { q, c } => format!("KAMI-2.5D(q={q},c={c})"),
        }
    }

    fn render(self) -> String {
        match self {
            CaseAlgo::Dense(Algo::OneD) => "CaseAlgo::Dense(Algo::OneD)".into(),
            CaseAlgo::Dense(Algo::TwoD) => "CaseAlgo::Dense(Algo::TwoD)".into(),
            CaseAlgo::Dense(Algo::ThreeD) => "CaseAlgo::Dense(Algo::ThreeD)".into(),
            CaseAlgo::TwoHalfD { q, c } => format!("CaseAlgo::TwoHalfD {{ q: {q}, c: {c} }}"),
        }
    }
}

fn render_precision(p: Precision) -> &'static str {
    match p {
        Precision::Fp64 => "Precision::Fp64",
        Precision::Fp32 => "Precision::Fp32",
        Precision::Tf32 => "Precision::Tf32",
        Precision::Fp16 => "Precision::Fp16",
        Precision::Bf16 => "Precision::Bf16",
        Precision::Fp8E4M3 => "Precision::Fp8E4M3",
    }
}

/// Block edge the sparse generator uses; sparse shapes are multiples of
/// this times the worst divisibility requirement below.
pub const SPARSE_BLOCK: usize = 16;

/// One fully-specified cross-check case.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Seed this case was generated from (identification only).
    pub id: u64,
    pub device: DeviceId,
    pub algo: CaseAlgo,
    pub precision: Precision,
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// Warps `p` (for 2.5D this must equal `c·q²`).
    pub warps: usize,
    pub alpha: f64,
    pub beta: f64,
    /// `Some(density)` adds the SpMM/SpGEMM-vs-dense check (dense
    /// algorithms only).
    pub sparsity: Option<f64>,
    /// Block count handed to the device scheduler check.
    pub batch: usize,
    /// Seed the input matrices are drawn from.
    pub data_seed: u64,
}

impl Case {
    /// Deterministically draw one case for a sweep-grid cell.
    ///
    /// Shapes are multiples of the cell's divisibility quantum
    /// ([`Case::quantum`]) so every generated case passes `validate`;
    /// rejection sampling is never needed.
    pub fn generate(device: DeviceId, kind: AlgoKind, precision: Precision, seed: u64) -> Case {
        let mut rng = StdRng::seed_from_u64(seed);
        let (algo, warps) = match kind {
            AlgoKind::OneD => {
                let p = [2usize, 4][rng.gen_range(0..2usize)];
                (CaseAlgo::Dense(Algo::OneD), p)
            }
            AlgoKind::TwoD => (CaseAlgo::Dense(Algo::TwoD), 4),
            AlgoKind::ThreeD => (CaseAlgo::Dense(Algo::ThreeD), 8),
            AlgoKind::TwoHalfD => {
                let c = [1usize, 2][rng.gen_range(0..2usize)];
                (CaseAlgo::TwoHalfD { q: 2, c }, c * 4)
            }
        };
        // 2.5D has no scaled epilogue or sparse kernel: pin α/β there.
        let (alpha, beta) = if matches!(algo, CaseAlgo::TwoHalfD { .. }) {
            (1.0, 0.0)
        } else {
            let alphas = [1.0, -1.0, 0.5, 2.0, 0.0, -0.75];
            let betas = [0.0, 1.0, -1.0, 0.25, 3.0];
            (
                alphas[rng.gen_range(0..alphas.len())],
                betas[rng.gen_range(0..betas.len())],
            )
        };
        // Roughly a quarter of dense cases also exercise the sparse
        // kernels; sparse shapes are larger so block-grid divisibility
        // holds for every dense algorithm at once.
        let sparse = matches!(algo, CaseAlgo::Dense(_)) && rng.gen_range(0..4usize) == 0;
        let (m, n, k, sparsity) = if sparse {
            let densities = [0.125, 0.25, 0.5];
            (
                [64usize, 128][rng.gen_range(0..2usize)],
                [32usize, 64][rng.gen_range(0..2usize)],
                [64usize, 128][rng.gen_range(0..2usize)],
                Some(densities[rng.gen_range(0..densities.len())]),
            )
        } else {
            // Multiples of 16 divide every dense grid in the menu
            // (p ∈ {2,4}, √p = 2, ∛p = 2 with ∛p² = 4, cq ∈ {2,4}).
            let dim = |rng: &mut StdRng| 16 * rng.gen_range(1..=4usize);
            (dim(&mut rng), dim(&mut rng), dim(&mut rng), None)
        };
        Case {
            id: seed,
            device,
            algo,
            precision,
            m,
            n,
            k,
            warps,
            alpha,
            beta,
            sparsity,
            batch: rng.gen_range(1..=8usize),
            data_seed: rng.gen_range(0..u64::MAX),
        }
    }

    /// Divisibility quanta `(m, n, k)` shrink candidates must respect.
    pub fn quantum(&self) -> (usize, usize, usize) {
        if self.sparsity.is_some() {
            // Worst case over the dense algos in block units: 1D needs
            // p | m/16 and p | k/16 with p ≤ 4; 3D needs 4 | k/16.
            (64, 32, 64)
        } else {
            (16, 16, 16)
        }
    }

    /// One-line human identification.
    pub fn describe(&self) -> String {
        format!(
            "[{} {} {} {}x{}x{} p={} alpha={} beta={} sparsity={:?} batch={} seed={}]",
            self.device.label(),
            self.algo.label(),
            self.precision.label(),
            self.m,
            self.n,
            self.k,
            self.warps,
            self.alpha,
            self.beta,
            self.sparsity,
            self.batch,
            self.id,
        )
    }

    /// Render this case as a ready-to-paste regression test for the
    /// repo's `tests/` directory. `note` is embedded as a comment (the
    /// mismatch the case reproduced when it was shrunk).
    pub fn reproducer(&self, note: &str) -> String {
        let sparsity = match self.sparsity {
            Some(d) => format!("Some({d:?})"),
            None => "None".to_string(),
        };
        format!(
            "#[test]\n\
             fn kami_verify_repro_{device}_{id}() {{\n    \
                 // {note}\n    \
                 use kami::core::Algo;\n    \
                 use kami::sim::Precision;\n    \
                 use kami::verify::{{assert_case, Case, CaseAlgo, DeviceId, Harness}};\n    \
                 let case = Case {{\n        \
                     id: {id},\n        \
                     device: {device_expr},\n        \
                     algo: {algo},\n        \
                     precision: {prec},\n        \
                     m: {m},\n        \
                     n: {n},\n        \
                     k: {k},\n        \
                     warps: {warps},\n        \
                     alpha: {alpha:?},\n        \
                     beta: {beta:?},\n        \
                     sparsity: {sparsity},\n        \
                     batch: {batch},\n        \
                     data_seed: {data_seed},\n    \
                 }};\n    \
                 assert_case(&case, &Harness::default());\n\
             }}\n",
            device = self.device.label(),
            id = self.id,
            device_expr = self.device.render(),
            algo = self.algo.render(),
            prec = render_precision(self.precision),
            m = self.m,
            n = self.n,
            k = self.k,
            warps = self.warps,
            alpha = self.alpha,
            beta = self.beta,
            sparsity = sparsity,
            batch = self.batch,
            data_seed = self.data_seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 42);
        let b = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 42);
        assert_eq!(a, b);
        let c = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 43);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn generated_shapes_respect_divisibility() {
        for kind in AlgoKind::ALL {
            for seed in 0..200 {
                let c = Case::generate(DeviceId::Gh200, kind, Precision::Fp16, seed);
                let (qm, qn, qk) = c.quantum();
                assert_eq!(c.m % qm, 0, "{}", c.describe());
                assert_eq!(c.n % qn, 0, "{}", c.describe());
                assert_eq!(c.k % qk, 0, "{}", c.describe());
                match c.algo {
                    CaseAlgo::Dense(Algo::OneD) => {
                        assert_eq!(c.m % c.warps, 0);
                        assert_eq!(c.k % c.warps, 0);
                    }
                    CaseAlgo::Dense(Algo::TwoD) => assert_eq!(c.warps, 4),
                    CaseAlgo::Dense(Algo::ThreeD) => assert_eq!(c.warps, 8),
                    CaseAlgo::TwoHalfD { q, c: layers } => {
                        assert_eq!(c.warps, layers * q * q);
                        assert!(layers <= q);
                    }
                }
                if c.sparsity.is_some() {
                    assert!(matches!(c.algo, CaseAlgo::Dense(_)));
                }
            }
        }
    }

    #[test]
    fn reproducer_mentions_every_field() {
        let c = Case::generate(DeviceId::Rtx5090, AlgoKind::ThreeD, Precision::Tf32, 7);
        let r = c.reproducer("EngineVsModel: demo");
        assert!(r.contains("DeviceId::Rtx5090"));
        assert!(r.contains("Algo::ThreeD"));
        assert!(r.contains("Precision::Tf32"));
        assert!(r.contains("assert_case"));
        assert!(r.contains("EngineVsModel: demo"));
        assert!(r.contains(&format!("data_seed: {}", c.data_seed)));
    }
}
