//! The four cross-checks, run per [`Case`].
//!
//! Each check compares two *independent* implementations of the same
//! quantity, so a mismatch localizes a bug to the seam it crossed:
//!
//! | check            | left side (measured)            | right side (oracle)            |
//! |------------------|---------------------------------|--------------------------------|
//! | `Numerics`       | engine GEMM / 2.5D output       | exact-order CPU reference      |
//! | `EngineVsModel`  | engine per-phase cycle tallies  | Formulas 1–12 closed forms     |
//! | `SchedulerTrace` | scheduler report fields         | the per-SM trace it emitted    |
//! | `SparseVsDense`  | SpMM / SpGEMM kernels           | densified dense reference      |
//! | `ExecParity`     | split cost+execute passes       | legacy interleaved engine      |
//!
//! Tolerances: communication cycles must match the closed forms
//! *exactly* (within float noise, `1e-6·(1+theory)`) because the engine
//! and the model read the same `DeviceSpec` constants — any looser band
//! would have masked real bugs. Compute cycles get a bracket
//! `[theory, 8·theory + 128]` (padding to MMA granularity and
//! busiest-warp rounding only ever add cycles). Numerics use a
//! precision-derived relative Frobenius tolerance.

use crate::case::{Case, CaseAlgo, SPARSE_BLOCK};
use kami_core::model::cycles::{self, ModelParams};
use kami_core::{
    algo25d, gemm, gemm_cost, gemm_execute_plan, gemm_legacy, gemm_scaled, reference_gemm, Algo,
    KamiConfig, KamiError,
};
use kami_gpu_sim::{CostConfig, Matrix, Precision};
use kami_sched::{BlockWork, PlanCache, SchedError, Scheduler};
use kami_sparse::{random_block_sparse, reference_spmm, spgemm, spmm, BlockOrder};

/// Which seam a mismatch crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    Numerics,
    EngineVsModel,
    SchedulerTrace,
    SparseVsDense,
    /// Service-runtime replay vs the direct engine call (bit-identity
    /// and work conservation across coalesced ticks).
    Served,
    /// Split plan→cost→execute pipeline vs the legacy interleaved
    /// engine: bit-identical output, identical report, identical error.
    ExecParity,
    /// Fleet replay vs single-server vs direct engine call: per-request
    /// bit-identity across placements, ticket conservation, and cost
    /// coherence between same-class replicas.
    Fleet,
}

impl CheckKind {
    pub fn label(self) -> &'static str {
        match self {
            CheckKind::Numerics => "Numerics",
            CheckKind::EngineVsModel => "EngineVsModel",
            CheckKind::SchedulerTrace => "SchedulerTrace",
            CheckKind::SparseVsDense => "SparseVsDense",
            CheckKind::Served => "Served",
            CheckKind::ExecParity => "ExecParity",
            CheckKind::Fleet => "Fleet",
        }
    }
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A failed cross-check: which seam, and the measured-vs-expected story.
#[derive(Debug, Clone)]
pub struct Mismatch {
    pub kind: CheckKind,
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// A case that ran clean, or could not run on this cell at all
/// (register-infeasible or unsupported precision — not a bug).
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    Pass,
    Skip(String),
}

/// Knobs the harness threads through every engine invocation. The
/// `cost` override is the fault-injection hook: a perturbed
/// [`CostConfig`] (e.g. `theta_r: 0.5`) makes the engine disagree with
/// the clean closed forms, which the `EngineVsModel` check must catch —
/// that end-to-end property is itself under test in
/// `tests/verify_harness.rs`.
#[derive(Debug, Clone, Default)]
pub struct Harness {
    pub cost: Option<CostConfig>,
    /// Also replay each dense case through the `kami-serve` runtime and
    /// hold the served results to bit-identity with the direct call
    /// (the `Served` check). Off by default: it spins up a server per
    /// case, which sweeps usually don't want to pay.
    pub serve: bool,
}

impl Harness {
    pub(crate) fn dense_config(&self, case: &Case, algo: Algo) -> KamiConfig {
        let mut cfg = KamiConfig::new(algo, case.precision).with_warps(case.warps);
        if let Some(cost) = &self.cost {
            cfg = cfg.with_cost(cost.clone());
        }
        cfg
    }
}

/// Relative Frobenius tolerance for a `k`-deep product at `prec`:
/// store rounding at the input precision plus accumulated roundoff at
/// the accumulator precision.
fn numeric_tol(prec: Precision, k: usize) -> f64 {
    let u = prec.unit_roundoff();
    let u_acc = prec.accumulator().unit_roundoff();
    (32.0 * u + 8.0 * k as f64 * u_acc).max(1e-13)
}

/// ‖a − b‖_F (the matrices must be the same shape).
fn frob_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    let mut sum = 0.0;
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let d = a[(r, c)] - b[(r, c)];
            sum += d * d;
        }
    }
    sum.sqrt()
}

fn fail(kind: CheckKind, detail: String) -> Mismatch {
    Mismatch { kind, detail }
}

/// Classify an engine/scheduler error: infeasible-on-this-cell errors
/// become skips; anything else means the generator and the validator
/// disagree about what is runnable, which is itself a bug.
fn classify(kind: CheckKind, stage: &str, e: KamiError) -> Result<CaseOutcome, Mismatch> {
    match e {
        KamiError::Sim(sim) => Ok(CaseOutcome::Skip(format!("{stage}: {sim}"))),
        KamiError::Unsupported { detail } => Ok(CaseOutcome::Skip(format!("{stage}: {detail}"))),
        other => Err(fail(
            kind,
            format!("{stage} rejected a generated case: {other}"),
        )),
    }
}

/// Run every applicable cross-check on one case. `Err` is a genuine
/// mismatch; `Ok(Skip)` means the case is infeasible on this cell.
pub fn run_case(
    case: &Case,
    harness: &Harness,
    plans: &PlanCache,
) -> Result<CaseOutcome, Mismatch> {
    let device = case.device.spec();
    let a = Matrix::seeded_uniform(case.m, case.k, case.data_seed);
    let b = Matrix::seeded_uniform(case.k, case.n, case.data_seed.wrapping_add(1));
    let c0 = Matrix::seeded_uniform(case.m, case.n, case.data_seed.wrapping_add(2));

    match case.algo {
        CaseAlgo::Dense(algo) => {
            let cfg = harness.dense_config(case, algo);

            // Check 1: numerics of the full α·A·B + β·C epilogue.
            let res = match gemm_scaled(&device, &cfg, case.alpha, &a, &b, case.beta, &c0) {
                Ok(res) => res,
                Err(e) => return classify(CheckKind::Numerics, "gemm_scaled", e),
            };
            let reference = reference_gemm(&a, &b, case.precision);
            let c0q = c0.quantized(case.precision);
            let want = Matrix::from_fn(case.m, case.n, |r, c| {
                case.alpha * reference[(r, c)] + case.beta * c0q[(r, c)]
            });
            let scale = (case.alpha.abs() * reference.frobenius_norm()
                + case.beta.abs() * c0q.frobenius_norm())
            .max(1e-9);
            let err = frob_diff(&res.c, &want) / scale;
            let tol = numeric_tol(case.precision, case.k);
            if err > tol {
                return Err(fail(
                    CheckKind::Numerics,
                    format!(
                        "{} rel Frobenius error {err:.3e} > tol {tol:.3e} vs reference \
                         (alpha={}, beta={})",
                        algo.label(),
                        case.alpha,
                        case.beta
                    ),
                ));
            }

            // Check 2: engine cycle tallies vs Formulas 1–12, on the
            // plain product (no epilogue traffic in the closed forms).
            if let Some(prm) = ModelParams::from_device(&device, case.precision) {
                let res = match gemm(&device, &cfg, &a, &b) {
                    Ok(res) => res,
                    Err(e) => return classify(CheckKind::EngineVsModel, "gemm", e),
                };
                check_dense_model(case, algo, &prm, &res.report)?;
            }

            // Check: split-engine parity — the separated cost + execute
            // passes must be indistinguishable from the legacy
            // interleaved engine on the same inputs.
            check_exec_parity(case, &cfg, algo, &a, &b)?;
        }
        CaseAlgo::TwoHalfD { q, c } => {
            let mut cfg = algo25d::Kami25dConfig::new(q, c, case.precision);
            if let Some(cost) = &harness.cost {
                cfg.cost = cost.clone();
            }
            let res = match algo25d::gemm_25d(&device, &cfg, &a, &b) {
                Ok(res) => res,
                Err(e) => return classify(CheckKind::Numerics, "gemm_25d", e),
            };
            let reference = reference_gemm(&a, &b, case.precision);
            let err = frob_diff(&res.c, &reference) / reference.frobenius_norm().max(1e-9);
            let tol = numeric_tol(case.precision, case.k);
            if err > tol {
                return Err(fail(
                    CheckKind::Numerics,
                    format!("2.5D rel Frobenius error {err:.3e} > tol {tol:.3e} vs reference"),
                ));
            }
            // Communication matches the 2.5D closed form exactly (the
            // comm analogue of Formulas 4/8/12); compute gets the same
            // padding bracket as the dense algorithms.
            if let Some(prm) = ModelParams::from_device(&device, case.precision) {
                let theory = algo25d::t_comm_25d(case.m, case.n, case.k, q, c, &prm);
                let measured = res.report.totals.comm;
                if (measured - theory).abs() > 1e-6 * (1.0 + theory) {
                    return Err(fail(
                        CheckKind::EngineVsModel,
                        format!(
                            "2.5D(q={q},c={c}) total comm cycles {measured:.3} != closed \
                             form {theory:.3}"
                        ),
                    ));
                }
                let t_cp = cycles::t_all_compute(case.m, case.n, case.k, &prm);
                let measured = res.report.totals.compute;
                if measured < t_cp - 1e-6 || measured > t_cp * 8.0 + 128.0 {
                    return Err(fail(
                        CheckKind::EngineVsModel,
                        format!(
                            "2.5D(q={q},c={c}) compute cycles {measured:.3} outside \
                             [{t_cp:.3}, {:.3}]",
                            t_cp * 8.0 + 128.0
                        ),
                    ));
                }
            }
        }
    }

    // Check 3: scheduler report vs its own trace.
    check_scheduler(case, &device, plans)?;

    // Check 4: sparse kernels vs the densified dense path.
    if let (Some(density), CaseAlgo::Dense(algo)) = (case.sparsity, case.algo) {
        if let CaseOutcome::Skip(reason) = check_sparse(case, harness, algo, density, &b)? {
            return Ok(CaseOutcome::Skip(reason));
        }
    }

    // Check 5 (opt-in): served replay vs the direct call.
    if harness.serve {
        crate::served::check_served(case, harness)?;
    }

    Ok(CaseOutcome::Pass)
}

/// Engine totals and per-stage tallies vs the closed forms.
fn check_dense_model(
    case: &Case,
    algo: Algo,
    prm: &ModelParams,
    report: &kami_gpu_sim::ExecutionReport,
) -> Result<(), Mismatch> {
    let (m, n, k, p) = (case.m, case.n, case.k, case.warps);

    // Total communication: exact (Formulas 4/8/12).
    let theory = cycles::t_all_comm(algo, m, n, k, p, prm);
    let measured = report.totals.comm;
    if (measured - theory).abs() > 1e-6 * (1.0 + theory) {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "{} total comm cycles {measured:.3} != closed form {theory:.3} \
                 (Formulas 4/8/12)",
                algo.label()
            ),
        ));
    }

    // Per-stage communication: exact (Formulas 2/6/10).
    let stages = algo
        .stages(p)
        .map_err(|e| fail(CheckKind::EngineVsModel, format!("stages({p}): {e}")))?;
    let per_stage = report.comm_stage_cycles();
    if per_stage.len() != stages {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "{} emitted {} comm stages, model says {stages}",
                algo.label(),
                per_stage.len()
            ),
        ));
    }
    let t_cm = cycles::t_cm_per_stage(algo, m, n, k, p, prm);
    for (i, &s) in per_stage.iter().enumerate() {
        if (s - t_cm).abs() > 1e-6 * (1.0 + t_cm) {
            return Err(fail(
                CheckKind::EngineVsModel,
                format!(
                    "{} stage {i} comm cycles {s:.3} != per-stage closed form {t_cm:.3} \
                     (Formulas 2/6/10)",
                    algo.label()
                ),
            ));
        }
    }

    // Compute: bracketed (padding and busiest-warp effects only add).
    let t_cp = cycles::t_all_compute(m, n, k, prm);
    let measured = report.totals.compute;
    if measured < t_cp - 1e-6 || measured > t_cp * 8.0 + 128.0 {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "{} compute cycles {measured:.3} outside [{t_cp:.3}, {:.3}]",
                algo.label(),
                t_cp * 8.0 + 128.0
            ),
        ));
    }
    Ok(())
}

/// Split-engine parity: `gemm_cost` + `gemm_execute_plan` (the plan →
/// cost → execute pipeline, with its rayon fast-path executor) against
/// `gemm_legacy` (the interleaved engine). Output bits, the full
/// report, and any error must all be identical — zero tolerance, since
/// the refactor promises bit-exactness including accumulation order.
fn check_exec_parity(
    case: &Case,
    cfg: &KamiConfig,
    algo: Algo,
    a: &Matrix,
    b: &Matrix,
) -> Result<(), Mismatch> {
    let device = case.device.spec();
    let legacy = gemm_legacy(&device, cfg, a, b);
    let split = gemm_cost(&device, cfg, case.m, case.n, case.k)
        .and_then(|plan| gemm_execute_plan(&device, &plan, a, b));
    match (legacy, split) {
        (Ok(l), Ok(s)) => {
            let diff = s.c.max_abs_diff(&l.c);
            if diff != 0.0 {
                return Err(fail(
                    CheckKind::ExecParity,
                    format!(
                        "{} split-engine output differs from legacy by {diff:.3e} \
                         (must be bit-identical)",
                        algo.label()
                    ),
                ));
            }
            let l_rep = serde_json::to_string(&l.report).unwrap_or_default();
            let s_rep = serde_json::to_string(&s.report).unwrap_or_default();
            if l_rep != s_rep {
                return Err(fail(
                    CheckKind::ExecParity,
                    format!(
                        "{} cost-pass report diverges from the legacy run",
                        algo.label()
                    ),
                ));
            }
            Ok(())
        }
        (Err(le), Err(se)) => {
            if format!("{le:?}") != format!("{se:?}") {
                return Err(fail(
                    CheckKind::ExecParity,
                    format!("{} legacy error `{le}` != split error `{se}`", algo.label()),
                ));
            }
            Ok(())
        }
        (Ok(_), Err(e)) => Err(fail(
            CheckKind::ExecParity,
            format!(
                "{} legacy engine ran but split engine failed: {e}",
                algo.label()
            ),
        )),
        (Err(e), Ok(_)) => Err(fail(
            CheckKind::ExecParity,
            format!(
                "{} split engine ran but legacy engine failed: {e}",
                algo.label()
            ),
        )),
    }
}

/// Scheduler self-consistency: the report's aggregate claims must be
/// re-derivable from the per-SM trace it hands back.
fn check_scheduler(
    case: &Case,
    device: &kami_gpu_sim::DeviceSpec,
    plans: &PlanCache,
) -> Result<(), Mismatch> {
    let work = BlockWork::uniform(case.m, case.n, case.k, case.precision, case.batch);
    let (report, trace) = match Scheduler::new(device).run_traced(&work, plans) {
        Ok(out) => out,
        Err(SchedError::Core(KamiError::Sim(_)))
        | Err(SchedError::Core(KamiError::Unsupported { .. }))
        | Err(SchedError::SingleStageStreamK { .. }) => return Ok(()),
        Err(e) => {
            return Err(fail(
                CheckKind::SchedulerTrace,
                format!("scheduler rejected a generated case: {e}"),
            ))
        }
    };

    if report.total_blocks != case.batch {
        return Err(fail(
            CheckKind::SchedulerTrace,
            format!(
                "scheduled {} blocks for a batch of {}",
                report.total_blocks, case.batch
            ),
        ));
    }
    let makespan = report.makespan_cycles;
    let traced = trace.total_cycles();
    if (traced - makespan).abs() > 1e-6 * (1.0 + makespan) {
        return Err(fail(
            CheckKind::SchedulerTrace,
            format!("trace spans {traced:.3} cycles, report claims makespan {makespan:.3}"),
        ));
    }
    if report.utilization > 1.0 + 1e-9 {
        return Err(fail(
            CheckKind::SchedulerTrace,
            format!("utilization {} > 1", report.utilization),
        ));
    }
    let iters: usize = report.per_sm.iter().map(|s| s.k_iters).sum();
    let expect = report.total_blocks * report.k_stages;
    if iters != expect {
        return Err(fail(
            CheckKind::SchedulerTrace,
            format!(
                "k-iteration conservation broken: per-SM sum {iters} != blocks x k_stages {expect}"
            ),
        ));
    }
    for sm in &report.per_sm {
        let mut events: Vec<_> = trace.warp_events(sm.sm).collect();
        events.sort_by(|x, y| x.start.total_cmp(&y.start));
        let mut cursor = 0.0f64;
        let mut busy = 0.0f64;
        for e in &events {
            if e.start < cursor - 1e-6 {
                return Err(fail(
                    CheckKind::SchedulerTrace,
                    format!(
                        "SM {} events overlap: start {:.3} before previous end {cursor:.3}",
                        sm.sm, e.start
                    ),
                ));
            }
            cursor = e.start + e.duration;
            busy += e.duration;
        }
        if (busy - sm.busy_cycles).abs() > 1e-6 * (1.0 + sm.busy_cycles) {
            return Err(fail(
                CheckKind::SchedulerTrace,
                format!(
                    "SM {} trace durations sum to {busy:.3}, report claims busy {:.3}",
                    sm.sm, sm.busy_cycles
                ),
            ));
        }
    }
    Ok(())
}

/// SpMM and SpGEMM against the densified dense reference.
fn check_sparse(
    case: &Case,
    harness: &Harness,
    algo: Algo,
    density: f64,
    b_dense: &Matrix,
) -> Result<CaseOutcome, Mismatch> {
    let device = case.device.spec();
    let cfg = harness.dense_config(case, algo);
    let order = if case.data_seed & 1 == 0 {
        BlockOrder::RowMajor
    } else {
        BlockOrder::ZMorton
    };
    let tol = 2.0 * numeric_tol(case.precision, case.k);

    let a_sp = random_block_sparse(
        case.m,
        case.k,
        SPARSE_BLOCK,
        density,
        order,
        case.data_seed.wrapping_add(7),
    );
    let res = match spmm(&device, &cfg, &a_sp, b_dense) {
        Ok(res) => res,
        Err(e) => return classify(CheckKind::SparseVsDense, "spmm", e),
    };
    let want = reference_spmm(&a_sp, b_dense, case.precision);
    let err = frob_diff(&res.c, &want) / want.frobenius_norm().max(1e-9);
    if err > tol {
        return Err(fail(
            CheckKind::SparseVsDense,
            format!(
                "{} SpMM rel Frobenius error {err:.3e} > tol {tol:.3e} vs densified dense \
                 (density {density})",
                algo.label()
            ),
        ));
    }

    let b_sp = random_block_sparse(
        case.k,
        case.n,
        SPARSE_BLOCK,
        density,
        order,
        case.data_seed.wrapping_add(11),
    );
    let res = match spgemm(&device, &cfg, &a_sp, &b_sp) {
        Ok(res) => res,
        Err(e) => return classify(CheckKind::SparseVsDense, "spgemm", e),
    };
    let want = reference_gemm(&a_sp.to_dense(), &b_sp.to_dense(), case.precision);
    let err = frob_diff(&res.c.to_dense(), &want) / want.frobenius_norm().max(1e-9);
    if err > tol {
        return Err(fail(
            CheckKind::SparseVsDense,
            format!(
                "{} SpGEMM rel Frobenius error {err:.3e} > tol {tol:.3e} vs densified dense \
                 (density {density})",
                algo.label()
            ),
        ));
    }
    Ok(CaseOutcome::Pass)
}

/// Regression-test entry point the shrinker's reproducers call: panics
/// with the mismatch (or the skip reason — a reproducer that cannot run
/// proves nothing, so that is loud too).
pub fn assert_case(case: &Case, harness: &Harness) {
    let plans = PlanCache::new();
    match run_case(case, harness, &plans) {
        Ok(CaseOutcome::Pass) => {}
        Ok(CaseOutcome::Skip(reason)) => {
            panic!("reproducer case {} skipped: {reason}", case.describe())
        }
        Err(m) => panic!("case {} failed {m}", case.describe()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{AlgoKind, DeviceId};

    #[test]
    fn clean_engine_passes_one_case_per_algo() {
        let plans = PlanCache::new();
        let harness = Harness::default();
        for kind in AlgoKind::ALL {
            let case = Case::generate(DeviceId::Gh200, kind, Precision::Fp16, 5);
            let out = run_case(&case, &harness, &plans);
            assert!(
                matches!(out, Ok(CaseOutcome::Pass)),
                "{}: {:?}",
                case.describe(),
                out.err()
            );
        }
    }

    #[test]
    fn injected_theta_breaks_engine_vs_model() {
        let plans = PlanCache::new();
        let harness = Harness {
            cost: Some(CostConfig {
                theta_r: 0.5,
                ..CostConfig::default()
            }),
            ..Harness::default()
        };
        let case = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 5);
        let err = run_case(&case, &harness, &plans).expect_err("perturbed engine must mismatch");
        assert_eq!(err.kind, CheckKind::EngineVsModel, "{err}");
    }
}
