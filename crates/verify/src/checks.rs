//! The four cross-checks, run per [`Case`].
//!
//! Each check compares two *independent* implementations of the same
//! quantity, so a mismatch localizes a bug to the seam it crossed:
//!
//! | check            | left side (measured)            | right side (oracle)            |
//! |------------------|---------------------------------|--------------------------------|
//! | `Numerics`       | engine GEMM / 2.5D output       | exact-order CPU reference      |
//! | `EngineVsModel`  | engine per-phase cycle tallies  | Formulas 1–12 closed forms     |
//! | `SchedulerTrace` | scheduler report fields         | the per-SM trace it emitted    |
//! | `SparseVsDense`  | SpMM / SpGEMM kernels           | densified dense reference      |
//! | `ExecParity`     | split cost+execute passes       | legacy interleaved engine      |
//!
//! Tolerances: communication cycles must match the closed forms
//! *exactly* (within float noise, `1e-6·(1+theory)`) because the engine
//! and the model read the same `DeviceSpec` constants — any looser band
//! would have masked real bugs. Compute cycles get a bracket
//! `[theory, 8·theory·pad + 128]` where `pad` is the padding inflation
//! of one per-warp fragment at the device's native MMA shape (1 for
//! instruction-filling shapes; padding and busiest-warp rounding only
//! ever add cycles). Numerics use a precision-derived relative
//! Frobenius tolerance.

use crate::case::{Case, CaseAlgo, EpilogueKind, SPARSE_BLOCK};
use kami_core::model::cycles::{self, ModelParams};
use kami_core::model::{epilogue as epilogue_model, skinny};
use kami_core::tallskinny::chunk_count;
use kami_core::{
    algo25d, combine_partials, gemm, gemm_cost, gemm_execute_plan_with, gemm_fused,
    gemm_fused_legacy, gemm_legacy, gemm_padded, gemm_scaled, gemm_skinny, gemm_t, reference_gemm,
    Algo, Epilogue, GemmRequest, KamiConfig, KamiError, MatOp, Op, SKINNY_CHUNK_K,
};
use kami_gpu_sim::{BackendKind, CostConfig, CostMode, Matrix, Precision};
use kami_sched::{BlockWork, PlanCache, SchedError, Scheduler};
use kami_sparse::{random_block_sparse, reference_spmm, spgemm, spmm, BlockOrder};

/// Which seam a mismatch crossed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    Numerics,
    EngineVsModel,
    SchedulerTrace,
    SparseVsDense,
    /// Service-runtime replay vs the direct engine call (bit-identity
    /// and work conservation across coalesced ticks).
    Served,
    /// Split plan→cost→execute pipeline vs the legacy interleaved
    /// engine: bit-identical output, identical report, identical error.
    ExecParity,
    /// Fleet replay vs single-server vs direct engine call: per-request
    /// bit-identity across placements, ticket conservation, and cost
    /// coherence between same-class replicas.
    Fleet,
    /// Feedback-enabled replay on a mis-modeled server vs the direct
    /// engine call: the observation channel may re-rank plans and
    /// correct makespans, but payloads must stay bit-identical.
    Feedback,
}

impl CheckKind {
    pub fn label(self) -> &'static str {
        match self {
            CheckKind::Numerics => "Numerics",
            CheckKind::EngineVsModel => "EngineVsModel",
            CheckKind::SchedulerTrace => "SchedulerTrace",
            CheckKind::SparseVsDense => "SparseVsDense",
            CheckKind::Served => "Served",
            CheckKind::ExecParity => "ExecParity",
            CheckKind::Fleet => "Fleet",
            CheckKind::Feedback => "Feedback",
        }
    }
}

impl std::fmt::Display for CheckKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A failed cross-check: which seam, and the measured-vs-expected story.
#[derive(Debug, Clone)]
pub struct Mismatch {
    pub kind: CheckKind,
    pub detail: String,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// A case that ran clean, or could not run on this cell at all
/// (register-infeasible or unsupported precision — not a bug).
#[derive(Debug, Clone)]
pub enum CaseOutcome {
    Pass,
    Skip(String),
}

/// Knobs the harness threads through every engine invocation. The
/// `cost` override is the fault-injection hook: a perturbed
/// [`CostConfig`] (e.g. `theta_r: 0.5`) makes the engine disagree with
/// the clean closed forms, which the `EngineVsModel` check must catch —
/// that end-to-end property is itself under test in
/// `tests/verify_harness.rs`.
#[derive(Debug, Clone, Default)]
pub struct Harness {
    pub cost: Option<CostConfig>,
    /// Also replay each dense case through the `kami-serve` runtime and
    /// hold the served results to bit-identity with the direct call
    /// (the `Served` check). Off by default: it spins up a server per
    /// case, which sweeps usually don't want to pay.
    pub serve: bool,
    /// Also replay each dense case through a server whose cache has
    /// the feedback channel *on* and whose execution is deliberately
    /// mis-modeled (`true_cost` slower than the model), then hold the
    /// payloads to bit-identity anyway (the `Feedback` check). Proves
    /// observation-driven re-ranking is schedule-only. Off by default
    /// for the same reason as `serve`.
    pub feedback: bool,
}

impl Harness {
    pub(crate) fn dense_config(&self, case: &Case, algo: Algo) -> KamiConfig {
        let mut cfg = KamiConfig::new(algo, case.precision).with_warps(case.warps);
        if let Some(cost) = &self.cost {
            cfg = cfg.with_cost(cost.clone());
        }
        cfg
    }
}

/// Relative Frobenius tolerance for a `k`-deep product at `prec`:
/// store rounding at the input precision plus accumulated roundoff at
/// the accumulator precision.
fn numeric_tol(prec: Precision, k: usize) -> f64 {
    let u = prec.unit_roundoff();
    let u_acc = prec.accumulator().unit_roundoff();
    (32.0 * u + 8.0 * k as f64 * u_acc).max(1e-13)
}

/// ‖a − b‖_F (the matrices must be the same shape).
fn frob_diff(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    let mut sum = 0.0;
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            let d = a[(r, c)] - b[(r, c)];
            sum += d * d;
        }
    }
    sum.sqrt()
}

fn fail(kind: CheckKind, detail: String) -> Mismatch {
    Mismatch { kind, detail }
}

/// Classify an engine/scheduler error: infeasible-on-this-cell errors
/// become skips; anything else means the generator and the validator
/// disagree about what is runnable, which is itself a bug.
fn classify(kind: CheckKind, stage: &str, e: KamiError) -> Result<CaseOutcome, Mismatch> {
    match e {
        KamiError::Sim(sim) => Ok(CaseOutcome::Skip(format!("{stage}: {sim}"))),
        KamiError::Unsupported { detail } => Ok(CaseOutcome::Skip(format!("{stage}: {detail}"))),
        other => Err(fail(
            kind,
            format!("{stage} rejected a generated case: {other}"),
        )),
    }
}

/// Run every applicable cross-check on one case. `Err` is a genuine
/// mismatch; `Ok(Skip)` means the case is infeasible on this cell.
pub fn run_case(
    case: &Case,
    harness: &Harness,
    plans: &PlanCache,
) -> Result<CaseOutcome, Mismatch> {
    let device = case.device.spec();
    let a = Matrix::seeded_uniform(case.m, case.k, case.data_seed);
    let b = Matrix::seeded_uniform(case.k, case.n, case.data_seed.wrapping_add(1));
    let c0 = Matrix::seeded_uniform(case.m, case.n, case.data_seed.wrapping_add(2));

    match case.algo {
        CaseAlgo::Dense(algo) => {
            let cfg = harness.dense_config(case, algo);

            // Check 1: numerics of the full α·A·B + β·C epilogue.
            let res = match gemm_scaled(&device, &cfg, case.alpha, &a, &b, case.beta, &c0) {
                Ok(res) => res,
                Err(e) => return classify(CheckKind::Numerics, "gemm_scaled", e),
            };
            let reference = reference_gemm(&a, &b, case.precision);
            let c0q = c0.quantized(case.precision);
            let want = Matrix::from_fn(case.m, case.n, |r, c| {
                case.alpha * reference[(r, c)] + case.beta * c0q[(r, c)]
            });
            let scale = (case.alpha.abs() * reference.frobenius_norm()
                + case.beta.abs() * c0q.frobenius_norm())
            .max(1e-9);
            let err = frob_diff(&res.c, &want) / scale;
            let tol = numeric_tol(case.precision, case.k);
            if err > tol {
                return Err(fail(
                    CheckKind::Numerics,
                    format!(
                        "{} rel Frobenius error {err:.3e} > tol {tol:.3e} vs reference \
                         (alpha={}, beta={})",
                        algo.label(),
                        case.alpha,
                        case.beta
                    ),
                ));
            }

            // Check 2: engine cycle tallies vs Formulas 1–12, on the
            // plain product (no epilogue traffic in the closed forms).
            if let Some(prm) = ModelParams::from_device(&device, case.precision) {
                let res = match gemm(&device, &cfg, &a, &b) {
                    Ok(res) => res,
                    Err(e) => return classify(CheckKind::EngineVsModel, "gemm", e),
                };
                check_dense_model(case, &device, algo, &prm, &res.report)?;
            }

            // Check: split-engine parity — the separated cost + execute
            // passes must be indistinguishable from the legacy
            // interleaved engine on the same inputs.
            check_exec_parity(case, &cfg, algo, &a, &b)?;

            // Check: the fused-epilogue plane — unfused-reference
            // numerics, exact closed-form cost deltas, and the fused
            // engine's own split-vs-legacy parity.
            if let Some(kind) = case.epilogue {
                if let CaseOutcome::Skip(reason) = check_epilogue(case, &cfg, algo, kind, &a, &b)? {
                    return Ok(CaseOutcome::Skip(reason));
                }
            }
        }
        CaseAlgo::Skinny { algo, wide } => {
            let cfg = harness.dense_config(case, algo);
            if let CaseOutcome::Skip(reason) = check_skinny(case, &cfg, wide, &a, &b)? {
                return Ok(CaseOutcome::Skip(reason));
            }
        }
        CaseAlgo::TwoHalfD { q, c } => {
            let mut cfg = algo25d::Kami25dConfig::new(q, c, case.precision);
            if let Some(cost) = &harness.cost {
                cfg.cost = cost.clone();
            }
            let res = match algo25d::gemm_25d(&device, &cfg, &a, &b) {
                Ok(res) => res,
                Err(e) => return classify(CheckKind::Numerics, "gemm_25d", e),
            };
            let reference = reference_gemm(&a, &b, case.precision);
            let err = frob_diff(&res.c, &reference) / reference.frobenius_norm().max(1e-9);
            let tol = numeric_tol(case.precision, case.k);
            if err > tol {
                return Err(fail(
                    CheckKind::Numerics,
                    format!("2.5D rel Frobenius error {err:.3e} > tol {tol:.3e} vs reference"),
                ));
            }
            // Communication matches the 2.5D closed form exactly (the
            // comm analogue of Formulas 4/8/12); compute gets the same
            // padding bracket as the dense algorithms.
            if let Some(prm) = ModelParams::from_device(&device, case.precision) {
                let theory = algo25d::t_comm_25d(case.m, case.n, case.k, q, c, &prm);
                let measured = res.report.totals.comm;
                if (measured - theory).abs() > 1e-6 * (1.0 + theory) {
                    return Err(fail(
                        CheckKind::EngineVsModel,
                        format!(
                            "2.5D(q={q},c={c}) total comm cycles {measured:.3} != closed \
                             form {theory:.3}"
                        ),
                    ));
                }
                let t_cp = cycles::t_all_compute(case.m, case.n, case.k, &prm);
                // Padding-aware upper bound: each of the q²·c warps runs
                // q MMAs over its (m/q × n/q × k/(c·q)) fragment, and the
                // engine charges each one padded to the device's native
                // MMA shape — so at sub-native fragments (e.g. 16³ with
                // q=c=2 on Intel's m16n16k16) the inflation legitimately
                // exceeds the dense algorithms' fixed 8× bracket.
                let (mi, ni, ks) = (case.m / q, case.n / q, case.k / (c * q));
                let padded = match kami_gpu_sim::shape_for(&device, case.precision) {
                    Some(shape) => {
                        (q * q * c * q) as f64 * shape.padded_flops(mi, ni, ks) as f64
                            / (prm.n_tc * prm.o_tc)
                    }
                    None => t_cp * 8.0,
                };
                let measured = res.report.totals.compute;
                if measured < t_cp - 1e-6 || measured > padded + 128.0 {
                    return Err(fail(
                        CheckKind::EngineVsModel,
                        format!(
                            "2.5D(q={q},c={c}) compute cycles {measured:.3} outside \
                             [{t_cp:.3}, {:.3}]",
                            padded + 128.0
                        ),
                    ));
                }
            }
        }
    }

    // Check 3: scheduler report vs its own trace.
    check_scheduler(case, &device, plans)?;

    // Check 4: sparse kernels vs the densified dense path.
    if let (Some(density), CaseAlgo::Dense(algo)) = (case.sparsity, case.algo) {
        if let CaseOutcome::Skip(reason) = check_sparse(case, harness, algo, density, &b)? {
            return Ok(CaseOutcome::Skip(reason));
        }
    }

    // Check 5 (opt-in): served replay vs the direct call.
    if harness.serve {
        crate::served::check_served(case, harness)?;
    }

    // Check 6 (opt-in): feedback-enabled replay on a mis-modeled
    // server — corrections may fire, payloads must not move.
    if harness.feedback {
        crate::served::check_feedback(case, harness)?;
    }

    Ok(CaseOutcome::Pass)
}

/// Engine totals and per-stage tallies vs the closed forms.
fn check_dense_model(
    case: &Case,
    device: &kami_gpu_sim::DeviceSpec,
    algo: Algo,
    prm: &ModelParams,
    report: &kami_gpu_sim::ExecutionReport,
) -> Result<(), Mismatch> {
    let (m, n, k, p) = (case.m, case.n, case.k, case.warps);

    // Total communication: exact (Formulas 4/8/12).
    let theory = cycles::t_all_comm(algo, m, n, k, p, prm);
    let measured = report.totals.comm;
    if (measured - theory).abs() > 1e-6 * (1.0 + theory) {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "{} total comm cycles {measured:.3} != closed form {theory:.3} \
                 (Formulas 4/8/12)",
                algo.label()
            ),
        ));
    }

    // Per-stage communication: exact (Formulas 2/6/10).
    let stages = algo
        .stages(p)
        .map_err(|e| fail(CheckKind::EngineVsModel, format!("stages({p}): {e}")))?;
    let per_stage = report.comm_stage_cycles();
    if per_stage.len() != stages {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "{} emitted {} comm stages, model says {stages}",
                algo.label(),
                per_stage.len()
            ),
        ));
    }
    let t_cm = cycles::t_cm_per_stage(algo, m, n, k, p, prm);
    for (i, &s) in per_stage.iter().enumerate() {
        if (s - t_cm).abs() > 1e-6 * (1.0 + t_cm) {
            return Err(fail(
                CheckKind::EngineVsModel,
                format!(
                    "{} stage {i} comm cycles {s:.3} != per-stage closed form {t_cm:.3} \
                     (Formulas 2/6/10)",
                    algo.label()
                ),
            ));
        }
    }

    // Compute: bracketed (padding and busiest-warp effects only add).
    // The upper bound scales by the padding inflation of one per-warp
    // per-stage fragment at the device's native MMA shape — 1 for
    // shapes that fill the instruction, but e.g. a (4 × 48 × 4)
    // 1D fragment on a m16n16k16 device legitimately charges 16× the
    // useful flops, well past the plain 8× slack.
    let t_cp = cycles::t_all_compute(m, n, k, prm);
    let (mf, nf, kf) = match algo {
        Algo::OneD => (m / p, n, k / p),
        Algo::TwoD => {
            let q = (p as f64).sqrt().round() as usize;
            (m / q, n / q, k / q)
        }
        Algo::ThreeD => {
            let q = (p as f64).cbrt().round() as usize;
            (m / q, n / q, k / (q * q))
        }
    };
    let inflation = match kami_gpu_sim::shape_for(device, case.precision) {
        Some(shape) if mf > 0 && nf > 0 && kf > 0 => {
            shape.padded_flops(mf, nf, kf) as f64 / (2.0 * (mf * nf * kf) as f64)
        }
        _ => 1.0,
    };
    let upper = t_cp * 8.0 * inflation.max(1.0) + 128.0;
    let measured = report.totals.compute;
    if measured < t_cp - 1e-6 || measured > upper {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "{} compute cycles {measured:.3} outside [{t_cp:.3}, {upper:.3}]",
                algo.label()
            ),
        ));
    }
    Ok(())
}

/// Split-engine parity: `gemm_cost` + `gemm_execute_plan_with` (the
/// plan → cost → execute pipeline) against `gemm_legacy` (the
/// interleaved engine), for **every** [`BackendKind`]. Output bits, the
/// full report, and any error must all be identical — zero tolerance,
/// since the backend seam promises bit-exactness including accumulation
/// order.
fn check_exec_parity(
    case: &Case,
    cfg: &KamiConfig,
    algo: Algo,
    a: &Matrix,
    b: &Matrix,
) -> Result<(), Mismatch> {
    let device = case.device.spec();
    let legacy = gemm_legacy(&device, cfg, a, b);
    for backend in BackendKind::ALL {
        let split = gemm_cost(&device, cfg, case.m, case.n, case.k)
            .and_then(|plan| gemm_execute_plan_with(&device, &plan, a, b, backend));
        match (&legacy, &split) {
            (Ok(l), Ok(s)) => {
                let diff = s.c.max_abs_diff(&l.c);
                if diff != 0.0 {
                    return Err(fail(
                        CheckKind::ExecParity,
                        format!(
                            "{} split-engine ({backend}) output differs from legacy by {diff:.3e} \
                             (must be bit-identical)",
                            algo.label()
                        ),
                    ));
                }
                let l_rep = serde_json::to_string(&l.report).unwrap_or_default();
                let s_rep = serde_json::to_string(&s.report).unwrap_or_default();
                if l_rep != s_rep {
                    return Err(fail(
                        CheckKind::ExecParity,
                        format!(
                            "{} cost-pass report ({backend}) diverges from the legacy run",
                            algo.label()
                        ),
                    ));
                }
            }
            (Err(le), Err(se)) => {
                if format!("{le:?}") != format!("{se:?}") {
                    return Err(fail(
                        CheckKind::ExecParity,
                        format!(
                            "{} legacy error `{le}` != split ({backend}) error `{se}`",
                            algo.label()
                        ),
                    ));
                }
            }
            (Ok(_), Err(e)) => {
                return Err(fail(
                    CheckKind::ExecParity,
                    format!(
                        "{} legacy engine ran but split engine ({backend}) failed: {e}",
                        algo.label()
                    ),
                ))
            }
            (Err(e), Ok(_)) => {
                return Err(fail(
                    CheckKind::ExecParity,
                    format!(
                        "{} split engine ({backend}) ran but legacy engine failed: {e}",
                        algo.label()
                    ),
                ))
            }
        }
    }
    Ok(())
}

/// The fused-epilogue plane, three seams at once:
///
/// * **Numerics** — `gemm_fused` vs the plain product plus
///   [`Epilogue::apply_reference`]: bias/ReLU bit-identical, GELU and
///   softmax-scale within the precision-derived Frobenius tolerance.
/// * **EngineVsModel** — the fused-minus-plain report deltas vs the
///   `model::epilogue` closed forms: extra gmem read bytes always
///   exact, the cycle delta exact under [`CostMode::Serial`] (the
///   `Overlap` max() can legitimately swallow the surcharge).
/// * **ExecParity** — `gemm_fused_legacy` (interleaved engine) vs the
///   split fused path: identical bits, identical report.
fn check_epilogue(
    case: &Case,
    cfg: &KamiConfig,
    algo: Algo,
    kind: EpilogueKind,
    a: &Matrix,
    b: &Matrix,
) -> Result<CaseOutcome, Mismatch> {
    let device = case.device.spec();
    let c_prec = kami_core::gemm::c_precision(case.precision);
    let epi = kind.build(case.n, case.data_seed);
    let fused = match gemm_fused(&device, cfg, a, b, &epi) {
        Ok(res) => res,
        // 2D softmax-scale (partial-row tiles) and register-infeasible
        // fused kernels skip through the histogram, never silently.
        Err(e) => return classify(CheckKind::Numerics, "gemm_fused", e),
    };
    let plain = match gemm(&device, cfg, a, b) {
        Ok(res) => res,
        Err(e) => return classify(CheckKind::Numerics, "gemm (plain twin)", e),
    };
    let mut want = plain.c.clone();
    epi.apply_reference(&mut want, c_prec);
    match kind {
        EpilogueKind::Bias | EpilogueKind::Relu => {
            let diff = fused.c.max_abs_diff(&want);
            if diff != 0.0 {
                return Err(fail(
                    CheckKind::Numerics,
                    format!(
                        "{} fused {} differs from plain + reference epilogue by {diff:.3e} \
                         (must be bit-identical)",
                        algo.label(),
                        kind.label()
                    ),
                ));
            }
        }
        EpilogueKind::Gelu | EpilogueKind::SoftmaxScale => {
            let err = frob_diff(&fused.c, &want) / want.frobenius_norm().max(1e-9);
            let tol = numeric_tol(case.precision, case.k);
            if err > tol {
                return Err(fail(
                    CheckKind::Numerics,
                    format!(
                        "{} fused {} rel Frobenius error {err:.3e} > tol {tol:.3e} vs plain + \
                         reference epilogue",
                        algo.label(),
                        kind.label()
                    ),
                ));
            }
        }
    }

    let is_bias = kind == EpilogueKind::Bias;
    let (want_bytes, want_delta) = match (
        epilogue_model::epilogue_gmem_read_bytes(algo, case.n, case.warps, c_prec, is_bias),
        epilogue_model::epilogue_delta_cycles(&device, algo, case.n, case.warps, c_prec, is_bias),
    ) {
        (Some(bytes), Some(delta)) => (bytes, delta),
        _ => {
            return Err(fail(
                CheckKind::EngineVsModel,
                format!(
                    "{} ran a fused {} epilogue the closed forms call unsupported (p = {})",
                    algo.label(),
                    kind.label(),
                    case.warps
                ),
            ))
        }
    };
    let got_bytes = fused.report.gmem_bytes_read as i64 - plain.report.gmem_bytes_read as i64;
    if got_bytes != want_bytes as i64 {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "{} fused {} reads {got_bytes} extra gmem bytes, closed form says {want_bytes}",
                algo.label(),
                kind.label()
            ),
        ));
    }
    if cfg.cost.mode == CostMode::Serial {
        let got_delta = fused.report.cycles - plain.report.cycles;
        if (got_delta - want_delta).abs() > 1e-6 * (1.0 + want_delta) {
            return Err(fail(
                CheckKind::EngineVsModel,
                format!(
                    "{} fused {} cycle delta {got_delta:.3} != closed form {want_delta:.3}",
                    algo.label(),
                    kind.label()
                ),
            ));
        }
    }

    match gemm_fused_legacy(&device, cfg, a, b, &epi) {
        Ok(legacy) => {
            // Every backend's fused split run must reproduce the legacy
            // twin; the default-backend run is already in hand.
            for backend in BackendKind::ALL {
                let split = if backend == cfg.backend {
                    Ok(fused.clone())
                } else {
                    gemm_fused(&device, &cfg.clone().with_backend(backend), a, b, &epi)
                };
                let split = match split {
                    Ok(s) => s,
                    Err(e) => {
                        return Err(fail(
                            CheckKind::ExecParity,
                            format!(
                                "{} fused split engine ({backend}) failed where legacy ran: {e}",
                                algo.label()
                            ),
                        ))
                    }
                };
                let diff = split.c.max_abs_diff(&legacy.c);
                if diff != 0.0 {
                    return Err(fail(
                        CheckKind::ExecParity,
                        format!(
                            "{} fused {} split ({backend}) output differs from legacy by \
                             {diff:.3e} (must be bit-identical)",
                            algo.label(),
                            kind.label()
                        ),
                    ));
                }
                let l_rep = serde_json::to_string(&legacy.report).unwrap_or_default();
                let s_rep = serde_json::to_string(&split.report).unwrap_or_default();
                if l_rep != s_rep {
                    return Err(fail(
                        CheckKind::ExecParity,
                        format!(
                            "{} fused {} split ({backend}) report diverges from the legacy run",
                            algo.label(),
                            kind.label()
                        ),
                    ));
                }
            }
        }
        Err(e) => {
            return Err(fail(
                CheckKind::ExecParity,
                format!(
                    "{} fused split engine ran but the legacy twin failed: {e}",
                    algo.label()
                ),
            ))
        }
    }
    Ok(CaseOutcome::Pass)
}

/// The tall-skinny k-split path, held to its documented contract:
///
/// * **Numerics** — `gemm_skinny` vs a hand-recomposed oracle (chunk
///   `i` covers A columns `[i·CK, (i+1)·CK)`, partials merge as the
///   pairwise tree, the epilogue applies as the unfused reference):
///   bit-identical. Plain cases additionally hold to the exact-order
///   CPU reference within the k-deep tolerance.
/// * **EngineVsModel** — the report's trailing `⌈log₂ chunks⌉` phases
///   (the synthesized tree fixup) must sum to the `model::skinny`
///   closed form exactly, and `cycles` must equal the full phase sum.
/// * **ExecParity** — routing: a `GemmAuto` request (tall) or the
///   transposed wide entry via `gemm_t` must funnel to the identical
///   bytes and report.
fn check_skinny(
    case: &Case,
    cfg: &KamiConfig,
    wide: bool,
    a: &Matrix,
    b: &Matrix,
) -> Result<CaseOutcome, Mismatch> {
    let device = case.device.spec();
    let c_prec = kami_core::gemm::c_precision(case.precision);
    let epi = case.epilogue.map(|kind| kind.build(case.n, case.data_seed));
    let res = match gemm_skinny(&device, cfg, a, b, epi.as_ref()) {
        Ok(res) => res,
        Err(e) => return classify(CheckKind::Numerics, "gemm_skinny", e),
    };

    let chunks = chunk_count(case.k);
    let mut parts = Vec::with_capacity(chunks);
    for i in 0..chunks {
        let k0 = i * SKINNY_CHUNK_K;
        let ck = SKINNY_CHUNK_K.min(case.k - k0);
        let a_i = a.submatrix(0, k0, case.m, ck);
        let b_i = b.submatrix(k0, 0, ck, case.n);
        match gemm_padded(&device, cfg, &a_i, &b_i) {
            Ok(r) => parts.push(r.c),
            Err(e) => return classify(CheckKind::Numerics, "skinny chunk gemm", e),
        }
    }
    let mut want = combine_partials(parts, c_prec);
    if let Some(epi) = &epi {
        epi.apply_reference(&mut want, c_prec);
    }
    let diff = res.c.max_abs_diff(&want);
    if diff != 0.0 {
        return Err(fail(
            CheckKind::Numerics,
            format!(
                "skinny path differs from the recomposed chunk+tree oracle by {diff:.3e} \
                 (must be bit-identical; epilogue {})",
                case.epilogue.map_or("none", |e| e.label())
            ),
        ));
    }
    if epi.is_none() {
        let reference = reference_gemm(a, b, case.precision);
        let err = frob_diff(&res.c, &reference) / reference.frobenius_norm().max(1e-9);
        let tol = numeric_tol(case.precision, case.k);
        if err > tol {
            return Err(fail(
                CheckKind::Numerics,
                format!("skinny rel Frobenius error {err:.3e} > tol {tol:.3e} vs reference"),
            ));
        }
    }

    // Cost plane: the synthesized fixup phases are the report's suffix.
    let rounds = skinny::tree_depth(chunks);
    let phases = &res.report.phase_costs;
    if phases.len() < rounds {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "skinny report has {} phases, fewer than the {rounds} tree rounds",
                phases.len()
            ),
        ));
    }
    let mode = res.report.mode;
    let fixup_measured: f64 = phases[phases.len() - rounds..]
        .iter()
        .map(|p| p.cycles(mode))
        .sum();
    let bias_elems = match &epi {
        Some(Epilogue::Bias(_)) => case.n,
        _ => 0,
    };
    let want_fixup = skinny::fixup_cycles(
        &device,
        &cfg.cost,
        case.m,
        case.n,
        chunks,
        c_prec,
        bias_elems,
        u64::from(epi.is_some()),
    )
    .map_err(|e| fail(CheckKind::EngineVsModel, format!("fixup closed form: {e}")))?;
    if (fixup_measured - want_fixup).abs() > 1e-6 * (1.0 + want_fixup) {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "skinny tree-fixup cycles {fixup_measured:.3} != closed form {want_fixup:.3} \
                 ({chunks} chunks, {rounds} rounds)"
            ),
        ));
    }
    let phase_sum: f64 = phases.iter().map(|p| p.cycles(mode)).sum();
    if (res.report.cycles - phase_sum).abs() > 1e-6 * (1.0 + phase_sum) {
        return Err(fail(
            CheckKind::EngineVsModel,
            format!(
                "skinny report cycles {:.3} != phase sum {phase_sum:.3}",
                res.report.cycles
            ),
        ));
    }

    // Routing parity: every public entry to this regime must land on
    // the same k-split run, bit for bit, report for report.
    let routed = if wide {
        // The wide case hands the operands over transposed; `gemm_t`
        // materializes the transposes and funnels here (no epilogue by
        // construction — the generator never pairs wide with one).
        gemm_t(
            &device,
            cfg,
            MatOp::Transpose,
            &a.transposed(),
            MatOp::Transpose,
            &b.transposed(),
        )
    } else {
        let req = GemmRequest::from_config(
            Op::GemmAuto {
                a: a.clone(),
                b: b.clone(),
            },
            cfg,
        );
        let req = match &epi {
            Some(epi) => req.with_epilogue(epi.clone()),
            None => req,
        };
        req.execute_single(&device)
    };
    let entry = if wide { "gemm_t(wide)" } else { "GemmAuto" };
    match routed {
        Ok(r) => {
            let diff = r.c.max_abs_diff(&res.c);
            if diff != 0.0 {
                return Err(fail(
                    CheckKind::ExecParity,
                    format!(
                        "{entry} routing differs from gemm_skinny by {diff:.3e} \
                         (must be bit-identical)"
                    ),
                ));
            }
            let l_rep = serde_json::to_string(&r.report).unwrap_or_default();
            let s_rep = serde_json::to_string(&res.report).unwrap_or_default();
            if l_rep != s_rep {
                return Err(fail(
                    CheckKind::ExecParity,
                    format!("{entry} routed report diverges from the direct skinny run"),
                ));
            }
        }
        Err(e) => {
            return Err(fail(
                CheckKind::ExecParity,
                format!("gemm_skinny ran but the {entry} entry failed: {e}"),
            ))
        }
    }

    // Backend parity on the k-split path itself: every backend's chunk
    // runs and pairwise-tree merge must reproduce the default run bit
    // for bit, report included.
    for backend in BackendKind::ALL {
        if backend == cfg.backend {
            continue;
        }
        let cfg_b = cfg.clone().with_backend(backend);
        match gemm_skinny(&device, &cfg_b, a, b, epi.as_ref()) {
            Ok(r) => {
                let diff = r.c.max_abs_diff(&res.c);
                if diff != 0.0 {
                    return Err(fail(
                        CheckKind::ExecParity,
                        format!(
                            "skinny path on {backend} differs from the default backend by \
                             {diff:.3e} (must be bit-identical)"
                        ),
                    ));
                }
                let l_rep = serde_json::to_string(&r.report).unwrap_or_default();
                let s_rep = serde_json::to_string(&res.report).unwrap_or_default();
                if l_rep != s_rep {
                    return Err(fail(
                        CheckKind::ExecParity,
                        format!("skinny report on {backend} diverges from the default backend"),
                    ));
                }
            }
            Err(e) => {
                return Err(fail(
                    CheckKind::ExecParity,
                    format!("skinny path ran on the default backend but {backend} failed: {e}"),
                ))
            }
        }
    }
    Ok(CaseOutcome::Pass)
}

/// Scheduler self-consistency: the report's aggregate claims must be
/// re-derivable from the per-SM trace it hands back.
fn check_scheduler(
    case: &Case,
    device: &kami_gpu_sim::DeviceSpec,
    plans: &PlanCache,
) -> Result<(), Mismatch> {
    let work = BlockWork::uniform(case.m, case.n, case.k, case.precision, case.batch);
    let (report, trace) = match Scheduler::new(device).run_traced(&work, plans) {
        Ok(out) => out,
        Err(SchedError::Core(KamiError::Sim(_)))
        | Err(SchedError::Core(KamiError::Unsupported { .. }))
        | Err(SchedError::SingleStageStreamK { .. }) => return Ok(()),
        Err(e) => {
            return Err(fail(
                CheckKind::SchedulerTrace,
                format!("scheduler rejected a generated case: {e}"),
            ))
        }
    };

    if report.total_blocks != case.batch {
        return Err(fail(
            CheckKind::SchedulerTrace,
            format!(
                "scheduled {} blocks for a batch of {}",
                report.total_blocks, case.batch
            ),
        ));
    }
    let makespan = report.makespan_cycles;
    let traced = trace.total_cycles();
    if (traced - makespan).abs() > 1e-6 * (1.0 + makespan) {
        return Err(fail(
            CheckKind::SchedulerTrace,
            format!("trace spans {traced:.3} cycles, report claims makespan {makespan:.3}"),
        ));
    }
    if report.utilization > 1.0 + 1e-9 {
        return Err(fail(
            CheckKind::SchedulerTrace,
            format!("utilization {} > 1", report.utilization),
        ));
    }
    let iters: usize = report.per_sm.iter().map(|s| s.k_iters).sum();
    let expect = report.total_blocks * report.k_stages;
    if iters != expect {
        return Err(fail(
            CheckKind::SchedulerTrace,
            format!(
                "k-iteration conservation broken: per-SM sum {iters} != blocks x k_stages {expect}"
            ),
        ));
    }
    for sm in &report.per_sm {
        let mut events: Vec<_> = trace.warp_events(sm.sm).collect();
        events.sort_by(|x, y| x.start.total_cmp(&y.start));
        let mut cursor = 0.0f64;
        let mut busy = 0.0f64;
        for e in &events {
            if e.start < cursor - 1e-6 {
                return Err(fail(
                    CheckKind::SchedulerTrace,
                    format!(
                        "SM {} events overlap: start {:.3} before previous end {cursor:.3}",
                        sm.sm, e.start
                    ),
                ));
            }
            cursor = e.start + e.duration;
            busy += e.duration;
        }
        if (busy - sm.busy_cycles).abs() > 1e-6 * (1.0 + sm.busy_cycles) {
            return Err(fail(
                CheckKind::SchedulerTrace,
                format!(
                    "SM {} trace durations sum to {busy:.3}, report claims busy {:.3}",
                    sm.sm, sm.busy_cycles
                ),
            ));
        }
    }
    Ok(())
}

/// SpMM and SpGEMM against the densified dense reference.
fn check_sparse(
    case: &Case,
    harness: &Harness,
    algo: Algo,
    density: f64,
    b_dense: &Matrix,
) -> Result<CaseOutcome, Mismatch> {
    let device = case.device.spec();
    let cfg = harness.dense_config(case, algo);
    let order = if case.data_seed & 1 == 0 {
        BlockOrder::RowMajor
    } else {
        BlockOrder::ZMorton
    };
    let tol = 2.0 * numeric_tol(case.precision, case.k);

    let a_sp = random_block_sparse(
        case.m,
        case.k,
        SPARSE_BLOCK,
        density,
        order,
        case.data_seed.wrapping_add(7),
    );
    let res = match spmm(&device, &cfg, &a_sp, b_dense) {
        Ok(res) => res,
        Err(e) => return classify(CheckKind::SparseVsDense, "spmm", e),
    };
    let want = reference_spmm(&a_sp, b_dense, case.precision);
    let err = frob_diff(&res.c, &want) / want.frobenius_norm().max(1e-9);
    if err > tol {
        return Err(fail(
            CheckKind::SparseVsDense,
            format!(
                "{} SpMM rel Frobenius error {err:.3e} > tol {tol:.3e} vs densified dense \
                 (density {density})",
                algo.label()
            ),
        ));
    }

    let b_sp = random_block_sparse(
        case.k,
        case.n,
        SPARSE_BLOCK,
        density,
        order,
        case.data_seed.wrapping_add(11),
    );
    let res = match spgemm(&device, &cfg, &a_sp, &b_sp) {
        Ok(res) => res,
        Err(e) => return classify(CheckKind::SparseVsDense, "spgemm", e),
    };
    let want = reference_gemm(&a_sp.to_dense(), &b_sp.to_dense(), case.precision);
    let err = frob_diff(&res.c.to_dense(), &want) / want.frobenius_norm().max(1e-9);
    if err > tol {
        return Err(fail(
            CheckKind::SparseVsDense,
            format!(
                "{} SpGEMM rel Frobenius error {err:.3e} > tol {tol:.3e} vs densified dense \
                 (density {density})",
                algo.label()
            ),
        ));
    }
    Ok(CaseOutcome::Pass)
}

/// Regression-test entry point the shrinker's reproducers call: panics
/// with the mismatch (or the skip reason — a reproducer that cannot run
/// proves nothing, so that is loud too).
pub fn assert_case(case: &Case, harness: &Harness) {
    let plans = PlanCache::new();
    match run_case(case, harness, &plans) {
        Ok(CaseOutcome::Pass) => {}
        Ok(CaseOutcome::Skip(reason)) => {
            panic!("reproducer case {} skipped: {reason}", case.describe())
        }
        Err(m) => panic!("case {} failed {m}", case.describe()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{AlgoKind, DeviceId};

    #[test]
    fn clean_engine_passes_one_case_per_algo() {
        let plans = PlanCache::new();
        let harness = Harness::default();
        for kind in AlgoKind::ALL {
            let case = Case::generate(DeviceId::Gh200, kind, Precision::Fp16, 5);
            let out = run_case(&case, &harness, &plans);
            assert!(
                matches!(out, Ok(CaseOutcome::Pass)),
                "{}: {:?}",
                case.describe(),
                out.err()
            );
        }
    }

    #[test]
    fn epilogue_cases_pass_clean_for_every_kind() {
        let plans = PlanCache::new();
        let harness = Harness::default();
        // Drive the epilogue seam directly (not via a lucky draw):
        // build a plain 1D case and force each kind through it.
        let mut case = Case::generate(DeviceId::Gh200, AlgoKind::OneD, Precision::Fp16, 5);
        case.alpha = 1.0;
        case.beta = 0.0;
        case.sparsity = None;
        case.batch = 1;
        for kind in EpilogueKind::ALL {
            case.epilogue = Some(kind);
            let out = run_case(&case, &harness, &plans);
            assert!(
                matches!(out, Ok(CaseOutcome::Pass)),
                "{}: {:?}",
                case.describe(),
                out.err()
            );
        }
    }

    #[test]
    fn skinny_cases_pass_clean_with_and_without_epilogue() {
        let plans = PlanCache::new();
        let harness = Harness::default();
        let mut found_epilogue = false;
        for seed in 0..40 {
            let case = Case::generate(DeviceId::Gh200, AlgoKind::Skinny, Precision::Fp16, seed);
            found_epilogue |= case.epilogue.is_some();
            let out = run_case(&case, &harness, &plans);
            assert!(
                matches!(out, Ok(CaseOutcome::Pass)),
                "{}: {:?}",
                case.describe(),
                out.err()
            );
        }
        assert!(found_epilogue, "40 skinny seeds must draw an epilogue");
    }

    #[test]
    fn two_d_softmax_skips_loudly_not_silently() {
        // 2D softmax-scale needs full rows per warp (q = 1); with q > 1
        // the fused path is Unsupported and the check must classify it
        // as a Skip — it lands in the sweep's histogram, not a failure.
        let plans = PlanCache::new();
        let harness = Harness::default();
        let mut case = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 5);
        assert_eq!(case.warps, 4, "generated 2D case uses q = 2");
        case.alpha = 1.0;
        case.beta = 0.0;
        case.sparsity = None;
        case.batch = 1;
        case.epilogue = Some(EpilogueKind::SoftmaxScale);
        match run_case(&case, &harness, &plans) {
            Ok(CaseOutcome::Skip(reason)) => {
                assert!(reason.contains("softmax"), "skip names the cause: {reason}")
            }
            other => panic!("expected a loud skip, got {other:?}"),
        }
    }

    #[test]
    fn injected_theta_breaks_engine_vs_model() {
        let plans = PlanCache::new();
        let harness = Harness {
            cost: Some(CostConfig {
                theta_r: 0.5,
                ..CostConfig::default()
            }),
            ..Harness::default()
        };
        let case = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 5);
        let err = run_case(&case, &harness, &plans).expect_err("perturbed engine must mismatch");
        assert_eq!(err.kind, CheckKind::EngineVsModel, "{err}");
    }
}
