//! Case shrinking: reduce a failing case to a minimal reproducer.
//!
//! Greedy descent over simplification candidates, in simplicity order:
//! a candidate is adopted only when it *still fails the same check*, so
//! the minimal case reproduces the original bug rather than some other
//! one it wandered into. Each pass restarts from the simplest candidate
//! (shrinking one axis often unlocks another); the loop terminates
//! because every adopted candidate strictly reduces a finite measure
//! (dims, batch, warps, α/β menu position, sparsity presence).

use crate::case::{Case, CaseAlgo};
use crate::checks::{run_case, Harness, Mismatch};
use kami_sched::PlanCache;

/// Candidate simplifications of `case`, simplest-first. Every candidate
/// is a valid case (divisibility quanta are respected).
fn candidates(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    let mut push = |cand: Case| {
        if cand != *case {
            out.push(cand);
        }
    };

    if case.batch > 1 {
        let mut c = case.clone();
        c.batch = 1;
        push(c);
        let mut c = case.clone();
        c.batch = case.batch / 2;
        push(c);
    }
    if case.sparsity.is_some() {
        let mut c = case.clone();
        c.sparsity = None;
        // Dropping sparsity also relaxes the shape quanta; re-snap so
        // later dim shrinks can go all the way down.
        push(c);
    }
    if case.epilogue.is_some() {
        let mut c = case.clone();
        c.epilogue = None;
        push(c);
    }
    if case.alpha != 1.0 {
        let mut c = case.clone();
        c.alpha = 1.0;
        push(c);
    }
    if case.beta != 0.0 {
        let mut c = case.clone();
        c.beta = 0.0;
        push(c);
    }
    let (qm, qn, qk) = case.quantum();
    for (dim, quantum) in [(2usize, qk), (0, qm), (1, qn)] {
        let cur = [case.m, case.n, case.k][dim];
        if cur > quantum {
            let halved = ((cur / 2) / quantum).max(1) * quantum;
            let mut c = case.clone();
            match dim {
                0 => c.m = halved,
                1 => c.n = halved,
                _ => c.k = halved,
            }
            push(c);
        }
    }
    if let CaseAlgo::Dense(kami_core::Algo::OneD) = case.algo {
        if case.warps > 2 {
            let mut c = case.clone();
            c.warps = case.warps / 2;
            // 1D needs p | m and p | k: the generator's quanta (16)
            // already cover any p ≤ 4, so no re-snap needed.
            push(c);
        }
    }
    out
}

/// Shrink `case` (which fails `original`'s check under `harness`) to a
/// minimal case failing the same check. Returns the minimal case and
/// its mismatch. If `case` does not actually fail, it is returned
/// unchanged with the original mismatch.
pub fn shrink(
    case: &Case,
    harness: &Harness,
    plans: &PlanCache,
    original: &Mismatch,
) -> (Case, Mismatch) {
    let mut cur = case.clone();
    let mut mismatch = original.clone();
    // Each adoption strictly shrinks the case, so passes are bounded;
    // the cap is a safety net against a non-deterministic check.
    for _ in 0..64 {
        let mut progressed = false;
        for cand in candidates(&cur) {
            if let Err(m) = run_case(&cand, harness, plans) {
                if m.kind == original.kind {
                    cur = cand;
                    mismatch = m;
                    progressed = true;
                    break;
                }
            }
        }
        if !progressed {
            break;
        }
    }
    (cur, mismatch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{AlgoKind, DeviceId};
    use crate::checks::CheckKind;
    use kami_gpu_sim::{CostConfig, Precision};

    #[test]
    fn candidates_respect_quanta_and_strictly_simplify() {
        for kind in [AlgoKind::OneD, AlgoKind::Skinny, AlgoKind::SkinnyWide] {
            for seed in 0..50 {
                let case = Case::generate(DeviceId::Gh200, kind, Precision::Fp16, seed);
                for cand in candidates(&case) {
                    let (qm, qn, qk) = cand.quantum();
                    assert_eq!(cand.m % qm, 0);
                    assert_eq!(cand.n % qn, 0);
                    assert_eq!(cand.k % qk, 0);
                    assert_ne!(cand, case);
                    assert!(cand.m <= case.m && cand.n <= case.n && cand.k <= case.k);
                    assert!(cand.batch <= case.batch && cand.warps <= case.warps);
                    // A skinny shrink must stay in the k-split regime.
                    if matches!(cand.algo, CaseAlgo::Skinny { .. }) {
                        assert!(kami_core::is_tall_skinny(cand.m, cand.n, cand.k));
                    }
                }
            }
        }
    }

    #[test]
    fn shrinks_injected_model_mismatch_to_minimum() {
        let plans = PlanCache::new();
        let harness = Harness {
            cost: Some(CostConfig {
                theta_w: 0.25,
                ..CostConfig::default()
            }),
            ..Harness::default()
        };
        // Hand-built worst case: big dims, busy epilogue, sparse rider.
        let case = Case {
            id: 99,
            device: DeviceId::Gh200,
            algo: CaseAlgo::Dense(kami_core::Algo::TwoD),
            precision: Precision::Fp16,
            m: 128,
            n: 64,
            k: 128,
            warps: 4,
            alpha: -0.75,
            beta: 3.0,
            sparsity: Some(0.25),
            batch: 8,
            epilogue: None,
            data_seed: 1234,
        };
        let original = run_case(&case, &harness, &plans).expect_err("must fail");
        assert_eq!(original.kind, CheckKind::EngineVsModel);
        let (min, m) = shrink(&case, &harness, &plans, &original);
        assert_eq!(m.kind, CheckKind::EngineVsModel);
        // A θ_w perturbation reproduces at the smallest shape the
        // quantum allows, with every rider stripped.
        assert_eq!((min.m, min.n, min.k), (16, 16, 16), "{}", min.describe());
        assert_eq!(min.alpha, 1.0);
        assert_eq!(min.beta, 0.0);
        assert_eq!(min.batch, 1);
        assert_eq!(min.sparsity, None);
        // And the reproducer it renders still names the failing seam.
        let repro = min.reproducer(&format!("{m}"));
        assert!(repro.contains("EngineVsModel"));
        assert!(repro.contains("assert_case"));
    }
}
