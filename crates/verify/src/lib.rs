//! kami-verify: a seeded differential / metamorphic cross-check harness
//! tying the three independent implementations of the KAMI cost story —
//! the cycle-level engine, the closed-form model (Formulas 1–12), and
//! the device-level scheduler — against each other and against exact
//! reference numerics.
//!
//! The harness generates random-but-reproducible cases over the full
//! cross product the repo supports (Table-3 device × algorithm
//! {1D, 2D, 2.5D, 3D, tall-skinny, skinny-wide} × precision × shape ×
//! α/β × sparsity × fused epilogue) and runs four checks per case:
//!
//! 1. **Numerics** — engine GEMM output vs [`kami_core::reference_gemm`]
//!    within a precision-derived tolerance.
//! 2. **Engine vs model** — measured communication cycles vs the paper's
//!    closed forms, exactly (per total *and* per stage), plus a bounded
//!    compute band.
//! 3. **Scheduler vs trace** — the makespan, per-SM busy cycles, and
//!    k-iteration conservation the scheduler reports vs the per-SM trace
//!    it emits.
//! 4. **Sparse vs dense** — SpMM/SpGEMM vs the densified dense path.
//!
//! Tall-skinny cells additionally hold the k-split path to a
//! recomposed chunk+tree oracle and the `model::skinny` fixup closed
//! form; epilogue draws hold `gemm_fused` to the unfused reference
//! and the `model::epilogue` delta forms (see [`checks`]).
//!
//! On mismatch the case is [shrunk](shrink::shrink) to a minimal
//! reproducer and rendered as a ready-to-paste regression test
//! ([`case::Case::reproducer`]).
//!
//! Entry points: [`checks::run_case`] for one case, [`sweep::sweep`] for
//! a full grid (the `verify_sweep` binary in kami-bench drives the
//! latter; `--quick` is the CI leg).

pub mod case;
pub mod checks;
pub mod fleet;
pub mod served;
pub mod shrink;
pub mod sweep;

pub use case::{AlgoKind, Case, CaseAlgo, DeviceId, EpilogueKind};
pub use checks::{assert_case, run_case, CaseOutcome, CheckKind, Harness, Mismatch};
pub use fleet::{FleetReplay, FleetServedCase};
pub use served::{ServedCase, ServedReplay};
pub use shrink::shrink;
pub use sweep::{sweep, Failure, SweepConfig, SweepOutcome};
