//! The `Served` seam: replay a verify [`Case`] through the
//! [`kami_serve`] runtime and hold the service to the same standard as
//! a direct engine call.
//!
//! Two properties are checked:
//!
//! * **Bit-identity** — every served copy's output matrix must equal
//!   the direct `gemm` result *exactly* (`==` on the element slice, no
//!   tolerance). Coalescing, retries, and the degraded-serial fallback
//!   only share schedules and clocks; they must never touch numerics.
//! * **Conservation** — every submitted copy resolves exactly once,
//!   and the served flop total equals `copies × direct flops`: no work
//!   is dropped or duplicated across coalesced ticks, requeues
//!   included.
//!
//! The service's fault-injection hook (a perturbed server-level
//! [`CostConfig`] plus a tight deadline) drives the timeout → retry →
//! degraded-serial path; `tests/serve_runtime.rs` exercises that
//! end-to-end and asserts the numerics still match bit-for-bit.

use crate::case::{Case, CaseAlgo};
use crate::checks::{CaseOutcome, CheckKind, Harness, Mismatch};
use kami_core::{GemmRequest, GemmResult, KamiError, Op};
use kami_gpu_sim::{CostConfig, Matrix};
use kami_sched::CacheConfig;
use kami_serve::{Completed, Metrics, ServeRequest, Server, ServerConfig};

/// How to replay one case through the service.
#[derive(Debug, Clone)]
pub struct ServedCase {
    /// Identical copies to submit — they coalesce into one work pool.
    pub copies: usize,
    /// End-to-end deadline in simulated cycles, charged from admission
    /// across every retry (`None` = best effort).
    pub deadline_cycles: Option<f64>,
    /// Server-level cost override: the fault-injection hook. Inflated
    /// costs blow schedule makespans past the deadline while leaving
    /// numeric values untouched.
    pub server_cost: Option<CostConfig>,
    /// Deadline misses tolerated before the serial fallback.
    pub max_retries: u32,
    /// Base backoff in simulated cycles between retry attempts.
    pub backoff_cycles: f64,
    /// Submission rounds: each round submits `copies` and drains the
    /// queue before the next, so round 2 dispatches *after* round 1's
    /// observations have landed in the cache. 1 = the classic replay.
    pub rounds: usize,
    /// Plan-cache knobs for the server under test (budget, admission,
    /// feedback). Default = unbounded + no-feedback.
    pub cache: CacheConfig,
    /// "Reality" cost model ([`kami_serve::ServerConfig::true_cost`]):
    /// makes the server's execution disagree with its own model, which
    /// is what gives the feedback channel something to observe.
    pub true_cost: Option<CostConfig>,
}

impl Default for ServedCase {
    fn default() -> Self {
        ServedCase {
            copies: 3,
            deadline_cycles: None,
            server_cost: None,
            max_retries: 2,
            backoff_cycles: 64.0,
            rounds: 1,
            cache: CacheConfig::default(),
            true_cost: None,
        }
    }
}

/// The replay's evidence: every completion plus the direct result they
/// are all held against.
#[derive(Debug)]
pub struct ServedReplay {
    pub completions: Vec<Completed>,
    pub direct: GemmResult,
    pub metrics: Metrics,
}

impl ServedCase {
    /// Replay `case` through a fresh server. `Ok(None)` means the case
    /// is not servable on this cell (non-dense algorithm, or the
    /// configuration is infeasible for a direct call too).
    pub fn replay(&self, case: &Case, harness: &Harness) -> Result<Option<ServedReplay>, Mismatch> {
        let algo = match case.algo {
            CaseAlgo::Dense(algo) => algo,
            // Skinny cases serve through `GemmAuto`, the entry that
            // routes tall shapes onto the k-split path.
            CaseAlgo::Skinny { algo, .. } => algo,
            CaseAlgo::TwoHalfD { .. } => return Ok(None),
        };
        let device = case.device.spec();
        let cfg = harness.dense_config(case, algo);
        let a = Matrix::seeded_uniform(case.m, case.k, case.data_seed);
        let b = Matrix::seeded_uniform(case.k, case.n, case.data_seed.wrapping_add(1));

        // The request a non-served caller would build — epilogue
        // included, so the replay exercises the same coalesce keys and
        // fused kernels the service must keep distinct.
        let op = match case.algo {
            CaseAlgo::Skinny { .. } => Op::GemmAuto {
                a: a.clone(),
                b: b.clone(),
            },
            _ => Op::Gemm {
                a: a.clone(),
                b: b.clone(),
            },
        };
        let mut base = GemmRequest::from_config(op, &cfg);
        if let Some(kind) = case.epilogue {
            base = base.with_epilogue(kind.build(case.n, case.data_seed));
        }

        // The oracle: the very call a non-served user would make.
        let direct = match base.execute_single(&device) {
            Ok(res) => res,
            Err(KamiError::Sim(_)) | Err(KamiError::Unsupported { .. }) => return Ok(None),
            Err(e) => {
                return Err(Mismatch {
                    kind: CheckKind::Served,
                    detail: format!("direct request rejected a generated case: {e}"),
                })
            }
        };

        let server = Server::with_config(
            &device,
            ServerConfig {
                queue_capacity: self.copies.max(1),
                coalesce: true,
                max_retries: self.max_retries,
                backoff_cycles: self.backoff_cycles,
                cost: self.server_cost.clone(),
                cache: self.cache.clone(),
                true_cost: self.true_cost.clone(),
                ..ServerConfig::default()
            },
        );
        let mut tickets = Vec::with_capacity(self.copies * self.rounds.max(1));
        for _ in 0..self.rounds.max(1) {
            for _ in 0..self.copies {
                let mut req = ServeRequest::dense(base.clone());
                if let Some(d) = self.deadline_cycles {
                    req = req.with_deadline(d);
                }
                tickets.push(server.submit(req).map_err(|e| Mismatch {
                    kind: CheckKind::Served,
                    detail: format!("submit rejected within capacity: {e}"),
                })?);
            }
            server.drain();
        }
        server.shutdown_and_drain();

        let mut completions = Vec::with_capacity(tickets.len());
        for t in tickets {
            match t.wait() {
                Ok(done) => completions.push(done),
                Err(e) => {
                    return Err(Mismatch {
                        kind: CheckKind::Served,
                        detail: format!("served copy failed where direct call passed: {e}"),
                    })
                }
            }
        }
        Ok(Some(ServedReplay {
            completions,
            direct,
            metrics: server.metrics(),
        }))
    }
}

impl ServedReplay {
    /// Bit-identity + conservation (see module docs). Returns the
    /// mismatch story on the first violated property.
    pub fn check(&self, copies: usize) -> Result<(), Mismatch> {
        if self.completions.len() != copies {
            return Err(Mismatch {
                kind: CheckKind::Served,
                detail: format!(
                    "submitted {copies} copies, {} resolved — request conservation broken",
                    self.completions.len()
                ),
            });
        }
        for done in &self.completions {
            let got = match done
                .output
                .clone()
                .into_dense()
                .and_then(|r| r.into_single().map_err(kami_serve::ServeError::Core))
            {
                Ok(res) => res,
                Err(e) => {
                    return Err(Mismatch {
                        kind: CheckKind::Served,
                        detail: format!("served completion holds the wrong payload: {e}"),
                    })
                }
            };
            if got.c.as_slice() != self.direct.c.as_slice() {
                return Err(Mismatch {
                    kind: CheckKind::Served,
                    detail: format!(
                        "served copy {} (via {}, {} attempts) differs bit-wise from the \
                         direct engine result",
                        done.id,
                        done.via.label(),
                        done.attempts
                    ),
                });
            }
        }
        let served_flops: u64 = self
            .completions
            .iter()
            .map(|d| d.output.useful_flops())
            .sum();
        let want = self.direct.useful_flops * copies as u64;
        if served_flops != want {
            return Err(Mismatch {
                kind: CheckKind::Served,
                detail: format!(
                    "served flop total {served_flops} != copies x direct {want} — \
                     work conservation across coalesced ticks broken"
                ),
            });
        }
        Ok(())
    }
}

/// The `Served` cross-check as run by the case harness: a small
/// coalesced replay, held to bit-identity and conservation.
pub(crate) fn check_served(case: &Case, harness: &Harness) -> Result<CaseOutcome, Mismatch> {
    let served = ServedCase::default();
    match served.replay(case, harness)? {
        Some(replay) => {
            replay.check(served.copies)?;
            Ok(CaseOutcome::Pass)
        }
        None => Ok(CaseOutcome::Pass),
    }
}

/// The `Feedback` cross-check: replay on a server whose cache has the
/// observation channel on and whose execution runs 4x slower than its
/// model believes (`mma_efficiency: 0.25`). Round 2 dispatches after
/// round 1's observations land, so any correction-driven re-ranking is
/// live — and the payloads must still match the direct call bit-wise.
/// For plain dense cases (uniform pools) the channel must also have
/// recorded at least one observation, or the hook is dead wire.
pub(crate) fn check_feedback(case: &Case, harness: &Harness) -> Result<CaseOutcome, Mismatch> {
    let served = ServedCase {
        rounds: 2,
        cache: CacheConfig::default().with_feedback(),
        true_cost: Some(CostConfig {
            mma_efficiency: 0.25,
            ..CostConfig::default()
        }),
        ..ServedCase::default()
    };
    match served.replay(case, harness)? {
        Some(replay) => {
            replay
                .check(served.copies * served.rounds)
                .map_err(|m| Mismatch {
                    kind: CheckKind::Feedback,
                    detail: m.detail,
                })?;
            if matches!(case.algo, CaseAlgo::Dense(_))
                && replay.metrics.plan_cache.feedback_observations == 0
            {
                return Err(Mismatch {
                    kind: CheckKind::Feedback,
                    detail: "feedback-enabled replay on a mis-modeled server recorded zero \
                             observations — the channel is disconnected"
                        .into(),
                });
            }
            Ok(CaseOutcome::Pass)
        }
        None => Ok(CaseOutcome::Pass),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{AlgoKind, DeviceId};
    use kami_gpu_sim::Precision;

    #[test]
    fn served_replay_matches_direct_bitwise() {
        let case = Case::generate(DeviceId::Gh200, AlgoKind::OneD, Precision::Fp16, 11);
        let harness = Harness::default();
        let served = ServedCase::default();
        let replay = served
            .replay(&case, &harness)
            .expect("replay must not mismatch")
            .expect("a generated 1D fp16 case is servable");
        replay.check(served.copies).expect("bit-identity");
        assert_eq!(replay.metrics.completed, served.copies as u64);
    }

    #[test]
    fn skinny_cases_replay_through_the_service() {
        let harness = Harness::default();
        let served = ServedCase::default();
        // Scan seeds for a tall-skinny case that carries an epilogue, so
        // the replay exercises the fused coalesce key end to end.
        let case = (0..200)
            .map(|s| Case::generate(DeviceId::Gh200, AlgoKind::Skinny, Precision::Fp16, s))
            .find(|c| c.epilogue.is_some())
            .expect("some skinny seed draws an epilogue");
        let replay = served
            .replay(&case, &harness)
            .expect("replay must not mismatch")
            .expect("a generated skinny fp16 case is servable");
        replay.check(served.copies).expect("bit-identity");
    }

    #[test]
    fn run_case_with_feedback_flag_passes_clean() {
        use kami_sched::PlanCache;
        let harness = Harness {
            feedback: true,
            ..Harness::default()
        };
        let case = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 7);
        let plans = PlanCache::new();
        crate::checks::run_case(&case, &harness, &plans).expect("clean case must pass");
    }

    #[test]
    fn feedback_check_observes_and_stays_bit_identical() {
        let case = Case::generate(DeviceId::Gh200, AlgoKind::OneD, Precision::Fp16, 13);
        let harness = Harness::default();
        let served = ServedCase {
            rounds: 2,
            cache: CacheConfig::default().with_feedback(),
            true_cost: Some(CostConfig {
                mma_efficiency: 0.25,
                ..CostConfig::default()
            }),
            ..ServedCase::default()
        };
        let replay = served
            .replay(&case, &harness)
            .expect("replay must not mismatch")
            .expect("a generated 1D fp16 case is servable");
        replay
            .check(served.copies * served.rounds)
            .expect("feedback must not touch payloads");
        assert!(
            replay.metrics.plan_cache.feedback_observations >= 1,
            "mis-modeled server must record observations"
        );
    }

    #[test]
    fn run_case_with_serve_flag_passes_clean() {
        use kami_sched::PlanCache;
        let harness = Harness {
            serve: true,
            ..Harness::default()
        };
        let case = Case::generate(DeviceId::Gh200, AlgoKind::TwoD, Precision::Fp16, 3);
        let plans = PlanCache::new();
        crate::checks::run_case(&case, &harness, &plans).expect("clean case must pass");
    }
}
