//! Typed construction errors for block-sparse storage.
//!
//! The fallible constructors ([`BlockSparseMatrix::try_from_blocks`],
//! [`BlockSparseMatrix::try_from_dense`]) return these instead of
//! panicking, so callers assembling matrices from untrusted input
//! (parsed files, service requests) can reject bad structure with a
//! real error chain. The infallible constructors delegate and panic
//! with the same message.
//!
//! [`BlockSparseMatrix::try_from_blocks`]: crate::BlockSparseMatrix::try_from_blocks
//! [`BlockSparseMatrix::try_from_dense`]: crate::BlockSparseMatrix::try_from_dense

/// Why a [`BlockSparseMatrix`](crate::BlockSparseMatrix) could not be
/// built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparseError {
    /// The element dimensions are not divisible by the block edge (or
    /// the edge is zero).
    Misaligned {
        rows: usize,
        cols: usize,
        block: usize,
    },
    /// A block coordinate lies outside the block grid.
    BlockOutOfRange {
        block_row: usize,
        block_col: usize,
        rows_blk: usize,
        cols_blk: usize,
    },
    /// A block payload is not `block`×`block`.
    BlockShape {
        got_rows: usize,
        got_cols: usize,
        block: usize,
    },
    /// Two entries share the same block coordinate.
    DuplicateBlock { block_row: usize, block_col: usize },
}

impl std::fmt::Display for SparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparseError::Misaligned { rows, cols, block } => {
                write!(f, "matrix {rows}x{cols} not divisible by block {block}")
            }
            SparseError::BlockOutOfRange {
                block_row,
                block_col,
                rows_blk,
                cols_blk,
            } => write!(
                f,
                "block ({block_row},{block_col}) out of range for a {rows_blk}x{cols_blk} block grid"
            ),
            SparseError::BlockShape {
                got_rows,
                got_cols,
                block,
            } => write!(
                f,
                "block payload is {got_rows}x{got_cols}, expected {block}x{block}"
            ),
            SparseError::DuplicateBlock {
                block_row,
                block_col,
            } => write!(f, "duplicate block coordinate ({block_row},{block_col})"),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = SparseError::Misaligned {
            rows: 65,
            cols: 64,
            block: 16,
        };
        assert_eq!(e.to_string(), "matrix 65x64 not divisible by block 16");
        let e = SparseError::DuplicateBlock {
            block_row: 1,
            block_col: 2,
        };
        assert!(e.to_string().contains("(1,2)"));
    }
}
