//! Z-Morton (Z-order) curve encoding for block coordinates (paper §4.6,
//! Fig 7(b)).
//!
//! The 2D/3D algorithms store nonzero blocks in multi-level Z-Morton
//! order: any power-of-two-aligned quadrant of the block grid occupies a
//! *contiguous* range of Morton codes, so a warp's submatrix is a single
//! slice of the block array — the "efficient submatrix indexing" of
//! Buluç et al. and Yzelman et al. that the paper builds on.

/// Interleave the low 32 bits of `x` into even bit positions.
fn spread(x: u64) -> u64 {
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread`].
fn squash(x: u64) -> u64 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0xFFFF_FFFF;
    x
}

/// Morton code of block coordinate `(row, col)`: row bits in odd
/// positions, column bits in even positions.
#[inline]
pub fn encode(row: usize, col: usize) -> u64 {
    (spread(row as u64) << 1) | spread(col as u64)
}

/// Inverse of [`encode`].
#[inline]
pub fn decode(code: u64) -> (usize, usize) {
    (squash(code >> 1) as usize, squash(code) as usize)
}

/// Morton-code range `[lo, hi)` covering the aligned square
/// `[row0, row0+extent) × [col0, col0+extent)`, where `row0`, `col0`, and
/// `extent` are multiples of a power of two and `extent` is a power of
/// two. Such quadrants are contiguous in Z-order.
pub fn quadrant_range(row0: usize, col0: usize, extent: usize) -> (u64, u64) {
    debug_assert!(extent.is_power_of_two(), "extent must be a power of two");
    debug_assert!(
        row0.is_multiple_of(extent) && col0.is_multiple_of(extent),
        "unaligned quadrant"
    );
    let lo = encode(row0, col0);
    (lo, lo + (extent * extent) as u64)
}

/// Sort block coordinates (with payload indices) into Z-Morton order;
/// returns the permutation `perm` such that `coords[perm[i]]` is the
/// `i`-th block in Z-order.
pub fn sort_permutation(coords: &[(usize, usize)]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..coords.len()).collect();
    perm.sort_by_key(|&i| encode(coords[i].0, coords[i].1));
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for r in 0..64 {
            for c in 0..64 {
                assert_eq!(decode(encode(r, c)), (r, c));
            }
        }
    }

    #[test]
    fn z_order_of_first_quad() {
        // Classic Z: (0,0) (0,1) (1,0) (1,1) -> 0 1 2 3.
        assert_eq!(encode(0, 0), 0);
        assert_eq!(encode(0, 1), 1);
        assert_eq!(encode(1, 0), 2);
        assert_eq!(encode(1, 1), 3);
        assert_eq!(encode(0, 2), 4);
    }

    #[test]
    fn quadrants_are_contiguous() {
        let (lo, hi) = quadrant_range(2, 2, 2);
        let mut codes: Vec<u64> = Vec::new();
        for r in 2..4 {
            for c in 2..4 {
                codes.push(encode(r, c));
            }
        }
        codes.sort_unstable();
        assert_eq!(codes.first(), Some(&lo));
        assert_eq!(codes.last(), Some(&(hi - 1)));
        assert_eq!(codes.len() as u64, hi - lo);
        // And no foreign block falls inside the range.
        for r in 0..8 {
            for c in 0..8 {
                let code = encode(r, c);
                let inside = (2..4).contains(&r) && (2..4).contains(&c);
                assert_eq!((lo..hi).contains(&code), inside, "({r},{c})");
            }
        }
    }

    #[test]
    fn sort_permutation_orders_by_code() {
        let coords = vec![(1, 1), (0, 0), (1, 0), (0, 1)];
        let perm = sort_permutation(&coords);
        let sorted: Vec<_> = perm.iter().map(|&i| coords[i]).collect();
        assert_eq!(sorted, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn large_coordinates() {
        let (r, c) = (123_456, 654_321);
        assert_eq!(decode(encode(r, c)), (r, c));
    }
}
