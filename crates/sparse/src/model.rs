//! Analytic cost model for the sparse extensions — the §4.6 analogue of
//! the dense Formulas 1–12 (the paper analyzes only the dense case; this
//! extends the same cycle accounting to block-sparse operands under a
//! Bernoulli block-sparsity assumption).
//!
//! With block density `d` (each `bs×bs` block nonzero independently with
//! probability `d`):
//!
//! * **SpMM** (sparse A, dense B): dense-B communication is unchanged;
//!   the 2D/3D schemes additionally move `d·|A|` of values plus the
//!   index metadata; compute shrinks to `d` of the dense flops.
//! * **SpGEMM**: both operands' values shrink to `d·|·|`, and the
//!   expected block-pair count per output block follows the
//!   inner-product collision probability `d²·(k/bs)`.

use kami_core::config::Algo;
use kami_core::model::cycles::ModelParams;

/// RowPtr + ColBlkIdx bytes for `rows` block rows and `nblocks` stored
/// blocks (4-byte entries, the real-valued counterpart of
/// `BlockSparseMatrix::metadata_bytes`). Public so the device-level
/// scheduler's nnz-weighted cost hook charges index traffic with the
/// same accounting as these formulas.
pub fn metadata_bytes(rows: f64, nblocks: f64) -> f64 {
    4.0 * (rows + 1.0) + 4.0 * nblocks
}

/// Expected useful flops of SpMM on an `m×k` sparse A (density `d`,
/// block `bs`) times a dense `k×n` B.
pub fn spmm_expected_flops(m: usize, n: usize, k: usize, bs: usize, d: f64) -> f64 {
    let blocks = (m / bs) as f64 * (k / bs) as f64 * d;
    2.0 * (bs * bs * n) as f64 * blocks
}

/// Expected total communication volume (bytes, writes + reads) of the
/// block-level SpMM under `algo` with `p` warps.
#[allow(clippy::too_many_arguments)]
pub fn spmm_expected_volume(
    algo: Algo,
    m: usize,
    n: usize,
    k: usize,
    bs: usize,
    d: f64,
    p: usize,
    s_e: f64,
) -> f64 {
    let g = match algo {
        Algo::OneD => p as f64,
        Algo::TwoD => (p as f64).sqrt(),
        Algo::ThreeD => (p as f64).cbrt(),
    };
    // Dense-B traffic mirrors the dense formulas: B written once, read
    // (readers) times.
    let b_vol = (k * n) as f64 * s_e * g;
    match algo {
        // 1D never communicates A.
        Algo::OneD => b_vol,
        // 2D/3D broadcast A's nonzero blocks once (+ metadata), read by
        // (g−1) warps.
        Algo::TwoD | Algo::ThreeD => {
            let a_blocks = (m / bs) as f64 * (k / bs) as f64 * d;
            let a_vals = a_blocks * (bs * bs) as f64 * s_e;
            let a_meta = metadata_bytes((m / bs) as f64, a_blocks);
            b_vol + (a_vals + a_meta) * g
        }
    }
}

/// Expected block pairs of SpGEMM on two `n×n` operands with density `d`
/// and block `bs`: every (i,l)×(l,j) meeting costs one `bs³` product.
pub fn spgemm_expected_pairs(n: usize, bs: usize, d: f64) -> f64 {
    let nb = (n / bs) as f64;
    nb * nb * nb * d * d
}

/// Expected useful flops of SpGEMM.
pub fn spgemm_expected_flops(n: usize, bs: usize, d: f64) -> f64 {
    2.0 * (bs * bs * bs) as f64 * spgemm_expected_pairs(n, bs, d)
}

/// Expected nonzero blocks of the SpGEMM output: a block (i,j) is
/// nonzero unless all `k/bs` inner meetings miss —
/// `1 − (1 − d²)^(k/bs)` per block.
pub fn spgemm_expected_output_blocks(n: usize, bs: usize, d: f64) -> f64 {
    let nb = (n / bs) as f64;
    nb * nb * (1.0 - (1.0 - d * d).powf(nb))
}

/// Expected total communication volume (bytes) of the block-level
/// SpGEMM on two `n×n` operands with density `d` under `algo` with `p`
/// warps. Each sparse operand costs its nonzero values plus the
/// RowPtr/ColBlkIdx metadata; 1D keeps A resident and circulates only
/// the sparse B slabs, 2D/3D move both operands' quadrants.
pub fn spgemm_expected_volume(algo: Algo, n: usize, bs: usize, d: f64, p: usize, s_e: f64) -> f64 {
    let g = match algo {
        Algo::OneD => p as f64,
        Algo::TwoD => (p as f64).sqrt(),
        Algo::ThreeD => (p as f64).cbrt(),
    };
    let nb = (n / bs) as f64;
    let blocks = nb * nb * d;
    let operand = blocks * (bs * bs) as f64 * s_e + metadata_bytes(nb, blocks);
    match algo {
        Algo::OneD => operand * g,
        Algo::TwoD | Algo::ThreeD => 2.0 * operand * g,
    }
}

/// Rough total cycles of block-level SpGEMM — the [`spmm_expected_cycles`]
/// analogue over the two-sparse-operand volume and the collision-expected
/// compressed flop count.
pub fn spgemm_expected_cycles(
    algo: Algo,
    n: usize,
    bs: usize,
    d: f64,
    p: usize,
    prm: &ModelParams,
) -> f64 {
    let stages = match algo {
        Algo::OneD => p as f64,
        Algo::TwoD => (p as f64).sqrt(),
        Algo::ThreeD => (p as f64).cbrt(),
    };
    let vol = spgemm_expected_volume(algo, n, bs, d, p, prm.s_e);
    let comm = vol / (prm.theta_r.min(prm.theta_w) * prm.b_sm);
    let compute = spgemm_expected_flops(n, bs, d) / (prm.n_tc * prm.o_tc);
    prm.l_sm * stages + comm + compute
}

/// Rough total cycles of block-level SpMM: latency per stage plus the
/// expected volume over the shared-memory bandwidth plus the expected
/// compute (at the tensor-core rate; padding excluded, like the dense
/// formulas).
#[allow(clippy::too_many_arguments)]
pub fn spmm_expected_cycles(
    algo: Algo,
    m: usize,
    n: usize,
    k: usize,
    bs: usize,
    d: f64,
    p: usize,
    prm: &ModelParams,
) -> f64 {
    let stages = match algo {
        Algo::OneD => p as f64,
        Algo::TwoD => (p as f64).sqrt(),
        Algo::ThreeD => (p as f64).cbrt(),
    };
    let vol = spmm_expected_volume(algo, m, n, k, bs, d, p, prm.s_e);
    // The volume already contains the write+read split implicitly at
    // θ=1; apportion with the configured factors on the read-heavy part.
    let comm = vol / (prm.theta_r.min(prm.theta_w) * prm.b_sm);
    let compute = spmm_expected_flops(m, n, k, bs, d) / (prm.n_tc * prm.o_tc);
    prm.l_sm * stages + comm + compute
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_core::config::KamiConfig;
    use kami_gpu_sim::{device::gh200, Matrix, Precision};

    #[test]
    fn density_one_recovers_dense_flops() {
        assert_eq!(
            spmm_expected_flops(64, 64, 64, 16, 1.0),
            2.0 * 64.0 * 64.0 * 64.0
        );
        assert_eq!(spgemm_expected_flops(64, 16, 1.0), 2.0 * 64.0 * 64.0 * 64.0);
    }

    #[test]
    fn expected_volume_matches_measured_spmm() {
        // The generator produces *exactly* round(d·total) blocks, so the
        // expectation is exact for it.
        let dev = gh200();
        let prec = Precision::Fp16;
        let (n, bs, d) = (64usize, 16usize, 0.5);
        for (algo, p) in [(Algo::OneD, 4usize), (Algo::TwoD, 4)] {
            let order = if algo == Algo::OneD {
                crate::BlockOrder::RowMajor
            } else {
                crate::BlockOrder::ZMorton
            };
            let a = crate::gen::random_block_sparse(n, n, bs, d, order, 9);
            let b = Matrix::seeded_uniform(n, n, 10);
            let cfg = KamiConfig::new(algo, prec).with_warps(p);
            let res = crate::spmm::spmm(&dev, &cfg, &a, &b).unwrap();
            let want = spmm_expected_volume(algo, n, n, n, bs, d, p, 2.0);
            let got = res.report.comm_volume() as f64;
            let rel = (got - want).abs() / want;
            assert!(rel < 0.05, "{}: got {got} want {want}", algo.label());
        }
    }

    #[test]
    fn expected_pairs_matches_symbolic_on_average() {
        let (n, bs, d) = (128usize, 16usize, 0.5);
        let mut total = 0.0;
        let trials = 20;
        for seed in 0..trials {
            let a = crate::gen::random_block_sparse(n, n, bs, d, crate::BlockOrder::RowMajor, seed);
            let b = crate::gen::random_block_sparse(
                n,
                n,
                bs,
                d,
                crate::BlockOrder::RowMajor,
                1000 + seed,
            );
            total += crate::spgemm::symbolic(&a, &b).block_pairs as f64;
        }
        let avg = total / trials as f64;
        let want = spgemm_expected_pairs(n, bs, d);
        let rel = (avg - want).abs() / want;
        assert!(rel < 0.15, "avg {avg} vs expected {want}");
    }

    #[test]
    fn expected_output_blocks_bracket_reality() {
        let (n, bs, d) = (128usize, 16usize, 0.3);
        let a = crate::gen::random_block_sparse(n, n, bs, d, crate::BlockOrder::RowMajor, 3);
        let b = crate::gen::random_block_sparse(n, n, bs, d, crate::BlockOrder::RowMajor, 4);
        let sym = crate::spgemm::symbolic(&a, &b);
        let want = spgemm_expected_output_blocks(n, bs, d);
        let got = sym.nnz_blocks() as f64;
        assert!(
            (got - want).abs() / want < 0.35,
            "got {got} expected {want}"
        );
    }

    #[test]
    fn spgemm_volume_and_cycles_scale_sensibly() {
        let dev = gh200();
        let prm =
            kami_core::model::cycles::ModelParams::from_device(&dev, Precision::Fp16).unwrap();
        let (n, bs, p) = (128usize, 16usize, 4usize);
        // 2D moves both operands: exactly twice the per-operand volume
        // at matched group counts; 1D moves one.
        let v1 = spgemm_expected_volume(Algo::OneD, n, bs, 0.5, p, prm.s_e);
        let v2 = spgemm_expected_volume(Algo::TwoD, n, bs, 0.5, p, prm.s_e);
        assert!(v1 > 0.0 && v2 > 0.0);
        // Denser operands cost more, everywhere.
        for algo in [Algo::OneD, Algo::TwoD, Algo::ThreeD] {
            let lo = spgemm_expected_volume(algo, n, bs, 0.2, p, prm.s_e);
            let hi = spgemm_expected_volume(algo, n, bs, 0.8, p, prm.s_e);
            assert!(hi > lo, "{}", algo.label());
            let c_lo = spgemm_expected_cycles(algo, n, bs, 0.2, p, &prm);
            let c_hi = spgemm_expected_cycles(algo, n, bs, 0.8, p, &prm);
            assert!(c_hi > c_lo, "{}", algo.label());
        }
        // d = 0: only metadata remains of the volume.
        let empty = spgemm_expected_volume(Algo::OneD, n, bs, 0.0, p, prm.s_e);
        assert_eq!(empty, metadata_bytes((n / bs) as f64, 0.0) * p as f64);
        // At d = 1 SpGEMM compute equals the dense n³ GEMM's.
        assert_eq!(spgemm_expected_flops(n, bs, 1.0), 2.0 * (n * n * n) as f64);
    }

    #[test]
    fn spgemm_cycle_estimate_tracks_simulator() {
        let dev = gh200();
        let prec = Precision::Fp16;
        let prm = kami_core::model::cycles::ModelParams::from_device(&dev, prec).unwrap();
        let (n, bs, d, p) = (128usize, 16usize, 0.5, 4usize);
        let a = crate::gen::random_block_sparse(n, n, bs, d, crate::BlockOrder::RowMajor, 21);
        let b = crate::gen::random_block_sparse(n, n, bs, d, crate::BlockOrder::RowMajor, 22);
        let cfg = KamiConfig::new(Algo::OneD, prec).with_warps(p);
        let res = crate::spgemm::spgemm(&dev, &cfg, &a, &b).unwrap();
        let est = spgemm_expected_cycles(Algo::OneD, n, bs, d, p, &prm);
        let measured = res.report.on_chip_cycles();
        let ratio = measured / est;
        assert!(
            (0.2..=5.0).contains(&ratio),
            "measured {measured} vs estimate {est}"
        );
    }

    #[test]
    fn spmm_cycle_estimate_tracks_simulator() {
        let dev = gh200();
        let prec = Precision::Fp16;
        let prm = kami_core::model::cycles::ModelParams::from_device(&dev, prec).unwrap();
        let (n, bs, d, p) = (128usize, 16usize, 0.5, 4usize);
        let a = crate::gen::random_block_sparse(n, n, bs, d, crate::BlockOrder::RowMajor, 11);
        let b = Matrix::seeded_uniform(n, n, 12);
        let cfg = KamiConfig::new(Algo::OneD, prec).with_warps(p);
        let res = crate::spmm::spmm(&dev, &cfg, &a, &b).unwrap();
        let est = spmm_expected_cycles(Algo::OneD, n, n, n, bs, d, p, &prm);
        let measured = res.report.on_chip_cycles();
        let ratio = measured / est;
        assert!(
            (0.5..=2.5).contains(&ratio),
            "measured {measured} vs estimate {est}"
        );
    }
}
