//! Communication-avoiding SpMM (paper §4.6): sparse `A` (block storage),
//! dense `B`, dense `C`, with the same 1D/2D/3D warp organisation and
//! stage structure as the dense schemes — following the block compute
//! pattern of Koanantakool et al.: every nonzero block of `A_i`
//! identifies the corresponding rows of `B`, multiplies on tensor cores,
//! and accumulates into `C_i`.
//!
//! Zero blocks of `A` are skipped entirely (fewer MMAs); the index arrays
//! (`RowPtr`/`ColBlkIdx`) travel through shared memory alongside values
//! whenever `A` itself is communicated (2D/3D).

use crate::bsr::BlockSparseMatrix;
use kami_core::config::{Algo, KamiConfig};
use kami_core::error::KamiError;
use kami_core::layout::{cube_pos, grid_pos, tile_bytes, SmemMap};
use kami_gpu_sim::{
    BlockKernel, DeviceSpec, Engine, ExecutionReport, GlobalMemory, Matrix, Precision, WarpProgram,
};
use rayon::prelude::*;

/// Result of a block-level SpMM.
#[derive(Debug, Clone)]
pub struct SpmmResult {
    /// Dense product `C = A·B`.
    pub c: Matrix,
    pub report: ExecutionReport,
    /// Useful flops: `2·bs²·n_cols_of_B` per nonzero block of A.
    pub useful_flops: u64,
}

impl SpmmResult {
    pub fn block_tflops(&self, device: &DeviceSpec) -> f64 {
        self.report.block_tflops(device, self.useful_flops)
    }
}

fn validate(
    cfg: &KamiConfig,
    a: &BlockSparseMatrix,
    b: &Matrix,
    device: &DeviceSpec,
) -> Result<usize, KamiError> {
    if a.cols() != b.rows() {
        return Err(KamiError::ShapeMismatch {
            detail: format!(
                "A is {}x{} but B is {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    let q = cfg.algo.grid_extent(cfg.warps)?;
    let bs = a.block_size();
    let (rb, cb) = (a.rows_blk(), a.cols_blk());
    let n = b.cols();
    let bad = |detail: String| Err(KamiError::Indivisible { detail });
    match cfg.algo {
        Algo::OneD => {
            if rb % q != 0 || cb % q != 0 {
                return bad(format!(
                    "1D SpMM with p={q} needs p | {rb} block rows and p | {cb} block cols"
                ));
            }
        }
        Algo::TwoD => {
            if rb % q != 0 || cb % q != 0 || !n.is_multiple_of(q) {
                return bad(format!(
                    "2D SpMM with √p={q} needs √p | block grid {rb}x{cb} and √p | n={n}"
                ));
            }
        }
        Algo::ThreeD => {
            if rb % q != 0 || cb % (q * q) != 0 || !n.is_multiple_of(q) {
                return bad(format!(
                    "3D SpMM with ∛p={q} needs ∛p | {rb} block rows, ∛p² | {cb} block cols, ∛p | n={n}"
                ));
            }
        }
    }
    if device.peak_tflops(cfg.precision).is_none() {
        return Err(KamiError::Unsupported {
            detail: format!(
                "{} has no tensor path for {}",
                device.name,
                cfg.precision.label()
            ),
        });
    }
    let _ = bs;
    Ok(q)
}

/// Load a warp's owned A blocks into per-block fragments; returns
/// `(block_row, block_col, frag)` triples.
fn load_a_blocks(
    w: &mut WarpProgram,
    blocks: &[(usize, usize, &Matrix)],
    a_buf: kami_gpu_sim::BufferId,
    bs: usize,
    prec: Precision,
) -> Vec<(usize, usize, usize)> {
    blocks
        .iter()
        .map(|&(br, bc, _)| {
            let f = w.frag(format!("A({br},{bc})"), bs, bs, prec);
            w.global_load(f, a_buf, br * bs, bc * bs);
            (br, bc, f)
        })
        .collect()
}

/// Run one block-level SpMM on the simulator.
pub fn spmm(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &BlockSparseMatrix,
    b: &Matrix,
) -> Result<SpmmResult, KamiError> {
    let q = validate(cfg, a, b, device)?;
    let bs = a.block_size();
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let prec = cfg.precision;
    let c_prec = prec;

    let a_dense = a.to_dense();
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", &a_dense, prec);
    let bb = gmem.upload("B", b, prec);
    let cb = gmem.alloc_zeroed("C", m, n, c_prec);

    let kernel = match cfg.algo {
        Algo::OneD => build_1d(cfg, a, ab, bb, cb, bs, m, n, k, c_prec),
        Algo::TwoD => build_2d(cfg, q, a, ab, bb, cb, bs, m, n, k, c_prec),
        Algo::ThreeD => build_3d(cfg, q, a, ab, bb, cb, bs, m, n, k, c_prec),
    };
    let report = Engine::with_cost(device, cfg.cost.clone())
        .run_kernel(
            &kernel,
            &mut gmem,
            &kami_gpu_sim::RunOptions::default().with_backend(cfg.backend),
        )?
        .report;
    let useful_flops = 2 * (bs * bs * n) as u64 * a.nnz_blocks() as u64;
    Ok(SpmmResult {
        c: gmem.download(cb),
        report,
        useful_flops,
    })
}

/// 1D: warp `i` owns a slab of block rows of A and the matching C rows;
/// B row-slabs broadcast exactly as in dense KAMI-1D. A is never
/// communicated (its metadata stays warp-local).
#[allow(clippy::too_many_arguments)]
fn build_1d(
    cfg: &KamiConfig,
    a: &BlockSparseMatrix,
    ab: kami_gpu_sim::BufferId,
    bb: kami_gpu_sim::BufferId,
    cbuf: kami_gpu_sim::BufferId,
    bs: usize,
    _m: usize,
    n: usize,
    k: usize,
    c_prec: Precision,
) -> BlockKernel {
    let p = cfg.warps;
    let prec = cfg.precision;
    let rb = a.rows_blk();
    let rows_per_warp = rb / p;
    let ki = k / p; // dense stage slab height
    let map = SmemMap::new(0, 0, 1, tile_bytes(ki, n, prec), 0);

    BlockKernel::spmd(p, |i, w| {
        let owned = a.window(i * rows_per_warp, rows_per_warp, 0, a.cols_blk());
        let a_frags = load_a_blocks(w, &owned, ab, bs, prec);
        let b_own = w.frag("Bi", ki, n, prec);
        w.global_load(b_own, bb, i * ki, 0);
        let b_recv = w.frag("BRecv", ki, n, prec);
        let c_frags: Vec<usize> = (0..rows_per_warp)
            .map(|r| {
                let f = w.frag(format!("Ci[{r}]"), bs, n, c_prec);
                w.zero_acc(f);
                f
            })
            .collect();

        for z in 0..p {
            if i == z {
                w.shared_store(b_own, map.b_addr(0));
                w.reg_copy(b_recv, b_own);
            }
            w.barrier();
            if i != z {
                w.shared_load(b_recv, map.b_addr(0));
            }
            w.barrier();
            // Multiply every owned A block whose column chunk belongs to
            // this stage's B slab (ColBlkIdx traversal).
            for &(br, bc, f) in &a_frags {
                let col_elem = bc * bs;
                if col_elem >= z * ki && col_elem < (z + 1) * ki {
                    let local_row = br - i * rows_per_warp;
                    w.mma_b_rows(c_frags[local_row], f, b_recv, col_elem - z * ki, bs);
                }
            }
        }
        for (r, &f) in c_frags.iter().enumerate() {
            w.global_store(f, cbuf, (i * rows_per_warp + r) * bs, 0);
        }
    })
}

/// 2D: A quadrants broadcast along grid rows (values + index metadata),
/// dense B tiles along grid columns.
#[allow(clippy::too_many_arguments)]
fn build_2d(
    cfg: &KamiConfig,
    q: usize,
    a: &BlockSparseMatrix,
    ab: kami_gpu_sim::BufferId,
    bb: kami_gpu_sim::BufferId,
    cbuf: kami_gpu_sim::BufferId,
    bs: usize,
    _m: usize,
    n: usize,
    k: usize,
    c_prec: Precision,
) -> BlockKernel {
    let prec = cfg.precision;
    let rb = a.rows_blk();
    let cb_a = a.cols_blk();
    let (rbq, cbq) = (rb / q, cb_a / q); // A quadrant extent in blocks
    let (ni, ki) = (n / q, k / q);
    let block_bytes = tile_bytes(bs, bs, prec);
    // A broadcast region per grid row: worst-case quadrant + metadata.
    let a_region = cbq * rbq * block_bytes + BlockSparseMatrix::metadata_bytes(rbq, rbq * cbq);
    let map = SmemMap::new(q, a_region, q, tile_bytes(ki, ni, prec), 0);

    BlockKernel::spmd(cfg.warps, |i, w| {
        let (r, c) = grid_pos(i, q);
        let owned = a.window(r * rbq, rbq, c * cbq, cbq);
        let a_frags = load_a_blocks(w, &owned, ab, bs, prec);
        let b_own = w.frag("Bi", ki, ni, prec);
        w.global_load(b_own, bb, r * ki, c * ni);
        let b_recv = w.frag("BRecv", ki, ni, prec);
        let a_stage = w.frag("AStage", bs, bs, prec);
        let c_frags: Vec<usize> = (0..rbq)
            .map(|rr| {
                let f = w.frag(format!("Ci[{rr}]"), bs, ni, c_prec);
                w.zero_acc(f);
                f
            })
            .collect();

        for z in 0..q {
            let send_a = c == z;
            let send_b = r == z;
            // The blocks of A quadrant (r, z), in storage order — known to
            // every warp after the metadata transfer.
            let stage_blocks = a.window(r * rbq, rbq, z * cbq, cbq);
            if send_a {
                let meta = BlockSparseMatrix::metadata_bytes(rbq, stage_blocks.len());
                w.meta_store(map.a_addr(r), meta);
                for (bi, &(_, _, _)) in stage_blocks.iter().enumerate() {
                    let f = a_frags[bi].2; // own quadrant: same order
                    w.shared_store(f, map.a_addr(r) + meta + bi * block_bytes);
                }
            }
            if send_b {
                w.shared_store(b_own, map.b_addr(c));
                w.reg_copy(b_recv, b_own);
            }
            w.barrier();
            if !send_b {
                w.shared_load(b_recv, map.b_addr(c));
            }
            if !send_a {
                let meta = BlockSparseMatrix::metadata_bytes(rbq, stage_blocks.len());
                w.meta_load(map.a_addr(r), meta);
            }
            w.barrier();
            for (bi, &(br, bc, _)) in stage_blocks.iter().enumerate() {
                let local_row = br - r * rbq;
                let b_off = bc * bs - z * ki;
                if send_a {
                    // Sender multiplies straight from its registers.
                    w.mma_b_rows(c_frags[local_row], a_frags[bi].2, b_recv, b_off, bs);
                } else {
                    let meta = BlockSparseMatrix::metadata_bytes(rbq, stage_blocks.len());
                    w.shared_load(a_stage, map.a_addr(r) + meta + bi * block_bytes);
                    w.mma_b_rows(c_frags[local_row], a_stage, b_recv, b_off, bs);
                }
            }
            // Third barrier: the compute phase reads shared memory (staged
            // A blocks), so the next stage's senders must not overwrite
            // the broadcast regions until everyone is done.
            w.barrier();
        }
        for (rr, &f) in c_frags.iter().enumerate() {
            w.global_store(f, cbuf, (r * rbq + rr) * bs, c * ni);
        }
    })
}

/// 3D: ∛p layer grids, layer `l` handling the `l`-th block-column chunk
/// of A (and row chunk of B); cross-layer reduction into global C.
#[allow(clippy::too_many_arguments)]
fn build_3d(
    cfg: &KamiConfig,
    q: usize,
    a: &BlockSparseMatrix,
    ab: kami_gpu_sim::BufferId,
    bb: kami_gpu_sim::BufferId,
    cbuf: kami_gpu_sim::BufferId,
    bs: usize,
    _m: usize,
    n: usize,
    k: usize,
    c_prec: Precision,
) -> BlockKernel {
    let prec = cfg.precision;
    let rb = a.rows_blk();
    let cb_a = a.cols_blk();
    let rbq = rb / q;
    let cbs = cb_a / (q * q); // shard extent in block cols
    let ni = n / q;
    let ks = k / (q * q);
    let block_bytes = tile_bytes(bs, bs, prec);
    let a_region = rbq * cbs * block_bytes + BlockSparseMatrix::metadata_bytes(rbq, rbq * cbs);
    let map = SmemMap::new(q * q, a_region, q * q, tile_bytes(ks, ni, prec), 0);

    BlockKernel::spmd(cfg.warps, |i, w| {
        let (l, r, c) = cube_pos(i, q);
        let col0 = |cc: usize| l * (cb_a / q) + cc * cbs; // shard block-col origin
        let owned = a.window(r * rbq, rbq, col0(c), cbs);
        let a_frags = load_a_blocks(w, &owned, ab, bs, prec);
        let b_own = w.frag("Bi", ks, ni, prec);
        w.global_load(b_own, bb, l * (k / q) + r * ks, c * ni);
        let b_recv = w.frag("BRecv", ks, ni, prec);
        let a_stage = w.frag("AStage", bs, bs, prec);
        let c_frags: Vec<usize> = (0..rbq)
            .map(|rr| {
                let f = w.frag(format!("Ci[{rr}]"), bs, ni, c_prec);
                w.zero_acc(f);
                f
            })
            .collect();

        let a_reg_id = l * q + r;
        let b_reg_id = l * q + c;
        for z in 0..q {
            let send_a = c == z;
            let send_b = r == z;
            let stage_blocks = a.window(r * rbq, rbq, col0(z), cbs);
            let meta = BlockSparseMatrix::metadata_bytes(rbq, stage_blocks.len());
            if send_a {
                w.meta_store(map.a_addr(a_reg_id), meta);
                for (bi, _) in stage_blocks.iter().enumerate() {
                    w.shared_store(
                        a_frags[bi].2,
                        map.a_addr(a_reg_id) + meta + bi * block_bytes,
                    );
                }
            }
            if send_b {
                w.shared_store(b_own, map.b_addr(b_reg_id));
                w.reg_copy(b_recv, b_own);
            }
            w.barrier();
            if !send_b {
                w.shared_load(b_recv, map.b_addr(b_reg_id));
            }
            if !send_a {
                w.meta_load(map.a_addr(a_reg_id), meta);
            }
            w.barrier();
            for (bi, &(br, bc, _)) in stage_blocks.iter().enumerate() {
                let local_row = br - r * rbq;
                let b_off = bc * bs - (l * (k / q) + z * ks);
                if send_a {
                    w.mma_b_rows(c_frags[local_row], a_frags[bi].2, b_recv, b_off, bs);
                } else {
                    w.shared_load(a_stage, map.a_addr(a_reg_id) + meta + bi * block_bytes);
                    w.mma_b_rows(c_frags[local_row], a_stage, b_recv, b_off, bs);
                }
            }
            // Third barrier: the compute phase reads shared memory (staged
            // A blocks), so the next stage's senders must not overwrite
            // the broadcast regions until everyone is done.
            w.barrier();
        }
        for (rr, &f) in c_frags.iter().enumerate() {
            w.global_accumulate(f, cbuf, (r * rbq + rr) * bs, c * ni);
        }
    })
}

/// Result of a batched SpMM.
#[derive(Debug, Clone)]
pub struct SpmmBatchedResult {
    /// Per-entry dense products, in input order.
    pub outputs: Vec<Matrix>,
    /// Modelled device cycles for the whole batch (LPT block schedule —
    /// sparse entries differ in cost even at equal dimensions).
    pub total_cycles: f64,
    /// Useful flops over the batch.
    pub useful_flops: u64,
}

impl SpmmBatchedResult {
    pub fn tflops(&self, device: &DeviceSpec) -> f64 {
        self.useful_flops as f64 / (self.total_cycles / device.clock_hz()) / 1e12
    }
}

/// Run a batch of independent SpMMs (e.g. the per-head masked products
/// of block-sparse attention). Entries may have different sparsity
/// patterns; each runs as one block, scheduled across SMs by
/// longest-processing-time first.
pub fn spmm_batched(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    entries: &[(BlockSparseMatrix, Matrix)],
) -> Result<SpmmBatchedResult, KamiError> {
    if entries.is_empty() {
        return Err(KamiError::ShapeMismatch {
            detail: "empty batch".into(),
        });
    }
    let results: Vec<Result<SpmmResult, KamiError>> = entries
        .par_iter()
        .map(|(a, b)| spmm(device, cfg, a, b))
        .collect();
    let mut outputs = Vec::with_capacity(entries.len());
    let mut cycles = Vec::with_capacity(entries.len());
    let mut useful = 0u64;
    for r in results {
        let r = r?;
        useful += r.useful_flops;
        cycles.push(r.report.cycles);
        outputs.push(r.c);
    }
    Ok(SpmmBatchedResult {
        outputs,
        total_cycles: kami_core::lpt_makespan(&cycles, device.num_sms as usize),
        useful_flops: useful,
    })
}

/// Dense reference for SpMM (quantized, accumulator-ordered like the
/// dense reference; column-chunk accumulation order differs from the
/// kernel's sparse traversal, so compare with a tolerance).
pub fn reference_spmm(a: &BlockSparseMatrix, b: &Matrix, prec: Precision) -> Matrix {
    kami_core::reference::reference_gemm(&a.to_dense(), b, prec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsr::BlockOrder;
    use crate::gen::random_block_sparse;
    use kami_gpu_sim::device::gh200;

    fn check(algo: Algo, warps: usize, n: usize, density: f64, order: BlockOrder) {
        let dev = gh200();
        let prec = Precision::Fp16;
        let cfg = KamiConfig::new(algo, prec).with_warps(warps);
        let a = random_block_sparse(n, n, 16, density, order, 5);
        let b = Matrix::seeded_uniform(n, n, 6);
        let res = spmm(&dev, &cfg, &a, &b).unwrap();
        let want = reference_spmm(&a, &b, prec);
        let err = res.c.rel_frobenius_error(&want);
        assert!(err < 5e-3, "{} err {err}", algo.label());
    }

    #[test]
    fn spmm_1d_correct() {
        check(Algo::OneD, 4, 64, 0.5, BlockOrder::RowMajor);
    }

    #[test]
    fn spmm_2d_correct() {
        check(Algo::TwoD, 4, 64, 0.5, BlockOrder::ZMorton);
    }

    #[test]
    fn spmm_3d_correct() {
        check(Algo::ThreeD, 8, 128, 0.5, BlockOrder::ZMorton);
    }

    #[test]
    fn fully_dense_and_fully_sparse_edges() {
        check(Algo::OneD, 4, 64, 1.0, BlockOrder::RowMajor);
        // Fully sparse: C must be exactly zero.
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let a = random_block_sparse(64, 64, 16, 0.0, BlockOrder::RowMajor, 1);
        let b = Matrix::seeded_uniform(64, 64, 2);
        let res = spmm(&dev, &cfg, &a, &b).unwrap();
        assert_eq!(res.c.frobenius_norm(), 0.0);
        assert_eq!(res.useful_flops, 0);
    }

    #[test]
    fn sparsity_halves_flops() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let b = Matrix::seeded_uniform(64, 64, 2);
        let dense = random_block_sparse(64, 64, 16, 1.0, BlockOrder::RowMajor, 1);
        let half = random_block_sparse(64, 64, 16, 0.5, BlockOrder::RowMajor, 1);
        let rd = spmm(&dev, &cfg, &dense, &b).unwrap();
        let rh = spmm(&dev, &cfg, &half, &b).unwrap();
        assert_eq!(rh.useful_flops * 2, rd.useful_flops);
        assert!(rh.report.flops_charged < rd.report.flops_charged);
    }

    #[test]
    fn sparse_2d_transfers_metadata() {
        let dev = gh200();
        let prec = Precision::Fp16;
        let a = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 5);
        let b = Matrix::seeded_uniform(64, 64, 6);
        let r2 = spmm(&dev, &KamiConfig::new(Algo::TwoD, prec), &a, &b).unwrap();
        let r1 = spmm(&dev, &KamiConfig::new(Algo::OneD, prec), &a, &b).unwrap();
        // 2D communicates A (values + metadata); 1D does not.
        assert!(r2.comm_meta_exceeds(&r1));
    }

    impl SpmmResult {
        /// Test helper: 2D/3D transfer A values + metadata on top of B.
        fn comm_meta_exceeds(&self, other: &SpmmResult) -> bool {
            self.report.smem_bytes_written > 0
                && other.report.smem_bytes_written > 0
                && self.report.comm_volume() != other.report.comm_volume()
        }
    }

    #[test]
    fn batched_spmm_matches_per_entry_runs() {
        let dev = gh200();
        let prec = Precision::Fp16;
        let cfg = KamiConfig::new(Algo::OneD, prec);
        let entries: Vec<_> = (0..4)
            .map(|i| {
                (
                    random_block_sparse(
                        64,
                        64,
                        16,
                        0.25 + 0.15 * i as f64,
                        BlockOrder::RowMajor,
                        60 + i as u64,
                    ),
                    Matrix::seeded_uniform(64, 64, 70 + i as u64),
                )
            })
            .collect();
        let batch = spmm_batched(&dev, &cfg, &entries).unwrap();
        assert_eq!(batch.outputs.len(), 4);
        let mut max_single: f64 = 0.0;
        for (i, (a, b)) in entries.iter().enumerate() {
            let single = spmm(&dev, &cfg, a, b).unwrap();
            assert_eq!(batch.outputs[i].max_abs_diff(&single.c), 0.0, "entry {i}");
            max_single = max_single.max(single.report.cycles);
        }
        // Few entries, many SMs: makespan = the heaviest entry.
        assert!((batch.total_cycles - max_single).abs() < 1e-9);
        assert!(batch.tflops(&dev) > 0.0);
    }

    #[test]
    fn batched_spmm_rejects_empty() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        assert!(spmm_batched(&dev, &cfg, &[]).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let a = random_block_sparse(64, 32, 16, 0.5, BlockOrder::RowMajor, 1);
        let b = Matrix::zeros(64, 64);
        assert!(matches!(
            spmm(&dev, &cfg, &a, &b),
            Err(KamiError::ShapeMismatch { .. })
        ));
    }
}
