//! Seeded random block-sparse matrix generators — the synthetic
//! workloads of the paper's sparse evaluation (§5.5: five matrices with
//! 50% random sparsity at the square-GEMM orders).

use crate::bsr::{BlockOrder, BlockSparseMatrix};
use kami_gpu_sim::Matrix;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Random block-sparse `rows×cols` matrix with exactly
/// `round(density · total_blocks)` nonzero blocks (dense values in
/// `[-1, 1)`), deterministic in `seed`.
pub fn random_block_sparse(
    rows: usize,
    cols: usize,
    block: usize,
    density: f64,
    order: BlockOrder,
    seed: u64,
) -> BlockSparseMatrix {
    assert!((0.0..=1.0).contains(&density), "density must be in [0,1]");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let (rb, cb) = (rows / block, cols / block);
    let total = rb * cb;
    let keep = ((total as f64) * density).round() as usize;
    let mut all: Vec<(usize, usize)> = (0..rb).flat_map(|r| (0..cb).map(move |c| (r, c))).collect();
    all.shuffle(&mut rng);
    let entries = all
        .into_iter()
        .take(keep)
        .map(|rc| {
            let tile = Matrix::from_fn(block, block, |_, _| rng.gen_range(-1.0..1.0));
            (rc, tile)
        })
        .collect();
    BlockSparseMatrix::from_blocks(rows, cols, block, order, entries)
}

/// The paper's §5.5 workload: 50% block density at the square orders.
pub fn paper_sparse_workload(
    n: usize,
    block: usize,
    order: BlockOrder,
    seed: u64,
) -> BlockSparseMatrix {
    random_block_sparse(n, n, block, 0.5, order, seed)
}

/// Power-law row-block skew: block row `i` of the `nb×nb` grid keeps
/// `max(1, round(nb · (i+1)^-alpha))` blocks at random columns — the
/// scale-free degree distribution of graph adjacency and recommender
/// matrices, and the adversarial case for quantized tile-per-CTA
/// scheduling (a few block rows carry most of the nonzero k-iterations).
/// Deterministic in `seed`.
pub fn power_law_block_sparse(
    n: usize,
    block: usize,
    alpha: f64,
    order: BlockOrder,
    seed: u64,
) -> BlockSparseMatrix {
    assert!(alpha >= 0.0, "alpha must be non-negative");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let nb = n / block;
    let mut entries = Vec::new();
    for r in 0..nb {
        let target = ((nb as f64) * ((r + 1) as f64).powf(-alpha)).round() as usize;
        let keep = target.clamp(1, nb);
        let mut cols: Vec<usize> = (0..nb).collect();
        cols.shuffle(&mut rng);
        for &c in cols.iter().take(keep) {
            let tile = Matrix::from_fn(block, block, |_, _| rng.gen_range(-1.0..1.0));
            entries.push(((r, c), tile));
        }
    }
    BlockSparseMatrix::from_blocks(n, n, block, order, entries)
}

/// Structured sparsity patterns of the workloads §3.1 motivates —
/// block-sparse attention masks, banded solvers, arrowhead systems.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Block band of half-width `w` (|block_row − block_col| ≤ w) —
    /// the local window of sliding-window attention and banded solvers.
    Banded { half_width: usize },
    /// Block diagonal (independent subproblems / batched physics).
    BlockDiagonal,
    /// Banded window plus dense first block row and column — the
    /// local + global token mask of Longformer-style attention.
    AttentionLocalGlobal { half_width: usize },
    /// Banded window plus every `stride`-th block column — the strided
    /// pattern of BigBird-style attention.
    AttentionStrided { half_width: usize, stride: usize },
    /// Arrowhead: diagonal plus dense last block row and column
    /// (domain-decomposition Schur complements).
    Arrowhead,
}

impl Pattern {
    /// Whether block `(r, c)` of an `nb×nb` grid is kept.
    pub fn keeps(&self, r: usize, c: usize, nb: usize) -> bool {
        match *self {
            Pattern::Banded { half_width } => r.abs_diff(c) <= half_width,
            Pattern::BlockDiagonal => r == c,
            Pattern::AttentionLocalGlobal { half_width } => {
                r.abs_diff(c) <= half_width || r == 0 || c == 0
            }
            Pattern::AttentionStrided { half_width, stride } => {
                r.abs_diff(c) <= half_width || c.is_multiple_of(stride.max(1))
            }
            Pattern::Arrowhead => r == c || r == nb - 1 || c == nb - 1,
        }
    }
}

/// Build an `n×n` block-sparse matrix with a structured [`Pattern`] and
/// seeded random values in the kept blocks.
pub fn patterned_block_sparse(
    n: usize,
    block: usize,
    pattern: Pattern,
    order: BlockOrder,
    seed: u64,
) -> BlockSparseMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let nb = n / block;
    let mut entries = Vec::new();
    for r in 0..nb {
        for c in 0..nb {
            if pattern.keeps(r, c, nb) {
                let tile = Matrix::from_fn(block, block, |_, _| rng.gen_range(-1.0..1.0));
                entries.push(((r, c), tile));
            }
        }
    }
    BlockSparseMatrix::from_blocks(n, n, block, order, entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_is_exact() {
        let s = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 1);
        assert_eq!(s.nnz_blocks(), 8); // 16 blocks * 0.5
        let s = random_block_sparse(64, 64, 16, 1.0, BlockOrder::RowMajor, 1);
        assert_eq!(s.nnz_blocks(), 16);
        let s = random_block_sparse(64, 64, 16, 0.0, BlockOrder::RowMajor, 1);
        assert_eq!(s.nnz_blocks(), 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let a = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 7);
        let b = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 7);
        let c = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 8);
        assert_eq!(a.to_dense().max_abs_diff(&b.to_dense()), 0.0);
        assert!(c.to_dense().max_abs_diff(&a.to_dense()) > 0.0);
    }

    #[test]
    fn power_law_rows_decay_and_are_deterministic() {
        let a = power_law_block_sparse(1024, 16, 1.2, BlockOrder::RowMajor, 42);
        let nb = 1024 / 16;
        assert_eq!(a.rows_blk(), nb);
        // Row 0 is (near-)dense, the tail thins to the 1-block floor.
        assert_eq!(a.row_blocks(0).count(), nb);
        assert_eq!(a.row_blocks(nb - 1).count(), 1);
        let counts: Vec<usize> = (0..nb).map(|r| a.row_blocks(r).count()).collect();
        assert!(
            counts.windows(2).all(|w| w[0] >= w[1]),
            "non-monotone decay"
        );
        let total: usize = counts.iter().sum();
        assert!(total < nb * nb / 4, "alpha=1.2 should be sparse overall");
        let b = power_law_block_sparse(1024, 16, 1.2, BlockOrder::RowMajor, 42);
        assert_eq!(a.to_dense().max_abs_diff(&b.to_dense()), 0.0);
        // alpha = 0 degenerates to fully dense.
        let dense = power_law_block_sparse(64, 16, 0.0, BlockOrder::ZMorton, 1);
        assert_eq!(dense.nnz_blocks(), 16);
    }

    #[test]
    fn patterns_keep_the_right_blocks() {
        let nb = 8;
        // Banded width 1: tridiagonal block pattern.
        let p = Pattern::Banded { half_width: 1 };
        assert!(p.keeps(3, 3, nb) && p.keeps(3, 4, nb) && p.keeps(4, 3, nb));
        assert!(!p.keeps(0, 2, nb));
        // Local+global: first row/col always kept.
        let p = Pattern::AttentionLocalGlobal { half_width: 1 };
        assert!(p.keeps(0, 7, nb) && p.keeps(7, 0, nb));
        assert!(!p.keeps(2, 6, nb));
        // Strided: every 4th column.
        let p = Pattern::AttentionStrided {
            half_width: 0,
            stride: 4,
        };
        assert!(p.keeps(6, 4, nb) && p.keeps(1, 0, nb));
        assert!(!p.keeps(6, 3, nb));
        // Arrowhead.
        let p = Pattern::Arrowhead;
        assert!(p.keeps(7, 2, nb) && p.keeps(2, 7, nb) && p.keeps(3, 3, nb));
        assert!(!p.keeps(2, 3, nb));
    }

    #[test]
    fn patterned_matrices_build_and_multiply() {
        let dev = kami_gpu_sim::device::gh200();
        let cfg = kami_core::KamiConfig::new(kami_core::Algo::OneD, kami_gpu_sim::Precision::Fp16);
        let b = Matrix::seeded_uniform(64, 64, 2);
        for pattern in [
            Pattern::Banded { half_width: 1 },
            Pattern::BlockDiagonal,
            Pattern::AttentionLocalGlobal { half_width: 1 },
            Pattern::Arrowhead,
        ] {
            let a = patterned_block_sparse(64, 16, pattern, BlockOrder::ZMorton, 5);
            let res = crate::spmm::spmm(&dev, &cfg, &a, &b).unwrap();
            let want = kami_core::reference::reference_gemm_f64(&a.to_dense(), &b);
            assert!(res.c.rel_frobenius_error(&want) < 1e-2, "{pattern:?}");
        }
    }

    #[test]
    fn block_diagonal_density() {
        let a = patterned_block_sparse(128, 16, Pattern::BlockDiagonal, BlockOrder::RowMajor, 1);
        assert_eq!(a.nnz_blocks(), 8);
    }

    #[test]
    fn values_bounded() {
        let s = random_block_sparse(32, 32, 16, 1.0, BlockOrder::RowMajor, 3);
        for (_, _, m) in s.iter_blocks() {
            assert!(m.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
        }
    }
}
