//! Matrix Market (`.mtx`) I/O for block-sparse matrices — the standard
//! interchange format of the sparse-matrix community (SuiteSparse etc.),
//! so real matrices can be fed to the SpMM/SpGEMM kernels.
//!
//! Supported: `matrix coordinate real|integer|pattern general|symmetric`.
//! Pattern entries get value 1.0; symmetric matrices are expanded. The
//! element matrix is padded up to a multiple of the block size and
//! converted through [`BlockSparseMatrix::from_dense`] block filtering.

use crate::bsr::{BlockOrder, BlockSparseMatrix};
use kami_gpu_sim::Matrix;

/// Parse error with a line number where applicable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MtxError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for MtxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix market parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for MtxError {}

fn err(line: usize, message: impl Into<String>) -> MtxError {
    MtxError {
        line,
        message: message.into(),
    }
}

/// Parse MatrixMarket coordinate text into a dense [`Matrix`]
/// (zero-filled). Dimensions are returned as stored (no padding).
pub fn parse_mtx_dense(text: &str) -> Result<Matrix, MtxError> {
    let mut lines = text.lines().enumerate();

    // Header.
    let (hline, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    let header = header.to_ascii_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 4 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(err(
            hline + 1,
            "expected '%%MatrixMarket matrix ...' header",
        ));
    }
    if fields[2] != "coordinate" {
        return Err(err(
            hline + 1,
            format!("unsupported format '{}'", fields[2]),
        ));
    }
    let value_kind = fields[3];
    if !matches!(value_kind, "real" | "integer" | "pattern") {
        return Err(err(hline + 1, format!("unsupported field '{value_kind}'")));
    }
    let symmetry = fields.get(4).copied().unwrap_or("general");
    if !matches!(symmetry, "general" | "symmetric") {
        return Err(err(hline + 1, format!("unsupported symmetry '{symmetry}'")));
    }

    // Size line (skipping comments).
    let mut size_line = None;
    for (i, l) in lines.by_ref() {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        size_line = Some((i, t.to_string()));
        break;
    }
    let (sl, size_text) = size_line.ok_or_else(|| err(0, "missing size line"))?;
    let dims: Vec<usize> = size_text
        .split_whitespace()
        .map(|t| t.parse().map_err(|_| err(sl + 1, "bad size entry")))
        .collect::<Result<_, _>>()?;
    let [rows, cols, nnz] = dims[..] else {
        return Err(err(sl + 1, "size line needs 'rows cols nnz'"));
    };

    let mut m = Matrix::zeros(rows, cols);
    let mut seen = 0usize;
    for (i, l) in lines {
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let need = if value_kind == "pattern" { 2 } else { 3 };
        if parts.len() < need {
            return Err(err(i + 1, format!("entry needs {need} fields")));
        }
        let r: usize = parts[0].parse().map_err(|_| err(i + 1, "bad row index"))?;
        let c: usize = parts[1].parse().map_err(|_| err(i + 1, "bad col index"))?;
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(err(i + 1, format!("index ({r},{c}) out of {rows}x{cols}")));
        }
        let v: f64 = if value_kind == "pattern" {
            1.0
        } else {
            parts[2].parse().map_err(|_| err(i + 1, "bad value"))?
        };
        m.set(r - 1, c - 1, v);
        if symmetry == "symmetric" && r != c {
            m.set(c - 1, r - 1, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(err(0, format!("expected {nnz} entries, found {seen}")));
    }
    Ok(m)
}

/// Parse MatrixMarket text straight into block-sparse storage: the
/// element matrix is zero-padded up to a multiple of `block`, then
/// blocks containing any nonzero are kept.
pub fn parse_mtx(
    text: &str,
    block: usize,
    order: BlockOrder,
) -> Result<BlockSparseMatrix, MtxError> {
    if block == 0 {
        return Err(err(0, "block size must be nonzero"));
    }
    let dense = parse_mtx_dense(text)?;
    let rows = dense.rows().div_ceil(block) * block;
    let cols = dense.cols().div_ceil(block) * block;
    let mut padded = Matrix::zeros(rows, cols);
    padded.set_submatrix(0, 0, &dense);
    BlockSparseMatrix::try_from_dense(&padded, block, order, 0.0).map_err(|e| err(0, e.to_string()))
}

/// Serialize a block-sparse matrix as MatrixMarket coordinate text
/// (`real general`, element granularity, zeros inside stored blocks
/// omitted).
pub fn write_mtx(m: &BlockSparseMatrix) -> String {
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    let bs = m.block_size();
    for (br, bc, tile) in m.iter_blocks() {
        for r in 0..bs {
            for c in 0..bs {
                let v = tile.get(r, c);
                if v != 0.0 {
                    entries.push((br * bs + r + 1, bc * bs + c + 1, v));
                }
            }
        }
    }
    entries.sort_unstable_by_key(|&(r, c, _)| (r, c));
    let mut out = String::from("%%MatrixMarket matrix coordinate real general\n");
    out.push_str(&format!(
        "% written by kami-sparse ({} blocks of {bs})\n",
        m.nnz_blocks()
    ));
    out.push_str(&format!("{} {} {}\n", m.rows(), m.cols(), entries.len()));
    for (r, c, v) in entries {
        out.push_str(&format!("{r} {c} {v:.17e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
%%MatrixMarket matrix coordinate real general
% a comment
4 4 5
1 1 2.0
2 2 -1.5
3 1 4.0
4 4 0.25
1 4 7.0
";

    #[test]
    fn parse_general_real() {
        let m = parse_mtx_dense(SAMPLE).unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(m[(0, 0)], 2.0);
        assert_eq!(m[(1, 1)], -1.5);
        assert_eq!(m[(2, 0)], 4.0);
        assert_eq!(m[(0, 3)], 7.0);
        assert_eq!(m[(3, 0)], 0.0);
    }

    #[test]
    fn parse_symmetric_expands() {
        let text = "\
%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 5.0
3 3 1.0
";
        let m = parse_mtx_dense(text).unwrap();
        assert_eq!(m[(1, 0)], 5.0);
        assert_eq!(m[(0, 1)], 5.0);
        assert_eq!(m[(2, 2)], 1.0);
    }

    #[test]
    fn parse_pattern_gives_ones() {
        let text = "\
%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
";
        let m = parse_mtx_dense(text).unwrap();
        assert_eq!(m[(0, 1)], 1.0);
        assert_eq!(m[(1, 0)], 1.0);
    }

    #[test]
    fn blockify_pads_to_block_multiple() {
        let s = parse_mtx(SAMPLE, 16, BlockOrder::ZMorton).unwrap();
        assert_eq!(s.rows(), 16);
        assert_eq!(s.cols(), 16);
        assert_eq!(s.nnz_blocks(), 1); // everything in block (0,0)
        assert_eq!(s.to_dense()[(0, 3)], 7.0);
    }

    #[test]
    fn roundtrip_through_mtx() {
        let a = crate::gen::random_block_sparse(64, 64, 16, 0.4, BlockOrder::RowMajor, 21);
        let text = write_mtx(&a);
        let back = parse_mtx(&text, 16, BlockOrder::RowMajor).unwrap();
        assert_eq!(back.to_dense().max_abs_diff(&a.to_dense()), 0.0);
    }

    #[test]
    fn parse_errors_are_located() {
        assert!(parse_mtx_dense("").is_err());
        assert!(parse_mtx_dense("%%MatrixMarket matrix array real general\n2 2\n").is_err());
        let bad_index = "\
%%MatrixMarket matrix coordinate real general
2 2 1
3 1 1.0
";
        let e = parse_mtx_dense(bad_index).unwrap_err();
        assert_eq!(e.line, 3);
        let bad_count = "\
%%MatrixMarket matrix coordinate real general
2 2 2
1 1 1.0
";
        assert!(parse_mtx_dense(bad_count).is_err());
    }

    #[test]
    fn parsed_matrix_multiplies() {
        // End to end: parse -> SpMM -> compare with dense reference.
        let a = parse_mtx(SAMPLE, 16, BlockOrder::RowMajor).unwrap();
        let b = Matrix::seeded_uniform(16, 16, 33);
        let dev = kami_gpu_sim::device::gh200();
        let cfg = kami_core::KamiConfig::new(kami_core::Algo::OneD, Precision::Fp16).with_warps(1);
        use kami_gpu_sim::Precision;
        let res = crate::spmm::spmm(&dev, &cfg, &a, &b).unwrap();
        let want = kami_core::reference::reference_gemm_f64(&a.to_dense(), &b);
        assert!(res.c.rel_frobenius_error(&want) < 1e-2);
    }
}
