//! Block-sparse matrix storage (paper §4.6, Fig 7).
//!
//! Nonzeros are kept in dense square blocks of user-configurable size
//! (default 16×16, aligned with the tensor-core shapes of Table 4). Two
//! physical layouts:
//!
//! * [`BlockOrder::RowMajor`] — blocks row by row with a CSR-style
//!   `RowPtr`/`ColBlkIdx` (Fig 7(a)), used by the 1D algorithm;
//! * [`BlockOrder::ZMorton`] — blocks sorted by Z-Morton code
//!   (Fig 7(b)), so any aligned quadrant is a contiguous slice — the
//!   submatrix indexing the 2D/3D algorithms rely on.

use crate::error::SparseError;
use crate::morton;
use kami_gpu_sim::Matrix;
use serde::{Deserialize, Serialize};

/// Default block size: 16 aligns with every Table 4 MMA shape.
pub const DEFAULT_BLOCK: usize = 16;

/// Physical order of the block array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockOrder {
    RowMajor,
    ZMorton,
}

/// A sparse matrix stored as dense blocks.
#[derive(Debug, Clone)]
pub struct BlockSparseMatrix {
    /// Element dimensions.
    rows: usize,
    cols: usize,
    /// Square block edge.
    block: usize,
    order: BlockOrder,
    /// Block coordinates `(block_row, block_col)` in physical order.
    coords: Vec<(usize, usize)>,
    /// Dense block payloads, parallel to `coords`.
    blocks: Vec<Matrix>,
    /// CSR row pointer over *block rows* (always maintained; for
    /// `ZMorton` it indexes a row-major shadow used by row traversals).
    rowptr: Vec<usize>,
    /// Column indices in row-major order, parallel to `row_major_perm`.
    colidx: Vec<usize>,
    /// Permutation mapping row-major position -> physical position.
    row_major_perm: Vec<usize>,
}

impl BlockSparseMatrix {
    /// Build from an explicit list of blocks. Coordinates must be
    /// unique. Panics on malformed structure; see
    /// [`BlockSparseMatrix::try_from_blocks`] for the fallible variant.
    pub fn from_blocks(
        rows: usize,
        cols: usize,
        block: usize,
        order: BlockOrder,
        entries: Vec<((usize, usize), Matrix)>,
    ) -> Self {
        Self::try_from_blocks(rows, cols, block, order, entries).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build from an explicit list of blocks, rejecting malformed
    /// structure (misaligned dimensions, out-of-range or duplicate
    /// coordinates, wrong payload shapes) with a typed [`SparseError`].
    pub fn try_from_blocks(
        rows: usize,
        cols: usize,
        block: usize,
        order: BlockOrder,
        mut entries: Vec<((usize, usize), Matrix)>,
    ) -> Result<Self, SparseError> {
        if block == 0 || !rows.is_multiple_of(block) || !cols.is_multiple_of(block) {
            return Err(SparseError::Misaligned { rows, cols, block });
        }
        for ((br, bc), m) in &entries {
            if *br >= rows / block || *bc >= cols / block {
                return Err(SparseError::BlockOutOfRange {
                    block_row: *br,
                    block_col: *bc,
                    rows_blk: rows / block,
                    cols_blk: cols / block,
                });
            }
            if (m.rows(), m.cols()) != (block, block) {
                return Err(SparseError::BlockShape {
                    got_rows: m.rows(),
                    got_cols: m.cols(),
                    block,
                });
            }
        }
        // Physical sort.
        match order {
            BlockOrder::RowMajor => entries.sort_by_key(|((r, c), _)| (*r, *c)),
            BlockOrder::ZMorton => entries.sort_by_key(|((r, c), _)| morton::encode(*r, *c)),
        }
        let coords: Vec<_> = entries.iter().map(|(rc, _)| *rc).collect();
        {
            let mut sorted = coords.clone();
            sorted.sort_unstable();
            if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
                return Err(SparseError::DuplicateBlock {
                    block_row: w[0].0,
                    block_col: w[0].1,
                });
            }
        }
        let blocks: Vec<_> = entries.into_iter().map(|(_, m)| m).collect();

        // Row-major shadow index.
        let rows_blk = rows / block;
        let mut perm: Vec<usize> = (0..coords.len()).collect();
        perm.sort_by_key(|&i| (coords[i].0, coords[i].1));
        let mut rowptr = vec![0usize; rows_blk + 1];
        for &i in &perm {
            rowptr[coords[i].0 + 1] += 1;
        }
        for r in 0..rows_blk {
            rowptr[r + 1] += rowptr[r];
        }
        let colidx = perm.iter().map(|&i| coords[i].1).collect();

        Ok(BlockSparseMatrix {
            rows,
            cols,
            block,
            order,
            coords,
            blocks,
            rowptr,
            colidx,
            row_major_perm: perm,
        })
    }

    /// Convert a dense matrix, keeping blocks with any element whose
    /// magnitude exceeds `threshold` (0.0 keeps any nonzero block).
    /// Panics on misaligned dimensions; see
    /// [`BlockSparseMatrix::try_from_dense`].
    pub fn from_dense(dense: &Matrix, block: usize, order: BlockOrder, threshold: f64) -> Self {
        Self::try_from_dense(dense, block, order, threshold).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`BlockSparseMatrix::from_dense`].
    pub fn try_from_dense(
        dense: &Matrix,
        block: usize,
        order: BlockOrder,
        threshold: f64,
    ) -> Result<Self, SparseError> {
        let (rows, cols) = (dense.rows(), dense.cols());
        if block == 0 || !rows.is_multiple_of(block) || !cols.is_multiple_of(block) {
            return Err(SparseError::Misaligned { rows, cols, block });
        }
        let mut entries = Vec::new();
        for br in 0..rows / block {
            for bc in 0..cols / block {
                let tile = dense.submatrix(br * block, bc * block, block, block);
                if tile.as_slice().iter().any(|&x| x.abs() > threshold) {
                    entries.push(((br, bc), tile));
                }
            }
        }
        Self::try_from_blocks(rows, cols, block, order, entries)
    }

    /// Densify.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for (&(br, bc), m) in self.coords.iter().zip(&self.blocks) {
            out.set_submatrix(br * self.block, bc * self.block, m);
        }
        out
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn block_size(&self) -> usize {
        self.block
    }

    pub fn order(&self) -> BlockOrder {
        self.order
    }

    pub fn rows_blk(&self) -> usize {
        self.rows / self.block
    }

    pub fn cols_blk(&self) -> usize {
        self.cols / self.block
    }

    /// Number of stored (nonzero) blocks.
    pub fn nnz_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Fraction of blocks stored.
    pub fn block_density(&self) -> f64 {
        self.nnz_blocks() as f64 / (self.rows_blk() * self.cols_blk()) as f64
    }

    /// Iterate `(block_row, block_col, payload)` in physical order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (usize, usize, &Matrix)> {
        self.coords
            .iter()
            .zip(&self.blocks)
            .map(|(&(r, c), m)| (r, c, m))
    }

    /// Blocks of one block-row, `(block_col, payload)`, ascending column
    /// (uses the CSR shadow — O(row nnz)).
    pub fn row_blocks(&self, block_row: usize) -> impl Iterator<Item = (usize, &Matrix)> {
        let lo = self.rowptr[block_row];
        let hi = self.rowptr[block_row + 1];
        (lo..hi).map(move |i| (self.colidx[i], &self.blocks[self.row_major_perm[i]]))
    }

    /// Look up a single block.
    pub fn block_at(&self, block_row: usize, block_col: usize) -> Option<&Matrix> {
        self.row_blocks(block_row)
            .find(|&(c, _)| c == block_col)
            .map(|(_, m)| m)
    }

    /// Blocks inside the aligned quadrant
    /// `[row0, row0+extent) × [col0, col0+extent)` (block coordinates).
    ///
    /// In `ZMorton` order the quadrant is one contiguous physical slice
    /// (resolved with two binary searches); in `RowMajor` order it
    /// requires a scan over `extent` row segments. This asymmetry is the
    /// point of Fig 7(b).
    pub fn quadrant(
        &self,
        row0: usize,
        col0: usize,
        extent: usize,
    ) -> Vec<(usize, usize, &Matrix)> {
        match self.order {
            BlockOrder::ZMorton
                if extent.is_power_of_two()
                    && row0.is_multiple_of(extent)
                    && col0.is_multiple_of(extent) =>
            {
                let (lo, hi) = morton::quadrant_range(row0, col0, extent);
                let start = self
                    .coords
                    .partition_point(|&(r, c)| morton::encode(r, c) < lo);
                let end = self
                    .coords
                    .partition_point(|&(r, c)| morton::encode(r, c) < hi);
                (start..end)
                    .map(|i| (self.coords[i].0, self.coords[i].1, &self.blocks[i]))
                    .collect()
            }
            _ => {
                let mut out = Vec::new();
                for r in row0..(row0 + extent).min(self.rows_blk()) {
                    for (c, m) in self.row_blocks(r) {
                        if (col0..col0 + extent).contains(&c) {
                            out.push((r, c, m));
                        }
                    }
                }
                out
            }
        }
    }

    /// Blocks inside an arbitrary block-coordinate window
    /// `[row0, row0+nrows) × [col0, col0+ncols)`, sorted by (row, col) —
    /// the partition query the CA algorithms use. Delegates to the
    /// contiguous Morton slice when the window is an aligned power-of-two
    /// quadrant, otherwise scans the CSR shadow.
    pub fn window(
        &self,
        row0: usize,
        nrows: usize,
        col0: usize,
        ncols: usize,
    ) -> Vec<(usize, usize, &Matrix)> {
        if nrows == ncols
            && nrows.is_power_of_two()
            && row0.is_multiple_of(nrows)
            && col0.is_multiple_of(ncols)
            && self.order == BlockOrder::ZMorton
        {
            let mut q = self.quadrant(row0, col0, nrows);
            q.sort_by_key(|&(r, c, _)| (r, c));
            return q;
        }
        let mut out = Vec::new();
        for r in row0..(row0 + nrows).min(self.rows_blk()) {
            for (c, m) in self.row_blocks(r) {
                if (col0..col0 + ncols).contains(&c) {
                    out.push((r, c, m));
                }
            }
        }
        out
    }

    /// Bytes of index metadata (`RowPtr` + `ColBlkIdx`, 4-byte entries)
    /// describing `nblocks` blocks of `nrows` block rows — what the
    /// sparse kernels transfer through shared memory alongside values
    /// (§4.6).
    pub fn metadata_bytes(nrows: usize, nblocks: usize) -> usize {
        4 * (nrows + 1) + 4 * nblocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_from_blocks_rejects_bad_structure() {
        let blk = Matrix::zeros(4, 4);
        let out = BlockSparseMatrix::try_from_blocks(15, 16, 4, BlockOrder::RowMajor, vec![]);
        assert_eq!(
            out.unwrap_err(),
            SparseError::Misaligned {
                rows: 15,
                cols: 16,
                block: 4
            }
        );
        let out = BlockSparseMatrix::try_from_blocks(
            16,
            16,
            4,
            BlockOrder::RowMajor,
            vec![((4, 0), blk.clone())],
        );
        assert!(matches!(
            out.unwrap_err(),
            SparseError::BlockOutOfRange { block_row: 4, .. }
        ));
        let out = BlockSparseMatrix::try_from_blocks(
            16,
            16,
            4,
            BlockOrder::RowMajor,
            vec![((0, 0), Matrix::zeros(2, 4))],
        );
        assert!(matches!(out.unwrap_err(), SparseError::BlockShape { .. }));
        let out = BlockSparseMatrix::try_from_blocks(
            16,
            16,
            4,
            BlockOrder::ZMorton,
            vec![((1, 2), blk.clone()), ((1, 2), blk)],
        );
        assert_eq!(
            out.unwrap_err(),
            SparseError::DuplicateBlock {
                block_row: 1,
                block_col: 2
            }
        );
    }

    fn sample(order: BlockOrder) -> BlockSparseMatrix {
        // 4x4 blocks of 4: diagonal + one off-diagonal.
        let mk = |v: f64| Matrix::from_fn(4, 4, |r, c| v + (r * 4 + c) as f64 * 0.1);
        BlockSparseMatrix::from_blocks(
            16,
            16,
            4,
            order,
            vec![
                ((0, 0), mk(1.0)),
                ((1, 1), mk(2.0)),
                ((2, 2), mk(3.0)),
                ((3, 3), mk(4.0)),
                ((0, 3), mk(5.0)),
                ((2, 0), mk(6.0)),
            ],
        )
    }

    #[test]
    fn dense_roundtrip_both_orders() {
        for order in [BlockOrder::RowMajor, BlockOrder::ZMorton] {
            let s = sample(order);
            let d = s.to_dense();
            let s2 = BlockSparseMatrix::from_dense(&d, 4, order, 0.0);
            assert_eq!(s2.nnz_blocks(), s.nnz_blocks());
            assert_eq!(s2.to_dense().max_abs_diff(&d), 0.0);
        }
    }

    #[test]
    fn row_blocks_ascending() {
        let s = sample(BlockOrder::ZMorton);
        let cols: Vec<_> = s.row_blocks(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 3]);
        let cols: Vec<_> = s.row_blocks(2).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![0, 2]);
        assert_eq!(s.row_blocks(1).count(), 1);
    }

    #[test]
    fn block_lookup() {
        let s = sample(BlockOrder::RowMajor);
        assert!(s.block_at(0, 3).is_some());
        assert!(s.block_at(0, 1).is_none());
        assert_eq!(s.block_at(3, 3).unwrap()[(0, 0)], 4.0);
    }

    #[test]
    fn quadrant_same_result_in_both_orders() {
        let sm = sample(BlockOrder::ZMorton);
        let sr = sample(BlockOrder::RowMajor);
        for (r0, c0) in [(0, 0), (0, 2), (2, 0), (2, 2)] {
            let mut a: Vec<_> = sm
                .quadrant(r0, c0, 2)
                .iter()
                .map(|&(r, c, _)| (r, c))
                .collect();
            let mut b: Vec<_> = sr
                .quadrant(r0, c0, 2)
                .iter()
                .map(|&(r, c, _)| (r, c))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "quadrant ({r0},{c0})");
        }
    }

    #[test]
    fn morton_storage_is_z_ordered() {
        let s = sample(BlockOrder::ZMorton);
        let codes: Vec<u64> = s
            .iter_blocks()
            .map(|(r, c, _)| morton::encode(r, c))
            .collect();
        assert!(codes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn density() {
        let s = sample(BlockOrder::RowMajor);
        assert_eq!(s.nnz_blocks(), 6);
        assert!((s.block_density() - 6.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_coordinates_rejected() {
        let m = Matrix::zeros(4, 4);
        BlockSparseMatrix::from_blocks(
            8,
            8,
            4,
            BlockOrder::RowMajor,
            vec![((0, 0), m.clone()), ((0, 0), m)],
        );
    }

    #[test]
    fn window_matches_bruteforce() {
        for order in [BlockOrder::RowMajor, BlockOrder::ZMorton] {
            let s = sample(order);
            for (r0, nr, c0, nc) in [(0, 2, 0, 2), (1, 3, 0, 4), (0, 4, 2, 2), (2, 2, 2, 2)] {
                let got: Vec<_> = s
                    .window(r0, nr, c0, nc)
                    .iter()
                    .map(|&(r, c, _)| (r, c))
                    .collect();
                let mut want = Vec::new();
                for (r, c, _) in s.iter_blocks() {
                    if (r0..r0 + nr).contains(&r) && (c0..c0 + nc).contains(&c) {
                        want.push((r, c));
                    }
                }
                want.sort_unstable();
                assert_eq!(got, want, "{order:?} window ({r0},{nr},{c0},{nc})");
            }
        }
    }

    #[test]
    fn metadata_bytes_formula() {
        assert_eq!(BlockSparseMatrix::metadata_bytes(4, 6), 4 * 5 + 4 * 6);
    }
}
