//! # kami-sparse
//!
//! Sparse extensions of KAMI (paper §4.6): block-sparse storage with
//! row-major and Z-Morton layouts (Fig 7), communication-avoiding SpMM,
//! and two-phase (symbolic + numeric) SpGEMM, all running on the same
//! simulated warp/tensor-core/shared-memory machinery as the dense
//! algorithms.
//!
//! ```
//! use kami_sparse::{gen, spmm::spmm, BlockOrder};
//! use kami_core::{Algo, KamiConfig};
//! use kami_gpu_sim::{device, Matrix, Precision};
//!
//! let dev = device::gh200();
//! let a = gen::random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 1);
//! let b = Matrix::seeded_uniform(64, 64, 2);
//! let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
//! let res = spmm(&dev, &cfg, &a, &b).unwrap();
//! assert!(res.useful_flops > 0);
//! ```

pub mod bsr;
pub mod error;
pub mod gen;
pub mod io;
pub mod model;
pub mod morton;
pub mod spgemm;
pub mod spmm;

pub use bsr::{BlockOrder, BlockSparseMatrix, DEFAULT_BLOCK};
pub use error::SparseError;
pub use gen::{patterned_block_sparse, power_law_block_sparse, random_block_sparse, Pattern};
pub use io::{parse_mtx, parse_mtx_dense, write_mtx, MtxError};
pub use spgemm::numeric::{spgemm_batched, SpgemmBatchedResult};
pub use spgemm::{spgemm, symbolic, SpgemmResult, SymbolicResult};
pub use spmm::{reference_spmm, spmm, spmm_batched, SpmmBatchedResult, SpmmResult};
