//! Numeric SpGEMM phase (paper §4.6): the CA compute pattern over
//! block-sparse A and B, accumulating C blocks in registers.
//!
//! The result-block accumulation follows Hong & Buluç's index-driven
//! scheme: the symbolic structure pre-assigns one register accumulator
//! per output block, and every `A(i,l)·B(l,j)` pair found by traversing
//! the (communicated) index arrays lands directly in its accumulator —
//! no hashing or sorting in the inner loop.

use crate::bsr::{BlockOrder, BlockSparseMatrix};
use crate::spgemm::symbolic::{symbolic, SymbolicResult};
use kami_core::config::{Algo, KamiConfig};
use kami_core::error::KamiError;
use kami_core::layout::{cube_pos, grid_pos, tile_bytes, SmemMap};
use kami_gpu_sim::{
    BlockKernel, BufferId, DeviceSpec, Engine, ExecutionReport, GlobalMemory, Matrix, Precision,
    WarpProgram,
};
use std::collections::HashMap;

/// Result of a block-level SpGEMM.
#[derive(Debug, Clone)]
pub struct SpgemmResult {
    /// Sparse product with the symbolic phase's structure.
    pub c: BlockSparseMatrix,
    pub report: ExecutionReport,
    /// Structure computed by the symbolic kernel.
    pub nnz_blocks: usize,
    /// Useful flops (`2·bs³` per block pair).
    pub useful_flops: u64,
}

impl SpgemmResult {
    pub fn block_tflops(&self, device: &DeviceSpec) -> f64 {
        self.report.block_tflops(device, self.useful_flops)
    }
}

fn validate(
    cfg: &KamiConfig,
    a: &BlockSparseMatrix,
    b: &BlockSparseMatrix,
    device: &DeviceSpec,
) -> Result<usize, KamiError> {
    if a.cols() != b.rows() || a.block_size() != b.block_size() {
        return Err(KamiError::ShapeMismatch {
            detail: format!(
                "A is {}x{} (block {}), B is {}x{} (block {})",
                a.rows(),
                a.cols(),
                a.block_size(),
                b.rows(),
                b.cols(),
                b.block_size()
            ),
        });
    }
    let q = cfg.algo.grid_extent(cfg.warps)?;
    let (rba, cba, cbb) = (a.rows_blk(), a.cols_blk(), b.cols_blk());
    let bad = |detail: String| Err(KamiError::Indivisible { detail });
    match cfg.algo {
        Algo::OneD => {
            if rba % q != 0 || cba % q != 0 {
                return bad(format!(
                    "1D SpGEMM with p={q} needs p | {rba} A block rows and p | {cba} B block rows"
                ));
            }
        }
        Algo::TwoD => {
            if rba % q != 0 || cba % q != 0 || cbb % q != 0 {
                return bad(format!(
                    "2D SpGEMM with √p={q} needs √p | block dims {rba}, {cba}, {cbb}"
                ));
            }
        }
        Algo::ThreeD => {
            if rba % q != 0 || cba % (q * q) != 0 || cbb % q != 0 {
                return bad(format!(
                    "3D SpGEMM with ∛p={q} needs ∛p | {rba}, ∛p² | {cba}, ∛p | {cbb}"
                ));
            }
        }
    }
    if device.peak_tflops(cfg.precision).is_none() {
        return Err(KamiError::Unsupported {
            detail: format!(
                "{} has no tensor path for {}",
                device.name,
                cfg.precision.label()
            ),
        });
    }
    Ok(q)
}

/// Run symbolic + numeric SpGEMM on the simulator.
pub fn spgemm(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &BlockSparseMatrix,
    b: &BlockSparseMatrix,
) -> Result<SpgemmResult, KamiError> {
    let q = validate(cfg, a, b, device)?;
    let sym = symbolic(a, b);
    let bs = a.block_size();
    let (m, n) = (a.rows(), b.cols());
    let prec = cfg.precision;

    let a_dense = a.to_dense();
    let b_dense = b.to_dense();
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", &a_dense, prec);
    let bb = gmem.upload("B", &b_dense, prec);
    let cb = gmem.alloc_zeroed("C", m, n, prec);

    let kernel = match cfg.algo {
        Algo::OneD => build_1d(cfg, a, b, &sym, ab, bb, cb),
        Algo::TwoD => build_2d(cfg, q, a, b, &sym, ab, bb, cb),
        Algo::ThreeD => build_3d(cfg, q, a, b, &sym, ab, bb, cb),
    };
    let report = Engine::with_cost(device, cfg.cost.clone())
        .run_kernel(
            &kernel,
            &mut gmem,
            &kami_gpu_sim::RunOptions::default().with_backend(cfg.backend),
        )?
        .report;

    // Assemble sparse C from the dense buffer along the symbolic pattern.
    let c_dense = gmem.download(cb);
    let mut entries = Vec::with_capacity(sym.nnz_blocks());
    for i in 0..sym.rows_blk {
        for &j in sym.row(i) {
            entries.push(((i, j), c_dense.submatrix(i * bs, j * bs, bs, bs)));
        }
    }
    let c = BlockSparseMatrix::from_blocks(m, n, bs, a.order(), entries);
    Ok(SpgemmResult {
        c,
        report,
        nnz_blocks: sym.nnz_blocks(),
        useful_flops: sym.useful_flops(bs),
    })
}

/// Declare and zero one register accumulator per C block this warp owns.
fn declare_c_accumulators(
    w: &mut WarpProgram,
    sym: &SymbolicResult,
    row_range: (usize, usize),
    col_range: (usize, usize),
    bs: usize,
    prec: Precision,
) -> HashMap<(usize, usize), usize> {
    let mut accs = HashMap::new();
    for i in row_range.0..row_range.1 {
        for &j in sym.row(i) {
            if (col_range.0..col_range.1).contains(&j) {
                let f = w.frag(format!("Cacc({i},{j})"), bs, bs, prec);
                w.zero_acc(f);
                accs.insert((i, j), f);
            }
        }
    }
    accs
}

/// 1D: warp `i` owns A's (and C's) block-row slab; B block-row slabs are
/// broadcast stage by stage (values + RowPtr/ColBlkIdx metadata).
fn build_1d(
    cfg: &KamiConfig,
    a: &BlockSparseMatrix,
    b: &BlockSparseMatrix,
    sym: &SymbolicResult,
    ab: BufferId,
    bb: BufferId,
    cbuf: BufferId,
) -> BlockKernel {
    let p = cfg.warps;
    let prec = cfg.precision;
    let bs = a.block_size();
    let rbqa = a.rows_blk() / p;
    let rbqb = b.rows_blk() / p;
    let block_bytes = tile_bytes(bs, bs, prec);
    // Broadcast region: worst-case B slab.
    let max_slab = (0..p)
        .map(|z| b.window(z * rbqb, rbqb, 0, b.cols_blk()).len())
        .max()
        .unwrap_or(0);
    let region = max_slab * block_bytes + BlockSparseMatrix::metadata_bytes(rbqb, max_slab);
    let map = SmemMap::new(0, 0, 1, region.max(1), 0);

    BlockKernel::spmd(p, |i, w| {
        // Own A blocks and C accumulators.
        let owned_a = a.window(i * rbqa, rbqa, 0, a.cols_blk());
        let a_frags: HashMap<(usize, usize), usize> = owned_a
            .iter()
            .map(|&(br, bc, _)| {
                let f = w.frag(format!("A({br},{bc})"), bs, bs, prec);
                w.global_load(f, ab, br * bs, bc * bs);
                ((br, bc), f)
            })
            .collect();
        let own_b = b.window(i * rbqb, rbqb, 0, b.cols_blk());
        let b_frags: Vec<((usize, usize), usize)> = own_b
            .iter()
            .map(|&(br, bc, _)| {
                let f = w.frag(format!("B({br},{bc})"), bs, bs, prec);
                w.global_load(f, bb, br * bs, bc * bs);
                ((br, bc), f)
            })
            .collect();
        let c_accs = declare_c_accumulators(
            w,
            sym,
            (i * rbqa, (i + 1) * rbqa),
            (0, sym.cols_blk),
            bs,
            prec,
        );

        for z in 0..p {
            let slab = b.window(z * rbqb, rbqb, 0, b.cols_blk());
            let meta = BlockSparseMatrix::metadata_bytes(rbqb, slab.len());
            if i == z {
                w.meta_store(map.b_addr(0), meta);
                for (bi, ((_, _), f)) in b_frags.iter().enumerate() {
                    w.shared_store(*f, map.b_addr(0) + meta + bi * block_bytes);
                }
            }
            w.barrier();
            // Receivers fetch only the B blocks their A pattern needs
            // (Hong–Buluç indexing through the received ColBlkIdx).
            let mut stage_b: HashMap<(usize, usize), usize> = HashMap::new();
            if i != z {
                w.meta_load(map.b_addr(0), meta);
                for (bi, &(br, bc, _)) in slab.iter().enumerate() {
                    // Fetch only blocks whose row matches some owned
                    // A-block column (sparsity-aware indexing).
                    let needed = owned_a.iter().any(|&(_, l, _)| l == br);
                    if needed {
                        let f = w.frag(format!("BStage{z}({br},{bc})"), bs, bs, prec);
                        w.shared_load(f, map.b_addr(0) + meta + bi * block_bytes);
                        stage_b.insert((br, bc), f);
                    }
                }
            } else {
                stage_b = b_frags.iter().copied().collect();
            }
            w.barrier();
            // Pair every owned A(i,l) with every received B(l,j).
            for &(br, l, _) in &owned_a {
                if l / rbqb != z {
                    continue;
                }
                for (j, _) in b.row_blocks(l) {
                    let af = a_frags[&(br, l)];
                    let bf = stage_b[&(l, j)];
                    let cf = c_accs[&(br, j)];
                    w.mma(cf, af, bf);
                }
            }
        }
        for (&(bi, j), &f) in &c_accs {
            w.global_store(f, cbuf, bi * bs, j * bs);
        }
    })
}

/// 2D: A quadrants broadcast along grid rows, B quadrants along grid
/// columns, both with their index metadata.
#[allow(clippy::too_many_arguments)]
fn build_2d(
    cfg: &KamiConfig,
    q: usize,
    a: &BlockSparseMatrix,
    b: &BlockSparseMatrix,
    sym: &SymbolicResult,
    ab: BufferId,
    bb: BufferId,
    cbuf: BufferId,
) -> BlockKernel {
    let prec = cfg.precision;
    let bs = a.block_size();
    let rbqa = a.rows_blk() / q;
    let cbqa = a.cols_blk() / q;
    let cbqb = b.cols_blk() / q;
    let block_bytes = tile_bytes(bs, bs, prec);
    let a_region = rbqa * cbqa * block_bytes + BlockSparseMatrix::metadata_bytes(rbqa, rbqa * cbqa);
    let b_region = cbqa * cbqb * block_bytes + BlockSparseMatrix::metadata_bytes(cbqa, cbqa * cbqb);
    let map = SmemMap::new(q, a_region, q, b_region, 0);

    BlockKernel::spmd(cfg.warps, |i, w| {
        let (r, c) = grid_pos(i, q);
        let owned_a = a.window(r * rbqa, rbqa, c * cbqa, cbqa);
        let a_frags: HashMap<(usize, usize), usize> = owned_a
            .iter()
            .map(|&(br, bc, _)| {
                let f = w.frag(format!("A({br},{bc})"), bs, bs, prec);
                w.global_load(f, ab, br * bs, bc * bs);
                ((br, bc), f)
            })
            .collect();
        let owned_b = b.window(r * cbqa, cbqa, c * cbqb, cbqb);
        let b_frags: Vec<((usize, usize), usize)> = owned_b
            .iter()
            .map(|&(br, bc, _)| {
                let f = w.frag(format!("B({br},{bc})"), bs, bs, prec);
                w.global_load(f, bb, br * bs, bc * bs);
                ((br, bc), f)
            })
            .collect();
        let c_accs = declare_c_accumulators(
            w,
            sym,
            (r * rbqa, (r + 1) * rbqa),
            (c * cbqb, (c + 1) * cbqb),
            bs,
            prec,
        );

        for z in 0..q {
            let send_a = c == z;
            let send_b = r == z;
            let stage_a = a.window(r * rbqa, rbqa, z * cbqa, cbqa);
            let stage_bw = b.window(z * cbqa, cbqa, c * cbqb, cbqb);
            let a_meta = BlockSparseMatrix::metadata_bytes(rbqa, stage_a.len());
            let b_meta = BlockSparseMatrix::metadata_bytes(cbqa, stage_bw.len());
            if send_a {
                w.meta_store(map.a_addr(r), a_meta);
                for (bi, &(br, bc, _)) in stage_a.iter().enumerate() {
                    w.shared_store(
                        a_frags[&(br, bc)],
                        map.a_addr(r) + a_meta + bi * block_bytes,
                    );
                }
            }
            if send_b {
                w.meta_store(map.b_addr(c), b_meta);
                for (bi, ((_, _), f)) in b_frags.iter().enumerate() {
                    w.shared_store(*f, map.b_addr(c) + b_meta + bi * block_bytes);
                }
            }
            w.barrier();
            let mut sa: HashMap<(usize, usize), usize> = HashMap::new();
            let mut sb: HashMap<(usize, usize), usize> = HashMap::new();
            if send_a {
                sa = stage_a
                    .iter()
                    .map(|&(br, bc, _)| ((br, bc), a_frags[&(br, bc)]))
                    .collect();
            } else {
                w.meta_load(map.a_addr(r), a_meta);
                for (bi, &(br, bc, _)) in stage_a.iter().enumerate() {
                    let f = w.frag(format!("AStage{z}({br},{bc})"), bs, bs, prec);
                    w.shared_load(f, map.a_addr(r) + a_meta + bi * block_bytes);
                    sa.insert((br, bc), f);
                }
            }
            if send_b {
                sb = b_frags.iter().copied().collect();
            } else {
                w.meta_load(map.b_addr(c), b_meta);
                for (bi, &(br, bc, _)) in stage_bw.iter().enumerate() {
                    let f = w.frag(format!("BStage{z}({br},{bc})"), bs, bs, prec);
                    w.shared_load(f, map.b_addr(c) + b_meta + bi * block_bytes);
                    sb.insert((br, bc), f);
                }
            }
            w.barrier();
            for &(br, l, _) in &stage_a {
                for &(lb, j, _) in &stage_bw {
                    if lb == l {
                        w.mma(c_accs[&(br, j)], sa[&(br, l)], sb[&(l, j)]);
                    }
                }
            }
        }
        for (&(bi, j), &f) in &c_accs {
            w.global_store(f, cbuf, bi * bs, j * bs);
        }
    })
}

/// 3D: ∛p layer grids over k-chunks, cross-layer reduction through
/// global-memory accumulation.
#[allow(clippy::too_many_arguments)]
fn build_3d(
    cfg: &KamiConfig,
    q: usize,
    a: &BlockSparseMatrix,
    b: &BlockSparseMatrix,
    sym: &SymbolicResult,
    ab: BufferId,
    bb: BufferId,
    cbuf: BufferId,
) -> BlockKernel {
    let prec = cfg.precision;
    let bs = a.block_size();
    let rbqa = a.rows_blk() / q;
    let cbsa = a.cols_blk() / (q * q); // A shard extent in block cols
    let cbqb = b.cols_blk() / q;
    let block_bytes = tile_bytes(bs, bs, prec);
    let a_region = rbqa * cbsa * block_bytes + BlockSparseMatrix::metadata_bytes(rbqa, rbqa * cbsa);
    let b_region = cbsa * cbqb * block_bytes + BlockSparseMatrix::metadata_bytes(cbsa, cbsa * cbqb);
    let map = SmemMap::new(q * q, a_region, q * q, b_region, 0);

    BlockKernel::spmd(cfg.warps, |i, w| {
        let (l, r, c) = cube_pos(i, q);
        let acol0 = |cc: usize| l * (a.cols_blk() / q) + cc * cbsa;
        let owned_a = a.window(r * rbqa, rbqa, acol0(c), cbsa);
        let a_frags: HashMap<(usize, usize), usize> = owned_a
            .iter()
            .map(|&(br, bc, _)| {
                let f = w.frag(format!("A({br},{bc})"), bs, bs, prec);
                w.global_load(f, ab, br * bs, bc * bs);
                ((br, bc), f)
            })
            .collect();
        let owned_b = b.window(acol0(r), cbsa, c * cbqb, cbqb);
        let b_frags: Vec<((usize, usize), usize)> = owned_b
            .iter()
            .map(|&(br, bc, _)| {
                let f = w.frag(format!("B({br},{bc})"), bs, bs, prec);
                w.global_load(f, bb, br * bs, bc * bs);
                ((br, bc), f)
            })
            .collect();
        let c_accs = declare_c_accumulators(
            w,
            sym,
            (r * rbqa, (r + 1) * rbqa),
            (c * cbqb, (c + 1) * cbqb),
            bs,
            prec,
        );

        let a_reg_id = l * q + r;
        let b_reg_id = l * q + c;
        for z in 0..q {
            let send_a = c == z;
            let send_b = r == z;
            let stage_a = a.window(r * rbqa, rbqa, acol0(z), cbsa);
            let stage_bw = b.window(acol0(z), cbsa, c * cbqb, cbqb);
            let a_meta = BlockSparseMatrix::metadata_bytes(rbqa, stage_a.len());
            let b_meta = BlockSparseMatrix::metadata_bytes(cbsa, stage_bw.len());
            if send_a {
                w.meta_store(map.a_addr(a_reg_id), a_meta);
                for (bi, &(br, bc, _)) in stage_a.iter().enumerate() {
                    w.shared_store(
                        a_frags[&(br, bc)],
                        map.a_addr(a_reg_id) + a_meta + bi * block_bytes,
                    );
                }
            }
            if send_b {
                w.meta_store(map.b_addr(b_reg_id), b_meta);
                for (bi, ((_, _), f)) in b_frags.iter().enumerate() {
                    w.shared_store(*f, map.b_addr(b_reg_id) + b_meta + bi * block_bytes);
                }
            }
            w.barrier();
            let mut sa: HashMap<(usize, usize), usize> = HashMap::new();
            let mut sb: HashMap<(usize, usize), usize> = HashMap::new();
            if send_a {
                sa = stage_a
                    .iter()
                    .map(|&(br, bc, _)| ((br, bc), a_frags[&(br, bc)]))
                    .collect();
            } else {
                w.meta_load(map.a_addr(a_reg_id), a_meta);
                for (bi, &(br, bc, _)) in stage_a.iter().enumerate() {
                    let f = w.frag(format!("AStage{z}({br},{bc})"), bs, bs, prec);
                    w.shared_load(f, map.a_addr(a_reg_id) + a_meta + bi * block_bytes);
                    sa.insert((br, bc), f);
                }
            }
            if send_b {
                sb = b_frags.iter().copied().collect();
            } else {
                w.meta_load(map.b_addr(b_reg_id), b_meta);
                for (bi, &(br, bc, _)) in stage_bw.iter().enumerate() {
                    let f = w.frag(format!("BStage{z}({br},{bc})"), bs, bs, prec);
                    w.shared_load(f, map.b_addr(b_reg_id) + b_meta + bi * block_bytes);
                    sb.insert((br, bc), f);
                }
            }
            w.barrier();
            for &(br, lblk, _) in &stage_a {
                for &(lb, j, _) in &stage_bw {
                    if lb == lblk {
                        w.mma(c_accs[&(br, j)], sa[&(br, lblk)], sb[&(lblk, j)]);
                    }
                }
            }
        }
        for (&(bi, j), &f) in &c_accs {
            w.global_accumulate(f, cbuf, bi * bs, j * bs);
        }
    })
}

/// Result of a batched SpGEMM.
#[derive(Debug, Clone)]
pub struct SpgemmBatchedResult {
    pub outputs: Vec<BlockSparseMatrix>,
    /// LPT makespan over SMs (sparse entries differ in cost).
    pub total_cycles: f64,
    pub useful_flops: u64,
}

/// Run a batch of independent SpGEMMs (symbolic + numeric each),
/// LPT-scheduled across SMs.
pub fn spgemm_batched(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    entries: &[(BlockSparseMatrix, BlockSparseMatrix)],
) -> Result<SpgemmBatchedResult, KamiError> {
    use rayon::prelude::*;
    if entries.is_empty() {
        return Err(KamiError::ShapeMismatch {
            detail: "empty batch".into(),
        });
    }
    let results: Vec<Result<SpgemmResult, KamiError>> = entries
        .par_iter()
        .map(|(a, b)| spgemm(device, cfg, a, b))
        .collect();
    let mut outputs = Vec::with_capacity(entries.len());
    let mut cycles = Vec::with_capacity(entries.len());
    let mut useful = 0u64;
    for r in results {
        let r = r?;
        useful += r.useful_flops;
        cycles.push(r.report.cycles);
        outputs.push(r.c);
    }
    Ok(SpgemmBatchedResult {
        outputs,
        total_cycles: kami_core::lpt_makespan(&cycles, device.num_sms as usize),
        useful_flops: useful,
    })
}

/// Dense reference for SpGEMM correctness checks.
pub fn reference_spgemm_dense(
    a: &BlockSparseMatrix,
    b: &BlockSparseMatrix,
    prec: Precision,
) -> Matrix {
    kami_core::reference::reference_gemm(&a.to_dense(), &b.to_dense(), prec)
}

/// Convenience: keep ordering knob visible to benches.
pub fn with_order(m: &BlockSparseMatrix, order: BlockOrder) -> BlockSparseMatrix {
    BlockSparseMatrix::from_dense(&m.to_dense(), m.block_size(), order, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::random_block_sparse;
    use kami_gpu_sim::device::gh200;

    fn check(algo: Algo, warps: usize, n: usize, density: f64) {
        let dev = gh200();
        let prec = Precision::Fp16;
        let cfg = KamiConfig::new(algo, prec).with_warps(warps);
        let order = if algo == Algo::OneD {
            BlockOrder::RowMajor
        } else {
            BlockOrder::ZMorton
        };
        let a = random_block_sparse(n, n, 16, density, order, 13);
        let b = random_block_sparse(n, n, 16, density, order, 14);
        let res = spgemm(&dev, &cfg, &a, &b).unwrap();
        let want = reference_spgemm_dense(&a, &b, prec);
        let got = res.c.to_dense();
        let err = got.rel_frobenius_error(&want);
        assert!(err < 5e-3, "{} err {err}", algo.label());
    }

    #[test]
    fn spgemm_1d_correct() {
        check(Algo::OneD, 4, 64, 0.5);
    }

    #[test]
    fn spgemm_2d_correct() {
        check(Algo::TwoD, 4, 64, 0.5);
    }

    #[test]
    fn spgemm_3d_correct() {
        check(Algo::ThreeD, 8, 128, 0.5);
    }

    #[test]
    fn dense_density_matches_dense_gemm() {
        check(Algo::OneD, 4, 64, 1.0);
    }

    #[test]
    fn empty_product() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let a = random_block_sparse(64, 64, 16, 0.0, BlockOrder::RowMajor, 1);
        let b = random_block_sparse(64, 64, 16, 0.5, BlockOrder::RowMajor, 2);
        let res = spgemm(&dev, &cfg, &a, &b).unwrap();
        assert_eq!(res.nnz_blocks, 0);
        assert_eq!(res.useful_flops, 0);
        assert_eq!(res.c.nnz_blocks(), 0);
    }

    #[test]
    fn batched_spgemm_matches_per_entry() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let entries: Vec<_> = (0..3)
            .map(|i| {
                (
                    random_block_sparse(64, 64, 16, 0.5, BlockOrder::RowMajor, 80 + i as u64),
                    random_block_sparse(64, 64, 16, 0.5, BlockOrder::RowMajor, 90 + i as u64),
                )
            })
            .collect();
        let batch = spgemm_batched(&dev, &cfg, &entries).unwrap();
        assert_eq!(batch.outputs.len(), 3);
        for (i, (a, b)) in entries.iter().enumerate() {
            let single = spgemm(&dev, &cfg, a, b).unwrap();
            assert_eq!(
                batch.outputs[i]
                    .to_dense()
                    .max_abs_diff(&single.c.to_dense()),
                0.0,
                "entry {i}"
            );
        }
        assert!(batch.total_cycles > 0.0);
    }

    #[test]
    fn spgemm_charges_metadata_traffic() {
        let dev = gh200();
        let prec = Precision::Fp16;
        let a = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 13);
        let b = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 14);
        let r = spgemm(&dev, &KamiConfig::new(Algo::TwoD, prec), &a, &b).unwrap();
        // Communication must exceed the pure block values (metadata rides
        // along): blocks written = stage_a + stage_b unions <= nnz(A)+nnz(B).
        let value_bytes = ((a.nnz_blocks() + b.nnz_blocks()) * 16 * 16 * 2) as u64;
        assert!(r.report.smem_bytes_written > 0);
        assert!(
            r.report.smem_bytes_written <= value_bytes + 4096,
            "written {} vs values {}",
            r.report.smem_bytes_written,
            value_bytes
        );
        assert!(r.report.smem_bytes_written % 2 != 1); // sanity
    }
}
