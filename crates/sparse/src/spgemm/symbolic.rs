//! Symbolic SpGEMM phase (paper §4.6): compute the block structure of
//! `C = A·B` before any numeric work, using the classic sparse
//! accumulator (SPA) of Gilbert, Moler & Schreiber.
//!
//! For each block row `i` of A, the SPA marks every block column `j`
//! such that some `A(i,l)` meets a `B(l,j)`. The result sizes the numeric
//! phase's register accumulators and the C allocation.

use crate::bsr::BlockSparseMatrix;

/// Output of the symbolic phase.
#[derive(Debug, Clone)]
pub struct SymbolicResult {
    /// Block rows of C.
    pub rows_blk: usize,
    /// Block cols of C.
    pub cols_blk: usize,
    /// CSR row pointer over C's block rows.
    pub rowptr: Vec<usize>,
    /// Block column indices, ascending within each row.
    pub colidx: Vec<usize>,
    /// Number of block-pair multiplications the numeric phase will do
    /// (Σ over l of nnz(A(:,l))·nnz-pairs) — the "compressed" flop count.
    pub block_pairs: usize,
}

impl SymbolicResult {
    /// Nonzero blocks of C.
    pub fn nnz_blocks(&self) -> usize {
        self.colidx.len()
    }

    /// Block columns of C's block row `i`.
    pub fn row(&self, i: usize) -> &[usize] {
        &self.colidx[self.rowptr[i]..self.rowptr[i + 1]]
    }

    /// Useful flops of the numeric phase at block size `bs`:
    /// `2·bs³` per block pair.
    pub fn useful_flops(&self, bs: usize) -> u64 {
        2 * (bs * bs * bs) as u64 * self.block_pairs as u64
    }
}

/// Run the SPA over the block patterns of `a` and `b`.
///
/// Panics if the inner block dimensions disagree.
pub fn symbolic(a: &BlockSparseMatrix, b: &BlockSparseMatrix) -> SymbolicResult {
    assert_eq!(
        a.cols_blk(),
        b.rows_blk(),
        "inner block dimensions must agree"
    );
    assert_eq!(a.block_size(), b.block_size(), "block sizes must agree");
    let rows = a.rows_blk();
    let cols = b.cols_blk();
    let mut rowptr = Vec::with_capacity(rows + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::new();
    let mut block_pairs = 0usize;

    // SPA: a dense marker array reused across rows (ages avoid
    // clearing), and one scratch column list reused across rows — a
    // fresh Vec per row re-grows from zero capacity every iteration,
    // which on a dense-collision row (every column hit) reallocates
    // O(log cols) times per row for no reason.
    let mut mark = vec![usize::MAX; cols];
    let mut row_cols: Vec<usize> = Vec::new();
    for i in 0..rows {
        row_cols.clear();
        for (l, _) in a.row_blocks(i) {
            for (j, _) in b.row_blocks(l) {
                block_pairs += 1;
                if mark[j] != i {
                    mark[j] = i;
                    row_cols.push(j);
                }
            }
        }
        row_cols.sort_unstable();
        colidx.extend_from_slice(&row_cols);
        rowptr.push(colidx.len());
    }

    SymbolicResult {
        rows_blk: rows,
        cols_blk: cols,
        rowptr,
        colidx,
        block_pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bsr::BlockOrder;
    use crate::gen::random_block_sparse;
    use kami_gpu_sim::Matrix;

    fn diag(n_blocks: usize, bs: usize) -> BlockSparseMatrix {
        let entries = (0..n_blocks)
            .map(|i| ((i, i), Matrix::identity(bs)))
            .collect();
        BlockSparseMatrix::from_blocks(
            n_blocks * bs,
            n_blocks * bs,
            bs,
            BlockOrder::RowMajor,
            entries,
        )
    }

    #[test]
    fn diagonal_times_diagonal_is_diagonal() {
        let d = diag(4, 4);
        let s = symbolic(&d, &d);
        assert_eq!(s.nnz_blocks(), 4);
        assert_eq!(s.block_pairs, 4);
        for i in 0..4 {
            assert_eq!(s.row(i), &[i]);
        }
        assert_eq!(s.useful_flops(4), 4 * 2 * 64);
    }

    #[test]
    fn structure_matches_dense_pattern_product() {
        let a = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 1);
        let b = random_block_sparse(64, 64, 16, 0.5, BlockOrder::ZMorton, 2);
        let s = symbolic(&a, &b);
        // Brute-force pattern product.
        for i in 0..4 {
            for j in 0..4 {
                let want = (0..4).any(|l| a.block_at(i, l).is_some() && b.block_at(l, j).is_some());
                let got = s.row(i).contains(&j);
                assert_eq!(got, want, "block ({i},{j})");
            }
        }
    }

    #[test]
    fn empty_inputs_give_empty_structure() {
        let a = random_block_sparse(64, 64, 16, 0.0, BlockOrder::RowMajor, 1);
        let b = random_block_sparse(64, 64, 16, 0.5, BlockOrder::RowMajor, 2);
        let s = symbolic(&a, &b);
        assert_eq!(s.nnz_blocks(), 0);
        assert_eq!(s.block_pairs, 0);
    }

    #[test]
    fn colidx_sorted_within_rows() {
        let a = random_block_sparse(128, 128, 16, 0.6, BlockOrder::ZMorton, 3);
        let b = random_block_sparse(128, 128, 16, 0.6, BlockOrder::ZMorton, 4);
        let s = symbolic(&a, &b);
        for i in 0..s.rows_blk {
            let r = s.row(i);
            assert!(r.windows(2).all(|w| w[0] < w[1]), "row {i} unsorted");
        }
    }

    #[test]
    fn empty_output_rows_are_well_formed() {
        // A has an empty block row (row 1 stores nothing): C's row 1
        // must be empty with consistent rowptr, not skipped or aliased.
        let bs = 16;
        let entries = vec![
            ((0usize, 0usize), Matrix::identity(bs)),
            ((2, 1), Matrix::identity(bs)),
            ((3, 3), Matrix::identity(bs)),
        ];
        let a = BlockSparseMatrix::from_blocks(64, 64, bs, BlockOrder::RowMajor, entries);
        let b = random_block_sparse(64, 64, bs, 0.5, BlockOrder::RowMajor, 11);
        let s = symbolic(&a, &b);
        assert_eq!(s.rowptr.len(), 5);
        assert!(s.rowptr.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*s.rowptr.last().unwrap(), s.colidx.len());
        assert!(s.row(1).is_empty(), "empty A row must give empty C row");
        // Rows that do store blocks may still be empty if B's matching
        // rows are — but never malformed.
        for i in 0..4 {
            assert!(s.row(i).iter().all(|&j| j < s.cols_blk));
        }
    }

    #[test]
    fn dense_collision_rows_dedup_to_full_width() {
        // Fully dense operands: every SPA insertion after the first per
        // column is a collision; each output row must dedup to exactly
        // nb sorted columns and block_pairs must count all nb³ pairs.
        let a = random_block_sparse(64, 64, 16, 1.0, BlockOrder::RowMajor, 1);
        let b = random_block_sparse(64, 64, 16, 1.0, BlockOrder::ZMorton, 2);
        let s = symbolic(&a, &b);
        let nb = 4;
        assert_eq!(s.nnz_blocks(), nb * nb);
        assert_eq!(s.block_pairs, nb * nb * nb);
        for i in 0..nb {
            let want: Vec<usize> = (0..nb).collect();
            assert_eq!(s.row(i), &want[..], "row {i} must be dense and sorted");
        }
    }

    #[test]
    #[should_panic(expected = "inner block dimensions")]
    fn dimension_mismatch_panics() {
        let a = random_block_sparse(64, 32, 16, 0.5, BlockOrder::RowMajor, 1);
        let b = random_block_sparse(64, 64, 16, 0.5, BlockOrder::RowMajor, 2);
        symbolic(&a, &b);
    }
}
