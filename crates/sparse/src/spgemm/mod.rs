//! Communication-avoiding SpGEMM (paper §4.6): all three matrices
//! block-sparse.
//!
//! Two phases, as in the paper:
//! 1. a **symbolic** phase ([`symbolic()`]) — a separate "kernel" that
//!    computes the nonzero-block structure of `C` with the classic sparse
//!    accumulator of Gilbert et al., sizing the output before numeric
//!    work;
//! 2. a **numeric** phase ([`numeric`]) — the 1D/2D/3D CA compute
//!    pattern, accumulating result blocks in registers with
//!    Hong–Buluç-style index-driven pairing of A and B blocks.

pub mod numeric;
pub mod symbolic;

pub use numeric::{spgemm, SpgemmResult};
pub use symbolic::{symbolic, SymbolicResult};
