//! # kami-serve
//!
//! An async batched GEMM *service* runtime over the simulated device:
//! multiple producer threads submit [`ServeRequest`]s — dense
//! 1D/2D/2.5D/3D products via the workspace-wide
//! [`GemmRequest`](kami_core::GemmRequest), batched and low-rank
//! variants, SpMM and SpGEMM — into a bounded admission queue and get
//! back [`Ticket`]s that resolve to [`Completed`] results.
//!
//! A dispatcher drains the queue in **ticks** on a simulated device
//! clock. Each tick coalesces compatible dense requests (same
//! `m×n×k` shape class, precision, and fused epilogue) into one
//! [`kami_sched`] work pool, so many small independent GEMMs share the
//! device the way one Stream-K launch would, instead of serializing
//! one kernel at a time.
//! Numerics are produced by the same engine entry points a direct
//! caller uses, so served results are **bit-identical** to unserved
//! ones.
//!
//! Service semantics:
//!
//! * **Sharded admission** — `submit` stripes over per-shard locked
//!   sub-queues (home shard by producer thread, failover to siblings),
//!   payloads move into `Arc`'d storage at admission, and tickets
//!   resolve through a lock-free one-shot cell, so neither admission
//!   nor completion contends on the dispatcher's state lock.
//! * **Backpressure** — the global admission bound is atomic;
//!   submissions beyond capacity bounce with
//!   [`ServeError::QueueFull`]. Parked-in-backoff retries are already
//!   admitted and exempt from the bound.
//! * **Deadlines** — each request may carry an *end-to-end* budget in
//!   simulated cycles, charged from admission across every retry; a
//!   missed deadline requeues with exponential backoff, and once
//!   retries are exhausted the request completes via a *degraded
//!   serial* replay rather than being dropped.
//! * **Graceful drain** — `shutdown()` stops admission,
//!   `shutdown_and_drain()` finishes everything already queued.
//! * **Observability** — per-request and per-tick metrics
//!   ([`Metrics`]), completion-latency percentiles via a fixed-bucket
//!   [`CycleHistogram`], a Prometheus text export, and an optional
//!   merged Chrome trace of every dispatched group on the service
//!   clock.
//! * **Fleet serving** — [`FleetServer`] routes requests across a
//!   heterogeneous fleet of replicas (the four Table 3 presets by
//!   default), using the shared plan/cost cache as a placement oracle
//!   and pinning numerics to one device class so placement never
//!   changes the bytes; see the [`fleet`] module docs.
//!
//! ```
//! use kami_serve::{Server, ServeRequest};
//! use kami_gpu_sim::{device, Matrix, Precision};
//!
//! let dev = device::gh200();
//! let server = Server::new(&dev);
//! let tickets: Vec<_> = (0..4)
//!     .map(|i| {
//!         let a = Matrix::seeded_uniform(64, 64, i);
//!         let b = Matrix::seeded_uniform(64, 64, i + 100);
//!         server.submit(ServeRequest::gemm(a, b, Precision::Fp16)).unwrap()
//!     })
//!     .collect();
//! server.shutdown_and_drain();
//! for t in tickets {
//!     let done = t.wait().unwrap();
//!     assert!(done.output.useful_flops() > 0);
//! }
//! ```

pub mod error;
pub mod fleet;
pub mod metrics;
pub mod request;
pub mod server;
pub mod ticket;

pub use error::ServeError;
pub use fleet::{
    DeviceClass, FleetConfig, FleetMetrics, FleetServer, FleetSpec, FleetTicket, Replica,
    ReplicaMetrics, RouteCandidate, RouteDecision, RouterStats, RoutingPolicy,
};
pub use metrics::{CycleHistogram, Metrics, TickRecord};
pub use request::{ServeOutput, ServeRequest, Workload};
pub use server::{Server, ServerConfig, TickSummary};
pub use ticket::{Completed, CompletionPath, Ticket};

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::{device::gh200, Matrix, Precision};

    fn dense(seed: u64) -> ServeRequest {
        let a = Matrix::seeded_uniform(64, 64, seed);
        let b = Matrix::seeded_uniform(64, 64, seed + 1000);
        ServeRequest::gemm(a, b, Precision::Fp16)
    }

    #[test]
    fn served_result_is_bit_identical_to_direct_call() {
        let dev = gh200();
        let server = Server::new(&dev);
        let req = dense(7);
        let direct = req.execute(&dev).unwrap();
        let ticket = server.submit(req).unwrap();
        server.drain();
        let done = ticket.wait().unwrap();
        let (got, want) = match (&done.output, &direct) {
            (ServeOutput::Dense(g), ServeOutput::Dense(w)) => (g, w),
            _ => panic!("dense in, dense out"),
        };
        let got = got.clone().into_single().unwrap();
        let want = want.clone().into_single().unwrap();
        assert_eq!(got.c.as_slice(), want.c.as_slice());
    }

    #[test]
    fn same_shape_requests_coalesce_into_one_group() {
        let dev = gh200();
        let server = Server::new(&dev);
        let tickets: Vec<_> = (0..6).map(|i| server.submit(dense(i)).unwrap()).collect();
        let summary = server.tick();
        assert_eq!(summary.groups, 1);
        assert_eq!(summary.completed, 6);
        for t in tickets {
            let done = t.wait().unwrap();
            assert_eq!(done.via, CompletionPath::Coalesced { group_size: 6 });
        }
    }

    #[test]
    fn coalescing_off_dispatches_solo_groups() {
        let dev = gh200();
        let server = Server::with_config(
            &dev,
            ServerConfig {
                coalesce: false,
                ..ServerConfig::default()
            },
        );
        for i in 0..3 {
            server.submit(dense(i)).unwrap();
        }
        let summary = server.tick();
        assert_eq!(summary.groups, 3);
    }

    #[test]
    fn bounded_queue_rejects_with_backpressure() {
        let dev = gh200();
        let server = Server::with_config(
            &dev,
            ServerConfig {
                queue_capacity: 2,
                ..ServerConfig::default()
            },
        );
        server.submit(dense(0)).unwrap();
        server.submit(dense(1)).unwrap();
        let err = server.submit(dense(2)).unwrap_err();
        assert_eq!(err, ServeError::QueueFull { capacity: 2 });
        assert_eq!(server.metrics().rejected_queue_full, 1);
    }

    #[test]
    fn repeat_shapes_reuse_the_cached_cost_pass() {
        let dev = gh200();
        let server = Server::new(&dev);
        let t = server.submit(dense(0)).unwrap();
        server.tick();
        t.wait().unwrap();
        let misses_after_first = server.plans().cost_misses();
        let hits_after_first = server.plans().cost_hits();
        assert!(misses_after_first > 0, "first request must cost its shape");

        let tickets: Vec<_> = (1..4).map(|i| server.submit(dense(i)).unwrap()).collect();
        server.tick();
        for t in tickets {
            t.wait().unwrap();
        }
        assert_eq!(
            server.plans().cost_misses(),
            misses_after_first,
            "repeat shape classes must not re-run the cost pass"
        );
        assert!(server.plans().cost_hits() > hits_after_first);
    }

    #[test]
    fn native_backend_server_is_bit_identical_on_the_warm_path() {
        let dev = gh200();
        let sim_server = Server::new(&dev);
        let native_server = Server::with_config(
            &dev,
            ServerConfig {
                backend: kami_gpu_sim::BackendKind::Native,
                ..ServerConfig::default()
            },
        );
        // Two rounds so the second request on each server hits a warm
        // plan cache — the execute-only path the backend knob governs.
        let mut sim_out = Vec::new();
        let mut native_out = Vec::new();
        for round in 0..2 {
            let ts = sim_server.submit(dense(round)).unwrap();
            let tn = native_server.submit(dense(round)).unwrap();
            sim_server.tick();
            native_server.tick();
            sim_out.push(dense_c(ts.wait().unwrap().output));
            native_out.push(dense_c(tn.wait().unwrap().output));
        }
        for (s, n) in sim_out.iter().zip(&native_out) {
            assert_eq!(
                s.as_slice(),
                n.as_slice(),
                "native warm path must be bit-identical to the sim server"
            );
        }
    }

    #[test]
    fn scaled_epilogue_skips_the_fast_path_and_still_serves() {
        let dev = gh200();
        let server = Server::new(&dev);
        let a = Matrix::seeded_uniform(64, 64, 3);
        let b = Matrix::seeded_uniform(64, 64, 4);
        let c0 = Matrix::seeded_uniform(64, 64, 5);
        let req = ServeRequest::dense(
            kami_core::GemmRequest::gemm_auto(a, b)
                .precision(Precision::Fp16)
                .scaled(0.5, 2.0, c0),
        );
        let direct = req.execute(&dev).unwrap();
        let ticket = server.submit(req).unwrap();
        server.drain();
        let done = ticket.wait().unwrap();
        let got = match done.output {
            ServeOutput::Dense(g) => g.into_single().unwrap(),
            _ => panic!("dense in, dense out"),
        };
        let want = match direct {
            ServeOutput::Dense(w) => w.into_single().unwrap(),
            _ => panic!("dense in, dense out"),
        };
        assert_eq!(got.c.as_slice(), want.c.as_slice());
    }

    #[test]
    fn different_epilogues_never_share_a_group() {
        let dev = gh200();
        let server = Server::new(&dev);
        let a = Matrix::seeded_uniform(64, 64, 11);
        let b = Matrix::seeded_uniform(64, 64, 12);
        let relu = ServeRequest::dense(
            kami_core::GemmRequest::gemm_auto(a.clone(), b.clone())
                .precision(Precision::Fp16)
                .with_epilogue(kami_core::Epilogue::Relu),
        );
        let gelu = ServeRequest::dense(
            kami_core::GemmRequest::gemm_auto(a, b)
                .precision(Precision::Fp16)
                .with_epilogue(kami_core::Epilogue::Gelu),
        );
        let want_relu = relu.execute(&dev).unwrap();
        let want_gelu = gelu.execute(&dev).unwrap();
        let t_relu = server.submit(relu).unwrap();
        let t_gelu = server.submit(gelu).unwrap();
        let summary = server.tick();
        assert_eq!(
            summary.groups, 2,
            "same shape, different epilogue: must not coalesce"
        );
        let got_relu = dense_c(t_relu.wait().unwrap().output);
        let got_gelu = dense_c(t_gelu.wait().unwrap().output);
        assert_eq!(got_relu.as_slice(), dense_c(want_relu).as_slice());
        assert_eq!(got_gelu.as_slice(), dense_c(want_gelu).as_slice());
        assert_ne!(
            got_relu.as_slice(),
            got_gelu.as_slice(),
            "the two epilogues must produce distinct results"
        );
    }

    fn dense_c(out: ServeOutput) -> Matrix {
        match out {
            ServeOutput::Dense(g) => g.into_single().unwrap().c,
            _ => panic!("dense in, dense out"),
        }
    }

    #[test]
    fn tall_skinny_requests_serve_through_the_k_split_path() {
        let dev = gh200();
        let server = Server::new(&dev);
        let a = Matrix::seeded_uniform(16, 16384, 21);
        let b = Matrix::seeded_uniform(16384, 16, 22);
        let req = ServeRequest::gemm(a, b, Precision::Fp16);
        let direct = req.execute(&dev).unwrap();
        let ticket = server.submit(req).unwrap();
        server.drain();
        let got = dense_c(ticket.wait().unwrap().output);
        assert_eq!(
            got.as_slice(),
            dense_c(direct).as_slice(),
            "served skinny result must be bit-identical to the direct call"
        );
    }

    #[test]
    fn shutdown_refuses_new_work_but_drains_old() {
        let dev = gh200();
        let server = Server::new(&dev);
        let ticket = server.submit(dense(0)).unwrap();
        server.shutdown();
        assert_eq!(
            server.submit(dense(1)).unwrap_err(),
            ServeError::ShuttingDown
        );
        server.drain();
        assert!(ticket.wait().is_ok());
        assert_eq!(server.pending(), 0);
    }
}
