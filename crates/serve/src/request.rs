//! What a client submits ([`ServeRequest`]) and what a completed
//! ticket carries back ([`ServeOutput`]).
//!
//! Dense work rides on the workspace-wide request type
//! ([`kami_core::GemmRequest`]) unchanged — anything buildable for a
//! direct `execute` call is servable, and the service executes it
//! through the very same engine entry points, so numerics are
//! bit-identical to the direct call. Sparse workloads (SpMM / SpGEMM)
//! carry their operands explicitly, since block-sparse structure cannot
//! be coalesced across requests.

use crate::error::ServeError;
use kami_core::{GemmRequest, GemmResponse, KamiConfig, Op};
use kami_gpu_sim::{DeviceSpec, Matrix, Precision};
use kami_sparse::spgemm::SpgemmResult;
use kami_sparse::spmm::SpmmResult;
use kami_sparse::BlockSparseMatrix;

/// The `(m, n, k, precision, epilogue fingerprint)` class compatible
/// dense requests coalesce under — the shape identity
/// [`kami_sched::PlanCache`] tunes per, plus the fused-epilogue
/// fingerprint (0 = none): requests differing only in epilogue compute
/// different functions and must never share a group.
pub type CoalesceKey = (usize, usize, usize, Precision, u64);

/// The work a request asks the service to perform.
#[derive(Debug, Clone)]
pub enum Workload {
    /// Any dense request the workspace API can express (single, auto,
    /// padded, 2.5D, batched, low-rank, scaled epilogues).
    Dense(GemmRequest),
    /// `C = A·B` with block-sparse `A` and dense `B`.
    Spmm {
        a: BlockSparseMatrix,
        b: Matrix,
        cfg: KamiConfig,
    },
    /// `C = A·B` with both operands block-sparse (two-phase SpGEMM).
    Spgemm {
        a: BlockSparseMatrix,
        b: BlockSparseMatrix,
        cfg: KamiConfig,
    },
}

impl Workload {
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Dense(r) => r.op.label(),
            Workload::Spmm { .. } => "spmm",
            Workload::Spgemm { .. } => "spgemm",
        }
    }
}

/// One service request: a workload plus service-level options.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    pub workload: Workload,
    /// End-to-end simulated-cycle budget, measured from the clock at
    /// admission — retries and their backoff parking all spend this
    /// same budget. `None` = no deadline.
    pub deadline_cycles: Option<f64>,
    /// Fleet placement constraint: when set, the request may only land
    /// on replicas whose [`DeviceSpec::name`] matches exactly. Ignored
    /// by single-device servers (they are their own placement).
    pub device_affinity: Option<String>,
}

impl ServeRequest {
    /// Serve a dense request. The request's own deadline (set via
    /// [`GemmRequest::deadline`]) is adopted as the service deadline.
    pub fn dense(request: GemmRequest) -> Self {
        let deadline_cycles = request.deadline_cycles;
        ServeRequest {
            workload: Workload::Dense(request),
            deadline_cycles,
            device_affinity: None,
        }
    }

    /// Serve a plain `C = A·B` at the given precision (autotuned).
    pub fn gemm(a: Matrix, b: Matrix, precision: Precision) -> Self {
        Self::dense(GemmRequest::gemm_auto(a, b).precision(precision))
    }

    /// Serve an SpMM product.
    pub fn spmm(a: BlockSparseMatrix, b: Matrix, cfg: KamiConfig) -> Self {
        ServeRequest {
            workload: Workload::Spmm { a, b, cfg },
            deadline_cycles: None,
            device_affinity: None,
        }
    }

    /// Serve an SpGEMM product.
    pub fn spgemm(a: BlockSparseMatrix, b: BlockSparseMatrix, cfg: KamiConfig) -> Self {
        ServeRequest {
            workload: Workload::Spgemm { a, b, cfg },
            deadline_cycles: None,
            device_affinity: None,
        }
    }

    /// Set the end-to-end deadline in simulated cycles (charged from
    /// admission, across every retry).
    pub fn with_deadline(mut self, cycles: f64) -> Self {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// Pin fleet placement to device class `name` (a
    /// [`DeviceSpec::name`], e.g. `"GH200"`). The fleet router only
    /// considers replicas of that class; if none is eligible the
    /// submission is refused rather than placed elsewhere.
    pub fn with_affinity(mut self, name: impl Into<String>) -> Self {
        self.device_affinity = Some(name.into());
        self
    }

    /// The key compatible requests coalesce under: same shape class,
    /// precision, and fused epilogue share one Stream-K work pool.
    /// `None` means the request always dispatches as its own group
    /// (sparse structure, batched and decomposed dense ops are already
    /// device-scale on their own).
    pub fn coalesce_key(&self) -> Option<CoalesceKey> {
        match &self.workload {
            Workload::Dense(r) => match &r.op {
                Op::Gemm { .. } | Op::GemmAuto { .. } | Op::GemmPadded { .. } => {
                    let (m, n, k) = r.shape();
                    Some((m, n, k, r.precision, r.epilogue_fingerprint()))
                }
                _ => None,
            },
            _ => None,
        }
    }

    /// The dense scheduler work items this request contributes to a
    /// dispatch group's pool — one per GEMM (batched ops contribute one
    /// per pair). Sparse workloads schedule through the nnz-weighted
    /// sparse path instead and contribute none here.
    pub fn work_items(&self) -> Vec<kami_sched::WorkItem> {
        match &self.workload {
            Workload::Dense(r) => match &r.op {
                Op::Batched { pairs, .. } => pairs
                    .iter()
                    .map(|(a, b)| {
                        kami_sched::WorkItem::new(a.rows(), b.cols(), a.cols(), r.precision)
                    })
                    .collect(),
                _ => {
                    let (m, n, k) = r.shape();
                    vec![kami_sched::WorkItem::new(m, n, k, r.precision)]
                }
            },
            Workload::Spmm { .. } | Workload::Spgemm { .. } => Vec::new(),
        }
    }

    /// Device blocks this request contributes to its group's work pool.
    pub fn block_count(&self) -> usize {
        match &self.workload {
            Workload::Dense(r) => r.block_count(),
            Workload::Spmm { a, .. } => a.nnz_blocks().max(1),
            Workload::Spgemm { a, .. } => a.nnz_blocks().max(1),
        }
    }

    /// Execute the workload's numerics directly on `device` — the exact
    /// engine calls a non-served caller would make.
    pub fn execute(&self, device: &DeviceSpec) -> Result<ServeOutput, ServeError> {
        match &self.workload {
            Workload::Dense(r) => Ok(ServeOutput::Dense(r.execute(device)?)),
            Workload::Spmm { a, b, cfg } => Ok(ServeOutput::Spmm(
                kami_sparse::spmm(device, cfg, a, b).map_err(ServeError::Core)?,
            )),
            Workload::Spgemm { a, b, cfg } => Ok(ServeOutput::Spgemm(
                kami_sparse::spgemm(device, cfg, a, b).map_err(ServeError::Core)?,
            )),
        }
    }
}

/// The numeric payload of a completed request.
#[derive(Debug, Clone)]
pub enum ServeOutput {
    Dense(GemmResponse),
    Spmm(SpmmResult),
    Spgemm(SpgemmResult),
}

impl ServeOutput {
    pub fn label(&self) -> &'static str {
        match self {
            ServeOutput::Dense(_) => "dense",
            ServeOutput::Spmm(_) => "spmm",
            ServeOutput::Spgemm(_) => "spgemm",
        }
    }

    /// Engine cycles of a dedicated (unshared) run of this workload —
    /// the cost the degraded serial fallback charges.
    pub fn serial_cycles(&self) -> f64 {
        match self {
            ServeOutput::Dense(r) => r.cycles(),
            ServeOutput::Spmm(r) => r.report.cycles,
            ServeOutput::Spgemm(r) => r.report.cycles,
        }
    }

    pub fn useful_flops(&self) -> u64 {
        match self {
            ServeOutput::Dense(r) => r.useful_flops(),
            ServeOutput::Spmm(r) => r.useful_flops,
            ServeOutput::Spgemm(r) => r.useful_flops,
        }
    }

    pub fn into_dense(self) -> Result<GemmResponse, ServeError> {
        match self {
            ServeOutput::Dense(r) => Ok(r),
            other => Err(ServeError::WrongKind {
                expected: "dense",
                got: other.label(),
            }),
        }
    }

    pub fn into_spmm(self) -> Result<SpmmResult, ServeError> {
        match self {
            ServeOutput::Spmm(r) => Ok(r),
            other => Err(ServeError::WrongKind {
                expected: "spmm",
                got: other.label(),
            }),
        }
    }

    pub fn into_spgemm(self) -> Result<SpgemmResult, ServeError> {
        match self {
            ServeOutput::Spgemm(r) => Ok(r),
            other => Err(ServeError::WrongKind {
                expected: "spgemm",
                got: other.label(),
            }),
        }
    }
}
