//! The service runtime: bounded admission, tick-based dispatch,
//! coalescing, deadlines with retry and degraded-serial fallback.
//!
//! ## Clock model
//!
//! The server keeps one simulated device clock. Each tick pops every
//! eligible request, coalesces compatible ones into shared work pools,
//! runs each pool through the device scheduler, and advances the clock
//! by the pool's makespan. Wall-clock time never enters the model —
//! latency, deadlines, and backoff are all simulated cycles, so runs
//! are exactly reproducible.
//!
//! ## Numerics
//!
//! Coalescing only shares the *schedule*. Plain dense GEMMs run
//! through the split engine: one cached cost pass per shape class
//! (shared with scheduling via the [`PlanCache`]) plus an execute-only
//! run per request; everything else uses the same direct engine entry
//! points a non-served caller would ([`ServeRequest::execute`]). Both
//! paths are bit-identical, retries included: the payload is computed
//! once on the first attempt and carried across requeues.

use crate::error::ServeError;
use crate::metrics::{MergedTrace, Metrics, TickRecord};
use crate::request::{ServeOutput, ServeRequest, Workload};
use crate::ticket::{Completed, CompletionPath, Ticket, TicketInner};
use kami_gpu_sim::{CostConfig, DeviceSpec, Trace};
use kami_sched::{BlockWork, Decomposition, PlanCache, Scheduler, SparseWork};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded admission queue: submissions beyond this depth bounce
    /// with [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Merge same-shape-class dense requests into shared work pools.
    /// Off = every request dispatches alone (the serial baseline).
    pub coalesce: bool,
    /// Deadline misses tolerated before the serial fallback.
    pub max_retries: u32,
    /// Base requeue delay in simulated cycles; attempt `i` waits
    /// `backoff_cycles · 2^(i−1)`.
    pub backoff_cycles: f64,
    /// Cost-model override applied to every schedule this server builds
    /// (fault injection hook: inflated costs -> deadline misses, while
    /// numerics stay untouched).
    pub cost: Option<CostConfig>,
    /// Decomposition forced on dense work pools (`Auto` = model picks).
    pub decomposition: Decomposition,
    /// Record a merged Chrome trace of every dispatched group (costs
    /// memory proportional to total work; off by default).
    pub capture_trace: bool,
    /// Device the *numerics* run on, when different from the device
    /// whose clock this server charges. Fleet replicas set this to the
    /// fleet's designated numeric device so every replica produces
    /// bit-identical payloads regardless of placement — auto-tuned
    /// configs differ across device classes, and with them accumulation
    /// order. Scheduling, costs, and the clock still use the server's
    /// own device. `None` (the default) = numerics on the same device.
    pub numeric_device: Option<DeviceSpec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            coalesce: true,
            max_retries: 2,
            backoff_cycles: 1024.0,
            cost: None,
            decomposition: Decomposition::Auto,
            capture_trace: false,
            numeric_device: None,
        }
    }
}

/// A queued request attempt.
struct Pending {
    id: u64,
    request: ServeRequest,
    /// Clock when the current attempt became eligible.
    ready_at: f64,
    /// Dispatch attempts consumed so far.
    attempts: u32,
    /// Numeric payload from the first attempt, reused on retries.
    cached: Option<ServeOutput>,
    ticket: Arc<TicketInner>,
}

struct State {
    queue: VecDeque<Pending>,
    clock: f64,
    next_id: u64,
    tick: u64,
    shutting_down: bool,
    metrics: Metrics,
    trace: MergedTrace,
}

/// Summary of one [`Server::tick`].
#[derive(Debug, Clone, Default)]
pub struct TickSummary {
    pub tick: u64,
    /// Requests dispatched (completed + retried + failed).
    pub dispatched: usize,
    pub groups: usize,
    pub completed: usize,
    pub retried: usize,
    pub degraded: usize,
    pub failed: usize,
    /// Cycles this tick advanced the service clock.
    pub advanced_cycles: f64,
    /// Sum of group makespans (excludes degraded-serial replays).
    pub group_cycles: f64,
    /// Makespan-weighted utilization numerator across groups.
    util_weighted: f64,
}

impl TickSummary {
    /// Makespan-weighted mean SM utilization across this tick's groups.
    pub fn utilization(&self) -> f64 {
        if self.group_cycles > 0.0 {
            self.util_weighted / self.group_cycles
        } else {
            0.0
        }
    }
}

/// The batched-GEMM service runtime for one device.
pub struct Server {
    device: DeviceSpec,
    config: ServerConfig,
    plans: Arc<PlanCache>,
    state: Mutex<State>,
    /// Signalled on submit and shutdown, so dispatcher threads can park.
    work_cv: Condvar,
    /// Serializes ticks: dispatch itself runs outside `state`, so
    /// producers can keep submitting mid-tick.
    dispatch: Mutex<()>,
}

impl Server {
    pub fn new(device: &DeviceSpec) -> Self {
        Self::with_config(device, ServerConfig::default())
    }

    pub fn with_config(device: &DeviceSpec, config: ServerConfig) -> Self {
        Self::with_shared_plans(device, config, Arc::new(PlanCache::new()))
    }

    /// Build a server over an externally owned [`PlanCache`]. Fleet
    /// replicas share one cache this way: a shape class tuned and
    /// costed by any replica (or by the router's placement query) is a
    /// cache hit for every other replica of the same device class.
    pub fn with_shared_plans(
        device: &DeviceSpec,
        config: ServerConfig,
        plans: Arc<PlanCache>,
    ) -> Self {
        Server {
            device: device.clone(),
            config,
            plans,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                clock: 0.0,
                next_id: 0,
                tick: 0,
                shutting_down: false,
                metrics: Metrics::default(),
                trace: MergedTrace::default(),
            }),
            work_cv: Condvar::new(),
            dispatch: Mutex::new(()),
        }
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared plan cache (tuning happens once per shape class).
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    fn locked(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Admit a request. Returns a [`Ticket`] resolving when some thread
    /// ticks the queue dry, or a typed rejection under backpressure or
    /// shutdown.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, ServeError> {
        let mut st = self.locked();
        if st.shutting_down {
            st.metrics.rejected_shutting_down += 1;
            return Err(ServeError::ShuttingDown);
        }
        if st.queue.len() >= self.config.queue_capacity {
            st.metrics.rejected_queue_full += 1;
            return Err(ServeError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let ticket = Arc::new(TicketInner::default());
        let ready_at = st.clock;
        st.queue.push_back(Pending {
            id,
            request,
            ready_at,
            attempts: 0,
            cached: None,
            ticket: Arc::clone(&ticket),
        });
        st.metrics.submitted += 1;
        let depth = st.queue.len();
        if depth > st.metrics.max_queue_depth {
            st.metrics.max_queue_depth = depth;
        }
        drop(st);
        self.work_cv.notify_all();
        Ok(Ticket { id, inner: ticket })
    }

    /// Requests currently queued (including ones parked in backoff).
    pub fn pending(&self) -> usize {
        self.locked().queue.len()
    }

    /// The simulated service clock.
    pub fn clock(&self) -> f64 {
        self.locked().clock
    }

    /// Snapshot the cumulative metrics.
    pub fn metrics(&self) -> Metrics {
        self.locked().metrics.clone()
    }

    /// Prometheus text exposition of the current metrics.
    pub fn to_prometheus(&self) -> String {
        self.locked().metrics.to_prometheus()
    }

    /// The merged Chrome trace across every dispatched group (empty
    /// unless [`ServerConfig::capture_trace`] is set).
    pub fn merged_trace(&self) -> Trace {
        self.locked().trace.trace.clone()
    }

    /// Stop admitting work. Queued requests still run; `drain` (or a
    /// dispatcher loop) finishes them.
    pub fn shutdown(&self) {
        self.locked().shutting_down = true;
        self.work_cv.notify_all();
    }

    /// Tick until the queue is empty (graceful drain). Parked-in-backoff
    /// requests are waited for — the clock jumps to their ready time.
    pub fn drain(&self) {
        while self.tick().dispatched > 0 || self.pending() > 0 {}
    }

    /// Shut down and drain: the graceful-exit combination.
    pub fn shutdown_and_drain(&self) {
        self.shutdown();
        self.drain();
    }

    /// Dispatcher loop for a dedicated thread: ticks whenever work is
    /// queued, parks when idle, returns after `shutdown()` once the
    /// queue is dry.
    pub fn run_dispatcher(&self) {
        loop {
            {
                let mut st = self.locked();
                while st.queue.is_empty() && !st.shutting_down {
                    st = self.work_cv.wait(st).unwrap_or_else(|p| p.into_inner());
                }
                if st.queue.is_empty() && st.shutting_down {
                    return;
                }
            }
            self.tick();
        }
    }

    /// One dispatch round: pop every eligible request, coalesce, run
    /// each group through the device scheduler, advance the clock,
    /// resolve / requeue / degrade members against their deadlines.
    pub fn tick(&self) -> TickSummary {
        let _serialize = self.dispatch.lock().unwrap_or_else(|p| p.into_inner());

        // Phase 1 (under the state lock): claim the eligible batch.
        let (batch, tick_no, clock_at_start) = {
            let mut st = self.locked();
            if st.queue.is_empty() {
                return TickSummary {
                    tick: st.tick,
                    ..TickSummary::default()
                };
            }
            // Nothing eligible yet? Everything is parked in backoff —
            // jump the clock to the earliest ready time.
            let min_ready = st
                .queue
                .iter()
                .map(|p| p.ready_at)
                .fold(f64::INFINITY, f64::min);
            if min_ready > st.clock {
                st.clock = min_ready;
            }
            let clock = st.clock;
            let mut batch = Vec::new();
            let mut keep = VecDeque::new();
            while let Some(p) = st.queue.pop_front() {
                if p.ready_at <= clock {
                    batch.push(p);
                } else {
                    keep.push_back(p);
                }
            }
            st.queue = keep;
            st.tick += 1;
            st.metrics.ticks += 1;
            (batch, st.tick, clock)
        };

        // Phase 2 (no state lock): group and execute. Producers keep
        // submitting; their requests land in the next tick.
        let groups = self.coalesce(batch);
        let mut summary = TickSummary {
            tick: tick_no,
            ..TickSummary::default()
        };
        for group in groups {
            self.dispatch_group(group, tick_no, &mut summary);
        }
        summary.advanced_cycles = self.locked().clock - clock_at_start;
        self.record_tick(tick_no, &summary);
        summary
    }

    /// Partition a batch into dispatch groups. With coalescing on,
    /// dense requests sharing `(m, n, k, precision)` merge; everything
    /// else (sparse structure, batched, 2.5D, low-rank) runs solo.
    fn coalesce(&self, batch: Vec<Pending>) -> Vec<Vec<Pending>> {
        let mut groups: Vec<(Option<crate::request::CoalesceKey>, Vec<Pending>)> = Vec::new();
        for p in batch {
            let key = if self.config.coalesce {
                p.request.coalesce_key()
            } else {
                None
            };
            match key {
                Some(k) => {
                    if let Some((_, members)) = groups.iter_mut().find(|(gk, _)| *gk == Some(k)) {
                        members.push(p);
                    } else {
                        groups.push((Some(k), vec![p]));
                    }
                }
                None => groups.push((None, vec![p])),
            }
        }
        groups.into_iter().map(|(_, members)| members).collect()
    }

    /// Execute one group: numerics per member (cached across retries),
    /// one schedule for the pool, then deadline bookkeeping per member.
    fn dispatch_group(&self, mut group: Vec<Pending>, tick_no: u64, summary: &mut TickSummary) {
        summary.dispatched += group.len();
        summary.groups += 1;

        // Numerics first — members whose engine run fails resolve with
        // the typed error and drop out of the pool.
        let mut failed = Vec::new();
        group.retain_mut(|p| {
            if p.cached.is_none() {
                match self.execute_request(&p.request) {
                    Ok(out) => p.cached = Some(out),
                    Err(e) => {
                        failed.push((std::mem::take(&mut p.ticket), e));
                        return false;
                    }
                }
            }
            true
        });
        for (ticket, e) in failed {
            summary.failed += 1;
            self.locked().metrics.failed += 1;
            ticket.resolve(Err(e));
        }
        if group.is_empty() {
            return;
        }

        // One schedule for the whole pool.
        let (makespan, utilization, trace) = match self.schedule_group(&group) {
            Ok(out) => out,
            Err(e) => {
                for p in group {
                    summary.failed += 1;
                    self.locked().metrics.failed += 1;
                    p.ticket.resolve(Err(ServeError::Sched(e.clone())));
                }
                return;
            }
        };

        // Advance the clock and settle every member against its
        // deadline, all under one state lock.
        let group_size = group.len();
        summary.group_cycles += makespan;
        summary.util_weighted += utilization * makespan;
        let mut st = self.locked();
        let group_start = st.clock;
        st.clock += makespan;
        st.metrics.group_cycles_sum += makespan;
        if let Some(t) = &trace {
            st.trace.absorb(t, group_start);
        }
        for mut p in group {
            p.attempts += 1;
            let finished = st.clock;
            let elapsed = finished - p.ready_at;
            let missed = p.request.deadline_cycles.is_some_and(|d| elapsed > d);
            if missed && p.attempts <= self.config.max_retries {
                // Retry with exponential backoff; the cached payload
                // rides along so numerics never recompute.
                let backoff = self.config.backoff_cycles * f64::powi(2.0, (p.attempts - 1) as i32);
                p.ready_at = finished + backoff;
                st.metrics.retries += 1;
                summary.retried += 1;
                st.queue.push_back(p);
                continue;
            }
            let output = p.cached.take().expect("numerics cached before settle");
            let (via, service_cycles, finished_at) = if missed {
                // Out of retries: degraded serial fallback — a
                // dedicated replay at the engine's own serial cost,
                // charged to the clock, never dropped.
                let serial = output.serial_cycles();
                st.clock += serial;
                st.metrics.degraded_serial += 1;
                summary.degraded += 1;
                (CompletionPath::DegradedSerial, makespan + serial, st.clock)
            } else {
                let via = if group_size > 1 {
                    CompletionPath::Coalesced { group_size }
                } else {
                    CompletionPath::Solo
                };
                (via, makespan, finished)
            };
            let queue_cycles = group_start - p.ready_at;
            st.metrics.completed += 1;
            st.metrics.queue_cycles_sum += queue_cycles;
            st.metrics.service_cycles_sum += service_cycles;
            st.metrics
                .completion_cycles
                .record(queue_cycles + service_cycles);
            summary.completed += 1;
            p.ticket.resolve(Ok(Completed {
                id: p.id,
                output,
                via,
                attempts: p.attempts,
                queue_cycles,
                service_cycles,
                finished_at,
                tick: tick_no,
            }));
        }
    }

    /// Run one member's numerics. Plain strict/auto dense GEMMs take
    /// the split-engine fast path: the cost pass comes from the shared
    /// [`PlanCache`] (charged once per shape class, then served from
    /// cache) and only the execute pass runs per request. Everything
    /// else — scaled epilogues, padded/2.5D/batched/low-rank ops,
    /// sparse workloads — goes through the direct engine entry points.
    /// Both paths are bit-identical, so serving stays numerically
    /// transparent either way.
    fn execute_request(&self, request: &ServeRequest) -> Result<ServeOutput, ServeError> {
        // Numerics device: the fleet pins this to one class so results
        // are bit-identical wherever the request lands; solo servers
        // leave it unset and compute on their own device.
        let ndev = self.config.numeric_device.as_ref().unwrap_or(&self.device);
        if let Workload::Dense(r) = &request.workload {
            // `is_plain` also excludes fused epilogues — a cached plain
            // plan computes a different function, so fused requests must
            // take the direct engine path. Tall-skinny shapes are
            // excluded too: no monolithic cost pass exists for them;
            // the engine runs them through its k-split path.
            let fast = match &r.op {
                kami_core::Op::Gemm { a, b } if r.is_plain() => Some((a, b, false)),
                kami_core::Op::GemmAuto { a, b } if r.is_plain() && !r.is_skinny() => {
                    Some((a, b, true))
                }
                _ => None,
            };
            if let Some((a, b, auto)) = fast {
                let cfg = r.resolve_config_cached(ndev, self.plans.tuner())?;
                let plan =
                    self.plans
                        .gemm_plan_for(ndev, &cfg, a.rows(), b.cols(), a.cols(), auto)?;
                let res = kami_core::gemm_execute_plan(ndev, &plan, a, b)?;
                return Ok(ServeOutput::Dense(kami_core::GemmResponse::Single(res)));
            }
        }
        request.execute(ndev)
    }

    /// Model one group's device-level execution: makespan, utilization,
    /// and (optionally) the per-SM trace.
    fn schedule_group(
        &self,
        group: &[Pending],
    ) -> Result<(f64, f64, Option<Trace>), kami_sched::SchedError> {
        let mut scheduler =
            Scheduler::new(&self.device).with_decomposition(self.config.decomposition);
        if let Some(c) = &self.config.cost {
            scheduler = scheduler.with_cost(c.clone());
        }
        // A solo sparse request schedules through the nnz-weighted
        // path; everything else reduces to a dense block-work pool.
        if let [p] = group {
            match &p.request.workload {
                Workload::Spmm { a, b, cfg } => {
                    let work = SparseWork::from_spmm(a, b.cols(), cfg.precision);
                    return self.run_sparse(&scheduler, &work, self.config.capture_trace);
                }
                Workload::Spgemm { a, b, cfg } => {
                    let work = SparseWork::from_spgemm(a, b, cfg.precision);
                    return self.run_sparse(&scheduler, &work, self.config.capture_trace);
                }
                Workload::Dense(_) => {}
            }
        }
        let mut items = Vec::new();
        for p in group {
            // Sparse never coalesces, so groups reaching this dense
            // pool are all-dense and contribute at least one item each.
            debug_assert!(matches!(p.request.workload, Workload::Dense(_)));
            items.extend(p.request.work_items());
        }
        let work = BlockWork::new(items);
        if self.config.capture_trace {
            let (report, trace) = scheduler.run_traced(&work, &self.plans)?;
            Ok((report.makespan_cycles, report.utilization, Some(trace)))
        } else {
            let report = scheduler.run(&work, &self.plans)?;
            Ok((report.makespan_cycles, report.utilization, None))
        }
    }

    fn run_sparse(
        &self,
        scheduler: &Scheduler<'_>,
        work: &SparseWork,
        traced: bool,
    ) -> Result<(f64, f64, Option<Trace>), kami_sched::SchedError> {
        if traced {
            let (report, trace) = scheduler.run_sparse_traced(work, &self.plans)?;
            Ok((
                report.schedule.makespan_cycles,
                report.schedule.utilization,
                Some(trace),
            ))
        } else {
            let report = scheduler.run_sparse(work, &self.plans)?;
            Ok((
                report.schedule.makespan_cycles,
                report.schedule.utilization,
                None,
            ))
        }
    }

    fn record_tick(&self, tick_no: u64, summary: &TickSummary) {
        if summary.dispatched == 0 {
            return;
        }
        let mut st = self.locked();
        let utilization = summary.utilization();
        st.metrics.per_tick.push(TickRecord {
            tick: tick_no,
            requests: summary.dispatched,
            groups: summary.groups,
            makespan_cycles: summary.advanced_cycles,
            utilization,
        });
    }
}
