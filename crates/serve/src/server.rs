//! The service runtime: sharded bounded admission, tick-based dispatch,
//! coalescing, end-to-end deadlines with retry and degraded-serial
//! fallback.
//!
//! ## Clock model
//!
//! The server keeps one simulated device clock. Each tick pops every
//! eligible request, coalesces compatible ones into shared work pools,
//! runs each pool through the device scheduler, and advances the clock
//! by the pool's makespan. Wall-clock time never enters the model —
//! latency, deadlines, and backoff are all simulated cycles, so runs
//! are exactly reproducible.
//!
//! ## Admission path
//!
//! Admission is striped over [`ServerConfig::admission_shards`]
//! sub-queues with per-shard locks, so producers on different threads
//! never contend on one mutex. `submit` reserves one slot of the
//! *global* capacity (a single atomic), lands on the submitting
//! thread's home shard, and fails over to a sibling shard when the home
//! shard is at its soft per-shard cap — [`ServeError::QueueFull`] only
//! surfaces when the global bound is truly exhausted. A tick drains all
//! shards into one batch and orders it by admission id, which both
//! preserves per-shard FIFO and makes the batch globally
//! submission-ordered, so dispatch stays deterministic.
//!
//! Completion is equally lock-free: payloads live in `Arc`'d storage
//! from admission (retries and the degraded-serial replay share the
//! allocation instead of cloning), and tickets resolve through an
//! atomic one-shot cell, so settling a request never touches the
//! admission shards or blocks a producer.
//!
//! ## Deadlines
//!
//! `deadline_cycles` is **end-to-end**: the budget is charged from the
//! clock at admission, across every retry and its backoff parking. A
//! missed deadline requeues into a parked set (exempt from the
//! admission bound — admitted work is never double-charged against
//! fresh producers) until retries are exhausted, then completes via the
//! degraded serial fallback rather than being dropped.
//!
//! ## Numerics
//!
//! Coalescing only shares the *schedule*. Plain dense GEMMs run
//! through the split engine: one cached cost pass per shape class
//! (shared with scheduling via the [`PlanCache`]) plus an execute-only
//! run per request; everything else uses the same direct engine entry
//! points a non-served caller would ([`ServeRequest::execute`]). Both
//! paths are bit-identical, retries included: the payload is computed
//! once on the first attempt and carried across requeues.

use crate::error::ServeError;
use crate::metrics::{MergedTrace, Metrics, TickRecord};
use crate::request::{ServeOutput, ServeRequest, Workload};
use crate::ticket::{Completed, CompletionPath, Ticket, TicketInner};
use kami_gpu_sim::{BackendKind, CostConfig, DeviceSpec, Trace};
use kami_sched::{
    BlockWork, CacheConfig, Decomposition, PlanCache, Scheduler, SparseWork, WorkItem,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded admission: submissions beyond this *global* depth bounce
    /// with [`ServeError::QueueFull`]. The bound covers freshly admitted
    /// requests only; retries parked in backoff are already admitted and
    /// tracked separately (see [`Metrics::max_parked_depth`]).
    pub queue_capacity: usize,
    /// Sub-queues the admission path stripes over. Producers hash to a
    /// home shard by thread and fail over to siblings before reporting
    /// `QueueFull`; 1 = the single-queue baseline.
    pub admission_shards: usize,
    /// Merge same-shape-class dense requests into shared work pools.
    /// Off = every request dispatches alone (the serial baseline).
    pub coalesce: bool,
    /// Run a group's member numerics in parallel across worker threads.
    /// Outputs are collected in member order, so results are
    /// bit-identical to the sequential path.
    pub parallel_execute: bool,
    /// Deadline misses tolerated before the serial fallback.
    pub max_retries: u32,
    /// Base requeue delay in simulated cycles; attempt `i` waits
    /// `backoff_cycles · 2^(i−1)`.
    pub backoff_cycles: f64,
    /// Cost-model override applied to every schedule this server builds
    /// (fault injection hook: inflated costs -> deadline misses, while
    /// numerics stay untouched).
    pub cost: Option<CostConfig>,
    /// Decomposition forced on dense work pools (`Auto` = model picks).
    pub decomposition: Decomposition,
    /// Record a merged Chrome trace of every dispatched group (costs
    /// memory proportional to total work; off by default).
    pub capture_trace: bool,
    /// Device the *numerics* run on, when different from the device
    /// whose clock this server charges. Fleet replicas set this to the
    /// fleet's designated numeric device so every replica produces
    /// bit-identical payloads regardless of placement — auto-tuned
    /// configs differ across device classes, and with them accumulation
    /// order. Scheduling, costs, and the clock still use the server's
    /// own device. `None` (the default) = numerics on the same device.
    pub numeric_device: Option<DeviceSpec>,
    /// Execution backend for the warm fast path (cached cost pass +
    /// execute-only run). Backends are bit-identical, so this is a
    /// throughput knob, not a numerics one; [`BackendKind::Native`]
    /// runs host-speed SIMD microkernels end-to-end on warm requests.
    /// Requests leaving the fast path honor their own
    /// `GemmRequest::backend` override instead.
    pub backend: BackendKind,
    /// Plan-cache budget/admission/feedback knobs for the cache this
    /// server constructs (ignored by [`Server::with_shared_plans`],
    /// where the caller owns the cache). The default is unbounded +
    /// no-feedback — exactly the historical cache.
    pub cache: CacheConfig,
    /// "Reality" cost model for observed execution. When set, every
    /// dense dispatch is re-costed under this model (same work, same
    /// decomposition the model chose) and the *observed* makespan is
    /// what the clock charges and what feeds the plan cache's
    /// observation channel — the serving twin of a device whose real
    /// timing diverges from its cost model. `None` (the default) means
    /// observation equals prediction: the feedback loop measures ratio
    /// 1.0 and corrects nothing, keeping behavior bit-identical.
    pub true_cost: Option<CostConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 64,
            admission_shards: 8,
            coalesce: true,
            parallel_execute: true,
            max_retries: 2,
            backoff_cycles: 1024.0,
            cost: None,
            decomposition: Decomposition::Auto,
            capture_trace: false,
            numeric_device: None,
            backend: BackendKind::default(),
            cache: CacheConfig::default(),
            true_cost: None,
        }
    }
}

/// One dispatched group's schedule: the model makespan, the observed
/// makespan (differs only under [`ServerConfig::true_cost`]), and — for
/// uniform dense pools — the shape class and chosen decomposition the
/// observation channel reports on.
struct GroupSchedule {
    /// Makespan the cost model predicted.
    makespan: f64,
    /// Makespan the execution actually took (equals `makespan` without
    /// a true-cost model). The clock charges this.
    observed: f64,
    utilization: f64,
    trace: Option<Trace>,
    /// Uniform dense pools only: shape class + chosen decomposition.
    class: Option<(WorkItem, Decomposition)>,
}

/// A queued request attempt. The request payload is `Arc`'d at
/// admission: retry attempts, coalesced group members, and the degraded
/// replay all read the same allocation.
struct Pending {
    id: u64,
    request: Arc<ServeRequest>,
    /// Clock at admission — immutable; every deadline check and the
    /// end-to-end latency histogram charge from here.
    admitted_at: f64,
    /// Clock when the current attempt becomes eligible (the backoff
    /// gate — never used for deadline accounting).
    ready_at: f64,
    /// Dispatch attempts consumed so far.
    attempts: u32,
    /// Numeric payload from the first attempt, reused on retries.
    cached: Option<ServeOutput>,
    ticket: Arc<TicketInner>,
}

/// Striped admission: N sub-queues with per-shard locks under one
/// atomic global capacity.
struct AdmissionShards {
    shards: Vec<Mutex<VecDeque<Pending>>>,
    /// Admitted-but-not-yet-claimed requests across all shards
    /// (incremented at reserve time, decremented at drain).
    depth: AtomicUsize,
    /// Soft per-shard bound steering `push` toward balance; the global
    /// `capacity` is the only hard limit.
    soft_cap: usize,
    capacity: usize,
}

impl AdmissionShards {
    fn new(shards: usize, capacity: usize) -> Self {
        let n = shards.max(1);
        AdmissionShards {
            shards: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth: AtomicUsize::new(0),
            soft_cap: capacity.div_ceil(n).max(1),
            capacity,
        }
    }

    /// Claim one slot of global capacity, or fail without side effects.
    fn try_reserve(&self) -> bool {
        if self.depth.fetch_add(1, Ordering::SeqCst) >= self.capacity {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }

    /// The submitting thread's home shard (stable per thread, so a
    /// single producer keeps per-shard FIFO = its submission order).
    fn home_shard(&self) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Enqueue under an already-reserved slot. Prefers the home shard,
    /// fails over to the first sibling under the soft cap (the last
    /// probed shard always accepts — capacity was reserved globally).
    /// Returns `true` when a failover happened.
    fn push(&self, home: usize, pending: Pending) -> bool {
        let n = self.shards.len();
        let mut pending = Some(pending);
        for i in 0..n {
            let idx = (home + i) % n;
            let mut q = self.shards[idx].lock().unwrap_or_else(|p| p.into_inner());
            if q.len() < self.soft_cap || i == n - 1 {
                q.push_back(pending.take().expect("pushed at most once"));
                return i > 0;
            }
        }
        unreachable!("the last probed shard accepts unconditionally")
    }

    /// Claim every enqueued request, shard by shard (per-shard FIFO
    /// preserved; the caller orders the combined batch by id).
    fn drain_all(&self) -> Vec<Pending> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut q = shard.lock().unwrap_or_else(|p| p.into_inner());
            out.extend(q.drain(..));
        }
        if !out.is_empty() {
            self.depth.fetch_sub(out.len(), Ordering::SeqCst);
        }
        out
    }

    fn depth(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }
}

struct State {
    /// Retries parked in backoff. Already admitted — exempt from the
    /// admission bound, accounted via [`Metrics::max_parked_depth`].
    parked: VecDeque<Pending>,
    clock: f64,
    tick: u64,
    metrics: Metrics,
    trace: MergedTrace,
}

/// Summary of one [`Server::tick`].
#[derive(Debug, Clone, Default)]
pub struct TickSummary {
    pub tick: u64,
    /// Requests dispatched (completed + retried + failed).
    pub dispatched: usize,
    pub groups: usize,
    pub completed: usize,
    pub retried: usize,
    pub degraded: usize,
    pub failed: usize,
    /// Cycles this tick advanced the service clock.
    pub advanced_cycles: f64,
    /// Sum of group makespans (excludes degraded-serial replays).
    pub group_cycles: f64,
    /// Makespan-weighted utilization numerator across groups.
    util_weighted: f64,
}

impl TickSummary {
    /// Makespan-weighted mean SM utilization across this tick's groups.
    pub fn utilization(&self) -> f64 {
        if self.group_cycles > 0.0 {
            self.util_weighted / self.group_cycles
        } else {
            0.0
        }
    }
}

/// The batched-GEMM service runtime for one device.
pub struct Server {
    device: DeviceSpec,
    config: ServerConfig,
    plans: Arc<PlanCache>,
    admission: AdmissionShards,
    state: Mutex<State>,
    /// Monotone admission ids — also the deterministic dispatch order.
    next_id: AtomicU64,
    shutting_down: AtomicBool,
    /// Mirror of `State::clock` (f64 bits) so `submit` stamps
    /// `admitted_at` without the state lock.
    clock_bits: AtomicU64,
    // Admission-side counters live outside the state lock; `metrics()`
    // composes them with the dispatch-side counters.
    submitted: AtomicU64,
    rejected_queue_full: AtomicU64,
    rejected_shutting_down: AtomicU64,
    admission_failovers: AtomicU64,
    max_queue_depth: AtomicUsize,
    /// Dispatcher threads parked on `work_cv`; producers skip the
    /// notify entirely while this is zero.
    sleepers: AtomicUsize,
    park: Mutex<()>,
    /// Signalled on submit and shutdown, so dispatcher threads can park.
    work_cv: Condvar,
    /// Serializes ticks: dispatch itself runs outside `state`, so
    /// producers can keep submitting mid-tick.
    dispatch: Mutex<()>,
}

impl Server {
    pub fn new(device: &DeviceSpec) -> Self {
        Self::with_config(device, ServerConfig::default())
    }

    pub fn with_config(device: &DeviceSpec, config: ServerConfig) -> Self {
        let plans = Arc::new(PlanCache::with_config(config.cache.clone()));
        Self::with_shared_plans(device, config, plans)
    }

    /// Build a server over an externally owned [`PlanCache`]. Fleet
    /// replicas share one cache this way: a shape class tuned and
    /// costed by any replica (or by the router's placement query) is a
    /// cache hit for every other replica of the same device class.
    pub fn with_shared_plans(
        device: &DeviceSpec,
        config: ServerConfig,
        plans: Arc<PlanCache>,
    ) -> Self {
        let admission = AdmissionShards::new(config.admission_shards, config.queue_capacity);
        Server {
            device: device.clone(),
            config,
            plans,
            admission,
            state: Mutex::new(State {
                parked: VecDeque::new(),
                clock: 0.0,
                tick: 0,
                metrics: Metrics::default(),
                trace: MergedTrace::default(),
            }),
            next_id: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
            clock_bits: AtomicU64::new(0.0f64.to_bits()),
            submitted: AtomicU64::new(0),
            rejected_queue_full: AtomicU64::new(0),
            rejected_shutting_down: AtomicU64::new(0),
            admission_failovers: AtomicU64::new(0),
            max_queue_depth: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            park: Mutex::new(()),
            work_cv: Condvar::new(),
            dispatch: Mutex::new(()),
        }
    }

    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The shared plan cache (tuning happens once per shape class).
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    fn locked(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn publish_clock(&self, clock: f64) {
        self.clock_bits.store(clock.to_bits(), Ordering::SeqCst);
    }

    /// Admit a request. Returns a [`Ticket`] resolving when some thread
    /// ticks the queue dry, or a typed rejection under backpressure or
    /// shutdown. The payload moves into `Arc`'d storage; submit with
    /// [`Server::submit_shared`] to share an allocation you already
    /// hold.
    pub fn submit(&self, request: ServeRequest) -> Result<Ticket, ServeError> {
        self.submit_shared(Arc::new(request))
    }

    /// Admit an already-`Arc`'d request — the zero-copy admission path.
    /// Retry attempts, coalesced dispatch, and the degraded-serial
    /// replay all read this allocation; the server never clones the
    /// payload.
    pub fn submit_shared(&self, request: Arc<ServeRequest>) -> Result<Ticket, ServeError> {
        if self.shutting_down.load(Ordering::SeqCst) {
            self.rejected_shutting_down.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ShuttingDown);
        }
        if !self.admission.try_reserve() {
            self.rejected_queue_full.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let ticket = Arc::new(TicketInner::default());
        let admitted_at = self.clock();
        let home = self.admission.home_shard();
        let failed_over = self.admission.push(
            home,
            Pending {
                id,
                request,
                admitted_at,
                ready_at: admitted_at,
                attempts: 0,
                cached: None,
                ticket: Arc::clone(&ticket),
            },
        );
        if failed_over {
            self.admission_failovers.fetch_add(1, Ordering::Relaxed);
        }
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(self.admission.depth(), Ordering::Relaxed);
        self.notify_work();
        Ok(Ticket { id, inner: ticket })
    }

    fn notify_work(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // The park lock orders this notify after a racing sleeper's
            // under-lock work re-check, so the wakeup cannot be lost.
            let _g = self.park.lock().unwrap_or_else(|p| p.into_inner());
            self.work_cv.notify_all();
        }
    }

    /// Requests in flight: freshly admitted plus parked-in-backoff.
    pub fn pending(&self) -> usize {
        self.admission.depth() + self.locked().parked.len()
    }

    /// Retries currently parked in backoff (admitted earlier; exempt
    /// from the admission bound).
    pub fn parked(&self) -> usize {
        self.locked().parked.len()
    }

    /// The simulated service clock (lock-free read of the mirror the
    /// dispatcher publishes).
    pub fn clock(&self) -> f64 {
        f64::from_bits(self.clock_bits.load(Ordering::SeqCst))
    }

    /// Snapshot the cumulative metrics (admission-side atomic counters
    /// composed with the dispatch-side state).
    pub fn metrics(&self) -> Metrics {
        let mut m = self.locked().metrics.clone();
        m.submitted = self.submitted.load(Ordering::Relaxed);
        m.rejected_queue_full = self.rejected_queue_full.load(Ordering::Relaxed);
        m.rejected_shutting_down = self.rejected_shutting_down.load(Ordering::Relaxed);
        m.admission_failovers = self.admission_failovers.load(Ordering::Relaxed);
        m.max_queue_depth = self.max_queue_depth.load(Ordering::Relaxed);
        m.plan_cache = self.plans.stats();
        m
    }

    /// Prometheus text exposition of the current metrics.
    pub fn to_prometheus(&self) -> String {
        self.metrics().to_prometheus()
    }

    /// The merged Chrome trace across every dispatched group (empty
    /// unless [`ServerConfig::capture_trace`] is set).
    pub fn merged_trace(&self) -> Trace {
        self.locked().trace.trace.clone()
    }

    /// Stop admitting work. Queued requests still run; `drain` (or a
    /// dispatcher loop) finishes them.
    pub fn shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        let _g = self.park.lock().unwrap_or_else(|p| p.into_inner());
        self.work_cv.notify_all();
    }

    /// Tick until the queue is empty (graceful drain). Parked-in-backoff
    /// requests are waited for — the clock jumps to their ready time.
    pub fn drain(&self) {
        while self.tick().dispatched > 0 || self.pending() > 0 {}
    }

    /// Shut down and drain: the graceful-exit combination.
    pub fn shutdown_and_drain(&self) {
        self.shutdown();
        self.drain();
    }

    fn has_work(&self) -> bool {
        self.admission.depth() > 0 || !self.locked().parked.is_empty()
    }

    /// Dispatcher loop for a dedicated thread: ticks whenever work is
    /// queued, parks when idle, returns after `shutdown()` once the
    /// queue is dry.
    pub fn run_dispatcher(&self) {
        loop {
            {
                self.sleepers.fetch_add(1, Ordering::SeqCst);
                let mut g = self.park.lock().unwrap_or_else(|p| p.into_inner());
                while !self.has_work() && !self.shutting_down.load(Ordering::SeqCst) {
                    g = self.work_cv.wait(g).unwrap_or_else(|p| p.into_inner());
                }
                drop(g);
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                if !self.has_work() && self.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
            }
            self.tick();
        }
    }

    /// One dispatch round: drain every shard, pop eligible parked
    /// retries, coalesce, run each group through the device scheduler,
    /// advance the clock, resolve / requeue / degrade members against
    /// their end-to-end deadlines.
    pub fn tick(&self) -> TickSummary {
        let _serialize = self.dispatch.lock().unwrap_or_else(|p| p.into_inner());

        // Phase 1 (under the state lock): claim the eligible batch.
        let (batch, tick_no, clock_at_start) = {
            let mut st = self.locked();
            let mut batch = self.admission.drain_all();
            if batch.is_empty() && st.parked.is_empty() {
                return TickSummary {
                    tick: st.tick,
                    ..TickSummary::default()
                };
            }
            if batch.is_empty() {
                // Everything is parked in backoff — jump the clock to
                // the earliest ready time.
                let min_ready = st
                    .parked
                    .iter()
                    .map(|p| p.ready_at)
                    .fold(f64::INFINITY, f64::min);
                if min_ready > st.clock {
                    st.clock = min_ready;
                    self.publish_clock(min_ready);
                }
            }
            let clock = st.clock;
            let mut keep = VecDeque::new();
            while let Some(p) = st.parked.pop_front() {
                if p.ready_at <= clock {
                    batch.push(p);
                } else {
                    keep.push_back(p);
                }
            }
            st.parked = keep;
            if batch.is_empty() {
                return TickSummary {
                    tick: st.tick,
                    ..TickSummary::default()
                };
            }
            // Admission ids are monotone per shard, so this both
            // restores global submission order and preserves per-shard
            // FIFO — dispatch order is deterministic however the
            // producers were scheduled onto shards.
            batch.sort_unstable_by_key(|p| p.id);
            st.tick += 1;
            st.metrics.ticks += 1;
            (batch, st.tick, clock)
        };

        // Phase 2 (no state lock): group and execute. Producers keep
        // submitting; their requests land in the next tick.
        let groups = self.coalesce(batch);
        let mut summary = TickSummary {
            tick: tick_no,
            ..TickSummary::default()
        };
        for group in groups {
            self.dispatch_group(group, tick_no, &mut summary);
        }
        summary.advanced_cycles = self.clock() - clock_at_start;
        self.record_tick(tick_no, &summary);
        summary
    }

    /// Partition a batch into dispatch groups. With coalescing on,
    /// dense requests sharing `(m, n, k, precision, epilogue)` merge;
    /// everything else (sparse structure, batched, 2.5D, low-rank) runs
    /// solo. Groups keep first-seen order — the index makes the lookup
    /// O(1) per request instead of a linear scan over existing groups.
    fn coalesce(&self, batch: Vec<Pending>) -> Vec<Vec<Pending>> {
        let mut groups: Vec<Vec<Pending>> = Vec::new();
        let mut index: HashMap<crate::request::CoalesceKey, usize> = HashMap::new();
        for p in batch {
            let key = if self.config.coalesce {
                p.request.coalesce_key()
            } else {
                None
            };
            match key {
                Some(k) => match index.entry(k) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        groups[*e.get()].push(p);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(groups.len());
                        groups.push(vec![p]);
                    }
                },
                None => groups.push(vec![p]),
            }
        }
        groups
    }

    /// Execute one group: numerics per member (cached across retries,
    /// optionally parallel across members), one schedule for the pool,
    /// then end-to-end deadline bookkeeping per member. Tickets resolve
    /// after the state lock drops — completion never blocks admission.
    fn dispatch_group(&self, group: Vec<Pending>, tick_no: u64, summary: &mut TickSummary) {
        summary.dispatched += group.len();
        summary.groups += 1;
        let mut resolutions: Vec<(Arc<TicketInner>, Result<Completed, ServeError>)> = Vec::new();

        // Numerics first — members whose engine run fails resolve with
        // the typed error and drop out of the pool. Retry attempts ride
        // on the cached first-attempt payload and skip this entirely.
        let need: Vec<usize> = group
            .iter()
            .enumerate()
            .filter(|(_, p)| p.cached.is_none())
            .map(|(i, _)| i)
            .collect();
        let computed: Vec<Result<ServeOutput, ServeError>> =
            if self.config.parallel_execute && need.len() > 1 {
                use rayon::prelude::*;
                // Ordered collect: outputs land back on their members in
                // member order, so parallel and sequential execution are
                // observationally identical.
                let requests: Vec<&ServeRequest> =
                    need.iter().map(|&i| group[i].request.as_ref()).collect();
                requests
                    .par_iter()
                    .map(|r| self.execute_request(r))
                    .collect()
            } else {
                need.iter()
                    .map(|&i| self.execute_request(&group[i].request))
                    .collect()
            };
        let mut errors: HashMap<usize, ServeError> = HashMap::new();
        let mut group = group;
        for (&i, out) in need.iter().zip(computed) {
            match out {
                Ok(o) => group[i].cached = Some(o),
                Err(e) => {
                    errors.insert(i, e);
                }
            }
        }
        let mut live = Vec::with_capacity(group.len());
        let mut newly_failed = 0u64;
        for (idx, p) in group.into_iter().enumerate() {
            if let Some(e) = errors.remove(&idx) {
                summary.failed += 1;
                newly_failed += 1;
                resolutions.push((p.ticket, Err(e)));
            } else {
                live.push(p);
            }
        }
        if newly_failed > 0 {
            self.locked().metrics.failed += newly_failed;
        }
        if live.is_empty() {
            for (ticket, outcome) in resolutions {
                ticket.resolve(outcome);
            }
            return;
        }

        // One schedule for the whole pool.
        let sched = match self.schedule_group(&live) {
            Ok(out) => out,
            Err(e) => {
                let n = live.len() as u64;
                for p in live {
                    summary.failed += 1;
                    resolutions.push((p.ticket, Err(ServeError::Sched(e.clone()))));
                }
                self.locked().metrics.failed += n;
                for (ticket, outcome) in resolutions {
                    ticket.resolve(outcome);
                }
                return;
            }
        };
        // Close the loop: report the observed execution of this shape
        // class back into the plan cache (no-op unless feedback is on).
        if let Some((item, decomposition)) = sched.class {
            self.plans.observe_execution(
                &self.device,
                &item,
                self.config.cost.as_ref(),
                decomposition,
                sched.makespan,
                sched.observed,
            );
        }
        let makespan = sched.observed;
        let utilization = sched.utilization;

        // Advance the clock and settle every member against its
        // deadline, all under one state lock; resolutions fire after.
        let group_size = live.len();
        summary.group_cycles += makespan;
        summary.util_weighted += utilization * makespan;
        let mut st = self.locked();
        let group_start = st.clock;
        st.clock += makespan;
        st.metrics.group_cycles_sum += makespan;
        if let Some(t) = &sched.trace {
            st.trace.absorb(t, group_start);
        }
        for mut p in live {
            p.attempts += 1;
            let finished = st.clock;
            // End-to-end deadline: elapsed charges from admission, not
            // from this attempt's eligibility — retries and their
            // backoff parking all spend the same budget.
            let elapsed = finished - p.admitted_at;
            let missed = p.request.deadline_cycles.is_some_and(|d| elapsed > d);
            if missed && p.attempts <= self.config.max_retries {
                // Retry with exponential backoff; the cached payload
                // rides along so numerics never recompute. Parked
                // retries are already admitted: they bypass the
                // admission bound and are accounted separately.
                let backoff = self.config.backoff_cycles * f64::powi(2.0, (p.attempts - 1) as i32);
                p.ready_at = finished + backoff;
                st.metrics.retries += 1;
                summary.retried += 1;
                st.parked.push_back(p);
                let depth = st.parked.len();
                if depth > st.metrics.max_parked_depth {
                    st.metrics.max_parked_depth = depth;
                }
                continue;
            }
            let output = p.cached.take().expect("numerics cached before settle");
            let (via, service_cycles, finished_at) = if missed {
                // Out of retries: degraded serial fallback — a
                // dedicated replay at the engine's own serial cost,
                // charged to the clock, never dropped.
                let serial = output.serial_cycles();
                st.clock += serial;
                st.metrics.degraded_serial += 1;
                summary.degraded += 1;
                (CompletionPath::DegradedSerial, makespan + serial, st.clock)
            } else {
                let via = if group_size > 1 {
                    CompletionPath::Coalesced { group_size }
                } else {
                    CompletionPath::Solo
                };
                (via, makespan, finished)
            };
            let queue_cycles = group_start - p.ready_at;
            st.metrics.completed += 1;
            st.metrics.queue_cycles_sum += queue_cycles;
            st.metrics.service_cycles_sum += service_cycles;
            st.metrics
                .completion_cycles
                .record(finished_at - p.admitted_at);
            summary.completed += 1;
            resolutions.push((
                p.ticket,
                Ok(Completed {
                    id: p.id,
                    output,
                    via,
                    attempts: p.attempts,
                    admitted_at: p.admitted_at,
                    queue_cycles,
                    service_cycles,
                    finished_at,
                    tick: tick_no,
                }),
            ));
        }
        self.publish_clock(st.clock);
        drop(st);
        for (ticket, outcome) in resolutions {
            ticket.resolve(outcome);
        }
    }

    /// Run one member's numerics. Plain strict/auto dense GEMMs take
    /// the split-engine fast path: the cost pass comes from the shared
    /// [`PlanCache`] (charged once per shape class, then served from
    /// cache) and only the execute pass runs per request. Everything
    /// else — scaled epilogues, padded/2.5D/batched/low-rank ops,
    /// sparse workloads — goes through the direct engine entry points.
    /// Both paths are bit-identical, so serving stays numerically
    /// transparent either way.
    fn execute_request(&self, request: &ServeRequest) -> Result<ServeOutput, ServeError> {
        // Numerics device: the fleet pins this to one class so results
        // are bit-identical wherever the request lands; solo servers
        // leave it unset and compute on their own device.
        let ndev = self.config.numeric_device.as_ref().unwrap_or(&self.device);
        if let Workload::Dense(r) = &request.workload {
            // `is_plain` also excludes fused epilogues — a cached plain
            // plan computes a different function, so fused requests must
            // take the direct engine path. Tall-skinny shapes are
            // excluded too: no monolithic cost pass exists for them;
            // the engine runs them through its k-split path.
            let fast = match &r.op {
                kami_core::Op::Gemm { a, b } if r.is_plain() => Some((a, b, false)),
                kami_core::Op::GemmAuto { a, b } if r.is_plain() && !r.is_skinny() => {
                    Some((a, b, true))
                }
                _ => None,
            };
            if let Some((a, b, auto)) = fast {
                let cfg = r.resolve_config_cached(ndev, self.plans.tuner())?;
                let plan =
                    self.plans
                        .gemm_plan_for(ndev, &cfg, a.rows(), b.cols(), a.cols(), auto)?;
                // Cached plans are backend-independent; execute on the
                // server's configured backend regardless of which
                // configuration first populated the cache.
                let res =
                    kami_core::gemm_execute_plan_with(ndev, &plan, a, b, self.config.backend)?;
                return Ok(ServeOutput::Dense(kami_core::GemmResponse::Single(res)));
            }
        }
        request.execute(ndev)
    }

    /// Model one group's device-level execution: makespan, utilization,
    /// and (optionally) the per-SM trace.
    fn schedule_group(&self, group: &[Pending]) -> Result<GroupSchedule, kami_sched::SchedError> {
        let mut scheduler =
            Scheduler::new(&self.device).with_decomposition(self.config.decomposition);
        if let Some(c) = &self.config.cost {
            scheduler = scheduler.with_cost(c.clone());
        }
        // A solo sparse request schedules through the nnz-weighted
        // path; everything else reduces to a dense block-work pool.
        if let [p] = group {
            match &p.request.workload {
                Workload::Spmm { a, b, cfg } => {
                    let work = SparseWork::from_spmm(a, b.cols(), cfg.precision);
                    return self.run_sparse(&scheduler, &work, self.config.capture_trace);
                }
                Workload::Spgemm { a, b, cfg } => {
                    let work = SparseWork::from_spgemm(a, b, cfg.precision);
                    return self.run_sparse(&scheduler, &work, self.config.capture_trace);
                }
                Workload::Dense(_) => {}
            }
        }
        let mut items = Vec::new();
        for p in group {
            // Sparse never coalesces, so groups reaching this dense
            // pool are all-dense and contribute at least one item each.
            debug_assert!(matches!(p.request.workload, Workload::Dense(_)));
            items.extend(p.request.work_items());
        }
        let work = BlockWork::new(items);
        let (report, trace) = if self.config.capture_trace {
            let (report, trace) = scheduler.run_traced(&work, &self.plans)?;
            (report, Some(trace))
        } else {
            (scheduler.run(&work, &self.plans)?, None)
        };
        // Observed execution: with a true-cost model configured, the
        // pool is re-costed under *reality* (same work, same
        // decomposition the model just chose) — that is what the clock
        // will charge and what the observation channel reports.
        let observed = match &self.config.true_cost {
            None => report.makespan_cycles,
            Some(tc) => {
                let truth = Scheduler::new(&self.device)
                    .with_decomposition(report.decomposition)
                    .with_cost(tc.clone());
                truth.run(&work, &self.plans)?.makespan_cycles
            }
        };
        let class = (work.is_uniform() && !work.items.is_empty())
            .then(|| (work.items[0], report.decomposition));
        Ok(GroupSchedule {
            makespan: report.makespan_cycles,
            observed,
            utilization: report.utilization,
            trace,
            class,
        })
    }

    fn run_sparse(
        &self,
        scheduler: &Scheduler<'_>,
        work: &SparseWork,
        traced: bool,
    ) -> Result<GroupSchedule, kami_sched::SchedError> {
        let (report, trace) = if traced {
            let (report, trace) = scheduler.run_sparse_traced(work, &self.plans)?;
            (report, Some(trace))
        } else {
            (scheduler.run_sparse(work, &self.plans)?, None)
        };
        // Sparse work keeps model cost as observed: the feedback loop
        // covers uniform dense shape classes only.
        Ok(GroupSchedule {
            makespan: report.schedule.makespan_cycles,
            observed: report.schedule.makespan_cycles,
            utilization: report.schedule.utilization,
            trace,
            class: None,
        })
    }

    fn record_tick(&self, tick_no: u64, summary: &TickSummary) {
        if summary.dispatched == 0 {
            return;
        }
        let mut st = self.locked();
        let utilization = summary.utilization();
        st.metrics.per_tick.push(TickRecord {
            tick: tick_no,
            requests: summary.dispatched,
            groups: summary.groups,
            makespan_cycles: summary.advanced_cycles,
            utilization,
        });
    }
}
