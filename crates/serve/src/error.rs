//! Typed service errors, chained to the engine and scheduler errors
//! underneath via [`std::error::Error::source`].

use kami_core::KamiError;
use kami_sched::SchedError;

/// Why the service rejected, failed, or refused a request.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded admission queue is full — backpressure, resubmit
    /// later.
    QueueFull { capacity: usize },
    /// The server no longer admits work (graceful drain in progress).
    ShuttingDown,
    /// A ticket was asked for a payload kind the request never produced
    /// (e.g. `into_dense` on an SpMM completion).
    WrongKind {
        expected: &'static str,
        got: &'static str,
    },
    /// The fleet router found no replica that can take the request:
    /// every candidate was excluded by `device_affinity`, device
    /// infeasibility (e.g. FP64 on a device without FP64 MMA shapes),
    /// or a full admission queue.
    NoEligibleReplica { detail: String },
    /// The engine rejected the request's numerics.
    Core(KamiError),
    /// The device scheduler rejected the coalesced work pool.
    Sched(SchedError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::NoEligibleReplica { detail } => {
                write!(f, "no eligible replica: {detail}")
            }
            ServeError::WrongKind { expected, got } => {
                write!(f, "completion holds a {got} payload, asked for {expected}")
            }
            ServeError::Core(e) => write!(f, "engine: {e}"),
            ServeError::Sched(e) => write!(f, "scheduler: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Core(e) => Some(e),
            ServeError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KamiError> for ServeError {
    fn from(e: KamiError) -> Self {
        ServeError::Core(e)
    }
}

impl From<SchedError> for ServeError {
    fn from(e: SchedError) -> Self {
        ServeError::Sched(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source_chain() {
        let e = ServeError::QueueFull { capacity: 8 };
        assert_eq!(e.to_string(), "admission queue full (capacity 8)");
        assert!(e.source().is_none());

        let e = ServeError::Sched(SchedError::EmptyStream { kind: "dense" });
        assert!(e.to_string().starts_with("scheduler:"));
        assert!(e.source().is_some());

        let e = ServeError::Core(KamiError::Unsupported { detail: "x".into() });
        assert!(e.source().is_some());
    }
}
