//! Tickets: the client's handle to an in-flight request.
//!
//! `submit` returns a [`Ticket`] immediately; the dispatcher resolves
//! it when the request's group drains (or when the request fails).
//! Waiting blocks on a condvar, so producer threads can park while the
//! dispatcher ticks.

use crate::error::ServeError;
use crate::request::ServeOutput;
use std::sync::{Arc, Condvar, Mutex};

/// How a request reached completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionPath {
    /// Dispatched in a shared work pool with `group_size − 1` other
    /// requests of the same shape class.
    Coalesced { group_size: usize },
    /// Dispatched as its own group (coalescing off, or nothing
    /// compatible in the queue).
    Solo,
    /// Deadline budget exhausted through every retry; served by a
    /// dedicated serial replay instead of being dropped.
    DegradedSerial,
}

impl CompletionPath {
    pub fn label(&self) -> &'static str {
        match self {
            CompletionPath::Coalesced { .. } => "coalesced",
            CompletionPath::Solo => "solo",
            CompletionPath::DegradedSerial => "degraded-serial",
        }
    }
}

/// A resolved request: the numeric payload plus the service account of
/// how it got there.
#[derive(Debug, Clone)]
pub struct Completed {
    /// Server-assigned request id (submission order).
    pub id: u64,
    pub output: ServeOutput,
    pub via: CompletionPath,
    /// Dispatch attempts consumed (1 = first try).
    pub attempts: u32,
    /// Simulated cycles spent eligible-but-waiting before the final
    /// attempt's group started.
    pub queue_cycles: f64,
    /// Simulated cycles from group start to completion (the group
    /// makespan, plus the serial replay for degraded completions).
    pub service_cycles: f64,
    /// Simulated clock when the request completed.
    pub finished_at: f64,
    /// Dispatcher tick that completed the request.
    pub tick: u64,
}

#[derive(Debug, Default)]
pub(crate) struct TicketInner {
    slot: Mutex<Option<Result<Completed, ServeError>>>,
    cv: Condvar,
}

impl TicketInner {
    pub(crate) fn resolve(&self, outcome: Result<Completed, ServeError>) {
        let mut slot = self.slot.lock().unwrap_or_else(|p| p.into_inner());
        *slot = Some(outcome);
        self.cv.notify_all();
    }
}

/// The client's handle to a submitted request.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) inner: Arc<TicketInner>,
}

impl Ticket {
    /// Server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the request has resolved (without consuming the result).
    pub fn is_done(&self) -> bool {
        self.inner
            .slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .is_some()
    }

    /// Take the outcome if resolved; `None` while still in flight.
    pub fn try_take(&self) -> Option<Result<Completed, ServeError>> {
        self.inner
            .slot
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .take()
    }

    /// Block until the request resolves and take the outcome. Some
    /// thread must be ticking the server (or `drain` must already have
    /// run) for this to return.
    pub fn wait(self) -> Result<Completed, ServeError> {
        let mut slot = self.inner.slot.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self.inner.cv.wait(slot).unwrap_or_else(|p| p.into_inner());
        }
    }
}
