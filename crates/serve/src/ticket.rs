//! Tickets: the client's handle to an in-flight request.
//!
//! `submit` returns a [`Ticket`] immediately; the dispatcher resolves
//! it when the request's group drains (or when the request fails).
//!
//! Resolution is **lock-free**: the outcome lands in a one-shot value
//! slot guarded by an atomic state machine (`EMPTY → WRITING → READY →
//! TAKEN`), so the dispatcher's settle path never blocks on a client
//! that is polling or waiting — and, crucially, never needs the
//! server's global state mutex. Blocking [`Ticket::wait`] parks on a
//! per-ticket condvar that the resolver only touches when a waiter has
//! registered, so the uncontended completion path is a handful of
//! atomic stores.

use crate::error::ServeError;
use crate::request::ServeOutput;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How a request reached completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionPath {
    /// Dispatched in a shared work pool with `group_size − 1` other
    /// requests of the same shape class.
    Coalesced { group_size: usize },
    /// Dispatched as its own group (coalescing off, or nothing
    /// compatible in the queue).
    Solo,
    /// Deadline budget exhausted through every retry; served by a
    /// dedicated serial replay instead of being dropped.
    DegradedSerial,
}

impl CompletionPath {
    pub fn label(&self) -> &'static str {
        match self {
            CompletionPath::Coalesced { .. } => "coalesced",
            CompletionPath::Solo => "solo",
            CompletionPath::DegradedSerial => "degraded-serial",
        }
    }
}

/// A resolved request: the numeric payload plus the service account of
/// how it got there.
#[derive(Debug, Clone)]
pub struct Completed {
    /// Server-assigned request id (submission order).
    pub id: u64,
    pub output: ServeOutput,
    pub via: CompletionPath,
    /// Dispatch attempts consumed (1 = first try).
    pub attempts: u32,
    /// Simulated clock when the request was admitted — the origin every
    /// end-to-end deadline and latency measurement charges from.
    pub admitted_at: f64,
    /// Simulated cycles spent eligible-but-waiting before the final
    /// attempt's group started.
    pub queue_cycles: f64,
    /// Simulated cycles from group start to completion (the group
    /// makespan, plus the serial replay for degraded completions).
    pub service_cycles: f64,
    /// Simulated clock when the request completed.
    pub finished_at: f64,
    /// Dispatcher tick that completed the request.
    pub tick: u64,
}

impl Completed {
    /// End-to-end latency in simulated cycles: admission to completion,
    /// retries and backoff parking included.
    pub fn latency_cycles(&self) -> f64 {
        self.finished_at - self.admitted_at
    }
}

/// One-shot state machine: `EMPTY → WRITING → READY → TAKEN`.
const EMPTY: u8 = 0;
const WRITING: u8 = 1;
const READY: u8 = 2;
const TAKEN: u8 = 3;

/// The shared half of a ticket: an atomic one-shot cell.
///
/// Safety model: the slot is written exactly once, by the thread that
/// wins the `EMPTY → WRITING` transition, and read exactly once, by the
/// thread that wins the `READY → TAKEN` transition. The `Release` store
/// of `READY` publishes the write; the `Acquire` CAS to `TAKEN` claims
/// exclusive read access. No two threads ever touch the slot
/// concurrently.
pub(crate) struct TicketInner {
    state: AtomicU8,
    slot: UnsafeCell<Option<Result<Completed, ServeError>>>,
    /// Threads parked (or about to park) in `wait`; the resolver only
    /// pays for the condvar when this is nonzero.
    waiters: AtomicUsize,
    park: Mutex<()>,
    cv: Condvar,
}

// SAFETY: all slot access is serialized by the atomic state machine
// (see the struct docs); every field it contains is Send.
unsafe impl Send for TicketInner {}
unsafe impl Sync for TicketInner {}

impl Default for TicketInner {
    fn default() -> Self {
        TicketInner {
            state: AtomicU8::new(EMPTY),
            slot: UnsafeCell::new(None),
            waiters: AtomicUsize::new(0),
            park: Mutex::new(()),
            cv: Condvar::new(),
        }
    }
}

impl std::fmt::Debug for TicketInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = match self.state.load(Ordering::Acquire) {
            EMPTY => "empty",
            WRITING => "writing",
            READY => "ready",
            _ => "taken",
        };
        f.debug_struct("TicketInner")
            .field("state", &state)
            .finish()
    }
}

impl TicketInner {
    /// Publish the outcome (exactly once; a second resolve is a server
    /// bug and is dropped). Lock-free unless a waiter is parked.
    pub(crate) fn resolve(&self, outcome: Result<Completed, ServeError>) {
        if self
            .state
            .compare_exchange(EMPTY, WRITING, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            debug_assert!(false, "ticket resolved twice");
            return;
        }
        // SAFETY: winning the EMPTY→WRITING CAS grants exclusive write
        // access; no reader can observe the slot until READY is stored.
        unsafe {
            *self.slot.get() = Some(outcome);
        }
        self.state.store(READY, Ordering::SeqCst);
        // Waiter registration (waiters += 1, then state check) and this
        // (READY store, then waiters check) are both SeqCst, so either
        // the waiter sees READY or we see the waiter — never neither.
        if self.waiters.load(Ordering::SeqCst) > 0 {
            // Taking the park lock orders the notify after the waiter's
            // under-lock re-check, so the wakeup cannot be lost.
            let _g = self.park.lock().unwrap_or_else(|p| p.into_inner());
            self.cv.notify_all();
        }
    }

    /// Whether an outcome has been published (or already consumed).
    fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) >= READY
    }

    /// Claim and take the outcome if published; `None` while in flight
    /// (or if another thread already took it).
    fn try_take(&self) -> Option<Result<Completed, ServeError>> {
        if self
            .state
            .compare_exchange(READY, TAKEN, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: winning the READY→TAKEN CAS grants exclusive read
            // access, and the Acquire pairs with the resolver's store.
            unsafe { (*self.slot.get()).take() }
        } else {
            None
        }
    }
}

/// The client's handle to a submitted request.
#[derive(Debug)]
pub struct Ticket {
    pub(crate) id: u64,
    pub(crate) inner: Arc<TicketInner>,
}

impl Ticket {
    /// Server-assigned request id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the request has resolved (without consuming the result).
    pub fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    /// Take the outcome if resolved; `None` while still in flight.
    pub fn try_take(&self) -> Option<Result<Completed, ServeError>> {
        self.inner.try_take()
    }

    /// Block until the request resolves and take the outcome. Some
    /// thread must be ticking the server (or `drain` must already have
    /// run) for this to return.
    pub fn wait(self) -> Result<Completed, ServeError> {
        loop {
            if let Some(outcome) = self.inner.try_take() {
                return outcome;
            }
            // Register as a waiter, then re-check under the park lock:
            // the resolver stores READY before probing `waiters`, and
            // only notifies while holding `park`, so a waiter that saw
            // no outcome under the lock is guaranteed a wakeup.
            self.inner.waiters.fetch_add(1, Ordering::SeqCst);
            let mut g = self.inner.park.lock().unwrap_or_else(|p| p.into_inner());
            while !self.inner.is_done() {
                g = self.inner.cv.wait(g).unwrap_or_else(|p| p.into_inner());
            }
            drop(g);
            self.inner.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done(id: u64) -> Result<Completed, ServeError> {
        Err(ServeError::ShuttingDown) // payload content is irrelevant here
            .or(Err(ServeError::QueueFull {
                capacity: id as usize,
            }))
    }

    #[test]
    fn one_shot_resolve_take_cycle() {
        let t = TicketInner::default();
        assert!(!t.is_done());
        assert!(t.try_take().is_none());
        t.resolve(done(3));
        assert!(t.is_done());
        let got = t.try_take().expect("ready outcome is takeable");
        assert_eq!(got.unwrap_err(), ServeError::QueueFull { capacity: 3 });
        // Taken: still done, but the value is gone.
        assert!(t.is_done());
        assert!(t.try_take().is_none());
    }

    #[test]
    fn waiters_wake_across_threads() {
        let inner = Arc::new(TicketInner::default());
        let ticket = Ticket {
            id: 0,
            inner: Arc::clone(&inner),
        };
        std::thread::scope(|s| {
            let waiter = s.spawn(move || ticket.wait());
            // Let the waiter park, then resolve from this thread.
            std::thread::sleep(std::time::Duration::from_millis(20));
            inner.resolve(done(9));
            let got = waiter.join().expect("waiter panicked");
            assert_eq!(got.unwrap_err(), ServeError::QueueFull { capacity: 9 });
        });
    }

    #[test]
    fn double_resolve_keeps_the_first_outcome() {
        // Release builds drop the second resolve silently (the
        // debug_assert documents it as a server bug).
        let t = TicketInner::default();
        t.resolve(done(1));
        let first = t.try_take().expect("first resolve wins");
        assert_eq!(first.unwrap_err(), ServeError::QueueFull { capacity: 1 });
    }
}
