//! Service observability: per-request and per-tick accounting, a
//! Prometheus-style text export, and a merged device trace across every
//! dispatched group.

use kami_gpu_sim::Trace;
use kami_sched::{PlanCacheStats, RatioHistogram, RATIO_BUCKETS};
use std::fmt::Write as _;

/// One dispatcher tick's account.
#[derive(Debug, Clone)]
pub struct TickRecord {
    pub tick: u64,
    /// Requests dispatched this tick (completions + retries).
    pub requests: usize,
    /// Work-pool groups those requests coalesced into.
    pub groups: usize,
    /// Simulated cycles the tick advanced the clock.
    pub makespan_cycles: f64,
    /// Makespan-weighted mean SM utilization across the tick's groups.
    pub utilization: f64,
}

impl TickRecord {
    /// Requests per group — 1.0 when nothing coalesced.
    pub fn coalesce_factor(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.requests as f64 / self.groups as f64
        }
    }
}

/// Fixed-bucket histogram of completion latencies in simulated cycles.
///
/// Buckets are powers of two: bucket `i` counts observations in
/// `[2^i, 2^(i+1))` cycles, with bucket 0 also absorbing everything
/// below 1 cycle and a final overflow bucket for `>= 2^32`. Fixed
/// boundaries make histograms from different replicas mergeable by
/// plain bucket-wise addition, which is exactly how the fleet rollup
/// builds its aggregate percentiles.
///
/// Percentiles are upper-bound estimates: `percentile(q)` reports the
/// upper edge of the bucket holding the q-th observation, so the true
/// latency is never under-reported by more than one octave.
#[derive(Debug, Clone, PartialEq)]
pub struct CycleHistogram {
    /// `BUCKETS` power-of-two buckets plus one overflow bucket.
    counts: [u64; CycleHistogram::BUCKETS + 1],
    total: u64,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        CycleHistogram {
            counts: [0; CycleHistogram::BUCKETS + 1],
            total: 0,
        }
    }
}

impl CycleHistogram {
    /// Power-of-two buckets covering `[1, 2^32)` simulated cycles.
    pub const BUCKETS: usize = 32;

    /// Upper bound (exclusive) of bucket `i`; the overflow bucket
    /// reports `f64::INFINITY`.
    pub fn bucket_upper_bound(i: usize) -> f64 {
        if i >= Self::BUCKETS {
            f64::INFINITY
        } else {
            f64::powi(2.0, (i + 1) as i32)
        }
    }

    /// Record one completion latency in simulated cycles.
    pub fn record(&mut self, cycles: f64) {
        let idx = if cycles < 1.0 {
            0
        } else {
            let i = cycles.log2().floor() as usize;
            i.min(Self::BUCKETS)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Upper-bound estimate of the q-th percentile (`q` in `[0, 1]`),
    /// or 0.0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper_bound(i);
            }
        }
        f64::INFINITY
    }

    /// Median completion latency (upper-bound estimate), in cycles.
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// Tail completion latency (upper-bound estimate), in cycles.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Extreme-tail completion latency (upper-bound estimate), in
    /// cycles — the sustained-load study's headline tail metric.
    pub fn p999(&self) -> f64 {
        self.percentile(0.999)
    }

    /// Fold another histogram into this one — fixed boundaries make
    /// this exact, which is what fleet rollup relies on.
    pub fn merge(&mut self, other: &CycleHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Iterate `(upper_bound, cumulative_count)` pairs over non-empty
    /// prefix buckets — the Prometheus `le` series.
    pub fn cumulative(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let mut acc = 0u64;
        self.counts.iter().enumerate().map(move |(i, &c)| {
            acc += c;
            (Self::bucket_upper_bound(i), acc)
        })
    }
}

/// Cumulative service counters. Snapshot via
/// [`Server::metrics`](crate::Server::metrics).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    pub submitted: u64,
    pub rejected_queue_full: u64,
    pub rejected_shutting_down: u64,
    pub completed: u64,
    pub failed: u64,
    /// Deadline misses that went back to the queue with backoff.
    pub retries: u64,
    /// Deadline misses that exhausted retries and took the serial path.
    pub degraded_serial: u64,
    /// Ticks that dispatched at least one request.
    pub ticks: u64,
    /// Sum over completions of eligible-but-waiting cycles.
    pub queue_cycles_sum: f64,
    /// Sum over completions of group-start→done cycles.
    pub service_cycles_sum: f64,
    /// Sum over groups of their makespans (device busy time).
    pub group_cycles_sum: f64,
    /// Largest *freshly admitted* depth observed at submit time (the
    /// depth the admission bound applies to; parked retries are
    /// tracked by `max_parked_depth`).
    pub max_queue_depth: usize,
    /// Largest parked-in-backoff depth observed at requeue time.
    /// Parked retries are already admitted and exempt from the
    /// admission bound — this is their separate account.
    pub max_parked_depth: usize,
    /// Submissions whose home admission shard was at its soft cap and
    /// landed on a sibling shard instead of bouncing.
    pub admission_failovers: u64,
    /// End-to-end completion latency histogram in simulated cycles
    /// (admission to completion, retries and backoff parking included);
    /// fixed power-of-two buckets so fleet rollups merge exactly.
    pub completion_cycles: CycleHistogram,
    /// Plan-plane snapshot: both bounded stores (entries, resident
    /// bytes, evictions, admission rejections, stampedes avoided) plus
    /// the observation-feedback loop.
    pub plan_cache: PlanCacheStats,
    pub per_tick: Vec<TickRecord>,
}

impl Metrics {
    /// Mean requests-per-group across dispatching ticks.
    pub fn coalesce_factor(&self) -> f64 {
        let (reqs, groups) = self
            .per_tick
            .iter()
            .fold((0usize, 0usize), |(r, g), t| (r + t.requests, g + t.groups));
        if groups == 0 {
            0.0
        } else {
            reqs as f64 / groups as f64
        }
    }

    /// Mean queue latency per completion, in simulated cycles.
    pub fn mean_queue_cycles(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.queue_cycles_sum / self.completed as f64
        }
    }

    /// Prometheus text exposition (counters and gauges under the
    /// `kami_serve_` prefix).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP kami_serve_{name} {help}");
            let _ = writeln!(out, "# TYPE kami_serve_{name} counter");
            let _ = writeln!(out, "kami_serve_{name} {v}");
        };
        counter(
            "submitted_total",
            "Requests admitted",
            self.submitted as f64,
        );
        counter(
            "rejected_queue_full_total",
            "Submissions bounced by backpressure",
            self.rejected_queue_full as f64,
        );
        counter(
            "rejected_shutting_down_total",
            "Submissions refused during drain",
            self.rejected_shutting_down as f64,
        );
        counter(
            "completed_total",
            "Requests completed",
            self.completed as f64,
        );
        counter("failed_total", "Requests failed", self.failed as f64);
        counter(
            "retries_total",
            "Deadline misses requeued with backoff",
            self.retries as f64,
        );
        counter(
            "degraded_serial_total",
            "Completions via the serial fallback",
            self.degraded_serial as f64,
        );
        counter("ticks_total", "Dispatching ticks", self.ticks as f64);
        counter(
            "queue_cycles_total",
            "Simulated cycles requests waited eligible",
            self.queue_cycles_sum,
        );
        counter(
            "service_cycles_total",
            "Simulated cycles from group start to done",
            self.service_cycles_sum,
        );
        counter(
            "group_cycles_total",
            "Simulated device-busy cycles across groups",
            self.group_cycles_sum,
        );
        counter(
            "admission_failovers_total",
            "Submissions that landed on a sibling shard",
            self.admission_failovers as f64,
        );
        let mut gauge = |name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP kami_serve_{name} {help}");
            let _ = writeln!(out, "# TYPE kami_serve_{name} gauge");
            let _ = writeln!(out, "kami_serve_{name} {v}");
        };
        gauge(
            "max_queue_depth",
            "Largest admitted queue depth seen at submit",
            self.max_queue_depth as f64,
        );
        gauge(
            "max_parked_depth",
            "Largest parked-in-backoff depth seen at requeue",
            self.max_parked_depth as f64,
        );
        gauge(
            "coalesce_factor",
            "Mean requests per dispatched group",
            self.coalesce_factor(),
        );
        gauge(
            "mean_queue_cycles",
            "Mean eligible-wait cycles per completion",
            self.mean_queue_cycles(),
        );
        gauge(
            "completion_cycles_p50",
            "Median completion latency in simulated cycles (bucket upper bound)",
            self.completion_cycles.p50(),
        );
        gauge(
            "completion_cycles_p99",
            "P99 completion latency in simulated cycles (bucket upper bound)",
            self.completion_cycles.p99(),
        );
        gauge(
            "completion_cycles_p999",
            "P99.9 completion latency in simulated cycles (bucket upper bound)",
            self.completion_cycles.p999(),
        );
        write_plan_cache_series(&mut out, "kami_serve", &self.plan_cache);
        out
    }
}

/// Append the plan-cache observability series under `prefix` —
/// shared by the per-server (`kami_serve`) and fleet (`kami_fleet`)
/// exports so both expose identical names.
pub(crate) fn write_plan_cache_series(out: &mut String, prefix: &str, pc: &PlanCacheStats) {
    let gauge = |out: &mut String, name: &str, help: &str, v: f64| {
        let _ = writeln!(out, "# HELP {prefix}_{name} {help}");
        let _ = writeln!(out, "# TYPE {prefix}_{name} gauge");
        let _ = writeln!(out, "{prefix}_{name} {v}");
    };
    gauge(
        out,
        "plan_cache_entries",
        "Entries resident across both plan-plane stores",
        pc.entries() as f64,
    );
    gauge(
        out,
        "plan_cache_resident_bytes",
        "Approximate bytes resident across both plan-plane stores",
        pc.resident_bytes() as f64,
    );
    let counter = |out: &mut String, name: &str, help: &str, v: f64| {
        let _ = writeln!(out, "# HELP {prefix}_{name} {help}");
        let _ = writeln!(out, "# TYPE {prefix}_{name} counter");
        let _ = writeln!(out, "{prefix}_{name} {v}");
    };
    counter(
        out,
        "plan_cache_hits_total",
        "Plan-plane lookups served from cache (both stores)",
        (pc.plans.hits + pc.costs.hits) as f64,
    );
    counter(
        out,
        "plan_cache_misses_total",
        "Plan-plane lookups that ran the tuning sweep or cost pass",
        (pc.plans.misses + pc.costs.misses) as f64,
    );
    counter(
        out,
        "plan_cache_evictions_total",
        "Entries displaced by the cache budget",
        pc.evictions() as f64,
    );
    counter(
        out,
        "plan_cache_admission_rejected_total",
        "Computed values the Bloom doorkeeper (or oversize check) declined to cache",
        pc.admission_rejected() as f64,
    );
    counter(
        out,
        "plan_cache_stampedes_avoided_total",
        "Concurrent misses that waited on an in-flight compute",
        pc.stampedes_avoided() as f64,
    );
    counter(
        out,
        "plan_cache_feedback_observations_total",
        "Observed executions recorded into the feedback plane",
        pc.feedback_observations as f64,
    );
    counter(
        out,
        "plan_cache_feedback_corrections_total",
        "Makespan estimates corrected by an observed ratio",
        pc.feedback_corrections as f64,
    );
    write_ratio_histogram(out, prefix, &pc.ratio);
}

/// Append the observed/predicted makespan ratio histogram as a
/// Prometheus histogram (`_bucket{le=..}` cumulative series plus
/// `_sum` and `_count`).
fn write_ratio_histogram(out: &mut String, prefix: &str, h: &RatioHistogram) {
    let name = "plan_cache_feedback_ratio";
    let _ = writeln!(
        out,
        "# HELP {prefix}_{name} Observed/predicted makespan ratio per dispatched shape class"
    );
    let _ = writeln!(out, "# TYPE {prefix}_{name} histogram");
    let mut acc = 0u64;
    for (i, &c) in h.counts().iter().enumerate() {
        acc += c;
        if i + 1 == RATIO_BUCKETS {
            let _ = writeln!(out, "{prefix}_{name}_bucket{{le=\"+Inf\"}} {acc}");
        } else {
            let le = RatioHistogram::upper_bound(i);
            let _ = writeln!(out, "{prefix}_{name}_bucket{{le=\"{le}\"}} {acc}");
        }
    }
    let _ = writeln!(out, "{prefix}_{name}_sum {}", h.sum());
    let _ = writeln!(out, "{prefix}_{name}_count {}", h.count());
}

/// Merged device trace: every dispatched group's per-SM trace, offset
/// to the group's start on the service clock, in one Chrome-trace
/// timeline.
#[derive(Debug, Clone, Default)]
pub(crate) struct MergedTrace {
    pub trace: Trace,
}

impl MergedTrace {
    pub(crate) fn absorb(&mut self, group: &Trace, offset_cycles: f64) {
        self.trace.absorb(group, offset_cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_export_names_every_counter() {
        let mut m = Metrics {
            submitted: 7,
            completed: 5,
            ..Metrics::default()
        };
        m.per_tick.push(TickRecord {
            tick: 1,
            requests: 4,
            groups: 2,
            makespan_cycles: 100.0,
            utilization: 0.5,
        });
        let text = m.to_prometheus();
        for name in [
            "kami_serve_submitted_total 7",
            "kami_serve_completed_total 5",
            "kami_serve_coalesce_factor 2",
            "# TYPE kami_serve_ticks_total counter",
            "kami_serve_plan_cache_entries 0",
            "kami_serve_plan_cache_evictions_total 0",
            "kami_serve_plan_cache_admission_rejected_total 0",
            "kami_serve_plan_cache_stampedes_avoided_total 0",
            "kami_serve_plan_cache_feedback_corrections_total 0",
            "kami_serve_plan_cache_feedback_ratio_count 0",
            "kami_serve_plan_cache_feedback_ratio_bucket{le=\"+Inf\"} 0",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn prometheus_exports_plan_cache_ratio_histogram() {
        let mut m = Metrics::default();
        m.plan_cache.ratio.record(1.0);
        m.plan_cache.ratio.record(8.0);
        m.plan_cache.feedback_observations = 2;
        let text = m.to_prometheus();
        assert!(text.contains("kami_serve_plan_cache_feedback_observations_total 2"));
        assert!(text.contains("kami_serve_plan_cache_feedback_ratio_count 2"));
        assert!(text.contains("kami_serve_plan_cache_feedback_ratio_sum 9"));
        // Cumulative le series ends at the catch-all.
        assert!(text.contains("kami_serve_plan_cache_feedback_ratio_bucket{le=\"+Inf\"} 2"));
    }

    #[test]
    fn histogram_bucket_boundaries_are_pinned() {
        // Bucket i covers [2^i, 2^(i+1)); sub-cycle latencies land in
        // bucket 0, >= 2^32 in the overflow bucket. These boundaries
        // are load-bearing: fleet rollup merges replica histograms
        // bucket-wise, which is only exact because every histogram
        // shares them.
        assert_eq!(CycleHistogram::BUCKETS, 32);
        assert_eq!(CycleHistogram::bucket_upper_bound(0), 2.0);
        assert_eq!(CycleHistogram::bucket_upper_bound(1), 4.0);
        assert_eq!(CycleHistogram::bucket_upper_bound(9), 1024.0);
        assert_eq!(CycleHistogram::bucket_upper_bound(31), 4294967296.0);
        assert_eq!(CycleHistogram::bucket_upper_bound(32), f64::INFINITY);

        let mut h = CycleHistogram::default();
        // Exactly at a boundary: 1024 cycles is the *lower* edge of
        // bucket 10, so its percentile upper bound reads 2048.
        h.record(1024.0);
        assert_eq!(h.p50(), 2048.0);
        // Just below the boundary stays in bucket 9.
        let mut low = CycleHistogram::default();
        low.record(1023.9);
        assert_eq!(low.p50(), 1024.0);
        // Sub-cycle and overflow extremes.
        let mut edges = CycleHistogram::default();
        edges.record(0.25);
        edges.record(1.0e12);
        assert_eq!(edges.percentile(0.0), 2.0);
        assert_eq!(edges.percentile(1.0), f64::INFINITY);
    }

    #[test]
    fn histogram_percentiles_and_merge() {
        let mut a = CycleHistogram::default();
        for _ in 0..99 {
            a.record(3.0); // bucket 1 -> upper bound 4
        }
        a.record(1.0e6); // lone tail observation
        assert_eq!(a.count(), 100);
        assert_eq!(a.p50(), 4.0);
        // 99th observation is still in the fast bucket...
        assert_eq!(a.p99(), 4.0);
        // ...but the max percentile sees the tail (2^20 = 1048576).
        assert_eq!(a.percentile(1.0), 1048576.0);

        let mut b = CycleHistogram::default();
        for _ in 0..300 {
            b.record(1.0e6);
        }
        a.merge(&b);
        assert_eq!(a.count(), 400);
        // Tail now dominates: p50 and p99 both in the 2^20 bucket.
        assert_eq!(a.p50(), 1048576.0);
        assert_eq!(a.p99(), 1048576.0);

        let empty = CycleHistogram::default();
        assert_eq!(empty.p50(), 0.0);
        assert_eq!(empty.p99(), 0.0);
    }

    #[test]
    fn prometheus_reports_percentile_gauges() {
        let mut m = Metrics::default();
        m.completion_cycles.record(100.0);
        let text = m.to_prometheus();
        assert!(text.contains("kami_serve_completion_cycles_p50 128"));
        assert!(text.contains("kami_serve_completion_cycles_p99 128"));
    }

    #[test]
    fn merged_trace_offsets_events() {
        use kami_gpu_sim::{TraceEvent, TraceKind};
        let mut group = Trace::default();
        group.events.push(TraceEvent {
            warp: 0,
            phase: 0,
            kind: TraceKind::Mma,
            amount: 1,
            start: 5.0,
            duration: 2.0,
            detail: String::new(),
        });
        group.phase_starts = vec![0.0, 7.0];
        let mut merged = MergedTrace::default();
        merged.absorb(&group, 100.0);
        assert_eq!(merged.trace.events[0].start, 105.0);
        assert_eq!(merged.trace.total_cycles(), 107.0);
    }
}
