//! Service observability: per-request and per-tick accounting, a
//! Prometheus-style text export, and a merged device trace across every
//! dispatched group.

use kami_gpu_sim::Trace;
use std::fmt::Write as _;

/// One dispatcher tick's account.
#[derive(Debug, Clone)]
pub struct TickRecord {
    pub tick: u64,
    /// Requests dispatched this tick (completions + retries).
    pub requests: usize,
    /// Work-pool groups those requests coalesced into.
    pub groups: usize,
    /// Simulated cycles the tick advanced the clock.
    pub makespan_cycles: f64,
    /// Makespan-weighted mean SM utilization across the tick's groups.
    pub utilization: f64,
}

impl TickRecord {
    /// Requests per group — 1.0 when nothing coalesced.
    pub fn coalesce_factor(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.requests as f64 / self.groups as f64
        }
    }
}

/// Cumulative service counters. Snapshot via
/// [`Server::metrics`](crate::Server::metrics).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    pub submitted: u64,
    pub rejected_queue_full: u64,
    pub rejected_shutting_down: u64,
    pub completed: u64,
    pub failed: u64,
    /// Deadline misses that went back to the queue with backoff.
    pub retries: u64,
    /// Deadline misses that exhausted retries and took the serial path.
    pub degraded_serial: u64,
    /// Ticks that dispatched at least one request.
    pub ticks: u64,
    /// Sum over completions of eligible-but-waiting cycles.
    pub queue_cycles_sum: f64,
    /// Sum over completions of group-start→done cycles.
    pub service_cycles_sum: f64,
    /// Sum over groups of their makespans (device busy time).
    pub group_cycles_sum: f64,
    /// Largest queue depth observed at submit time.
    pub max_queue_depth: usize,
    pub per_tick: Vec<TickRecord>,
}

impl Metrics {
    /// Mean requests-per-group across dispatching ticks.
    pub fn coalesce_factor(&self) -> f64 {
        let (reqs, groups) = self
            .per_tick
            .iter()
            .fold((0usize, 0usize), |(r, g), t| (r + t.requests, g + t.groups));
        if groups == 0 {
            0.0
        } else {
            reqs as f64 / groups as f64
        }
    }

    /// Mean queue latency per completion, in simulated cycles.
    pub fn mean_queue_cycles(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.queue_cycles_sum / self.completed as f64
        }
    }

    /// Prometheus text exposition (counters and gauges under the
    /// `kami_serve_` prefix).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP kami_serve_{name} {help}");
            let _ = writeln!(out, "# TYPE kami_serve_{name} counter");
            let _ = writeln!(out, "kami_serve_{name} {v}");
        };
        counter(
            "submitted_total",
            "Requests admitted",
            self.submitted as f64,
        );
        counter(
            "rejected_queue_full_total",
            "Submissions bounced by backpressure",
            self.rejected_queue_full as f64,
        );
        counter(
            "rejected_shutting_down_total",
            "Submissions refused during drain",
            self.rejected_shutting_down as f64,
        );
        counter(
            "completed_total",
            "Requests completed",
            self.completed as f64,
        );
        counter("failed_total", "Requests failed", self.failed as f64);
        counter(
            "retries_total",
            "Deadline misses requeued with backoff",
            self.retries as f64,
        );
        counter(
            "degraded_serial_total",
            "Completions via the serial fallback",
            self.degraded_serial as f64,
        );
        counter("ticks_total", "Dispatching ticks", self.ticks as f64);
        counter(
            "queue_cycles_total",
            "Simulated cycles requests waited eligible",
            self.queue_cycles_sum,
        );
        counter(
            "service_cycles_total",
            "Simulated cycles from group start to done",
            self.service_cycles_sum,
        );
        counter(
            "group_cycles_total",
            "Simulated device-busy cycles across groups",
            self.group_cycles_sum,
        );
        let mut gauge = |name: &str, help: &str, v: f64| {
            let _ = writeln!(out, "# HELP kami_serve_{name} {help}");
            let _ = writeln!(out, "# TYPE kami_serve_{name} gauge");
            let _ = writeln!(out, "kami_serve_{name} {v}");
        };
        gauge(
            "max_queue_depth",
            "Largest queue depth seen at submit",
            self.max_queue_depth as f64,
        );
        gauge(
            "coalesce_factor",
            "Mean requests per dispatched group",
            self.coalesce_factor(),
        );
        gauge(
            "mean_queue_cycles",
            "Mean eligible-wait cycles per completion",
            self.mean_queue_cycles(),
        );
        out
    }
}

/// Merged device trace: every dispatched group's per-SM trace, offset
/// to the group's start on the service clock, in one Chrome-trace
/// timeline.
#[derive(Debug, Clone, Default)]
pub(crate) struct MergedTrace {
    pub trace: Trace,
}

impl MergedTrace {
    pub(crate) fn absorb(&mut self, group: &Trace, offset_cycles: f64) {
        self.trace.absorb(group, offset_cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_export_names_every_counter() {
        let mut m = Metrics {
            submitted: 7,
            completed: 5,
            ..Metrics::default()
        };
        m.per_tick.push(TickRecord {
            tick: 1,
            requests: 4,
            groups: 2,
            makespan_cycles: 100.0,
            utilization: 0.5,
        });
        let text = m.to_prometheus();
        for name in [
            "kami_serve_submitted_total 7",
            "kami_serve_completed_total 5",
            "kami_serve_coalesce_factor 2",
            "# TYPE kami_serve_ticks_total counter",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
    }

    #[test]
    fn merged_trace_offsets_events() {
        use kami_gpu_sim::{TraceEvent, TraceKind};
        let mut group = Trace::default();
        group.events.push(TraceEvent {
            warp: 0,
            phase: 0,
            kind: TraceKind::Mma,
            amount: 1,
            start: 5.0,
            duration: 2.0,
            detail: String::new(),
        });
        group.phase_starts = vec![0.0, 7.0];
        let mut merged = MergedTrace::default();
        merged.absorb(&group, 100.0);
        assert_eq!(merged.trace.events[0].start, 105.0);
        assert_eq!(merged.trace.total_cycles(), 107.0);
    }
}
