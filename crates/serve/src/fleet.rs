//! Fleet serving: heterogeneous device replicas behind one router.
//!
//! A [`FleetServer`] owns N replicas of each device class in its
//! [`FleetSpec`] — by default the four Table 3 presets — each replica a
//! full [`Server`] with its own simulated tick clock, admission queue,
//! and coalescing/retry/fallback machinery. The router places every
//! request on the replica whose *predicted completion time* is
//! earliest, in simulated seconds (cycles ÷ the replica's clock rate —
//! cross-device comparisons in raw cycles would be meaningless).
//!
//! ## The cost oracle
//!
//! Predictions come from the shared [`PlanCache`]: the same
//! shape-class-keyed cost pass a dispatch runs. A cold shape triggers
//! one tuning + cost pass per candidate device class, after which
//! every routing decision for that shape class is answered from cache
//! — and the dispatching replica reuses the very same cached plan, so
//! the router's estimate and the dispatcher's charge agree by
//! construction.
//!
//! ## The numerics plane vs the cost plane
//!
//! Auto-tuned configurations differ across device classes, and with
//! them the blocked accumulation order — so running the same GEMM's
//! *numerics* on different devices produces bit-different results.
//! The fleet therefore splits the planes: every replica computes
//! payloads with the engine of the fleet's designated
//! [`FleetSpec::numeric_device`] (default GH200), while scheduling,
//! cost modelling, and the clock use the replica's own device. Routing
//! decides only whose clock pays the cycles; the bytes are identical
//! wherever a request lands, which is exactly what the kami-verify
//! fleet replay pins.
//!
//! Placement honours [`ServeRequest::device_affinity`] (exact
//! [`DeviceSpec::name`] match) and treats per-device infeasibility
//! (e.g. FP64 on a device without FP64 MMA shapes) as ineligibility —
//! FP64 traffic automatically routes to the classes that can model it.

use crate::error::ServeError;
use crate::metrics::{write_plan_cache_series, CycleHistogram, Metrics};
use crate::request::{ServeRequest, Workload};
use crate::server::{Server, ServerConfig};
use crate::ticket::{Completed, Ticket};
use kami_gpu_sim::{device, CostConfig, DeviceSpec};
use kami_sched::{BlockWork, CacheConfig, PlanCache, PlanCacheStats, Scheduler, SparseWork};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One device class in a fleet: a preset plus how many replicas run it.
#[derive(Debug, Clone)]
pub struct DeviceClass {
    pub device: DeviceSpec,
    pub replicas: usize,
    /// Cost-model override for every replica of this class — the fleet
    /// fault-injection hook. Cost-only by construction: numerics run on
    /// the fleet's numeric device and never see this config.
    pub cost: Option<CostConfig>,
    /// "Reality" cost model for this class's replicas
    /// ([`ServerConfig::true_cost`]): dispatches re-cost under it,
    /// the clock charges the observed makespan, and the observation
    /// channel records observed/predicted ratios. The mis-modeled-device
    /// hook: `cost` changes what the model *believes*, `true_cost`
    /// changes what execution *costs*.
    pub true_cost: Option<CostConfig>,
}

impl DeviceClass {
    pub fn new(device: DeviceSpec, replicas: usize) -> Self {
        DeviceClass {
            device,
            replicas,
            cost: None,
            true_cost: None,
        }
    }
}

/// What hardware the fleet is made of, and which device class computes
/// the payloads.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    pub classes: Vec<DeviceClass>,
    /// The device whose engine produces every payload, regardless of
    /// placement (see the module docs on the numerics plane).
    pub numeric_device: DeviceSpec,
    /// Budget/admission/feedback knobs for the *shared* plan cache all
    /// replicas route and dispatch through. Default = unbounded +
    /// no-feedback (the historical fleet).
    pub cache: CacheConfig,
}

impl FleetSpec {
    /// All four Table 3 presets at `replicas` each, numerics on GH200.
    pub fn table3(replicas: usize) -> Self {
        FleetSpec {
            classes: DeviceSpec::all_evaluated()
                .into_iter()
                .map(|d| DeviceClass::new(d, replicas))
                .collect(),
            numeric_device: device::gh200(),
            cache: CacheConfig::default(),
        }
    }

    /// A single-class fleet. The numeric device defaults to GH200 so a
    /// homogeneous fleet of any class is payload-comparable with the
    /// heterogeneous one.
    pub fn homogeneous(device_spec: &DeviceSpec, replicas: usize) -> Self {
        FleetSpec {
            classes: vec![DeviceClass::new(device_spec.clone(), replicas)],
            numeric_device: device::gh200(),
            cache: CacheConfig::default(),
        }
    }

    /// Pin the numerics-plane device.
    pub fn with_numeric_device(mut self, d: DeviceSpec) -> Self {
        self.numeric_device = d;
        self
    }

    /// Set the shared plan cache's budget/admission/feedback knobs.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    pub fn total_replicas(&self) -> usize {
        self.classes.iter().map(|c| c.replicas).sum()
    }
}

/// How the fleet places requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Consult the cost oracle: place on the eligible replica whose
    /// simulated clock + predicted makespan finishes earliest.
    #[default]
    EarliestCompletion,
    /// Ignore the oracle: rotate over eligible replicas. The baseline
    /// the oracle is benchmarked against.
    RoundRobin,
}

/// Fleet-level tuning knobs.
#[derive(Debug, Clone, Default)]
pub struct FleetConfig {
    /// Template for every replica's [`ServerConfig`]. The fleet
    /// overrides `cost` (from the class) and `numeric_device` (from the
    /// spec) per replica.
    pub server: ServerConfig,
    pub policy: RoutingPolicy,
}

/// One fleet member: a [`Server`] plus its identity in the fleet.
pub struct Replica {
    /// Fleet-wide replica index (stable across the fleet's lifetime).
    pub id: usize,
    /// Index into [`FleetSpec::classes`].
    pub class: usize,
    server: Server,
}

impl Replica {
    pub fn server(&self) -> &Server {
        &self.server
    }

    pub fn device(&self) -> &DeviceSpec {
        self.server.device()
    }

    /// This replica's clock in simulated seconds — the fleet's common
    /// currency across device classes.
    pub fn clock_secs(&self) -> f64 {
        self.server.clock() / self.device().clock_hz()
    }
}

/// A routing candidate the router considered for one request.
#[derive(Debug, Clone)]
pub struct RouteCandidate {
    pub replica: usize,
    pub device: String,
    /// Predicted completion on this replica's clock, simulated seconds.
    pub predicted_completion_secs: f64,
}

/// The router's read-only answer for one request: every eligible
/// candidate with its predicted completion, and the pick.
#[derive(Debug, Clone)]
pub struct RouteDecision {
    pub chosen: usize,
    pub candidates: Vec<RouteCandidate>,
}

/// The fleet's handle to an in-flight request: the placed replica plus
/// the underlying [`Ticket`].
#[derive(Debug)]
pub struct FleetTicket {
    pub replica: usize,
    pub device: String,
    pub ticket: Ticket,
}

impl FleetTicket {
    /// Block until the request resolves (some thread must tick or drain
    /// the placed replica).
    pub fn wait(self) -> Result<Completed, ServeError> {
        self.ticket.wait()
    }
}

/// Fleet-wide routing counters.
#[derive(Debug, Clone, Default)]
pub struct RouterStats {
    /// Requests placed on a replica.
    pub routed: u64,
    /// Submissions refused because no replica was eligible.
    pub no_eligible: u64,
    /// Placements that fell past the oracle's first choice because its
    /// queue was full.
    pub spilled: u64,
}

/// One replica's rolled-up account in a [`FleetMetrics`] snapshot.
#[derive(Debug, Clone)]
pub struct ReplicaMetrics {
    pub replica: usize,
    pub device: String,
    pub metrics: Metrics,
    /// Replica clock, device cycles.
    pub clock_cycles: f64,
    /// Replica clock, simulated seconds.
    pub clock_secs: f64,
    /// Queue depth at snapshot time.
    pub queue_depth: usize,
}

impl ReplicaMetrics {
    /// Device-busy fraction of this replica's clock: group cycles over
    /// clock cycles.
    pub fn utilization(&self) -> f64 {
        if self.clock_cycles > 0.0 {
            (self.metrics.group_cycles_sum / self.clock_cycles).min(1.0)
        } else {
            0.0
        }
    }
}

/// Fleet rollup: per-replica accounts plus exact cross-fleet
/// aggregates (the completion histogram merges bucket-wise because all
/// replicas share [`CycleHistogram`]'s fixed boundaries).
#[derive(Debug, Clone)]
pub struct FleetMetrics {
    pub replicas: Vec<ReplicaMetrics>,
    pub router: RouterStats,
    /// All replicas' completion latencies, merged.
    pub completion_cycles: CycleHistogram,
    /// The shared plan cache's account (one cache serves every
    /// replica, so this is fleet-wide, not a per-replica rollup).
    pub plan_cache: PlanCacheStats,
}

impl FleetMetrics {
    pub fn submitted(&self) -> u64 {
        self.replicas.iter().map(|r| r.metrics.submitted).sum()
    }

    pub fn completed(&self) -> u64 {
        self.replicas.iter().map(|r| r.metrics.completed).sum()
    }

    pub fn failed(&self) -> u64 {
        self.replicas.iter().map(|r| r.metrics.failed).sum()
    }

    /// The fleet-level makespan: the furthest-ahead replica clock in
    /// simulated seconds. Aggregate throughput = work ÷ this.
    pub fn makespan_secs(&self) -> f64 {
        self.replicas
            .iter()
            .map(|r| r.clock_secs)
            .fold(0.0, f64::max)
    }

    /// Prometheus text exposition with `device` and `replica` labels on
    /// every per-replica series, plus fleet-level aggregates.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let series = |out: &mut String, name: &str, help: &str, kind: &str| {
            let _ = writeln!(out, "# HELP kami_fleet_{name} {help}");
            let _ = writeln!(out, "# TYPE kami_fleet_{name} {kind}");
        };
        series(&mut out, "submitted_total", "Requests admitted", "counter");
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "kami_fleet_submitted_total{{device=\"{}\",replica=\"{}\"}} {}",
                r.device, r.replica, r.metrics.submitted
            );
        }
        series(&mut out, "completed_total", "Requests completed", "counter");
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "kami_fleet_completed_total{{device=\"{}\",replica=\"{}\"}} {}",
                r.device, r.replica, r.metrics.completed
            );
        }
        series(
            &mut out,
            "utilization",
            "Device-busy fraction of the replica clock",
            "gauge",
        );
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "kami_fleet_utilization{{device=\"{}\",replica=\"{}\"}} {:.6}",
                r.device,
                r.replica,
                r.utilization()
            );
        }
        series(&mut out, "queue_depth", "Queued requests", "gauge");
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "kami_fleet_queue_depth{{device=\"{}\",replica=\"{}\"}} {}",
                r.device, r.replica, r.queue_depth
            );
        }
        series(
            &mut out,
            "clock_seconds",
            "Replica clock in simulated seconds",
            "gauge",
        );
        for r in &self.replicas {
            let _ = writeln!(
                out,
                "kami_fleet_clock_seconds{{device=\"{}\",replica=\"{}\"}} {:.9}",
                r.device, r.replica, r.clock_secs
            );
        }
        series(
            &mut out,
            "routed_total",
            "Requests placed by the router",
            "counter",
        );
        let _ = writeln!(out, "kami_fleet_routed_total {}", self.router.routed);
        series(
            &mut out,
            "no_eligible_total",
            "Submissions with no eligible replica",
            "counter",
        );
        let _ = writeln!(
            out,
            "kami_fleet_no_eligible_total {}",
            self.router.no_eligible
        );
        series(
            &mut out,
            "completion_cycles_p50",
            "Fleet-wide median completion latency, simulated cycles",
            "gauge",
        );
        let _ = writeln!(
            out,
            "kami_fleet_completion_cycles_p50 {}",
            self.completion_cycles.p50()
        );
        series(
            &mut out,
            "completion_cycles_p99",
            "Fleet-wide p99 completion latency, simulated cycles",
            "gauge",
        );
        let _ = writeln!(
            out,
            "kami_fleet_completion_cycles_p99 {}",
            self.completion_cycles.p99()
        );
        series(
            &mut out,
            "completion_cycles_p999",
            "Fleet-wide p99.9 completion latency, simulated cycles",
            "gauge",
        );
        let _ = writeln!(
            out,
            "kami_fleet_completion_cycles_p999 {}",
            self.completion_cycles.p999()
        );
        write_plan_cache_series(&mut out, "kami_fleet", &self.plan_cache);
        out
    }
}

/// A heterogeneous fleet of [`Server`] replicas behind a cost-oracle
/// router. See the module docs for the routing and numerics model.
pub struct FleetServer {
    spec: FleetSpec,
    config: FleetConfig,
    replicas: Vec<Replica>,
    /// One cache for the whole fleet: plan/cost keys carry the device
    /// name and cost fingerprint, so classes never collide and an
    /// injected class costs separately from a clean one.
    plans: Arc<PlanCache>,
    /// Predicted busy horizon per replica, simulated seconds; covers
    /// placed-but-not-yet-ticked work the replica clock can't see yet.
    busy_until: Mutex<Vec<f64>>,
    /// Round-robin cursor (used by [`RoutingPolicy::RoundRobin`]).
    rr_next: AtomicU64,
    router: Mutex<RouterStats>,
}

impl FleetServer {
    pub fn new(spec: FleetSpec) -> Self {
        Self::with_config(spec, FleetConfig::default())
    }

    pub fn with_config(spec: FleetSpec, config: FleetConfig) -> Self {
        let plans = Arc::new(PlanCache::with_config(spec.cache.clone()));
        let mut replicas = Vec::with_capacity(spec.total_replicas());
        for (class_idx, class) in spec.classes.iter().enumerate() {
            for _ in 0..class.replicas {
                let server_cfg = ServerConfig {
                    cost: class.cost.clone(),
                    true_cost: class.true_cost.clone(),
                    numeric_device: Some(spec.numeric_device.clone()),
                    cache: spec.cache.clone(),
                    ..config.server.clone()
                };
                replicas.push(Replica {
                    id: replicas.len(),
                    class: class_idx,
                    server: Server::with_shared_plans(
                        &class.device,
                        server_cfg,
                        Arc::clone(&plans),
                    ),
                });
            }
        }
        let n = replicas.len();
        FleetServer {
            spec,
            config,
            replicas,
            plans,
            busy_until: Mutex::new(vec![0.0; n]),
            rr_next: AtomicU64::new(0),
            router: Mutex::new(RouterStats::default()),
        }
    }

    pub fn spec(&self) -> &FleetSpec {
        &self.spec
    }

    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    pub fn replicas(&self) -> &[Replica] {
        &self.replicas
    }

    /// The fleet-wide shared plan/cost cache.
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// Predict this request's makespan on `replica`'s device, in that
    /// device's cycles — the cost-oracle query. Sparse workloads go
    /// through the nnz-weighted scheduler path, dense through the
    /// cached cost pass ([`PlanCache::predict_makespan`]). An error
    /// means the device class cannot run the request (ineligible).
    pub fn predicted_cycles(
        &self,
        replica: usize,
        request: &ServeRequest,
    ) -> Result<f64, ServeError> {
        let r = &self.replicas[replica];
        let dev = r.device();
        let cost = r.server.config().cost.as_ref();
        match &request.workload {
            Workload::Dense(_) => {
                let work = BlockWork::new(request.work_items());
                Ok(self.plans.predict_makespan(dev, &work, cost)?)
            }
            Workload::Spmm { a, b, cfg } => {
                let work = SparseWork::from_spmm(a, b.cols(), cfg.precision);
                let mut s = Scheduler::new(dev);
                if let Some(c) = cost {
                    s = s.with_cost(c.clone());
                }
                Ok(s.run_sparse(&work, &self.plans)?.schedule.makespan_cycles)
            }
            Workload::Spgemm { a, b, cfg } => {
                let work = SparseWork::from_spgemm(a, b, cfg.precision);
                let mut s = Scheduler::new(dev);
                if let Some(c) = cost {
                    s = s.with_cost(c.clone());
                }
                Ok(s.run_sparse(&work, &self.plans)?.schedule.makespan_cycles)
            }
        }
    }

    /// Predicted completion time of `request` on `replica`: the later
    /// of the replica's clock and its placed-work horizon, plus the
    /// predicted makespan — all in simulated seconds.
    pub fn predicted_completion_secs(
        &self,
        replica: usize,
        request: &ServeRequest,
    ) -> Result<f64, ServeError> {
        let r = &self.replicas[replica];
        let pred_secs = self.predicted_cycles(replica, request)? / r.device().clock_hz();
        let horizon = {
            let busy = self.busy_until.lock().unwrap_or_else(|p| p.into_inner());
            busy[replica]
        };
        Ok(horizon.max(r.clock_secs()) + pred_secs)
    }

    /// Answer the routing question without placing the request: every
    /// eligible replica with its predicted completion, and the pick
    /// under the configured policy. `Err(NoEligibleReplica)` when
    /// affinity or infeasibility rules out the whole fleet.
    pub fn plan_route(&self, request: &ServeRequest) -> Result<RouteDecision, ServeError> {
        let mut candidates = Vec::new();
        let mut excluded = Vec::new();
        for r in &self.replicas {
            if let Some(want) = &request.device_affinity {
                if r.device().name != *want {
                    continue;
                }
            }
            match self.predicted_completion_secs(r.id, request) {
                Ok(secs) => candidates.push(RouteCandidate {
                    replica: r.id,
                    device: r.device().name.clone(),
                    predicted_completion_secs: secs,
                }),
                Err(e) => excluded.push(format!("{}#{}: {e}", r.device().name, r.id)),
            }
        }
        if candidates.is_empty() {
            let detail = if let Some(want) = &request.device_affinity {
                format!(
                    "affinity {want:?} matched no feasible replica ({} excluded: {})",
                    excluded.len(),
                    excluded.join("; ")
                )
            } else {
                format!(
                    "no device class can run this request ({})",
                    excluded.join("; ")
                )
            };
            return Err(ServeError::NoEligibleReplica { detail });
        }
        let chosen = match self.config.policy {
            RoutingPolicy::EarliestCompletion => {
                candidates
                    .iter()
                    .min_by(|a, b| {
                        a.predicted_completion_secs
                            .total_cmp(&b.predicted_completion_secs)
                    })
                    .expect("non-empty")
                    .replica
            }
            RoutingPolicy::RoundRobin => {
                let n = self.rr_next.fetch_add(1, Ordering::Relaxed) as usize;
                candidates[n % candidates.len()].replica
            }
        };
        Ok(RouteDecision { chosen, candidates })
    }

    /// Route and admit one request. The oracle's first choice is tried
    /// first; a full queue spills to the next-best candidate rather
    /// than bouncing the client. Only when every eligible replica is
    /// full does the queue-full error surface.
    pub fn submit(&self, request: ServeRequest) -> Result<FleetTicket, ServeError> {
        self.submit_shared(Arc::new(request))
    }

    /// Route and admit an already-`Arc`'d request — the zero-copy
    /// path. Every spill candidate is offered the same allocation; the
    /// payload is never cloned however many replicas are probed.
    pub fn submit_shared(&self, request: Arc<ServeRequest>) -> Result<FleetTicket, ServeError> {
        let decision = match self.plan_route(&request) {
            Ok(d) => d,
            Err(e) => {
                self.router
                    .lock()
                    .unwrap_or_else(|p| p.into_inner())
                    .no_eligible += 1;
                return Err(e);
            }
        };
        let mut order = decision.candidates.clone();
        match self.config.policy {
            RoutingPolicy::EarliestCompletion => {
                order.sort_by(|a, b| {
                    a.predicted_completion_secs
                        .total_cmp(&b.predicted_completion_secs)
                });
            }
            RoutingPolicy::RoundRobin => {
                // Rotate so the policy's pick is first, preserving
                // rotation order for spill.
                let pos = order
                    .iter()
                    .position(|c| c.replica == decision.chosen)
                    .expect("chosen is a candidate");
                order.rotate_left(pos);
            }
        }
        let mut last_err = None;
        for (rank, cand) in order.iter().enumerate() {
            match self.submit_shared_to(cand.replica, Arc::clone(&request)) {
                Ok(t) => {
                    let mut stats = self.router.lock().unwrap_or_else(|p| p.into_inner());
                    stats.routed += 1;
                    if rank > 0 {
                        stats.spilled += 1;
                    }
                    drop(stats);
                    let mut busy = self.busy_until.lock().unwrap_or_else(|p| p.into_inner());
                    busy[cand.replica] = busy[cand.replica].max(cand.predicted_completion_secs);
                    return Ok(t);
                }
                Err(e @ ServeError::QueueFull { .. }) => last_err = Some(e),
                Err(e) => return Err(e),
            }
        }
        self.router
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .no_eligible += 1;
        Err(ServeError::NoEligibleReplica {
            detail: format!(
                "every eligible replica is at capacity (last: {})",
                last_err.expect("at least one candidate was tried")
            ),
        })
    }

    /// Admit on a specific replica, bypassing the router. The
    /// kami-verify fleet replay uses this to probe twin replicas with
    /// identical requests.
    pub fn submit_to(
        &self,
        replica: usize,
        request: ServeRequest,
    ) -> Result<FleetTicket, ServeError> {
        self.submit_shared_to(replica, Arc::new(request))
    }

    /// Admit an already-`Arc`'d request on a specific replica.
    pub fn submit_shared_to(
        &self,
        replica: usize,
        request: Arc<ServeRequest>,
    ) -> Result<FleetTicket, ServeError> {
        let r = &self.replicas[replica];
        let ticket = r.server.submit_shared(request)?;
        Ok(FleetTicket {
            replica,
            device: r.device().name.clone(),
            ticket,
        })
    }

    /// Tick every replica's dispatcher once. Replica clocks advance
    /// independently — a fleet tick is *not* a barrier.
    pub fn tick_all(&self) {
        for r in &self.replicas {
            r.server.tick();
        }
    }

    /// Tick until every replica's queue is dry.
    pub fn drain(&self) {
        for r in &self.replicas {
            r.server.drain();
        }
    }

    /// Stop admission fleet-wide.
    pub fn shutdown(&self) {
        for r in &self.replicas {
            r.server.shutdown();
        }
    }

    /// Graceful exit: stop admission, then finish all queued work.
    pub fn shutdown_and_drain(&self) {
        self.shutdown();
        self.drain();
    }

    /// Queued requests across the fleet.
    pub fn pending(&self) -> usize {
        self.replicas.iter().map(|r| r.server.pending()).sum()
    }

    /// Roll up every replica's metrics into the fleet account.
    pub fn metrics(&self) -> FleetMetrics {
        let mut completion = CycleHistogram::default();
        let replicas = self
            .replicas
            .iter()
            .map(|r| {
                let m = r.server.metrics();
                completion.merge(&m.completion_cycles);
                ReplicaMetrics {
                    replica: r.id,
                    device: r.device().name.clone(),
                    clock_cycles: r.server.clock(),
                    clock_secs: r.clock_secs(),
                    queue_depth: r.server.pending(),
                    metrics: m,
                }
            })
            .collect();
        FleetMetrics {
            replicas,
            router: self
                .router
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .clone(),
            completion_cycles: completion,
            plan_cache: self.plans.stats(),
        }
    }

    /// Prometheus text exposition of the fleet rollup.
    pub fn to_prometheus(&self) -> String {
        self.metrics().to_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::{Matrix, Precision};

    fn req(seed: u64, m: usize, n: usize, k: usize) -> ServeRequest {
        let a = Matrix::seeded_uniform(m, k, seed);
        let b = Matrix::seeded_uniform(k, n, seed + 1000);
        ServeRequest::gemm(a, b, Precision::Fp16)
    }

    #[test]
    fn fleet_serves_and_rolls_up() {
        let fleet = FleetServer::new(FleetSpec::table3(1));
        let tickets: Vec<_> = (0..8)
            .map(|i| fleet.submit(req(i, 64, 64, 64)).unwrap())
            .collect();
        fleet.shutdown_and_drain();
        for t in tickets {
            t.wait().unwrap();
        }
        let m = fleet.metrics();
        assert_eq!(m.submitted(), 8);
        assert_eq!(m.completed(), 8);
        assert_eq!(m.failed(), 0);
        assert_eq!(m.router.routed, 8);
        assert_eq!(m.completion_cycles.count(), 8);
        assert!(m.makespan_secs() > 0.0);
        let prom = m.to_prometheus();
        assert!(prom.contains("device=\""));
        assert!(prom.contains("replica=\""));
        assert!(prom.contains("kami_fleet_completion_cycles_p99"));
    }

    #[test]
    fn fleet_payloads_match_the_numeric_device_bitwise() {
        let fleet = FleetServer::new(FleetSpec::table3(1));
        let ndev = fleet.spec().numeric_device.clone();
        for seed in 0..4 {
            let r = req(seed, 32, 32, 32);
            let direct = r.execute(&ndev).unwrap();
            // Force placement on every class in turn: all must match
            // the numeric device's bytes.
            for i in 0..fleet.replicas().len() {
                let t = fleet.submit_to(i, r.clone()).unwrap();
                fleet.replicas()[i].server().tick();
                let done = t.wait().unwrap();
                let got = done.output.into_dense().unwrap().into_single().unwrap();
                let want = direct.clone().into_dense().unwrap().into_single().unwrap();
                assert_eq!(
                    got.c.as_slice(),
                    want.c.as_slice(),
                    "replica {i} diverged from the numeric device"
                );
            }
        }
    }

    #[test]
    fn affinity_is_refused_when_no_replica_matches() {
        let fleet = FleetServer::new(FleetSpec::homogeneous(&device::gh200(), 2));
        let r = req(0, 64, 64, 64).with_affinity("NVIDIA RTX 5090");
        match fleet.submit(r) {
            Err(ServeError::NoEligibleReplica { .. }) => {}
            other => panic!("expected NoEligibleReplica, got {other:?}"),
        }
        assert_eq!(fleet.metrics().router.no_eligible, 1);
    }

    #[test]
    fn fp64_routes_only_to_capable_classes() {
        let fleet = FleetServer::new(FleetSpec::table3(1));
        let a = Matrix::seeded_uniform(32, 32, 5);
        let b = Matrix::seeded_uniform(32, 32, 6);
        let r = ServeRequest::gemm(a, b, Precision::Fp64);
        let decision = fleet.plan_route(&r).unwrap();
        for c in &decision.candidates {
            assert_eq!(
                c.device, "NVIDIA GH200",
                "only GH200 models FP64 MMA shapes"
            );
        }
    }
}
