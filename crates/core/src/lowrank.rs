//! Low-rank GEMM (paper §2.1 Fig 1(d), evaluated in §5.3): `C = U·V` with
//! `U: m×k`, `V: k×n` and `k ≪ m, n` (the paper uses k = 16, 32).
//!
//! KAMI's advantage is largest here: staged libraries pay the
//! shared-memory round trip on operands whose reuse a small k cannot
//! amortize, while KAMI loads straight into registers and uses shared
//! memory only for the broadcast (§5.3).
//!
//! ## The column-split kernel
//!
//! Algorithm 1 splits **k** across its stages, which a low-rank k cannot
//! afford: a `k/p` chunk below the 16-deep MMA granularity pads every
//! instruction. The low-rank entry point therefore uses the 1D layout
//! *rotated onto the n dimension*: warp `i` owns the column strips
//! `V[:, i·n/p ..]` and `C[:, i·n/p ..]` with the **full** k in
//! registers, and the `p` stages broadcast the *small* factor's row
//! blocks `U_z` (`m/p × k`) through shared memory:
//!
//! ```text
//! C[z·m/p .., own strip] += U_zRecv · V_own
//! ```
//!
//! k is never split, so the MMA depth stays aligned, and the broadcast
//! volume is `p·mk·s_e` — tiny, because `U` is the thin factor. This is
//! the same compute/communication pattern as Algorithm 1 with the roles
//! of the operands exchanged.

use crate::config::{Algo, KamiConfig};
use crate::error::KamiError;
use crate::gemm::{c_precision, exec_gemm_auto, GemmResult};
use crate::layout::{tile_bytes, SmemMap};
use kami_gpu_sim::{BlockKernel, BufferId, DeviceSpec, Engine, GlobalMemory, Matrix, Precision};

/// Largest inner dimension still considered "low-rank" by this interface
/// (the paper evaluates 16 and 32; 64 is a generous upper bound).
pub const MAX_LOW_RANK: usize = 64;

/// Build the column-split 1D kernel (see module docs).
///
/// Preconditions: `p | m`, `p | n`.
#[allow(clippy::too_many_arguments)]
pub fn build_colsplit_kernel(
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
    a_buf: BufferId,
    b_buf: BufferId,
    c_buf: BufferId,
    c_prec: Precision,
) -> BlockKernel {
    let p = cfg.warps;
    let (mi, ni) = (m / p, n / p);
    let prec = cfg.precision;
    let map = SmemMap::new(1, tile_bytes(mi, k, prec), 0, 0, 0);

    BlockKernel::spmd(p, |i, w| {
        let u_own = w.frag("Ui", mi, k, prec);
        let u_recv = w.frag("URecv", mi, k, prec);
        let v_own = w.frag("Vi", k, ni, prec);
        let c_strips: Vec<usize> = (0..p)
            .map(|z| w.frag(format!("Ci[{z}]"), mi, ni, c_prec))
            .collect();

        w.global_load(u_own, a_buf, i * mi, 0);
        w.global_load(v_own, b_buf, 0, i * ni);
        for &cf in &c_strips {
            w.zero_acc(cf);
        }

        for (z, &c_strip) in c_strips.iter().enumerate() {
            if i == z {
                w.shared_store(u_own, map.a_addr(0));
                w.reg_copy(u_recv, u_own);
            }
            w.barrier();
            if i != z {
                w.shared_load(u_recv, map.a_addr(0));
            }
            w.barrier();
            w.mma(c_strip, u_recv, v_own);
        }

        for (z, &cf) in c_strips.iter().enumerate() {
            w.global_store(cf, c_buf, z * mi, i * ni);
        }
    })
}

/// Run the column-split low-rank kernel directly.
pub fn lowrank_gemm_colsplit(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    u: &Matrix,
    v: &Matrix,
) -> Result<GemmResult, KamiError> {
    let (m, k) = (u.rows(), u.cols());
    let (kv, n) = (v.rows(), v.cols());
    if k != kv {
        return Err(KamiError::ShapeMismatch {
            detail: format!("U is {m}x{k} but V is {kv}x{n}"),
        });
    }
    let p = cfg.warps;
    if m % p != 0 || n % p != 0 {
        return Err(KamiError::Indivisible {
            detail: format!("column-split kernel needs p | m and p | n (got {m}x{n}, p={p})"),
        });
    }
    if device.peak_tflops(cfg.precision).is_none() {
        return Err(KamiError::Unsupported {
            detail: format!(
                "{} has no tensor path for {}",
                device.name,
                cfg.precision.label()
            ),
        });
    }
    let prec = cfg.precision;
    let c_prec = c_precision(prec);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("U", u, prec);
    let bb = gmem.upload("V", v, prec);
    let cb = gmem.alloc_zeroed("C", m, n, c_prec);
    let kernel = build_colsplit_kernel(cfg, m, n, k, ab, bb, cb, c_prec);
    let report = Engine::with_cost(device, cfg.cost.clone())
        .run_kernel(
            &kernel,
            &mut gmem,
            &kami_gpu_sim::RunOptions::default().with_backend(cfg.backend),
        )?
        .report;
    Ok(GemmResult {
        c: gmem.download(cb),
        report,
        smem_fraction: cfg.smem_fraction,
        useful_flops: 2 * (m as u64) * (n as u64) * (k as u64),
    })
}

/// Multiply a low-rank factorization `U·V`.
///
/// Dispatches to the column-split kernel when the configured algorithm
/// is 1D (where k-splitting would shred the thin inner dimension);
/// 2D/3D configurations run the general kernels. Errors if
/// `k > MAX_LOW_RANK`.
pub fn lowrank_gemm(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    u: &Matrix,
    v: &Matrix,
) -> Result<GemmResult, KamiError> {
    crate::request::GemmRequest::from_config(
        crate::request::Op::Lowrank {
            u: u.clone(),
            v: v.clone(),
        },
        cfg,
    )
    .execute_single(device)
}

/// Engine body of [`lowrank_gemm`] (shared by the request executor).
pub(crate) fn exec_lowrank_gemm(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    u: &Matrix,
    v: &Matrix,
) -> Result<GemmResult, KamiError> {
    let k = u.cols();
    if k > MAX_LOW_RANK {
        return Err(KamiError::Unsupported {
            detail: format!("k = {k} exceeds the low-rank bound {MAX_LOW_RANK}; use gemm()"),
        });
    }
    match cfg.algo {
        Algo::OneD => lowrank_gemm_colsplit(device, cfg, u, v),
        _ => exec_gemm_auto(device, cfg, u, v),
    }
}

/// Pick a warp count for a low-rank problem: the largest `p` of the
/// candidate ladder whose partition constraints divide `(m, n, k)`.
pub fn auto_warps(algo: Algo, m: usize, n: usize, k: usize) -> usize {
    let candidates: &[usize] = match algo {
        Algo::OneD => &[16, 8, 4, 2, 1],
        Algo::TwoD => &[16, 9, 4, 1],
        Algo::ThreeD => &[27, 8, 1],
    };
    for &p in candidates {
        let ok = match algo {
            // Column-split kernel: p | m and p | n, k untouched.
            Algo::OneD => m.is_multiple_of(p) && n.is_multiple_of(p),
            Algo::TwoD => {
                let q = (p as f64).sqrt().round() as usize;
                m.is_multiple_of(q) && n.is_multiple_of(q) && k.is_multiple_of(q)
            }
            Algo::ThreeD => {
                let q = (p as f64).cbrt().round() as usize;
                m.is_multiple_of(q) && n.is_multiple_of(q) && k.is_multiple_of(q * q)
            }
        };
        if ok {
            return p;
        }
    }
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::{reference_gemm, reference_gemm_f64};
    use kami_gpu_sim::{device::gh200, Precision};

    #[test]
    fn colsplit_product_correct_fp64() {
        let dev = gh200();
        let (m, n, k) = (32, 32, 16);
        let u = Matrix::seeded_uniform(m, k, 71);
        let v = Matrix::seeded_uniform(k, n, 72);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64).with_warps(4);
        let res = lowrank_gemm(&dev, &cfg, &u, &v).unwrap();
        let want = reference_gemm(&u, &v, Precision::Fp64);
        assert!(res.c.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn colsplit_product_correct_fp16() {
        let dev = gh200();
        let (m, n, k) = (64, 64, 16);
        let u = Matrix::seeded_uniform(m, k, 71);
        let v = Matrix::seeded_uniform(k, n, 72);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(auto_warps(
            Algo::OneD,
            m,
            n,
            k,
        ));
        let res = lowrank_gemm(&dev, &cfg, &u, &v).unwrap();
        let want = reference_gemm(&u, &v, Precision::Fp16);
        assert!(res.c.rel_frobenius_error(&want) < 1e-2);
    }

    #[test]
    fn colsplit_charges_no_padding_waste_at_k16() {
        // k = 16 matches the FP16 MMA depth exactly: charged == useful.
        let dev = gh200();
        let (m, n, k) = (64, 64, 16);
        let u = Matrix::seeded_uniform(m, k, 1);
        let v = Matrix::seeded_uniform(k, n, 2);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(4);
        let res = lowrank_gemm(&dev, &cfg, &u, &v).unwrap();
        assert_eq!(res.report.flops_charged, res.useful_flops);
    }

    #[test]
    fn colsplit_broadcasts_only_the_thin_factor() {
        let dev = gh200();
        let (m, n, k) = (64, 64, 16);
        let u = Matrix::seeded_uniform(m, k, 1);
        let v = Matrix::seeded_uniform(k, n, 2);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(4);
        let res = lowrank_gemm(&dev, &cfg, &u, &v).unwrap();
        // Writes = |U| exactly: each warp broadcasts its U strip once.
        assert_eq!(
            res.report.smem_bytes_written,
            (m * k * Precision::Fp16.size_bytes()) as u64
        );
    }

    #[test]
    fn rank_bound_enforced() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let u = Matrix::zeros(64, 128);
        let v = Matrix::zeros(128, 64);
        assert!(matches!(
            lowrank_gemm(&dev, &cfg, &u, &v),
            Err(KamiError::Unsupported { .. })
        ));
    }

    #[test]
    fn auto_warps_respects_divisibility() {
        assert_eq!(auto_warps(Algo::OneD, 64, 64, 16), 16);
        assert_eq!(auto_warps(Algo::OneD, 60, 60, 6), 4);
        assert_eq!(auto_warps(Algo::TwoD, 64, 64, 16), 16);
        assert_eq!(auto_warps(Algo::ThreeD, 64, 64, 16), 8);
        // k = 2 cannot be split by q² = 4: falls to 1 warp.
        assert_eq!(auto_warps(Algo::ThreeD, 64, 64, 2), 1);
    }

    #[test]
    fn low_rank_reconstruction_error_small() {
        // Build a genuinely rank-k matrix, multiply its factors with
        // KAMI, and check the reconstruction matches the f64 product.
        let dev = gh200();
        let (m, n, k) = (32, 32, 16);
        let u = Matrix::seeded_uniform(m, k, 81);
        let v = Matrix::seeded_uniform(k, n, 82);
        let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16).with_warps(auto_warps(
            Algo::TwoD,
            m,
            n,
            k,
        ));
        let res = lowrank_gemm(&dev, &cfg, &u, &v).unwrap();
        let exact = reference_gemm_f64(&u, &v);
        assert!(res.c.rel_frobenius_error(&exact) < 1e-2);
    }
}
