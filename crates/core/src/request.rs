//! The unified work-description API (v2): every dense KAMI entry point
//! expressed as one buildable value.
//!
//! A [`GemmRequest`] captures *what* to compute (operands and operation
//! kind), *how* to compute it (precision, algorithm hint, warps, shared-
//! memory fraction, cost model), and *under which service constraints*
//! (target device, deadline in simulated cycles). The classic free
//! functions — [`crate::gemm()`], [`crate::gemm_auto`],
//! [`crate::gemm_padded`], [`crate::batched_gemm`],
//! [`crate::lowrank_gemm`] — are thin wrappers that construct a
//! `GemmRequest` and execute it, so every call site in the workspace
//! goes through this single path. Service layers (kami-serve) queue
//! `GemmRequest`s directly and coalesce compatible ones into one
//! device-wide work pool.
//!
//! ```
//! use kami_core::request::GemmRequest;
//! use kami_gpu_sim::{device, Matrix, Precision};
//!
//! let dev = device::gh200();
//! let a = Matrix::seeded_uniform(64, 64, 1);
//! let b = Matrix::seeded_uniform(64, 64, 2);
//! let res = GemmRequest::gemm(a, b)
//!     .precision(Precision::Fp16)
//!     .execute(&dev)
//!     .unwrap()
//!     .into_single()
//!     .unwrap();
//! println!("{:.0} cycles", res.report.cycles);
//! ```

use crate::algo25d::{gemm_25d, Kami25dConfig};
use crate::batched::{exec_batched_gemm, exec_batched_gemm_varied, BatchedResult};
use crate::config::{Algo, KamiConfig};
use crate::epilogue::Epilogue;
use crate::error::KamiError;
use crate::gemm::{
    exec_gemm, exec_gemm_auto, exec_gemm_fused, exec_gemm_fused_auto, exec_gemm_padded,
    exec_gemm_scaled, exec_gemm_scaled_auto, GemmResult,
};
use crate::lowrank::exec_lowrank_gemm;
use crate::model::skinny::{is_tall_skinny, SKINNY_CHUNK_K};
use crate::plan::{gemm_cost, gemm_cost_auto, gemm_execute_plan_with, GemmPlan};
use crate::tallskinny::gemm_skinny;
use crate::tune::{tune, SharedTuner};
use kami_gpu_sim::{BackendKind, CostConfig, DeviceSpec, Matrix, Precision};

/// The operation a [`GemmRequest`] describes.
#[derive(Debug, Clone)]
pub enum Op {
    /// Strict block GEMM: dimensions must divide the partition grid.
    Gemm { a: Matrix, b: Matrix },
    /// Block GEMM with the §4.7 preset-ratio fallback ladder.
    GemmAuto { a: Matrix, b: Matrix },
    /// Arbitrary dimensions: zero-pad to the grid, crop the result.
    GemmPadded { a: Matrix, b: Matrix },
    /// The 2.5D replicated-layer algorithm on a `q×q×c` warp grid.
    TwoHalfD {
        a: Matrix,
        b: Matrix,
        q: usize,
        c: usize,
    },
    /// Many independent products launched as one workload. `varied`
    /// selects the ragged-batch path (per-entry padding + LPT packing).
    Batched {
        pairs: Vec<(Matrix, Matrix)>,
        varied: bool,
    },
    /// Low-rank product `U·V` with `k ≤ MAX_LOW_RANK`.
    Lowrank { u: Matrix, v: Matrix },
}

impl Op {
    /// Short label for traces and metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Op::Gemm { .. } => "gemm",
            Op::GemmAuto { .. } => "gemm_auto",
            Op::GemmPadded { .. } => "gemm_padded",
            Op::TwoHalfD { .. } => "gemm_25d",
            Op::Batched { .. } => "batched_gemm",
            Op::Lowrank { .. } => "lowrank_gemm",
        }
    }
}

/// Result of executing a [`GemmRequest`]: single-block ops return a
/// [`GemmResult`], batched ops a [`BatchedResult`].
#[derive(Debug, Clone)]
pub enum GemmResponse {
    Single(GemmResult),
    Batched(BatchedResult),
}

impl GemmResponse {
    /// Unwrap the single-block result.
    pub fn into_single(self) -> Result<GemmResult, KamiError> {
        match self {
            GemmResponse::Single(r) => Ok(r),
            GemmResponse::Batched(_) => Err(KamiError::Unsupported {
                detail: "batched request produced a BatchedResult, not a GemmResult".into(),
            }),
        }
    }

    /// Unwrap the batched result.
    pub fn into_batched(self) -> Result<BatchedResult, KamiError> {
        match self {
            GemmResponse::Batched(r) => Ok(r),
            GemmResponse::Single(_) => Err(KamiError::Unsupported {
                detail: "single request produced a GemmResult, not a BatchedResult".into(),
            }),
        }
    }

    /// Modelled device cycles of the execution (block cycles for single
    /// ops, scheduled total for batches).
    pub fn cycles(&self) -> f64 {
        match self {
            GemmResponse::Single(r) => r.report.cycles,
            GemmResponse::Batched(r) => r.total_cycles,
        }
    }

    /// Useful flops of the logical problem(s).
    pub fn useful_flops(&self) -> u64 {
        match self {
            GemmResponse::Single(r) => r.useful_flops,
            GemmResponse::Batched(r) => r.useful_flops,
        }
    }
}

/// A self-contained description of one GEMM work item.
///
/// Built with the `GemmRequest::gemm` / `gemm_auto` / `gemm_padded` /
/// `gemm_25d` / `batched` / `lowrank` constructors plus chainable
/// setters; executed with [`GemmRequest::execute`] (explicit device) or
/// [`GemmRequest::run`] (device attached via [`GemmRequest::on_device`]).
#[derive(Debug, Clone)]
pub struct GemmRequest {
    /// What to compute.
    pub op: Op,
    /// BLAS `alpha` (product scale). Defaults to 1.
    pub alpha: f64,
    /// BLAS `beta` (accumulate scale). Defaults to 0.
    pub beta: f64,
    /// The `C0` operand blended in when `beta != 0`.
    pub c0: Option<Matrix>,
    /// Fused epilogue applied to the product inside the kernel's store
    /// phase (plain products only: `alpha = 1`, `beta = 0`, no `C0`).
    pub epilogue: Option<Epilogue>,
    /// Input precision of the operands.
    pub precision: Precision,
    /// Algorithm hint; `None` autotunes over every valid candidate.
    pub algo: Option<Algo>,
    /// Warp-count override (otherwise the algorithm/tuner default).
    pub warps: Option<usize>,
    /// `smem_fraction` override.
    pub smem_fraction: Option<f64>,
    /// Cost-model override (fault injection, overlap mode, ...).
    pub cost: Option<CostConfig>,
    /// Execution-backend override (numerics only; plans, cost reports,
    /// and results are identical across backends). `None` keeps the
    /// resolved configuration's backend.
    pub backend: Option<BackendKind>,
    /// Device the request is destined for (used by [`GemmRequest::run`]
    /// and by service layers for placement).
    pub device: Option<DeviceSpec>,
    /// End-to-end service deadline in simulated device cycles,
    /// charged from the clock at admission — retries and backoff
    /// parking all spend this same budget. `None` = best effort.
    pub deadline_cycles: Option<f64>,
}

impl GemmRequest {
    fn new(op: Op, precision: Precision) -> Self {
        GemmRequest {
            op,
            alpha: 1.0,
            beta: 0.0,
            c0: None,
            epilogue: None,
            precision,
            algo: None,
            warps: None,
            smem_fraction: None,
            cost: None,
            backend: None,
            device: None,
            deadline_cycles: None,
        }
    }

    /// Strict block GEMM `C = A·B` (defaults: FP16, autotuned algo).
    pub fn gemm(a: Matrix, b: Matrix) -> Self {
        Self::new(Op::Gemm { a, b }, Precision::Fp16)
    }

    /// Block GEMM with the register→shared-memory fallback ladder.
    pub fn gemm_auto(a: Matrix, b: Matrix) -> Self {
        Self::new(Op::GemmAuto { a, b }, Precision::Fp16)
    }

    /// Arbitrary-size GEMM (zero-pad + crop).
    pub fn gemm_padded(a: Matrix, b: Matrix) -> Self {
        Self::new(Op::GemmPadded { a, b }, Precision::Fp16)
    }

    /// 2.5D GEMM on a `q×q×c` warp grid.
    pub fn gemm_25d(a: Matrix, b: Matrix, q: usize, c: usize) -> Self {
        Self::new(Op::TwoHalfD { a, b, q, c }, Precision::Fp16)
    }

    /// Uniform batched GEMM.
    pub fn batched(pairs: Vec<(Matrix, Matrix)>) -> Self {
        Self::new(
            Op::Batched {
                pairs,
                varied: false,
            },
            Precision::Fp16,
        )
    }

    /// Ragged batched GEMM (per-entry padding, LPT packing).
    pub fn batched_varied(pairs: Vec<(Matrix, Matrix)>) -> Self {
        Self::new(
            Op::Batched {
                pairs,
                varied: true,
            },
            Precision::Fp16,
        )
    }

    /// Low-rank product `U·V`.
    pub fn lowrank(u: Matrix, v: Matrix) -> Self {
        Self::new(Op::Lowrank { u, v }, Precision::Fp16)
    }

    /// Build a request from a classic [`KamiConfig`] — the bridge used
    /// by the wrapper functions, pinning algo/warps/fraction/cost so the
    /// request resolves to exactly that configuration.
    pub fn from_config(op: Op, cfg: &KamiConfig) -> Self {
        let mut r = Self::new(op, cfg.precision);
        r.algo = Some(cfg.algo);
        r.warps = Some(cfg.warps);
        r.smem_fraction = Some(cfg.smem_fraction);
        r.cost = Some(cfg.cost.clone());
        r.backend = Some(cfg.backend);
        r
    }

    /// Set the operand precision.
    pub fn precision(mut self, p: Precision) -> Self {
        self.precision = p;
        self
    }

    /// Pin the algorithm (skips autotuning).
    pub fn algo(mut self, algo: Algo) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Override the warp count `p`.
    pub fn warps(mut self, warps: usize) -> Self {
        self.warps = Some(warps);
        self
    }

    /// Override the shared-memory slicing fraction.
    pub fn smem_fraction(mut self, f: f64) -> Self {
        self.smem_fraction = Some(f);
        self
    }

    /// Override the cost-model parameters.
    pub fn cost(mut self, cost: CostConfig) -> Self {
        self.cost = Some(cost);
        self
    }

    /// Override the execution backend for the execute pass.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// BLAS scaling: `C = alpha·A·B + beta·C0`.
    pub fn scaled(mut self, alpha: f64, beta: f64, c0: Matrix) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self.c0 = Some(c0);
        self
    }

    /// Scale the product only (`beta = 0`, no `C0` read).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Fuse an [`Epilogue`] into the kernel's store phase.
    pub fn with_epilogue(mut self, epilogue: Epilogue) -> Self {
        self.epilogue = Some(epilogue);
        self
    }

    /// Attach the destination device.
    pub fn on_device(mut self, device: DeviceSpec) -> Self {
        self.device = Some(device);
        self
    }

    /// End-to-end service deadline in simulated cycles, charged from
    /// admission across every retry.
    pub fn deadline(mut self, cycles: f64) -> Self {
        self.deadline_cycles = Some(cycles);
        self
    }

    /// Logical `(m, n, k)` of the (first) problem.
    pub fn shape(&self) -> (usize, usize, usize) {
        match &self.op {
            Op::Gemm { a, b }
            | Op::GemmAuto { a, b }
            | Op::GemmPadded { a, b }
            | Op::TwoHalfD { a, b, .. } => (a.rows(), b.cols(), a.cols()),
            Op::Batched { pairs, .. } => pairs
                .first()
                .map(|(a, b)| (a.rows(), b.cols(), a.cols()))
                .unwrap_or((0, 0, 0)),
            Op::Lowrank { u, v } => (u.rows(), v.cols(), u.cols()),
        }
    }

    /// Independent device blocks this request contributes to a work pool.
    pub fn block_count(&self) -> usize {
        match &self.op {
            Op::Batched { pairs, .. } => pairs.len().max(1),
            _ => 1,
        }
    }

    /// Whether the request is a plain product: no alpha/beta scaling
    /// and no fused epilogue. Service layers use this to gate the
    /// cached-plan fast path, so it must reflect *everything* that can
    /// change the kernel.
    pub fn is_plain(&self) -> bool {
        self.scalars_plain() && self.epilogue.is_none()
    }

    /// Whether the BLAS scalars are trivial (`alpha = 1`, `beta = 0`,
    /// no `C0`) — the precondition for a fused epilogue.
    fn scalars_plain(&self) -> bool {
        self.alpha == 1.0 && self.beta == 0.0 && self.c0.is_none()
    }

    /// Whether this request routes to the tall-skinny k-split path
    /// (which tunes the chunk shape — no monolithic configuration fits
    /// the full one). Strict `Op::Gemm` is never rerouted.
    pub fn is_skinny(&self) -> bool {
        if !matches!(self.op, Op::GemmAuto { .. } | Op::GemmPadded { .. }) || !self.scalars_plain()
        {
            return false;
        }
        let (m, n, k) = self.shape();
        is_tall_skinny(m, n, k)
    }

    /// Content fingerprint of the epilogue for cache/coalescing keys
    /// (0 = no epilogue).
    pub fn epilogue_fingerprint(&self) -> u64 {
        self.epilogue.as_ref().map_or(0, |e| e.fingerprint())
    }

    /// The shape the autotuner should optimize: the full problem, or —
    /// on the skinny path — one k-chunk of it, since no monolithic
    /// configuration fits the full k.
    fn tuning_shape(&self) -> (usize, usize, usize) {
        let (m, n, k) = self.shape();
        if self.is_skinny() {
            (m, n, SKINNY_CHUNK_K.min(k))
        } else {
            (m, n, k)
        }
    }

    /// Resolve the effective block configuration on `device`: the hint
    /// if pinned, otherwise the autotuner's winner, with the explicit
    /// warp/fraction/cost overrides applied on top. Skinny requests
    /// tune the chunk shape (see [`GemmRequest::is_skinny`]).
    pub fn resolve_config(&self, device: &DeviceSpec) -> Result<KamiConfig, KamiError> {
        let cfg = match self.algo {
            Some(algo) => KamiConfig::new(algo, self.precision),
            None => {
                let (m, n, k) = self.tuning_shape();
                tune(device, m, n, k, self.precision)?.cfg
            }
        };
        Ok(self.apply_overrides(cfg))
    }

    /// Like [`GemmRequest::resolve_config`], but serve the autotuning
    /// sweep from a shared shape-keyed cache — service layers resolving
    /// many requests of the same shape class tune once and reuse the
    /// winner.
    pub fn resolve_config_cached(
        &self,
        device: &DeviceSpec,
        tuner: &SharedTuner,
    ) -> Result<KamiConfig, KamiError> {
        let cfg = match self.algo {
            Some(algo) => KamiConfig::new(algo, self.precision),
            None => {
                let (m, n, k) = self.tuning_shape();
                tuner.config_for(device, m, n, k, self.precision)?.cfg
            }
        };
        Ok(self.apply_overrides(cfg))
    }

    /// The dense operand pair of a pass-level request, or a typed error
    /// for op kinds the split cost/execute pipeline does not describe
    /// (batched, 2.5D, low-rank) and for non-plain requests (the plan's
    /// kernel is the plain product — alpha/beta and epilogues change it).
    fn plan_operands(&self) -> Result<(&Matrix, &Matrix), KamiError> {
        if !self.is_plain() {
            return Err(KamiError::Unsupported {
                detail: "pass-level entry points describe plain products only \
                     (alpha = 1, beta = 0, no C0, no epilogue)"
                    .into(),
            });
        }
        match &self.op {
            Op::Gemm { a, b } | Op::GemmAuto { a, b } => Ok((a, b)),
            other => Err(KamiError::Unsupported {
                detail: format!(
                    "pass-level entry points cover strict/auto block GEMM, not {}",
                    other.label()
                ),
            }),
        }
    }

    /// Cost pass only — the request-driven twin of
    /// [`crate::gemm_cost`]: resolve the configuration on `device`
    /// (honoring every override, including [`GemmRequest::backend`])
    /// and charge cycles for the request's shape class without touching
    /// operand values. The returned [`GemmPlan`] feeds
    /// [`GemmRequest::execute_with_plan`] or any shared plan cache.
    pub fn cost_plan(&self, device: &DeviceSpec) -> Result<GemmPlan, KamiError> {
        self.plan_operands()?;
        let (m, n, k) = self.shape();
        let cfg = self.resolve_config(device)?;
        gemm_cost(device, &cfg, m, n, k)
    }

    /// [`GemmRequest::cost_plan`] with the §4.7 preset-ratio fallback
    /// ladder — the request-driven twin of [`crate::gemm_cost_auto`].
    pub fn cost_plan_auto(&self, device: &DeviceSpec) -> Result<GemmPlan, KamiError> {
        self.plan_operands()?;
        let (m, n, k) = self.shape();
        let cfg = self.resolve_config(device)?;
        gemm_cost_auto(device, &cfg, m, n, k)
    }

    /// Execute pass only — the request-driven twin of
    /// [`crate::gemm_execute_plan`]: run this request's operands
    /// through a previously costed plan. The request's
    /// [`GemmRequest::backend`] override, when set, takes precedence
    /// over the plan's own, so one cached plan serves executors with
    /// different backend choices.
    pub fn execute_with_plan(
        &self,
        device: &DeviceSpec,
        plan: &GemmPlan,
    ) -> Result<GemmResult, KamiError> {
        let (a, b) = self.plan_operands()?;
        let backend = self.backend.unwrap_or(plan.cfg.backend);
        gemm_execute_plan_with(device, plan, a, b, backend)
    }

    /// The explicit warp/fraction/cost/backend overrides, applied on
    /// top of a resolved base configuration.
    fn apply_overrides(&self, mut cfg: KamiConfig) -> KamiConfig {
        cfg.precision = self.precision;
        if let Some(w) = self.warps {
            cfg.warps = w;
        }
        if let Some(f) = self.smem_fraction {
            cfg.smem_fraction = f;
        }
        if let Some(c) = &self.cost {
            cfg.cost = c.clone();
        }
        if let Some(bk) = self.backend {
            cfg.backend = bk;
        }
        cfg
    }

    /// Execute on `device`, returning a [`GemmResponse`].
    pub fn execute(&self, device: &DeviceSpec) -> Result<GemmResponse, KamiError> {
        match &self.op {
            Op::Batched { pairs, varied } => {
                if !self.is_plain() {
                    return Err(KamiError::Unsupported {
                        detail: "alpha/beta scaling is not defined for batched requests".into(),
                    });
                }
                let cfg = self.resolve_config(device)?;
                let res = if *varied {
                    exec_batched_gemm_varied(device, &cfg, pairs)?
                } else {
                    exec_batched_gemm(device, &cfg, pairs)?
                };
                Ok(GemmResponse::Batched(res))
            }
            _ => self.execute_single(device).map(GemmResponse::Single),
        }
    }

    /// Execute a single-block request (everything except `Op::Batched`).
    pub fn execute_single(&self, device: &DeviceSpec) -> Result<GemmResult, KamiError> {
        if self.epilogue.is_some() && !self.scalars_plain() {
            return Err(KamiError::Unsupported {
                detail: "fused epilogue requires a plain product (alpha = 1, beta = 0, no C0)"
                    .into(),
            });
        }
        let plain = self.is_plain();
        match &self.op {
            Op::Gemm { a, b } => {
                let cfg = self.resolve_config(device)?;
                if let Some(epi) = &self.epilogue {
                    exec_gemm_fused(device, &cfg, a, b, epi)
                } else if plain {
                    exec_gemm(device, &cfg, a, b)
                } else {
                    let c0 = self.effective_c0(a, b);
                    exec_gemm_scaled(device, &cfg, self.alpha, a, b, self.beta, &c0)
                }
            }
            Op::GemmAuto { a, b } => {
                // Skinny shapes route before any full-shape work: the
                // chunk-shape configuration resolves fine, but nothing
                // monolithic would.
                if self.is_skinny() {
                    let cfg = self.resolve_config(device)?;
                    return gemm_skinny(device, &cfg, a, b, self.epilogue.as_ref());
                }
                let cfg = self.resolve_config(device)?;
                if let Some(epi) = &self.epilogue {
                    exec_gemm_fused_auto(device, &cfg, a, b, epi)
                } else if plain {
                    exec_gemm_auto(device, &cfg, a, b)
                } else {
                    let c0 = self.effective_c0(a, b);
                    exec_gemm_scaled_auto(device, &cfg, self.alpha, a, b, self.beta, &c0)
                }
            }
            Op::GemmPadded { a, b } => {
                if self.epilogue.is_some() {
                    // Zero padding corrupts a row-wise softmax (the
                    // padded columns contribute exp(0) mass) and wastes
                    // bias reads; keep the support matrix honest.
                    return Err(KamiError::Unsupported {
                        detail: "fused epilogues are not defined for padded requests".into(),
                    });
                }
                if !plain {
                    return Err(KamiError::Unsupported {
                        detail: "alpha/beta scaling is not defined for padded requests".into(),
                    });
                }
                let cfg = self.resolve_config(device)?;
                exec_gemm_padded(device, &cfg, a, b)
            }
            Op::TwoHalfD { a, b, q, c } => {
                if !plain {
                    return Err(KamiError::Unsupported {
                        detail: "alpha/beta scaling and fused epilogues are not defined for 2.5D \
                             requests"
                            .into(),
                    });
                }
                let mut cfg25 = Kami25dConfig::new(*q, *c, self.precision);
                if let Some(cost) = &self.cost {
                    cfg25.cost = cost.clone();
                }
                if let Some(bk) = self.backend {
                    cfg25.backend = bk;
                }
                gemm_25d(device, &cfg25, a, b)
            }
            Op::Lowrank { u, v } => {
                if !plain {
                    return Err(KamiError::Unsupported {
                        detail: "alpha/beta scaling is not defined for low-rank requests".into(),
                    });
                }
                let cfg = self.resolve_config(device)?;
                exec_lowrank_gemm(device, &cfg, u, v)
            }
            Op::Batched { .. } => Err(KamiError::Unsupported {
                detail: "batched request cannot produce a single GemmResult".into(),
            }),
        }
    }

    /// Execute on the attached device ([`GemmRequest::on_device`]).
    pub fn run(&self) -> Result<GemmResponse, KamiError> {
        match &self.device {
            Some(dev) => {
                let dev = dev.clone();
                self.execute(&dev)
            }
            None => Err(KamiError::MissingDevice),
        }
    }

    /// The `C0` operand for the scaled path: the attached one, or zeros
    /// of the output shape when only `alpha` scaling was requested.
    fn effective_c0(&self, a: &Matrix, b: &Matrix) -> Matrix {
        self.c0
            .clone()
            .unwrap_or_else(|| Matrix::zeros(a.rows(), b.cols()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_gemm;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn builder_matches_direct_call() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(32, 32, 7);
        let b = Matrix::seeded_uniform(32, 32, 8);
        let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp64);
        let direct = crate::gemm::gemm(&dev, &cfg, &a, &b).unwrap();
        let via = GemmRequest::gemm(a.clone(), b.clone())
            .precision(Precision::Fp64)
            .algo(Algo::TwoD)
            .execute(&dev)
            .unwrap()
            .into_single()
            .unwrap();
        assert_eq!(via.c.max_abs_diff(&direct.c), 0.0);
        assert_eq!(via.report.cycles, direct.report.cycles);
    }

    #[test]
    fn autotuned_request_runs_without_hint() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(32, 32, 9);
        let b = Matrix::seeded_uniform(32, 32, 10);
        let res = GemmRequest::gemm_auto(a.clone(), b.clone())
            .precision(Precision::Fp64)
            .execute(&dev)
            .unwrap()
            .into_single()
            .unwrap();
        let want = reference_gemm(&a, &b, Precision::Fp64);
        assert!(res.c.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn scaled_request_applies_epilogue() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(16, 16, 11);
        let b = Matrix::seeded_uniform(16, 16, 12);
        let c0 = Matrix::seeded_uniform(16, 16, 13);
        let via = GemmRequest::gemm(a.clone(), b.clone())
            .precision(Precision::Fp64)
            .algo(Algo::OneD)
            .scaled(2.0, -1.0, c0.clone())
            .execute(&dev)
            .unwrap()
            .into_single()
            .unwrap();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let direct = crate::gemm::gemm_scaled(&dev, &cfg, 2.0, &a, &b, -1.0, &c0).unwrap();
        assert_eq!(via.c.max_abs_diff(&direct.c), 0.0);
    }

    #[test]
    fn pass_level_twins_match_free_functions() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(32, 32, 21);
        let b = Matrix::seeded_uniform(32, 32, 22);
        let req = GemmRequest::gemm(a.clone(), b.clone())
            .precision(Precision::Fp16)
            .algo(Algo::TwoD);
        let plan = req.cost_plan(&dev).unwrap();
        let cfg = req.resolve_config(&dev).unwrap();
        let direct = crate::plan::gemm_cost(&dev, &cfg, 32, 32, 32).unwrap();
        assert_eq!(
            serde_json::to_string(&plan.report).unwrap(),
            serde_json::to_string(&direct.report).unwrap()
        );
        let via = req.execute_with_plan(&dev, &plan).unwrap();
        let free = crate::plan::gemm_execute_plan(&dev, &direct, &a, &b).unwrap();
        assert_eq!(via.c.max_abs_diff(&free.c), 0.0);
        // The auto twin escalates like the free ladder.
        let big = GemmRequest::gemm(
            Matrix::seeded_uniform(128, 128, 23),
            Matrix::seeded_uniform(128, 128, 24),
        )
        .precision(Precision::Fp16)
        .algo(Algo::OneD);
        let auto = big.cost_plan_auto(&dev).unwrap();
        assert!(auto.smem_fraction > 0.0);
    }

    #[test]
    fn backend_override_flows_into_resolved_config_and_plan_execute() {
        use kami_gpu_sim::BackendKind;
        let dev = gh200();
        let a = Matrix::seeded_uniform(32, 32, 25);
        let b = Matrix::seeded_uniform(32, 32, 26);
        let req = GemmRequest::gemm(a.clone(), b.clone())
            .precision(Precision::Fp16)
            .algo(Algo::TwoD)
            .backend(BackendKind::Native);
        assert_eq!(
            req.resolve_config(&dev).unwrap().backend,
            BackendKind::Native
        );
        // from_config pins the source configuration's backend.
        let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16).with_backend(BackendKind::Native);
        let pinned = GemmRequest::from_config(
            Op::Gemm {
                a: a.clone(),
                b: b.clone(),
            },
            &cfg,
        );
        assert_eq!(pinned.backend, Some(BackendKind::Native));
        // Native execution through the request twins is bit-identical.
        let plan = req.cost_plan(&dev).unwrap();
        let native = req.execute_with_plan(&dev, &plan).unwrap();
        let sim = req
            .clone()
            .backend(BackendKind::Sim)
            .execute_with_plan(&dev, &plan)
            .unwrap();
        assert_eq!(native.c.max_abs_diff(&sim.c), 0.0);
    }

    #[test]
    fn pass_level_twins_reject_unsupported_ops() {
        let dev = gh200();
        let req = GemmRequest::lowrank(Matrix::zeros(16, 4), Matrix::zeros(4, 16));
        assert!(matches!(
            req.cost_plan(&dev),
            Err(KamiError::Unsupported { .. })
        ));
        let scaled = GemmRequest::gemm(Matrix::zeros(16, 16), Matrix::zeros(16, 16)).scaled(
            2.0,
            1.0,
            Matrix::zeros(16, 16),
        );
        assert!(matches!(
            scaled.cost_plan_auto(&dev),
            Err(KamiError::Unsupported { .. })
        ));
    }

    #[test]
    fn run_without_device_is_typed_error() {
        let r = GemmRequest::gemm(Matrix::zeros(16, 16), Matrix::zeros(16, 16));
        assert!(matches!(r.run(), Err(KamiError::MissingDevice)));
    }

    #[test]
    fn response_accessors_guard_variants() {
        let dev = gh200();
        let pairs = vec![(
            Matrix::seeded_uniform(16, 16, 1),
            Matrix::seeded_uniform(16, 16, 2),
        )];
        let resp = GemmRequest::batched(pairs)
            .precision(Precision::Fp64)
            .algo(Algo::OneD)
            .execute(&dev)
            .unwrap();
        assert!(resp.cycles() > 0.0);
        assert!(resp.clone().into_batched().is_ok());
        assert!(resp.into_single().is_err());
    }
}
