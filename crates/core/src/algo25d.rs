//! KAMI-2.5D — an *extension* beyond the paper.
//!
//! §2.2 notes that "additional variants, such as 1.5D and 2.5D, also
//! exist" but the paper "concentrates on the classic 1D, 2D, and 3D
//! approaches". This module supplies the missing interpolation, in the
//! split-k style the 3D algorithm already uses: `p = c·q²` warps form
//! `c` replication layers of `q×q` grids; layer `l` runs the 2D SUMMA
//! over the `l`-th `k/c`-chunk (shard k-extent `k/(c·q)`), and the `c`
//! layer partials reduce into C through global accumulation.
//!
//! * `c = 1` recovers KAMI-2D exactly (one layer, `√p` stages);
//! * `c = q` recovers KAMI-3D exactly (the cube);
//! * in between, the stage count — and with it the `L_sm·stages`
//!   latency term that dominates small blocks — shrinks as
//!   `√(p/c)`, at the price of a `c`-way reduction. On devices with
//!   expensive barriers/latency and cheap global accumulation, the
//!   sweet spot sits strictly between 2D and 3D; the
//!   `crossover` analysis binary sweeps exactly this trade-off.

use crate::error::KamiError;
use crate::gemm::{c_precision, GemmResult};
use crate::layout::{tile_bytes, SmemMap};
use crate::model::cycles::ModelParams;
use kami_gpu_sim::{BlockKernel, BufferId, DeviceSpec, Engine, GlobalMemory, Matrix, Precision};

/// Configuration of a 2.5D block GEMM: a `q×q` grid replicated over `c`
/// layers (`p = c·q²` warps).
#[derive(Debug, Clone)]
pub struct Kami25dConfig {
    pub q: usize,
    pub c: usize,
    pub precision: Precision,
    pub cost: kami_gpu_sim::CostConfig,
    /// Execution backend for the execute pass (numerics only).
    pub backend: kami_gpu_sim::BackendKind,
}

impl Kami25dConfig {
    pub fn new(q: usize, c: usize, precision: Precision) -> Self {
        Kami25dConfig {
            q,
            c,
            precision,
            cost: kami_gpu_sim::CostConfig::default(),
            backend: kami_gpu_sim::BackendKind::default(),
        }
    }

    pub fn with_backend(mut self, backend: kami_gpu_sim::BackendKind) -> Self {
        self.backend = backend;
        self
    }

    pub fn warps(&self) -> usize {
        self.c * self.q * self.q
    }

    pub fn validate(
        &self,
        device: &DeviceSpec,
        m: usize,
        n: usize,
        k: usize,
    ) -> Result<(), KamiError> {
        if self.q == 0 || self.c == 0 || self.c > self.q.max(1) {
            return Err(KamiError::BadWarpCount {
                algo: "KAMI-2.5D",
                warps: self.warps(),
            });
        }
        if self.warps() > device.max_warps_per_block() as usize {
            return Err(KamiError::Unsupported {
                detail: format!(
                    "{} warps exceed the device block limit of {}",
                    self.warps(),
                    device.max_warps_per_block()
                ),
            });
        }
        if device.peak_tflops(self.precision).is_none() {
            return Err(KamiError::Unsupported {
                detail: format!(
                    "{} has no tensor path for {}",
                    device.name,
                    self.precision.label()
                ),
            });
        }
        if !m.is_multiple_of(self.q)
            || !n.is_multiple_of(self.q)
            || !k.is_multiple_of(self.c * self.q)
        {
            return Err(KamiError::Indivisible {
                detail: format!(
                    "2.5D with q={}, c={} needs q | m, q | n, c·q | k (got {m}x{n}x{k})",
                    self.q, self.c
                ),
            });
        }
        Ok(())
    }
}

/// Position of warp `i`: `(layer, row, col)` on the `c × q × q` prism.
#[inline]
fn prism_pos(i: usize, q: usize) -> (usize, usize, usize) {
    (i / (q * q), (i / q) % q, i % q)
}

/// Build the 2.5D kernel for `C = A·B`.
#[allow(clippy::too_many_arguments)]
pub fn build_kernel(
    cfg: &Kami25dConfig,
    m: usize,
    n: usize,
    k: usize,
    a_buf: BufferId,
    b_buf: BufferId,
    c_buf: BufferId,
    c_prec: Precision,
) -> BlockKernel {
    let (q, c) = (cfg.q, cfg.c);
    let (mi, ni) = (m / q, n / q);
    let kc = k / c; // one layer's k-chunk
    let ks = k / (c * q); // one shard's k extent
    let prec = cfg.precision;
    let map = SmemMap::new(
        c * q,
        tile_bytes(mi, ks, prec),
        c * q,
        tile_bytes(ks, ni, prec),
        0,
    );

    BlockKernel::spmd(cfg.warps(), |i, w| {
        let (l, r, cc) = prism_pos(i, q);
        let a_row0 = r * mi;
        let a_col0 = l * kc + cc * ks;
        let b_row0 = l * kc + r * ks;
        let b_col0 = cc * ni;

        let a_own = w.frag("Ai", mi, ks, prec);
        let b_own = w.frag("Bi", ks, ni, prec);
        let a_recv = w.frag("ARecv", mi, ks, prec);
        let b_recv = w.frag("BRecv", ks, ni, prec);
        let c_i = w.frag("Ci", mi, ni, c_prec);

        w.global_load(a_own, a_buf, a_row0, a_col0);
        w.global_load(b_own, b_buf, b_row0, b_col0);
        w.zero_acc(c_i);

        let a_region = l * q + r;
        let b_region = l * q + cc;
        for z in 0..q {
            if cc == z {
                w.shared_store(a_own, map.a_addr(a_region));
                w.reg_copy(a_recv, a_own);
            }
            if r == z {
                w.shared_store(b_own, map.b_addr(b_region));
                w.reg_copy(b_recv, b_own);
            }
            w.barrier();
            if cc != z {
                w.shared_load(a_recv, map.a_addr(a_region));
            }
            if r != z {
                w.shared_load(b_recv, map.b_addr(b_region));
            }
            w.barrier();
            w.mma(c_i, a_recv, b_recv);
        }

        // Cross-layer reduction (c partials per C block).
        w.global_accumulate(c_i, c_buf, r * mi, cc * ni);
    })
}

/// Run a 2.5D block GEMM end to end.
pub fn gemm_25d(
    device: &DeviceSpec,
    cfg: &Kami25dConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb {
        return Err(KamiError::ShapeMismatch {
            detail: format!("A is {m}x{k} but B is {kb}x{n}"),
        });
    }
    cfg.validate(device, m, n, k)?;
    let prec = cfg.precision;
    let c_prec = c_precision(prec);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", a, prec);
    let bb = gmem.upload("B", b, prec);
    let cb = gmem.alloc_zeroed("C", m, n, c_prec);
    let kernel = build_kernel(cfg, m, n, k, ab, bb, cb, c_prec);
    let report = Engine::with_cost(device, cfg.cost.clone())
        .run_kernel(
            &kernel,
            &mut gmem,
            &kami_gpu_sim::RunOptions::default().with_backend(cfg.backend),
        )?
        .report;
    Ok(GemmResult {
        c: gmem.download(cb),
        report,
        smem_fraction: 0.0,
        useful_flops: 2 * (m as u64) * (n as u64) * (k as u64),
    })
}

/// Analytic total cycles of the 2.5D scheme, in the style of
/// Formulas 4/8/12: `q` stages, per-stage volume `(mk + kn)/c` written
/// once and read `(q−1)` times across the layers.
pub fn t_all_25d(m: usize, n: usize, k: usize, q: usize, c: usize, prm: &ModelParams) -> f64 {
    let compute = 2.0 * (m * n * k) as f64 / (prm.n_tc * prm.o_tc);
    t_comm_25d(m, n, k, q, c, prm) + compute
}

/// Communication-only part of [`t_all_25d`] — the 2.5D analogue of
/// Formulas 4/8/12, directly comparable to the engine's measured
/// `totals.comm` (the kami-verify harness holds the two to each other).
pub fn t_comm_25d(m: usize, n: usize, k: usize, q: usize, _c: usize, prm: &ModelParams) -> f64 {
    let stages = q as f64;
    let vol = (m * k + k * n) as f64 * prm.s_e;
    // A and B each transit shared memory once in total (written by their
    // owners across the q stages) and are read by the (q−1) other warps
    // of their row/column — the same totals as Formulas 8/12, with the
    // latency term scaled by the 2.5D stage count q = √(p/c).
    let write = vol / (prm.theta_w * prm.b_sm);
    let read = (stages - 1.0) * vol / (prm.theta_r * prm.b_sm);
    prm.l_sm * stages + write + read
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algo, KamiConfig as Cfg};
    use crate::reference::reference_gemm_f64;
    use kami_gpu_sim::device::gh200;

    fn run_25d(n: usize, q: usize, c: usize, prec: Precision) -> GemmResult {
        let dev = gh200();
        let cfg = Kami25dConfig::new(q, c, prec);
        let a = Matrix::seeded_uniform(n, n, 0x25D);
        let b = Matrix::seeded_uniform(n, n, 0x25E);
        gemm_25d(&dev, &cfg, &a, &b).unwrap()
    }

    #[test]
    fn correct_across_layer_counts() {
        let n = 48;
        let a = Matrix::seeded_uniform(n, n, 0x25D);
        let b = Matrix::seeded_uniform(n, n, 0x25E);
        let want = reference_gemm_f64(&a, &b);
        for (q, c) in [(2usize, 1usize), (2, 2), (3, 1), (3, 3), (4, 2)] {
            if n % q != 0 || n % (c * q) != 0 {
                continue;
            }
            let res = run_25d(n, q, c, Precision::Fp64);
            assert!(res.c.max_abs_diff(&want) < 1e-12, "q={q} c={c}");
        }
    }

    #[test]
    fn c_equals_one_matches_2d_cycles_exactly() {
        let dev = gh200();
        let n = 32;
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        let r25 = gemm_25d(&dev, &Kami25dConfig::new(2, 1, Precision::Fp16), &a, &b).unwrap();
        let r2 = crate::gemm::gemm(&dev, &Cfg::new(Algo::TwoD, Precision::Fp16), &a, &b).unwrap();
        // Same stage structure and volumes -> identical on-chip cycles
        // (the 2.5D path pays an extra global accumulate at the end).
        assert!((r25.report.totals.comm - r2.report.totals.comm).abs() < 1e-9);
        assert!((r25.report.totals.compute - r2.report.totals.compute).abs() < 1e-9);
    }

    #[test]
    fn c_equals_q_matches_3d_cycles_exactly() {
        let dev = gh200();
        let n = 32;
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        let r25 = gemm_25d(&dev, &Kami25dConfig::new(2, 2, Precision::Fp16), &a, &b).unwrap();
        let cfg3 = Cfg::new(Algo::ThreeD, Precision::Fp16).with_warps(8);
        let r3 = crate::gemm::gemm(&dev, &cfg3, &a, &b).unwrap();
        assert!((r25.report.totals.comm - r3.report.totals.comm).abs() < 1e-9);
        assert!((r25.report.totals.compute - r3.report.totals.compute).abs() < 1e-9);
        assert_eq!(r25.report.comm_volume(), r3.report.comm_volume());
    }

    #[test]
    fn model_matches_simulator_comm() {
        let dev = gh200();
        let prec = Precision::Fp16;
        let prm = ModelParams::from_device(&dev, prec).unwrap();
        let n = 48;
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        for (q, c) in [(2usize, 2usize), (3, 1), (4, 2)] {
            if n % q != 0 || n % (c * q) != 0 {
                continue;
            }
            let res = gemm_25d(&dev, &Kami25dConfig::new(q, c, prec), &a, &b).unwrap();
            let model = t_all_25d(n, n, n, q, c, &prm);
            let measured = res.report.totals.comm + res.report.totals.compute;
            // The model's compute term is unpadded; allow the padding gap.
            assert!(
                measured >= model - 1e-6 && measured < model * 2.0 + 50.0,
                "q={q} c={c}: measured {measured} vs model {model}"
            );
        }
    }

    #[test]
    fn replication_reduces_latency_term() {
        // Fixed q: more layers split k more ways but keep q stages —
        // same latency. Fixed warp budget p = 16: (q=4, c=1) pays 4
        // stages; (q=2, c=4) would need c <= q... compare (4,1) vs (2,2)
        // at p=16 vs p=8: the point is stage count scales with q only.
        let prm = ModelParams::paper_example();
        let n = 64;
        let t_2d = t_all_25d(n, n, n, 4, 1, &prm); // 16 warps, 4 stages
        let t_25 = t_all_25d(n, n, n, 2, 2, &prm); // 8 warps, 2 stages
                                                   // Fewer stages -> less latency; same asymptotic volume.
        assert!(t_25 < t_2d, "{t_25} !< {t_2d}");
    }

    #[test]
    fn invalid_configs_rejected() {
        let dev = gh200();
        // c > q.
        assert!(Kami25dConfig::new(2, 3, Precision::Fp16)
            .validate(&dev, 48, 48, 48)
            .is_err());
        // Indivisible k.
        assert!(Kami25dConfig::new(2, 2, Precision::Fp16)
            .validate(&dev, 32, 32, 34)
            .is_err());
        // Too many warps.
        assert!(Kami25dConfig::new(8, 8, Precision::Fp16)
            .validate(&dev, 64, 64, 64)
            .is_err());
    }
}
