//! CPU reference GEMM — the correctness oracle for every kernel in the
//! workspace.
//!
//! [`reference_gemm`] mirrors the tensor-core numeric path: operands are
//! quantized to the input precision, products accumulate in k-ascending
//! order at the hardware accumulator precision. KAMI-1D/2D accumulate in
//! exactly that order, so their FP64 results (and, with an accumulator-
//! precision C fragment, FP16 results) match bit for bit.

use kami_gpu_sim::precision::fma_acc;
use kami_gpu_sim::{Matrix, Precision};

/// Exact-order reference: quantized inputs, `in_prec.accumulator()`
/// accumulation, k ascending.
pub fn reference_gemm(a: &Matrix, b: &Matrix, in_prec: Precision) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let aq = a.quantized(in_prec);
    let bq = b.quantized(in_prec);
    let acc = in_prec.accumulator();
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    Matrix::from_fn(m, n, |i, j| {
        let mut s = 0.0;
        for l in 0..k {
            s = fma_acc(acc, aq[(i, l)], bq[(l, j)], s);
        }
        s
    })
}

/// Plain f64 reference (no quantization) — ground truth for error bounds.
pub fn reference_gemm_f64(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "inner dimensions must agree");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    Matrix::from_fn(m, n, |i, j| {
        let mut s = 0.0;
        for l in 0..k {
            s = a[(i, l)].mul_add(b[(l, j)], s);
        }
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::seeded_uniform(8, 8, 9);
        let c = reference_gemm_f64(&a, &Matrix::identity(8));
        assert_eq!(c.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn fp64_reference_equals_f64_reference() {
        let a = Matrix::seeded_uniform(12, 10, 1);
        let b = Matrix::seeded_uniform(10, 9, 2);
        let q = reference_gemm(&a, &b, Precision::Fp64);
        let f = reference_gemm_f64(&a, &b);
        assert!(q.max_abs_diff(&f) < 1e-15);
    }

    #[test]
    fn fp16_reference_error_is_bounded() {
        let a = Matrix::seeded_uniform(32, 32, 3);
        let b = Matrix::seeded_uniform(32, 32, 4);
        let q = reference_gemm(&a, &b, Precision::Fp16);
        let f = reference_gemm_f64(&a, &b);
        // Input quantization error ~u16, accumulation in FP32:
        // relative error well under 1%.
        assert!(q.rel_frobenius_error(&f) < 1e-2);
        // But not identical (quantization did something).
        assert!(q.max_abs_diff(&f) > 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_shapes_panic() {
        reference_gemm_f64(&Matrix::zeros(4, 5), &Matrix::zeros(4, 4));
    }
}
