//! # kami-core
//!
//! KAMI: communication-avoiding GEMM within a single (simulated) GPU —
//! the paper's primary contribution (SC '25).
//!
//! The crate implements the 1D, 2D, and 3D CA block-level GEMM
//! algorithms of §4 on top of the [`kami_gpu_sim`] streaming-
//! multiprocessor simulator: tensor cores compute, registers hold the
//! operands, shared memory is the communication medium, and every run
//! returns cycle-accurate cost alongside the product.
//!
//! * [`gemm()`] / [`gemm_auto`] / [`gemm_padded`] — block-level GEMM
//!   (cuBLASDx-style interface, §4.1).
//! * [`batched_gemm`] — batched interface (cuBLAS/MAGMA-style, §5.4).
//! * [`lowrank_gemm`] — low-rank products (§5.3).
//! * [`model`] — the paper's clock-cycle theory (Formulas 1–12), the
//!   register-demand model (Fig 14), and the roofline model (Fig 3).
//!
//! ```
//! use kami_core::{gemm, Algo, KamiConfig};
//! use kami_gpu_sim::{device, Matrix, Precision};
//!
//! let dev = device::gh200();
//! let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
//! let a = Matrix::seeded_uniform(64, 64, 1);
//! let b = Matrix::seeded_uniform(64, 64, 2);
//! let res = gemm(&dev, &cfg, &a, &b).unwrap();
//! println!("{}: {:.1} simulated cycles, {:.1} TFLOPS",
//!          cfg.algo.label(), res.report.cycles, res.block_tflops(&dev));
//! ```

pub mod algo1d;
pub mod algo25d;
pub mod algo2d;
pub mod algo3d;
pub mod batched;
pub mod config;
pub mod epilogue;
pub mod error;
pub mod gemm;
pub mod layout;
pub mod lowrank;
pub mod model;
pub mod plan;
pub mod reference;
pub mod request;
pub mod tallskinny;
pub mod tune;

pub use algo25d::{gemm_25d, Kami25dConfig};
pub use batched::{
    batched_gemm, batched_gemm_varied, estimate_batched, lpt_makespan, schedule_cycles,
    BatchedResult,
};
pub use config::{Algo, KamiConfig};
pub use epilogue::Epilogue;
pub use error::KamiError;
pub use gemm::{
    gemm, gemm_auto, gemm_fused, gemm_fused_legacy, gemm_legacy, gemm_padded, gemm_scaled,
    gemm_scaled_legacy, gemm_t, padded_dims, GemmResult, MatOp, FALLBACK_FRACTIONS,
};
pub use lowrank::{auto_warps, lowrank_gemm, lowrank_gemm_colsplit, MAX_LOW_RANK};
pub use plan::{gemm_cost, gemm_cost_auto, gemm_execute_plan, gemm_execute_plan_with, GemmPlan};
pub use reference::{reference_gemm, reference_gemm_f64};
pub use request::{GemmRequest, GemmResponse, Op};
pub use tallskinny::{
    combine_partials, gemm_skinny, is_tall_skinny, SKINNY_CHUNK_K, SKINNY_DIM_MAX, SKINNY_K_MIN,
};
pub use tune::{tune, SharedTuner, TunedConfig, Tuner};
