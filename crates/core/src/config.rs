//! KAMI configuration: which CA algorithm, how many warps, what precision,
//! and how much of the operands to park in shared memory (§4.7 slicing).

use crate::error::KamiError;
use kami_gpu_sim::{BackendKind, CostConfig, DeviceSpec, Precision};
use serde::{Deserialize, Serialize};

/// The three communication-avoiding schemes of the paper (§4.3–4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algo {
    /// Row-wise partitioning; only B is communicated (Algorithm 1).
    OneD,
    /// √p×√p grid; A row-broadcast, B column-broadcast (Algorithm 2).
    TwoD,
    /// ∛p×∛p×∛p cube: ∛p concurrent layer-SUMMAs over k-chunks with a
    /// final cross-layer reduction (Algorithm 3).
    ThreeD,
}

impl Algo {
    pub fn label(self) -> &'static str {
        match self {
            Algo::OneD => "KAMI-1D",
            Algo::TwoD => "KAMI-2D",
            Algo::ThreeD => "KAMI-3D",
        }
    }

    /// All three algorithms, in the paper's reporting order.
    pub const ALL: [Algo; 3] = [Algo::OneD, Algo::TwoD, Algo::ThreeD];

    /// Grid extent for `warps`: `p` for 1D, `√p` for 2D, `∛p` for 3D.
    /// Errors unless `warps` is a positive perfect square/cube.
    pub fn grid_extent(self, warps: usize) -> Result<usize, KamiError> {
        let bad = || KamiError::BadWarpCount {
            algo: self.label(),
            warps,
        };
        if warps == 0 {
            return Err(bad());
        }
        match self {
            Algo::OneD => Ok(warps),
            Algo::TwoD => {
                let q = (warps as f64).sqrt().round() as usize;
                (q * q == warps && q >= 1).then_some(q).ok_or_else(bad)
            }
            Algo::ThreeD => {
                let q = (warps as f64).cbrt().round() as usize;
                (q * q * q == warps && q >= 1).then_some(q).ok_or_else(bad)
            }
        }
    }

    /// Number of communication/computation stages (p, √p, ∛p).
    pub fn stages(self, warps: usize) -> Result<usize, KamiError> {
        self.grid_extent(warps)
    }
}

/// Configuration of one KAMI block GEMM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KamiConfig {
    pub algo: Algo,
    /// Warps cooperating on the block (`p`).
    pub warps: usize,
    /// Input precision of A and B; C accumulates at
    /// `precision.accumulator()`.
    pub precision: Precision,
    /// Fraction of each warp's operand registers parked in shared memory
    /// (the §4.7 register/shared-memory cooperation knob; Fig 10 sweeps
    /// 0 / 0.25 / 0.5 / 0.75). Quantized to the algorithm's chunk
    /// granularity.
    pub smem_fraction: f64,
    /// Cycle-model parameters.
    pub cost: CostConfig,
    /// Execution backend for the execute pass (numerics only — plans,
    /// cost reports, and results are identical across backends).
    /// `BackendKind`'s deserializer maps a missing field to the
    /// reference simulator, so configurations serialized before the
    /// seam existed still load.
    pub backend: BackendKind,
}

impl KamiConfig {
    /// Paper-default configuration: 4 warps (8 for 3D — the smallest
    /// perfect cube > 1, matching §5.6.2's measurement setup).
    pub fn new(algo: Algo, precision: Precision) -> Self {
        let warps = match algo {
            Algo::OneD | Algo::TwoD => 4,
            Algo::ThreeD => 8,
        };
        KamiConfig {
            algo,
            warps,
            precision,
            smem_fraction: 0.0,
            cost: CostConfig::default(),
            backend: BackendKind::default(),
        }
    }

    pub fn with_warps(mut self, warps: usize) -> Self {
        self.warps = warps;
        self
    }

    pub fn with_smem_fraction(mut self, f: f64) -> Self {
        self.smem_fraction = f;
        self
    }

    pub fn with_cost(mut self, cost: CostConfig) -> Self {
        self.cost = cost;
        self
    }

    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Validate against a problem and a device. Returns the grid extent.
    pub fn validate(
        &self,
        device: &DeviceSpec,
        m: usize,
        n: usize,
        k: usize,
    ) -> Result<usize, KamiError> {
        if !(0.0..1.0).contains(&self.smem_fraction) {
            return Err(KamiError::BadSliceFraction {
                fraction: self.smem_fraction,
            });
        }
        if self.warps > device.max_warps_per_block() as usize {
            return Err(KamiError::Unsupported {
                detail: format!(
                    "{} warps exceed the device block limit of {}",
                    self.warps,
                    device.max_warps_per_block()
                ),
            });
        }
        if device.peak_tflops(self.precision).is_none() {
            return Err(KamiError::Unsupported {
                detail: format!(
                    "{} has no tensor path for {}",
                    device.name,
                    self.precision.label()
                ),
            });
        }
        let q = self.algo.grid_extent(self.warps)?;
        let err = |detail: String| Err(KamiError::Indivisible { detail });
        match self.algo {
            Algo::OneD => {
                if !m.is_multiple_of(self.warps) || !k.is_multiple_of(self.warps) {
                    return err(format!(
                        "1D with p={} needs p | m and p | k (got m={m}, k={k})",
                        self.warps
                    ));
                }
            }
            Algo::TwoD => {
                if !m.is_multiple_of(q) || !n.is_multiple_of(q) || !k.is_multiple_of(q) {
                    return err(format!(
                        "2D with √p={q} needs √p | m, n, k (got {m}x{n}x{k})"
                    ));
                }
            }
            Algo::ThreeD => {
                if !m.is_multiple_of(q) || !n.is_multiple_of(q) || !k.is_multiple_of(q * q) {
                    return err(format!(
                        "3D with ∛p={q} needs ∛p | m, ∛p | n, ∛p² | k (got {m}x{n}x{k})"
                    ));
                }
            }
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn grid_extents() {
        assert_eq!(Algo::OneD.grid_extent(4).unwrap(), 4);
        assert_eq!(Algo::TwoD.grid_extent(4).unwrap(), 2);
        assert_eq!(Algo::TwoD.grid_extent(16).unwrap(), 4);
        assert_eq!(Algo::ThreeD.grid_extent(8).unwrap(), 2);
        assert_eq!(Algo::ThreeD.grid_extent(27).unwrap(), 3);
        assert!(Algo::TwoD.grid_extent(6).is_err());
        assert!(Algo::ThreeD.grid_extent(4).is_err());
        assert!(Algo::OneD.grid_extent(0).is_err());
    }

    #[test]
    fn default_warp_counts_match_paper_measurement_setup() {
        assert_eq!(KamiConfig::new(Algo::OneD, Precision::Fp16).warps, 4);
        assert_eq!(KamiConfig::new(Algo::TwoD, Precision::Fp16).warps, 4);
        assert_eq!(KamiConfig::new(Algo::ThreeD, Precision::Fp16).warps, 8);
    }

    #[test]
    fn validation_catches_indivisible_sizes() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        assert!(cfg.validate(&dev, 64, 64, 64).is_ok());
        assert!(matches!(
            cfg.validate(&dev, 63, 64, 64),
            Err(KamiError::Indivisible { .. })
        ));
        let cfg3 = KamiConfig::new(Algo::ThreeD, Precision::Fp16);
        // 3D with q=2 needs 4 | k.
        assert!(cfg3.validate(&dev, 64, 64, 64).is_ok());
        assert!(cfg3.validate(&dev, 64, 64, 66).is_err());
    }

    #[test]
    fn validation_catches_unsupported_precision() {
        let dev = kami_gpu_sim::device::rtx5090();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        assert!(matches!(
            cfg.validate(&dev, 64, 64, 64),
            Err(KamiError::Unsupported { .. })
        ));
    }

    #[test]
    fn configs_serialized_before_the_backend_seam_deserialize_to_sim() {
        let v = Serialize::to_value(
            &KamiConfig::new(Algo::TwoD, Precision::Fp16).with_backend(BackendKind::Native),
        );
        let serde::Value::Object(pairs) = v else {
            panic!("config serializes to an object");
        };
        let stripped = serde::Value::Object(
            pairs
                .into_iter()
                .filter(|(key, _)| key != "backend")
                .collect(),
        );
        let cfg = <KamiConfig as Deserialize>::from_value(&stripped).unwrap();
        assert_eq!(cfg.backend, BackendKind::Sim);
    }

    #[test]
    fn validation_catches_bad_fraction() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_smem_fraction(1.5);
        assert!(matches!(
            cfg.validate(&dev, 64, 64, 64),
            Err(KamiError::BadSliceFraction { .. })
        ));
    }
}
