//! Fused epilogues: functions applied to the GEMM output *inside the
//! same kernel pass*, while the C tile is still in registers.
//!
//! The unfused alternative is a second kernel that re-reads C from
//! global memory, applies the function, and writes it back — two extra
//! C-sized global round trips. Fusing reduces the epilogue's global
//! traffic to zero (ReLU/GELU/softmax) or to one bias-row read
//! (`m·n → n` bytes), which is exactly the saving the cost pass
//! accounts in [`crate::model::epilogue`].
//!
//! Numerics contract: [`Epilogue::apply_reference`] is the *oracle* —
//! it performs the same operations in the same order and rounding
//! discipline as the fused register ops
//! ([`kami_gpu_sim::Op::Unary`] / [`kami_gpu_sim::Op::AddRowBroadcast`]),
//! so bias and ReLU are bit-identical between the fused kernel and the
//! two-pass reference, and GELU/softmax agree to within one rounding of
//! the same f64 computation.

use std::hash::{Hash, Hasher};

use crate::error::KamiError;
use kami_gpu_sim::{Matrix, Precision, UnaryFunc};

/// A `GemmRequest`-level fused epilogue, applied to `C = A·B` in
/// registers before the store (valid only on plain products:
/// `alpha == 1`, `beta == 0`, no `c0`).
#[derive(Debug, Clone, PartialEq)]
pub enum Epilogue {
    /// `C[r][c] += bias[0][c]` — the bias row is a `1×n` matrix read
    /// once from global memory (n·s_e bytes instead of a full
    /// m·n-tile round trip).
    Bias(Matrix),
    /// `max(x, 0)` elementwise; bit-exact vs the unfused reference.
    Relu,
    /// tanh-approximated GELU ([`kami_gpu_sim::gelu`]), computed in f64
    /// and rounded once at the output precision.
    Gelu,
    /// Attention-style row-wise `softmax(scale · x)`, max-subtracted in
    /// f64 and rounded once at the output precision. Requires the
    /// kernel's C fragments to span full logical rows (1D layouts and
    /// the skinny path; rejected on 2D with `q > 1`).
    SoftmaxScale(f64),
}

impl Epilogue {
    pub fn label(&self) -> &'static str {
        match self {
            Epilogue::Bias(_) => "bias",
            Epilogue::Relu => "relu",
            Epilogue::Gelu => "gelu",
            Epilogue::SoftmaxScale(_) => "softmax-scale",
        }
    }

    /// The register op this epilogue lowers to, if it is a pure unary
    /// (bias lowers to a `GlobalLoad` + [`kami_gpu_sim::Op::AddRowBroadcast`]
    /// instead).
    pub fn unary_func(&self) -> Option<UnaryFunc> {
        match self {
            Epilogue::Bias(_) => None,
            Epilogue::Relu => Some(UnaryFunc::Relu),
            Epilogue::Gelu => Some(UnaryFunc::Gelu),
            Epilogue::SoftmaxScale(scale) => Some(UnaryFunc::Softmax { scale: *scale }),
        }
    }

    /// Reject shapes the epilogue cannot apply to: the bias row must be
    /// `1×n` and the softmax scale must be finite.
    pub fn validate(&self, n: usize) -> Result<(), KamiError> {
        match self {
            Epilogue::Bias(bias) => {
                if bias.rows() != 1 || bias.cols() != n {
                    return Err(KamiError::ShapeMismatch {
                        detail: format!(
                            "bias epilogue needs a 1x{n} row, got {}x{}",
                            bias.rows(),
                            bias.cols()
                        ),
                    });
                }
                Ok(())
            }
            Epilogue::SoftmaxScale(scale) => {
                if !scale.is_finite() {
                    return Err(KamiError::Unsupported {
                        detail: format!("softmax-scale epilogue needs a finite scale, got {scale}"),
                    });
                }
                Ok(())
            }
            Epilogue::Relu | Epilogue::Gelu => Ok(()),
        }
    }

    /// Content fingerprint for cache / coalescing keys. Never zero —
    /// zero is reserved for "no epilogue" — and distinct for epilogues
    /// that produce different results (kind, scale bits, bias values).
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        match self {
            Epilogue::Bias(bias) => {
                0u8.hash(&mut h);
                bias.rows().hash(&mut h);
                bias.cols().hash(&mut h);
                for v in bias.as_slice() {
                    v.to_bits().hash(&mut h);
                }
            }
            Epilogue::Relu => 1u8.hash(&mut h),
            Epilogue::Gelu => 2u8.hash(&mut h),
            Epilogue::SoftmaxScale(scale) => {
                3u8.hash(&mut h);
                scale.to_bits().hash(&mut h);
            }
        }
        h.finish() | 1
    }

    /// Extra global bytes the fused kernel reads beyond the plain
    /// product (the bias row; zero for the pure unaries).
    pub fn extra_gmem_bytes(&self, prec: Precision) -> usize {
        match self {
            Epilogue::Bias(bias) => bias.cols() * prec.size_bytes(),
            _ => 0,
        }
    }

    /// The unfused reference: apply this epilogue to a downloaded C
    /// with the same per-element operations and rounding order as the
    /// fused register path. `prec` is the output (C) precision.
    pub fn apply_reference(&self, c: &mut Matrix, prec: Precision) {
        match self {
            Epilogue::Bias(bias) => {
                // The fused path reads the bias row through global
                // memory, which quantizes it at the output precision —
                // mirror that before adding.
                let bq = bias.quantized(prec);
                for r in 0..c.rows() {
                    for col in 0..c.cols() {
                        let v = c.get(r, col) + bq.get(0, col);
                        c.set(r, col, prec.round(v));
                    }
                }
            }
            Epilogue::Relu => {
                for v in c.as_mut_slice() {
                    *v = prec.round(v.max(0.0));
                }
            }
            Epilogue::Gelu => {
                for v in c.as_mut_slice() {
                    *v = prec.round(kami_gpu_sim::gelu(*v));
                }
            }
            Epilogue::SoftmaxScale(scale) => {
                let cols = c.cols();
                for row in c.as_mut_slice().chunks_mut(cols) {
                    let mut mx = f64::NEG_INFINITY;
                    for v in row.iter() {
                        mx = mx.max(scale * v);
                    }
                    let mut sum = 0.0;
                    let mut exps = vec![0.0; cols];
                    for (e, v) in exps.iter_mut().zip(row.iter()) {
                        *e = (scale * v - mx).exp();
                        sum += *e;
                    }
                    for (v, e) in row.iter_mut().zip(exps.iter()) {
                        *v = prec.round(e / sum);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_distinguish_epilogues() {
        let bias = Epilogue::Bias(Matrix::seeded_uniform(1, 16, 9));
        let bias2 = Epilogue::Bias(Matrix::seeded_uniform(1, 16, 10));
        let fps = [
            bias.fingerprint(),
            bias2.fingerprint(),
            Epilogue::Relu.fingerprint(),
            Epilogue::Gelu.fingerprint(),
            Epilogue::SoftmaxScale(1.0).fingerprint(),
            Epilogue::SoftmaxScale(0.125).fingerprint(),
        ];
        for (i, a) in fps.iter().enumerate() {
            assert_ne!(*a, 0, "fingerprint must never be 0 (reserved for None)");
            for b in &fps[i + 1..] {
                assert_ne!(a, b, "distinct epilogues must fingerprint differently");
            }
        }
        // Equal content → equal fingerprint (cache keys must be stable).
        assert_eq!(bias.fingerprint(), bias.clone().fingerprint());
    }

    #[test]
    fn bias_validation_rejects_wrong_shapes() {
        let e = Epilogue::Bias(Matrix::zeros(1, 8));
        assert!(e.validate(8).is_ok());
        assert!(e.validate(16).is_err());
        assert!(Epilogue::Bias(Matrix::zeros(2, 8)).validate(8).is_err());
        assert!(Epilogue::SoftmaxScale(f64::NAN).validate(8).is_err());
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut c = Matrix::seeded_uniform(4, 8, 3);
        Epilogue::SoftmaxScale(0.5).apply_reference(&mut c, Precision::Fp32);
        for r in 0..4 {
            let s: f64 = (0..8).map(|j| c.get(r, j)).sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut c = Matrix::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        Epilogue::Relu.apply_reference(&mut c, Precision::Fp32);
        assert_eq!(c.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }
}
