//! Formulas 1–12: per-stage communication volume, communication cycles,
//! computation cycles, and total execution cycles of the 1D/2D/3D
//! algorithms, exactly as derived in §4.3–4.5.

use crate::config::Algo;
use kami_gpu_sim::{DeviceSpec, Precision};
use serde::{Deserialize, Serialize};

/// Hardware parameters of the cycle model (Table 2 notation).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ModelParams {
    /// Register→shared-memory latency `L_sm` (cycles).
    pub l_sm: f64,
    /// Shared-memory bandwidth `B_sm` (bytes/cycle).
    pub b_sm: f64,
    /// Bank-conflict factors.
    pub theta_r: f64,
    pub theta_w: f64,
    /// Arithmetic ops per cycle per tensor core `O_tc`.
    pub o_tc: f64,
    /// Tensor cores per SM `n_tc`.
    pub n_tc: f64,
    /// Element size `s_e` (bytes).
    pub s_e: f64,
}

impl ModelParams {
    /// Derive the model parameters from a device spec and precision.
    /// Returns `None` when the device has no tensor path at `prec`.
    pub fn from_device(device: &DeviceSpec, prec: Precision) -> Option<Self> {
        Some(ModelParams {
            l_sm: device.smem_latency as f64,
            b_sm: device.smem_bytes_per_cycle(),
            theta_r: 1.0,
            theta_w: 1.0,
            o_tc: device.ops_per_cycle_per_tc(prec)?,
            n_tc: f64::from(device.tensor_cores_per_sm),
            s_e: prec.size_bytes() as f64,
        })
    }

    /// The paper's worked-example parameters (§4.3–4.5): `L_sm` = 22,
    /// `B_sm` = 128, `θ` = 1, `O_tc` = 32, `n_tc` = 4, FP64.
    pub fn paper_example() -> Self {
        ModelParams {
            l_sm: 22.0,
            b_sm: 128.0,
            theta_r: 1.0,
            theta_w: 1.0,
            o_tc: 32.0,
            n_tc: 4.0,
            s_e: 8.0,
        }
    }
}

/// Per-stage communication volume `V_cm` in bytes
/// (Formula 1 for 1D, Formula 5 for 2D, Formula 9 for 3D).
pub fn v_cm_per_stage(algo: Algo, m: usize, n: usize, k: usize, _p: usize, s_e: f64) -> f64 {
    match algo {
        Algo::OneD => (k * n) as f64 * s_e,
        Algo::TwoD | Algo::ThreeD => ((m * k + k * n) as f64) * s_e,
    }
}

/// Per-stage communication cycles `T_cm`
/// (Formulas 2, 6, and 10).
pub fn t_cm_per_stage(
    algo: Algo,
    m: usize,
    n: usize,
    k: usize,
    p: usize,
    prm: &ModelParams,
) -> f64 {
    let g = grid(algo, p);
    let vol = v_cm_per_stage(algo, m, n, k, p, prm.s_e);
    prm.l_sm + vol / (prm.theta_w * g * prm.b_sm) + (g - 1.0) * vol / (prm.theta_r * g * prm.b_sm)
}

/// Per-warp, per-stage computation cycles `T_cp`
/// (Formulas 3, 7, and 11).
pub fn t_cp_per_warp_stage(
    algo: Algo,
    m: usize,
    n: usize,
    k: usize,
    p: usize,
    prm: &ModelParams,
) -> f64 {
    let flops = 2.0 * (m * n * k) as f64;
    let per_warp_per_stage = match algo {
        // 1D: (m/p × k/p) · (k/p × n) per stage → 2mnk/p².
        Algo::OneD => flops / (p as f64 * p as f64),
        // 2D: (m/√p × k/√p) · (k/√p × n/√p) → 2mnk/p^{3/2}.
        Algo::TwoD => flops / (p as f64).powf(1.5),
        // 3D: (m/∛p × k/∛p²) · (k/∛p² × n/∛p) per stage → 2mnk/p^{4/3}.
        Algo::ThreeD => flops / (p as f64).powf(4.0 / 3.0),
    };
    per_warp_per_stage / prm.o_tc
}

/// Total execution cycles `T_all` (Formulas 4, 8, and 12): `stages ×
/// (T_cm + p/n_tc · T_cp)`, which simplifies to
/// `L_sm·g + V/(θ_w B_sm) + (g−1)V/(θ_r B_sm) + 2mnk/(n_tc O_tc)`
/// with `g` the stage count and `V` the per-stage volume.
pub fn t_all(algo: Algo, m: usize, n: usize, k: usize, p: usize, prm: &ModelParams) -> f64 {
    let stages = grid(algo, p);
    let t_cm = t_cm_per_stage(algo, m, n, k, p, prm);
    let t_cp = t_cp_per_warp_stage(algo, m, n, k, p, prm);
    stages * (t_cm + (p as f64 / prm.n_tc) * t_cp)
}

/// Communication-only part of `T_all` (for the Fig 15 breakdown).
pub fn t_all_comm(algo: Algo, m: usize, n: usize, k: usize, p: usize, prm: &ModelParams) -> f64 {
    grid(algo, p) * t_cm_per_stage(algo, m, n, k, p, prm)
}

/// Computation-only part of `T_all`: always `2mnk/(n_tc·O_tc)`.
pub fn t_all_compute(m: usize, n: usize, k: usize, prm: &ModelParams) -> f64 {
    2.0 * (m * n * k) as f64 / (prm.n_tc * prm.o_tc)
}

fn grid(algo: Algo, p: usize) -> f64 {
    match algo {
        Algo::OneD => p as f64,
        Algo::TwoD => (p as f64).sqrt(),
        Algo::ThreeD => (p as f64).cbrt(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The three worked examples at the end of §4.3, §4.4, §4.5.

    #[test]
    fn paper_example_1d() {
        let prm = ModelParams::paper_example();
        let (m, n, k, p) = (8, 8, 8, 2);
        assert_eq!(v_cm_per_stage(Algo::OneD, m, n, k, p, prm.s_e), 512.0);
        assert_eq!(t_cm_per_stage(Algo::OneD, m, n, k, p, &prm), 26.0);
        assert_eq!(t_cp_per_warp_stage(Algo::OneD, m, n, k, p, &prm), 8.0);
        assert_eq!(t_all(Algo::OneD, m, n, k, p, &prm), 60.0);
    }

    #[test]
    fn paper_example_2d() {
        let prm = ModelParams::paper_example();
        let (m, n, k, p) = (8, 8, 8, 4);
        assert_eq!(v_cm_per_stage(Algo::TwoD, m, n, k, p, prm.s_e), 1024.0);
        assert_eq!(t_cm_per_stage(Algo::TwoD, m, n, k, p, &prm), 30.0);
        assert_eq!(t_cp_per_warp_stage(Algo::TwoD, m, n, k, p, &prm), 4.0);
        assert_eq!(t_all(Algo::TwoD, m, n, k, p, &prm), 68.0);
    }

    #[test]
    fn paper_example_3d() {
        let prm = ModelParams::paper_example();
        let (m, n, k, p) = (8, 8, 8, 8);
        assert_eq!(v_cm_per_stage(Algo::ThreeD, m, n, k, p, prm.s_e), 1024.0);
        assert_eq!(t_cm_per_stage(Algo::ThreeD, m, n, k, p, &prm), 30.0);
        assert_eq!(t_all(Algo::ThreeD, m, n, k, p, &prm), 68.0);
    }

    #[test]
    fn compute_term_is_algorithm_independent() {
        let prm = ModelParams::paper_example();
        let (m, n, k) = (64, 64, 64);
        let c = t_all_compute(m, n, k, &prm);
        for (algo, p) in [(Algo::OneD, 4), (Algo::TwoD, 4), (Algo::ThreeD, 8)] {
            let total = t_all(algo, m, n, k, p, &prm);
            let comm = t_all_comm(algo, m, n, k, p, &prm);
            assert!((total - comm - c).abs() < 1e-9, "{algo:?}");
        }
    }

    #[test]
    fn three_d_latency_term_smallest_at_scale() {
        // With p = 64 warps: 1D pays 64·L_sm, 2D pays 8·L_sm, 3D 4·L_sm.
        let prm = ModelParams::paper_example();
        let p = 64;
        let (m, n, k) = (64, 64, 64);
        let comm1 = t_all_comm(Algo::OneD, m, n, k, p, &prm);
        let comm2 = t_all_comm(Algo::TwoD, m, n, k, p, &prm);
        let comm3 = t_all_comm(Algo::ThreeD, m, n, k, p, &prm);
        assert!(comm3 < comm2, "3D {comm3} !< 2D {comm2}");
        assert!(comm2 < comm1, "2D {comm2} !< 1D {comm1}");
    }

    #[test]
    fn from_device_matches_table3() {
        let dev = kami_gpu_sim::device::gh200();
        let prm = ModelParams::from_device(&dev, Precision::Fp64).unwrap();
        assert_eq!(prm.l_sm, 22.0);
        assert_eq!(prm.b_sm, 128.0);
        assert_eq!(prm.n_tc, 4.0);
        assert_eq!(prm.s_e, 8.0);
        assert!(ModelParams::from_device(&dev, Precision::Fp16).is_some());
        let consumer = kami_gpu_sim::device::rtx5090();
        assert!(ModelParams::from_device(&consumer, Precision::Fp64).is_none());
    }
}
