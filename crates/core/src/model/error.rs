//! Forward rounding-error bounds for tensor-core GEMM — the numerics
//! companion to the cycle model (the paper cites the mixed-precision
//! analysis literature [1, 96]; this module makes the standard bound
//! executable and testable against the simulator's exact arithmetic).
//!
//! For `Ĉ = fl(Â·B̂)` with inputs quantized at unit roundoff `u_in` and
//! accumulation at `u_acc` over an inner dimension `k`, the classical
//! componentwise bound is
//!
//! ```text
//! |Ĉ − C| ≤ ( (1+u_in)²·(1+u_acc)^k − 1 ) · |A|·|B|  ≈ (2u_in + k·u_acc)·|A|·|B|
//! ```
//!
//! evaluated exactly here (no first-order truncation), so the tests can
//! assert the simulator's measured error never exceeds it.

use kami_gpu_sim::{Matrix, Precision};

/// Exact growth factor `(1+u_in)²·(1+u_acc)^k − 1` of one inner product
/// of length `k` with quantized inputs.
pub fn gamma(k: usize, in_prec: Precision, acc_prec: Precision) -> f64 {
    let u_in = in_prec.unit_roundoff();
    let u_acc = acc_prec.unit_roundoff();
    (1.0 + u_in).powi(2) * (1.0 + u_acc).powi(k as i32) - 1.0
}

/// Componentwise forward error bound `γ·(|A|·|B|)` for `C = A·B` at the
/// given input precision (accumulator = `in_prec.accumulator()`).
pub fn gemm_error_bound(a: &Matrix, b: &Matrix, in_prec: Precision) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let g = gamma(a.cols(), in_prec, in_prec.accumulator());
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    Matrix::from_fn(m, n, |i, j| {
        let mut s = 0.0;
        for l in 0..k {
            s += a[(i, l)].abs() * b[(l, j)].abs();
        }
        g * s
    })
}

/// Worst measured-to-bound ratio over all entries (≤ 1 means the bound
/// holds; reported by tests and the numerics example).
pub fn bound_utilization(computed: &Matrix, exact: &Matrix, bound: &Matrix) -> f64 {
    let mut worst = 0.0f64;
    for i in 0..computed.rows() {
        for j in 0..computed.cols() {
            let err = (computed[(i, j)] - exact[(i, j)]).abs();
            let b = bound[(i, j)];
            if b > 0.0 {
                worst = worst.max(err / b);
            } else {
                assert!(err == 0.0, "nonzero error against a zero bound");
            }
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algo, KamiConfig};
    use crate::gemm::gemm_auto;
    use crate::reference::reference_gemm_f64;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn gamma_grows_with_k_and_coarseness() {
        let g16 = gamma(16, Precision::Fp16, Precision::Fp32);
        let g256 = gamma(256, Precision::Fp16, Precision::Fp32);
        assert!(g256 > g16);
        let gbf = gamma(16, Precision::Bf16, Precision::Fp32);
        assert!(gbf > g16, "BF16's coarser mantissa must widen the bound");
        // FP64 end to end: near machine epsilon.
        assert!(gamma(16, Precision::Fp64, Precision::Fp64) < 1e-14);
    }

    #[test]
    fn simulator_error_respects_the_bound_every_precision() {
        let dev = gh200();
        let n = 32;
        let a = Matrix::seeded_uniform(n, n, 501);
        let b = Matrix::seeded_uniform(n, n, 502);
        let exact = reference_gemm_f64(&a, &b);
        for prec in [
            Precision::Fp64,
            Precision::Tf32,
            Precision::Fp16,
            Precision::Bf16,
        ] {
            let cfg = KamiConfig::new(Algo::OneD, prec);
            let res = gemm_auto(&dev, &cfg, &a, &b).unwrap();
            // The C fragment stores at the input precision, which adds one
            // more rounding per stage beyond the inner-product model:
            // budget it with a small constant factor.
            let bound = gemm_error_bound(&a, &b, prec);
            let util = bound_utilization(&res.c, &exact, &bound);
            assert!(
                util <= 8.0,
                "{}: measured error {util:.2}x the inner-product bound",
                prec.label()
            );
        }
    }

    #[test]
    fn fp64_gemm_is_near_exact() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(32, 32, 503);
        let b = Matrix::seeded_uniform(32, 32, 504);
        let exact = reference_gemm_f64(&a, &b);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let res = gemm_auto(&dev, &cfg, &a, &b).unwrap();
        let bound = gemm_error_bound(&a, &b, Precision::Fp64);
        assert!(bound_utilization(&res.c, &exact, &bound) <= 1.0);
    }

    #[test]
    fn bound_is_not_vacuous() {
        // The bound should be within a few orders of magnitude of the
        // actual error for FP16, not astronomically loose.
        let dev = gh200();
        let n = 64;
        let a = Matrix::seeded_uniform(n, n, 505);
        let b = Matrix::seeded_uniform(n, n, 506);
        let exact = reference_gemm_f64(&a, &b);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let res = gemm_auto(&dev, &cfg, &a, &b).unwrap();
        let bound = gemm_error_bound(&a, &b, Precision::Fp16);
        let util = bound_utilization(&res.c, &exact, &bound);
        assert!(util > 1e-4, "bound uselessly loose: utilization {util:.2e}");
    }
}
