//! Closed forms for the fused-epilogue cost delta.
//!
//! A fused epilogue perturbs a kernel's final (store) phase in exactly
//! three ways, and nowhere else:
//!
//! 1. a **bias** epilogue adds one `1×cols` global read per storing
//!    warp (the bias columns under that warp's C tile) — `p·n` elements
//!    on 1D (every warp spans all n columns), `p·n/q` on 2D;
//! 2. a bias read makes the store phase pay the global-load latency
//!    `L_gm` it previously avoided (stores are fire-and-forget);
//! 3. every epilogue adds one CUDA-core register op per storing warp
//!    (`AddRowBroadcast` or `Unary`), charged `reg_latency` each.
//!
//! Shared-memory traffic and tensor-core flops are untouched, so under
//! [`CostMode::Serial`](kami_gpu_sim::CostMode) the fused-minus-plain
//! cycle delta is exactly [`epilogue_delta_cycles`] — the verify grid
//! holds the engine to this with zero tolerance.
//!
//! The *saving* vs the unfused two-pass alternative (a second kernel
//! that round-trips the full C tile) is [`unfused_epilogue_cycles`]
//! minus the delta: the fused path trades `2·m·n + n` elements of
//! global traffic for at most `p·n` bias elements and `p` register ops.

use crate::config::Algo;
use kami_gpu_sim::{DeviceSpec, Precision};

/// Bias-row elements the fused kernel reads: each storing warp loads
/// the bias columns under its own C tile. `None` for 3D, whose
/// accumulate-stores cannot host an epilogue.
pub fn bias_elems(algo: Algo, n: usize, p: usize) -> Option<usize> {
    match algo {
        Algo::OneD => Some(p * n),
        Algo::TwoD => {
            let q = (p as f64).sqrt().round() as usize;
            if q * q != p {
                return None;
            }
            Some(p * (n / q))
        }
        Algo::ThreeD => None,
    }
}

/// Extra global bytes the fused kernel reads beyond the plain product.
/// Zero for the pure unaries (ReLU/GELU/softmax run entirely in
/// registers).
pub fn epilogue_gmem_read_bytes(
    algo: Algo,
    n: usize,
    p: usize,
    prec: Precision,
    is_bias: bool,
) -> Option<u64> {
    if !is_bias {
        return Some(0);
    }
    bias_elems(algo, n, p).map(|e| (e * prec.size_bytes()) as u64)
}

/// Fused-minus-plain cycle delta under `CostMode::Serial`:
/// `[is_bias]·(L_gm + bias_bytes/B_gm) + p·reg_latency`.
pub fn epilogue_delta_cycles(
    device: &DeviceSpec,
    algo: Algo,
    n: usize,
    p: usize,
    prec: Precision,
    is_bias: bool,
) -> Option<f64> {
    let bytes = epilogue_gmem_read_bytes(algo, n, p, prec, is_bias)?;
    let global = if is_bias {
        device.gmem_latency as f64 + bytes as f64 / device.gmem_bytes_per_cycle
    } else {
        0.0
    };
    Some(global + p as f64 * device.reg_latency as f64)
}

/// Cycles of the unfused alternative: a second kernel pass that reads
/// the `m×n` C tile (and the bias row, if any), applies the epilogue on
/// CUDA cores, and writes C back — `L_gm + (2·m·n + [is_bias]·n)·s_e /
/// B_gm + reg_latency` of pure global round trip.
pub fn unfused_epilogue_cycles(
    device: &DeviceSpec,
    m: usize,
    n: usize,
    prec: Precision,
    is_bias: bool,
) -> f64 {
    let s_e = prec.size_bytes();
    let elems = 2 * m * n + if is_bias { n } else { 0 };
    device.gmem_latency as f64
        + (elems * s_e) as f64 / device.gmem_bytes_per_cycle
        + device.reg_latency as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::device;

    #[test]
    fn bias_elems_follow_store_geometry() {
        assert_eq!(bias_elems(Algo::OneD, 64, 4), Some(256));
        assert_eq!(bias_elems(Algo::TwoD, 64, 4), Some(128)); // q=2, 4 warps x 32 cols
        assert_eq!(bias_elems(Algo::ThreeD, 64, 8), None);
    }

    #[test]
    fn unary_epilogue_costs_only_register_ops() {
        let dev = device::gh200();
        let d = epilogue_delta_cycles(&dev, Algo::OneD, 64, 4, Precision::Fp16, false).unwrap();
        assert_eq!(d, 4.0 * dev.reg_latency as f64);
        assert_eq!(
            epilogue_gmem_read_bytes(Algo::OneD, 64, 4, Precision::Fp16, false),
            Some(0)
        );
    }

    #[test]
    fn fused_beats_unfused_round_trip() {
        // The whole point: the fused delta must be far below the
        // two-pass alternative on every device and shape we care about.
        for dev in [
            device::gh200(),
            device::rtx5090(),
            device::amd_7900xtx(),
            device::intel_max1100(),
        ] {
            for &(m, n, p) in &[(64usize, 64usize, 4usize), (128, 128, 4)] {
                let fused =
                    epilogue_delta_cycles(&dev, Algo::OneD, n, p, Precision::Fp16, true).unwrap();
                let unfused = unfused_epilogue_cycles(&dev, m, n, Precision::Fp16, true);
                assert!(
                    fused < unfused,
                    "{}: fused {fused:.1} >= unfused {unfused:.1} at {m}x{n}",
                    dev.name
                );
            }
        }
    }
}
