//! Theoretical per-thread register demand (§5.6.1, Fig 14): every
//! fragment a warp declares, held simultaneously — the naive upper bound
//! the paper compares against compiler-measured allocation.

use crate::config::Algo;
use kami_gpu_sim::Precision;

/// Registers per thread to hold an `rows×cols` tile at `prec` across a
/// 32-thread warp with 4-byte registers.
fn tile_regs(rows: usize, cols: usize, prec: Precision) -> u32 {
    let bytes = rows * cols * prec.size_bytes();
    (bytes.div_ceil(32)).div_ceil(4) as u32
}

/// Theoretical per-thread register demand of one warp for an `m×n×k`
/// problem under `algo` with `p` warps: operands `A_i`, `B_i`, receive
/// buffers, and the `C_i` accumulator (at `c_prec`).
///
/// This is the Fig 14 "theoretical" series; the "actual" series comes
/// from [`kami_gpu_sim::Engine::analyze_registers`], whose live-range
/// reuse lands below this bound.
pub fn theoretical_registers(
    algo: Algo,
    m: usize,
    n: usize,
    k: usize,
    p: usize,
    prec: Precision,
    c_prec: Precision,
) -> u32 {
    match algo {
        Algo::OneD => {
            let (mi, ki) = (m / p, k / p);
            // A_i (m/p × k) + B_i (k/p × n) + BRecv (k/p × n) + C_i.
            tile_regs(mi, k, prec) + 2 * tile_regs(ki, n, prec) + tile_regs(mi, n, c_prec)
        }
        Algo::TwoD => {
            let q = (p as f64).sqrt().round() as usize;
            let (mi, ni, ki) = (m / q, n / q, k / q);
            // A_i + ARecv + B_i + BRecv + C_i.
            2 * tile_regs(mi, ki, prec) + 2 * tile_regs(ki, ni, prec) + tile_regs(mi, ni, c_prec)
        }
        Algo::ThreeD => {
            let q = (p as f64).cbrt().round() as usize;
            let (mi, ni, ks) = (m / q, n / q, k / (q * q));
            2 * tile_regs(mi, ks, prec) + 2 * tile_regs(ks, ni, prec) + tile_regs(mi, ni, c_prec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_regs_basics() {
        // 16×16 FP16 = 512 B / 32 threads / 4 B = 4 regs.
        assert_eq!(tile_regs(16, 16, Precision::Fp16), 4);
        assert_eq!(tile_regs(8, 8, Precision::Fp64), 4);
    }

    #[test]
    fn paper_example_128_cubed_fp64() {
        // §4.7: three 128×128 FP64 matrices over 8 warps need 384
        // regs/thread when each warp holds 1/8 of each matrix. The 1D
        // count adds the BRecv buffer on top of that bound.
        let r = theoretical_registers(
            Algo::OneD,
            128,
            128,
            128,
            8,
            Precision::Fp64,
            Precision::Fp64,
        );
        // A_i 16×128 + B_i 16×128 + C_i 16×128 = 384, + BRecv 16×128 = 512.
        assert_eq!(r, 512);
    }

    #[test]
    fn demand_grows_with_k_in_1d() {
        let prec = Precision::Fp16;
        let r16 = theoretical_registers(Algo::OneD, 64, 32, 16, 4, prec, prec);
        let r64 = theoretical_registers(Algo::OneD, 64, 32, 64, 4, prec, prec);
        let r128 = theoretical_registers(Algo::OneD, 64, 32, 128, 4, prec, prec);
        assert!(r16 < r64 && r64 < r128);
    }

    #[test]
    fn three_d_needs_fewest_registers_per_warp() {
        // More warps and a thinner k shard: 3D fragments are smallest.
        let prec = Precision::Fp16;
        let r1 = theoretical_registers(Algo::OneD, 64, 64, 64, 4, prec, prec);
        let r3 = theoretical_registers(Algo::ThreeD, 64, 64, 64, 8, prec, prec);
        assert!(r3 < r1, "3D {r3} !< 1D {r1}");
    }
}
