//! The paper's theoretical analysis (§4, Formulas 1–12) plus the
//! register-demand model (§5.6.1) and the device-level roofline model
//! (§3.1) — everything needed to regenerate the "theoretical" series of
//! Figs 3, 14, and 15.

pub mod cycles;
pub mod epilogue;
pub mod error;
pub mod registers;
pub mod roofline;
pub mod skinny;

pub use cycles::{
    t_all, t_all_comm, t_all_compute, t_cm_per_stage, t_cp_per_warp_stage, v_cm_per_stage,
    ModelParams,
};
pub use error::{bound_utilization, gamma, gemm_error_bound};
pub use registers::theoretical_registers;
pub use roofline::{cublas_like_gflops, machine_balance, Roofline};
