//! Roofline and device-level GEMM model (paper §3.1, Fig 3).
//!
//! Reproduces the two series of Fig 3 on the GH200:
//! * a cuBLAS-style *device-level* GEMM whose kernels stream A, B, C
//!   through global memory and pay a fixed per-launch overhead — near
//!   peak for large n, collapsing for small n;
//! * the roofline itself: `min(peak, AI · BW)` over arithmetic intensity.

use kami_gpu_sim::{DeviceSpec, Precision};
use serde::{Deserialize, Serialize};

/// Device roofline at a precision.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak tensor throughput (FLOP/s).
    pub peak_flops: f64,
    /// Global-memory bandwidth (bytes/s).
    pub mem_bw: f64,
}

impl Roofline {
    pub fn of(device: &DeviceSpec, prec: Precision) -> Option<Self> {
        Some(Roofline {
            peak_flops: device.peak_tflops(prec)? * 1e12,
            mem_bw: device.gmem_bytes_per_cycle * device.num_sms as f64 * device.clock_hz(),
        })
    }

    /// Attainable FLOP/s at arithmetic intensity `ai` (flops/byte).
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.mem_bw).min(self.peak_flops)
    }

    /// Ridge point: the intensity where the kernel turns compute-bound.
    pub fn ridge(&self) -> f64 {
        self.peak_flops / self.mem_bw
    }
}

/// Arithmetic intensity of a square n³ GEMM streaming A, B, C once:
/// `2n³ / (3n²·s_e)`.
pub fn machine_balance(n: usize, prec: Precision) -> f64 {
    2.0 * n as f64 / (3.0 * prec.size_bytes() as f64)
}

/// Per-launch overhead of a host-launched kernel, in cycles. ~15 µs of
/// launch + synchronization per iteration reproduces the small-size floor
/// the paper measures for cuBLAS on GH200 (~28 GFLOPS at m = 64, §3.1).
pub fn launch_overhead_cycles(device: &DeviceSpec) -> f64 {
    15e-6 * device.clock_hz()
}

/// Modelled GFLOPS of a cuBLAS-style device GEMM on square order `n`:
/// launch overhead + max(compute time, memory time), i.e. a latency-
/// capped roofline.
pub fn cublas_like_gflops(device: &DeviceSpec, prec: Precision, n: usize) -> Option<f64> {
    let rl = Roofline::of(device, prec)?;
    let flops = 2.0 * (n as f64).powi(3);
    let bytes = 3.0 * (n as f64).powi(2) * prec.size_bytes() as f64;
    let compute_s = flops / rl.peak_flops;
    let mem_s = bytes / rl.mem_bw;
    let launch_s = launch_overhead_cycles(device) / device.clock_hz();
    let total = launch_s + compute_s.max(mem_s);
    Some(flops / total / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn roofline_attainable_caps_at_peak() {
        let rl = Roofline::of(&gh200(), Precision::Fp64).unwrap();
        assert!(rl.attainable(1e9) <= rl.peak_flops * 1.0001);
        assert!(rl.attainable(0.001) < rl.peak_flops);
        // Below the ridge, bandwidth-bound.
        let ridge = rl.ridge();
        assert!((rl.attainable(ridge / 2.0) - ridge / 2.0 * rl.mem_bw).abs() < 1.0);
    }

    #[test]
    fn small_gemm_floor_matches_paper_order_of_magnitude() {
        // The paper measures ~28 GFLOPS for FP64 cuBLAS at m = 64.
        let g = cublas_like_gflops(&gh200(), Precision::Fp64, 64).unwrap();
        assert!(g > 5.0 && g < 120.0, "g = {g}");
    }

    #[test]
    fn large_gemm_approaches_peak() {
        let g = cublas_like_gflops(&gh200(), Precision::Fp64, 8192).unwrap();
        let peak = 67e3; // GFLOPS
        assert!(g > 0.85 * peak, "g = {g}");
        assert!(g <= peak);
    }

    #[test]
    fn gflops_monotone_up_to_peak() {
        let mut prev = 0.0;
        for n in [16, 64, 256, 1024, 4096, 8192] {
            let g = cublas_like_gflops(&gh200(), Precision::Fp64, n).unwrap();
            assert!(g >= prev, "n={n}: {g} < {prev}");
            prev = g;
        }
    }

    #[test]
    fn machine_balance_grows_linearly() {
        assert_eq!(machine_balance(24, Precision::Fp64), 2.0);
        assert_eq!(machine_balance(48, Precision::Fp64), 4.0);
    }
}
