//! Closed forms for the tall-skinny k-split path.
//!
//! Tall-and-skinny products (`m,n ≤ 64`, `k ≥ 10^4`) cannot run
//! monolithically — the A/B fragments alone (`m·k/p` elements per
//! warp) overflow the register file by an order of magnitude — so the
//! skinny path splits k into [`SKINNY_CHUNK_K`]-deep chunks, runs each
//! chunk as an ordinary 1D/2D block GEMM, and combines the partial C
//! tiles with a **tree fixup** (pairwise merge rounds, following Ernst
//! et al.'s tall-skinny reduction strategies): round `r` halves the
//! number of live partials, every merge reads two `m×n` tiles and
//! writes one, and all merges of a round proceed concurrently — so a
//! round costs one tile-merge of bandwidth per merge but only
//! `⌈log₂ chunks⌉` rounds sit on the critical path, vs `chunks − 1`
//! serial merges for the naive fixup.
//!
//! This module is the single source of truth for that accounting: the
//! skinny executor synthesizes its fixup phases from
//! [`fixup_phases`], and the golden-model tests snapshot
//! [`fixup_cycles`] per device — so model and engine agree by
//! construction and any drift in either is caught.

use kami_gpu_sim::cost::{phase_cost, CostConfig, PhaseTally};
use kami_gpu_sim::{DeviceSpec, Precision, SimError};

/// Largest m/n still considered skinny (paper-scale: a few output
/// columns against a deep k).
pub const SKINNY_DIM_MAX: usize = 64;
/// Smallest k that forces the k-split path (monolithic kernels are
/// register-infeasible well below this on every Table 3 device).
pub const SKINNY_K_MIN: usize = 4096;
/// k-depth of one chunk: deep enough to amortize the per-chunk A/B
/// loads, shallow enough that an `m,n ≤ 64` chunk always fits the
/// register file.
pub const SKINNY_CHUNK_K: usize = 256;

/// Is `(m, n, k)` a tall-skinny (or, transposed, wide) shape the
/// k-split path should own?
pub fn is_tall_skinny(m: usize, n: usize, k: usize) -> bool {
    m <= SKINNY_DIM_MAX && n <= SKINNY_DIM_MAX && k >= SKINNY_K_MIN
}

/// Number of `SKINNY_CHUNK_K`-deep chunks covering `k` (the last chunk
/// may be ragged).
pub fn chunk_count(k: usize) -> usize {
    k.div_ceil(SKINNY_CHUNK_K)
}

/// Depth of the pairwise merge tree over `parts` partials:
/// `⌈log₂ parts⌉` rounds (0 for a single partial).
pub fn tree_depth(parts: usize) -> usize {
    if parts <= 1 {
        return 0;
    }
    (usize::BITS - (parts - 1).leading_zeros()) as usize
}

/// Merges performed in each tree round: round `r` reduces `n_r` live
/// partials to `⌈n_r/2⌉`, performing `n_r − ⌈n_r/2⌉` pairwise merges.
pub fn round_merges(chunks: usize) -> Vec<usize> {
    let mut live = chunks;
    let mut rounds = Vec::new();
    while live > 1 {
        let next = live.div_ceil(2);
        rounds.push(live - next);
        live = next;
    }
    rounds
}

/// The synthesized fixup phases of one skinny-path run: one phase per
/// tree round. Every merge reads two `m×n` partial tiles and writes
/// one (all at the output precision) and performs one `AddAssign`
/// register op. The final round additionally carries the fused
/// epilogue, if any: `bias_elems` bias-row elements read once plus
/// `epilogue_reg_ops` register ops.
pub fn fixup_phases(
    m: usize,
    n: usize,
    chunks: usize,
    prec: Precision,
    bias_elems: usize,
    epilogue_reg_ops: u64,
) -> Vec<PhaseTally> {
    let tile_bytes = (m * n * prec.size_bytes()) as u64;
    let merges = round_merges(chunks);
    let rounds = merges.len();
    let mut phases: Vec<PhaseTally> = merges
        .iter()
        .map(|&merge_count| PhaseTally {
            gmem_bytes: 3 * tile_bytes * merge_count as u64,
            has_gmem_load: true,
            reg_copies: merge_count as u64,
            ..Default::default()
        })
        .collect();
    if bias_elems > 0 || epilogue_reg_ops > 0 {
        if phases.is_empty() {
            phases.push(PhaseTally::default());
        }
        let last = phases.last_mut().unwrap();
        last.gmem_bytes += (bias_elems * prec.size_bytes()) as u64;
        last.has_gmem_load = last.has_gmem_load || bias_elems > 0;
        last.reg_copies += epilogue_reg_ops;
    }
    debug_assert_eq!(round_merges(chunks).len(), rounds);
    phases
}

/// Total fixup cycles (the closed form the golden tests snapshot):
/// sum of [`phase_cost`] over [`fixup_phases`] under `cost`.
#[allow(clippy::too_many_arguments)]
pub fn fixup_cycles(
    device: &DeviceSpec,
    cost: &CostConfig,
    m: usize,
    n: usize,
    chunks: usize,
    prec: Precision,
    bias_elems: usize,
    epilogue_reg_ops: u64,
) -> Result<f64, SimError> {
    let mut total = 0.0;
    for tally in fixup_phases(m, n, chunks, prec, bias_elems, epilogue_reg_ops) {
        total += phase_cost(device, cost, &tally)?.cycles(cost.mode);
    }
    Ok(total)
}

/// Cycles of the *serial* fixup the tree replaces (`chunks − 1`
/// dependent merges) — kept as the comparison point for the bench gate
/// and the scheduler's DP-vs-SkinnyK decision.
pub fn serial_fixup_cycles(
    device: &DeviceSpec,
    cost: &CostConfig,
    m: usize,
    n: usize,
    chunks: usize,
    prec: Precision,
) -> Result<f64, SimError> {
    let tile_bytes = (m * n * prec.size_bytes()) as u64;
    let merges = chunks.saturating_sub(1);
    let mut total = 0.0;
    for _ in 0..merges {
        let tally = PhaseTally {
            gmem_bytes: 3 * tile_bytes,
            has_gmem_load: true,
            reg_copies: 1,
            ..Default::default()
        };
        total += phase_cost(device, cost, &tally)?.cycles(cost.mode);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::device;

    #[test]
    fn classification_matches_the_paper_regime() {
        assert!(is_tall_skinny(16, 16, 65536));
        assert!(is_tall_skinny(64, 64, 4096));
        assert!(!is_tall_skinny(128, 16, 65536)); // m too large
        assert!(!is_tall_skinny(16, 16, 1024)); // k too shallow
    }

    #[test]
    fn tree_depth_and_merges_are_consistent() {
        for chunks in 1..200 {
            let merges = round_merges(chunks);
            assert_eq!(merges.len(), tree_depth(chunks), "chunks = {chunks}");
            // Every partial but the survivor is consumed by exactly one merge.
            let total: usize = merges.iter().sum();
            assert_eq!(total, chunks.saturating_sub(1), "chunks = {chunks}");
        }
        assert_eq!(tree_depth(1), 0);
        assert_eq!(tree_depth(2), 1);
        assert_eq!(tree_depth(256), 8);
        assert_eq!(tree_depth(257), 9);
    }

    #[test]
    fn tree_fixup_beats_serial_fixup() {
        let dev = device::gh200();
        let cost = CostConfig::default();
        for &chunks in &[16usize, 64, 256] {
            let tree = fixup_cycles(&dev, &cost, 16, 16, chunks, Precision::Fp16, 0, 0).unwrap();
            let serial = serial_fixup_cycles(&dev, &cost, 16, 16, chunks, Precision::Fp16).unwrap();
            assert!(
                tree < serial,
                "chunks={chunks}: tree {tree:.1} >= serial {serial:.1}"
            );
        }
    }

    #[test]
    fn epilogue_surcharge_lands_in_the_last_phase() {
        let plain = fixup_phases(16, 16, 8, Precision::Fp16, 0, 0);
        let fused = fixup_phases(16, 16, 8, Precision::Fp16, 16, 1);
        assert_eq!(plain.len(), fused.len());
        for (p, f) in plain.iter().zip(fused.iter()).take(plain.len() - 1) {
            assert_eq!(p.gmem_bytes, f.gmem_bytes);
            assert_eq!(p.reg_copies, f.reg_copies);
        }
        let (lp, lf) = (plain.last().unwrap(), fused.last().unwrap());
        assert_eq!(lf.gmem_bytes - lp.gmem_bytes, 32); // 16 fp16 bias elems
        assert_eq!(lf.reg_copies - lp.reg_copies, 1);
    }
}
