//! Public block-level GEMM entry points.
//!
//! [`gemm`] runs one KAMI block kernel end to end on the simulator:
//! upload → build the 1D/2D/3D kernel → execute → download, returning
//! both the product and the cycle-accurate [`ExecutionReport`].
//!
//! [`gemm_auto`] additionally implements the paper's preset-ratio
//! behaviour (§4.7/§5.2.5): if the requested configuration exceeds the
//! 255-registers-per-thread limit, it escalates `smem_fraction` through
//! a ladder until the kernel fits, exactly like KAMI's fallback from
//! registers to shared memory.
//!
//! [`gemm_padded`] accepts arbitrary dimensions by zero-padding to the
//! partition grid and cropping the result.

use crate::algo1d;
use crate::algo2d;
use crate::algo3d;
use crate::config::{Algo, KamiConfig};
use crate::epilogue::Epilogue;
use crate::error::KamiError;
use kami_gpu_sim::{
    DeviceSpec, Engine, ExecutionReport, GlobalMemory, Matrix, Precision, SimError,
};

/// Output of one block GEMM.
#[derive(Debug, Clone)]
pub struct GemmResult {
    /// The product `C = A·B` (at the configuration's C precision).
    pub c: Matrix,
    /// Cycle/traffic/register report of the block kernel.
    pub report: ExecutionReport,
    /// `smem_fraction` actually used (differs from the request when
    /// [`gemm_auto`] escalated).
    pub smem_fraction: f64,
    /// Useful flops of the logical problem (`2·m·n·k`), for TFLOPS math.
    pub useful_flops: u64,
}

impl GemmResult {
    /// Block-level TFLOPS on `device` (paper's Fig 8 metric: on-chip
    /// cycles only, useful flops only).
    pub fn block_tflops(&self, device: &DeviceSpec) -> f64 {
        self.report.block_tflops(device, self.useful_flops)
    }
}

/// C-fragment precision for an input precision: the paper stores C at the
/// operand precision (its §4.7 register accounting counts C like A and B),
/// accumulating each MMA internally at the hardware accumulator precision.
pub fn c_precision(input: Precision) -> Precision {
    input
}

/// Which interpreter backs a GEMM run: the split plan→cost→execute
/// pipeline (default) or the legacy interleaved engine kept as the
/// differential oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EnginePath {
    Split,
    Legacy,
}

/// Build the algorithm kernel for one block GEMM (the single place the
/// 1D/2D/3D dispatch lives).
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_gemm_kernel(
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
    ab: kami_gpu_sim::BufferId,
    bb: kami_gpu_sim::BufferId,
    cb: kami_gpu_sim::BufferId,
    c_prec: Precision,
) -> kami_gpu_sim::BlockKernel {
    match cfg.algo {
        Algo::OneD => algo1d::build_kernel(cfg, m, n, k, ab, bb, cb, c_prec),
        Algo::TwoD => algo2d::build_kernel(cfg, m, n, k, ab, bb, cb, c_prec),
        Algo::ThreeD => algo3d::build_kernel(cfg, m, n, k, ab, bb, cb, c_prec),
    }
}

/// Run a built kernel through the requested engine path. The split
/// pipeline honors `cfg.backend`; the legacy oracle is always the
/// interleaved interpreter (it predates the seam and exists to check
/// every backend against).
pub(crate) fn run_kernel(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    kernel: &kami_gpu_sim::BlockKernel,
    gmem: &mut GlobalMemory,
    path: EnginePath,
) -> Result<ExecutionReport, SimError> {
    let engine = Engine::with_cost(device, cfg.cost.clone());
    match path {
        EnginePath::Legacy => engine.run(kernel, gmem),
        EnginePath::Split => {
            let planned = engine.plan(kernel)?;
            let layout = gmem.layout();
            let report = engine.cost(&planned, &layout)?;
            engine.execute_with(cfg.backend, &planned, gmem)?;
            Ok(report)
        }
    }
}

/// Run one KAMI block GEMM: `C = A·B` with `A: m×k`, `B: k×n`.
///
/// Thin wrapper over the unified request API: builds a
/// [`crate::request::GemmRequest`] pinned to `cfg` and executes it.
pub fn gemm(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    crate::request::GemmRequest::from_config(
        crate::request::Op::Gemm {
            a: a.clone(),
            b: b.clone(),
        },
        cfg,
    )
    .execute_single(device)
}

/// Engine body of [`gemm`] (shared by the request executor); runs the
/// split plan→cost→execute pipeline.
pub(crate) fn exec_gemm(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    exec_gemm_path(device, cfg, a, b, EnginePath::Split)
}

/// [`gemm`] driven by the legacy interleaved engine. Exists so the
/// differential harness (`kami-verify`'s `ExecParity`) can hold the two
/// interpreters together on real workloads; everything else goes
/// through the split pipeline.
pub fn gemm_legacy(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    exec_gemm_path(device, cfg, a, b, EnginePath::Legacy)
}

fn exec_gemm_path(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
    path: EnginePath,
) -> Result<GemmResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb {
        return Err(KamiError::ShapeMismatch {
            detail: format!("A is {m}x{k} but B is {kb}x{n}"),
        });
    }
    cfg.validate(device, m, n, k)?;

    let prec = cfg.precision;
    let c_prec = c_precision(prec);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", a, prec);
    let bb = gmem.upload("B", b, prec);
    let cb = gmem.alloc_zeroed("C", m, n, c_prec);

    let kernel = build_gemm_kernel(cfg, m, n, k, ab, bb, cb, c_prec);
    let report = run_kernel(device, cfg, &kernel, &mut gmem, path)?;
    Ok(GemmResult {
        c: gmem.download(cb),
        report,
        smem_fraction: cfg.smem_fraction,
        useful_flops: 2 * (m as u64) * (n as u64) * (k as u64),
    })
}

/// Full BLAS-style GEMM: `C = alpha·A·B + beta·C0`.
///
/// The epilogue runs inside the kernel for 1D/2D (each warp scales its
/// accumulator by `alpha`, re-reads its `C0` window, scales by `beta`,
/// adds, and stores — the extra global traffic and register ops are
/// charged); the 3D cross-layer reduction accumulates `alpha`-scaled
/// partials onto a `beta`-prescaled buffer (the `beta` pass is applied at
/// upload, the way split-k reduction kernels handle it).
///
/// Per BLAS, `alpha == 0` must not read `A` or `B` (NaN/Inf in them must
/// not poison `C`): that case short-circuits to the `beta·C0` epilogue
/// without building the product kernel.
pub fn gemm_scaled(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c0: &Matrix,
) -> Result<GemmResult, KamiError> {
    crate::request::GemmRequest::from_config(
        crate::request::Op::Gemm {
            a: a.clone(),
            b: b.clone(),
        },
        cfg,
    )
    .scaled(alpha, beta, c0.clone())
    .execute_single(device)
}

/// Engine body of [`gemm_scaled`] (shared by the request executor);
/// runs the split plan→cost→execute pipeline.
pub(crate) fn exec_gemm_scaled(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c0: &Matrix,
) -> Result<GemmResult, KamiError> {
    exec_gemm_scaled_path(device, cfg, alpha, a, b, beta, c0, EnginePath::Split)
}

/// [`gemm_scaled`] driven by the legacy interleaved engine (the
/// `ExecParity` differential oracle, like [`gemm_legacy`]).
pub fn gemm_scaled_legacy(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c0: &Matrix,
) -> Result<GemmResult, KamiError> {
    exec_gemm_scaled_path(device, cfg, alpha, a, b, beta, c0, EnginePath::Legacy)
}

#[allow(clippy::too_many_arguments)]
fn exec_gemm_scaled_path(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c0: &Matrix,
    path: EnginePath,
) -> Result<GemmResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb || c0.rows() != m || c0.cols() != n {
        return Err(KamiError::ShapeMismatch {
            detail: format!(
                "A {m}x{k}, B {kb}x{n}, C {}x{} are inconsistent",
                c0.rows(),
                c0.cols()
            ),
        });
    }
    cfg.validate(device, m, n, k)?;
    if alpha == 0.0 {
        return gemm_beta_only(device, cfg, beta, c0);
    }

    let prec = cfg.precision;
    let c_prec = c_precision(prec);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", a, prec);
    let bb = gmem.upload("B", b, prec);
    let three_d = cfg.algo == Algo::ThreeD;
    let cb = if three_d {
        // Pre-scaled beta pass; the kernel accumulates alpha-scaled
        // layer partials on top.
        let scaled = Matrix::from_fn(m, n, |r, c| beta * c0[(r, c)]);
        gmem.upload("C", &scaled, c_prec)
    } else if beta != 0.0 {
        gmem.upload("C", c0, c_prec)
    } else {
        gmem.alloc_zeroed("C", m, n, c_prec)
    };

    let mut kernel = build_gemm_kernel(cfg, m, n, k, ab, bb, cb, c_prec);
    apply_epilogue(&mut kernel, cb, alpha, beta, three_d, c_prec);

    let report = run_kernel(device, cfg, &kernel, &mut gmem, path)?;
    Ok(GemmResult {
        c: gmem.download(cb),
        report,
        smem_fraction: cfg.smem_fraction,
        useful_flops: 2 * (m as u64) * (n as u64) * (k as u64),
    })
}

/// The `alpha == 0` epilogue: `C = beta·C0` without touching `A`/`B`.
/// Values follow the device rounding chain (`C0` quantized at upload,
/// scaled, quantized at store); `beta == 0` does not read `C0` either
/// (cuBLAS semantics: `C0` may be garbage). The report charges only the
/// epilogue's global traffic — no shared memory, no tensor-core flops.
fn gemm_beta_only(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    beta: f64,
    c0: &Matrix,
) -> Result<GemmResult, KamiError> {
    use kami_gpu_sim::cost::{phase_cost, PhaseTally};
    let (m, n) = (c0.rows(), c0.cols());
    let c_prec = c_precision(cfg.precision);
    let c = if beta == 0.0 {
        Matrix::zeros(m, n)
    } else {
        let q0 = c0.quantized(c_prec);
        Matrix::from_fn(m, n, |r, col| c_prec.round(beta * q0[(r, col)]))
    };
    let c_bytes = (m * n * c_prec.size_bytes()) as u64;
    let read = if beta == 0.0 { 0 } else { c_bytes };
    let tally = PhaseTally {
        gmem_bytes: read + c_bytes,
        has_gmem_load: beta != 0.0,
        ..Default::default()
    };
    let pc = phase_cost(device, &cfg.cost, &tally)?;
    let report = ExecutionReport {
        device_name: device.name.clone(),
        warps: cfg.warps,
        mode: cfg.cost.mode,
        phase_costs: vec![pc],
        totals: pc,
        cycles: pc.cycles(cfg.cost.mode),
        flops_charged: 0,
        smem_bytes_written: 0,
        smem_bytes_read: 0,
        smem_extent: 0,
        gmem_bytes_read: read,
        gmem_bytes_written: c_bytes,
        registers_per_warp: vec![],
    };
    Ok(GemmResult {
        c,
        report,
        smem_fraction: cfg.smem_fraction,
        // No multiplications are performed (or charged) when alpha = 0.
        useful_flops: 0,
    })
}

/// Rewrite a kernel's trailing C stores into the alpha/beta epilogue.
fn apply_epilogue(
    kernel: &mut kami_gpu_sim::BlockKernel,
    c_buf: kami_gpu_sim::BufferId,
    alpha: f64,
    beta: f64,
    three_d: bool,
    c_prec: Precision,
) {
    use kami_gpu_sim::Op;
    if alpha == 1.0 && (beta == 0.0 || three_d) {
        return; // the built kernel already computes this
    }
    for w in &mut kernel.warps {
        let mut new_ops = Vec::with_capacity(w.ops.len() + 8);
        let ops = std::mem::take(&mut w.ops);
        for op in ops {
            match op {
                Op::GlobalStore {
                    src,
                    buf,
                    row0,
                    col0,
                    accumulate,
                } if buf == c_buf => {
                    if alpha != 1.0 {
                        new_ops.push(Op::Scale {
                            frag: src,
                            factor: alpha,
                        });
                    }
                    if !three_d && beta != 0.0 {
                        // Blend with the previous C window in registers.
                        let (rows, cols) = {
                            let d = &w.frags[src];
                            (d.rows, d.cols)
                        };
                        w.frags
                            .push(kami_gpu_sim::FragDecl::new("CPrev", rows, cols, c_prec));
                        let prev = w.frags.len() - 1;
                        new_ops.push(Op::GlobalLoad {
                            dst: prev,
                            buf,
                            row0,
                            col0,
                        });
                        if beta != 1.0 {
                            new_ops.push(Op::Scale {
                                frag: prev,
                                factor: beta,
                            });
                        }
                        new_ops.push(Op::AddAssign {
                            dst: src,
                            src: prev,
                        });
                    }
                    new_ops.push(Op::GlobalStore {
                        src,
                        buf,
                        row0,
                        col0,
                        accumulate,
                    });
                }
                other => new_ops.push(other),
            }
        }
        w.ops = new_ops;
    }
}

/// Rewrite a kernel's trailing C stores to apply a fused [`Epilogue`]
/// while the tile is still in registers (the `model::epilogue` closed
/// forms account exactly the ops inserted here, and nothing else).
///
/// The rewrite is geometry-driven, so it works for any algorithm whose
/// C stores it can legally decorate — and rejects the rest honestly:
///
/// * an accumulate-store (3D's cross-layer reduction) cannot host an
///   epilogue — the function of a partial sum is not the partial sum
///   of the function;
/// * row-wise softmax needs each stored fragment to span full logical
///   rows of C (true on 1D; false on 2D with `q > 1`).
pub(crate) fn fuse_epilogue_ops(
    kernel: &mut kami_gpu_sim::BlockKernel,
    c_buf: kami_gpu_sim::BufferId,
    bias_buf: Option<kami_gpu_sim::BufferId>,
    epilogue: &Epilogue,
    n: usize,
    c_prec: Precision,
) -> Result<(), KamiError> {
    use kami_gpu_sim::Op;
    let unary = epilogue.unary_func();
    for w in &mut kernel.warps {
        let mut new_ops = Vec::with_capacity(w.ops.len() + 4);
        let ops = std::mem::take(&mut w.ops);
        for op in ops {
            match op {
                Op::GlobalStore {
                    src,
                    buf,
                    row0,
                    col0,
                    accumulate,
                } if buf == c_buf => {
                    if accumulate {
                        return Err(KamiError::Unsupported {
                            detail: format!(
                                "{} epilogue cannot fuse into an accumulate store \
                                 (3D cross-layer reduction)",
                                epilogue.label()
                            ),
                        });
                    }
                    let cols = w.frags[src].cols;
                    if let Some(bias_buf) = bias_buf {
                        // Load the bias columns under this warp's C tile
                        // and broadcast-add them in registers.
                        w.frags
                            .push(kami_gpu_sim::FragDecl::new("BiasRow", 1, cols, c_prec));
                        let bias_frag = w.frags.len() - 1;
                        new_ops.push(Op::GlobalLoad {
                            dst: bias_frag,
                            buf: bias_buf,
                            row0: 0,
                            col0,
                        });
                        new_ops.push(Op::AddRowBroadcast {
                            dst: src,
                            src: bias_frag,
                        });
                    }
                    if let Some(func) = unary {
                        if matches!(func, kami_gpu_sim::UnaryFunc::Softmax { .. })
                            && (cols != n || col0 != 0)
                        {
                            return Err(KamiError::Unsupported {
                                detail: format!(
                                    "softmax-scale epilogue needs full C rows in registers; \
                                     this kernel stores {cols}-column tiles at column {col0} \
                                     (n = {n})"
                                ),
                            });
                        }
                        new_ops.push(Op::Unary { frag: src, func });
                    }
                    new_ops.push(Op::GlobalStore {
                        src,
                        buf,
                        row0,
                        col0,
                        accumulate,
                    });
                }
                other => new_ops.push(other),
            }
        }
        w.ops = new_ops;
    }
    Ok(())
}

/// `C = epilogue(A·B)` with the epilogue fused into the kernel's store
/// phase (no second global round trip). See [`Epilogue`] for the
/// numerics contract per function.
pub fn gemm_fused(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
    epilogue: &Epilogue,
) -> Result<GemmResult, KamiError> {
    crate::request::GemmRequest::from_config(
        crate::request::Op::Gemm {
            a: a.clone(),
            b: b.clone(),
        },
        cfg,
    )
    .with_epilogue(epilogue.clone())
    .execute_single(device)
}

/// [`gemm_fused`] driven by the legacy interleaved engine (the
/// `ExecParity` differential oracle, like [`gemm_legacy`]).
pub fn gemm_fused_legacy(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
    epilogue: &Epilogue,
) -> Result<GemmResult, KamiError> {
    exec_gemm_fused_path(device, cfg, a, b, epilogue, EnginePath::Legacy)
}

/// Engine body of [`gemm_fused`] (shared by the request executor);
/// runs the split plan→cost→execute pipeline.
pub(crate) fn exec_gemm_fused(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
    epilogue: &Epilogue,
) -> Result<GemmResult, KamiError> {
    exec_gemm_fused_path(device, cfg, a, b, epilogue, EnginePath::Split)
}

/// The fused path under the §4.7 fallback ladder (the bias-row
/// fragment can be the straw that overflows the register file).
pub(crate) fn exec_gemm_fused_auto(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
    epilogue: &Epilogue,
) -> Result<GemmResult, KamiError> {
    run_fallback_ladder(cfg, |c| exec_gemm_fused(device, c, a, b, epilogue))
}

fn exec_gemm_fused_path(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
    epilogue: &Epilogue,
    path: EnginePath,
) -> Result<GemmResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb {
        return Err(KamiError::ShapeMismatch {
            detail: format!("A is {m}x{k} but B is {kb}x{n}"),
        });
    }
    cfg.validate(device, m, n, k)?;
    epilogue.validate(n)?;

    let prec = cfg.precision;
    let c_prec = c_precision(prec);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", a, prec);
    let bb = gmem.upload("B", b, prec);
    let cb = gmem.alloc_zeroed("C", m, n, c_prec);
    let bias_buf = match epilogue {
        Epilogue::Bias(bias) => Some(gmem.upload("Bias", bias, c_prec)),
        _ => None,
    };

    let mut kernel = build_gemm_kernel(cfg, m, n, k, ab, bb, cb, c_prec);
    fuse_epilogue_ops(&mut kernel, cb, bias_buf, epilogue, n, c_prec)?;

    let report = run_kernel(device, cfg, &kernel, &mut gmem, path)?;
    Ok(GemmResult {
        c: gmem.download(cb),
        report,
        smem_fraction: cfg.smem_fraction,
        useful_flops: 2 * (m as u64) * (n as u64) * (k as u64),
    })
}

/// Operand orientation, cuBLAS-style (`CUBLAS_OP_N` / `CUBLAS_OP_T`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatOp {
    /// Use the matrix as stored.
    None,
    /// Use the transpose.
    Transpose,
}

impl MatOp {
    fn apply(self, m: &Matrix) -> Matrix {
        match self {
            MatOp::None => m.clone(),
            MatOp::Transpose => m.transposed(),
        }
    }
}

/// cuBLAS-style GEMM with operand orientations:
/// `C = op_a(A) · op_b(B)`.
///
/// Transposition is a host-side layout transformation performed at
/// upload (the simulator's global buffers are plain row-major; a device
/// kernel would fold the same transformation into its load addressing).
pub fn gemm_t(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    op_a: MatOp,
    a: &Matrix,
    op_b: MatOp,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    let at = op_a.apply(a);
    let bt = op_b.apply(b);
    exec_gemm_auto(device, cfg, &at, &bt)
}

/// The §4.7 fallback ladder: fractions tried, in order, after the
/// requested one.
pub const FALLBACK_FRACTIONS: [f64; 5] = [0.25, 0.5, 0.75, 0.875, 0.9375];

/// Like [`gemm`], but on [`SimError::RegisterOverflow`] escalates
/// `smem_fraction` through [`FALLBACK_FRACTIONS`] until the kernel fits —
/// the preset-ratio behaviour of the paper's implementation.
pub fn gemm_auto(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    crate::request::GemmRequest::from_config(
        crate::request::Op::GemmAuto {
            a: a.clone(),
            b: b.clone(),
        },
        cfg,
    )
    .execute_single(device)
}

/// Engine body of [`gemm_auto`] (shared by the request executor).
/// Tall-skinny shapes (including the transposed wide case arriving via
/// [`gemm_t`]) route to the k-split path — no monolithic configuration
/// fits them, so the ladder alone could only fail.
pub(crate) fn exec_gemm_auto(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    if a.cols() == b.rows() && crate::model::skinny::is_tall_skinny(a.rows(), b.cols(), a.cols()) {
        return crate::tallskinny::gemm_skinny(device, cfg, a, b, None);
    }
    run_fallback_ladder(cfg, |c| exec_gemm(device, c, a, b))
}

/// Engine body of the scaled auto path: the same §4.7 ladder wrapped
/// around the alpha/beta epilogue kernel.
pub(crate) fn exec_gemm_scaled_auto(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c0: &Matrix,
) -> Result<GemmResult, KamiError> {
    run_fallback_ladder(cfg, |c| exec_gemm_scaled(device, c, alpha, a, b, beta, c0))
}

/// Run `attempt` at the requested `smem_fraction`, escalating through
/// [`FALLBACK_FRACTIONS`] on register overflow. Generic over the
/// attempt's output so the same §4.7 ladder drives full runs
/// ([`GemmResult`]) and cost-only planning
/// ([`crate::plan::GemmPlan`]).
pub(crate) fn run_fallback_ladder<T>(
    cfg: &KamiConfig,
    mut attempt: impl FnMut(&KamiConfig) -> Result<T, KamiError>,
) -> Result<T, KamiError> {
    let mut last = attempt(cfg);
    if !matches!(last, Err(KamiError::Sim(SimError::RegisterOverflow { .. }))) {
        return last;
    }
    for &f in FALLBACK_FRACTIONS
        .iter()
        .filter(|&&f| f > cfg.smem_fraction)
    {
        let mut c2 = cfg.clone();
        c2.smem_fraction = f;
        last = attempt(&c2);
        if !matches!(last, Err(KamiError::Sim(SimError::RegisterOverflow { .. }))) {
            return last;
        }
    }
    last
}

/// Round `x` up to a multiple of `d`.
fn round_up(x: usize, d: usize) -> usize {
    x.div_ceil(d) * d
}

/// Padded dimensions `(m', n', k')` accepted by `cfg` for an `m×n×k`
/// problem (zero padding does not change the product).
pub fn padded_dims(cfg: &KamiConfig, m: usize, n: usize, k: usize) -> (usize, usize, usize) {
    match cfg.algo {
        Algo::OneD => (round_up(m, cfg.warps), n, round_up(k, cfg.warps)),
        Algo::TwoD => {
            let q = (cfg.warps as f64).sqrt().round() as usize;
            (round_up(m, q), round_up(n, q), round_up(k, q))
        }
        Algo::ThreeD => {
            let q = (cfg.warps as f64).cbrt().round() as usize;
            (round_up(m, q), round_up(n, q), round_up(k, q * q))
        }
    }
}

/// Arbitrary-size GEMM: zero-pads to the partition grid, runs
/// [`gemm_auto`], and crops the result back to `m×n`. The report reflects
/// the padded kernel (as it would on hardware); `useful_flops` still
/// counts only the logical problem.
pub fn gemm_padded(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    crate::request::GemmRequest::from_config(
        crate::request::Op::GemmPadded {
            a: a.clone(),
            b: b.clone(),
        },
        cfg,
    )
    .execute_single(device)
}

/// Engine body of [`gemm_padded`] (shared by the request executor).
pub(crate) fn exec_gemm_padded(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb {
        return Err(KamiError::ShapeMismatch {
            detail: format!("A is {m}x{k} but B is {kb}x{n}"),
        });
    }
    let (mp, np, kp) = padded_dims(cfg, m, n, k);
    if (mp, np, kp) == (m, n, k) {
        return exec_gemm_auto(device, cfg, a, b);
    }
    let mut ap = Matrix::zeros(mp, kp);
    ap.set_submatrix(0, 0, a);
    let mut bp = Matrix::zeros(kp, np);
    bp.set_submatrix(0, 0, b);
    let mut res = exec_gemm_auto(device, cfg, &ap, &bp)?;
    res.c = res.c.submatrix(0, 0, m, n);
    res.useful_flops = 2 * (m as u64) * (n as u64) * (k as u64);
    Ok(res)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::reference_gemm;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn gemm_all_algos_agree_fp64() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(16, 16, 1);
        let b = Matrix::seeded_uniform(16, 16, 2);
        let want = reference_gemm(&a, &b, Precision::Fp64);
        for algo in Algo::ALL {
            let cfg = KamiConfig::new(algo, Precision::Fp64);
            let got = gemm(&dev, &cfg, &a, &b).unwrap();
            assert!(
                got.c.max_abs_diff(&want) < 1e-12,
                "{} diverges",
                algo.label()
            );
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let a = Matrix::zeros(16, 16);
        let b = Matrix::zeros(8, 16);
        assert!(matches!(
            gemm(&dev, &cfg, &a, &b),
            Err(KamiError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn auto_escalates_smem_fraction_on_register_overflow() {
        let dev = gh200();
        // 128x128 FP16, 4 warps, no parking: A,B,BRecv,C fragments need
        // 4 * 64 = 256 regs/thread > 255 -> must escalate.
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let a = Matrix::seeded_uniform(128, 128, 3);
        let b = Matrix::seeded_uniform(128, 128, 4);
        assert!(matches!(
            gemm(&dev, &cfg, &a, &b),
            Err(KamiError::Sim(SimError::RegisterOverflow { .. }))
        ));
        let res = gemm_auto(&dev, &cfg, &a, &b).unwrap();
        assert!(res.smem_fraction > 0.0, "fraction = {}", res.smem_fraction);
        // Result still correct (vs FP16-stepped reference, loose check).
        let want = reference_gemm(&a, &b, Precision::Fp16);
        assert!(res.c.rel_frobenius_error(&want) < 2e-2);
    }

    #[test]
    fn padded_gemm_handles_odd_sizes() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let a = Matrix::seeded_uniform(10, 7, 5);
        let b = Matrix::seeded_uniform(7, 13, 6);
        let res = gemm_padded(&dev, &cfg, &a, &b).unwrap();
        assert_eq!(res.c.rows(), 10);
        assert_eq!(res.c.cols(), 13);
        let want = reference_gemm(&a, &b, Precision::Fp64);
        assert!(res.c.max_abs_diff(&want) < 1e-12);
        assert_eq!(res.useful_flops, 2 * 10 * 13 * 7);
    }

    #[test]
    fn padded_dims_per_algo() {
        let c1 = KamiConfig::new(Algo::OneD, Precision::Fp16);
        assert_eq!(padded_dims(&c1, 10, 7, 13), (12, 7, 16));
        let c2 = KamiConfig::new(Algo::TwoD, Precision::Fp16);
        assert_eq!(padded_dims(&c2, 10, 7, 13), (10, 8, 14));
        let c3 = KamiConfig::new(Algo::ThreeD, Precision::Fp16);
        assert_eq!(padded_dims(&c3, 10, 7, 13), (10, 8, 16));
    }

    #[test]
    fn transposed_gemm_orientations() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let a = Matrix::seeded_uniform(16, 16, 20);
        let b = Matrix::seeded_uniform(16, 16, 21);
        let want_tn = reference_gemm(&a.transposed(), &b, Precision::Fp64);
        let got = gemm_t(&dev, &cfg, MatOp::Transpose, &a, MatOp::None, &b).unwrap();
        assert!(got.c.max_abs_diff(&want_tn) < 1e-13);
        let want_nt = reference_gemm(&a, &b.transposed(), Precision::Fp64);
        let got = gemm_t(&dev, &cfg, MatOp::None, &a, MatOp::Transpose, &b).unwrap();
        assert!(got.c.max_abs_diff(&want_nt) < 1e-13);
    }

    #[test]
    fn scaled_gemm_matches_blas_semantics() {
        let dev = gh200();
        let (m, n, k) = (16usize, 16usize, 16usize);
        let a = Matrix::seeded_uniform(m, k, 10);
        let b = Matrix::seeded_uniform(k, n, 11);
        let c0 = Matrix::seeded_uniform(m, n, 12);
        let (alpha, beta) = (2.5, -0.75);
        let ab = reference_gemm(&a, &b, Precision::Fp64);
        let want = Matrix::from_fn(m, n, |r, c| alpha * ab[(r, c)] + beta * c0[(r, c)]);
        for algo in Algo::ALL {
            let cfg = KamiConfig::new(algo, Precision::Fp64);
            let res = gemm_scaled(&dev, &cfg, alpha, &a, &b, beta, &c0).unwrap();
            assert!(
                res.c.max_abs_diff(&want) < 1e-12,
                "{} diverges",
                algo.label()
            );
        }
    }

    #[test]
    fn scaled_gemm_beta_zero_equals_plain_scaled() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(16, 16, 13);
        let b = Matrix::seeded_uniform(16, 16, 14);
        let zero = Matrix::zeros(16, 16);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let plain = gemm(&dev, &cfg, &a, &b).unwrap();
        let scaled = gemm_scaled(&dev, &cfg, 3.0, &a, &b, 0.0, &zero).unwrap();
        let want = Matrix::from_fn(16, 16, |r, c| 3.0 * plain.c[(r, c)]);
        assert!(scaled.c.max_abs_diff(&want) < 1e-12);
        // beta = 0 skips the C re-read: same global read traffic + stores.
        assert!(scaled.report.gmem_bytes_read == plain.report.gmem_bytes_read);
    }

    #[test]
    fn scaled_gemm_charges_the_c_reread() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(16, 16, 15);
        let b = Matrix::seeded_uniform(16, 16, 16);
        let c0 = Matrix::seeded_uniform(16, 16, 17);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let blend = gemm_scaled(&dev, &cfg, 1.0, &a, &b, 1.0, &c0).unwrap();
        let plain = gemm(&dev, &cfg, &a, &b).unwrap();
        assert!(blend.report.gmem_bytes_read > plain.report.gmem_bytes_read);
    }

    #[test]
    fn scaled_gemm_alpha_zero_ignores_nan_in_a_and_b() {
        let dev = gh200();
        let (m, n, k) = (16usize, 16usize, 16usize);
        // BLAS: alpha = 0 means A and B are not read, so NaN/Inf in
        // them must not poison C. Pre-fix, the kernel still computed
        // A·B and the NaN survived multiplication by alpha = 0.
        let a = Matrix::from_fn(m, k, |_, _| f64::NAN);
        let b = Matrix::from_fn(k, n, |r, c| if r == c { f64::INFINITY } else { 1.0 });
        let c0 = Matrix::seeded_uniform(m, n, 30);
        for algo in Algo::ALL {
            let cfg = KamiConfig::new(algo, Precision::Fp64);
            let res = gemm_scaled(&dev, &cfg, 0.0, &a, &b, -0.75, &c0).unwrap();
            let want = Matrix::from_fn(m, n, |r, c| -0.75 * c0[(r, c)]);
            assert!(
                res.c.max_abs_diff(&want) < 1e-12,
                "{} poisoned by unread operands",
                algo.label()
            );
            // The product was never formed: no flops, no smem traffic.
            assert_eq!(res.report.flops_charged, 0);
            assert_eq!(res.report.comm_volume(), 0);
        }
    }

    #[test]
    fn scaled_gemm_alpha_zero_beta_one_is_noop() {
        let dev = gh200();
        let c0 = Matrix::seeded_uniform(16, 16, 31);
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let a = Matrix::from_fn(16, 16, |_, _| f64::NAN);
        let b = Matrix::seeded_uniform(16, 16, 32);
        let res = gemm_scaled(&dev, &cfg, 0.0, &a, &b, 1.0, &c0).unwrap();
        // C passes through the device rounding chain but beta = 1 adds
        // nothing: bit-exact against the quantized original.
        assert_eq!(
            res.c
                .max_abs_diff(&c0.quantized(c_precision(Precision::Fp16))),
            0.0
        );
        assert_eq!(res.report.flops_charged, 0);
    }

    #[test]
    fn scaled_gemm_shape_mismatch_rejected() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let a = Matrix::zeros(16, 16);
        let b = Matrix::zeros(16, 16);
        let c_bad = Matrix::zeros(8, 16);
        assert!(matches!(
            gemm_scaled(&dev, &cfg, 1.0, &a, &b, 1.0, &c_bad),
            Err(KamiError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn block_tflops_positive_and_finite() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let a = Matrix::seeded_uniform(64, 64, 1);
        let b = Matrix::seeded_uniform(64, 64, 2);
        let res = gemm(&dev, &cfg, &a, &b).unwrap();
        let t = res.block_tflops(&dev);
        assert!(t > 0.0 && t.is_finite());
        // Cannot beat the device peak.
        assert!(t <= dev.peak_tflops(Precision::Fp16).unwrap() * 1.001);
    }
}
