//! Configuration autotuning — §5.2.5 institutionalized.
//!
//! The paper: "the optimal register–shared memory ratio is
//! scale-dependent ... Accordingly, we preset ratios in our
//! implementation and allow user tuning to balance generality and
//! specialization." This module performs that tuning systematically: it
//! enumerates every valid `(algorithm, warp grid, smem fraction)` for a
//! problem, measures each candidate on the simulator, and returns the
//! fastest — with a [`Tuner`] cache so repeated shapes (the batched and
//! iterative-solver workloads of §3.1) tune once.

use crate::config::{Algo, KamiConfig};
use crate::error::KamiError;
use crate::gemm::{exec_gemm as gemm, GemmResult};
use kami_gpu_sim::{DeviceSpec, Matrix, Precision};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Winning configuration for one problem shape.
#[derive(Debug, Clone)]
pub struct TunedConfig {
    pub cfg: KamiConfig,
    /// Block-level TFLOPS the winner achieved on the tuning run.
    pub block_tflops: f64,
    /// Simulated cycles of the winner.
    pub cycles: f64,
    /// Number of candidates evaluated.
    pub candidates_tried: usize,
}

/// All valid candidate configurations for an `m×n×k` problem.
pub fn candidates(m: usize, n: usize, k: usize, precision: Precision) -> Vec<KamiConfig> {
    let mut out = Vec::new();
    let fractions = [0.0, 0.25, 0.5, 0.75];
    // 1D: any warp count dividing m and k.
    for p in 1..=16usize {
        if m.is_multiple_of(p) && k.is_multiple_of(p) {
            for &f in &fractions {
                out.push(
                    KamiConfig::new(Algo::OneD, precision)
                        .with_warps(p)
                        .with_smem_fraction(f),
                );
            }
        }
    }
    // 2D: square grids.
    for q in 1..=4usize {
        if m.is_multiple_of(q) && n.is_multiple_of(q) && k.is_multiple_of(q) {
            for &f in &fractions {
                out.push(
                    KamiConfig::new(Algo::TwoD, precision)
                        .with_warps(q * q)
                        .with_smem_fraction(f),
                );
            }
        }
    }
    // 3D: cubes (q = 1 duplicates 1D/2D degenerate cases; start at 2).
    for q in 2..=3usize {
        if m.is_multiple_of(q) && n.is_multiple_of(q) && k.is_multiple_of(q * q) {
            for &f in &fractions {
                out.push(
                    KamiConfig::new(Algo::ThreeD, precision)
                        .with_warps(q * q * q)
                        .with_smem_fraction(f),
                );
            }
        }
    }
    out
}

/// Exhaustively tune one problem shape on `device`. The tuning inputs
/// are seeded (tuning is shape-dependent, not data-dependent — the cost
/// model is data-oblivious for dense GEMM).
pub fn tune(
    device: &DeviceSpec,
    m: usize,
    n: usize,
    k: usize,
    precision: Precision,
) -> Result<TunedConfig, KamiError> {
    let a = Matrix::seeded_uniform(m, k, 0x70E);
    let b = Matrix::seeded_uniform(k, n, 0x70F);
    let mut best: Option<TunedConfig> = None;
    let cands = candidates(m, n, k, precision);
    let tried = cands.len();
    for cfg in cands {
        let Ok(res) = gemm(device, &cfg, &a, &b) else {
            continue;
        };
        let t = res.block_tflops(device);
        if best.as_ref().is_none_or(|b| t > b.block_tflops) {
            best = Some(TunedConfig {
                cfg,
                block_tflops: t,
                cycles: res.report.cycles,
                candidates_tried: tried,
            });
        }
    }
    best.ok_or_else(|| KamiError::Unsupported {
        detail: format!(
            "no configuration of {m}x{n}x{k} {} fits {}",
            precision.label(),
            device.name
        ),
    })
}

/// Shape-keyed tuning cache: tune once per `(m, n, k, precision)` per
/// device, then dispatch every subsequent GEMM through the winner.
#[derive(Default)]
pub struct Tuner {
    cache: HashMap<(String, usize, usize, usize, Precision), TunedConfig>,
}

impl Tuner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached configurations held.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The tuned configuration for a shape (tuning on first use).
    pub fn config_for(
        &mut self,
        device: &DeviceSpec,
        m: usize,
        n: usize,
        k: usize,
        precision: Precision,
    ) -> Result<&TunedConfig, KamiError> {
        let key = (device.name.clone(), m, n, k, precision);
        if !self.cache.contains_key(&key) {
            let tuned = tune(device, m, n, k, precision)?;
            self.cache.insert(key.clone(), tuned);
        }
        Ok(&self.cache[&key])
    }

    /// Run a GEMM through the cached winner for its shape.
    pub fn gemm(
        &mut self,
        device: &DeviceSpec,
        precision: Precision,
        a: &Matrix,
        b: &Matrix,
    ) -> Result<GemmResult, KamiError> {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        let cfg = self.config_for(device, m, n, k, precision)?.cfg.clone();
        gemm(device, &cfg, a, b)
    }
}

/// Thread-safe shape-keyed tuning cache: the sharable extension of
/// [`Tuner`] that a device-level scheduler fans out across SM workers.
/// Lookups clone the winning [`TunedConfig`] out of the cache (the
/// configs are small) so no lock is held while a GEMM runs, and hit /
/// miss counters expose whether repeated shapes actually reuse their
/// plan — the property `kami-sched`'s plan cache asserts on.
#[derive(Default)]
pub struct SharedTuner {
    cache: Mutex<HashMap<TuneKey, TunedConfig>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// Cache key: device name + problem shape + precision.
pub type TuneKey = (String, usize, usize, usize, Precision);

impl SharedTuner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached configurations held.
    pub fn len(&self) -> usize {
        self.cache.lock().expect("tuner cache poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache without re-tuning.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to run the full candidate sweep.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// The tuned configuration for a shape (tuning on first use).
    ///
    /// The tuning sweep itself runs outside the lock; if two threads
    /// race on the same fresh shape, both tune and one result wins —
    /// harmless, since tuning is deterministic per shape.
    pub fn config_for(
        &self,
        device: &DeviceSpec,
        m: usize,
        n: usize,
        k: usize,
        precision: Precision,
    ) -> Result<TunedConfig, KamiError> {
        let key = (device.name.clone(), m, n, k, precision);
        if let Some(hit) = self.cache.lock().expect("tuner cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let tuned = tune(device, m, n, k, precision)?;
        let mut cache = self.cache.lock().expect("tuner cache poisoned");
        Ok(cache.entry(key).or_insert(tuned).clone())
    }

    /// Run a GEMM through the cached winner for its shape.
    pub fn gemm(
        &self,
        device: &DeviceSpec,
        precision: Precision,
        a: &Matrix,
        b: &Matrix,
    ) -> Result<GemmResult, KamiError> {
        let (m, k) = (a.rows(), a.cols());
        let n = b.cols();
        let cfg = self.config_for(device, m, n, k, precision)?.cfg;
        gemm(device, &cfg, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn candidate_enumeration_respects_divisibility() {
        let c = candidates(48, 48, 48, Precision::Fp16);
        assert!(c.iter().any(|c| c.algo == Algo::OneD && c.warps == 3));
        assert!(c.iter().any(|c| c.algo == Algo::TwoD && c.warps == 9));
        // q = 2 needs 4 | k = 48 ✓; q = 3 needs 9 | 48 ✗.
        assert!(c.iter().any(|c| c.algo == Algo::ThreeD && c.warps == 8));
        assert!(!c.iter().any(|c| c.algo == Algo::ThreeD && c.warps == 27));
        // 5 does not divide 48.
        assert!(!c.iter().any(|c| c.warps == 5));
    }

    #[test]
    fn tuner_beats_or_matches_every_fixed_preset() {
        let dev = gh200();
        let (m, n, k) = (64usize, 64usize, 64usize);
        let tuned = tune(&dev, m, n, k, Precision::Fp16).unwrap();
        assert!(tuned.candidates_tried > 10);
        let a = Matrix::seeded_uniform(m, k, 1);
        let b = Matrix::seeded_uniform(k, n, 2);
        for algo in Algo::ALL {
            let preset = KamiConfig::new(algo, Precision::Fp16);
            if let Ok(res) = gemm(&dev, &preset, &a, &b) {
                assert!(
                    tuned.block_tflops * 1.0001 >= res.block_tflops(&dev),
                    "{} preset beats the tuner",
                    algo.label()
                );
            }
        }
    }

    #[test]
    fn tuner_cache_reuses_and_computes_correctly() {
        let dev = gh200();
        let mut tuner = Tuner::new();
        let a = Matrix::seeded_uniform(32, 32, 5);
        let b = Matrix::seeded_uniform(32, 32, 6);
        let r1 = tuner.gemm(&dev, Precision::Fp64, &a, &b).unwrap();
        assert_eq!(tuner.len(), 1);
        let r2 = tuner.gemm(&dev, Precision::Fp64, &a, &b).unwrap();
        assert_eq!(tuner.len(), 1); // cache hit
        assert_eq!(r1.c.max_abs_diff(&r2.c), 0.0);
        let want = crate::reference::reference_gemm(&a, &b, Precision::Fp64);
        assert!(r1.c.max_abs_diff(&want) < 1e-12);
        // A different shape adds an entry.
        let a2 = Matrix::seeded_uniform(16, 16, 7);
        let b2 = Matrix::seeded_uniform(16, 16, 8);
        tuner.gemm(&dev, Precision::Fp64, &a2, &b2).unwrap();
        assert_eq!(tuner.len(), 2);
    }

    #[test]
    fn shared_tuner_counts_hits_across_threads() {
        let dev = gh200();
        let tuner = SharedTuner::new();
        let first = tuner.config_for(&dev, 32, 32, 32, Precision::Fp16).unwrap();
        assert_eq!((tuner.hits(), tuner.misses()), (0, 1));
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let again = tuner.config_for(&dev, 32, 32, 32, Precision::Fp16).unwrap();
                    assert_eq!(again.cfg.algo, first.cfg.algo);
                    assert_eq!(again.cfg.warps, first.cfg.warps);
                });
            }
        });
        assert_eq!((tuner.hits(), tuner.misses()), (4, 1));
        assert_eq!(tuner.len(), 1);
        // Matches the single-threaded Tuner's winner.
        let single = tune(&dev, 32, 32, 32, Precision::Fp16).unwrap();
        assert_eq!(first.cfg.algo, single.cfg.algo);
        assert_eq!(first.cycles, single.cycles);
    }

    #[test]
    fn tuning_prefers_slicing_where_registers_demand_it() {
        // 128³ FP16 with few warps needs parking; the tuner should find
        // a configuration that actually runs.
        let dev = gh200();
        let tuned = tune(&dev, 128, 128, 128, Precision::Fp16).unwrap();
        assert!(tuned.block_tflops > 0.0);
        // The winner validates and runs.
        let a = Matrix::seeded_uniform(128, 128, 9);
        let b = Matrix::seeded_uniform(128, 128, 10);
        assert!(gemm(&dev, &tuned.cfg, &a, &b).is_ok());
    }
}
