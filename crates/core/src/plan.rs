//! Cost-pass planning for dense block GEMM.
//!
//! A [`GemmPlan`] is the output of running the simulator's plan and
//! cost passes over a shape class `(device, config, m, n, k)` with **no
//! matrix data**: the kernel is built against a
//! [`GmemLayout`] (buffer shapes only), so
//! the resulting [`ExecutionReport`] is pure cycle accounting. Because
//! the cost pass is deterministic in the shape class, a plan can be
//! cached and reused for every request with the same shape — that is
//! exactly what `kami-sched`'s `PlanCache` does — while
//! [`gemm_execute_plan`] runs only the execute pass (numerics) per
//! request.

use crate::config::KamiConfig;
use crate::error::KamiError;
use crate::gemm::{build_gemm_kernel, c_precision, run_fallback_ladder, GemmResult};
use kami_gpu_sim::{
    BackendKind, DeviceSpec, Engine, ExecutionReport, GlobalMemory, GmemLayout, Matrix,
};

/// A costed shape class: everything the cost pass produced for
/// `(cfg, m, n, k)` on one device, with no operand values involved.
#[derive(Debug, Clone)]
pub struct GemmPlan {
    /// Configuration the plan was costed under (its `smem_fraction`
    /// reflects any §4.7 ladder escalation by [`gemm_cost_auto`]).
    pub cfg: KamiConfig,
    pub m: usize,
    pub n: usize,
    pub k: usize,
    /// The cost pass's report — identical to what a full run of the
    /// same shape would produce.
    pub report: ExecutionReport,
    /// Useful flops of the logical problem (`2·m·n·k`).
    pub useful_flops: u64,
    /// `smem_fraction` actually used.
    pub smem_fraction: f64,
}

impl GemmPlan {
    /// Approximate bytes this plan keeps resident: the inline struct
    /// plus the report's heap allocations. A bounded plan cache charges
    /// this against its byte budget; it is an estimate for budgeting,
    /// not an exact allocator measurement.
    pub fn approx_resident_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.report.approx_heap_bytes()
    }
}

/// Cost pass only: validate `(cfg, m, n, k)` on `device`, build the
/// kernel against a shape-only global layout, and charge cycles.
/// Touches no matrix data; fails with exactly the error a full run of
/// the same shape would report.
pub fn gemm_cost(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
) -> Result<GemmPlan, KamiError> {
    cfg.validate(device, m, n, k)?;
    let prec = cfg.precision;
    let c_prec = c_precision(prec);
    let mut layout = GmemLayout::new();
    let ab = layout.declare("A", m, k, prec);
    let bb = layout.declare("B", k, n, prec);
    let cb = layout.declare("C", m, n, c_prec);

    let kernel = build_gemm_kernel(cfg, m, n, k, ab, bb, cb, c_prec);
    let engine = Engine::with_cost(device, cfg.cost.clone());
    let planned = engine.plan(&kernel)?;
    let report = engine.cost(&planned, &layout)?;
    Ok(GemmPlan {
        cfg: cfg.clone(),
        m,
        n,
        k,
        report,
        useful_flops: 2 * (m as u64) * (n as u64) * (k as u64),
        smem_fraction: cfg.smem_fraction,
    })
}

/// [`gemm_cost`] with the §4.7 preset-ratio ladder: on register
/// overflow, escalate `smem_fraction` through
/// [`crate::gemm::FALLBACK_FRACTIONS`] until the kernel fits — the
/// cost-pass twin of [`crate::gemm_auto`].
pub fn gemm_cost_auto(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
) -> Result<GemmPlan, KamiError> {
    run_fallback_ladder(cfg, |c| gemm_cost(device, c, m, n, k))
}

/// Execute pass only: run the numerics of a costed shape class against
/// real operands. The kernel is rebuilt deterministically from the
/// plan's shape class (buffer ids depend only on declaration order), so
/// the run skips the cost pass entirely and the returned report is the
/// plan's cached one. Executes on the plan's configured backend
/// (`plan.cfg.backend`).
pub fn gemm_execute_plan(
    device: &DeviceSpec,
    plan: &GemmPlan,
    a: &Matrix,
    b: &Matrix,
) -> Result<GemmResult, KamiError> {
    gemm_execute_plan_with(device, plan, a, b, plan.cfg.backend)
}

/// [`gemm_execute_plan`] on an explicit [`BackendKind`], overriding the
/// plan's own. Plans are backend-independent (the cost pass never
/// touches matrix data), so shared plan caches hand the same
/// [`GemmPlan`] to executors with different backend choices — this is
/// the entry they use, and what `kami-serve`'s warm path calls with
/// its `ServerConfig` backend.
pub fn gemm_execute_plan_with(
    device: &DeviceSpec,
    plan: &GemmPlan,
    a: &Matrix,
    b: &Matrix,
    backend: BackendKind,
) -> Result<GemmResult, KamiError> {
    if a.rows() != plan.m || a.cols() != plan.k || b.rows() != plan.k || b.cols() != plan.n {
        return Err(KamiError::ShapeMismatch {
            detail: format!(
                "plan is {}x{}x{} but A is {}x{} and B is {}x{}",
                plan.m,
                plan.n,
                plan.k,
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    let cfg = &plan.cfg;
    let prec = cfg.precision;
    let c_prec = c_precision(prec);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", a, prec);
    let bb = gmem.upload("B", b, prec);
    let cb = gmem.alloc_zeroed("C", plan.m, plan.n, c_prec);

    let kernel = build_gemm_kernel(cfg, plan.m, plan.n, plan.k, ab, bb, cb, c_prec);
    let engine = Engine::with_cost(device, cfg.cost.clone());
    let planned = engine.plan(&kernel)?;
    engine.execute_with(backend, &planned, &mut gmem)?;
    Ok(GemmResult {
        c: gmem.download(cb),
        report: plan.report.clone(),
        smem_fraction: plan.smem_fraction,
        useful_flops: plan.useful_flops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algo;
    use crate::gemm::gemm;
    use kami_gpu_sim::device::gh200;
    use kami_gpu_sim::{Precision, SimError};

    #[test]
    fn cost_pass_report_matches_full_run() {
        let dev = gh200();
        for algo in Algo::ALL {
            let cfg = KamiConfig::new(algo, Precision::Fp16);
            let a = Matrix::seeded_uniform(32, 32, 1);
            let b = Matrix::seeded_uniform(32, 32, 2);
            let full = gemm(&dev, &cfg, &a, &b).unwrap();
            let plan = gemm_cost(&dev, &cfg, 32, 32, 32).unwrap();
            assert_eq!(
                serde_json::to_string(&full.report).unwrap(),
                serde_json::to_string(&plan.report).unwrap(),
                "{}: cost pass diverges from full run",
                algo.label()
            );
            assert_eq!(plan.useful_flops, full.useful_flops);
        }
    }

    #[test]
    fn execute_plan_reproduces_full_run_bit_exactly() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
        let a = Matrix::seeded_uniform(32, 32, 3);
        let b = Matrix::seeded_uniform(32, 32, 4);
        let full = gemm(&dev, &cfg, &a, &b).unwrap();
        let plan = gemm_cost(&dev, &cfg, 32, 32, 32).unwrap();
        let split = gemm_execute_plan(&dev, &plan, &a, &b).unwrap();
        assert_eq!(split.c.max_abs_diff(&full.c), 0.0);
        assert_eq!(split.report.cycles, full.report.cycles);
    }

    #[test]
    fn execute_plan_native_backend_is_bit_identical() {
        let dev = gh200();
        for algo in Algo::ALL {
            let cfg = KamiConfig::new(algo, Precision::Fp16);
            let plan = gemm_cost(&dev, &cfg, 32, 32, 32).unwrap();
            let a = Matrix::seeded_uniform(32, 32, 11);
            let b = Matrix::seeded_uniform(32, 32, 12);
            let sim = gemm_execute_plan_with(&dev, &plan, &a, &b, BackendKind::Sim).unwrap();
            let nat = gemm_execute_plan_with(&dev, &plan, &a, &b, BackendKind::Native).unwrap();
            assert_eq!(
                sim.c.max_abs_diff(&nat.c),
                0.0,
                "{}: native diverges",
                algo.label()
            );
            // A config carrying the backend routes through the same path.
            let plan_native = gemm_cost(
                &dev,
                &cfg.clone().with_backend(BackendKind::Native),
                32,
                32,
                32,
            )
            .unwrap();
            let via_cfg = gemm_execute_plan(&dev, &plan_native, &a, &b).unwrap();
            assert_eq!(sim.c.max_abs_diff(&via_cfg.c), 0.0);
        }
    }

    #[test]
    fn execute_plan_rejects_mismatched_operands() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let plan = gemm_cost(&dev, &cfg, 16, 16, 16).unwrap();
        let wrong = Matrix::zeros(8, 16);
        let ok = Matrix::zeros(16, 16);
        assert!(matches!(
            gemm_execute_plan(&dev, &plan, &wrong, &ok),
            Err(KamiError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn cost_auto_escalates_like_the_full_ladder() {
        let dev = gh200();
        // 128³ FP16 at 4 warps overflows registers at fraction 0.
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        assert!(matches!(
            gemm_cost(&dev, &cfg, 128, 128, 128),
            Err(KamiError::Sim(SimError::RegisterOverflow { .. }))
        ));
        let plan = gemm_cost_auto(&dev, &cfg, 128, 128, 128).unwrap();
        assert!(plan.smem_fraction > 0.0);
        assert_eq!(plan.cfg.smem_fraction, plan.smem_fraction);
        // The escalated plan matches the escalated full run.
        let a = Matrix::seeded_uniform(128, 128, 3);
        let b = Matrix::seeded_uniform(128, 128, 4);
        let full = crate::gemm::gemm_auto(&dev, &cfg, &a, &b).unwrap();
        assert_eq!(plan.smem_fraction, full.smem_fraction);
        assert_eq!(plan.report.cycles, full.report.cycles);
        let split = gemm_execute_plan(&dev, &plan, &a, &b).unwrap();
        assert_eq!(split.c.max_abs_diff(&full.c), 0.0);
    }
}
