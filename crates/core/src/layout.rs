//! Partition index arithmetic for the 1D / 2D / 3D data layouts
//! (paper §4.2, Fig 5) and the shared-memory address map each algorithm
//! uses as its communication medium.

use kami_gpu_sim::Precision;

/// Position of warp `i` in the 2D √p×√p grid: `(row, col)`.
#[inline]
pub fn grid_pos(i: usize, q: usize) -> (usize, usize) {
    (i / q, i % q)
}

/// Position of warp `i` in the 3D ∛p×∛p×∛p cube: `(layer, row, col)`.
/// The layer axis parallelizes the k dimension.
#[inline]
pub fn cube_pos(i: usize, q: usize) -> (usize, usize, usize) {
    (i / (q * q), (i / q) % q, i % q)
}

/// Inverse of [`cube_pos`].
#[inline]
pub fn cube_index(layer: usize, row: usize, col: usize, q: usize) -> usize {
    layer * q * q + row * q + col
}

/// Byte size of an `rows×cols` tile at `prec`.
#[inline]
pub fn tile_bytes(rows: usize, cols: usize, prec: Precision) -> usize {
    rows * cols * prec.size_bytes()
}

/// Shared-memory address map of one KAMI kernel.
///
/// Layout (byte offsets):
/// ```text
/// [ broadcast A: regions 0..a_regions ][ broadcast B: regions 0..b_regions ][ park: per warp ]
/// ```
/// The 1D algorithm uses zero A regions and one B region; 2D uses √p of
/// each (one per grid row / column); 3D uses ∛p² of each (one per
/// (layer,row) / (layer,col) pair).
#[derive(Debug, Clone)]
pub struct SmemMap {
    a_region_bytes: usize,
    b_region_bytes: usize,
    a_regions: usize,
    b_regions: usize,
    park_bytes_per_warp: usize,
}

impl SmemMap {
    pub fn new(
        a_regions: usize,
        a_region_bytes: usize,
        b_regions: usize,
        b_region_bytes: usize,
        park_bytes_per_warp: usize,
    ) -> Self {
        SmemMap {
            a_region_bytes,
            b_region_bytes,
            a_regions,
            b_regions,
            park_bytes_per_warp,
        }
    }

    /// Address of broadcast-A region `r`.
    pub fn a_addr(&self, r: usize) -> usize {
        debug_assert!(r < self.a_regions);
        r * self.a_region_bytes
    }

    /// Address of broadcast-B region `c`.
    pub fn b_addr(&self, c: usize) -> usize {
        debug_assert!(c < self.b_regions);
        self.a_regions * self.a_region_bytes + c * self.b_region_bytes
    }

    /// Address of warp `w`'s private parking area, offset by `off` bytes.
    pub fn park_addr(&self, w: usize, off: usize) -> usize {
        debug_assert!(off < self.park_bytes_per_warp.max(1));
        self.a_regions * self.a_region_bytes
            + self.b_regions * self.b_region_bytes
            + w * self.park_bytes_per_warp
            + off
    }

    /// Total footprint for `warps` warps.
    pub fn footprint(&self, warps: usize) -> usize {
        self.a_regions * self.a_region_bytes
            + self.b_regions * self.b_region_bytes
            + warps * self.park_bytes_per_warp
    }
}

/// Split `total` into a register-resident prefix and a shared-memory
/// parked suffix, in units of `chunk`, parking approximately `fraction`
/// of the chunks (rounded to nearest; never parks everything).
///
/// Returns `(register_chunks, parked_chunks)`.
pub fn split_chunks(total_chunks: usize, fraction: f64) -> (usize, usize) {
    let parked = ((total_chunks as f64) * fraction).round() as usize;
    let parked = parked.min(total_chunks.saturating_sub(1));
    (total_chunks - parked, parked)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_and_cube_positions() {
        assert_eq!(grid_pos(5, 4), (1, 1));
        assert_eq!(grid_pos(0, 2), (0, 0));
        assert_eq!(cube_pos(7, 2), (1, 1, 1));
        assert_eq!(cube_pos(5, 2), (1, 0, 1));
        for i in 0..27 {
            let (l, r, c) = cube_pos(i, 3);
            assert_eq!(cube_index(l, r, c, 3), i);
        }
    }

    #[test]
    fn smem_map_regions_disjoint() {
        let map = SmemMap::new(2, 100, 3, 50, 10);
        assert_eq!(map.a_addr(0), 0);
        assert_eq!(map.a_addr(1), 100);
        assert_eq!(map.b_addr(0), 200);
        assert_eq!(map.b_addr(2), 300);
        assert_eq!(map.park_addr(0, 0), 350);
        assert_eq!(map.park_addr(2, 5), 375);
        assert_eq!(map.footprint(4), 390);
    }

    #[test]
    fn split_chunks_quantizes() {
        assert_eq!(split_chunks(4, 0.0), (4, 0));
        assert_eq!(split_chunks(4, 0.5), (2, 2));
        assert_eq!(split_chunks(4, 0.25), (3, 1));
        assert_eq!(split_chunks(4, 0.75), (1, 3));
        // Never park everything.
        assert_eq!(split_chunks(4, 0.99), (1, 3));
        assert_eq!(split_chunks(1, 0.9), (1, 0));
    }

    #[test]
    fn tile_bytes_uses_precision() {
        assert_eq!(tile_bytes(8, 8, Precision::Fp64), 512);
        assert_eq!(tile_bytes(8, 8, Precision::Fp16), 128);
    }
}
