//! KAMI-1D (paper §4.3, Algorithm 1).
//!
//! `p` warps partition all three matrices row-wise. Warp `i` holds
//! `A_i` (`m/p × k`), `B_i` (`k/p × n`) and accumulates `C_i` (`m/p × n`).
//! The multiplication runs in `p` stages; at stage `z` only matrix **B**
//! is communicated: warp `z` broadcasts its `B_z` through shared memory
//! (and keeps its own copy via a register copy, §4.3), then every warp
//! multiplies the `z`-th k-chunk of its `A_i` with the received block:
//!
//! ```text
//! C_i += A_i[:, z·k/p : (z+1)·k/p] · B_zRecv
//! ```
//!
//! ## Register/shared-memory cooperation (§4.7)
//!
//! With `smem_fraction == 0` the kernel runs in *direct* mode: whole
//! fragments in registers, the sender keeping its copy with a register
//! copy. With `smem_fraction > 0` it runs in *sliced* mode, "storing
//! only a portion of A and B in registers, while offloading the inactive
//! sub-matrices to shared memory", with every k-slice sized to the MMA
//! granularity (16, §4.7):
//!
//! * the trailing fraction of `A_i`'s stage chunks is parked in a
//!   per-warp shared-memory area and fetched back when its stage runs;
//! * the trailing fraction of `B_i`'s rows is parked likewise and
//!   reassembled into the broadcast region at send time;
//! * reception is *sliced*: instead of one `k/p × n` `BRecv` fragment,
//!   warps stream 16-row slices of the broadcast through a small
//!   staging fragment, multiplying as they go.
//!
//! Sliced mode trades extra shared-memory latency for a much smaller
//! register footprint — exactly the Fig 10 trade-off.

use crate::config::KamiConfig;
use crate::layout::{split_chunks, tile_bytes, SmemMap};
use kami_gpu_sim::{BlockKernel, BufferId, Precision};

/// k-slice granularity (§4.7: "each k-slice has a dimension of 16 to
/// align with the MMA unit granularity").
pub const SLICE_K: usize = 16;

/// Largest divisor of `ki` no bigger than [`SLICE_K`].
fn slice_height(ki: usize) -> usize {
    (1..=SLICE_K.min(ki))
        .rev()
        .find(|s| ki.is_multiple_of(*s))
        .unwrap_or(1)
}

/// Rows of `B_i` parked in shared memory for a fraction `f`, quantized
/// to whole slices and always leaving at least one slice in registers.
fn b_park_rows(ki: usize, f: f64) -> usize {
    let slice = slice_height(ki);
    let want = ((ki as f64 * f) / slice as f64).round() as usize * slice;
    want.min(ki - slice)
}

/// Shared-memory address map of a 1D kernel.
pub fn smem_map(cfg: &KamiConfig, m: usize, n: usize, k: usize) -> SmemMap {
    let p = cfg.warps;
    let (mi, ki) = (m / p, k / p);
    let se = cfg.precision;
    let (_, parked_a) = split_chunks(p, cfg.smem_fraction);
    let parked_b = if cfg.smem_fraction > 0.0 {
        b_park_rows(ki, cfg.smem_fraction)
    } else {
        0
    };
    SmemMap::new(
        0,
        0,
        1,
        tile_bytes(ki, n, se),
        parked_a * tile_bytes(mi, ki, se) + tile_bytes(parked_b, n, se),
    )
}

/// Build the 1D block kernel for `C = A·B`.
///
/// Preconditions (checked by [`KamiConfig::validate`]): `p | m`, `p | k`.
#[allow(clippy::too_many_arguments)]
pub fn build_kernel(
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
    a_buf: BufferId,
    b_buf: BufferId,
    c_buf: BufferId,
    c_prec: Precision,
) -> BlockKernel {
    if cfg.smem_fraction > 0.0 {
        build_sliced(cfg, m, n, k, a_buf, b_buf, c_buf, c_prec)
    } else {
        build_direct(cfg, m, n, k, a_buf, b_buf, c_buf, c_prec)
    }
}

/// Direct mode: everything in registers (Algorithm 1 verbatim).
#[allow(clippy::too_many_arguments)]
fn build_direct(
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
    a_buf: BufferId,
    b_buf: BufferId,
    c_buf: BufferId,
    c_prec: Precision,
) -> BlockKernel {
    let p = cfg.warps;
    let (mi, ki) = (m / p, k / p);
    let prec = cfg.precision;
    let map = smem_map(cfg, m, n, k);

    BlockKernel::spmd(p, |i, w| {
        let a_i = w.frag("Ai", mi, k, prec);
        let b_own = w.frag("Bi", ki, n, prec);
        let b_recv = w.frag("BRecv", ki, n, prec);
        let c_i = w.frag("Ci", mi, n, c_prec);

        // GMem2Reg (Algorithm 1 line 2).
        w.global_load(a_i, a_buf, i * mi, 0);
        w.global_load(b_own, b_buf, i * ki, 0);
        w.zero_acc(c_i);

        // p stages (lines 4-12).
        for z in 0..p {
            if i == z {
                w.shared_store(b_own, map.b_addr(0));
                w.reg_copy(b_recv, b_own);
            }
            w.barrier();
            if i != z {
                w.shared_load(b_recv, map.b_addr(0));
            }
            w.barrier();
            w.mma_a_cols(c_i, a_i, b_recv, z * ki, ki);
        }

        // Reg2GMem (line 13).
        w.global_store(c_i, c_buf, i * mi, 0);
    })
}

/// Sliced mode (§4.7): A chunks and B rows parked in shared memory,
/// reception streamed in k-slices.
#[allow(clippy::too_many_arguments)]
fn build_sliced(
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
    a_buf: BufferId,
    b_buf: BufferId,
    c_buf: BufferId,
    c_prec: Precision,
) -> BlockKernel {
    let p = cfg.warps;
    let (mi, ki) = (m / p, k / p);
    let prec = cfg.precision;
    let map = smem_map(cfg, m, n, k);
    let (reg_chunks, parked_chunks) = split_chunks(p, cfg.smem_fraction);
    let a_chunk_bytes = tile_bytes(mi, ki, prec);
    let slice = slice_height(ki);
    let b_park = b_park_rows(ki, cfg.smem_fraction);
    let b_reg = ki - b_park;
    let slice_bytes = tile_bytes(slice, n, prec);
    let b_park_base = parked_chunks * a_chunk_bytes; // within park area

    BlockKernel::spmd(p, |i, w| {
        let a_reg = w.frag("Ai", mi, reg_chunks * ki, prec);
        let a_stage = (parked_chunks > 0).then(|| w.frag("AStage", mi, ki, prec));
        let b_own = w.frag("Bi", b_reg, n, prec);
        let b_slice = w.frag("BSlice", slice, n, prec);
        let c_i = w.frag("Ci", mi, n, c_prec);

        // GMem2Reg + parking (§4.7).
        w.global_load(a_reg, a_buf, i * mi, 0);
        if let Some(a_stage) = a_stage {
            for j in 0..parked_chunks {
                w.global_load(a_stage, a_buf, i * mi, (reg_chunks + j) * ki);
                w.shared_store(a_stage, map.park_addr(i, j * a_chunk_bytes));
            }
        }
        w.global_load(b_own, b_buf, i * ki, 0);
        for s in 0..b_park / slice {
            w.global_load(b_slice, b_buf, i * ki + b_reg + s * slice, 0);
            w.shared_store(b_slice, map.park_addr(i, b_park_base + s * slice_bytes));
        }
        w.zero_acc(c_i);

        for z in 0..p {
            if i == z {
                // Assemble the broadcast region: register rows first,
                // parked rows re-staged behind them.
                w.shared_store(b_own, map.b_addr(0));
                for s in 0..b_park / slice {
                    w.shared_load(b_slice, map.park_addr(i, b_park_base + s * slice_bytes));
                    w.shared_store(
                        b_slice,
                        map.b_addr(0) + tile_bytes(b_reg, n, prec) + s * slice_bytes,
                    );
                }
            }
            if z >= reg_chunks {
                // This stage's A chunk was parked: fetch it back.
                let a_stage = a_stage.expect("parked stage without staging fragment");
                w.shared_load(a_stage, map.park_addr(i, (z - reg_chunks) * a_chunk_bytes));
            }
            w.barrier();
            // Sliced reception + compute: stream the broadcast through a
            // slice-high staging fragment (the sender re-reads its own
            // broadcast — its operand is split across fragments).
            for s in 0..ki / slice {
                w.shared_load(b_slice, map.b_addr(0) + s * slice_bytes);
                if z < reg_chunks {
                    w.mma_a_cols(c_i, a_reg, b_slice, z * ki + s * slice, slice);
                } else {
                    w.mma_a_cols(
                        c_i,
                        a_stage.expect("parked stage"),
                        b_slice,
                        s * slice,
                        slice,
                    );
                }
            }
            w.barrier();
        }

        w.global_store(c_i, c_buf, i * mi, 0);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algo;
    use kami_gpu_sim::{device::gh200, Engine, GlobalMemory, Matrix};

    fn run_1d(
        n: usize,
        warps: usize,
        prec: Precision,
        fraction: f64,
    ) -> (Matrix, kami_gpu_sim::ExecutionReport) {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, prec)
            .with_warps(warps)
            .with_smem_fraction(fraction);
        cfg.validate(&dev, n, n, n).unwrap();
        let a = Matrix::seeded_uniform(n, n, 11);
        let b = Matrix::seeded_uniform(n, n, 22);
        let mut gmem = GlobalMemory::new();
        let ab = gmem.upload("A", &a, prec);
        let bb = gmem.upload("B", &b, prec);
        let acc = prec.accumulator();
        let cb = gmem.alloc_zeroed("C", n, n, acc);
        let kern = build_kernel(&cfg, n, n, n, ab, bb, cb, acc);
        let rep = Engine::new(&dev).run(&kern, &mut gmem).unwrap();
        (gmem.download(cb), rep)
    }

    fn reference(n: usize, prec: Precision) -> Matrix {
        let a = Matrix::seeded_uniform(n, n, 11).quantized(prec);
        let b = Matrix::seeded_uniform(n, n, 22).quantized(prec);
        let acc = prec.accumulator();
        Matrix::from_fn(n, n, |i, j| {
            let mut s = 0.0;
            for l in 0..n {
                s = kami_gpu_sim::precision::fma_acc(acc, a[(i, l)], b[(l, j)], s);
            }
            s
        })
    }

    #[test]
    fn fp64_matches_reference_exactly() {
        let (c, _) = run_1d(16, 2, Precision::Fp64, 0.0);
        assert_eq!(c.max_abs_diff(&reference(16, Precision::Fp64)), 0.0);
    }

    #[test]
    fn fp16_matches_reference_exactly() {
        // Same accumulation order (k ascending, FP32 accumulator) as the
        // reference: bit-exact.
        let (c, _) = run_1d(32, 4, Precision::Fp16, 0.0);
        assert_eq!(c.max_abs_diff(&reference(32, Precision::Fp16)), 0.0);
    }

    #[test]
    fn sliced_mode_preserves_results() {
        for f in [0.25, 0.5, 0.75] {
            let (c0, r0) = run_1d(32, 4, Precision::Fp16, 0.0);
            let (cf, rf) = run_1d(32, 4, Precision::Fp16, f);
            assert_eq!(c0.max_abs_diff(&cf), 0.0, "fraction {f}");
            // Parking adds shared-memory traffic...
            assert!(rf.comm_volume() > r0.comm_volume());
            // ...and never costs registers.
            assert!(
                rf.max_registers().measured_regs <= r0.max_registers().measured_regs,
                "fraction {f}"
            );
        }
    }

    #[test]
    fn sliced_mode_saves_registers_at_scale() {
        let (c0, r0) = run_1d(128, 8, Precision::Fp16, 0.0);
        let (cf, rf) = run_1d(128, 8, Precision::Fp16, 0.5);
        assert_eq!(c0.max_abs_diff(&cf), 0.0);
        assert!(
            rf.max_registers().measured_regs < r0.max_registers().measured_regs,
            "sliced {} !< direct {}",
            rf.max_registers().measured_regs,
            r0.max_registers().measured_regs
        );
    }

    #[test]
    fn sliced_mode_with_uneven_slices() {
        // p=4, n=24 -> ki=6, slice height 6.
        let (c, _) = run_1d(24, 4, Precision::Fp64, 0.5);
        assert!(c.max_abs_diff(&reference(24, Precision::Fp64)) < 1e-12);
    }

    #[test]
    fn large_order_fits_only_with_slicing() {
        // 192³ FP16 with 8 warps: direct mode overflows the register
        // file; sliced mode fits — the §4.7 fallback in action.
        let dev = gh200();
        let a = Matrix::seeded_uniform(192, 192, 1);
        let b = Matrix::seeded_uniform(192, 192, 2);
        let direct = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(8);
        assert!(crate::gemm::gemm(&dev, &direct, &a, &b).is_err());
        let sliced = direct.clone().with_smem_fraction(0.75);
        let res = crate::gemm::gemm(&dev, &sliced, &a, &b).unwrap();
        assert!(res.report.max_registers().measured_regs <= 255);
    }

    #[test]
    fn per_stage_comm_volume_matches_formula_1() {
        // Formula 1: V_cm per stage = k·n·s_e; over p stages = p·k·n·s_e.
        let n = 32;
        let p = 4;
        let (_, rep) = run_1d(n, p, Precision::Fp16, 0.0);
        let expected = (p * n * n * Precision::Fp16.size_bytes()) as u64;
        assert_eq!(rep.comm_volume(), expected);
    }

    #[test]
    fn only_b_is_communicated() {
        // Shared-memory writes should equal p · |B_z| = |B| (each warp
        // broadcasts its B slab exactly once).
        let n = 32;
        let (_, rep) = run_1d(n, 4, Precision::Fp16, 0.0);
        assert_eq!(
            rep.smem_bytes_written,
            (n * n * Precision::Fp16.size_bytes()) as u64
        );
    }

    #[test]
    fn single_warp_degenerates_to_local_gemm() {
        let (c, rep) = run_1d(16, 1, Precision::Fp64, 0.0);
        assert_eq!(c.max_abs_diff(&reference(16, Precision::Fp64)), 0.0);
        // One warp: broadcast write happens, zero cross-warp reads.
        assert_eq!(rep.smem_bytes_read, 0);
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(slice_height(48), 16);
        assert_eq!(slice_height(24), 12);
        assert_eq!(slice_height(16), 16);
        assert_eq!(slice_height(6), 6);
        assert_eq!(b_park_rows(48, 0.5), 32); // 24 -> rounds to 2 slices
        assert_eq!(b_park_rows(16, 0.5), 0); // single slice stays
        assert_eq!(b_park_rows(48, 0.75), 32);
    }
}
