//! KAMI-2D (paper §4.4, Algorithm 2).
//!
//! `p = q²` warps form a `q×q` grid. Warp `(r, c)` holds `A_i = A(r, c)`
//! (`m/q × k/q`), `B_i = B(r, c)` (`k/q × n/q`) and accumulates
//! `C_i = C(r, c)` (`m/q × n/q`). The multiplication runs in `q = √p`
//! stages; at stage `z` the warps in grid column `z` broadcast their `A_i`
//! along their grid **row**, and the warps in grid row `z` broadcast their
//! `B_i` along their grid **column**, both through shared memory. Every
//! warp then computes
//!
//! ```text
//! C(r, c) += A(r, z) · B(z, c)
//! ```
//!
//! which after all stages is the SUMMA outer-product decomposition of C.
//!
//! Register/shared-memory cooperation (§4.7): a `smem_fraction` of the
//! leading *rows* of each warp's `A_i` and `B_i` (rows are contiguous in
//! the row-major fragment, so the parked part occupies the front of the
//! broadcast region) is parked in shared memory at kernel start; the
//! sender fetches it back at its send stage. When parking is active the
//! sender reads its own broadcast back from shared memory instead of the
//! register copy, since its operand is split across two fragments.

use crate::config::KamiConfig;
use crate::layout::{grid_pos, split_chunks, tile_bytes, SmemMap};
use kami_gpu_sim::{BlockKernel, BufferId, Precision};

/// Height of the staging slice used to move `rows` parked rows through
/// registers. Staging is pure data movement (the MMA operands are the
/// assembled `ARecv`/`BRecv`), so a small slice costs no extra latency
/// or bandwidth — the largest divisor of `rows` no bigger than 8 keeps
/// the staging fragment tiny.
fn park_slice(rows: usize) -> usize {
    (1..=8usize.min(rows))
        .rev()
        .find(|h| rows.is_multiple_of(*h))
        .unwrap_or(1)
}

/// Shared-memory address map of a 2D kernel: `q` broadcast regions for A
/// (one per grid row), `q` for B (one per grid column), plus parking.
pub fn smem_map(cfg: &KamiConfig, m: usize, n: usize, k: usize) -> SmemMap {
    let q = (cfg.warps as f64).sqrt().round() as usize;
    let (mi, ni, ki) = (m / q, n / q, k / q);
    let prec = cfg.precision;
    let (_, a_park) = split_chunks(mi, cfg.smem_fraction);
    let (_, b_park) = split_chunks(ki, cfg.smem_fraction);
    SmemMap::new(
        q,
        tile_bytes(mi, ki, prec),
        q,
        tile_bytes(ki, ni, prec),
        tile_bytes(a_park, ki, prec) + tile_bytes(b_park, ni, prec),
    )
}

/// Build the 2D block kernel for `C = A·B`.
///
/// Preconditions (checked by [`KamiConfig::validate`]):
/// `√p | m`, `√p | n`, `√p | k`.
#[allow(clippy::too_many_arguments)]
pub fn build_kernel(
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
    a_buf: BufferId,
    b_buf: BufferId,
    c_buf: BufferId,
    c_prec: Precision,
) -> BlockKernel {
    let q = (cfg.warps as f64).sqrt().round() as usize;
    let (mi, ni, ki) = (m / q, n / q, k / q);
    let prec = cfg.precision;
    let map = smem_map(cfg, m, n, k);
    let (a_reg_rows, a_park_rows) = split_chunks(mi, cfg.smem_fraction);
    let (b_reg_rows, b_park_rows) = split_chunks(ki, cfg.smem_fraction);
    let a_park_bytes = tile_bytes(a_park_rows, ki, prec);
    let b_park_bytes = tile_bytes(b_park_rows, ni, prec);

    BlockKernel::spmd(cfg.warps, |i, w| {
        let (r, c) = grid_pos(i, q);

        let a_slice = park_slice(a_park_rows.max(1));
        let b_slice = park_slice(b_park_rows.max(1));
        let a_reg = w.frag("Ai", a_reg_rows, ki, prec);
        let a_stage = (a_park_rows > 0).then(|| w.frag("AiStage", a_slice, ki, prec));
        let b_reg = w.frag("Bi", b_reg_rows, ni, prec);
        let b_stage = (b_park_rows > 0).then(|| w.frag("BiStage", b_slice, ni, prec));
        let a_recv = w.frag("ARecv", mi, ki, prec);
        let b_recv = w.frag("BRecv", ki, ni, prec);
        let c_i = w.frag("Ci", mi, ni, c_prec);
        let a_slice_bytes = tile_bytes(a_slice, ki, prec);
        let b_slice_bytes = tile_bytes(b_slice, ni, prec);

        // GMem2Reg (line 2) with §4.7 parking of leading rows, streamed
        // through a slice-high staging fragment.
        if let Some(a_stage) = a_stage {
            for s in 0..a_park_rows / a_slice {
                w.global_load(a_stage, a_buf, r * mi + s * a_slice, c * ki);
                w.shared_store(a_stage, map.park_addr(i, s * a_slice_bytes));
            }
        }
        w.global_load(a_reg, a_buf, r * mi + a_park_rows, c * ki);
        if let Some(b_stage) = b_stage {
            for s in 0..b_park_rows / b_slice {
                w.global_load(b_stage, b_buf, r * ki + s * b_slice, c * ni);
                w.shared_store(b_stage, map.park_addr(i, a_park_bytes + s * b_slice_bytes));
            }
        }
        w.global_load(b_reg, b_buf, r * ki + b_park_rows, c * ni);
        w.zero_acc(c_i);

        // √p stages (lines 4-17).
        for z in 0..q {
            let send_a = c == z;
            let send_b = r == z;
            if send_a {
                // Reassemble [parked rows][register rows] in the row
                // broadcast region, streaming the parked part slice by
                // slice through the staging fragment.
                if let Some(a_stage) = a_stage {
                    for s in 0..a_park_rows / a_slice {
                        w.shared_load(a_stage, map.park_addr(i, s * a_slice_bytes));
                        w.shared_store(a_stage, map.a_addr(r) + s * a_slice_bytes);
                    }
                    w.shared_store(a_reg, map.a_addr(r) + a_park_bytes);
                    // Own copy is split: read the assembled block back.
                    w.shared_load(a_recv, map.a_addr(r));
                } else {
                    w.shared_store(a_reg, map.a_addr(r));
                    w.reg_copy(a_recv, a_reg);
                }
            }
            if send_b {
                if let Some(b_stage) = b_stage {
                    for s in 0..b_park_rows / b_slice {
                        w.shared_load(b_stage, map.park_addr(i, a_park_bytes + s * b_slice_bytes));
                        w.shared_store(b_stage, map.b_addr(c) + s * b_slice_bytes);
                    }
                    w.shared_store(b_reg, map.b_addr(c) + b_park_bytes);
                    w.shared_load(b_recv, map.b_addr(c));
                } else {
                    w.shared_store(b_reg, map.b_addr(c));
                    w.reg_copy(b_recv, b_reg);
                }
            }
            w.barrier();
            if !send_a {
                w.shared_load(a_recv, map.a_addr(r));
            }
            if !send_b {
                w.shared_load(b_recv, map.b_addr(c));
            }
            w.barrier();
            w.mma(c_i, a_recv, b_recv);
        }

        // Reg2GMem (line 18).
        w.global_store(c_i, c_buf, r * mi, c * ni);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algo;
    use kami_gpu_sim::{device::gh200, Engine, GlobalMemory, Matrix};

    fn run_2d(
        n: usize,
        warps: usize,
        prec: Precision,
        fraction: f64,
    ) -> (Matrix, kami_gpu_sim::ExecutionReport) {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::TwoD, prec)
            .with_warps(warps)
            .with_smem_fraction(fraction);
        cfg.validate(&dev, n, n, n).unwrap();
        let a = Matrix::seeded_uniform(n, n, 31);
        let b = Matrix::seeded_uniform(n, n, 32);
        let mut gmem = GlobalMemory::new();
        let ab = gmem.upload("A", &a, prec);
        let bb = gmem.upload("B", &b, prec);
        let acc = prec.accumulator();
        let cb = gmem.alloc_zeroed("C", n, n, acc);
        let kern = build_kernel(&cfg, n, n, n, ab, bb, cb, acc);
        let rep = Engine::new(&dev).run(&kern, &mut gmem).unwrap();
        (gmem.download(cb), rep)
    }

    fn reference(n: usize, prec: Precision) -> Matrix {
        let a = Matrix::seeded_uniform(n, n, 31).quantized(prec);
        let b = Matrix::seeded_uniform(n, n, 32).quantized(prec);
        let acc = prec.accumulator();
        Matrix::from_fn(n, n, |i, j| {
            let mut s = 0.0;
            for l in 0..n {
                s = kami_gpu_sim::precision::fma_acc(acc, a[(i, l)], b[(l, j)], s);
            }
            s
        })
    }

    #[test]
    fn fp64_matches_reference_exactly() {
        let (c, _) = run_2d(16, 4, Precision::Fp64, 0.0);
        assert_eq!(c.max_abs_diff(&reference(16, Precision::Fp64)), 0.0);
    }

    #[test]
    fn fp16_matches_reference_exactly() {
        let (c, _) = run_2d(32, 4, Precision::Fp16, 0.0);
        assert_eq!(c.max_abs_diff(&reference(32, Precision::Fp16)), 0.0);
    }

    #[test]
    fn nine_and_sixteen_warp_grids() {
        let (c, _) = run_2d(48, 9, Precision::Fp16, 0.0);
        assert_eq!(c.max_abs_diff(&reference(48, Precision::Fp16)), 0.0);
        let (c, _) = run_2d(64, 16, Precision::Fp16, 0.0);
        assert_eq!(c.max_abs_diff(&reference(64, Precision::Fp16)), 0.0);
    }

    #[test]
    fn parking_preserves_results() {
        let (c0, r0) = run_2d(32, 4, Precision::Fp16, 0.0);
        let (c5, r5) = run_2d(32, 4, Precision::Fp16, 0.5);
        assert_eq!(c0.max_abs_diff(&c5), 0.0);
        assert!(r5.comm_volume() > r0.comm_volume());
    }

    #[test]
    fn total_comm_volume_matches_formula_5() {
        // Formula 5: per-stage V_cm = (mk + kn)·s_e; √p stages.
        let n = 32;
        let (_, rep) = run_2d(n, 4, Precision::Fp16, 0.0);
        let per_stage = 2 * n * n * Precision::Fp16.size_bytes();
        assert_eq!(rep.comm_volume(), (2 * per_stage) as u64);
    }

    #[test]
    fn both_a_and_b_are_communicated() {
        // All of A and all of B transit shared memory exactly once.
        let n = 32;
        let (_, rep) = run_2d(n, 4, Precision::Fp16, 0.0);
        assert_eq!(
            rep.smem_bytes_written,
            (2 * n * n * Precision::Fp16.size_bytes()) as u64
        );
    }

    #[test]
    fn rectangular_problem() {
        let (m, n, k, q) = (24, 16, 32, 2);
        let prec = Precision::Fp64;
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::TwoD, prec).with_warps(q * q);
        cfg.validate(&dev, m, n, k).unwrap();
        let a = Matrix::seeded_uniform(m, k, 7);
        let b = Matrix::seeded_uniform(k, n, 8);
        let mut gmem = GlobalMemory::new();
        let ab = gmem.upload("A", &a, prec);
        let bb = gmem.upload("B", &b, prec);
        let cb = gmem.alloc_zeroed("C", m, n, prec);
        let kern = build_kernel(&cfg, m, n, k, ab, bb, cb, prec);
        Engine::new(&dev).run(&kern, &mut gmem).unwrap();
        let c = gmem.download(cb);
        let want = Matrix::from_fn(m, n, |i, j| {
            let mut s = 0.0;
            for l in 0..k {
                s = a[(i, l)].mul_add(b[(l, j)], s);
            }
            s
        });
        assert!(c.max_abs_diff(&want) < 1e-12);
    }
}
