//! Batched GEMM (paper §5.4): many independent small products launched as
//! one workload, with an interface shaped like `cublasDgemmBatched` /
//! MAGMA `magma_dgemm_batched`.
//!
//! Each batch entry runs as one KAMI thread block. Functional outputs are
//! produced for every entry (fanned out across host cores with rayon —
//! the entries are independent, exactly like blocks on different SMs),
//! and device time is modelled by round-robin block scheduling: with
//! `num_sms` SMs and one resident block per SM,
//! `total_cycles = ceil(batch / num_sms) · block_cycles`.
//!
//! Unlike the paper's block-level benchmark (which ignores global I/O),
//! batched blocks *include* their global loads and stores — that is why
//! batched throughput sits below standalone block throughput (§5.4).

use crate::config::KamiConfig;
use crate::error::KamiError;
use crate::gemm::{exec_gemm_auto, exec_gemm_padded, GemmResult};
use kami_gpu_sim::{DeviceSpec, ExecutionReport, Matrix};
use rayon::prelude::*;

/// Result of a batched GEMM.
#[derive(Debug, Clone)]
pub struct BatchedResult {
    /// Per-entry products, in input order.
    pub outputs: Vec<Matrix>,
    /// Report of one representative block (entries share dimensions, so
    /// every block has identical cost structure).
    pub block_report: ExecutionReport,
    /// Batch size.
    pub batch: usize,
    /// Modelled device cycles for the whole batch.
    pub total_cycles: f64,
    /// Useful flops over the whole batch.
    pub useful_flops: u64,
}

impl BatchedResult {
    /// Device TFLOPS over the batch (includes global-memory cycles).
    pub fn tflops(&self, device: &DeviceSpec) -> f64 {
        self.useful_flops as f64 / (self.total_cycles / device.clock_hz()) / 1e12
    }

    /// Wall-clock seconds on `device`.
    pub fn seconds(&self, device: &DeviceSpec) -> f64 {
        self.total_cycles / device.clock_hz()
    }
}

/// Modelled device cycles for `batch` identical blocks of `block_cycles`.
pub fn schedule_cycles(device: &DeviceSpec, block_cycles: f64, batch: usize) -> f64 {
    let waves = batch.div_ceil(device.num_sms as usize);
    waves as f64 * block_cycles
}

/// Run a batch of independent GEMMs. All entries must share dimensions
/// (the paper evaluates uniform batches; see `gemm_padded` for ragged
/// entries).
pub fn batched_gemm(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    pairs: &[(Matrix, Matrix)],
) -> Result<BatchedResult, KamiError> {
    crate::request::GemmRequest::from_config(
        crate::request::Op::Batched {
            pairs: pairs.to_vec(),
            varied: false,
        },
        cfg,
    )
    .execute(device)?
    .into_batched()
}

/// Engine body of [`batched_gemm`] (shared by the request executor).
pub(crate) fn exec_batched_gemm(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    pairs: &[(Matrix, Matrix)],
) -> Result<BatchedResult, KamiError> {
    let Some(((a0, b0), rest)) = pairs.split_first() else {
        return Err(KamiError::ShapeMismatch {
            detail: "empty batch".into(),
        });
    };
    let dims = (a0.rows(), a0.cols(), b0.cols());
    for (i, (a, b)) in rest.iter().enumerate() {
        if (a.rows(), a.cols(), b.cols()) != dims || b.rows() != dims.1 {
            return Err(KamiError::ShapeMismatch {
                detail: format!(
                    "batch entry {} is {}x{}·{}x{}, expected uniform {}x{}·{}x{}",
                    i + 1,
                    a.rows(),
                    a.cols(),
                    b.rows(),
                    b.cols(),
                    dims.0,
                    dims.1,
                    dims.1,
                    dims.2
                ),
            });
        }
    }

    let results: Vec<Result<GemmResult, KamiError>> = pairs
        .par_iter()
        .map(|(a, b)| exec_gemm_auto(device, cfg, a, b))
        .collect();
    let mut outputs = Vec::with_capacity(pairs.len());
    let mut first_report: Option<ExecutionReport> = None;
    let mut useful = 0u64;
    for r in results {
        let r = r?;
        useful += r.useful_flops;
        if first_report.is_none() {
            first_report = Some(r.report.clone());
        }
        outputs.push(r.c);
    }
    let block_report = first_report.expect("non-empty batch");
    let total_cycles = schedule_cycles(device, block_report.cycles, pairs.len());
    Ok(BatchedResult {
        outputs,
        block_report,
        batch: pairs.len(),
        total_cycles,
        useful_flops: useful,
    })
}

/// Run a batch of independent GEMMs with **varying** shapes — the
/// paper's batched interface "supports various matrix orders in a batch"
/// (§5.4). Each entry is padded to its own partition grid
/// ([`crate::gemm::gemm_padded`]) and runs as one block; scheduling
/// packs blocks greedily onto SMs (longest-processing-time first), so
/// the modelled makespan reflects the load imbalance ragged batches
/// cause on real hardware.
pub fn batched_gemm_varied(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    pairs: &[(Matrix, Matrix)],
) -> Result<BatchedResult, KamiError> {
    crate::request::GemmRequest::from_config(
        crate::request::Op::Batched {
            pairs: pairs.to_vec(),
            varied: true,
        },
        cfg,
    )
    .execute(device)?
    .into_batched()
}

/// Engine body of [`batched_gemm_varied`] (shared by the request
/// executor).
pub(crate) fn exec_batched_gemm_varied(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    pairs: &[(Matrix, Matrix)],
) -> Result<BatchedResult, KamiError> {
    if pairs.is_empty() {
        return Err(KamiError::ShapeMismatch {
            detail: "empty batch".into(),
        });
    }
    let results: Vec<Result<GemmResult, KamiError>> = pairs
        .par_iter()
        .map(|(a, b)| exec_gemm_padded(device, cfg, a, b))
        .collect();
    let mut outputs = Vec::with_capacity(pairs.len());
    let mut block_cycles = Vec::with_capacity(pairs.len());
    let mut first_report: Option<ExecutionReport> = None;
    let mut useful = 0u64;
    for r in results {
        let r = r?;
        useful += r.useful_flops;
        block_cycles.push(r.report.cycles);
        if first_report.is_none() {
            first_report = Some(r.report.clone());
        }
        outputs.push(r.c);
    }
    let total_cycles = lpt_makespan(&block_cycles, device.num_sms as usize);
    Ok(BatchedResult {
        outputs,
        block_report: first_report.expect("non-empty batch"),
        batch: pairs.len(),
        total_cycles,
        useful_flops: useful,
    })
}

/// Longest-processing-time-first makespan of `jobs` on `machines`
/// identical SMs — the greedy schedule a GPU's block dispatcher
/// approximates for ragged batches.
pub fn lpt_makespan(jobs: &[f64], machines: usize) -> f64 {
    let machines = machines.max(1);
    let mut sorted: Vec<f64> = jobs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite cycles"));
    // Binary heap of machine loads (min-load first via Reverse ordering
    // on a sorted vec — machine count can be large, so use a heap).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq)]
    struct Load(f64);
    impl Eq for Load {}
    impl PartialOrd for Load {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Load {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.partial_cmp(&other.0).expect("finite load")
        }
    }
    let mut heap: BinaryHeap<Reverse<Load>> = (0..machines.min(sorted.len().max(1)))
        .map(|_| Reverse(Load(0.0)))
        .collect();
    for j in sorted {
        let Reverse(Load(least)) = heap.pop().expect("non-empty heap");
        heap.push(Reverse(Load(least + j)));
    }
    heap.into_iter()
        .map(|Reverse(Load(l))| l)
        .fold(0.0, f64::max)
}

/// Cost-only estimate for a large uniform batch: simulates a single
/// representative block and extrapolates through the scheduling model.
/// Returns `(block_report, total_cycles, useful_flops)`.
pub fn estimate_batched(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
) -> Result<BatchedResult, KamiError> {
    let a = Matrix::seeded_uniform(m, k, 0xBA7C);
    let b = Matrix::seeded_uniform(k, n, 0xBA7D);
    let one = exec_gemm_auto(device, cfg, &a, &b)?;
    let total_cycles = schedule_cycles(device, one.report.cycles, batch);
    Ok(BatchedResult {
        outputs: vec![one.c],
        block_report: one.report,
        batch,
        total_cycles,
        useful_flops: one.useful_flops * batch as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algo;
    use crate::reference::reference_gemm;
    use kami_gpu_sim::{device::gh200, Precision};

    #[test]
    fn batch_outputs_match_reference() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let pairs: Vec<_> = (0..5)
            .map(|i| {
                (
                    Matrix::seeded_uniform(16, 16, 100 + i),
                    Matrix::seeded_uniform(16, 16, 200 + i),
                )
            })
            .collect();
        let res = batched_gemm(&dev, &cfg, &pairs).unwrap();
        assert_eq!(res.outputs.len(), 5);
        for (i, (a, b)) in pairs.iter().enumerate() {
            let want = reference_gemm(a, b, Precision::Fp64);
            assert!(res.outputs[i].max_abs_diff(&want) < 1e-12, "entry {i}");
        }
    }

    #[test]
    fn scheduling_waves() {
        let dev = gh200(); // 132 SMs
        assert_eq!(schedule_cycles(&dev, 100.0, 1), 100.0);
        assert_eq!(schedule_cycles(&dev, 100.0, 132), 100.0);
        assert_eq!(schedule_cycles(&dev, 100.0, 133), 200.0);
        assert_eq!(schedule_cycles(&dev, 100.0, 1000), 800.0);
    }

    #[test]
    fn non_uniform_batch_rejected() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let pairs = vec![
            (Matrix::zeros(16, 16), Matrix::zeros(16, 16)),
            (Matrix::zeros(32, 32), Matrix::zeros(32, 32)),
        ];
        assert!(matches!(
            batched_gemm(&dev, &cfg, &pairs),
            Err(KamiError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_batch_rejected() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        assert!(batched_gemm(&dev, &cfg, &[]).is_err());
    }

    #[test]
    fn varied_batch_outputs_match_reference() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let shapes = [
            (16usize, 16usize, 16usize),
            (24, 8, 12),
            (32, 32, 32),
            (10, 50, 7),
        ];
        let pairs: Vec<_> = shapes
            .iter()
            .enumerate()
            .map(|(i, &(m, n, k))| {
                (
                    Matrix::seeded_uniform(m, k, 300 + i as u64),
                    Matrix::seeded_uniform(k, n, 400 + i as u64),
                )
            })
            .collect();
        let res = batched_gemm_varied(&dev, &cfg, &pairs).unwrap();
        assert_eq!(res.outputs.len(), 4);
        for (i, (a, b)) in pairs.iter().enumerate() {
            let want = crate::reference::reference_gemm_f64(a, b);
            assert_eq!(
                (res.outputs[i].rows(), res.outputs[i].cols()),
                (a.rows(), b.cols())
            );
            assert!(res.outputs[i].max_abs_diff(&want) < 1e-12, "entry {i}");
        }
        assert!(res.total_cycles > 0.0);
    }

    #[test]
    fn lpt_makespan_properties() {
        // One machine: sum. Infinite machines: max.
        let jobs = [5.0, 3.0, 8.0, 2.0];
        assert_eq!(lpt_makespan(&jobs, 1), 18.0);
        assert_eq!(lpt_makespan(&jobs, 100), 8.0);
        // Two machines: LPT packs 8+2 and 5+3 -> 10.
        assert_eq!(lpt_makespan(&jobs, 2), 10.0);
        // Never below the lower bounds.
        let ms = lpt_makespan(&jobs, 3);
        assert!(ms >= 8.0); // also >= sum/machines = 6.0 trivially
        assert!(lpt_makespan(&[], 4) == 0.0);
    }

    #[test]
    fn varied_ragged_batch_longer_than_its_smallest_uniform() {
        // A ragged batch's makespan is dominated by its largest entries.
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let small: Vec<_> = (0..4)
            .map(|i| {
                (
                    Matrix::seeded_uniform(16, 16, 500 + i),
                    Matrix::seeded_uniform(16, 16, 600 + i),
                )
            })
            .collect();
        let mut ragged = small.clone();
        ragged.push((
            Matrix::seeded_uniform(64, 64, 700),
            Matrix::seeded_uniform(64, 64, 701),
        ));
        let rs = batched_gemm_varied(&dev, &cfg, &small).unwrap();
        let rr = batched_gemm_varied(&dev, &cfg, &ragged).unwrap();
        assert!(rr.total_cycles > rs.total_cycles);
    }

    #[test]
    fn estimate_matches_full_run_cycles() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let est = estimate_batched(&dev, &cfg, 16, 16, 16, 1000).unwrap();
        assert_eq!(
            est.total_cycles,
            schedule_cycles(&dev, est.block_report.cycles, 1000)
        );
        assert_eq!(est.useful_flops, 2 * 16 * 16 * 16 * 1000);
    }

    #[test]
    fn batched_includes_global_io() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let est = estimate_batched(&dev, &cfg, 16, 16, 16, 1).unwrap();
        assert!(est.block_report.totals.global > 0.0);
        // Batched throughput below on-chip-only throughput.
        let batched = est.tflops(&dev);
        let onchip = est.block_report.block_tflops(&dev, 2 * 16 * 16 * 16);
        assert!(batched < onchip);
    }
}
