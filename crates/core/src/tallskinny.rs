//! The tall-skinny k-split execution path.
//!
//! For `m,n ≤ 64` with `k ≥ 10^4` (and the transposed wide case, which
//! [`crate::gemm::gemm_t`] funnels here), a monolithic KAMI block
//! kernel is register-infeasible: each warp's A slice alone is
//! `m·k/p` elements, two orders of magnitude past the 255-register
//! budget. Following Ernst et al.'s tall-skinny reduction strategies,
//! this path splits k into [`SKINNY_CHUNK_K`]-deep chunks, runs each
//! chunk as an ordinary block GEMM, and merges the partial C tiles
//! with a deterministic pairwise **tree** — the same structure whose
//! cycle accounting lives in [`crate::model::skinny`], so the
//! synthesized fixup phases and the closed forms agree by
//! construction.
//!
//! Numerics contract (what `tests/tallskinny.rs` pins): chunk `i`
//! covers columns `[i·CK, (i+1)·CK)` of A, partials merge pairwise
//! `(0,1), (2,3), …` level by level with one rounding at the output
//! precision per add, and the fused epilogue (if any) applies to the
//! final tile exactly as [`Epilogue::apply_reference`].

use crate::config::KamiConfig;
use crate::epilogue::Epilogue;
use crate::error::KamiError;
use crate::gemm::{c_precision, exec_gemm_padded, GemmResult};
pub use crate::model::skinny::{
    chunk_count, is_tall_skinny, SKINNY_CHUNK_K, SKINNY_DIM_MAX, SKINNY_K_MIN,
};
use kami_gpu_sim::cost::{phase_cost, PhaseCost};
use kami_gpu_sim::{DeviceSpec, ExecutionReport, Matrix, Precision};

/// Merge partial C tiles pairwise, level by level (`(0,1), (2,3), …`;
/// an odd survivor passes through), rounding once at `prec` per add.
/// This order is part of the skinny path's public numerics contract.
pub fn combine_partials(mut parts: Vec<Matrix>, prec: Precision) -> Matrix {
    assert!(!parts.is_empty(), "nothing to combine");
    while parts.len() > 1 {
        let mut next = Vec::with_capacity(parts.len().div_ceil(2));
        let mut it = parts.into_iter();
        while let Some(mut acc) = it.next() {
            if let Some(other) = it.next() {
                for (x, y) in acc.as_mut_slice().iter_mut().zip(other.as_slice()) {
                    *x = prec.round(*x + *y);
                }
            }
            next.push(acc);
        }
        parts = next;
    }
    parts.pop().unwrap()
}

/// Run `C = [epilogue](A·B)` through the k-split path: chunked block
/// GEMMs plus a tree fixup. `cfg` must be valid for the *chunk* shape
/// `(m, n, SKINNY_CHUNK_K)` — the request layer resolves it by tuning
/// that shape, since no configuration fits the full one.
///
/// The returned report concatenates every chunk's phases and appends
/// one synthesized phase per fixup round (from
/// [`crate::model::skinny::fixup_phases`]), so `cycles` remains the
/// sum of its `phase_costs` and the golden closed forms can be checked
/// against it exactly.
pub fn gemm_skinny(
    device: &DeviceSpec,
    cfg: &KamiConfig,
    a: &Matrix,
    b: &Matrix,
    epilogue: Option<&Epilogue>,
) -> Result<GemmResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb {
        return Err(KamiError::ShapeMismatch {
            detail: format!("A is {m}x{k} but B is {kb}x{n}"),
        });
    }
    if let Some(epi) = epilogue {
        epi.validate(n)?;
    }
    let c_prec = c_precision(cfg.precision);
    let chunks = chunk_count(k);

    let mut partials = Vec::with_capacity(chunks);
    let mut phase_costs: Vec<PhaseCost> = Vec::new();
    let mut totals = PhaseCost::default();
    let mut cycles = 0.0;
    let mut flops_charged = 0u64;
    let mut smem_bytes_written = 0u64;
    let mut smem_bytes_read = 0u64;
    let mut smem_extent = 0usize;
    let mut gmem_bytes_read = 0u64;
    let mut gmem_bytes_written = 0u64;
    let mut smem_fraction = cfg.smem_fraction;
    let mut registers_per_warp = Vec::new();

    for i in 0..chunks {
        let k0 = i * SKINNY_CHUNK_K;
        let ck = SKINNY_CHUNK_K.min(k - k0);
        let a_i = a.submatrix(0, k0, m, ck);
        let b_i = b.submatrix(k0, 0, ck, n);
        let res = exec_gemm_padded(device, cfg, &a_i, &b_i)?;
        cycles += res.report.cycles;
        totals.accumulate(&res.report.totals);
        phase_costs.extend_from_slice(&res.report.phase_costs);
        flops_charged += res.report.flops_charged;
        smem_bytes_written += res.report.smem_bytes_written;
        smem_bytes_read += res.report.smem_bytes_read;
        smem_extent = smem_extent.max(res.report.smem_extent);
        gmem_bytes_read += res.report.gmem_bytes_read;
        gmem_bytes_written += res.report.gmem_bytes_written;
        if i == 0 {
            smem_fraction = res.smem_fraction;
            registers_per_warp = res.report.registers_per_warp.clone();
        }
        partials.push(res.c);
    }

    // Tree fixup: merge the partials (numerics) and charge the rounds
    // (cost) from the same single source of truth.
    let mut c = combine_partials(partials, c_prec);
    if let Some(epi) = epilogue {
        epi.apply_reference(&mut c, c_prec);
    }
    let bias_elems = match epilogue {
        Some(Epilogue::Bias(_)) => n,
        _ => 0,
    };
    let epi_reg_ops = u64::from(epilogue.is_some());
    let tile_bytes = (m * n * c_prec.size_bytes()) as u64;
    let merges = chunks.saturating_sub(1) as u64;
    for tally in crate::model::skinny::fixup_phases(m, n, chunks, c_prec, bias_elems, epi_reg_ops) {
        let pc = phase_cost(device, &cfg.cost, &tally)?;
        cycles += pc.cycles(cfg.cost.mode);
        totals.accumulate(&pc);
        phase_costs.push(pc);
    }
    gmem_bytes_read += 2 * tile_bytes * merges + (bias_elems * c_prec.size_bytes()) as u64;
    gmem_bytes_written += tile_bytes * merges;

    Ok(GemmResult {
        c,
        report: ExecutionReport {
            device_name: device.name.clone(),
            warps: cfg.warps,
            mode: cfg.cost.mode,
            phase_costs,
            totals,
            cycles,
            flops_charged,
            smem_bytes_written,
            smem_bytes_read,
            smem_extent,
            gmem_bytes_read,
            gmem_bytes_written,
            registers_per_warp,
        },
        smem_fraction,
        useful_flops: 2 * (m as u64) * (n as u64) * (k as u64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algo;
    use crate::reference::reference_gemm;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn skinny_path_matches_reference_numerics() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
        let a = Matrix::seeded_uniform(16, 8192, 40);
        let b = Matrix::seeded_uniform(8192, 16, 41);
        let res = gemm_skinny(&dev, &cfg, &a, &b, None).unwrap();
        let want = reference_gemm(&a, &b, Precision::Fp64);
        assert!(res.c.rel_frobenius_error(&want) < 1e-10);
        assert_eq!(res.useful_flops, 2 * 16 * 16 * 8192);
    }

    #[test]
    fn report_cycles_equal_phase_sum() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let a = Matrix::seeded_uniform(16, 4096, 42);
        let b = Matrix::seeded_uniform(4096, 16, 43);
        let res = gemm_skinny(&dev, &cfg, &a, &b, None).unwrap();
        let sum: f64 = res
            .report
            .phase_costs
            .iter()
            .map(|p| p.cycles(res.report.mode))
            .sum();
        assert!(
            (res.report.cycles - sum).abs() < 1e-6 * (1.0 + sum),
            "cycles {} != phase sum {sum}",
            res.report.cycles
        );
    }

    #[test]
    fn combine_order_is_the_documented_tree() {
        // 3 partials: (p0 + p1) then (+ p2) — the odd survivor merges
        // at the next level, not serially.
        let p0 = Matrix::from_vec(1, 1, vec![1.0]);
        let p1 = Matrix::from_vec(1, 1, vec![2.0]);
        let p2 = Matrix::from_vec(1, 1, vec![4.0]);
        let c = combine_partials(vec![p0, p1, p2], Precision::Fp64);
        assert_eq!(c.get(0, 0), 7.0);
    }

    #[test]
    fn fused_epilogue_matches_unfused_reference_exactly() {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
        let a = Matrix::seeded_uniform(16, 4096, 50);
        let b = Matrix::seeded_uniform(4096, 16, 51);
        let plain = gemm_skinny(&dev, &cfg, &a, &b, None).unwrap();
        for epi in [
            Epilogue::Bias(Matrix::seeded_uniform(1, 16, 52)),
            Epilogue::Relu,
            Epilogue::Gelu,
            Epilogue::SoftmaxScale(0.125),
        ] {
            let fused = gemm_skinny(&dev, &cfg, &a, &b, Some(&epi)).unwrap();
            let mut want = plain.c.clone();
            epi.apply_reference(&mut want, Precision::Fp16);
            assert_eq!(
                fused.c.max_abs_diff(&want),
                0.0,
                "{} epilogue not bit-identical on the skinny path",
                epi.label()
            );
        }
    }
}
