//! KAMI-3D (paper §4.5, Algorithm 3).
//!
//! `p = q³` warps form a `q×q×q` cube. Following the paper's construction
//! — "the warp cube can be viewed as ∛p warp grids of size ∛p×∛p, with
//! `A_i` and `B_i` in the 2D algorithm divided along the k-dimension into
//! ∛p submatrices accordingly" — layer `l` of the cube runs the 2D
//! algorithm over the `l`-th k-chunk of A and B. Concretely, warp
//! `(l, r, c)` owns the A shard
//!
//! ```text
//! A[r·m/q .. , l·k/q + c·k/q² ..]   (m/q × k/q²)
//! ```
//!
//! and the B shard `B[l·k/q + r·k/q² .. , c·n/q ..]` (`k/q² × n/q`). Each
//! of the `∛p` stages broadcasts shards along grid rows (A) and columns
//! (B) within every layer concurrently, and each warp accumulates
//!
//! ```text
//! C_l(r, c) += A(r, l, z) · B(l, z, c)
//! ```
//!
//! After the `∛p` stages, warp `(l, r, c)` holds the contribution of
//! k-chunk `l` to `C(r, c)`; the `∛p` intermediate layers are aggregated
//! by accumulating into global memory (Algorithm 3 lines 18-19).
//!
//! Per stage this writes `(mk + kn)/∛p` bytes and reads `(∛p−1)/∛p`
//! as much, i.e. exactly the per-stage volume of Formula 9, and the
//! total over `∛p` stages beats 2D's `√p`-stage total — the classic
//! 3D communication saving.

use crate::config::KamiConfig;
use crate::layout::{cube_pos, split_chunks, tile_bytes, SmemMap};
use kami_gpu_sim::{BlockKernel, BufferId, Precision};

/// Height of the staging slice used to move `rows` parked rows through
/// registers. Staging is pure data movement (the MMA operands are the
/// assembled `ARecv`/`BRecv`), so a small slice costs no extra latency
/// or bandwidth — the largest divisor of `rows` no bigger than 8 keeps
/// the staging fragment tiny.
fn park_slice(rows: usize) -> usize {
    (1..=8usize.min(rows))
        .rev()
        .find(|h| rows.is_multiple_of(*h))
        .unwrap_or(1)
}

/// Shared-memory address map of a 3D kernel: `q²` A regions (one per
/// (layer, row)) and `q²` B regions (one per (layer, col)), plus parking.
pub fn smem_map(cfg: &KamiConfig, m: usize, n: usize, k: usize) -> SmemMap {
    let q = (cfg.warps as f64).cbrt().round() as usize;
    let (mi, ni, ks) = (m / q, n / q, k / (q * q));
    let prec = cfg.precision;
    let (_, a_park) = split_chunks(mi, cfg.smem_fraction);
    let (_, b_park) = split_chunks(ks, cfg.smem_fraction);
    SmemMap::new(
        q * q,
        tile_bytes(mi, ks, prec),
        q * q,
        tile_bytes(ks, ni, prec),
        tile_bytes(a_park, ks, prec) + tile_bytes(b_park, ni, prec),
    )
}

/// Build the 3D block kernel for `C = A·B`.
///
/// Preconditions (checked by [`KamiConfig::validate`]):
/// `∛p | m`, `∛p | n`, `∛p² | k`. The C buffer must be zero-initialized
/// (the cross-layer reduction accumulates into it).
#[allow(clippy::too_many_arguments)]
pub fn build_kernel(
    cfg: &KamiConfig,
    m: usize,
    n: usize,
    k: usize,
    a_buf: BufferId,
    b_buf: BufferId,
    c_buf: BufferId,
    c_prec: Precision,
) -> BlockKernel {
    let q = (cfg.warps as f64).cbrt().round() as usize;
    let (mi, ni) = (m / q, n / q);
    let kq = k / q; // one layer's k-chunk
    let ks = k / (q * q); // one shard's k extent
    let prec = cfg.precision;
    let map = smem_map(cfg, m, n, k);
    let (a_reg_rows, a_park_rows) = split_chunks(mi, cfg.smem_fraction);
    let (b_reg_rows, b_park_rows) = split_chunks(ks, cfg.smem_fraction);
    let a_park_bytes = tile_bytes(a_park_rows, ks, prec);
    let b_park_bytes = tile_bytes(b_park_rows, ni, prec);

    BlockKernel::spmd(cfg.warps, |i, w| {
        let (l, r, c) = cube_pos(i, q);
        // Global coordinates of this warp's shards.
        let a_row0 = r * mi;
        let a_col0 = l * kq + c * ks;
        let b_row0 = l * kq + r * ks;
        let b_col0 = c * ni;

        let a_slice = park_slice(a_park_rows.max(1));
        let b_slice = park_slice(b_park_rows.max(1));
        let a_reg = w.frag("Ai", a_reg_rows, ks, prec);
        let a_stage = (a_park_rows > 0).then(|| w.frag("AiStage", a_slice, ks, prec));
        let b_reg = w.frag("Bi", b_reg_rows, ni, prec);
        let b_stage = (b_park_rows > 0).then(|| w.frag("BiStage", b_slice, ni, prec));
        let a_recv = w.frag("ARecv", mi, ks, prec);
        let b_recv = w.frag("BRecv", ks, ni, prec);
        let c_i = w.frag("Ci", mi, ni, c_prec);
        let a_slice_bytes = tile_bytes(a_slice, ks, prec);
        let b_slice_bytes = tile_bytes(b_slice, ni, prec);

        // GMem2Reg (line 2) with §4.7 parking of leading shard rows,
        // streamed through slice-high staging fragments.
        if let Some(a_stage) = a_stage {
            for s in 0..a_park_rows / a_slice {
                w.global_load(a_stage, a_buf, a_row0 + s * a_slice, a_col0);
                w.shared_store(a_stage, map.park_addr(i, s * a_slice_bytes));
            }
        }
        w.global_load(a_reg, a_buf, a_row0 + a_park_rows, a_col0);
        if let Some(b_stage) = b_stage {
            for s in 0..b_park_rows / b_slice {
                w.global_load(b_stage, b_buf, b_row0 + s * b_slice, b_col0);
                w.shared_store(b_stage, map.park_addr(i, a_park_bytes + s * b_slice_bytes));
            }
        }
        w.global_load(b_reg, b_buf, b_row0 + b_park_rows, b_col0);
        w.zero_acc(c_i);

        // ∛p stages (lines 4-17), every layer's grid concurrently.
        let a_region = l * q + r;
        let b_region = l * q + c;
        for z in 0..q {
            let send_a = c == z;
            let send_b = r == z;
            if send_a {
                if let Some(a_stage) = a_stage {
                    for s in 0..a_park_rows / a_slice {
                        w.shared_load(a_stage, map.park_addr(i, s * a_slice_bytes));
                        w.shared_store(a_stage, map.a_addr(a_region) + s * a_slice_bytes);
                    }
                    w.shared_store(a_reg, map.a_addr(a_region) + a_park_bytes);
                    w.shared_load(a_recv, map.a_addr(a_region));
                } else {
                    w.shared_store(a_reg, map.a_addr(a_region));
                    w.reg_copy(a_recv, a_reg);
                }
            }
            if send_b {
                if let Some(b_stage) = b_stage {
                    for s in 0..b_park_rows / b_slice {
                        w.shared_load(b_stage, map.park_addr(i, a_park_bytes + s * b_slice_bytes));
                        w.shared_store(b_stage, map.b_addr(b_region) + s * b_slice_bytes);
                    }
                    w.shared_store(b_reg, map.b_addr(b_region) + b_park_bytes);
                    w.shared_load(b_recv, map.b_addr(b_region));
                } else {
                    w.shared_store(b_reg, map.b_addr(b_region));
                    w.reg_copy(b_recv, b_reg);
                }
            }
            w.barrier();
            if !send_a {
                w.shared_load(a_recv, map.a_addr(a_region));
            }
            if !send_b {
                w.shared_load(b_recv, map.b_addr(b_region));
            }
            w.barrier();
            w.mma(c_i, a_recv, b_recv);
        }

        // Cross-layer aggregation (lines 18-19): q warps accumulate their
        // layer partials into the same C block.
        w.global_accumulate(c_i, c_buf, r * mi, c * ni);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algo;
    use kami_gpu_sim::{device::gh200, Engine, GlobalMemory, Matrix};

    fn run_3d(
        n: usize,
        warps: usize,
        prec: Precision,
        fraction: f64,
    ) -> (Matrix, kami_gpu_sim::ExecutionReport) {
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::ThreeD, prec)
            .with_warps(warps)
            .with_smem_fraction(fraction);
        cfg.validate(&dev, n, n, n).unwrap();
        let a = Matrix::seeded_uniform(n, n, 41);
        let b = Matrix::seeded_uniform(n, n, 42);
        let mut gmem = GlobalMemory::new();
        let ab = gmem.upload("A", &a, prec);
        let bb = gmem.upload("B", &b, prec);
        let acc = prec.accumulator();
        let cb = gmem.alloc_zeroed("C", n, n, acc);
        let kern = build_kernel(&cfg, n, n, n, ab, bb, cb, acc);
        let rep = Engine::new(&dev).run(&kern, &mut gmem).unwrap();
        (gmem.download(cb), rep)
    }

    fn reference(n: usize, prec: Precision) -> Matrix {
        let a = Matrix::seeded_uniform(n, n, 41).quantized(prec);
        let b = Matrix::seeded_uniform(n, n, 42).quantized(prec);
        Matrix::from_fn(n, n, |i, j| {
            let mut s = 0.0;
            for l in 0..n {
                s += a[(i, l)] * b[(l, j)];
            }
            s
        })
    }

    #[test]
    fn fp64_matches_reference() {
        let (c, _) = run_3d(16, 8, Precision::Fp64, 0.0);
        // FP64 accumulation reordering across layers: tiny tolerance.
        assert!(c.max_abs_diff(&reference(16, Precision::Fp64)) < 1e-12);
    }

    #[test]
    fn fp16_close_to_reference() {
        let n = 32;
        let (c, _) = run_3d(n, 8, Precision::Fp16, 0.0);
        let err = c.rel_frobenius_error(&reference(n, Precision::Fp16));
        assert!(err < 1e-3, "rel err {err}");
    }

    #[test]
    fn twenty_seven_warp_cube() {
        let n = 36; // q=3: needs 3 | m,n and 9 | k
        let (c, _) = run_3d(n, 27, Precision::Fp64, 0.0);
        assert!(c.max_abs_diff(&reference(n, Precision::Fp64)) < 1e-12);
    }

    #[test]
    fn parking_preserves_results() {
        let (c0, r0) = run_3d(32, 8, Precision::Fp16, 0.0);
        let (c5, r5) = run_3d(32, 8, Precision::Fp16, 0.5);
        assert_eq!(c0.max_abs_diff(&c5), 0.0);
        assert!(r5.comm_volume() > r0.comm_volume());
    }

    #[test]
    fn total_comm_volume_matches_formula_9() {
        // Per-stage V_cm = (mk + kn)·s_e / 1 (Formula 9), over ∛p stages:
        // all of A and B written once, each read (∛p − 1) times.
        let n = 32;
        let q = 2;
        let (_, rep) = run_3d(n, q * q * q, Precision::Fp16, 0.0);
        let ab_bytes = (2 * n * n * Precision::Fp16.size_bytes()) as u64;
        assert_eq!(rep.smem_bytes_written, ab_bytes);
        assert_eq!(rep.smem_bytes_read, ab_bytes * (q as u64 - 1));
    }

    #[test]
    fn three_d_communicates_less_than_2d_at_scale() {
        // p = 64 warps would exceed typical block budgets, so compare the
        // *model*: with p warps, 2D reads scale with (√p−1), 3D with
        // (∛p−1). At p = 8 warps, 2D reads (√8−1)≈1.83x written volume
        // vs 3D's (∛8−1) = 1x.
        let n = 32;
        let (_, r3) = run_3d(n, 8, Precision::Fp16, 0.0);
        let dev = gh200();
        let cfg2 = KamiConfig::new(Algo::TwoD, Precision::Fp16).with_warps(4);
        let a = Matrix::seeded_uniform(n, n, 41);
        let b = Matrix::seeded_uniform(n, n, 42);
        let mut gmem = GlobalMemory::new();
        let abuf = gmem.upload("A", &a, Precision::Fp16);
        let bbuf = gmem.upload("B", &b, Precision::Fp16);
        let cbuf = gmem.alloc_zeroed("C", n, n, Precision::Fp32);
        let kern = crate::algo2d::build_kernel(&cfg2, n, n, n, abuf, bbuf, cbuf, Precision::Fp32);
        let r2 = Engine::new(&dev).run(&kern, &mut gmem).unwrap();
        // Same write volume (A and B once each)...
        assert_eq!(r2.smem_bytes_written, r3.smem_bytes_written);
        // ...and at q_2d = 2 vs q_3d = 2, identical reads; the 3D saving
        // appears in stage *count*: 2 stages of latency instead of 2 — and
        // in general (∛p−1) < (√p−1). Here just check reads are not worse.
        assert!(r3.smem_bytes_read <= r2.smem_bytes_read);
    }

    #[test]
    fn rectangular_problem() {
        let (m, n, k, q) = (16, 24, 32, 2);
        let prec = Precision::Fp64;
        let dev = gh200();
        let cfg = KamiConfig::new(Algo::ThreeD, prec).with_warps(q * q * q);
        cfg.validate(&dev, m, n, k).unwrap();
        let a = Matrix::seeded_uniform(m, k, 51);
        let b = Matrix::seeded_uniform(k, n, 52);
        let mut gmem = GlobalMemory::new();
        let ab = gmem.upload("A", &a, prec);
        let bb = gmem.upload("B", &b, prec);
        let cb = gmem.alloc_zeroed("C", m, n, prec);
        let kern = build_kernel(&cfg, m, n, k, ab, bb, cb, prec);
        Engine::new(&dev).run(&kern, &mut gmem).unwrap();
        let c = gmem.download(cb);
        let want = Matrix::from_fn(m, n, |i, j| {
            let mut s = 0.0;
            for l in 0..k {
                s += a[(i, l)] * b[(l, j)];
            }
            s
        });
        assert!(c.max_abs_diff(&want) < 1e-12);
    }
}
