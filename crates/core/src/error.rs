//! Errors of the KAMI block-GEMM layer.

use kami_gpu_sim::SimError;
use std::fmt;

/// Error building or running a KAMI GEMM.
#[derive(Debug, Clone, PartialEq)]
pub enum KamiError {
    /// Warp count incompatible with the algorithm (2D needs a perfect
    /// square, 3D a perfect cube, all need ≥ 1).
    BadWarpCount { algo: &'static str, warps: usize },
    /// Matrix dimensions not divisible by the partition grid.
    Indivisible { detail: String },
    /// Operand shapes inconsistent (A is m×k, B must be k×n).
    ShapeMismatch { detail: String },
    /// `smem_fraction` outside `[0, 1)`.
    BadSliceFraction { fraction: f64 },
    /// The device cannot run this configuration (no tensor path, too many
    /// warps, ...).
    Unsupported { detail: String },
    /// A [`crate::request::GemmRequest`] was run without a device
    /// attached (see `GemmRequest::on_device`).
    MissingDevice,
    /// Error surfaced by the simulator while executing the kernel.
    Sim(SimError),
}

impl fmt::Display for KamiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KamiError::BadWarpCount { algo, warps } => {
                write!(f, "{algo} cannot run with {warps} warps")
            }
            KamiError::Indivisible { detail } => write!(f, "indivisible partition: {detail}"),
            KamiError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            KamiError::BadSliceFraction { fraction } => {
                write!(f, "smem_fraction {fraction} outside [0, 1)")
            }
            KamiError::Unsupported { detail } => write!(f, "unsupported configuration: {detail}"),
            KamiError::MissingDevice => {
                write!(
                    f,
                    "request has no device attached (use on_device or execute)"
                )
            }
            KamiError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for KamiError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KamiError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for KamiError {
    fn from(e: SimError) -> Self {
        KamiError::Sim(e)
    }
}
