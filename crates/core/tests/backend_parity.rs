//! Property-based backend conformance: for every request the workspace
//! can express, `NativeBackend` must be **bit-identical** to
//! `SimBackend` — same `C` down to the last bit when the request
//! succeeds, same typed error when it fails. The properties sweep
//! precisions, algorithms, alpha/beta scaling, fused epilogues, and the
//! tall-skinny k-split path (whose pairwise-tree partial merge is the
//! most order-sensitive accumulation in the codebase).

use kami_core::{Algo, Epilogue, GemmRequest, KamiError};
use kami_gpu_sim::{device::gh200, BackendKind, Matrix, Precision};
use proptest::prelude::*;

/// Run the same request on both backends; compare bits or errors.
fn assert_backend_parity(req: GemmRequest) {
    let dev = gh200();
    let sim = req.clone().backend(BackendKind::Sim).execute_single(&dev);
    let nat = req.backend(BackendKind::Native).execute_single(&dev);
    match (sim, nat) {
        (Ok(s), Ok(n)) => {
            assert_eq!(
                s.c.as_slice(),
                n.c.as_slice(),
                "native result diverges from sim"
            );
            assert_eq!(
                s.report.cycles, n.report.cycles,
                "backends must not change cost accounting"
            );
        }
        (s, n) => {
            let fmt = |r: &Result<_, KamiError>| match r {
                Ok(_) => "Ok".to_string(),
                Err(e) => format!("{e:?}"),
            };
            assert_eq!(fmt(&s), fmt(&n), "backends disagree on the error");
        }
    }
}

const PRECISIONS: [Precision; 5] = [
    Precision::Fp64,
    Precision::Tf32,
    Precision::Fp16,
    Precision::Bf16,
    Precision::Fp8E4M3,
];

fn epilogue(idx: usize, n: usize) -> Epilogue {
    match idx {
        0 => Epilogue::Bias(Matrix::seeded_uniform(1, n, 99)),
        1 => Epilogue::Relu,
        2 => Epilogue::Gelu,
        _ => Epilogue::SoftmaxScale(0.125),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Plain products across every algorithm and precision, including
    /// combinations the device rejects (same typed error either way).
    #[test]
    fn plain_gemm_parity(
        algo_idx in 0usize..3,
        prec_idx in 0usize..5,
        blocks in 1usize..4,
        seed in 0u64..1000,
    ) {
        let algo = Algo::ALL[algo_idx];
        let prec = PRECISIONS[prec_idx];
        let n = 32 * blocks;
        let a = Matrix::seeded_uniform(n, n, seed);
        let b = Matrix::seeded_uniform(n, n, seed + 1);
        assert_backend_parity(
            GemmRequest::gemm(a, b).precision(prec).algo(algo),
        );
    }

    /// BLAS-scaled products: `C = alpha·A·B + beta·C0`.
    #[test]
    fn scaled_gemm_parity(
        algo_idx in 0usize..3,
        prec_idx in 0usize..3,
        alpha in -2.0f64..2.0,
        beta in -2.0f64..2.0,
        seed in 0u64..1000,
    ) {
        let algo = Algo::ALL[algo_idx];
        let prec = [Precision::Fp64, Precision::Tf32, Precision::Fp16][prec_idx];
        let a = Matrix::seeded_uniform(32, 32, seed);
        let b = Matrix::seeded_uniform(32, 32, seed + 1);
        let c0 = Matrix::seeded_uniform(32, 32, seed + 2);
        assert_backend_parity(
            GemmRequest::gemm(a, b)
                .precision(prec)
                .algo(algo)
                .scaled(alpha, beta, c0),
        );
    }

    /// Fused epilogues inside the kernel's store phase (softmax is
    /// layout-restricted — the rejection must match too).
    #[test]
    fn fused_epilogue_parity(
        algo_idx in 0usize..3,
        epi_idx in 0usize..4,
        prec_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let algo = Algo::ALL[algo_idx];
        let prec = [Precision::Fp64, Precision::Tf32, Precision::Fp16][prec_idx];
        let a = Matrix::seeded_uniform(32, 32, seed);
        let b = Matrix::seeded_uniform(32, 32, seed + 1);
        assert_backend_parity(
            GemmRequest::gemm(a, b)
                .precision(prec)
                .algo(algo)
                .with_epilogue(epilogue(epi_idx, 32)),
        );
    }
}

proptest! {
    // The skinny path multiplies a long k in chunks and merges partials
    // through a pairwise tree — fewer, heavier cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Tall-skinny k-split requests (auto-routed): chunked MMAs plus the
    /// pairwise-tree partial merge must be order-identical on both
    /// backends, with and without a fused epilogue.
    #[test]
    fn tall_skinny_k_split_parity(
        k_chunks in 16usize..21,
        epi in 0usize..3, // none / relu / softmax
        seed in 0u64..100,
    ) {
        let k = 256 * k_chunks; // ≥ 4096 = SKINNY_K_MIN
        let a = Matrix::seeded_uniform(16, k, seed);
        let b = Matrix::seeded_uniform(k, 16, seed + 1);
        let mut req = GemmRequest::gemm_auto(a, b).precision(Precision::Fp16);
        req = match epi {
            0 => req,
            1 => req.with_epilogue(Epilogue::Relu),
            _ => req.with_epilogue(Epilogue::SoftmaxScale(0.25)),
        };
        assert!(req.is_skinny(), "case must exercise the k-split path");
        assert_backend_parity(req);
    }
}
