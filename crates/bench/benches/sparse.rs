//! Criterion benches over the sparse kernels (Fig 13's workload):
//! SpMM and SpGEMM simulation time across densities and block orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kami_core::{Algo, KamiConfig};
use kami_gpu_sim::{device, Matrix, Precision};
use kami_sparse::{gen::random_block_sparse, spgemm::spgemm, spmm::spmm, BlockOrder};
use std::hint::black_box;

fn bench_spmm(c: &mut Criterion) {
    let dev = device::gh200();
    let mut g = c.benchmark_group("spmm_fp16_64");
    for density in [0.25, 0.5, 1.0] {
        let a = random_block_sparse(64, 64, 16, density, BlockOrder::ZMorton, 3);
        let b = Matrix::seeded_uniform(64, 64, 4);
        let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("density_{density}")),
            &density,
            |bench, _| bench.iter(|| spmm(&dev, &cfg, black_box(&a), black_box(&b)).unwrap()),
        );
    }
    g.finish();
}

fn bench_spgemm(c: &mut Criterion) {
    let dev = device::gh200();
    let mut g = c.benchmark_group("spgemm_fp16_64");
    for algo in [Algo::OneD, Algo::TwoD] {
        let order = if algo == Algo::OneD {
            BlockOrder::RowMajor
        } else {
            BlockOrder::ZMorton
        };
        let a = random_block_sparse(64, 64, 16, 0.5, order, 5);
        let b = random_block_sparse(64, 64, 16, 0.5, order, 6);
        let cfg = KamiConfig::new(algo, Precision::Fp16);
        g.bench_function(algo.label(), |bench| {
            bench.iter(|| spgemm(&dev, &cfg, black_box(&a), black_box(&b)).unwrap())
        });
    }
    g.finish();
}

fn bench_symbolic(c: &mut Criterion) {
    let a = random_block_sparse(256, 256, 16, 0.5, BlockOrder::RowMajor, 7);
    let b = random_block_sparse(256, 256, 16, 0.5, BlockOrder::RowMajor, 8);
    c.bench_function("spgemm_symbolic_256", |bench| {
        bench.iter(|| kami_sparse::symbolic(black_box(&a), black_box(&b)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmm, bench_spgemm, bench_symbolic
}
criterion_main!(benches);
