//! Ablation benches for the design choices DESIGN.md calls out. Each
//! group prints the *simulated device cycles* of the ablated variants to
//! stderr once, then times the harness; the cycle deltas are the
//! interesting output.
//!
//! 1. slice ratio (register/shared-memory cooperation, §4.7 / Fig 10);
//! 2. serial vs overlap cost composition (§4.7 / §5.6.2);
//! 3. Z-Morton vs row-major sparse layout (Fig 7);
//! 4. algorithm choice vs warp count (Fig 9's mechanism).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kami_core::{gemm, gemm_auto, Algo, KamiConfig};
use kami_gpu_sim::{device, CostConfig, Matrix, Precision};
use kami_sparse::{gen::random_block_sparse, spmm::spmm, BlockOrder};
use std::hint::black_box;
use std::sync::Once;

static REPORT: Once = Once::new();

fn report_cycles() {
    REPORT.call_once(|| {
        let dev = device::gh200();
        let a = Matrix::seeded_uniform(64, 64, 1);
        let b = Matrix::seeded_uniform(64, 64, 2);
        eprintln!("\n--- ablation: simulated cycles (64x64x64 FP16, GH200) ---");
        for f in [0.0, 0.25, 0.5, 0.75] {
            let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_smem_fraction(f);
            if let Ok(r) = gemm(&dev, &cfg, &a, &b) {
                eprintln!(
                    "slice ratio {f:4}: {:7.0} cycles ({} regs/thread)",
                    r.report.cycles,
                    r.report.max_registers().measured_regs
                );
            }
        }
        for (label, cost) in [
            ("serial ", CostConfig::default()),
            ("overlap", CostConfig::overlap()),
        ] {
            let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_cost(cost);
            if let Ok(r) = gemm(&dev, &cfg, &a, &b) {
                eprintln!(
                    "cost mode {label}: {:7.0} on-chip cycles",
                    r.report.on_chip_cycles()
                );
            }
        }
        for p in [1usize, 2, 4, 8] {
            let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(p);
            if let Ok(r) = gemm_auto(&dev, &cfg, &a, &b) {
                eprintln!(
                    "1D p={p}: {:7.0} cycles (comm {:5.0}, compute {:5.0})",
                    r.report.cycles, r.report.totals.comm, r.report.totals.compute
                );
            }
        }
        eprintln!("---------------------------------------------------------\n");
    });
}

fn bench_slice_ratio(c: &mut Criterion) {
    report_cycles();
    let dev = device::rtx5090();
    let a = Matrix::seeded_uniform(64, 64, 1);
    let b = Matrix::seeded_uniform(64, 64, 2);
    let mut g = c.benchmark_group("ablation_slice_ratio_fp16_64");
    for f in [0.0, 0.5] {
        let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16).with_smem_fraction(f);
        g.bench_with_input(BenchmarkId::from_parameter(f), &f, |bench, _| {
            bench.iter(|| gemm(&dev, &cfg, black_box(&a), black_box(&b)).unwrap())
        });
    }
    g.finish();
}

fn bench_cost_mode(c: &mut Criterion) {
    let dev = device::gh200();
    let a = Matrix::seeded_uniform(64, 64, 1);
    let b = Matrix::seeded_uniform(64, 64, 2);
    let mut g = c.benchmark_group("ablation_cost_mode");
    for (label, cost) in [
        ("serial", CostConfig::default()),
        ("overlap", CostConfig::overlap()),
    ] {
        let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16).with_cost(cost);
        g.bench_function(label, |bench| {
            bench.iter(|| gemm(&dev, &cfg, black_box(&a), black_box(&b)).unwrap())
        });
    }
    g.finish();
}

fn bench_sparse_layout(c: &mut Criterion) {
    let dev = device::gh200();
    let b = Matrix::seeded_uniform(128, 128, 4);
    let mut g = c.benchmark_group("ablation_sparse_layout_128");
    for order in [BlockOrder::RowMajor, BlockOrder::ZMorton] {
        let a = random_block_sparse(128, 128, 16, 0.5, order, 3);
        let cfg = KamiConfig::new(Algo::TwoD, Precision::Fp16);
        g.bench_function(format!("{order:?}"), |bench| {
            bench.iter(|| spmm(&dev, &cfg, black_box(&a), black_box(&b)).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_slice_ratio, bench_cost_mode, bench_sparse_layout
}
criterion_main!(benches);
