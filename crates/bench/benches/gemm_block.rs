//! Criterion benches over the block-level GEMM kernels (Fig 8's
//! workload): wall-time of the full functional simulation per strategy.
//! Regressions here mean the *simulator or kernel builders* got slower;
//! the simulated cycle counts themselves are asserted in tests and
//! printed by the `fig08_square_gemm` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kami_baselines::{cublasdx, cutlass};
use kami_core::{gemm_auto, Algo, KamiConfig};
use kami_gpu_sim::{device, Matrix, Precision};
use std::hint::black_box;

fn bench_kami_algorithms(c: &mut Criterion) {
    let dev = device::gh200();
    let mut g = c.benchmark_group("kami_block_gemm_fp16");
    for n in [16usize, 32, 64, 128] {
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        for algo in Algo::ALL {
            let cfg = KamiConfig::new(algo, Precision::Fp16);
            g.bench_with_input(BenchmarkId::new(algo.label(), n), &n, |bench, _| {
                bench.iter(|| gemm_auto(&dev, &cfg, black_box(&a), black_box(&b)).unwrap())
            });
        }
    }
    g.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let dev = device::gh200();
    let mut g = c.benchmark_group("baseline_block_gemm_fp16");
    for n in [16usize, 64] {
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        g.bench_with_input(BenchmarkId::new("cublasdx", n), &n, |bench, _| {
            bench.iter(|| {
                cublasdx::gemm(&dev, Precision::Fp16, 4, black_box(&a), black_box(&b)).unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("cutlass", n), &n, |bench, _| {
            bench.iter(|| {
                cutlass::gemm(&dev, Precision::Fp16, black_box(&a), black_box(&b)).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_precisions(c: &mut Criterion) {
    let dev = device::gh200();
    let mut g = c.benchmark_group("kami_1d_precisions_64");
    let a = Matrix::seeded_uniform(64, 64, 1);
    let b = Matrix::seeded_uniform(64, 64, 2);
    for prec in [Precision::Fp64, Precision::Fp16] {
        let cfg = KamiConfig::new(Algo::OneD, prec);
        g.bench_function(prec.label(), |bench| {
            bench.iter(|| gemm_auto(&dev, &cfg, black_box(&a), black_box(&b)).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kami_algorithms, bench_baselines, bench_precisions
}
criterion_main!(benches);
