//! Criterion benches over the batched interface (Fig 12's workload):
//! host wall-time of the functionally-parallel batch (rayon fan-out of
//! independent block simulations) and of the cost-only estimator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kami_core::{batched_gemm, estimate_batched, Algo, KamiConfig};
use kami_gpu_sim::{device, Matrix, Precision};
use std::hint::black_box;

fn bench_functional_batch(c: &mut Criterion) {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
    let mut g = c.benchmark_group("batched_functional_fp64_16cubed");
    for batch in [8usize, 64] {
        let pairs: Vec<_> = (0..batch)
            .map(|i| {
                (
                    Matrix::seeded_uniform(16, 16, i as u64),
                    Matrix::seeded_uniform(16, 16, 1000 + i as u64),
                )
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |bench, _| {
            bench.iter(|| batched_gemm(&dev, &cfg, black_box(&pairs)).unwrap())
        });
    }
    g.finish();
}

fn bench_estimator(c: &mut Criterion) {
    let dev = device::gh200();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp64);
    c.bench_function("batched_estimate_fp64_64cubed_batch10000", |bench| {
        bench.iter(|| estimate_batched(&dev, &cfg, 64, 64, 64, black_box(10000)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_functional_batch, bench_estimator
}
criterion_main!(benches);
