//! Shape assertions on the experiment runners: the qualitative claims
//! EXPERIMENTS.md records must hold on every run (the runners are
//! deterministic, so these are exact regression tests of the paper's
//! reproduced findings).

use kami_bench::{fig14_registers, fig9_block_size, tab_onchip_usage};

#[test]
fn fig9_block_size_shape() {
    let t = fig9_block_size();
    let get = |label: &str, i: usize| t.series_by_label(label).unwrap().values[i].unwrap();
    // x = [64, 128, 256, 512, 1024] threads.
    // 2D at 64 threads lands near half of 1D (paper: 54.22%).
    let ratio = get("KAMI-2D", 0) / get("KAMI-1D", 0);
    assert!(
        (0.35..0.75).contains(&ratio),
        "2D/1D at 64 threads = {ratio:.2}"
    );
    // 3D is flat-low until 256 threads, then jumps.
    let jump = get("KAMI-3D", 2) / get("KAMI-3D", 1);
    assert!(jump > 2.0, "3D jump at 256 threads = {jump:.2}");
    // 1D robust: its worst point is within 2x of its best.
    let one_d: Vec<f64> = (0..t.x.len()).map(|i| get("KAMI-1D", i)).collect();
    let (min, max) = one_d
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    assert!(max / min < 2.0, "1D spread {:.2}", max / min);
}

#[test]
fn fig14_actual_below_theoretical_everywhere() {
    let t = fig14_registers();
    for algo in ["KAMI-1D", "KAMI-2D", "KAMI-3D"] {
        let theo = t.series_by_label(&format!("{algo} theory")).unwrap();
        let act = t.series_by_label(&format!("{algo} actual")).unwrap();
        for (i, (th, ac)) in theo.values.iter().zip(&act.values).enumerate() {
            if let (Some(th), Some(ac)) = (th, ac) {
                assert!(ac < th, "{algo} k-index {i}: actual {ac} !< theory {th}");
            }
        }
        // Overall ratio in the paper's band (60-90%).
        let (avg, _) = t
            .speedup(&format!("{algo} actual"), &format!("{algo} theory"))
            .unwrap();
        assert!((0.5..0.95).contains(&avg), "{algo} reuse ratio {avg:.2}");
    }
}

#[test]
fn onchip_usage_ordering() {
    // §5.6.1: KAMI's shared-memory footprint sits far below the staged
    // baselines'; its register usage is in the same band.
    let t = tab_onchip_usage();
    let smem = |label: &str| t.series_by_label(label).unwrap().values[1].unwrap();
    let kami_max = ["KAMI-1D", "KAMI-2D", "KAMI-3D"]
        .iter()
        .map(|l| smem(l))
        .fold(f64::MIN, f64::max);
    assert!(
        kami_max <= 8.0,
        "KAMI smem {kami_max:.1} KB should be <= 8 KB"
    );
    assert!(smem("cuBLASDx") > kami_max);
    assert!(smem("CUTLASS") > smem("cuBLASDx"));
}
