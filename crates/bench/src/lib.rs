//! # kami-bench
//!
//! Benchmark harness regenerating **every table and figure** of the
//! KAMI paper's evaluation (§5). See `DESIGN.md` for the experiment
//! index. Each `src/bin/figNN_*.rs` binary prints one figure's data;
//! `all_experiments` runs the lot and emits machine-readable JSON.

pub mod runners;
pub mod select;
pub mod series;

pub use runners::*;
pub use select::{paper_orders, square_config, square_warps};
pub use series::{Series, Table};
