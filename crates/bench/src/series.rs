//! Result tables for the experiment harness: a labelled set of series
//! over a shared x-axis, with aligned text rendering, speedup summaries
//! (the §5.2.1-style "avg/max over baseline" lines), and JSON export.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One experiment table: `x[i]` (e.g. matrix order) against one value
/// per series (e.g. TFLOPS per strategy). `None` marks configurations a
/// strategy cannot run (like cuBLASDx beyond its shared-memory limit).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub x: Vec<usize>,
    pub series: Vec<Series>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    pub label: String,
    pub values: Vec<Option<f64>>,
}

impl Table {
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        x: Vec<usize>,
    ) -> Self {
        Table {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            x,
            series: Vec::new(),
        }
    }

    pub fn push_series(&mut self, label: impl Into<String>, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.x.len(), "series length mismatch");
        self.series.push(Series {
            label: label.into(),
            values,
        });
    }

    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Speedup of series `a` over series `b` at every x where both ran:
    /// returns `(average, maximum)`.
    pub fn speedup(&self, a: &str, b: &str) -> Option<(f64, f64)> {
        let sa = self.series_by_label(a)?;
        let sb = self.series_by_label(b)?;
        let ratios: Vec<f64> = sa
            .values
            .iter()
            .zip(&sb.values)
            .filter_map(|(x, y)| match (x, y) {
                (Some(x), Some(y)) if *y > 0.0 => Some(x / y),
                _ => None,
            })
            .collect();
        if ratios.is_empty() {
            return None;
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        let max = ratios.iter().copied().fold(f64::MIN, f64::max);
        Some((avg, max))
    }

    /// Aligned text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let _ = writeln!(out, "   ({} vs {})", self.y_label, self.x_label);
        let width = 14usize;
        let _ = write!(out, "{:>8}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>width$}", s.label);
        }
        let _ = writeln!(out);
        for (i, &x) in self.x.iter().enumerate() {
            let _ = write!(out, "{x:>8}");
            for s in &self.series {
                match s.values[i] {
                    Some(v) if v.abs() >= 1000.0 => {
                        let _ = write!(out, "{v:>width$.0}");
                    }
                    Some(v) => {
                        let _ = write!(out, "{v:>width$.2}");
                    }
                    None => {
                        let _ = write!(out, "{:>width$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// §5.2.1-style summary lines: average and max speedup of every
    /// `kami` series over every `baseline` series.
    pub fn summary(&self, kami_labels: &[&str], baseline_labels: &[&str]) -> String {
        let mut out = String::new();
        for k in kami_labels {
            for b in baseline_labels {
                if let Some((avg, max)) = self.speedup(k, b) {
                    let _ = writeln!(out, "{k} over {b}: {avg:.2}x average (up to {max:.2}x)");
                }
            }
        }
        out
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T", "n", "TFLOPS", vec![16, 32]);
        t.push_series("KAMI-1D", vec![Some(10.0), Some(20.0)]);
        t.push_series("base", vec![Some(2.0), Some(10.0)]);
        t.push_series("gappy", vec![None, Some(5.0)]);
        t
    }

    #[test]
    fn speedup_avg_and_max() {
        let t = sample();
        let (avg, max) = t.speedup("KAMI-1D", "base").unwrap();
        assert!((avg - 3.5).abs() < 1e-12);
        assert!((max - 5.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_skips_missing_points() {
        let t = sample();
        let (avg, max) = t.speedup("KAMI-1D", "gappy").unwrap();
        assert_eq!(avg, 4.0);
        assert_eq!(max, 4.0);
    }

    #[test]
    fn render_contains_all_series() {
        let r = sample().render();
        assert!(r.contains("KAMI-1D"));
        assert!(r.contains("gappy"));
        assert!(r.contains('-'));
    }

    #[test]
    fn json_roundtrip() {
        let t = sample();
        let parsed: Table = serde_json::from_str(&t.to_json()).unwrap();
        assert_eq!(parsed.x, t.x);
        assert_eq!(parsed.series.len(), 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let mut t = Table::new("T", "n", "y", vec![1, 2, 3]);
        t.push_series("s", vec![Some(1.0)]);
    }
}
