//! One runner per table/figure of the paper's evaluation (§5). Each
//! returns a [`Table`] so binaries print it, criterion benches time its
//! kernels, and integration tests assert its shape.

use crate::select::{paper_orders, square_config, square_warps};
use crate::series::Table;
use kami_baselines::{cublas, cublasdx, cutlass, magma, syclbench};
use kami_core::model::{cycles as model_cycles, registers as model_regs, roofline};
use kami_core::{estimate_batched, Algo, KamiConfig, KamiError};
use kami_gpu_sim::{device, CostConfig, DeviceSpec, Engine, GlobalMemory, Matrix, Precision};
use kami_sparse::{gen, spgemm::spgemm, spmm::spmm, BlockOrder};

/// Host-side overhead of one KAMI batched launch, in microseconds
/// (a plain kernel launch — no pointer-array marshalling).
pub const KAMI_LAUNCH_US: f64 = 3.0;

fn seeded_pair(n: usize, k: usize) -> (Matrix, Matrix) {
    (
        Matrix::seeded_uniform(n, k, 0xA11CE),
        Matrix::seeded_uniform(k, n, 0xB0B),
    )
}

/// Warp-count candidates for a square order-`n` problem (grid-valid
/// divisors, largest first).
fn warp_candidates(algo: Algo, n: usize) -> Vec<usize> {
    match algo {
        Algo::OneD => (1..=16usize)
            .rev()
            .filter(|p| n.is_multiple_of(*p))
            .collect(),
        Algo::TwoD => (1..=4usize)
            .rev()
            .filter(|&q| n.is_multiple_of(q))
            .map(|q| q * q)
            .collect(),
        Algo::ThreeD => (1..=3usize)
            .rev()
            .filter(|&q| n.is_multiple_of(q) && n.is_multiple_of(q * q))
            .map(|q| q * q * q)
            .collect(),
    }
}

/// KAMI block TFLOPS at one size — the best over the valid warp
/// candidates (the preset auto-tuning role, §5.2.5), starting from the
/// natural preset. `None` if no configuration runs on the device.
fn kami_point(dev: &DeviceSpec, algo: Algo, prec: Precision, n: usize) -> Option<f64> {
    let preset = square_config(algo, prec, n);
    let (a, b) = seeded_pair(n, n);
    let mut best = kami_core::gemm_auto(dev, &preset, &a, &b)
        .ok()
        .map(|r| r.block_tflops(dev));
    for p in warp_candidates(algo, n) {
        if p == preset.warps {
            continue;
        }
        let cfg = KamiConfig::new(algo, prec).with_warps(p);
        if let Ok(r) = kami_core::gemm_auto(dev, &cfg, &a, &b) {
            let t = r.block_tflops(dev);
            best = Some(best.map_or(t, |b: f64| b.max(t)));
        }
    }
    best
}

/// cuBLASDx-style point: best over the warp layouts the library's
/// dispatcher would consider. `None` when no layout fits (the paper's
/// shared-memory capacity cliff).
fn cublasdx_point(dev: &DeviceSpec, prec: Precision, n: usize) -> Option<f64> {
    let (a, b) = seeded_pair(n, n);
    [2usize, 4, 6, 8]
        .iter()
        .filter(|&&p| n.is_multiple_of(p))
        .filter_map(|&p| {
            cublasdx::gemm(dev, prec, p, &a, &b)
                .ok()
                .map(|r| r.block_tflops(dev))
        })
        .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.max(t))))
}

/// Try several warp counts and keep the best throughput (the auto-tuning
/// role real libraries play); used where the natural preset is ambiguous
/// (low-rank shapes).
fn kami_best_of(
    dev: &DeviceSpec,
    algo: Algo,
    prec: Precision,
    a: &Matrix,
    b: &Matrix,
    candidates: &[usize],
) -> Option<f64> {
    candidates
        .iter()
        .filter_map(|&p| {
            let cfg = KamiConfig::new(algo, prec).with_warps(p);
            kami_core::gemm_auto(dev, &cfg, a, b)
                .ok()
                .map(|r| r.block_tflops(dev))
        })
        .fold(None, |best, t| Some(best.map_or(t, |b: f64| b.max(t))))
}

// ---------------------------------------------------------------- Fig 3

/// Fig 3 (left series): modelled cuBLAS device-level FP64 GEMM on GH200
/// across square orders 1–8192, against the roofline.
pub fn fig3_cublas_curve() -> Table {
    let dev = device::gh200();
    let sizes: Vec<usize> = vec![
        1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192,
    ];
    let mut t = Table::new(
        "Fig 3: cuBLAS FP64 device GEMM vs roofline (GH200)",
        "n",
        "GFLOPS",
        sizes.clone(),
    );
    let rl = roofline::Roofline::of(&dev, Precision::Fp64).expect("GH200 has FP64 tensor");
    t.push_series(
        "cuBLAS(model)",
        sizes
            .iter()
            .map(|&n| roofline::cublas_like_gflops(&dev, Precision::Fp64, n))
            .collect(),
    );
    t.push_series(
        "roofline",
        sizes
            .iter()
            .map(|&n| Some(rl.attainable(roofline::machine_balance(n, Precision::Fp64)) / 1e9))
            .collect(),
    );
    t
}

/// Fig 3 (right series): cuBLASDx-style block-level FP64 GEMM on GH200,
/// orders up to its shared-memory limit (~98 in the paper). `None` marks
/// capacity overflow — the same cliff the paper reports.
pub fn fig3_cublasdx_curve() -> Table {
    let dev = device::gh200();
    let sizes = vec![16, 32, 48, 64, 80, 96, 112, 128];
    let mut t = Table::new(
        "Fig 3: cuBLASDx block-level FP64 GEMM (GH200)",
        "n",
        "TFLOPS",
        sizes.clone(),
    );
    t.push_series(
        "cuBLASDx(sim)",
        sizes
            .iter()
            .map(|&n| cublasdx_point(&dev, Precision::Fp64, n))
            .collect(),
    );
    t
}

// ---------------------------------------------------------------- Fig 8

/// One Fig 8 panel: block-level square GEMM on `dev` at `prec`,
/// KAMI-1D/2D/3D vs whatever comparators exist on that platform.
pub fn fig8_panel(dev: &DeviceSpec, prec: Precision) -> Table {
    let sizes = paper_orders(prec);
    let mut t = Table::new(
        format!(
            "Fig 8: block-level {} square GEMM on {}",
            prec.label(),
            dev.name
        ),
        "n",
        "TFLOPS",
        sizes.clone(),
    );
    for algo in Algo::ALL {
        t.push_series(
            algo.label(),
            sizes
                .iter()
                .map(|&n| kami_point(dev, algo, prec, n))
                .collect(),
        );
    }
    match dev.vendor {
        kami_gpu_sim::Vendor::Nvidia => {
            t.push_series(
                "cuBLASDx",
                sizes
                    .iter()
                    .map(|&n| cublasdx_point(dev, prec, n))
                    .collect(),
            );
            t.push_series(
                "CUTLASS",
                sizes
                    .iter()
                    .map(|&n| {
                        let (a, b) = seeded_pair(n, n);
                        cutlass::gemm(dev, prec, &a, &b)
                            .ok()
                            .map(|r| r.block_tflops(dev))
                    })
                    .collect(),
            );
        }
        kami_gpu_sim::Vendor::Intel => {
            t.push_series(
                "SYCL-Bench",
                sizes
                    .iter()
                    .map(|&n| {
                        let (a, b) = seeded_pair(n, n);
                        let p = square_warps(Algo::OneD, n).min(4);
                        syclbench::gemm(dev, prec, p, &a, &b)
                            .ok()
                            .map(|r| r.block_tflops(dev))
                    })
                    .collect(),
            );
        }
        kami_gpu_sim::Vendor::Amd => {} // Fig 8(f): KAMI only
    }
    t
}

/// All seven Fig 8 panels in the paper's order.
pub fn fig8_all_panels() -> Vec<Table> {
    let gh = device::gh200();
    let rtx = device::rtx5090();
    let amd = device::amd_7900xtx();
    let intel = device::intel_max1100();
    vec![
        fig8_panel(&gh, Precision::Fp64),
        fig8_panel(&gh, Precision::Fp16),
        fig8_panel(&rtx, Precision::Tf32),
        fig8_panel(&rtx, Precision::Fp16),
        fig8_panel(&rtx, Precision::Fp8E4M3),
        fig8_panel(&amd, Precision::Fp16),
        fig8_panel(&intel, Precision::Fp16),
    ]
}

// ---------------------------------------------------------------- Fig 9

/// Fig 9: 64×64 FP16 GEMM on the 5090 as a function of threads per
/// block. Each algorithm uses the largest warp organisation that fits
/// the block, so small blocks strand tensor cores for 2D/3D.
pub fn fig9_block_size() -> Table {
    let dev = device::rtx5090();
    let prec = Precision::Fp16;
    let n = 64;
    let threads = vec![64, 128, 256, 512, 1024];
    let mut t = Table::new(
        "Fig 9: 64x64 FP16 GEMM vs block size (RTX 5090)",
        "threads",
        "TFLOPS",
        threads.clone(),
    );
    let (a, b) = seeded_pair(n, n);
    for algo in Algo::ALL {
        let vals = threads
            .iter()
            .map(|&th| {
                let avail = th / 32;
                // Best organisation that fits the block: the tuning a
                // library dispatcher performs for a given launch shape.
                let candidates: Vec<usize> = match algo {
                    Algo::OneD => (1..=avail.min(8)).filter(|p| n % p == 0).collect(),
                    Algo::TwoD => (1..=4usize)
                        .filter(|&q| q * q <= avail && n % q == 0)
                        .map(|q| q * q)
                        .collect(),
                    Algo::ThreeD => (1..=2usize)
                        .filter(|&q| q * q * q <= avail && n % (q * q) == 0)
                        .map(|q| q * q * q)
                        .collect(),
                };
                kami_best_of(&dev, algo, prec, &a, &b, &candidates)
            })
            .collect();
        t.push_series(algo.label(), vals);
    }
    t
}

// --------------------------------------------------------------- Fig 10

/// Fig 10: FP16 KAMI-1D (4 warps, §5.6.2 measurement setup) on the 5090
/// across shared-memory parking ratios. `None` marks the register-
/// overflow configurations the paper annotates.
pub fn fig10_smem_ratio() -> Table {
    let dev = device::rtx5090();
    let prec = Precision::Fp16;
    let ratios = [0.0, 0.25, 0.5, 0.75];
    let orders = [32usize, 64, 96, 128, 192];
    let x: Vec<usize> = ratios.iter().map(|r| (r * 100.0) as usize).collect();
    let mut t = Table::new(
        "Fig 10: shared-memory parking ratio, FP16 KAMI-1D p=4 (RTX 5090)",
        "ratio%",
        "TFLOPS",
        x,
    );
    for n in orders {
        let (a, b) = seeded_pair(n, n);
        // 192 needs 8 warps even fully parked (its C strip alone
        // overflows 4 warps' registers); the paper sweeps it too.
        let warps = if n >= 192 { 8 } else { 4 };
        let vals = ratios
            .iter()
            .map(|&f| {
                let cfg = KamiConfig::new(Algo::OneD, prec)
                    .with_warps(warps)
                    .with_smem_fraction(f);
                // No auto-escalation here: the point is to show where a
                // fixed ratio stops fitting.
                kami_core::gemm(&dev, &cfg, &a, &b)
                    .ok()
                    .map(|r| r.block_tflops(&dev))
            })
            .collect();
        t.push_series(format!("n={n}"), vals);
    }
    t
}

// --------------------------------------------------------------- Fig 11

/// Fig 11: low-rank GEMM (k = 16 or 32) in FP16 on GH200 — KAMI vs the
/// smem-staged and fixed-tile strategies.
pub fn fig11_lowrank(k: usize) -> Table {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let sizes = vec![16, 32, 48, 64, 96, 128, 192];
    let mut t = Table::new(
        format!("Fig 11: low-rank GEMM k={k} FP16 (GH200)"),
        "m=n",
        "TFLOPS",
        sizes.clone(),
    );
    t.push_series(
        "KAMI",
        sizes
            .iter()
            .map(|&m| {
                let u = Matrix::seeded_uniform(m, k, 0x10);
                let v = Matrix::seeded_uniform(k, m, 0x11);
                // Low-rank entry point (column-split 1D), best warps.
                [1usize, 2, 4, 8, 16]
                    .iter()
                    .filter(|&&p| m % p == 0)
                    .filter_map(|&p| {
                        let cfg = KamiConfig::new(Algo::OneD, prec).with_warps(p);
                        kami_core::lowrank_gemm(&dev, &cfg, &u, &v)
                            .ok()
                            .map(|r| r.block_tflops(&dev))
                    })
                    .fold(None, |best: Option<f64>, t| {
                        Some(best.map_or(t, |b| b.max(t)))
                    })
            })
            .collect(),
    );
    t.push_series(
        "cuBLASDx",
        sizes
            .iter()
            .map(|&m| {
                let u = Matrix::seeded_uniform(m, k, 0x10);
                let v = Matrix::seeded_uniform(k, m, 0x11);
                // Largest warp count its layout accepts.
                let p = (1..=4usize)
                    .rev()
                    .find(|p| m % p == 0 && k.is_multiple_of(*p))?;
                cublasdx::gemm(&dev, prec, p, &u, &v)
                    .ok()
                    .map(|r| r.block_tflops(&dev))
            })
            .collect(),
    );
    t.push_series(
        "CUTLASS",
        sizes
            .iter()
            .map(|&m| {
                let u = Matrix::seeded_uniform(m, k, 0x10);
                let v = Matrix::seeded_uniform(k, m, 0x11);
                cutlass::gemm(&dev, prec, &u, &v)
                    .ok()
                    .map(|r| r.block_tflops(&dev))
            })
            .collect(),
    );
    t
}

// --------------------------------------------------------------- Fig 12

/// Fig 12: batched FP64 GEMM on GH200 — modelled wall-clock GFLOPS of
/// KAMI vs MAGMA- and cuBLAS-style batched paths.
pub fn fig12_batched(batch: usize) -> Table {
    let dev = device::gh200();
    let prec = Precision::Fp64;
    let sizes = vec![16, 32, 48, 64, 96, 128];
    let mut t = Table::new(
        format!("Fig 12: batched FP64 GEMM, batch={batch} (GH200)"),
        "n",
        "GFLOPS",
        sizes.clone(),
    );
    let flops = |n: usize| 2.0 * (n * n * n) as f64 * batch as f64;
    t.push_series(
        "KAMI",
        sizes
            .iter()
            .map(|&n| {
                // Best valid warp organisation, as the dense sweeps do.
                warp_candidates(Algo::OneD, n)
                    .into_iter()
                    .filter_map(|p| {
                        let cfg = KamiConfig::new(Algo::OneD, prec).with_warps(p);
                        estimate_batched(&dev, &cfg, n, n, n, batch).ok().map(|r| {
                            let secs = KAMI_LAUNCH_US * 1e-6 + r.seconds(&dev);
                            flops(n) / secs / 1e9
                        })
                    })
                    .fold(None, |best: Option<f64>, t| {
                        Some(best.map_or(t, |b| b.max(t)))
                    })
            })
            .collect(),
    );
    t.push_series(
        "MAGMA",
        sizes
            .iter()
            .map(|&n| {
                magma::batched_seconds(&dev, prec, n, n, n, batch)
                    .ok()
                    .map(|s| flops(n) / s / 1e9)
            })
            .collect(),
    );
    t.push_series(
        "cuBLAS",
        sizes
            .iter()
            .map(|&n| {
                cublas::batched_seconds(&dev, prec, n, n, n, batch)
                    .ok()
                    .map(|s| flops(n) / s / 1e9)
            })
            .collect(),
    );
    t
}

// --------------------------------------------------------------- Fig 13

/// Fig 13: SpMM and SpGEMM in FP16 on GH200 over five 50%-block-sparse
/// matrices. Returns `(spmm_table, spgemm_table)`.
pub fn fig13_sparse() -> (Table, Table) {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let sizes = vec![32, 64, 96, 128, 192];
    let mut tm = Table::new(
        "Fig 13: SpMM FP16, 50% block sparsity (GH200)",
        "n",
        "TFLOPS",
        sizes.clone(),
    );
    let mut tg = Table::new(
        "Fig 13: SpGEMM FP16, 50% block sparsity (GH200)",
        "n",
        "TFLOPS",
        sizes.clone(),
    );

    let sparse_candidates = |algo: Algo, rb: usize, n: usize| -> Vec<usize> {
        match algo {
            Algo::OneD => (1..=16usize).filter(|p| rb.is_multiple_of(*p)).collect(),
            Algo::TwoD => (1..=4usize)
                .filter(|&q| rb.is_multiple_of(q) && n.is_multiple_of(q))
                .map(|q| q * q)
                .collect(),
            Algo::ThreeD => (1..=2usize)
                .filter(|&q| rb.is_multiple_of(q * q) && n.is_multiple_of(q))
                .map(|q| q * q * q)
                .collect(),
        }
    };

    for algo in Algo::ALL {
        let mut vm = Vec::new();
        let mut vg = Vec::new();
        for &n in &sizes {
            let rb = n / 16;
            let order = if algo == Algo::OneD {
                BlockOrder::RowMajor
            } else {
                BlockOrder::ZMorton
            };
            let a = gen::paper_sparse_workload(n, 16, order, 0xD06 + n as u64);
            let b = Matrix::seeded_uniform(n, n, 0xCAFE);
            let b_sp = gen::paper_sparse_workload(n, 16, order, 0xD07 + n as u64);
            let mut best_m: Option<f64> = None;
            let mut best_g: Option<f64> = None;
            for p in sparse_candidates(algo, rb, n) {
                if p == 1 && algo != Algo::OneD {
                    continue; // degenerate grids duplicate the 1D point
                }
                let cfg = KamiConfig::new(algo, prec).with_warps(p);
                if let Ok(r) = spmm(&dev, &cfg, &a, &b) {
                    let t = r.block_tflops(&dev);
                    best_m = Some(best_m.map_or(t, |x: f64| x.max(t)));
                }
                if let Ok(r) = spgemm(&dev, &cfg, &a, &b_sp) {
                    let t = r.block_tflops(&dev);
                    best_g = Some(best_g.map_or(t, |x: f64| x.max(t)));
                }
            }
            vm.push(best_m);
            vg.push(best_g);
        }
        tm.push_series(algo.label(), vm);
        tg.push_series(algo.label(), vg);
    }
    (tm, tg)
}

// --------------------------------------------------------------- Fig 14

/// Fig 14: theoretical vs live-range-measured registers per thread,
/// C fixed at 64×32, k swept, FP16 (1D and 2D with 4 warps, 3D with 8).
pub fn fig14_registers() -> Table {
    let prec = Precision::Fp16;
    let (m, n) = (64, 32);
    let ks = vec![16, 32, 64, 128, 192, 256];
    let dev = device::gh200();
    let mut t = Table::new(
        "Fig 14: registers per thread, C=64x32 FP16, k swept",
        "k",
        "registers",
        ks.clone(),
    );
    for algo in Algo::ALL {
        let p = match algo {
            Algo::OneD | Algo::TwoD => 4,
            Algo::ThreeD => 8,
        };
        let mut theo = Vec::new();
        let mut meas = Vec::new();
        for &k in &ks {
            let cfg = KamiConfig::new(algo, prec).with_warps(p);
            if cfg.validate(&dev, m, n, k).is_err() {
                theo.push(None);
                meas.push(None);
                continue;
            }
            theo.push(Some(f64::from(model_regs::theoretical_registers(
                algo, m, n, k, p, prec, prec,
            ))));
            // Build (not run) the kernel and analyze its live ranges.
            let mut gmem = GlobalMemory::new();
            let ab = gmem.upload("A", &Matrix::zeros(m, k), prec);
            let bb = gmem.upload("B", &Matrix::zeros(k, n), prec);
            let cb = gmem.alloc_zeroed("C", m, n, prec);
            let kern = match algo {
                Algo::OneD => kami_core::algo1d::build_kernel(&cfg, m, n, k, ab, bb, cb, prec),
                Algo::TwoD => kami_core::algo2d::build_kernel(&cfg, m, n, k, ab, bb, cb, prec),
                Algo::ThreeD => kami_core::algo3d::build_kernel(&cfg, m, n, k, ab, bb, cb, prec),
            };
            let lazy = Engine::new(&dev).analyze_registers_lazy(&kern);
            let worst = lazy.into_iter().max().unwrap_or(0);
            meas.push(Some(f64::from(worst)));
        }
        t.push_series(format!("{} theory", algo.label()), theo);
        t.push_series(format!("{} actual", algo.label()), meas);
    }
    t
}

// --------------------------------------------------------------- Fig 15

/// Fig 15: theoretical (Formulas 1–12) vs simulator-measured cycles,
/// split into communication and computation, FP16, per device.
pub fn fig15_cycles(dev: &DeviceSpec, algo: Algo) -> Result<Table, KamiError> {
    let prec = Precision::Fp16;
    let p = match algo {
        Algo::OneD | Algo::TwoD => 4,
        Algo::ThreeD => 8,
    };
    let prm = model_cycles::ModelParams::from_device(dev, prec).ok_or_else(|| {
        KamiError::Unsupported {
            detail: format!("{} lacks FP16", dev.name),
        }
    })?;
    let sizes = vec![16, 32, 48, 64, 96, 128];
    let mut t = Table::new(
        format!("Fig 15: {} cycles, FP16 on {}", algo.label(), dev.name),
        "n",
        "cycles",
        sizes.clone(),
    );
    let mut th_comm = Vec::new();
    let mut th_comp = Vec::new();
    let mut ms_comm = Vec::new();
    let mut ms_comp = Vec::new();
    let mut ms_overlap = Vec::new();
    for &n in &sizes {
        th_comm.push(Some(model_cycles::t_all_comm(algo, n, n, n, p, &prm)));
        th_comp.push(Some(model_cycles::t_all_compute(n, n, n, &prm)));
        let cfg = KamiConfig::new(algo, prec).with_warps(p);
        let (a, b) = seeded_pair(n, n);
        match kami_core::gemm_auto(dev, &cfg, &a, &b) {
            Ok(r) => {
                ms_comm.push(Some(r.report.totals.comm));
                ms_comp.push(Some(r.report.totals.compute));
                // Overlap-mode measurement (§4.7 / §5.6.2).
                let cfg_o = cfg.clone().with_cost(CostConfig::overlap());
                let total = kami_core::gemm_auto(dev, &cfg_o, &a, &b)
                    .ok()
                    .map(|r| r.report.on_chip_cycles());
                ms_overlap.push(total);
            }
            Err(_) => {
                ms_comm.push(None);
                ms_comp.push(None);
                ms_overlap.push(None);
            }
        }
    }
    t.push_series("comm(theory)", th_comm);
    t.push_series("comm(sim)", ms_comm);
    t.push_series("compute(theory)", th_comp);
    t.push_series("compute(sim)", ms_comp);
    t.push_series("total(overlap)", ms_overlap);
    Ok(t)
}

// ------------------------------------------------------------- Tables

/// Table 3 rendering (device specifications).
pub fn tab3_devices() -> String {
    let mut out = String::from(
        "Table 3: device specifications\n\
         device             clock(MHz)  banks  SMs  TC/SM  FP16(TF)  FP64(TF)\n",
    );
    for d in DeviceSpec::all_evaluated() {
        out.push_str(&format!(
            "{:<18} {:>10} {:>6} {:>4} {:>6} {:>9.0} {:>9}\n",
            d.name,
            d.boost_clock_mhz,
            d.smem_banks,
            d.num_sms,
            d.tensor_cores_per_sm,
            d.peak_fp16_tflops,
            d.peak_fp64_tflops
                .map(|x| format!("{x:.0}"))
                .unwrap_or_else(|| "N/A".into()),
        ));
    }
    out
}

/// Table 4 rendering (MMA shapes per vendor).
pub fn tab4_shapes() -> String {
    use kami_gpu_sim::{native_shape, Vendor};
    let mut out = String::from("Table 4: native MMA instruction shapes\n");
    for (vendor, name) in [
        (Vendor::Nvidia, "NVIDIA (CUDA mma)"),
        (Vendor::Amd, "AMD (HIP mma_sync)"),
        (Vendor::Intel, "Intel (SYCL joint_matrix_mad)"),
    ] {
        out.push_str(&format!("{name}:\n"));
        for prec in Precision::ALL_EVALUATED {
            if let Some(s) = native_shape(vendor, prec) {
                out.push_str(&format!("  {:>5}: {}\n", prec.label(), s.label()));
            }
        }
    }
    out
}

/// §5.6.1 on-chip usage comparison at 64³ FP16: registers/thread and
/// shared memory/block for KAMI vs the staged strategies.
pub fn tab_onchip_usage() -> Table {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let n = 64;
    let (a, b) = seeded_pair(n, n);
    let mut t = Table::new(
        "On-chip usage at 64x64x64 FP16 (GH200): registers/thread | smem KB",
        "metric",
        "value",
        vec![0, 1], // 0 = regs/thread, 1 = smem KB
    );
    for algo in Algo::ALL {
        let cfg = square_config(algo, prec, n);
        if let Ok(r) = kami_core::gemm_auto(&dev, &cfg, &a, &b) {
            t.push_series(
                algo.label(),
                vec![
                    Some(f64::from(r.report.max_registers().measured_regs)),
                    Some(r.report.smem_extent as f64 / 1024.0),
                ],
            );
        }
    }
    if let Ok(r) = cublasdx::gemm(&dev, prec, 4, &a, &b) {
        t.push_series(
            "cuBLASDx",
            vec![
                Some(f64::from(r.report.max_registers().measured_regs)),
                Some(r.report.smem_extent as f64 / 1024.0),
            ],
        );
    }
    if let Ok(r) = cutlass::gemm(&dev, prec, &a, &b) {
        t.push_series(
            "CUTLASS",
            vec![
                Some(f64::from(r.report.max_registers().measured_regs)),
                Some(r.report.smem_extent as f64 / 1024.0),
            ],
        );
    }
    t
}
