//! Automatic configuration selection for benchmark sweeps — the
//! "preset" role of §4.7/§5.2.5: pick a warp count suited to the matrix
//! order, and let `gemm_auto`'s fraction ladder handle register spills.

use kami_core::{Algo, KamiConfig};
use kami_gpu_sim::Precision;

/// Warp count for a square order-`n` problem.
///
/// * 1D: `p = clamp(n/16, 1, 16)` keeps the per-stage k-chunk at the
///   16-wide MMA granularity (§4.7).
/// * 2D: the largest grid `q ≤ 4` with `q | n` and `n/q ≥ 16`.
/// * 3D: a 2×2×2 cube whenever `4 | n` (the paper measures 3D with 8
///   warps), else a single warp.
pub fn square_warps(algo: Algo, n: usize) -> usize {
    match algo {
        Algo::OneD => {
            let p = (n / 16).clamp(1, 16);
            // Ensure divisibility (n is a multiple of 16 in all sweeps,
            // but stay safe for odd callers).
            (1..=p).rev().find(|p| n.is_multiple_of(*p)).unwrap_or(1)
        }
        Algo::TwoD => (1..=4usize)
            .rev()
            .find(|&q| n.is_multiple_of(q) && n / q >= 16)
            .unwrap_or(1)
            .pow(2),
        Algo::ThreeD => {
            if n.is_multiple_of(4) {
                8
            } else {
                1
            }
        }
    }
}

/// Paper-style configuration for a square block GEMM sweep.
pub fn square_config(algo: Algo, prec: Precision, n: usize) -> KamiConfig {
    KamiConfig::new(algo, prec).with_warps(square_warps(algo, n))
}

/// Matrix orders evaluated per precision (§5.1): 16–128 everywhere,
/// plus 192 for FP16 and 256 for FP8.
pub fn paper_orders(prec: Precision) -> Vec<usize> {
    let mut v = vec![16, 32, 48, 64, 96, 128];
    match prec {
        Precision::Fp16 => v.push(192),
        Precision::Fp8E4M3 => {
            v.push(192);
            v.push(256);
        }
        _ => {}
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_d_scales_with_order() {
        assert_eq!(square_warps(Algo::OneD, 16), 1);
        assert_eq!(square_warps(Algo::OneD, 32), 2);
        assert_eq!(square_warps(Algo::OneD, 64), 4);
        assert_eq!(square_warps(Algo::OneD, 128), 8);
        assert_eq!(square_warps(Algo::OneD, 192), 12);
        assert_eq!(square_warps(Algo::OneD, 256), 16);
    }

    #[test]
    fn two_d_grid_divides() {
        for n in [16, 32, 48, 64, 96, 128, 192, 256] {
            let p = square_warps(Algo::TwoD, n);
            let q = (p as f64).sqrt() as usize;
            assert_eq!(q * q, p);
            assert_eq!(n % q, 0, "n={n} q={q}");
        }
        assert_eq!(square_warps(Algo::TwoD, 64), 16);
        assert_eq!(square_warps(Algo::TwoD, 16), 1);
    }

    #[test]
    fn three_d_uses_eight_warps() {
        assert_eq!(square_warps(Algo::ThreeD, 64), 8);
        assert_eq!(square_warps(Algo::ThreeD, 30), 1);
    }

    #[test]
    fn orders_match_paper() {
        assert!(paper_orders(Precision::Fp64).contains(&128));
        assert!(!paper_orders(Precision::Fp64).contains(&192));
        assert!(paper_orders(Precision::Fp16).contains(&192));
        assert!(paper_orders(Precision::Fp8E4M3).contains(&256));
    }

    #[test]
    fn configs_validate_on_gh200() {
        let dev = kami_gpu_sim::device::gh200();
        for prec in [Precision::Fp64, Precision::Fp16] {
            for n in paper_orders(prec) {
                for algo in Algo::ALL {
                    let cfg = square_config(algo, prec, n);
                    cfg.validate(&dev, n, n, n)
                        .unwrap_or_else(|e| panic!("{} n={n} {prec:?}: {e}", algo.label()));
                }
            }
        }
    }
}
