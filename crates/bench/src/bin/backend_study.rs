//! Warm execute-path throughput: NativeBackend vs the reference
//! SimBackend.
//!
//! The serve warm path runs execute-only — the plan and cost passes are
//! cached per shape class — so the execute backend is the whole story
//! for sustained repeated-shape traffic. This study builds each shape's
//! plan once (`gemm_cost_auto`, exactly what the serve cache holds) and
//! times `gemm_execute_plan_with` per backend over the same operands.
//! Both backends are bit-identical by contract (asserted here on every
//! shape); the only difference is wall-clock.
//!
//! ```text
//! cargo run --release -p kami-bench --bin backend_study [-- --quick] [--out PATH]
//! ```
//!
//! Emits `target/BENCH_backend.json` (override with `--out`) and exits
//! nonzero if the native backend's aggregate execute throughput falls
//! under 2x the simulator — the CI acceptance gate for the backend seam.

use kami_core::{gemm_cost_auto, gemm_execute_plan_with, Algo, KamiConfig};
use kami_gpu_sim::{device, BackendKind, Matrix, Precision};
use std::time::Instant;

/// Warm-path shape classes: the serve mix plus one register-ladder
/// escalated block where the MMA volume dominates.
const SHAPES: [(usize, usize, usize, Algo); 4] = [
    (64, 64, 64, Algo::TwoD),
    (32, 32, 64, Algo::OneD),
    (128, 64, 64, Algo::TwoD),
    (128, 128, 128, Algo::TwoD),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "target/BENCH_backend.json".into());
    let iters = if quick { 24 } else { 120 };
    let dev = device::gh200();

    println!("# backend_study: warm execute-only runs/sec per backend, {iters} iters/shape");
    println!("# fp16, plain C=A*B, plan+cost cached (gemm_cost_auto once per shape)\n");
    println!(
        "{:<14} {:>12} {:>12} {:>9}",
        "shape", "sim runs/s", "native runs/s", "speedup"
    );

    let mut rows = Vec::new();
    let mut sim_total = 0.0f64;
    let mut native_total = 0.0f64;
    for (i, &(m, n, k, algo)) in SHAPES.iter().enumerate() {
        let cfg = KamiConfig::new(algo, Precision::Fp16);
        let plan = gemm_cost_auto(&dev, &cfg, m, n, k).expect("shape is feasible");
        let a = Matrix::seeded_uniform(m, k, i as u64);
        let b = Matrix::seeded_uniform(k, n, i as u64 + 100);

        // Conformance before speed: the two backends must agree bit for
        // bit on the exact operands being timed.
        let sim_c = gemm_execute_plan_with(&dev, &plan, &a, &b, BackendKind::Sim)
            .expect("sim executes")
            .c;
        let native_c = gemm_execute_plan_with(&dev, &plan, &a, &b, BackendKind::Native)
            .expect("native executes")
            .c;
        assert_eq!(
            sim_c.max_abs_diff(&native_c),
            0.0,
            "{m}x{n}x{k}: backends must be bit-identical"
        );

        let mut secs = [0.0f64; 2];
        for (slot, backend) in [BackendKind::Sim, BackendKind::Native]
            .into_iter()
            .enumerate()
        {
            let t0 = Instant::now();
            for _ in 0..iters {
                gemm_execute_plan_with(&dev, &plan, &a, &b, backend).expect("warm execute");
            }
            secs[slot] = t0.elapsed().as_secs_f64();
        }
        let (sim_secs, native_secs) = (secs[0], secs[1]);
        sim_total += sim_secs;
        native_total += native_secs;
        let sim_rps = iters as f64 / sim_secs;
        let native_rps = iters as f64 / native_secs;
        let speedup = native_rps / sim_rps;
        println!(
            "{:<14} {sim_rps:>12.1} {native_rps:>12.1} {speedup:>8.2}x",
            format!("{m}x{n}x{k}")
        );
        rows.push(format!(
            "    {{\"shape\": \"{m}x{n}x{k}\", \"algo\": \"{}\", \
             \"sim_secs\": {sim_secs:.6}, \"native_secs\": {native_secs:.6}, \
             \"speedup\": {speedup:.3}}}",
            algo.label()
        ));
    }

    let aggregate = sim_total / native_total;
    println!("\naggregate execute-path speedup (native vs sim): {aggregate:.2}x");

    let json = format!(
        "{{\n  \"study\": \"backend_study\",\n  \"device\": \"{}\",\n  \
         \"iters_per_shape\": {iters},\n  \"shapes\": [\n{}\n  ],\n  \
         \"sim_total_secs\": {sim_total:.6},\n  \"native_total_secs\": {native_total:.6},\n  \
         \"aggregate_speedup\": {aggregate:.3},\n  \"gate\": \"native >= 2x sim\"\n}}\n",
        dev.name,
        rows.join(",\n")
    );
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
    }
    std::fs::write(&out, json).expect("write BENCH_backend.json");
    println!("wrote {out}");

    if aggregate < 2.0 {
        eprintln!("FAIL: native execute throughput {aggregate:.2}x under the 2x acceptance bar");
        std::process::exit(1);
    }
    println!("PASS: >= 2x acceptance bar");
}
