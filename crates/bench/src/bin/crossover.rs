//! Analysis tool: where do 2D / 2.5D / 3D overtake 1D?
//!
//! The paper observes that "KAMI-1D is more suitable for current
//! single-GPU use" while "KAMI-2D/3D is preferable when larger block
//! sizes are available" (§5.2.4) — a statement about where the
//! `L_sm·stages` latency term and the `(g−1)·V/B_sm` bandwidth term
//! cross over. This binary sweeps the analytic model (Formulas 4/8/12
//! plus the 2.5D extension) over warp count and shared-memory latency
//! to chart that frontier, for any device.
//!
//! ```text
//! cargo run --release -p kami-bench --bin crossover [-- n]
//! ```

use kami_core::algo25d::t_all_25d;
use kami_core::model::cycles::{t_all, ModelParams};
use kami_core::Algo;
use kami_gpu_sim::{device, Precision};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let dev = device::gh200();
    let prec = Precision::Fp16;
    let base = ModelParams::from_device(&dev, prec).expect("FP16 on GH200");

    println!(
        "Analytic crossover study, {n}x{n}x{n} {} on {} (Formulas 4/8/12 + 2.5D)\n",
        prec.label(),
        dev.name
    );

    // 1. Cycles vs warp count at the device's real L_sm.
    println!("cycles vs warp budget (L_sm = {}):", base.l_sm);
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12}",
        "warps", "1D", "2D", "3D", "2.5D(best c)"
    );
    for &p in &[4usize, 8, 16, 27, 32, 64] {
        let c1 = is_valid_1d(p).then(|| t_all(Algo::OneD, n, n, n, p, &base));
        let c2 = perfect_sqrt(p).map(|_| t_all(Algo::TwoD, n, n, n, p, &base));
        let c3 = perfect_cbrt(p).map(|_| t_all(Algo::ThreeD, n, n, n, p, &base));
        let c25 = best_25d(n, p, &base);
        println!(
            "{:>6} {:>10} {:>10} {:>10} {:>12}",
            p,
            fmt(c1),
            fmt(c2),
            fmt(c3),
            c25.map(|(t, q, c)| format!("{t:.0} (q={q},c={c})"))
                .unwrap_or_else(|| "-".into()),
        );
    }

    // 2. Model vs simulator at p = 4: the pure CA formulas slightly
    //    favour 2D, but the simulator also charges instruction-
    //    granularity padding (2D's fragments are 1/√p-sized in both
    //    dimensions, so small orders pad more) — the same effect behind
    //    the paper's "KAMI-2D/3D incur 45%/152% more nop instructions"
    //    profiling note (§5.2.1).
    println!("\nmodel vs simulator, 4 warps, 1D and 2D:");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "n", "1D(model)", "1D(sim)", "2D(model)", "2D(sim)", "winner"
    );
    for nn in [16usize, 32, 48, 64, 96] {
        let m1 = t_all(Algo::OneD, nn, nn, nn, 4, &base);
        let m2 = t_all(Algo::TwoD, nn, nn, nn, 4, &base);
        let sim = |algo: Algo| -> Option<f64> {
            let cfg = kami_core::KamiConfig::new(algo, prec).with_warps(4);
            let a = kami_gpu_sim::Matrix::seeded_uniform(nn, nn, 1);
            let b = kami_gpu_sim::Matrix::seeded_uniform(nn, nn, 2);
            kami_core::gemm_auto(&dev, &cfg, &a, &b)
                .ok()
                .map(|r| r.report.on_chip_cycles())
        };
        let s1 = sim(Algo::OneD);
        let s2 = sim(Algo::TwoD);
        let winner = match (s1, s2) {
            (Some(a), Some(b)) if a < b => "1D",
            (Some(_), Some(_)) => "2D",
            _ => "-",
        };
        println!(
            "{:>6} {:>12.0} {:>12} {:>12.0} {:>12} {:>8}",
            nn,
            m1,
            fmt(s1),
            m2,
            fmt(s2),
            winner
        );
    }

    println!(
        "\nReading: at a *fixed* grid (p = 4), 2D's fewer stages win in both\n\
         model and simulator, and the simulator's gap is narrower because\n\
         MMA-granularity padding falls hardest on 2D's 1/√p-sized tiles —\n\
         the cycle-level analogue of the paper's finding that 2D/3D execute\n\
         45%/152% more nop instructions (§5.2.1). 1D's practical edge in\n\
         Fig 8 comes from its *flexibility*: its warp count can be any\n\
         divisor of the order (not just a perfect square/cube), so it can\n\
         match the stage count to the problem, while 2D/3D need the large\n\
         blocks of Fig 9 before their volume advantage tells — §5.2.4's\n\
         conclusion. The 2.5D interpolation tracks the better of 2D and 3D\n\
         at every warp budget in the first table."
    );
}

fn fmt(x: Option<f64>) -> String {
    x.map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".into())
}

fn is_valid_1d(p: usize) -> bool {
    p >= 1
}

fn perfect_sqrt(p: usize) -> Option<usize> {
    let q = (p as f64).sqrt().round() as usize;
    (q * q == p).then_some(q)
}

fn perfect_cbrt(p: usize) -> Option<usize> {
    let q = (p as f64).cbrt().round() as usize;
    (q * q * q == p).then_some(q)
}

fn best_25d(n: usize, p: usize, prm: &ModelParams) -> Option<(f64, usize, usize)> {
    let mut best: Option<(f64, usize, usize)> = None;
    for q in 1..=12usize {
        if !p.is_multiple_of(q * q) {
            continue;
        }
        let c = p / (q * q);
        if c > q || !n.is_multiple_of(q.max(1)) || !n.is_multiple_of(c * q) {
            continue;
        }
        let t = t_all_25d(n, n, n, q, c, prm);
        if best.is_none_or(|(bt, _, _)| t < bt) {
            best = Some((t, q, c));
        }
    }
    best
}
