//! Plan-cache study: the three properties the bounded, feedback-driven
//! cache plane must buy, each with a CI gate.
//!
//! * **Bounded memory** — a churn of distinct shape classes (far more
//!   than the budget holds) through `CacheConfig::bounded`: resident
//!   bytes must stay within 2x the per-store budget (two stores, each
//!   individually budgeted), with evictions and Bloom rejections both
//!   live.
//! * **Warm path** — repeated hits on a bounded cache must sustain at
//!   least half the hit throughput of the unbounded control; the LRU
//!   bump and admission bookkeeping may not tax the hot path.
//! * **Feedback routing** — a fleet whose GH200 class secretly runs
//!   its MMAs at 10% of the modeled rate: with feedback on, observed
//!   ratios correct the router's makespan predictions and traffic
//!   shifts to the honest class; aggregate throughput must be at least
//!   the no-feedback control's.
//!
//! ```text
//! cargo run --release -p kami-bench --bin plan_cache_study [-- --quick] [--out PATH]
//! ```
//!
//! Emits `target/BENCH_plan_cache.json` (override with `--out`) and
//! exits nonzero if any gate fails.

use std::time::Instant;

use kami_core::{Algo, KamiConfig};
use kami_gpu_sim::{device, CostConfig, Matrix, Precision};
use kami_sched::{CacheConfig, PlanCache};
use kami_serve::{
    DeviceClass, FleetConfig, FleetServer, FleetSpec, RoutingPolicy, ServeRequest, ServerConfig,
};

/// Per-store byte budget for the churn phase.
const BUDGET_BYTES: usize = 256 * 1024;

/// Phase A: churn `distinct` one-off shape classes (smem-fraction
/// jitter makes every cost key unique) interleaved with a small hot
/// set, against a tight byte budget. Returns (peak resident, evictions,
/// bloom rejections).
fn churn_phase(distinct: usize) -> (usize, u64, u64) {
    let gh200 = device::gh200();
    let plans = PlanCache::with_config(CacheConfig::bounded(BUDGET_BYTES));
    // A single 16^3 block: the cheapest feasible cost pass, so the
    // churn reaches 10^5 distinct classes in bench time. Entry weight
    // is shape-independent (plan struct + report heap), so the budget
    // binds exactly as it would for production shapes.
    let base = KamiConfig::new(Algo::OneD, Precision::Fp16).with_warps(1);
    let mut peak = 0usize;
    for i in 0..distinct {
        // A never-repeating fraction: a cold key every time. The cost
        // pass itself is identical — only the cache key moves. Each
        // class is requested twice so the Bloom doorkeeper admits it
        // (first sighting recorded-but-rejected) and the byte budget
        // actually fills — one-off keys alone would never be resident.
        let cold = base
            .clone()
            .with_smem_fraction(0.25 + (i + 1) as f64 * 1e-12);
        for _ in 0..2 {
            plans
                .gemm_plan_for(&gh200, &cold, 16, 16, 16, false)
                .expect("16^3 fp16 is feasible on GH200");
        }
        // A small cycling hot set: these keys repeat, so the Bloom
        // doorkeeper must let them through on their second sighting.
        let hot = base
            .clone()
            .with_smem_fraction(0.5 + (i % 16 + 1) as f64 * 1e-12);
        plans
            .gemm_plan_for(&gh200, &hot, 16, 16, 16, false)
            .expect("16^3 fp16 is feasible on GH200");
        if i % 64 == 0 {
            peak = peak.max(plans.stats().resident_bytes());
        }
    }
    let stats = plans.stats();
    (
        peak.max(stats.resident_bytes()),
        stats.evictions(),
        stats.admission_rejected(),
    )
}

/// Phase B: hit throughput (plans served per second of wall time) on a
/// pre-warmed cache.
fn warm_hits(plans: &PlanCache, shapes: &[(usize, usize, usize)], iters: usize) -> f64 {
    let gh200 = device::gh200();
    let cfg = KamiConfig::new(Algo::OneD, Precision::Fp16);
    // Warm every shape twice: under Bloom admission the first compute
    // is recorded but rejected, the second is admitted.
    for &(m, n, k) in shapes {
        for _ in 0..2 {
            plans
                .gemm_plan_for(&gh200, &cfg, m, n, k, false)
                .expect("warm shapes are feasible");
        }
    }
    let start = Instant::now();
    for i in 0..iters {
        let (m, n, k) = shapes[i % shapes.len()];
        plans
            .gemm_plan_for(&gh200, &cfg, m, n, k, false)
            .expect("warm shapes are feasible");
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// Phase C: one fleet serving, returning aggregate throughput in
/// requests per simulated second. The GH200 class's MMAs secretly run
/// at `mma_efficiency` (the model still believes 1.0); the RTX 5090
/// class is honest.
fn misrouted_fleet(cache: CacheConfig, waves: usize, per_wave: usize) -> f64 {
    let mut spec = FleetSpec::homogeneous(&device::gh200(), 1).with_cache(cache);
    spec.classes[0].true_cost = Some(CostConfig::default().with_mma_efficiency(0.1));
    spec.classes.push(DeviceClass::new(device::rtx5090(), 1));
    let fleet = FleetServer::with_config(
        spec,
        FleetConfig {
            server: ServerConfig {
                queue_capacity: per_wave,
                coalesce: false,
                ..ServerConfig::default()
            },
            policy: RoutingPolicy::EarliestCompletion,
        },
    );
    let total = waves * per_wave;
    let mut tickets = Vec::with_capacity(total);
    let mut seed = 0u64;
    for _ in 0..waves {
        for _ in 0..per_wave {
            let a = Matrix::seeded_uniform(256, 64, seed);
            let b = Matrix::seeded_uniform(64, 256, seed + 10_000);
            seed += 1;
            tickets.push(
                fleet
                    .submit(ServeRequest::gemm(a, b, Precision::Fp16))
                    .expect("queue sized to the wave"),
            );
        }
        // Drain between waves so wave N+1 is routed *after* wave N's
        // executions have been observed.
        fleet.drain();
    }
    fleet.shutdown_and_drain();
    for t in tickets {
        t.wait().expect("a 256x64x256 fp16 request must serve");
    }
    total as f64 / fleet.metrics().makespan_secs()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "target/BENCH_plan_cache.json".into());

    // -- Phase A: bounded memory under churn ------------------------
    let distinct = if quick { 5_000 } else { 100_000 };
    println!(
        "# plan_cache_study: {distinct} distinct shape classes vs a {BUDGET_BYTES}-byte budget"
    );
    let (peak, evictions, bloom_rejected) = churn_phase(distinct);
    let bound = 2 * BUDGET_BYTES; // two stores, each individually budgeted
    println!(
        "churn: peak resident {peak} B (bound {bound} B), {evictions} evictions, \
         {bloom_rejected} bloom rejections"
    );
    let gate_bounded = peak <= bound && evictions > 0 && bloom_rejected > 0;

    // -- Phase B: warm-path hit throughput --------------------------
    let shapes: Vec<(usize, usize, usize)> = (0..32).map(|i| (64, 64, 32 + 4 * i)).collect();
    let iters = if quick { 50_000 } else { 200_000 };
    let unbounded = PlanCache::new();
    let bounded = PlanCache::with_config(CacheConfig::bounded(16 * 1024 * 1024));
    let hits_unbounded = warm_hits(&unbounded, &shapes, iters);
    let hits_bounded = warm_hits(&bounded, &shapes, iters);
    let warm_ratio = hits_bounded / hits_unbounded;
    println!(
        "warm path: bounded {hits_bounded:.0} hits/s vs unbounded {hits_unbounded:.0} hits/s \
         ({warm_ratio:.2}x)"
    );
    let gate_warm = warm_ratio >= 0.5;

    // -- Phase C: feedback vs control on a mis-modeled device -------
    let (waves, per_wave) = if quick { (4, 12) } else { (8, 24) };
    let control = misrouted_fleet(CacheConfig::default(), waves, per_wave);
    let feedback = misrouted_fleet(CacheConfig::default().with_feedback(), waves, per_wave);
    let fb_ratio = feedback / control;
    println!(
        "mis-modeled fleet: feedback {feedback:.1} req/sim-s vs control {control:.1} req/sim-s \
         ({fb_ratio:.2}x)"
    );
    let gate_feedback = feedback >= control;

    let json = format!(
        "{{\n  \"study\": \"plan_cache_study\",\n  \"quick\": {quick},\n  \
         \"churn\": {{\"distinct\": {distinct}, \"budget_bytes\": {BUDGET_BYTES}, \
         \"peak_resident_bytes\": {peak}, \"evictions\": {evictions}, \
         \"bloom_rejected\": {bloom_rejected}}},\n  \
         \"warm\": {{\"iters\": {iters}, \"bounded_hits_per_sec\": {hits_bounded:.1}, \
         \"unbounded_hits_per_sec\": {hits_unbounded:.1}, \"ratio\": {warm_ratio:.4}}},\n  \
         \"feedback\": {{\"waves\": {waves}, \"per_wave\": {per_wave}, \
         \"control_req_per_sim_sec\": {control:.3}, \
         \"feedback_req_per_sim_sec\": {feedback:.3}, \"ratio\": {fb_ratio:.4}}},\n  \
         \"gates\": {{\"bounded_memory\": {gate_bounded}, \"warm_path\": {gate_warm}, \
         \"feedback_routing\": {gate_feedback}}}\n}}\n"
    );
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
    }
    std::fs::write(&out, json).expect("write BENCH_plan_cache.json");
    println!("wrote {out}");

    let mut failed = false;
    for (name, ok) in [
        (
            "bounded memory (peak <= 2x budget, evictions + bloom live)",
            gate_bounded,
        ),
        (
            "warm path (bounded >= 0.5x unbounded hit throughput)",
            gate_warm,
        ),
        ("feedback routing (>= no-feedback control)", gate_feedback),
    ] {
        if ok {
            println!("PASS: {name}");
        } else {
            eprintln!("FAIL: {name}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
