//! Regenerates Figure 12: batched FP64 GEMM vs MAGMA- and cuBLAS-style
//! paths, GH200, batch sizes 1000 and 10000.
fn main() {
    for batch in [1000usize, 10000] {
        let t = kami_bench::fig12_batched(batch);
        println!("{}", t.render());
        println!("{}", t.summary(&["KAMI"], &["MAGMA", "cuBLAS"]));
    }
}
