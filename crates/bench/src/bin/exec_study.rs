//! Wall-clock serve throughput: cold cost pass vs cached cost pass.
//!
//! The split engine turns a served dense GEMM into three passes — plan,
//! cost, execute — of which only the execute pass touches matrix data.
//! Repeated-shape traffic should therefore pay tuning and the cost pass
//! once per shape class and run execute-only afterwards. This study
//! measures that end to end: the same repeated-shape request trace is
//! drained once with every request on a fresh server (cold caches —
//! each request pays the autotuning sweep plus the cost pass) and once
//! on a single server whose tuner and cost caches were primed by an
//! untimed warmup round (execute-only per request).
//!
//! ```text
//! cargo run --release -p kami-bench --bin exec_study [-- --quick] [--out PATH]
//! ```
//!
//! Emits `target/BENCH_exec.json` (override with `--out`) and exits
//! nonzero if warm throughput falls under 2x cold — the CI acceptance
//! gate for the cached cost pass.

use kami_gpu_sim::{device, Matrix, Precision};
use kami_serve::{ServeRequest, Server};
use std::time::Instant;

/// The repeated shape classes (the same dense mix `serve_study` uses).
const SHAPES: [(usize, usize, usize); 3] = [(64, 64, 64), (32, 32, 64), (128, 64, 64)];

/// Deterministic repeated-shape trace: `total` plain FP16 GEMMs cycling
/// through [`SHAPES`], fresh operand data per request (the cost cache
/// keys on shape, not data).
fn trace(total: usize, seed_base: u64) -> Vec<ServeRequest> {
    (0..total)
        .map(|i| {
            let (m, n, k) = SHAPES[i % SHAPES.len()];
            let seed = seed_base + i as u64;
            let a = Matrix::seeded_uniform(m, k, seed);
            let b = Matrix::seeded_uniform(k, n, seed + 10_000);
            ServeRequest::gemm(a, b, Precision::Fp16)
        })
        .collect()
}

/// Drain `requests` through `server`, panicking on any failure.
fn drain(server: &Server, requests: Vec<ServeRequest>) {
    let tickets: Vec<_> = requests
        .into_iter()
        .map(|r| server.submit(r).expect("queue sized to the trace"))
        .collect();
    while server.pending() > 0 {
        server.tick();
    }
    for t in tickets {
        t.wait().expect("every request in the trace is feasible");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "target/BENCH_exec.json".into());
    let total = if quick { 12 } else { 48 };
    let dev = device::gh200();

    println!("# exec_study: serve requests/sec, cold vs cached cost pass, {total} requests");
    println!("# shape classes: {SHAPES:?}, fp16, plain C=A*B\n");

    // Cold: a fresh server per request, so every request re-tunes its
    // shape class and re-runs the cost pass before executing.
    let t0 = Instant::now();
    for r in trace(total, 0) {
        let server = Server::new(&dev);
        drain(&server, vec![r]);
    }
    let cold_secs = t0.elapsed().as_secs_f64();

    // Warm: one server; an untimed warmup round primes the tuner and
    // the shape-class cost cache, so the timed trace is execute-only.
    let server = Server::new(&dev);
    drain(&server, trace(SHAPES.len(), 500_000));
    let warm_base_hits = server.plans().cost_hits();
    let t0 = Instant::now();
    drain(&server, trace(total, 1_000_000));
    let warm_secs = t0.elapsed().as_secs_f64();

    let cold_rps = total as f64 / cold_secs;
    let warm_rps = total as f64 / warm_secs;
    let speedup = warm_rps / cold_rps;
    let cost_hits = server.plans().cost_hits() - warm_base_hits;

    println!("{:<22} {:>12} {:>14}", "mode", "seconds", "requests/sec");
    println!(
        "{:<22} {cold_secs:>12.3} {cold_rps:>14.1}",
        "cold cost pass"
    );
    println!(
        "{:<22} {warm_secs:>12.3} {warm_rps:>14.1}",
        "cached cost pass"
    );
    println!(
        "\ncost-cache hits on the warm trace: {cost_hits}/{total} \
         (misses total: {})",
        server.plans().cost_misses()
    );
    println!("throughput speedup (warm / cold): {speedup:.2}x");

    let shape_classes = SHAPES
        .iter()
        .map(|&(m, n, k)| format!("\"{m}x{n}x{k}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"study\": \"exec_study\",\n  \"device\": \"{}\",\n  \"requests\": {total},\n  \
         \"shape_classes\": [{shape_classes}],\n  \"cold_secs\": {cold_secs:.6},\n  \
         \"warm_secs\": {warm_secs:.6},\n  \"cold_requests_per_sec\": {cold_rps:.3},\n  \
         \"warm_requests_per_sec\": {warm_rps:.3},\n  \"speedup\": {speedup:.3},\n  \
         \"warm_cost_cache_hits\": {cost_hits},\n  \"gate\": \"warm >= 2x cold\"\n}}\n",
        dev.name
    );
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
    }
    std::fs::write(&out, json).expect("write BENCH_exec.json");
    println!("wrote {out}");

    if speedup < 2.0 {
        eprintln!("FAIL: cached-cost throughput {speedup:.2}x under the 2x acceptance bar");
        std::process::exit(1);
    }
    println!("PASS: >= 2x acceptance bar");
}
