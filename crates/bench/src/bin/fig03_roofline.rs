//! Regenerates Figure 3: the GEMM roofline on GH200 — modelled cuBLAS
//! device-level FP64 curve plus the simulated cuBLASDx block-level curve.
fn main() {
    let t1 = kami_bench::fig3_cublas_curve();
    println!("{}", t1.render());
    let t2 = kami_bench::fig3_cublasdx_curve();
    println!("{}", t2.render());
    println!(
        "Paper shape check: cuBLAS collapses at small n (paper: ~28 GFLOPS at n=64),\n\
         approaches peak (67 TFLOPS) at n=8192; cuBLASDx hits a shared-memory\n\
         capacity cliff near n~98 (simulated: '-' entries above)."
    );
}
