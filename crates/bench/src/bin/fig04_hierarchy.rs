//! Regenerates Figure 4(b): latency and bandwidth of the on-chip memory
//! hierarchy per device, next to the paper's 4-node-cluster analogy.
use kami_gpu_sim::DeviceSpec;
fn main() {
    println!("Fig 4(b): per-SM memory hierarchy (cycles / bytes-per-cycle)");
    println!(
        "{:<18} {:>8} {:>8} {:>10} {:>10}",
        "device", "L_reg", "L_sm", "B_sm", "B_gmem"
    );
    for d in DeviceSpec::all_evaluated() {
        println!(
            "{:<18} {:>8} {:>8} {:>10.1} {:>10.1}",
            d.name,
            d.reg_latency,
            d.smem_latency,
            d.smem_bytes_per_cycle(),
            d.gmem_bytes_per_cycle
        );
    }
    println!(
        "\nPaper analogy (Fig 4): local:remote latency ~1:20 (register vs\n\
         shared memory) mirrors a cluster's DRAM:network ~1:9; bandwidth\n\
         ratios are ~4:1 in both."
    );
}
