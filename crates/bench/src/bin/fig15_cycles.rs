//! Regenerates Figure 15: theoretical vs measured cycle breakdown, FP16,
//! GH200 and RTX 5090.
use kami_core::Algo;
use kami_gpu_sim::device;
fn main() {
    for dev in [device::gh200(), device::rtx5090()] {
        for algo in Algo::ALL {
            match kami_bench::fig15_cycles(&dev, algo) {
                Ok(t) => println!("{}", t.render()),
                Err(e) => println!("skipped {} on {}: {e}", algo.label(), dev.name),
            }
        }
    }
}
