//! Regenerates Figure 14: theoretical vs actual register usage, FP16,
//! C fixed at 64x32.
fn main() {
    let t = kami_bench::fig14_registers();
    println!("{}", t.render());
    for algo in ["KAMI-1D", "KAMI-2D", "KAMI-3D"] {
        if let Some((avg, _)) = t.speedup(&format!("{algo} actual"), &format!("{algo} theory")) {
            println!("{algo}: actual/theoretical = {:.2}%", avg * 100.0);
        }
    }
    println!("Paper: 76.86% (1D), 73.14% (2D), 65.67% (3D).");
}
