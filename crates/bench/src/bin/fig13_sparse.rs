//! Regenerates Figure 13: SpMM and SpGEMM, FP16, 50% block sparsity, GH200.
fn main() {
    let (tm, tg) = kami_bench::fig13_sparse();
    println!("{}", tm.render());
    println!("{}", tg.render());
    println!(
        "Paper shape check: SpMM tracks dense GEMM (B and C dense); SpGEMM\n\
         lands lower (irregular indexing, metadata traffic, extra sync)."
    );
}
