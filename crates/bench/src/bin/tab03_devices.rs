//! Prints Table 3 (device specifications) and the derived O_tc values.
use kami_gpu_sim::{DeviceSpec, Precision};
fn main() {
    println!("{}", kami_bench::tab3_devices());
    println!("Derived O_tc (ops/cycle/tensor-core):");
    for d in DeviceSpec::all_evaluated() {
        for p in Precision::ALL_EVALUATED {
            if let Some(o) = d.ops_per_cycle_per_tc(p) {
                println!("  {:<18} {:>5}: {o:8.1}", d.name, p.label());
            }
        }
    }
}
