//! Aggregate service throughput: coalesced dispatch vs one-at-a-time
//! serial dispatch over a mixed dense/sparse request trace.
//!
//! The study drains the same deterministic trace through two servers on
//! GH200 — one with shape-class coalescing on, one dispatching every
//! request as its own group — and compares the total simulated cycles
//! to drain. Small independent GEMMs are exactly the workload the
//! coalescer exists for: alone, each one occupies a sliver of the
//! device; pooled, they fill it the way one Stream-K launch would.
//!
//! ```text
//! cargo run --release -p kami-bench --bin serve_study [-- --quick]
//! ```
//!
//! Exits nonzero if the coalesced speedup falls under 1.5× — this
//! doubles as the CI acceptance gate for the service runtime.

use kami_core::KamiConfig;
use kami_gpu_sim::{device, Matrix, Precision};
use kami_serve::{Metrics, ServeRequest, Server, ServerConfig};
use kami_sparse::{gen, BlockOrder};

/// The deterministic mixed trace: mostly small dense GEMMs in a few
/// shape classes (coalescable), with sparse SpMM/SpGEMM riders that
/// always dispatch solo.
fn trace(total: usize) -> Vec<ServeRequest> {
    const DENSE_SHAPES: [(usize, usize, usize); 3] = [(64, 64, 64), (32, 32, 64), (128, 64, 64)];
    let mut out = Vec::with_capacity(total);
    for i in 0..total {
        let seed = i as u64;
        // Every 10th request is sparse: odd ones SpMM, even ones SpGEMM.
        if i % 10 == 9 {
            let cfg = KamiConfig::new(kami_core::Algo::TwoD, Precision::Fp16);
            let a = gen::random_block_sparse(64, 64, 16, 0.4, BlockOrder::ZMorton, seed);
            if i % 20 == 9 {
                let b = Matrix::seeded_uniform(64, 32, seed + 5000);
                out.push(ServeRequest::spmm(a, b, cfg));
            } else {
                let b = gen::random_block_sparse(64, 64, 16, 0.4, BlockOrder::ZMorton, seed + 1);
                out.push(ServeRequest::spgemm(a, b, cfg));
            }
        } else {
            let (m, n, k) = DENSE_SHAPES[i % DENSE_SHAPES.len()];
            let a = Matrix::seeded_uniform(m, k, seed);
            let b = Matrix::seeded_uniform(k, n, seed + 10_000);
            out.push(ServeRequest::gemm(a, b, Precision::Fp16));
        }
    }
    out
}

/// Drain the trace through one server; return (total cycles, metrics).
fn run(coalesce: bool, requests: Vec<ServeRequest>) -> (f64, Metrics) {
    let dev = device::gh200();
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: requests.len(),
            coalesce,
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<_> = requests
        .into_iter()
        .map(|r| server.submit(r).expect("capacity sized to the trace"))
        .collect();
    server.shutdown_and_drain();
    for t in tickets {
        t.wait().expect("every request in the trace is feasible");
    }
    (server.clock(), server.metrics())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let total = if quick { 60 } else { 200 };

    println!("# serve_study: aggregate throughput, GH200, {total}-request mixed trace");
    println!("# (dense 64x64x64 / 32x32x64 / 128x64x64 fp16 + SpMM/SpGEMM riders)\n");

    let (serial_cycles, serial_metrics) = run(false, trace(total));
    let (coalesced_cycles, coalesced_metrics) = run(true, trace(total));
    let speedup = serial_cycles / coalesced_cycles;

    println!(
        "{:<26} {:>16} {:>10} {:>14}",
        "mode", "total cycles", "groups", "mean queue cyc"
    );
    for (label, cycles, m) in [
        ("serial (coalesce off)", serial_cycles, &serial_metrics),
        ("coalesced", coalesced_cycles, &coalesced_metrics),
    ] {
        let groups: usize = m.per_tick.iter().map(|t| t.groups).sum();
        println!(
            "{label:<26} {cycles:>16.0} {groups:>10} {:>14.0}",
            m.mean_queue_cycles()
        );
    }
    println!(
        "\ncoalesce factor: {:.1} requests/group (serial: {:.1})",
        coalesced_metrics.coalesce_factor(),
        serial_metrics.coalesce_factor()
    );
    println!("aggregate speedup (serial / coalesced): {speedup:.2}x");

    if speedup < 1.5 {
        eprintln!("FAIL: coalesced speedup {speedup:.2}x under the 1.5x acceptance bar");
        std::process::exit(1);
    }
    println!("PASS: >= 1.5x acceptance bar");
}
