//! Analysis: does the multi-block (occupancy) view close the gap between
//! our Fig 8 speedups and the paper's?
//!
//! The single-block serial metric under-credits KAMI relative to
//! cuBLASDx because it ignores residency: the staged baseline's large
//! shared-memory footprint caps how many of its blocks an SM can hold,
//! while KAMI's 2–8 KB blocks stack deep and overlap each other's
//! latency. This binary compares both metrics across the Fig 8(b) sweep
//! (FP16 on GH200).
//!
//! ```text
//! cargo run --release -p kami-bench --bin occupancy_study
//! ```

use kami_baselines::cublasdx;
use kami_core::{gemm_auto, Algo, KamiConfig};
use kami_gpu_sim::{analyze_occupancy_on_chip, device, Matrix, Precision};

fn main() {
    let dev = device::gh200();
    let prec = Precision::Fp16;
    println!(
        "Occupancy study: FP16 block GEMM on {} — serial vs steady-state metric\n",
        dev.name
    );
    println!(
        "{:>5} | {:>12} {:>12} {:>7} | {:>12} {:>12} {:>7} | {:>9} {:>9}",
        "n",
        "KAMI(serial)",
        "dx(serial)",
        "ratio",
        "KAMI(occ)",
        "dx(occ)",
        "ratio",
        "KAMI res",
        "dx res"
    );
    for n in [16usize, 32, 48, 64, 96, 128] {
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        // Best KAMI-1D over warp candidates (Fig 8's procedure).
        let mut kami_best: Option<(f64, kami_core::GemmResult)> = None;
        for p in (1..=16usize).filter(|p| n % p == 0) {
            let cfg = KamiConfig::new(Algo::OneD, prec).with_warps(p);
            if let Ok(r) = gemm_auto(&dev, &cfg, &a, &b) {
                let t = r.block_tflops(&dev);
                if kami_best.as_ref().is_none_or(|(bt, _)| t > *bt) {
                    kami_best = Some((t, r));
                }
            }
        }
        let Some((kami_serial, kami_res)) = kami_best else {
            continue;
        };
        let Some(dx_res) = [2usize, 4, 6, 8]
            .iter()
            .filter(|&&p| n % p == 0)
            .filter_map(|&p| cublasdx::gemm(&dev, prec, p, &a, &b).ok())
            .max_by(|x, y| {
                x.block_tflops(&dev)
                    .partial_cmp(&y.block_tflops(&dev))
                    .expect("finite")
            })
        else {
            continue;
        };
        let dx_serial = dx_res.block_tflops(&dev);

        // Block-level regime: in-kernel looping keeps data on chip.
        let kami_occ = analyze_occupancy_on_chip(&dev, &kami_res.report, kami_res.useful_flops);
        let dx_occ = analyze_occupancy_on_chip(&dev, &dx_res.report, dx_res.useful_flops);

        println!(
            "{:>5} | {:>12.1} {:>12.1} {:>6.2}x | {:>12.1} {:>12.1} {:>6.2}x | {:>9} {:>9}",
            n,
            kami_serial,
            dx_serial,
            kami_serial / dx_serial,
            kami_occ.steady_tflops,
            dx_occ.steady_tflops,
            kami_occ.steady_tflops / dx_occ.steady_tflops,
            kami_occ.resident_blocks,
            dx_occ.resident_blocks,
        );
    }
    println!(
        "\nReading: absolute steady-state throughput is far above the serial\n\
         metric for both strategies (residents overlap each other's latency),\n\
         with KAMI's lean blocks stacking deeper at small orders. The\n\
         KAMI/cuBLASDx *ratio* stays in the same 1.2-2.8x band under both\n\
         metrics: shared-memory bandwidth is the binding resource either\n\
         way, so occupancy alone does not explain the remaining distance to\n\
         the paper's 2.56x average — the paper's own profiling attributes\n\
         that slice to instruction-level overheads (§5.2.1's nop counts),\n\
         which no bandwidth/latency model captures."
    );
}
