//! Tall-skinny scheduling study: the Skinny-K k-split decomposition
//! (deep k-partitioning with a pairwise-tree fixup, after Ernst et
//! al.'s tall-skinny reduction strategies) vs the square-tile
//! data-parallel baseline, on the regime the k-split path owns —
//! `m, n ≤ 64` with `k ≥ 10^4`.
//!
//! For each grid shape the same uniform block workload is placed on
//! GH200 by `kami-sched` under `Decomposition::DataParallel` and
//! `Decomposition::SkinnyK`, and the predicted device throughputs
//! (useful flops over makespan) are compared. `Auto` must also pick the
//! winner on every shape.
//!
//! ```text
//! cargo run --release -p kami-bench --bin tallskinny_study [-- --quick] [--out PATH]
//! ```
//!
//! Emits `target/BENCH_tallskinny.json` (override with `--out`) and
//! exits nonzero unless the skinny path beats data-parallel by ≥ 1.5×
//! predicted throughput on every grid shape — the CI acceptance gate
//! for the tall-skinny path.

use kami_gpu_sim::{device, Precision};
use kami_sched::{BlockWork, Decomposition, PlanCache, Scheduler};

/// The acceptance bar: predicted skinny throughput over data-parallel.
const GATE: f64 = 1.5;

/// The tall-skinny grid (every shape has `m, n ≤ 64`, `k ≥ 10^4`).
const GRID: [(usize, usize, usize); 6] = [
    (16, 16, 16384),
    (16, 16, 65536),
    (32, 32, 16384),
    (32, 32, 65536),
    (64, 64, 16384),
    (64, 16, 32768),
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "target/BENCH_tallskinny.json".into());
    // Blocks per workload: far fewer than the SM count, the regime
    // tall-skinny GEMMs actually arrive in (one or a handful of deep
    // products at a time). Square-tile DP then strands the device —
    // one block per SM, serial over the whole k — while Skinny-K
    // spreads each product's k chunks across the idle SMs and pays
    // only the lg-depth tree fixup. At saturating block counts both
    // decompositions fill the device and the ratio collapses to ~1,
    // which is exactly why the skinny path is latency infrastructure,
    // not throughput infrastructure.
    let blocks = if quick { 2 } else { 8 };
    let dev = device::gh200();
    let plans = PlanCache::new();

    println!(
        "# tallskinny_study: Skinny-K vs square-tile DP on {} ({} SMs), {blocks} blocks/shape",
        dev.name, dev.num_sms
    );
    println!(
        "{:>16} | {:>12} {:>12} | {:>10} {:>10} | {:>8} | {:>9}",
        "shape", "DP cycles", "SkK cycles", "DP TF", "SkK TF", "ratio", "auto"
    );

    let mut rows = Vec::new();
    let mut worst: f64 = f64::INFINITY;
    for &(m, n, k) in &GRID {
        let work = BlockWork::uniform(m, n, k, Precision::Fp16, blocks);
        let dp = Scheduler::new(&dev)
            .with_decomposition(Decomposition::DataParallel)
            .run(&work, &plans)
            .expect("data-parallel schedules every shape");
        let sk = Scheduler::new(&dev)
            .with_decomposition(Decomposition::SkinnyK)
            .run(&work, &plans)
            .expect("the grid is inside the skinny regime");
        let auto = Scheduler::new(&dev)
            .run(&work, &plans)
            .expect("auto schedules every shape");
        let ratio = sk.achieved_tflops / dp.achieved_tflops;
        worst = worst.min(ratio);
        println!(
            "{:>16} | {:>12.0} {:>12.0} | {:>10.2} {:>10.2} | {:>7.2}x | {:>9}",
            format!("{m}x{n}x{k}"),
            dp.makespan_cycles,
            sk.makespan_cycles,
            dp.achieved_tflops,
            sk.achieved_tflops,
            ratio,
            auto.decomposition.label(),
        );
        // Auto must never leave the skinny win on the table.
        assert!(
            auto.makespan_cycles <= sk.makespan_cycles * (1.0 + 1e-9),
            "{m}x{n}x{k}: auto ({}) slower than forced Skinny-K",
            auto.decomposition.label()
        );
        rows.push(format!(
            "    {{\"shape\": \"{m}x{n}x{k}\", \"dp_cycles\": {:.3}, \"skinny_cycles\": {:.3}, \
             \"dp_tflops\": {:.4}, \"skinny_tflops\": {:.4}, \"ratio\": {ratio:.4}, \
             \"auto\": \"{}\"}}",
            dp.makespan_cycles,
            sk.makespan_cycles,
            dp.achieved_tflops,
            sk.achieved_tflops,
            auto.decomposition.label(),
        ));
    }

    println!("\nworst skinny/DP throughput ratio over the grid: {worst:.2}x (gate {GATE}x)");

    let json = format!(
        "{{\n  \"study\": \"tallskinny_study\",\n  \"device\": \"{}\",\n  \
         \"blocks_per_shape\": {blocks},\n  \"gate\": \"skinny >= {GATE}x DP on every shape\",\n  \
         \"worst_ratio\": {worst:.4},\n  \"shapes\": [\n{}\n  ]\n}}\n",
        dev.name,
        rows.join(",\n"),
    );
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
    }
    std::fs::write(&out, json).expect("write BENCH_tallskinny.json");
    println!("wrote {out}");

    if worst < GATE {
        eprintln!("FAIL: skinny/DP ratio {worst:.2}x under the {GATE}x acceptance bar");
        std::process::exit(1);
    }
    println!("PASS: >= {GATE}x acceptance bar on every grid shape");
}
