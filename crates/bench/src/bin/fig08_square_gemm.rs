//! Regenerates Figure 8: block-level square GEMM across all four GPUs
//! and five precisions, plus the §5.2.1 speedup summaries.
//! Usage: fig08_square_gemm [--summary]
fn main() {
    let summary = std::env::args().any(|a| a == "--summary");
    for t in kami_bench::fig8_all_panels() {
        println!("{}", t.render());
        if summary {
            let s = t.summary(
                &["KAMI-1D", "KAMI-2D", "KAMI-3D"],
                &["cuBLASDx", "CUTLASS", "SYCL-Bench"],
            );
            if !s.is_empty() {
                println!("{s}");
            }
        }
    }
}
