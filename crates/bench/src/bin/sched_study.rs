//! Device-level scheduling study: data-parallel vs Stream-K makespan
//! across the paper's block shapes, against the closed-form estimates.
//!
//! For each shape the same 16 384-block workload (plus a tail-heavy
//! variant) is placed on GH200 by `kami-sched` under both
//! decompositions, and the resulting device TFLOPS are compared with
//! the `estimate_batched` wave model and `occupancy::analyze`'s
//! steady-state prediction — the simulation should straddle the two
//! closed forms.
//!
//! ```text
//! cargo run --release -p kami-bench --bin sched_study [--json out.json]
//! ```

use kami_bench::series::Table;
use kami_core::estimate_batched;
use kami_gpu_sim::{device, Precision};
use kami_sched::{BlockWork, Decomposition, PlanCache, Scheduler, PAPER_BLOCK_COUNT};

fn main() {
    let json_out = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1).cloned())
    };

    let dev = device::gh200();
    let plans = PlanCache::new();
    // The paper's block-level shapes (§5.2) at the batched precision
    // mix: FP16 small blocks, FP64 where the k-loop is deep enough for
    // Stream-K to split.
    let shapes: Vec<(usize, usize, usize, Precision)> = vec![
        (16, 16, 16, Precision::Fp16),
        (32, 32, 32, Precision::Fp16),
        (64, 64, 64, Precision::Fp16),
        (64, 64, 256, Precision::Fp64),
        (128, 128, 128, Precision::Fp16),
    ];

    println!(
        "Device-level scheduling study on {} ({} SMs)\n",
        dev.name, dev.num_sms
    );
    println!(
        "{:>16} | {:>10} {:>10} {:>8} | {:>10} {:>10} {:>10} | {:>9}",
        "shape", "DP cycles", "SK cycles", "SK/DP", "sched TF", "wave TF", "steady TF", "auto"
    );

    let mut table = Table::new(
        "Scheduler vs closed forms (uniform 16384-block workloads)",
        "shape index",
        "TFLOPS",
        (0..shapes.len()).collect(),
    );
    let mut dp_tf = Vec::new();
    let mut sk_tf = Vec::new();
    let mut wave_tf = Vec::new();
    let mut steady_tf = Vec::new();

    for &(m, n, k, prec) in &shapes {
        let work = BlockWork::uniform(m, n, k, prec, PAPER_BLOCK_COUNT);
        let dp = Scheduler::new(&dev)
            .with_decomposition(Decomposition::DataParallel)
            .run(&work, &plans)
            .expect("data-parallel schedules");
        let sk = Scheduler::new(&dev)
            .with_decomposition(Decomposition::StreamK)
            .run(&work, &plans)
            .ok();
        let auto = Scheduler::new(&dev)
            .run(&work, &plans)
            .expect("auto schedules");

        // Closed forms: the wave model extrapolates one tuned block;
        // the steady-state form comes from occupancy::analyze.
        let (entry, _) = plans
            .plan_for(&dev, &work.items[0])
            .expect("plan exists after scheduling");
        let wave = estimate_batched(&dev, &entry.tuned.cfg, m, n, k, PAPER_BLOCK_COUNT)
            .expect("wave estimate");
        let steady = entry.cost.occupancy.steady_tflops;

        let sk_cycles = sk.as_ref().map(|r| r.makespan_cycles);
        println!(
            "{:>4}x{:<4}k{:<4}{} | {:>10.0} {:>10} {:>8} | {:>10.1} {:>10.1} {:>10.1} | {:>9}",
            m,
            n,
            k,
            prec.label(),
            dp.makespan_cycles,
            sk_cycles.map_or("-".into(), |c| format!("{c:.0}")),
            sk_cycles.map_or("-".into(), |c| format!("{:.3}", c / dp.makespan_cycles)),
            dp.achieved_tflops.max(
                sk.as_ref()
                    .map(|r| r.achieved_tflops)
                    .unwrap_or(f64::NEG_INFINITY)
            ),
            wave.tflops(&dev),
            steady,
            auto.decomposition.label(),
        );

        dp_tf.push(Some(dp.achieved_tflops));
        sk_tf.push(sk.as_ref().map(|r| r.achieved_tflops));
        wave_tf.push(Some(wave.tflops(&dev)));
        steady_tf.push(Some(steady));
    }

    table.push_series("sched data-parallel", dp_tf);
    table.push_series("sched stream-k", sk_tf);
    table.push_series("wave model", wave_tf);
    table.push_series("occupancy steady-state", steady_tf);

    // Tail-heavy study: one block past an even wave, where Stream-K's
    // work-centric split pays off.
    println!("\nTail-heavy workloads (count = w·SMs + 1, 64x64 k=256 FP64):");
    println!(
        "{:>8} | {:>12} {:>12} {:>8} | {:>10} {:>10}",
        "count", "DP cycles", "SK cycles", "SK/DP", "DP imbal", "SK imbal"
    );
    for waves in [1usize, 2, 4, 8] {
        let count = dev.num_sms as usize * waves + 1;
        let work = BlockWork::uniform(64, 64, 256, Precision::Fp64, count);
        let dp = Scheduler::new(&dev)
            .with_decomposition(Decomposition::DataParallel)
            .run(&work, &plans)
            .expect("dp");
        let sk = Scheduler::new(&dev)
            .with_decomposition(Decomposition::StreamK)
            .run(&work, &plans)
            .expect("sk");
        println!(
            "{:>8} | {:>12.0} {:>12.0} {:>8.3} | {:>10.4} {:>10.4}",
            count,
            dp.makespan_cycles,
            sk.makespan_cycles,
            sk.makespan_cycles / dp.makespan_cycles,
            dp.tail_imbalance,
            sk.tail_imbalance,
        );
    }

    println!(
        "\nPlan cache: {} shapes held, {} hits / {} misses (every repeated \
         shape reused its tuned config)",
        plans.len(),
        plans.hits(),
        plans.misses()
    );
    println!("\n{}", table.render());

    if let Some(path) = json_out {
        std::fs::write(&path, table.to_json()).expect("write json");
        println!("wrote {path}");
    }
}
