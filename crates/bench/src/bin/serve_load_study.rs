//! Sustained-load study: the sharded admission path under a
//! multi-producer firehose of small mixed requests.
//!
//! Small single-block GEMMs are the worst case for tick-based dispatch:
//! each one occupies a sliver of the device, so aggregate throughput is
//! set almost entirely by how deep a batch each tick can coalesce. The
//! study drives the same deterministic mixed trace (dense 16x16x16 fp16
//! with skinny, fused-epilogue, and block-sparse riders) from several
//! producer threads through two server configurations:
//!
//! * **baseline** — the pre-shard single queue: `admission_shards: 1`,
//!   `queue_capacity: 64` (the old default admission bound);
//! * **sharded** — the sharded admission path at sustained depth:
//!   `admission_shards: 8`, `queue_capacity: 4096`.
//!
//! Producers saturate the queue (spinning on `QueueFull` like a
//! load-shedding client would) and the driver ticks only when admission
//! is full, so every dispatch sees the configured depth — sustained
//! load, not a drain of a pre-built backlog. Requests are generated
//! lazily per index; nothing holds 10^6 payloads at once.
//!
//! ```text
//! cargo run --release -p kami-bench --bin serve_load_study [-- --quick] [--out PATH]
//! ```
//!
//! Reports simulated aggregate throughput (requests per megacycle) and
//! completion-latency percentiles (p50/p99/p999, end-to-end from
//! admission) from the server's own [`kami_serve::CycleHistogram`],
//! emits
//! `target/BENCH_serve_load.json` plus the sharded leg's Prometheus
//! text export, and exits nonzero if either CI gate fails:
//!
//! * sharded simulated throughput must be >= 2x the baseline leg;
//! * in `--quick` mode, the sharded p99 must stay within 1.5x of the
//!   checked-in reference (`crates/bench/data/serve_load_baseline.json`).
//!
//! Full mode pushes >= 10^6 requests through the sharded leg; the
//! baseline leg samples a 20k-request prefix of the same trace (its
//! simulated rate is depth-determined and stable long before that).

use kami_core::{Epilogue, GemmRequest, KamiConfig};
use kami_gpu_sim::{device, Matrix, Precision};
use kami_serve::{Metrics, ServeRequest, Server, ServerConfig};
use kami_sparse::{gen, BlockOrder};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Producer threads per leg.
const PRODUCERS: usize = 4;

/// The deterministic mixed trace, generated lazily by index. Per 500
/// requests: one SpMM, one tall-ish skinny GEMM, two fused-epilogue
/// GEMMs, and 496 plain dense 16x16x16 fp16 (one device block each —
/// the shape class that makes admission depth the whole ballgame).
fn request_at(i: usize) -> ServeRequest {
    let seed = i as u64;
    match i % 500 {
        0 => {
            let cfg = KamiConfig::new(kami_core::Algo::TwoD, Precision::Fp16);
            let a = gen::random_block_sparse(32, 32, 16, 0.4, BlockOrder::ZMorton, seed);
            let b = Matrix::seeded_uniform(32, 32, seed + 5_000);
            ServeRequest::spmm(a, b, cfg)
        }
        1 => {
            let a = Matrix::seeded_uniform(16, 256, seed);
            let b = Matrix::seeded_uniform(256, 16, seed + 10_000);
            ServeRequest::gemm(a, b, Precision::Fp16)
        }
        2 | 3 => {
            let a = Matrix::seeded_uniform(16, 16, seed);
            let b = Matrix::seeded_uniform(16, 16, seed + 10_000);
            ServeRequest::dense(
                GemmRequest::gemm_auto(a, b)
                    .precision(Precision::Fp16)
                    .with_epilogue(Epilogue::Relu),
            )
        }
        _ => {
            let a = Matrix::seeded_uniform(16, 16, seed);
            let b = Matrix::seeded_uniform(16, 16, seed + 10_000);
            ServeRequest::gemm(a, b, Precision::Fp16)
        }
    }
}

struct LegStats {
    clock: f64,
    wall_secs: f64,
    metrics: Metrics,
    prometheus: String,
}

impl LegStats {
    /// Simulated aggregate throughput in requests per megacycle.
    fn requests_per_megacycle(&self) -> f64 {
        self.metrics.completed as f64 / self.clock * 1e6
    }
}

/// Drive `total` requests through one server config: `PRODUCERS`
/// submitter threads spinning on `QueueFull`, one driver thread that
/// ticks only when admission is full (or the producers are finished),
/// so every dispatch runs at the configured depth.
fn run_leg(shards: usize, capacity: usize, total: usize) -> LegStats {
    let dev = device::gh200();
    let server = Server::with_config(
        &dev,
        ServerConfig {
            queue_capacity: capacity,
            admission_shards: shards,
            ..ServerConfig::default()
        },
    );
    let producers_done = AtomicUsize::new(0);
    let t0 = Instant::now();

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let server = &server;
            let producers_done = &producers_done;
            s.spawn(move || {
                let mut window: VecDeque<kami_serve::Ticket> = VecDeque::new();
                for i in (p..total).step_by(PRODUCERS) {
                    let req = std::sync::Arc::new(request_at(i));
                    let ticket = loop {
                        match server.submit_shared(std::sync::Arc::clone(&req)) {
                            Ok(t) => break t,
                            Err(kami_serve::ServeError::QueueFull { .. }) => {
                                // Reap whatever already resolved, then
                                // let the driver drain the queue.
                                while window.front().is_some_and(|t| t.is_done()) {
                                    let t = window.pop_front().unwrap();
                                    t.wait().expect("trace request must serve");
                                }
                                std::thread::yield_now();
                            }
                            Err(e) => panic!("submission failed under load: {e}"),
                        }
                    };
                    window.push_back(ticket);
                    while window.front().is_some_and(|t| t.is_done()) {
                        let t = window.pop_front().unwrap();
                        t.wait().expect("trace request must serve");
                    }
                }
                producers_done.fetch_add(1, Ordering::SeqCst);
                for t in window {
                    t.wait().expect("trace request must serve");
                }
            });
        }

        // The driver: dispatch full batches while producers are live,
        // then drain the tail.
        while producers_done.load(Ordering::SeqCst) < PRODUCERS || server.pending() > 0 {
            if server.pending() >= capacity || producers_done.load(Ordering::SeqCst) == PRODUCERS {
                server.tick();
            } else {
                std::thread::yield_now();
            }
        }
    });

    let wall_secs = t0.elapsed().as_secs_f64();
    let metrics = server.metrics();
    assert_eq!(metrics.completed as usize, total, "every request resolves");
    LegStats {
        clock: server.clock(),
        wall_secs,
        metrics,
        prometheus: server.to_prometheus(),
    }
}

fn leg_json(label: &str, shards: usize, capacity: usize, stats: &LegStats) -> String {
    let m = &stats.metrics;
    let h = &m.completion_cycles;
    format!(
        "  \"{label}\": {{\n    \"admission_shards\": {shards},\n    \
         \"queue_capacity\": {capacity},\n    \"requests\": {},\n    \
         \"simulated_cycles\": {:.3},\n    \"requests_per_megacycle\": {:.3},\n    \
         \"wall_secs\": {:.3},\n    \"wall_requests_per_sec\": {:.1},\n    \
         \"p50_cycles\": {:.3},\n    \"p99_cycles\": {:.3},\n    \"p999_cycles\": {:.3},\n    \
         \"ticks\": {},\n    \"max_queue_depth\": {},\n    \"max_parked_depth\": {},\n    \
         \"admission_failovers\": {},\n    \"rejected_queue_full\": {}\n  }}",
        m.completed,
        stats.clock,
        stats.requests_per_megacycle(),
        stats.wall_secs,
        m.completed as f64 / stats.wall_secs,
        h.p50(),
        h.p99(),
        h.p999(),
        m.ticks,
        m.max_queue_depth,
        m.max_parked_depth,
        m.admission_failovers,
        m.rejected_queue_full,
    )
}

fn print_leg(label: &str, stats: &LegStats) {
    let m = &stats.metrics;
    let h = &m.completion_cycles;
    println!(
        "{label:<22} {:>10} {:>14.0} {:>12.1} {:>10.0} {:>10.0} {:>10.0} {:>8} {:>9.1}",
        m.completed,
        stats.clock,
        stats.requests_per_megacycle(),
        h.p50(),
        h.p99(),
        h.p999(),
        m.ticks,
        m.completed as f64 / stats.wall_secs,
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "target/BENCH_serve_load.json".into());

    let total = if quick { 8_192 } else { 1_000_000 };
    let baseline_total = total.min(20_000);
    let (base_shards, base_cap) = (1usize, 64usize);
    let (new_shards, new_cap) = (8usize, 4_096usize);

    println!("# serve_load_study: sustained mixed load, GH200, {PRODUCERS} producers");
    println!(
        "# mix per 500 requests: 1 spmm + 1 skinny(16x16x256) + 2 relu-epilogue + 496 dense 16^3 fp16"
    );
    println!(
        "# sharded leg: {total} requests at shards={new_shards} cap={new_cap}; \
         baseline leg: {baseline_total} requests at shards={base_shards} cap={base_cap}\n"
    );

    println!(
        "{:<22} {:>10} {:>14} {:>12} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "config", "requests", "sim cycles", "req/Mcycle", "p50", "p99", "p999", "ticks", "wall r/s"
    );
    let baseline = run_leg(base_shards, base_cap, baseline_total);
    print_leg("single-queue baseline", &baseline);
    let sharded = run_leg(new_shards, new_cap, total);
    print_leg("sharded admission", &sharded);

    let speedup = sharded.requests_per_megacycle() / baseline.requests_per_megacycle();
    println!("\nsimulated throughput speedup (sharded / baseline): {speedup:.2}x");

    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
    }
    let json = format!(
        "{{\n  \"study\": \"serve_load_study\",\n  \"device\": \"GH200\",\n  \
         \"quick\": {quick},\n  \"producers\": {PRODUCERS},\n\
         {},\n{},\n  \"speedup\": {speedup:.3},\n  \
         \"gate\": \"sharded >= 2x baseline simulated throughput; quick p99 within 1.5x reference\"\n}}\n",
        leg_json("baseline", base_shards, base_cap, &baseline),
        leg_json("sharded", new_shards, new_cap, &sharded),
    );
    std::fs::write(&out, json).expect("write BENCH_serve_load.json");
    let prom_out = format!("{}.prom", out.trim_end_matches(".json"));
    std::fs::write(&prom_out, &sharded.prometheus).expect("write prometheus export");
    println!("wrote {out} and {prom_out}");

    let mut failed = false;
    if speedup < 2.0 {
        eprintln!("FAIL: sharded throughput {speedup:.2}x under the 2x acceptance bar");
        failed = true;
    }
    if quick {
        // Latency regression gate against the checked-in reference run.
        let reference: serde_json::Value =
            serde_json::from_str(include_str!("../../data/serve_load_baseline.json"))
                .expect("reference JSON parses");
        let ref_p99 = reference["sharded"]["p99_cycles"]
            .as_f64()
            .expect("reference carries sharded.p99_cycles");
        let p99 = sharded.metrics.completion_cycles.p99();
        let bound = ref_p99 * 1.5;
        if p99 > bound {
            eprintln!(
                "FAIL: sharded p99 {p99:.0} cycles regressed past 1.5x the checked-in \
                 reference ({ref_p99:.0} -> bound {bound:.0})"
            );
            failed = true;
        } else {
            println!("p99 {p99:.0} cycles within 1.5x of checked-in reference {ref_p99:.0}");
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("PASS: >= 2x sustained-throughput acceptance bar");
}
