//! Runs every experiment regenerator in DESIGN.md's index and prints the
//! full set of tables with the §5.2.1-style speedup summaries; with
//! `--json DIR` each table is also written as `DIR/<slug>.json`.
//!
//! ```text
//! cargo run --release -p kami-bench --bin all_experiments [-- --json target/experiments]
//! ```

use kami_bench::series::Table;
use kami_core::Algo;
use kami_gpu_sim::device;
use std::fs;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_dir: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from);
    if let Some(dir) = &json_dir {
        fs::create_dir_all(dir).expect("create json dir");
    }

    let emit = |slug: &str, t: &Table| {
        println!("{}", t.render());
        if let Some(dir) = &json_dir {
            fs::write(dir.join(format!("{slug}.json")), t.to_json()).expect("write json");
        }
    };

    println!("{}", kami_bench::tab3_devices());
    println!("{}", kami_bench::tab4_shapes());

    emit("fig03_cublas", &kami_bench::fig3_cublas_curve());
    emit("fig03_cublasdx", &kami_bench::fig3_cublasdx_curve());

    for (i, t) in kami_bench::fig8_all_panels().iter().enumerate() {
        emit(&format!("fig08_panel{i}"), t);
        let s = t.summary(
            &["KAMI-1D", "KAMI-2D", "KAMI-3D"],
            &["cuBLASDx", "CUTLASS", "SYCL-Bench"],
        );
        if !s.is_empty() {
            println!("{s}");
        }
    }

    emit("fig09_block_size", &kami_bench::fig9_block_size());
    emit("fig10_smem_ratio", &kami_bench::fig10_smem_ratio());

    for k in [16, 32] {
        let t = kami_bench::fig11_lowrank(k);
        emit(&format!("fig11_lowrank_k{k}"), &t);
        println!("{}", t.summary(&["KAMI"], &["cuBLASDx", "CUTLASS"]));
    }

    for batch in [1000usize, 10000] {
        let t = kami_bench::fig12_batched(batch);
        emit(&format!("fig12_batched_{batch}"), &t);
        println!("{}", t.summary(&["KAMI"], &["MAGMA", "cuBLAS"]));
    }

    let (tm, tg) = kami_bench::fig13_sparse();
    emit("fig13_spmm", &tm);
    emit("fig13_spgemm", &tg);

    emit("fig14_registers", &kami_bench::fig14_registers());

    for dev in [device::gh200(), device::rtx5090()] {
        for algo in Algo::ALL {
            if let Ok(t) = kami_bench::fig15_cycles(&dev, algo) {
                let slug = format!(
                    "fig15_{}_{}",
                    algo.label().to_lowercase().replace('-', ""),
                    dev.name.to_lowercase().replace(' ', "_")
                );
                emit(&slug, &t);
            }
        }
    }

    emit("tab_onchip_usage", &kami_bench::tab_onchip_usage());
    println!("done: every table and figure of the evaluation regenerated.");
}
