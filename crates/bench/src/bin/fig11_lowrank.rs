//! Regenerates Figure 11: low-rank GEMM (k = 16 and 32), FP16, GH200.
fn main() {
    for k in [16, 32] {
        let t = kami_bench::fig11_lowrank(k);
        println!("{}", t.render());
        println!("{}", t.summary(&["KAMI"], &["cuBLASDx", "CUTLASS"]));
    }
}
