//! Prints Table 4 (programming APIs / native MMA shapes).
fn main() {
    println!("{}", kami_bench::tab4_shapes());
}
