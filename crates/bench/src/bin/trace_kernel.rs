//! Dump a Chrome-tracing timeline of one KAMI block kernel.
//!
//! ```text
//! cargo run --release -p kami-bench --bin trace_kernel -- [1d|2d|3d] [n] [out.json] [sim|native]
//! ```
//!
//! Open the output in chrome://tracing or <https://ui.perfetto.dev> — one
//! track per warp, ops colored by category (smem store/load, mma, ...).

use kami_core::{Algo, KamiConfig};
use kami_gpu_sim::{device, BackendKind, Engine, GlobalMemory, Matrix, Precision, RunOptions};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let algo = match args.get(1).map(String::as_str) {
        Some("2d") => Algo::TwoD,
        Some("3d") => Algo::ThreeD,
        _ => Algo::OneD,
    };
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(64);
    let out = args
        .get(3)
        .cloned()
        .unwrap_or_else(|| format!("trace_{}_{n}.json", algo.label().to_lowercase()));
    // Backend affects numerics only — the trace and cycle report come
    // from the cost pass — but exposing it keeps the bin an easy smoke
    // check for the seam.
    let backend: BackendKind = args
        .get(4)
        .map(|s| s.parse().expect("backend is sim|native"))
        .unwrap_or_default();

    let dev = device::gh200();
    let prec = Precision::Fp16;
    let cfg = KamiConfig::new(algo, prec);
    cfg.validate(&dev, n, n, n).expect("valid config");

    let a = Matrix::seeded_uniform(n, n, 1);
    let b = Matrix::seeded_uniform(n, n, 2);
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", &a, prec);
    let bb = gmem.upload("B", &b, prec);
    let cb = gmem.alloc_zeroed("C", n, n, prec);
    let kernel = match algo {
        Algo::OneD => kami_core::algo1d::build_kernel(&cfg, n, n, n, ab, bb, cb, prec),
        Algo::TwoD => kami_core::algo2d::build_kernel(&cfg, n, n, n, ab, bb, cb, prec),
        Algo::ThreeD => kami_core::algo3d::build_kernel(&cfg, n, n, n, ab, bb, cb, prec),
    };

    let arts = Engine::new(&dev)
        .run_kernel(
            &kernel,
            &mut gmem,
            &RunOptions::default().traced().with_backend(backend),
        )
        .expect("runs");
    let (report, trace) = (arts.report, arts.trace.expect("traced run"));
    std::fs::write(&out, trace.to_chrome_json()).expect("write trace");
    println!(
        "{} {}x{}x{} on {}: {:.0} cycles, {} events -> {}",
        algo.label(),
        n,
        n,
        n,
        dev.name,
        report.cycles,
        trace.events.len(),
        out
    );
    println!("open in chrome://tracing or https://ui.perfetto.dev");
    // Terminal summary per category.
    use kami_gpu_sim::TraceKind::*;
    for kind in [
        GlobalLoad,
        SharedStore,
        SharedLoad,
        Mma,
        RegCopy,
        GlobalStore,
    ] {
        println!(
            "  {:<11} {:>10.1} warp-cycles",
            kind.label(),
            trace.cycles_by_kind(kind)
        );
    }
}
