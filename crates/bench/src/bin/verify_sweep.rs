//! Differential cross-check sweep over the verify-harness grid
//! (device × algorithm × precision × seeded cases).
//!
//! ```text
//! verify_sweep --quick              # the CI leg: 216 cases, fixed seed
//! verify_sweep --seed 7 --cases 12  # a deeper custom sweep
//! ```
//!
//! Exits 0 when every case passes its four cross-checks (numerics vs
//! reference, engine vs Formulas 1–12, scheduler vs its trace, sparse
//! vs densified dense); on any mismatch it prints the shrunk minimal
//! case plus a paste-ready regression test and exits 1.
//!
//! The sweep is followed by the fleet replay leg: a 200-request mixed
//! trace served by a single `Server` and by a 4-preset × 2-replica
//! `FleetServer` must return byte-identical `GemmResponse` numerics
//! per request, conserve every ticket, and stay cost-coherent across
//! same-class replicas. Runs in `--quick` too.

use kami_verify::sweep;
use kami_verify::{FleetServedCase, Harness};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: verify_sweep [--quick] [--seed N] [--cases N] [--max-failures N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = sweep::quick();
    let mut quick = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut num = |name: &str| -> u64 {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{name} needs a numeric argument");
                usage()
            })
        };
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => cfg.seed = num("--seed"),
            "--cases" => cfg.cases_per_cell = num("--cases") as usize,
            "--max-failures" => cfg.max_failures = (num("--max-failures") as usize).max(1),
            _ => usage(),
        }
    }
    if quick {
        // --quick pins the CI profile's case count, keeping whatever
        // --seed override came alongside it.
        cfg.cases_per_cell = sweep::quick().cases_per_cell;
    }

    println!(
        "verify_sweep: seed {:#x}, {} cases per cell",
        cfg.seed, cfg.cases_per_cell
    );
    let outcome = sweep::sweep(&cfg, &Harness::default());
    print!("{}", outcome.summary());
    if !outcome.is_clean() {
        return ExitCode::FAILURE;
    }

    // Fleet replay: 200 mixed requests, Server vs FleetServer
    // (4 presets × 2 replicas), held to per-request bit-identity,
    // ticket conservation, and twin cost coherence.
    let fleet_case = FleetServedCase {
        requests: 200,
        seed: cfg.seed,
        replicas_per_class: 2,
        ..FleetServedCase::default()
    };
    match fleet_case.replay() {
        Ok(replay) => {
            println!(
                "fleet replay: {} requests bit-identical across 1-device and {}-replica \
                 serving; fleet p99 completion {} cycles",
                replay.requests,
                replay.fleet.replicas.len(),
                replay.fleet.completion_cycles.p99(),
            );
        }
        Err(m) => {
            eprintln!("fleet replay FAILED: {m}");
            return ExitCode::FAILURE;
        }
    }

    // The same seam with the observation channel live: feedback on,
    // every class mis-modeled 2x — placement may shift, bits may not.
    let feedback_case = FleetServedCase {
        requests: 60,
        seed: cfg.seed,
        replicas_per_class: 2,
        feedback: true,
        ..FleetServedCase::default()
    };
    match feedback_case.replay() {
        Ok(replay) => {
            println!(
                "feedback replay: {} requests bit-identical with feedback live \
                 ({} observations, {} corrections)",
                replay.requests,
                replay.fleet.plan_cache.feedback_observations,
                replay.fleet.plan_cache.feedback_corrections,
            );
            ExitCode::SUCCESS
        }
        Err(m) => {
            eprintln!("feedback replay FAILED: {m}");
            ExitCode::FAILURE
        }
    }
}
