//! Heterogeneous fleet throughput: cost-oracle routing across the four
//! Table 3 device classes vs a single replica and vs round-robin.
//!
//! The study drains one deterministic mixed trace — tall-skinny panels
//! (GH200's SM count dominates) interleaved with square-ish tiles (the
//! high-clock classes are competitive) — through four servings:
//!
//! * one GH200 replica (the single-replica baseline);
//! * each Table 3 class alone at one replica (for the full picture);
//! * the 4-preset heterogeneous fleet under round-robin placement;
//! * the same fleet under cost-oracle (earliest-completion) placement.
//!
//! All servings dispatch solo groups (`coalesce: false`): same-shape
//! pooling absorbs an identical-shape burst at roughly the cost of one
//! request, which would make any multi-replica comparison degenerate —
//! the study models shape-diverse multi-tenant traffic instead.
//! Throughput is requests per *simulated* second (each replica's cycle
//! clock over its own boost clock), so the comparison is device-fair.
//!
//! ```text
//! cargo run --release -p kami-bench --bin fleet_study [-- --quick] [--out PATH]
//! ```
//!
//! Emits `target/BENCH_fleet.json` (override with `--out`) and exits
//! nonzero if the cost-oracle fleet falls under 1.5x the aggregate
//! throughput of the single GH200 replica — the CI acceptance gate for
//! fleet routing.

use kami_gpu_sim::{device, DeviceSpec, Matrix, Precision};
use kami_serve::{FleetConfig, FleetServer, FleetSpec, RoutingPolicy, ServeRequest, ServerConfig};

/// The two shape classes of the mixed trace: tall-skinny panel and
/// square-ish tile, both FP16-feasible on every Table 3 class.
const TALL_SKINNY: (usize, usize, usize) = (4096, 16, 16);
const SQUARE: (usize, usize, usize) = (256, 256, 64);

fn trace(total: usize) -> Vec<ServeRequest> {
    (0..total)
        .map(|i| {
            let (m, n, k) = if i % 2 == 0 { TALL_SKINNY } else { SQUARE };
            let seed = i as u64;
            let a = Matrix::seeded_uniform(m, k, seed);
            let b = Matrix::seeded_uniform(k, n, seed + 10_000);
            ServeRequest::gemm(a, b, Precision::Fp16)
        })
        .collect()
}

/// Drain the trace through one fleet; return the aggregate makespan in
/// simulated seconds (`None` if the fleet cannot serve the trace).
fn run(spec: FleetSpec, policy: RoutingPolicy, requests: &[ServeRequest]) -> Option<f64> {
    let fleet = FleetServer::with_config(
        spec,
        FleetConfig {
            server: ServerConfig {
                queue_capacity: requests.len(),
                coalesce: false,
                ..ServerConfig::default()
            },
            policy,
        },
    );
    let mut tickets = Vec::with_capacity(requests.len());
    for r in requests {
        tickets.push(fleet.submit(r.clone()).ok()?);
    }
    fleet.shutdown_and_drain();
    for t in tickets {
        t.wait().ok()?;
    }
    Some(fleet.metrics().makespan_secs())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "target/BENCH_fleet.json".into());
    let total = if quick { 24 } else { 48 };
    let requests = trace(total);

    println!("# fleet_study: aggregate throughput on a {total}-request mixed trace");
    println!(
        "# ({}x{}x{} tall-skinny + {}x{}x{} square, fp16, solo dispatch)\n",
        TALL_SKINNY.0, TALL_SKINNY.1, TALL_SKINNY.2, SQUARE.0, SQUARE.1, SQUARE.2
    );

    let mut rows: Vec<(String, usize, f64)> = Vec::new();
    let single = run(
        FleetSpec::homogeneous(&device::gh200(), 1),
        RoutingPolicy::EarliestCompletion,
        &requests,
    )
    .expect("the trace is feasible on GH200");
    rows.push(("single replica (GH200)".into(), 1, single));

    for dev in DeviceSpec::all_evaluated() {
        if dev.name == device::gh200().name {
            continue; // already the baseline row
        }
        if let Some(makespan) = run(
            FleetSpec::homogeneous(&dev, 1),
            RoutingPolicy::EarliestCompletion,
            &requests,
        ) {
            rows.push((format!("single replica ({})", dev.name), 1, makespan));
        }
    }

    let spec = FleetSpec::table3(1);
    let replicas = spec.total_replicas();
    let rr = run(spec.clone(), RoutingPolicy::RoundRobin, &requests)
        .expect("the trace is feasible on every class");
    rows.push(("heterogeneous, round-robin".into(), replicas, rr));
    let oracle = run(spec, RoutingPolicy::EarliestCompletion, &requests)
        .expect("the trace is feasible on every class");
    rows.push(("heterogeneous, cost oracle".into(), replicas, oracle));

    println!(
        "{:<34} {:>9} {:>16} {:>14}",
        "fleet", "replicas", "makespan (s)", "req/sim-sec"
    );
    for (label, n, makespan) in &rows {
        println!(
            "{label:<34} {n:>9} {makespan:>16.3e} {:>14.1}",
            total as f64 / makespan
        );
    }

    let speedup = single / oracle;
    let vs_rr = rr / oracle;
    println!("\noracle vs single GH200 replica: {speedup:.2}x aggregate throughput");
    println!("oracle vs round-robin (same fleet): {vs_rr:.2}x");

    let rows_json = rows
        .iter()
        .map(|(label, n, makespan)| {
            format!(
                "    {{\"fleet\": \"{label}\", \"replicas\": {n}, \
                 \"makespan_secs\": {makespan:.6e}, \
                 \"requests_per_sim_sec\": {:.3}}}",
                total as f64 / makespan
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"study\": \"fleet_study\",\n  \"requests\": {total},\n  \
         \"trace\": [\"{}x{}x{}\", \"{}x{}x{}\"],\n  \"rows\": [\n{rows_json}\n  ],\n  \
         \"oracle_vs_single_speedup\": {speedup:.3},\n  \
         \"oracle_vs_round_robin\": {vs_rr:.3},\n  \
         \"gate\": \"oracle >= 1.5x single GH200 replica\"\n}}\n",
        TALL_SKINNY.0, TALL_SKINNY.1, TALL_SKINNY.2, SQUARE.0, SQUARE.1, SQUARE.2
    );
    if let Some(parent) = std::path::Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
    }
    std::fs::write(&out, json).expect("write BENCH_fleet.json");
    println!("wrote {out}");

    if speedup < 1.5 {
        eprintln!("FAIL: oracle fleet {speedup:.2}x under the 1.5x acceptance bar");
        std::process::exit(1);
    }
    println!("PASS: >= 1.5x acceptance bar");
}
