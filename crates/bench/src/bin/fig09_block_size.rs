//! Regenerates Figure 9: impact of block size (threads per block) on
//! 64x64 FP16 GEMM, RTX 5090.
fn main() {
    let t = kami_bench::fig9_block_size();
    println!("{}", t.render());
    println!(
        "Paper shape check: KAMI-1D stays high across block sizes; KAMI-2D\n\
         reaches ~half of 1D at 64 threads; KAMI-3D only performs once the\n\
         block exceeds 256 threads (8 warps)."
    );
}
