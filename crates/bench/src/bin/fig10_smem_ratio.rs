//! Regenerates Figure 10: impact of the register/shared-memory parking
//! ratio (§4.7) on FP16 block GEMM, RTX 5090.
fn main() {
    let t = kami_bench::fig10_smem_ratio();
    println!("{}", t.render());
    println!(
        "Paper shape check: small orders (32-64) run best with 0% parked —\n\
         shared memory only degrades; at 128-192 the 0% column overflows the\n\
         register file ('-') so moderate parking is required, and 75% is\n\
         slower than the smallest fitting ratio."
    );
}
