//! Interactive inspector: run one KAMI configuration end to end and
//! print everything the simulator knows about it — cycle breakdown,
//! volumes vs. the analytic model, register pressure, and the phase
//! timeline.
//!
//! ```text
//! cargo run --release -p kami-bench --bin sweep -- \
//!     [--device gh200|5090|amd|intel] [--device-file spec.json] \
//!     [--algo 1d|2d|3d] \
//!     [--prec fp64|tf32|fp16|fp8] [--m M] [--n N] [--k K] \
//!     [--warps P] [--fraction F]
//! ```

use kami_core::model::cycles::{self, ModelParams};
use kami_core::{Algo, KamiConfig};
use kami_gpu_sim::{device, DeviceSpec, Matrix, Precision};

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let dev: DeviceSpec = if let Some(path) = arg("--device-file") {
        let json =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        DeviceSpec::from_json(&json).unwrap_or_else(|e| panic!("bad device spec: {e}"))
    } else {
        match arg("--device").as_deref() {
            Some("5090") => device::rtx5090(),
            Some("amd") => device::amd_7900xtx(),
            Some("intel") => device::intel_max1100(),
            _ => device::gh200(),
        }
    };
    let algo = match arg("--algo").as_deref() {
        Some("2d") => Algo::TwoD,
        Some("3d") => Algo::ThreeD,
        _ => Algo::OneD,
    };
    let prec = match arg("--prec").as_deref() {
        Some("fp64") => Precision::Fp64,
        Some("tf32") => Precision::Tf32,
        Some("fp8") => Precision::Fp8E4M3,
        _ => Precision::Fp16,
    };
    let m: usize = arg("--m").and_then(|s| s.parse().ok()).unwrap_or(64);
    let n: usize = arg("--n").and_then(|s| s.parse().ok()).unwrap_or(m);
    let k: usize = arg("--k").and_then(|s| s.parse().ok()).unwrap_or(m);
    let mut cfg = KamiConfig::new(algo, prec);
    if let Some(p) = arg("--warps").and_then(|s| s.parse().ok()) {
        cfg.warps = p;
    }
    if let Some(f) = arg("--fraction").and_then(|s| s.parse().ok()) {
        cfg.smem_fraction = f;
    }

    println!(
        "{} {}x{}x{} {} on {} ({} warps, smem fraction {})\n",
        algo.label(),
        m,
        n,
        k,
        prec.label(),
        dev.name,
        cfg.warps,
        cfg.smem_fraction
    );

    let a = Matrix::seeded_uniform(m, k, 1);
    let b = Matrix::seeded_uniform(k, n, 2);
    let res = match kami_core::gemm_auto(&dev, &cfg, &a, &b) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("configuration does not run: {e}");
            std::process::exit(1);
        }
    };
    let r = &res.report;

    println!("cycles (serial model): {:>10.1}", r.cycles);
    println!("  communication:       {:>10.1}", r.totals.comm);
    println!("  computation:         {:>10.1}", r.totals.compute);
    println!("  global memory:       {:>10.1}", r.totals.global);
    println!("  register copies:     {:>10.1}", r.totals.reg);
    println!("phases: {}", r.phase_costs.len());
    println!();
    println!(
        "shared memory: {} B written, {} B read, {} B footprint",
        r.smem_bytes_written, r.smem_bytes_read, r.smem_extent
    );
    println!(
        "global memory: {} B read, {} B written",
        r.gmem_bytes_read, r.gmem_bytes_written
    );
    println!(
        "registers/thread: {} measured ({} theoretical), limit {}",
        r.max_registers().measured_regs,
        r.max_registers().theoretical_regs,
        dev.max_regs_per_thread
    );
    println!(
        "flops: {} charged / {} useful ({:.1}% padding)",
        r.flops_charged,
        res.useful_flops,
        100.0 * (r.flops_charged as f64 / res.useful_flops as f64 - 1.0)
    );
    println!("smem fraction actually used: {}", res.smem_fraction);
    println!();
    println!(
        "block-level throughput: {:.1} TFLOPS ({} SMs at {} MHz)",
        res.block_tflops(&dev),
        dev.num_sms,
        dev.boost_clock_mhz
    );

    let occ = kami_gpu_sim::analyze_occupancy(&dev, r, res.useful_flops);
    println!(
        "occupancy: {} resident blocks/SM (limited by {:?});\n\
         steady-state {:.1} TFLOPS (limited by {:?})",
        occ.resident_blocks, occ.residency_limiter, occ.steady_tflops, occ.rate_limiter
    );

    if let Some(prm) = ModelParams::from_device(&dev, prec) {
        let t_comm = cycles::t_all_comm(algo, m, n, k, cfg.warps, &prm);
        let t_comp = cycles::t_all_compute(m, n, k, &prm);
        println!();
        println!("analytic model (Formulas 1-12, unparked, unpadded):");
        println!(
            "  comm {:.1} (measured {:.1}), compute {:.1} (measured {:.1})",
            t_comm, r.totals.comm, t_comp, r.totals.compute
        );
        println!(
            "  per-stage V_cm: {} B",
            cycles::v_cm_per_stage(algo, m, n, k, cfg.warps, prm.s_e) as u64
        );
    }
}
