//! Sparse scheduling study: data-parallel vs nnz-weighted Stream-K
//! makespan across sparsity families (uniform, banded, power-law) from
//! `kami_sparse::gen`, on GH200.
//!
//! For each family and order the SpMM work stream is placed under both
//! decompositions (plus `Auto`), and the predicted makespans are
//! compared with `occupancy::analyze_stream`'s ideal lower bound and
//! the `sparse::model` closed form. A second section runs the SpGEMM
//! streams. The point of the study: quantized data-parallel placement
//! pays the full nnz skew (one SM draws the dense block row and the
//! device waits), while the nnz split tracks the ideal bound.
//!
//! ```text
//! cargo run --release -p kami-bench --bin sched_sparse_study [--quick] [--json out.json]
//! ```

use kami_bench::series::Table;
use kami_core::model::cycles::ModelParams;
use kami_core::Algo;
use kami_gpu_sim::{analyze_occupancy_stream, device, Precision};
use kami_sched::{Decomposition, PlanCache, Scheduler, SparseWork};
use kami_sparse::gen::{
    patterned_block_sparse, power_law_block_sparse, random_block_sparse, Pattern,
};
use kami_sparse::{model, BlockOrder, BlockSparseMatrix};

const BLOCK: usize = 16;
const DENSE_COLS: usize = 64;

fn families(n: usize) -> Vec<(&'static str, BlockSparseMatrix)> {
    vec![
        (
            "uniform d=0.5",
            random_block_sparse(n, n, BLOCK, 0.5, BlockOrder::RowMajor, 41),
        ),
        (
            "banded hw=2",
            patterned_block_sparse(
                n,
                BLOCK,
                Pattern::Banded { half_width: 2 },
                BlockOrder::RowMajor,
                42,
            ),
        ),
        (
            "power-law a=1.2",
            power_law_block_sparse(n, BLOCK, 1.2, BlockOrder::RowMajor, 43),
        ),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_out = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1).cloned());

    let dev = device::gh200();
    let plans = PlanCache::new();
    let orders: Vec<usize> = if quick {
        vec![512, 1024]
    } else {
        vec![256, 512, 1024, 2048]
    };

    println!(
        "Sparse scheduling study on {} ({} SMs), block {BLOCK}, SpMM n_B={DENSE_COLS}\n",
        dev.name, dev.num_sms
    );
    println!(
        "{:>6} {:>16} | {:>6} {:>6} | {:>11} {:>11} {:>11} {:>7} | {:>11} {:>12}",
        "n",
        "family",
        "items",
        "skew",
        "DP cycles",
        "SK cycles",
        "ideal",
        "DP/SK",
        "auto",
        "model cyc"
    );

    let mut table = Table::new(
        "SpMM makespan: data-parallel vs nnz-weighted Stream-K",
        "case index",
        "predicted cycles",
        (0..orders.len() * 3).collect(),
    );
    let mut dp_series = Vec::new();
    let mut sk_series = Vec::new();
    let mut ideal_series = Vec::new();

    let prm = ModelParams::from_device(&dev, Precision::Fp16).expect("GH200 FP16");
    for &n in &orders {
        for (family, a) in families(n) {
            let work = SparseWork::from_spmm(&a, DENSE_COLS, Precision::Fp16);
            let dp = Scheduler::new(&dev)
                .with_decomposition(Decomposition::DataParallel)
                .run_sparse(&work, &plans)
                .expect("dp schedules");
            let sk = Scheduler::new(&dev)
                .with_decomposition(Decomposition::StreamK)
                .run_sparse(&work, &plans)
                .expect("sk schedules");
            let auto = Scheduler::new(&dev)
                .run_sparse(&work, &plans)
                .expect("auto schedules");

            // Ideal lower bound: every SM streams nonzero iterations at
            // the unit rate with no quantization or fixups.
            let (entry, _) = plans
                .plan_for(&dev, &work.unit)
                .expect("plan exists after scheduling");
            let steady = analyze_occupancy_stream(
                &dev,
                &entry.cost.occupancy,
                entry.cost.flops,
                &work.iter_counts(),
            );
            // Closed-form cross-check: the sparse model's single-block
            // cycle estimate at this family's effective density.
            let density = a.nnz_blocks() as f64 / (a.rows_blk() as f64 * a.cols_blk() as f64);
            let model_cycles =
                model::spmm_expected_cycles(Algo::OneD, n, DENSE_COLS, n, BLOCK, density, 4, &prm);

            println!(
                "{:>6} {:>16} | {:>6} {:>6.1} | {:>11.0} {:>11.0} {:>11.0} {:>7.2} | {:>11} {:>12.0}",
                n,
                family,
                work.len(),
                sk.nnz_skew,
                dp.schedule.makespan_cycles,
                sk.schedule.makespan_cycles,
                steady.ideal_cycles,
                dp.schedule.makespan_cycles / sk.schedule.makespan_cycles,
                auto.schedule.decomposition.label(),
                model_cycles,
            );
            dp_series.push(Some(dp.schedule.makespan_cycles));
            sk_series.push(Some(sk.schedule.makespan_cycles));
            ideal_series.push(Some(steady.ideal_cycles));
        }
    }
    table.push_series("data-parallel", dp_series);
    table.push_series("nnz stream-k", sk_series);
    table.push_series("stream ideal", ideal_series);

    // SpGEMM: items are symbolic output blocks, weights are pair counts.
    println!("\nSpGEMM streams (both operands sparse):");
    println!(
        "{:>6} {:>16} | {:>7} {:>7} {:>6} | {:>11} {:>11} {:>7} | {:>11}",
        "n", "family", "items", "pairs", "skew", "DP cycles", "SK cycles", "DP/SK", "auto"
    );
    let spgemm_orders: Vec<usize> = if quick {
        vec![512]
    } else {
        vec![256, 512, 1024]
    };
    for &n in &spgemm_orders {
        for (family, a) in families(n) {
            let b = random_block_sparse(n, n, BLOCK, 0.5, BlockOrder::RowMajor, 44);
            let work = SparseWork::from_spgemm(&a, &b, Precision::Fp16);
            let dp = Scheduler::new(&dev)
                .with_decomposition(Decomposition::DataParallel)
                .run_sparse(&work, &plans)
                .expect("dp schedules");
            let sk = Scheduler::new(&dev)
                .with_decomposition(Decomposition::StreamK)
                .run_sparse(&work, &plans)
                .expect("sk schedules");
            let auto = Scheduler::new(&dev)
                .run_sparse(&work, &plans)
                .expect("auto schedules");
            println!(
                "{:>6} {:>16} | {:>7} {:>7} {:>6.1} | {:>11.0} {:>11.0} {:>7.2} | {:>11}",
                n,
                family,
                work.len(),
                work.total_nnz(),
                sk.nnz_skew,
                dp.schedule.makespan_cycles,
                sk.schedule.makespan_cycles,
                dp.schedule.makespan_cycles / sk.schedule.makespan_cycles,
                auto.schedule.decomposition.label(),
            );
        }
    }

    println!(
        "\nPlan cache: {} unit shapes held, {} hits / {} misses (every \
         repeated sparsity structure reused its tuned unit plan)",
        plans.len(),
        plans.hits(),
        plans.misses()
    );
    println!("\n{}", table.render());

    if let Some(path) = json_out {
        std::fs::write(&path, table.to_json()).expect("write json");
        println!("wrote {path}");
    }
}
