//! # kami-baselines
//!
//! The comparator GEMM strategies of the paper's evaluation — cuBLASDx,
//! CUTLASS, cuBLAS, MAGMA, and SYCL-Bench — re-implemented from their
//! documented kernel structures as warp programs on the *same* simulated
//! SM as KAMI, so every cycle comparison isolates the strategy
//! difference (residency, staging, padding, streaming) rather than
//! vendor tuning.
//!
//! | Module | Models | Strategy |
//! |--------|--------|----------|
//! | [`cublasdx`] | cuBLASDx v0.2.0 | block-level, all operands staged in shared memory, per-step re-reads |
//! | [`cutlass`] | CUTLASS v3.8.0 | fixed 128-wide tiles, double-buffered smem pipeline, padding waste |
//! | [`cublas`] | cuBLAS v12.8 | device-level generic tiles streamed from global memory |
//! | [`magma`] | MAGMA v2.9 | small-size-aware tiles, global streaming, CUDA-core rate |
//! | [`syclbench`] | SYCL-Bench | naive local-memory GEMM with C round-trips |

pub mod common;
pub mod cublas;
pub mod cublasdx;
pub mod cutlass;
pub mod magma;
pub mod streaming;
pub mod syclbench;

pub use common::BaselineResult;
