//! MAGMA-style batched comparator (§5.4, Fig 12).
//!
//! MAGMA's batched GEMM uses smaller, small-size-aware tiles than
//! cuBLAS (32×32×16 here), so its padding waste is modest — but every
//! entry still streams its tiles through global memory and re-reads
//! shared memory per step, and its generic CUDA-core inner loops sustain
//! only a fraction of the tensor-core rate (modelled with
//! `mma_efficiency = 0.5`, the FP64 CUDA-core : tensor-core ratio on
//! Hopper). That is why the paper's speedups over MAGMA (10–31× average)
//! are an order of magnitude below those over cuBLAS.

use crate::common::{pad_matrix, round_up, BaselineResult};
use kami_core::error::KamiError;
use kami_core::schedule_cycles;
use kami_gpu_sim::{BlockKernel, CostConfig, DeviceSpec, Engine, GlobalMemory, Matrix, Precision};

/// Small-size-aware tile.
pub const TILE: (usize, usize, usize) = (32, 32, 16);
/// Warps per block.
pub const WARPS: usize = 2;
/// CUDA-core inner loops: half the tensor-core rate.
pub const MMA_EFFICIENCY: f64 = 0.5;
/// Host-side overhead of one batched launch, in microseconds.
pub const LAUNCH_OVERHEAD_US: f64 = 10.0;
/// Per-entry host/driver dispatch cost in microseconds (pointer-array
/// walks, per-matrix setup), amortized beyond [`DISPATCH_AMORTIZE_CAP`]
/// entries when the fused grid takes over. Lighter than cuBLAS's — MAGMA
/// is batched-first — which is why the paper's speedups over MAGMA are an
/// order of magnitude below those over cuBLAS.
pub const DISPATCH_US_PER_ENTRY: f64 = 0.2;
/// Entries beyond this share the dispatch cost of the cap.
pub const DISPATCH_AMORTIZE_CAP: usize = 2000;

/// One MAGMA-style GEMM (padded to the 32³ tile, global-streamed,
/// CUDA-core rate).
pub fn gemm(
    device: &DeviceSpec,
    prec: Precision,
    a: &Matrix,
    b: &Matrix,
) -> Result<BaselineResult, KamiError> {
    let (tm, tn, tk) = TILE;
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let (mp, np, kp) = (round_up(m, tm), round_up(n, tn), round_up(k, tk));
    let ap = pad_matrix(a, mp, kp);
    let bp = pad_matrix(b, kp, np);

    if device.peak_tflops(prec).is_none() {
        return Err(KamiError::Unsupported {
            detail: format!("{} has no tensor path for {}", device.name, prec.label()),
        });
    }
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", &ap, prec);
    let bb = gmem.upload("B", &bp, prec);
    let cb = gmem.alloc_zeroed("C", mp, np, prec.accumulator());
    let kernel = build_kernel(prec, mp, np, kp, ab, bb, cb);
    let cost = CostConfig::default().with_mma_efficiency(MMA_EFFICIENCY);
    // Reference SimBackend, as for every baseline (see common.rs).
    let report = Engine::with_cost(device, cost)
        .run_kernel(&kernel, &mut gmem, &kami_gpu_sim::RunOptions::default())?
        .report;
    Ok(BaselineResult {
        c: gmem.download(cb).submatrix(0, 0, m, n),
        report,
        useful_flops: 2 * (m as u64) * (n as u64) * (k as u64),
    })
}

fn build_kernel(
    prec: Precision,
    mp: usize,
    np: usize,
    kp: usize,
    ab: kami_gpu_sim::BufferId,
    bb: kami_gpu_sim::BufferId,
    cb: kami_gpu_sim::BufferId,
) -> BlockKernel {
    let (tm, tn, tk) = TILE;
    let p = WARPS;
    let se = prec.size_bytes();
    let acc = prec.accumulator();
    let strip = tm / p;
    let b_base = tm * tk * se;

    BlockKernel::spmd(p, |i, w| {
        let a_strip = w.frag("aStrip", strip, tk, prec);
        let b_ld = w.frag("bLoad", tk / p, tn, prec);
        let b_tile = w.frag("bTile", tk, tn, prec);
        let c_frag = w.frag("cAcc", strip, tn, acc);

        for ot_r in 0..mp / tm {
            for ot_c in 0..np / tn {
                w.zero_acc(c_frag);
                for kt in 0..kp / tk {
                    let k0 = kt * tk;
                    w.global_load(a_strip, ab, ot_r * tm + i * strip, k0);
                    w.shared_store(a_strip, i * strip * tk * se);
                    w.global_load(b_ld, bb, k0 + i * (tk / p), ot_c * tn);
                    w.shared_store(b_ld, b_base + i * (tk / p) * tn * se);
                    w.barrier();
                    // One MMA per k-tile (tk = 16 = the instruction depth):
                    // re-read both operands from shared memory.
                    w.shared_load(a_strip, i * strip * tk * se);
                    w.shared_load(b_tile, b_base);
                    w.mma(c_frag, a_strip, b_tile);
                    w.barrier();
                }
                w.global_store(c_frag, cb, ot_r * tm + i * strip, ot_c * tn);
                w.barrier();
            }
        }
    })
}

/// Modelled seconds for a uniform batch.
pub fn batched_seconds(
    device: &DeviceSpec,
    prec: Precision,
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
) -> Result<f64, KamiError> {
    let a = Matrix::seeded_uniform(m, k, 0x3A);
    let b = Matrix::seeded_uniform(k, n, 0x3B);
    let one = gemm(device, prec, &a, &b)?;
    let cycles = schedule_cycles(device, one.report.cycles, batch);
    let dispatch = DISPATCH_US_PER_ENTRY * batch.min(DISPATCH_AMORTIZE_CAP) as f64;
    Ok((LAUNCH_OVERHEAD_US + dispatch) * 1e-6 + cycles / device.clock_hz())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_core::reference::reference_gemm_f64;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn result_correct() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(48, 48, 7);
        let b = Matrix::seeded_uniform(48, 48, 8);
        let res = gemm(&dev, Precision::Fp64, &a, &b).unwrap();
        let want = reference_gemm_f64(&a, &b);
        assert!(res.c.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn less_padding_waste_than_cublas() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(16, 16, 1);
        let b = Matrix::seeded_uniform(16, 16, 2);
        let magma = gemm(&dev, Precision::Fp64, &a, &b).unwrap();
        let cublas = crate::cublas::gemm(&dev, Precision::Fp64, &a, &b).unwrap();
        assert!(magma.report.flops_charged < cublas.report.flops_charged);
        // Ordering the paper measures: KAMI > MAGMA > cuBLAS at 16³.
        assert!(magma.device_tflops(&dev) > cublas.device_tflops(&dev));
    }
}
