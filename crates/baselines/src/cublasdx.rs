//! cuBLASDx-style block GEMM: the shared-memory-staged strategy KAMI is
//! compared against in Figs 3, 8, and 11.
//!
//! cuBLASDx executes block-level GEMM with all three matrices resident in
//! shared memory ("load data into shared memory and then into registers",
//! §5.3): operands are staged global→registers→shared once, then every
//! k-step re-reads an A sub-tile and a full-width B sub-tile from shared
//! memory into register fragments before the MMA, synchronizing the
//! pipeline between steps; the epilogue writes C back through shared
//! memory. Registers hold only the current tiles (the ~40 regs/thread the
//! paper measures), shared memory holds everything (~27 KB at 64³ FP16) —
//! the exact inverse of KAMI's residency choice, and the source of the
//! per-step latency and traffic KAMI avoids.

use crate::common::{run_gemm_kernel, BaselineResult};
use kami_core::error::KamiError;
use kami_gpu_sim::{BlockKernel, DeviceSpec, Matrix, Precision};

/// k-step granularity (MMA instruction depth).
pub const TK: usize = 16;

/// Run a cuBLASDx-style block GEMM with `p` warps.
///
/// Requires `p | m`, `p | k`, `TK | k` (the library's own layout
/// constraints for its simplest row-cyclic partition).
pub fn gemm(
    device: &DeviceSpec,
    prec: Precision,
    p: usize,
    a: &Matrix,
    b: &Matrix,
) -> Result<BaselineResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    if m % p != 0 || k % p != 0 || k % TK != 0 {
        return Err(KamiError::Indivisible {
            detail: format!(
                "cuBLASDx-style kernel needs p | m, p | k, {TK} | k (got {m}x{n}x{k}, p={p})"
            ),
        });
    }
    run_gemm_kernel(device, prec, prec, a, b, |ab, bb, cb| {
        build_kernel(prec, p, m, n, k, ab, bb, cb)
    })
}

#[allow(clippy::too_many_arguments)]
fn build_kernel(
    prec: Precision,
    p: usize,
    m: usize,
    n: usize,
    k: usize,
    ab: kami_gpu_sim::BufferId,
    bb: kami_gpu_sim::BufferId,
    cb: kami_gpu_sim::BufferId,
) -> BlockKernel {
    let se = prec.size_bytes();
    let mi = m / p;
    let steps = k / TK;
    // Shared-memory layout: A as [strip][step] sub-tiles, then B as
    // [step] slabs, then the C epilogue area.
    let a_tile = mi * TK * se;
    let b_slab = TK * n * se;
    let a_base = 0;
    let b_base = m * k * se;
    let c_base = b_base + k * n * se;
    let a_addr = |strip: usize, step: usize| a_base + (strip * steps + step) * a_tile;
    let b_addr = |step: usize| b_base + step * b_slab;

    BlockKernel::spmd(p, |i, w| {
        let a_stage = w.frag("aFrag", mi, TK, prec);
        let b_stage = w.frag("bFrag", TK, n, prec);
        let c_frag = w.frag("cFrag", mi, n, prec);
        w.zero_acc(c_frag);

        // Stage A strip i and a round-robin share of B into shared memory.
        for s in 0..steps {
            w.global_load(a_stage, ab, i * mi, s * TK);
            w.shared_store(a_stage, a_addr(i, s));
        }
        for s in (0..steps).filter(|s| s % p == i) {
            w.global_load(b_stage, bb, s * TK, 0);
            w.shared_store(b_stage, b_addr(s));
        }
        w.barrier();

        // Main loop: smem → registers → MMA, sync per pipeline step.
        for s in 0..steps {
            w.shared_load(a_stage, a_addr(i, s));
            w.shared_load(b_stage, b_addr(s));
            w.mma(c_frag, a_stage, b_stage);
            w.barrier();
        }

        // Epilogue through shared memory, then out to global.
        w.shared_store(c_frag, c_base + i * mi * n * se);
        w.global_store(c_frag, cb, i * mi, 0);
    })
}

/// Shared-memory footprint of the strategy in bytes (for Table
/// comparisons: ~27 KB at 64³ FP16 plus epilogue).
pub fn smem_footprint(prec: Precision, m: usize, n: usize, k: usize) -> usize {
    (m * k + k * n + m * n) * prec.size_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_core::reference::reference_gemm;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn result_matches_reference() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(64, 64, 1);
        let b = Matrix::seeded_uniform(64, 64, 2);
        let res = gemm(&dev, Precision::Fp16, 4, &a, &b).unwrap();
        let want = reference_gemm(&a, &b, Precision::Fp16);
        assert!(res.c.rel_frobenius_error(&want) < 1e-2);
    }

    #[test]
    fn fp64_exact() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(32, 32, 3);
        let b = Matrix::seeded_uniform(32, 32, 4);
        let res = gemm(&dev, Precision::Fp64, 2, &a, &b).unwrap();
        let want = reference_gemm(&a, &b, Precision::Fp64);
        assert!(res.c.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn stages_everything_through_shared_memory() {
        let dev = gh200();
        let n = 64;
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        let res = gemm(&dev, Precision::Fp16, 4, &a, &b).unwrap();
        let se = 2;
        // Writes at least A + B (staging) + C (epilogue).
        assert!(res.report.smem_bytes_written >= (3 * n * n * se) as u64);
        // Footprint ~ what the paper reports (27 KB at 64³ FP16 incl. C).
        assert_eq!(smem_footprint(Precision::Fp16, n, n, n), 24 * 1024);
        assert!(res.report.smem_extent >= 2 * n * n * se);
    }

    #[test]
    fn kami_beats_it_at_block_level() {
        // The headline comparison of Fig 8, in miniature.
        let dev = gh200();
        let n = 64;
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        let base = gemm(&dev, Precision::Fp16, 4, &a, &b).unwrap();
        let cfg = kami_core::KamiConfig::new(kami_core::Algo::OneD, Precision::Fp16);
        let kami = kami_core::gemm_auto(&dev, &cfg, &a, &b).unwrap();
        let t_base = base.block_tflops(&dev);
        let t_kami = kami.block_tflops(&dev);
        assert!(
            t_kami > t_base,
            "KAMI {t_kami:.1} TFLOPS should beat cuBLASDx-style {t_base:.1}"
        );
    }

    #[test]
    fn indivisible_rejected() {
        let dev = gh200();
        let a = Matrix::zeros(60, 60);
        let b = Matrix::zeros(60, 60);
        assert!(matches!(
            gemm(&dev, Precision::Fp16, 4, &a, &b),
            Err(KamiError::Indivisible { .. })
        ));
    }
}
