//! SYCL-Bench-style comparator (§5.2.3, Fig 8(g)): the naive
//! local-memory GEMM of the SYCL-Bench suite, run on the Intel Max 1100
//! model.
//!
//! The benchmark kernel keeps **all three** matrices in local (shared)
//! memory with no register blocking: every k-step re-reads its A and B
//! sub-tiles *and* round-trips the C accumulator through local memory.
//! On a 16-bank part that traffic dominates, which is why KAMI-1D beats
//! it by up to ~14× (§5.2.3).

use crate::common::{run_gemm_kernel_with_cost, BaselineResult};
use kami_core::error::KamiError;
use kami_gpu_sim::{BlockKernel, CostConfig, DeviceSpec, Matrix, Precision};

/// k-step depth (joint_matrix granularity, Table 4: m16n16k16).
pub const TK: usize = 16;

/// The naive benchmark kernel multiplies with scalar work-item FMAs, not
/// `joint_matrix` XMX instructions: it sustains roughly one eighth of
/// the matrix-engine rate (vector FP16 vs XMX on Ponte Vecchio).
pub const SCALAR_EFFICIENCY: f64 = 0.125;

/// Run a SYCL-Bench-style local-memory GEMM with `p` warps (sub-groups).
pub fn gemm(
    device: &DeviceSpec,
    prec: Precision,
    p: usize,
    a: &Matrix,
    b: &Matrix,
) -> Result<BaselineResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    if m % p != 0 || k % p != 0 || k % TK != 0 {
        return Err(KamiError::Indivisible {
            detail: format!(
                "SYCL-Bench-style kernel needs p | m, p | k, {TK} | k (got {m}x{n}x{k}, p={p})"
            ),
        });
    }
    let cost = CostConfig::default().with_mma_efficiency(SCALAR_EFFICIENCY);
    run_gemm_kernel_with_cost(device, prec, prec, cost, a, b, |ab, bb, cb| {
        build_kernel(prec, p, m, n, k, ab, bb, cb)
    })
}

#[allow(clippy::too_many_arguments)]
fn build_kernel(
    prec: Precision,
    p: usize,
    m: usize,
    n: usize,
    k: usize,
    ab: kami_gpu_sim::BufferId,
    bb: kami_gpu_sim::BufferId,
    cb: kami_gpu_sim::BufferId,
) -> BlockKernel {
    let se = prec.size_bytes();
    let mi = m / p;
    let steps = k / TK;
    let a_base = 0;
    let b_base = m * k * se;
    let c_base = b_base + k * n * se;

    BlockKernel::spmd(p, |i, w| {
        let a_stage = w.frag("aTile", mi, TK, prec);
        let b_stage = w.frag("bTile", TK, n, prec);
        let c_stage = w.frag("cTile", mi, n, prec);

        // Stage A strip and a share of B into local memory.
        for s in 0..steps {
            w.global_load(a_stage, ab, i * mi, s * TK);
            w.shared_store(a_stage, a_base + (i * steps + s) * mi * TK * se);
        }
        for s in (0..steps).filter(|s| s % p == i) {
            w.global_load(b_stage, bb, s * TK, 0);
            w.shared_store(b_stage, b_base + s * TK * n * se);
        }
        // Zero the local C accumulator.
        w.zero_acc(c_stage);
        w.shared_store(c_stage, c_base + i * mi * n * se);
        w.barrier();

        // Naive loop: C round-trips local memory every step.
        for s in 0..steps {
            w.shared_load(a_stage, a_base + (i * steps + s) * mi * TK * se);
            w.shared_load(b_stage, b_base + s * TK * n * se);
            w.shared_load(c_stage, c_base + i * mi * n * se);
            w.mma(c_stage, a_stage, b_stage);
            w.shared_store(c_stage, c_base + i * mi * n * se);
            w.barrier();
        }

        w.global_store(c_stage, cb, i * mi, 0);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_core::reference::reference_gemm_f64;
    use kami_gpu_sim::device::intel_max1100;

    #[test]
    fn result_correct() {
        let dev = intel_max1100();
        let a = Matrix::seeded_uniform(64, 64, 1);
        let b = Matrix::seeded_uniform(64, 64, 2);
        let res = gemm(&dev, Precision::Fp16, 4, &a, &b).unwrap();
        let want = reference_gemm_f64(&a, &b);
        assert!(res.c.rel_frobenius_error(&want) < 1e-2);
    }

    #[test]
    fn c_roundtrip_inflates_traffic() {
        let dev = intel_max1100();
        let n = 64;
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        let naive = gemm(&dev, Precision::Fp16, 4, &a, &b).unwrap();
        let staged = crate::cublasdx::gemm(&dev, Precision::Fp16, 4, &a, &b).unwrap();
        assert!(naive.report.comm_volume() > staged.report.comm_volume());
    }

    #[test]
    fn kami_beats_it_on_intel() {
        let dev = intel_max1100();
        let n = 64;
        let a = Matrix::seeded_uniform(n, n, 1);
        let b = Matrix::seeded_uniform(n, n, 2);
        let base = gemm(&dev, Precision::Fp16, 4, &a, &b).unwrap();
        let cfg = kami_core::KamiConfig::new(kami_core::Algo::OneD, Precision::Fp16);
        let kami = kami_core::gemm_auto(&dev, &cfg, &a, &b).unwrap();
        let ratio = kami.block_tflops(&dev) / base.block_tflops(&dev);
        assert!(ratio > 1.5, "KAMI/SYCL-Bench ratio {ratio:.2}");
    }
}
