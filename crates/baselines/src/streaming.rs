//! Shared builder for device-level, global-memory-streaming tiled GEMM
//! kernels — the strategy family behind the cuBLAS and MAGMA batched
//! comparators (§5.4).
//!
//! Unlike the block-level strategies (operands resident on-chip), these
//! kernels stream every k-tile from global memory, stage it in shared
//! memory, and re-read per MMA step; the problem is padded to the
//! library's fixed tile. Each batched entry pays the full global
//! latency + traffic of its padded tiles — the "memory-bound nature of
//! batched GEMM" the paper describes, amplified at small orders by the
//! tile padding.

use crate::common::{pad_matrix, round_up, run_gemm_kernel, BaselineResult};
use kami_core::error::KamiError;
use kami_gpu_sim::{BlockKernel, DeviceSpec, Matrix, Precision};

/// MMA step depth.
const STEP: usize = 16;

/// Run a streaming tiled GEMM with threadblock tile `(tm, tn, tk)` and
/// `p` warps. Sizes are padded to the tile.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    device: &DeviceSpec,
    prec: Precision,
    tm: usize,
    tn: usize,
    tk: usize,
    p: usize,
    a: &Matrix,
    b: &Matrix,
) -> Result<BaselineResult, KamiError> {
    assert!(
        tm.is_multiple_of(p) && tk.is_multiple_of(p) && tk.is_multiple_of(STEP),
        "tile/warp mismatch"
    );
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let (mp, np, kp) = (round_up(m, tm), round_up(n, tn), round_up(k, tk));
    let ap = pad_matrix(a, mp, kp);
    let bp = pad_matrix(b, kp, np);
    let mut res = run_gemm_kernel(device, prec, prec.accumulator(), &ap, &bp, |ab, bb, cb| {
        build_kernel(prec, p, mp, np, kp, tm, tn, tk, ab, bb, cb)
    })?;
    res.c = res.c.submatrix(0, 0, m, n);
    res.useful_flops = 2 * (m as u64) * (n as u64) * (k as u64);
    Ok(res)
}

#[allow(clippy::too_many_arguments)]
fn build_kernel(
    prec: Precision,
    p: usize,
    mp: usize,
    np: usize,
    kp: usize,
    tm: usize,
    tn: usize,
    tk: usize,
    ab: kami_gpu_sim::BufferId,
    bb: kami_gpu_sim::BufferId,
    cb: kami_gpu_sim::BufferId,
) -> BlockKernel {
    let se = prec.size_bytes();
    let acc = prec.accumulator();
    let strip = tm / p;
    let a_bytes = tm * tk * se;
    let b_base = a_bytes;
    let c_base = a_bytes + tk * tn * se;

    BlockKernel::spmd(p, |i, w| {
        let a_strip = w.frag("aStrip", strip, tk, prec);
        let b_ld = w.frag("bLoad", tk / p, tn, prec);
        let b_sub = w.frag("bSub", STEP, tn, prec);
        let c_frag = w.frag("cAcc", strip, tn, acc);

        for ot_r in 0..mp / tm {
            for ot_c in 0..np / tn {
                w.zero_acc(c_frag);
                for kt in 0..kp / tk {
                    let k0 = kt * tk;
                    // Stream this k-tile from global (single-buffered:
                    // the generic kernels expose the global latency every
                    // iteration — no deep software pipeline).
                    w.global_load(a_strip, ab, ot_r * tm + i * strip, k0);
                    w.shared_store(a_strip, i * strip * tk * se);
                    w.global_load(b_ld, bb, k0 + i * (tk / p), ot_c * tn);
                    w.shared_store(b_ld, b_base + i * (tk / p) * tn * se);
                    w.barrier();
                    for s in 0..tk / STEP {
                        w.shared_load(a_strip, i * strip * tk * se);
                        w.shared_load(b_sub, b_base + s * STEP * tn * se);
                        w.mma_a_cols(c_frag, a_strip, b_sub, s * STEP, STEP);
                    }
                    w.barrier();
                }
                w.shared_store(c_frag, c_base + i * strip * tn * acc.size_bytes());
                w.global_store(c_frag, cb, ot_r * tm + i * strip, ot_c * tn);
                w.barrier();
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_core::reference::reference_gemm_f64;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn streamed_result_correct() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(48, 48, 1);
        let b = Matrix::seeded_uniform(48, 48, 2);
        let res = gemm(&dev, Precision::Fp64, 64, 64, 32, 4, &a, &b).unwrap();
        let want = reference_gemm_f64(&a, &b);
        assert!(res.c.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn pays_global_latency_per_ktile() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(64, 64, 1);
        let b = Matrix::seeded_uniform(64, 64, 2);
        let res = gemm(&dev, Precision::Fp64, 64, 64, 32, 4, &a, &b).unwrap();
        // Two k-tiles -> at least 2 global-latency charges.
        assert!(res.report.totals.global >= 2.0 * dev.gmem_latency as f64);
    }
}
