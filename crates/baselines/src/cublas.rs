//! cuBLAS-style comparator (§5.4, Fig 12; §3.1, Fig 3).
//!
//! cuBLAS's batched path runs its generic fixed-tile streaming kernels
//! on every entry: a 16³ problem still pays a 64×64×32 tile's worth of
//! global traffic, staging, and (padded) MMA work, plus a heavyweight
//! host-side launch (pointer-array setup). The "limited optimization of
//! small-scale GEMM operations" the paper attributes its 96–340×
//! speedups to is exactly this fixed overhead.

use crate::common::BaselineResult;
use crate::streaming;
use kami_core::error::KamiError;
use kami_core::schedule_cycles;
use kami_gpu_sim::{DeviceSpec, Matrix, Precision};

/// Generic kernel tile.
pub const TILE: (usize, usize, usize) = (64, 64, 32);
/// Warps per block.
pub const WARPS: usize = 4;

/// Host-side overhead of one batched launch (pointer-array setup +
/// dispatch), in microseconds.
pub const LAUNCH_OVERHEAD_US: f64 = 20.0;

/// One device-level GEMM (also the Fig 3 functional comparator for the
/// sizes where functional simulation is tractable; the full 1–8192 sweep
/// uses the analytic model in `kami_core::model::roofline`).
pub fn gemm(
    device: &DeviceSpec,
    prec: Precision,
    a: &Matrix,
    b: &Matrix,
) -> Result<BaselineResult, KamiError> {
    let (tm, tn, tk) = TILE;
    streaming::gemm(device, prec, tm, tn, tk, WARPS, a, b)
}

/// Per-entry host/driver dispatch cost in microseconds, amortized once
/// the library switches to its fully fused grid beyond
/// [`DISPATCH_AMORTIZE_CAP`] entries — the fixed per-matrix setup that
/// dominates real batched libraries at small orders (and the reason the
/// paper's speedups shrink from batch 1000 to 10000).
pub const DISPATCH_US_PER_ENTRY: f64 = 2.0;
/// Entries beyond this share the dispatch cost of the cap.
pub const DISPATCH_AMORTIZE_CAP: usize = 2000;

/// Modelled seconds for a uniform batch: launch overhead + per-entry
/// dispatch + block waves.
pub fn batched_seconds(
    device: &DeviceSpec,
    prec: Precision,
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
) -> Result<f64, KamiError> {
    let a = Matrix::seeded_uniform(m, k, 0xCB);
    let b = Matrix::seeded_uniform(k, n, 0xCC);
    let one = gemm(device, prec, &a, &b)?;
    let cycles = schedule_cycles(device, one.report.cycles, batch);
    let dispatch = DISPATCH_US_PER_ENTRY * batch.min(DISPATCH_AMORTIZE_CAP) as f64;
    Ok((LAUNCH_OVERHEAD_US + dispatch) * 1e-6 + cycles / device.clock_hz())
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn small_batched_entry_is_expensive() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(16, 16, 1);
        let b = Matrix::seeded_uniform(16, 16, 2);
        let res = gemm(&dev, Precision::Fp64, &a, &b).unwrap();
        // Padded 64x64x32 work for a 16³ problem: 32x flop waste.
        assert_eq!(res.report.flops_charged, 2 * 64 * 64 * 32,);
        assert_eq!(res.useful_flops, 2 * 16 * 16 * 16);
    }

    #[test]
    fn batched_seconds_scale_with_batch() {
        let dev = gh200();
        let t1 = batched_seconds(&dev, Precision::Fp64, 16, 16, 16, 132).unwrap();
        let t2 = batched_seconds(&dev, Precision::Fp64, 16, 16, 16, 1320).unwrap();
        assert!(t2 > t1);
        // Launch overhead floors the small batch.
        assert!(t1 >= LAUNCH_OVERHEAD_US * 1e-6);
    }
}
