//! Shared plumbing for the baseline GEMM strategies.

use kami_core::error::KamiError;
use kami_gpu_sim::{
    BlockKernel, CostConfig, DeviceSpec, Engine, ExecutionReport, GlobalMemory, Matrix, Precision,
};

/// Output of one baseline block GEMM, mirroring
/// [`kami_core::GemmResult`] so harnesses can treat both uniformly.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    pub c: Matrix,
    pub report: ExecutionReport,
    /// Useful flops of the *logical* problem (`2mnk`), not the padded
    /// work the strategy may perform.
    pub useful_flops: u64,
}

impl BaselineResult {
    /// Block-level TFLOPS (on-chip cycles, useful flops) — directly
    /// comparable with [`kami_core::GemmResult::block_tflops`].
    pub fn block_tflops(&self, device: &DeviceSpec) -> f64 {
        self.report.block_tflops(device, self.useful_flops)
    }

    /// Device-level TFLOPS including global-memory cycles.
    pub fn device_tflops(&self, device: &DeviceSpec) -> f64 {
        self.report.device_tflops(device, self.useful_flops)
    }
}

/// Upload A/B, allocate C, run `build` and package the result.
pub fn run_gemm_kernel(
    device: &DeviceSpec,
    prec: Precision,
    c_prec: Precision,
    a: &Matrix,
    b: &Matrix,
    build: impl FnOnce(
        kami_gpu_sim::BufferId,
        kami_gpu_sim::BufferId,
        kami_gpu_sim::BufferId,
    ) -> BlockKernel,
) -> Result<BaselineResult, KamiError> {
    run_gemm_kernel_with_cost(device, prec, c_prec, CostConfig::default(), a, b, build)
}

/// [`run_gemm_kernel`] with an explicit cost configuration (used by
/// strategies whose inner loops run below the tensor-core rate).
#[allow(clippy::too_many_arguments)]
pub fn run_gemm_kernel_with_cost(
    device: &DeviceSpec,
    prec: Precision,
    c_prec: Precision,
    cost: CostConfig,
    a: &Matrix,
    b: &Matrix,
    build: impl FnOnce(
        kami_gpu_sim::BufferId,
        kami_gpu_sim::BufferId,
        kami_gpu_sim::BufferId,
    ) -> BlockKernel,
) -> Result<BaselineResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    if k != kb {
        return Err(KamiError::ShapeMismatch {
            detail: format!("A is {m}x{k} but B is {kb}x{n}"),
        });
    }
    if device.peak_tflops(prec).is_none() {
        return Err(KamiError::Unsupported {
            detail: format!("{} has no tensor path for {}", device.name, prec.label()),
        });
    }
    let mut gmem = GlobalMemory::new();
    let ab = gmem.upload("A", a, prec);
    let bb = gmem.upload("B", b, prec);
    let cb = gmem.alloc_zeroed("C", m, n, c_prec);
    let kernel = build(ab, bb, cb);
    // Baselines pin the reference SimBackend deliberately: they are the
    // comparison yardstick for KAMI's own runs and carry no KamiConfig
    // that could select anything else.
    let report = Engine::with_cost(device, cost)
        .run_kernel(&kernel, &mut gmem, &kami_gpu_sim::RunOptions::default())?
        .report;
    Ok(BaselineResult {
        c: gmem.download(cb),
        report,
        useful_flops: 2 * (m as u64) * (n as u64) * (k as u64),
    })
}

/// Round `x` up to a multiple of `d`.
pub fn round_up(x: usize, d: usize) -> usize {
    x.div_ceil(d) * d
}

/// Zero-pad `m` to `rows×cols`.
pub fn pad_matrix(m: &Matrix, rows: usize, cols: usize) -> Matrix {
    let mut out = Matrix::zeros(rows, cols);
    out.set_submatrix(0, 0, m);
    out
}
