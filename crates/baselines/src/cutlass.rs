//! CUTLASS-style block GEMM: a fixed-tile, shared-memory-pipelined
//! kernel.
//!
//! CUTLASS's building blocks are large threadblock tiles (e.g.
//! 128×128×32 for FP16 — the "near-peak specific sizes" of §3.1). A
//! small problem still runs the full tile pipeline: operands are padded
//! to the tile, every k-tile is staged global→shared (double-buffered),
//! and each warp re-reads its row strip of A and the full-width B slab
//! from shared memory per MMA step. The padding waste (flops, traffic,
//! and a ~64 KB shared-memory footprint) is what produces the
//! orders-of-magnitude gaps at orders 16–64 in Fig 8.

use crate::common::{pad_matrix, round_up, run_gemm_kernel, BaselineResult};
use kami_core::error::KamiError;
use kami_gpu_sim::{BlockKernel, DeviceSpec, Matrix, Precision};

/// Threadblock tile `(TM, TN, TK)` per precision — the shapes CUTLASS
/// tunes its near-peak kernels around (§3.1).
pub fn tile(prec: Precision) -> (usize, usize, usize) {
    match prec {
        Precision::Fp64 => (64, 64, 16),
        Precision::Tf32 | Precision::Fp32 => (128, 128, 16),
        Precision::Fp16 | Precision::Bf16 => (128, 128, 32),
        Precision::Fp8E4M3 => (128, 128, 64),
    }
}

/// Warps per threadblock (4 for the 64-wide FP64 tile, 8 for 128-wide).
pub fn warps(prec: Precision) -> usize {
    match prec {
        Precision::Fp64 => 4,
        _ => 8,
    }
}

/// MMA step depth within a k-tile.
const STEP: usize = 16;

/// Run a CUTLASS-style block GEMM. Arbitrary sizes accepted — they are
/// padded to the tile, exactly like the real library's predicated tiles.
/// Problems larger than one tile are processed tile by tile on the same
/// SM (with identical blocks on every SM, per-SM throughput matches the
/// one-tile-per-block launch the real library would do).
pub fn gemm(
    device: &DeviceSpec,
    prec: Precision,
    a: &Matrix,
    b: &Matrix,
) -> Result<BaselineResult, KamiError> {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    let (tm, tn, tk) = tile(prec);
    let (mp, np, kp) = (round_up(m, tm), round_up(n, tn), round_up(k, tk));
    let ap = pad_matrix(a, mp, kp);
    let bp = pad_matrix(b, kp, np);
    let p = warps(prec);
    let mut res = run_gemm_kernel(device, prec, prec, &ap, &bp, |ab, bb, cb| {
        build_kernel(prec, p, mp, np, kp, tm, tn, tk, ab, bb, cb)
    })?;
    res.c = res.c.submatrix(0, 0, m, n);
    res.useful_flops = 2 * (m as u64) * (n as u64) * (k as u64);
    Ok(res)
}

#[allow(clippy::too_many_arguments)]
fn build_kernel(
    prec: Precision,
    p: usize,
    mp: usize,
    np: usize,
    kp: usize,
    tm: usize,
    tn: usize,
    tk: usize,
    ab: kami_gpu_sim::BufferId,
    bb: kami_gpu_sim::BufferId,
    cb: kami_gpu_sim::BufferId,
) -> BlockKernel {
    let se = prec.size_bytes();
    let acc = prec.accumulator();
    let strip = tm / p; // warp's row strip within the tile
                        // Double-buffered A and B k-tiles, then the C epilogue area.
    let a_buf_bytes = tm * tk * se;
    let b_buf_bytes = tk * tn * se;
    let a_addr = |buf: usize| buf * (a_buf_bytes + b_buf_bytes);
    let b_addr = |buf: usize| a_addr(buf) + a_buf_bytes;
    let c_base = 2 * (a_buf_bytes + b_buf_bytes);

    BlockKernel::spmd(p, |i, w| {
        let a_strip = w.frag("aStrip", strip, tk, prec);
        let b_ld = w.frag("bLoad", tk / p, tn, prec);
        let b_sub = w.frag("bSub", STEP, tn, prec);
        let c_frag = w.frag("cAcc", strip, tn, acc);
        let c_out = w.frag("cOut", strip, tn, prec);

        for ot_r in 0..mp / tm {
            for ot_c in 0..np / tn {
                w.zero_acc(c_frag);
                for kt in 0..kp / tk {
                    let buf = kt % 2;
                    let k0 = kt * tk;
                    // Cooperative staging: warp i stages its A strip and
                    // tk/p rows of B into the double buffer.
                    w.global_load(a_strip, ab, ot_r * tm + i * strip, k0);
                    w.shared_store(a_strip, a_addr(buf) + i * strip * tk * se);
                    w.global_load(b_ld, bb, k0 + i * (tk / p), ot_c * tn);
                    w.shared_store(b_ld, b_addr(buf) + i * (tk / p) * tn * se);
                    w.barrier();
                    // Inner MMA steps: re-read the strip and the B slab
                    // from shared memory, one step at a time.
                    for s in 0..tk / STEP {
                        w.shared_load(a_strip, a_addr(buf) + i * strip * tk * se);
                        w.shared_load(b_sub, b_addr(buf) + s * STEP * tn * se);
                        w.mma_a_cols(c_frag, a_strip, b_sub, s * STEP, STEP);
                    }
                    w.barrier();
                }
                // Epilogue: convert the accumulator to the output element
                // type, round-trip shared memory, write out.
                w.reg_copy(c_out, c_frag);
                w.shared_store(c_out, c_base + i * strip * tn * se);
                w.global_store(c_out, cb, ot_r * tm + i * strip, ot_c * tn);
                w.barrier();
            }
        }
    })
}

/// Shared-memory footprint (double-buffered k-tiles + C epilogue):
/// ~64 KB for the FP16 128×128×32 tile, matching the paper's report.
pub fn smem_footprint(prec: Precision) -> usize {
    let (tm, tn, tk) = tile(prec);
    let se = prec.size_bytes();
    // The epilogue stages C at the *output* element type (the real
    // epilogue converts accumulators before the shared-memory swizzle).
    2 * (tm * tk + tk * tn) * se + tm * tn * se
}

#[cfg(test)]
mod tests {
    use super::*;
    use kami_core::reference::reference_gemm_f64;
    use kami_gpu_sim::device::gh200;

    #[test]
    fn padded_result_is_correct() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(48, 48, 1);
        let b = Matrix::seeded_uniform(48, 48, 2);
        let res = gemm(&dev, Precision::Fp16, &a, &b).unwrap();
        assert_eq!(res.c.rows(), 48);
        let want = reference_gemm_f64(&a, &b);
        assert!(res.c.rel_frobenius_error(&want) < 1e-2);
    }

    #[test]
    fn fp64_tile_exact() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(64, 64, 3);
        let b = Matrix::seeded_uniform(64, 64, 4);
        let res = gemm(&dev, Precision::Fp64, &a, &b).unwrap();
        let want = reference_gemm_f64(&a, &b);
        assert!(res.c.max_abs_diff(&want) < 1e-10);
    }

    #[test]
    fn multi_tile_problem_correct() {
        // 256³ FP8 spans 2×2 output tiles.
        let dev = kami_gpu_sim::device::rtx5090();
        let a = Matrix::seeded_uniform(192, 192, 5);
        let b = Matrix::seeded_uniform(192, 192, 6);
        let res = gemm(&dev, Precision::Fp16, &a, &b).unwrap();
        let want = reference_gemm_f64(&a, &b);
        assert!(res.c.rel_frobenius_error(&want) < 2e-2);
    }

    #[test]
    fn small_problems_charge_padded_flops() {
        let dev = gh200();
        let a = Matrix::seeded_uniform(16, 16, 1);
        let b = Matrix::seeded_uniform(16, 16, 2);
        let res = gemm(&dev, Precision::Fp16, &a, &b).unwrap();
        // Padded to 128x128x32: >500x the useful flops.
        assert!(res.report.flops_charged >= 2 * 128 * 128 * 32);
        assert_eq!(res.useful_flops, 2 * 16 * 16 * 16);
        // So its useful-flop throughput collapses — the Fig 8 gap.
        let cfg = kami_core::KamiConfig::new(kami_core::Algo::OneD, Precision::Fp16);
        let kami = kami_core::gemm_auto(&dev, &cfg, &a, &b).unwrap();
        let ratio = kami.block_tflops(&dev) / res.block_tflops(&dev);
        // Paper (Fig 8b): up to 10.31x over CUTLASS for FP16 on GH200.
        assert!(
            ratio > 5.0,
            "KAMI/CUTLASS ratio {ratio:.1} should be large at 16³"
        );
    }

    #[test]
    fn footprint_matches_paper_order() {
        let f = smem_footprint(Precision::Fp16) / 1024;
        assert!((30..=70).contains(&f), "{f} KB");
    }
}
